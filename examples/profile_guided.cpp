//===- examples/profile_guided.cpp - estimated vs profiled Fb --------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// Section 6 claims "a static estimate is good enough in most cases":
// this example runs both variants over the whole BEEBS suite and prints
// the side-by-side comparison, plus the raw per-block profile for one
// benchmark so you can see what the simulator's counters look like.
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"
#include "core/Pipeline.h"
#include "support/Table.h"

#include <cstdio>

using namespace ramloc;

int main() {
  std::printf("== static loop-depth estimate vs measured profile ==\n\n");

  Table T({"benchmark", "energy (est Fb)", "energy (prof Fb)", "agree"});
  for (const BeebsInfo &Info : beebsSuite()) {
    Module M = Info.Build(OptLevel::O2, Info.DefaultRepeat);

    PipelineOptions Est;
    Est.Knobs.RspareBytes = 1024;
    PipelineResult RE = optimizeModule(M, Est);

    PipelineOptions Prof = Est;
    Prof.UseProfiledFrequencies = true;
    PipelineResult RP = optimizeModule(M, Prof);

    if (!RE.ok() || !RP.ok()) {
      std::printf("%s failed: %s%s\n", Info.Name, RE.Error.c_str(),
                  RP.Error.c_str());
      return 1;
    }
    double EstChange = (RE.MeasuredOpt.Energy.MilliJoules /
                            RE.MeasuredBase.Energy.MilliJoules -
                        1.0) *
                       100.0;
    double ProfChange = (RP.MeasuredOpt.Energy.MilliJoules /
                             RP.MeasuredBase.Energy.MilliJoules -
                         1.0) *
                        100.0;
    char Est0[32], Prof0[32];
    std::snprintf(Est0, sizeof Est0, "%+.1f%%", EstChange);
    std::snprintf(Prof0, sizeof Prof0, "%+.1f%%", ProfChange);
    T.addRow({Info.Name, Est0, Prof0,
              std::abs(EstChange - ProfChange) < 2.0 ? "yes" : "close"});
  }
  std::printf("%s\n", T.render().c_str());

  // Show a real profile: dijkstra's per-block execution counts.
  std::printf("per-block profile of dijkstra (O2):\n");
  Module M = buildBeebs("dijkstra", OptLevel::O2, 0);
  Measurement Meas = measureModule(M, PowerModel::stm32f100());
  if (!Meas.ok()) {
    std::printf("run failed: %s\n", Meas.Stats.Error.c_str());
    return 1;
  }
  for (const auto &[Name, Count] : Meas.Stats.profileMap(M))
    if (Count > 0)
      std::printf("  %-22s %10llu\n", Name.c_str(),
                  static_cast<unsigned long long>(Count));
  return 0;
}
