//===- examples/tradeoff_explorer.cpp - walking the 2^k space --------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// Reproduces the paper's Figure 6 methodology interactively: enumerate
// every subset of the hottest blocks of int_matmult, find the Pareto
// frontier of (energy, time), and show which points the ILP solver picks
// as the developer tightens Rspare (Eq. 7) or Xlimit (Eq. 9).
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"
#include "core/Enumerator.h"
#include "core/Pipeline.h"

#include <algorithm>
#include <cstdio>

using namespace ramloc;

int main() {
  Module M = buildBeebs("int_matmult", OptLevel::O2, 2);
  ModuleFrequency Freq = estimateModuleFrequency(M);
  ModelParams MP = extractParams(M, Freq, PowerModel::stm32f100());

  std::vector<unsigned> Hot = selectHotBlocks(MP, 10);
  std::printf("== trade-off explorer: int_matmult, %zu candidate blocks, "
              "%zu placements ==\n\n",
              Hot.size(), size_t(1) << Hot.size());

  std::vector<EnumPoint> Points = enumerateSolutions(MP, Hot);

  // Pareto frontier on (energy, time).
  std::vector<const EnumPoint *> Frontier;
  for (const EnumPoint &P : Points) {
    bool Dominated = false;
    for (const EnumPoint &Q : Points) {
      if (Q.Estimate.EnergyMilliJoules < P.Estimate.EnergyMilliJoules &&
          Q.Estimate.Cycles <= P.Estimate.Cycles) {
        Dominated = true;
        break;
      }
    }
    if (!Dominated)
      Frontier.push_back(&P);
  }
  std::sort(Frontier.begin(), Frontier.end(),
            [](const EnumPoint *A, const EnumPoint *B) {
              return A->Estimate.EnergyMilliJoules <
                     B->Estimate.EnergyMilliJoules;
            });

  std::printf("Pareto frontier (%zu of %zu points):\n", Frontier.size(),
              Points.size());
  std::printf("  energy (uJ)   time (kcycles)  RAM (bytes)  blocks\n");
  for (const EnumPoint *P : Frontier) {
    std::string Blocks;
    for (unsigned I = 0; I != Hot.size(); ++I)
      if ((P->Mask >> I) & 1)
        Blocks += MP.Blocks[Hot[I]].Name.substr(
                      MP.Blocks[Hot[I]].Name.find(':') + 1) +
                  " ";
    std::printf("  %-13.2f %-15.1f %-12u %s\n",
                P->Estimate.EnergyMilliJoules * 1e3,
                P->Estimate.Cycles / 1e3, P->Estimate.RamBytes,
                Blocks.c_str());
  }

  // The solver's trajectory as the RAM budget is relaxed (Figure 6's
  // dashed line).
  std::printf("\nILP selections while relaxing Rspare (Xlimit = 1.5):\n");
  std::printf("  Rspare   energy (uJ)   RAM used   moved\n");
  for (unsigned Rspare : {0u, 64u, 128u, 256u, 512u, 1024u}) {
    ModelKnobs Knobs;
    Knobs.RspareBytes = Rspare;
    Knobs.Xlimit = 1.5;
    Assignment R = solvePlacement(MP, Knobs);
    ModelEstimate E = evaluateAssignment(MP, R);
    unsigned Moved = 0;
    for (bool X : R)
      Moved += X;
    std::printf("  %-8u %-13.2f %-10u %u\n", Rspare,
                E.EnergyMilliJoules * 1e3, E.RamBytes, Moved);
  }

  // And while tightening the allowed slowdown (Figure 6's solid line).
  std::printf("\nILP selections while relaxing Xlimit (Rspare = 1024):\n");
  std::printf("  Xlimit   energy (uJ)   time ratio\n");
  ModelEstimate Base =
      evaluateAssignment(MP, Assignment(MP.numBlocks(), false));
  for (double Xlimit : {1.0, 1.05, 1.1, 1.2, 1.4, 2.0}) {
    ModelKnobs Knobs;
    Knobs.RspareBytes = 1024;
    Knobs.Xlimit = Xlimit;
    Assignment R = solvePlacement(MP, Knobs);
    ModelEstimate E = evaluateAssignment(MP, R);
    std::printf("  %-8.2f %-13.2f %.3f\n", Xlimit,
                E.EnergyMilliJoules * 1e3, E.Cycles / Base.Cycles);
  }
  return 0;
}
