//===- examples/periodic_sensing.cpp - the Section 7 scenario --------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// The paper's case study as an application: a sensor node wakes every T
// seconds, runs an FDCT over a sample block, then sleeps at 3.5 mW. We
// optimize the active region with ramloc and ask the Section 7 model what
// that does to battery life — demonstrating the paper's counter-intuitive
// headline that *slower* code can extend battery life.
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"
#include "casestudy/PeriodicApp.h"
#include "core/Pipeline.h"

#include <cstdio>

using namespace ramloc;

int main() {
  // Build the fdct workload big enough to feel like a real active region.
  Module M = buildBeebs("fdct", OptLevel::O2, 600);

  PipelineOptions Opts;
  Opts.Knobs.RspareBytes = 1024;
  Opts.Knobs.Xlimit = 1.5;
  PipelineResult R = optimizeModule(M, Opts);
  if (!R.ok()) {
    std::printf("pipeline error: %s\n", R.Error.c_str());
    return 1;
  }

  ActiveProfile Base{R.MeasuredBase.Energy.MilliJoules,
                     R.MeasuredBase.Energy.Seconds};
  ActiveProfile Opt{R.MeasuredOpt.Energy.MilliJoules,
                    R.MeasuredOpt.Energy.Seconds};
  OptimizationFactors K = factorsFrom(Base, Opt);
  const double PS = PowerModel::stm32f100().SleepMilliWatts;

  std::printf("== periodic sensing node (fdct active region) ==\n\n");
  std::printf("active region:  E0 = %.3f mJ, TA = %.1f ms\n",
              Base.EnergyMilliJoules, Base.Seconds * 1e3);
  std::printf("after ramloc:   ke = %.3f, kt = %.3f (moved %zu blocks)\n",
              K.Ke, K.Kt, R.MovedBlocks.size());
  std::printf("sleep power:    PS = %.1f mW\n", PS);
  std::printf("energy saved per period (Eq. 12): %.4f mJ\n\n",
              energySaved(Base, K, PS));

  std::printf("period T     total E    total E'   saving   battery life\n");
  std::printf("--------     -------    --------   ------   ------------\n");
  for (double Mult : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    double T = Base.Seconds * Mult;
    double E = periodEnergy(Base, PS, T);
    double EPrime = periodEnergy(Opt, PS, T);
    double Ext = batteryLifeExtension(Base, Opt, PS, T);
    std::printf("%5.1f ms     %6.3f mJ  %6.3f mJ  %5.1f%%   +%.1f%%\n",
                T * 1e3, E, EPrime, (1.0 - EPrime / E) * 100.0,
                Ext * 100.0);
  }

  std::printf("\nNote: the active region is %.0f%% slower after the\n"
              "optimization, yet every row above saves energy — time\n"
              "moved out of the active state is spent at %.1f mW instead\n"
              "of %.1f mW (Section 7's insight).\n",
              (K.Kt - 1.0) * 100.0, PS,
              R.MeasuredBase.Energy.AvgMilliWatts);
  return 0;
}
