//===- examples/quickstart.cpp - first steps with ramloc -------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// Builds the paper's Figure 2 function from assembly text, runs the whole
// optimization pipeline, and prints what moved and what it bought. This
// is the 60-second tour of the public API:
//
//   parseAssembly -> optimizeModule -> PipelineResult
//
//===----------------------------------------------------------------------===//

#include "asmio/Parser.h"
#include "asmio/Printer.h"
#include "core/Pipeline.h"

#include <cstdio>

using namespace ramloc;

// The paper's Figure 2: a multiply loop with a saturating clamp. The
// inner loop runs 64x per call; main invokes it 2000 times.
static const char *Program = R"(
.module figure2
.entry main

.func fn
.block init
    mov r1, #1
    mov r0, #0
.block loop
    mul r1, r1, r2
    add r0, r0, #1
    cmp r0, #64
    bne loop
.block if
    cmp r1, #255
    ble return
.block iftrue
    mov r1, #255
.block return
    mov r0, r1
    bx lr

.func main
.block entry
    push {r4, r5, lr}
    mov r4, #2000
    mov r5, #0
.block call
    and r2, r4, #3
    add r2, r2, #2
    bl fn
    eor r5, r5, r0
    add r5, r5, r4
    sub r4, r4, #1
    cmp r4, #0
    bne call
.block done
    mov r0, r5
    bkpt
)";

int main() {
  ParseResult PR = parseAssembly(Program);
  if (!PR.ok()) {
    std::printf("parse error: %s\n", PR.Errors.front().c_str());
    return 1;
  }

  PipelineOptions Opts;
  Opts.Knobs.RspareBytes = 28; // pretend RAM is scarce: force a choice
  Opts.Knobs.Xlimit = 1.5;     // allow up to 50% slowdown

  PipelineResult R = optimizeModule(PR.M, Opts);
  if (!R.ok()) {
    std::printf("pipeline error: %s\n", R.Error.c_str());
    return 1;
  }

  std::printf("== ramloc quickstart: the paper's Figure 2 ==\n\n");
  std::printf("blocks moved to RAM (%zu):\n", R.MovedBlocks.size());
  for (const std::string &Name : R.MovedBlocks)
    std::printf("  %s\n", Name.c_str());

  std::printf("\nrewrites: %u branches, %u fall-throughs, %u calls\n",
              R.Rewrites.BranchesRewritten,
              R.Rewrites.FallthroughsRewritten, R.Rewrites.CallsRewritten);

  const EnergyReport &Base = R.MeasuredBase.Energy;
  const EnergyReport &Opt = R.MeasuredOpt.Energy;
  std::printf("\n                 base       optimized  change\n");
  std::printf("energy (mJ)      %-9.4f  %-9.4f  %+.1f%%\n",
              Base.MilliJoules, Opt.MilliJoules,
              (Opt.MilliJoules / Base.MilliJoules - 1.0) * 100.0);
  std::printf("time (ms)        %-9.3f  %-9.3f  %+.1f%%\n",
              Base.Seconds * 1e3, Opt.Seconds * 1e3,
              (Opt.Seconds / Base.Seconds - 1.0) * 100.0);
  std::printf("avg power (mW)   %-9.2f  %-9.2f  %+.1f%%\n",
              Base.AvgMilliWatts, Opt.AvgMilliWatts,
              (Opt.AvgMilliWatts / Base.AvgMilliWatts - 1.0) * 100.0);
  std::printf("\nchecksum 0x%08x preserved: %s\n",
              R.MeasuredBase.Stats.ExitCode,
              R.MeasuredBase.Stats.ExitCode ==
                      R.MeasuredOpt.Stats.ExitCode
                  ? "yes"
                  : "NO (bug!)");

  std::printf("\noptimized assembly:\n%s",
              printModule(R.Optimized).c_str());
  return 0;
}
