file(REMOVE_RECURSE
  "CMakeFiles/bench_futurework_linker_view.dir/bench/futurework_linker_view.cpp.o"
  "CMakeFiles/bench_futurework_linker_view.dir/bench/futurework_linker_view.cpp.o.d"
  "bench_futurework_linker_view"
  "bench_futurework_linker_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_futurework_linker_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
