# Empty dependencies file for bench_futurework_linker_view.
# This may be replaced when dependencies are built.
