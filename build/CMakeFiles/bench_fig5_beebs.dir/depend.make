# Empty dependencies file for bench_fig5_beebs.
# This may be replaced when dependencies are built.
