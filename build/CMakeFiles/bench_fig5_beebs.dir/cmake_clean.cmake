file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_beebs.dir/bench/fig5_beebs.cpp.o"
  "CMakeFiles/bench_fig5_beebs.dir/bench/fig5_beebs.cpp.o.d"
  "bench_fig5_beebs"
  "bench_fig5_beebs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_beebs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
