file(REMOVE_RECURSE
  "CMakeFiles/CaseStudyTest.dir/tests/CaseStudyTest.cpp.o"
  "CMakeFiles/CaseStudyTest.dir/tests/CaseStudyTest.cpp.o.d"
  "CaseStudyTest"
  "CaseStudyTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CaseStudyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
