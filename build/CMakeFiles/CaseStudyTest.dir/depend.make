# Empty dependencies file for CaseStudyTest.
# This may be replaced when dependencies are built.
