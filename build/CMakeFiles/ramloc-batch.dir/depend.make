# Empty dependencies file for ramloc-batch.
# This may be replaced when dependencies are built.
