file(REMOVE_RECURSE
  "CMakeFiles/ramloc-batch.dir/tools/ramloc-batch.cpp.o"
  "CMakeFiles/ramloc-batch.dir/tools/ramloc-batch.cpp.o.d"
  "ramloc-batch"
  "ramloc-batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramloc-batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
