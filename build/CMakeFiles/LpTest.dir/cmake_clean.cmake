file(REMOVE_RECURSE
  "CMakeFiles/LpTest.dir/tests/LpTest.cpp.o"
  "CMakeFiles/LpTest.dir/tests/LpTest.cpp.o.d"
  "LpTest"
  "LpTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LpTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
