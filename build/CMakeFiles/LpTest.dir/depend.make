# Empty dependencies file for LpTest.
# This may be replaced when dependencies are built.
