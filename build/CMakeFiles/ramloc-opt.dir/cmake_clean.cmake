file(REMOVE_RECURSE
  "CMakeFiles/ramloc-opt.dir/tools/ramloc-opt.cpp.o"
  "CMakeFiles/ramloc-opt.dir/tools/ramloc-opt.cpp.o.d"
  "ramloc-opt"
  "ramloc-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramloc-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
