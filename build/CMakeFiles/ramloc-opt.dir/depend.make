# Empty dependencies file for ramloc-opt.
# This may be replaced when dependencies are built.
