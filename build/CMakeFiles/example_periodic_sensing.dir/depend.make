# Empty dependencies file for example_periodic_sensing.
# This may be replaced when dependencies are built.
