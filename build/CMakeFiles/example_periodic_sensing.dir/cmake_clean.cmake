file(REMOVE_RECURSE
  "CMakeFiles/example_periodic_sensing.dir/examples/periodic_sensing.cpp.o"
  "CMakeFiles/example_periodic_sensing.dir/examples/periodic_sensing.cpp.o.d"
  "example_periodic_sensing"
  "example_periodic_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_periodic_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
