file(REMOVE_RECURSE
  "CMakeFiles/IsaTest.dir/tests/IsaTest.cpp.o"
  "CMakeFiles/IsaTest.dir/tests/IsaTest.cpp.o.d"
  "IsaTest"
  "IsaTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/IsaTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
