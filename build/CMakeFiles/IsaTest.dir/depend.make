# Empty dependencies file for IsaTest.
# This may be replaced when dependencies are built.
