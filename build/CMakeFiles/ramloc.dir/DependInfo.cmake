
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asmio/Parser.cpp" "CMakeFiles/ramloc.dir/src/asmio/Parser.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/asmio/Parser.cpp.o.d"
  "/root/repo/src/asmio/Printer.cpp" "CMakeFiles/ramloc.dir/src/asmio/Printer.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/asmio/Printer.cpp.o.d"
  "/root/repo/src/beebs/Beebs.cpp" "CMakeFiles/ramloc.dir/src/beebs/Beebs.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/Beebs.cpp.o.d"
  "/root/repo/src/beebs/Blowfish.cpp" "CMakeFiles/ramloc.dir/src/beebs/Blowfish.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/Blowfish.cpp.o.d"
  "/root/repo/src/beebs/Codegen.cpp" "CMakeFiles/ramloc.dir/src/beebs/Codegen.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/Codegen.cpp.o.d"
  "/root/repo/src/beebs/Common.cpp" "CMakeFiles/ramloc.dir/src/beebs/Common.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/Common.cpp.o.d"
  "/root/repo/src/beebs/Crc32.cpp" "CMakeFiles/ramloc.dir/src/beebs/Crc32.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/Crc32.cpp.o.d"
  "/root/repo/src/beebs/Cubic.cpp" "CMakeFiles/ramloc.dir/src/beebs/Cubic.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/Cubic.cpp.o.d"
  "/root/repo/src/beebs/Dijkstra.cpp" "CMakeFiles/ramloc.dir/src/beebs/Dijkstra.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/Dijkstra.cpp.o.d"
  "/root/repo/src/beebs/Fdct.cpp" "CMakeFiles/ramloc.dir/src/beebs/Fdct.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/Fdct.cpp.o.d"
  "/root/repo/src/beebs/FloatMatmult.cpp" "CMakeFiles/ramloc.dir/src/beebs/FloatMatmult.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/FloatMatmult.cpp.o.d"
  "/root/repo/src/beebs/IntMatmult.cpp" "CMakeFiles/ramloc.dir/src/beebs/IntMatmult.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/IntMatmult.cpp.o.d"
  "/root/repo/src/beebs/MicroBench.cpp" "CMakeFiles/ramloc.dir/src/beebs/MicroBench.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/MicroBench.cpp.o.d"
  "/root/repo/src/beebs/Rijndael.cpp" "CMakeFiles/ramloc.dir/src/beebs/Rijndael.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/Rijndael.cpp.o.d"
  "/root/repo/src/beebs/Sha.cpp" "CMakeFiles/ramloc.dir/src/beebs/Sha.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/Sha.cpp.o.d"
  "/root/repo/src/beebs/SoftFloat.cpp" "CMakeFiles/ramloc.dir/src/beebs/SoftFloat.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/SoftFloat.cpp.o.d"
  "/root/repo/src/beebs/TwoDFir.cpp" "CMakeFiles/ramloc.dir/src/beebs/TwoDFir.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/beebs/TwoDFir.cpp.o.d"
  "/root/repo/src/campaign/Campaign.cpp" "CMakeFiles/ramloc.dir/src/campaign/Campaign.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/campaign/Campaign.cpp.o.d"
  "/root/repo/src/campaign/JobQueue.cpp" "CMakeFiles/ramloc.dir/src/campaign/JobQueue.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/campaign/JobQueue.cpp.o.d"
  "/root/repo/src/campaign/Report.cpp" "CMakeFiles/ramloc.dir/src/campaign/Report.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/campaign/Report.cpp.o.d"
  "/root/repo/src/casestudy/PeriodicApp.cpp" "CMakeFiles/ramloc.dir/src/casestudy/PeriodicApp.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/casestudy/PeriodicApp.cpp.o.d"
  "/root/repo/src/core/BlockParams.cpp" "CMakeFiles/ramloc.dir/src/core/BlockParams.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/core/BlockParams.cpp.o.d"
  "/root/repo/src/core/Enumerator.cpp" "CMakeFiles/ramloc.dir/src/core/Enumerator.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/core/Enumerator.cpp.o.d"
  "/root/repo/src/core/Greedy.cpp" "CMakeFiles/ramloc.dir/src/core/Greedy.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/core/Greedy.cpp.o.d"
  "/root/repo/src/core/IlpModel.cpp" "CMakeFiles/ramloc.dir/src/core/IlpModel.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/core/IlpModel.cpp.o.d"
  "/root/repo/src/core/Instrumenter.cpp" "CMakeFiles/ramloc.dir/src/core/Instrumenter.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/core/Instrumenter.cpp.o.d"
  "/root/repo/src/core/Pipeline.cpp" "CMakeFiles/ramloc.dir/src/core/Pipeline.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/core/Pipeline.cpp.o.d"
  "/root/repo/src/isa/Condition.cpp" "CMakeFiles/ramloc.dir/src/isa/Condition.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/isa/Condition.cpp.o.d"
  "/root/repo/src/isa/Encoding.cpp" "CMakeFiles/ramloc.dir/src/isa/Encoding.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/isa/Encoding.cpp.o.d"
  "/root/repo/src/isa/Instr.cpp" "CMakeFiles/ramloc.dir/src/isa/Instr.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/isa/Instr.cpp.o.d"
  "/root/repo/src/isa/Register.cpp" "CMakeFiles/ramloc.dir/src/isa/Register.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/isa/Register.cpp.o.d"
  "/root/repo/src/isa/Timing.cpp" "CMakeFiles/ramloc.dir/src/isa/Timing.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/isa/Timing.cpp.o.d"
  "/root/repo/src/layout/Linker.cpp" "CMakeFiles/ramloc.dir/src/layout/Linker.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/layout/Linker.cpp.o.d"
  "/root/repo/src/lp/BranchBound.cpp" "CMakeFiles/ramloc.dir/src/lp/BranchBound.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/lp/BranchBound.cpp.o.d"
  "/root/repo/src/lp/Simplex.cpp" "CMakeFiles/ramloc.dir/src/lp/Simplex.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/lp/Simplex.cpp.o.d"
  "/root/repo/src/mir/CFG.cpp" "CMakeFiles/ramloc.dir/src/mir/CFG.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/mir/CFG.cpp.o.d"
  "/root/repo/src/mir/Dominators.cpp" "CMakeFiles/ramloc.dir/src/mir/Dominators.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/mir/Dominators.cpp.o.d"
  "/root/repo/src/mir/Frequency.cpp" "CMakeFiles/ramloc.dir/src/mir/Frequency.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/mir/Frequency.cpp.o.d"
  "/root/repo/src/mir/Loops.cpp" "CMakeFiles/ramloc.dir/src/mir/Loops.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/mir/Loops.cpp.o.d"
  "/root/repo/src/mir/Module.cpp" "CMakeFiles/ramloc.dir/src/mir/Module.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/mir/Module.cpp.o.d"
  "/root/repo/src/mir/Verifier.cpp" "CMakeFiles/ramloc.dir/src/mir/Verifier.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/mir/Verifier.cpp.o.d"
  "/root/repo/src/power/DeviceRegistry.cpp" "CMakeFiles/ramloc.dir/src/power/DeviceRegistry.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/power/DeviceRegistry.cpp.o.d"
  "/root/repo/src/power/PowerModel.cpp" "CMakeFiles/ramloc.dir/src/power/PowerModel.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/power/PowerModel.cpp.o.d"
  "/root/repo/src/sim/Simulator.cpp" "CMakeFiles/ramloc.dir/src/sim/Simulator.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/sim/Simulator.cpp.o.d"
  "/root/repo/src/support/Format.cpp" "CMakeFiles/ramloc.dir/src/support/Format.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/support/Format.cpp.o.d"
  "/root/repo/src/support/Json.cpp" "CMakeFiles/ramloc.dir/src/support/Json.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/support/Json.cpp.o.d"
  "/root/repo/src/support/Statistics.cpp" "CMakeFiles/ramloc.dir/src/support/Statistics.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/support/Statistics.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "CMakeFiles/ramloc.dir/src/support/Table.cpp.o" "gcc" "CMakeFiles/ramloc.dir/src/support/Table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
