file(REMOVE_RECURSE
  "libramloc.a"
)
