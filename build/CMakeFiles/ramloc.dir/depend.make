# Empty dependencies file for ramloc.
# This may be replaced when dependencies are built.
