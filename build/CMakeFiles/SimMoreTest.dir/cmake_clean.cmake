file(REMOVE_RECURSE
  "CMakeFiles/SimMoreTest.dir/tests/SimMoreTest.cpp.o"
  "CMakeFiles/SimMoreTest.dir/tests/SimMoreTest.cpp.o.d"
  "SimMoreTest"
  "SimMoreTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SimMoreTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
