# Empty dependencies file for SimMoreTest.
# This may be replaced when dependencies are built.
