# Empty dependencies file for BeebsTest.
# This may be replaced when dependencies are built.
