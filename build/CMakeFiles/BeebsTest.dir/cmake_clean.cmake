file(REMOVE_RECURSE
  "BeebsTest"
  "BeebsTest.pdb"
  "CMakeFiles/BeebsTest.dir/tests/BeebsTest.cpp.o"
  "CMakeFiles/BeebsTest.dir/tests/BeebsTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BeebsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
