# Empty dependencies file for bench_fig9_period_sweep.
# This may be replaced when dependencies are built.
