file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_period_sweep.dir/bench/fig9_period_sweep.cpp.o"
  "CMakeFiles/bench_fig9_period_sweep.dir/bench/fig9_period_sweep.cpp.o.d"
  "bench_fig9_period_sweep"
  "bench_fig9_period_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_period_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
