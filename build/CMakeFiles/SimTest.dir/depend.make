# Empty dependencies file for SimTest.
# This may be replaced when dependencies are built.
