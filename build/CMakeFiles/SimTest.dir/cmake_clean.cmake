file(REMOVE_RECURSE
  "CMakeFiles/SimTest.dir/tests/SimTest.cpp.o"
  "CMakeFiles/SimTest.dir/tests/SimTest.cpp.o.d"
  "SimTest"
  "SimTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SimTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
