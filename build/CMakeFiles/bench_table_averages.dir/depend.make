# Empty dependencies file for bench_table_averages.
# This may be replaced when dependencies are built.
