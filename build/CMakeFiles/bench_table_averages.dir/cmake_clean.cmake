file(REMOVE_RECURSE
  "CMakeFiles/bench_table_averages.dir/bench/table_averages.cpp.o"
  "CMakeFiles/bench_table_averages.dir/bench/table_averages.cpp.o.d"
  "bench_table_averages"
  "bench_table_averages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_averages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
