file(REMOVE_RECURSE
  "CMakeFiles/bench_robustness_variation.dir/bench/robustness_variation.cpp.o"
  "CMakeFiles/bench_robustness_variation.dir/bench/robustness_variation.cpp.o.d"
  "bench_robustness_variation"
  "bench_robustness_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
