# Empty dependencies file for bench_robustness_variation.
# This may be replaced when dependencies are built.
