file(REMOVE_RECURSE
  "CMakeFiles/MirTest.dir/tests/MirTest.cpp.o"
  "CMakeFiles/MirTest.dir/tests/MirTest.cpp.o.d"
  "MirTest"
  "MirTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MirTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
