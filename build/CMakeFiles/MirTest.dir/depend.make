# Empty dependencies file for MirTest.
# This may be replaced when dependencies are built.
