# Empty dependencies file for FuzzPipelineTest.
# This may be replaced when dependencies are built.
