file(REMOVE_RECURSE
  "CMakeFiles/FuzzPipelineTest.dir/tests/FuzzPipelineTest.cpp.o"
  "CMakeFiles/FuzzPipelineTest.dir/tests/FuzzPipelineTest.cpp.o.d"
  "FuzzPipelineTest"
  "FuzzPipelineTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FuzzPipelineTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
