# Empty dependencies file for SimTimingTest.
# This may be replaced when dependencies are built.
