file(REMOVE_RECURSE
  "CMakeFiles/SimTimingTest.dir/tests/SimTimingTest.cpp.o"
  "CMakeFiles/SimTimingTest.dir/tests/SimTimingTest.cpp.o.d"
  "SimTimingTest"
  "SimTimingTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SimTimingTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
