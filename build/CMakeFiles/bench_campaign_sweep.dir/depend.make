# Empty dependencies file for bench_campaign_sweep.
# This may be replaced when dependencies are built.
