file(REMOVE_RECURSE
  "CMakeFiles/bench_campaign_sweep.dir/bench/campaign_sweep.cpp.o"
  "CMakeFiles/bench_campaign_sweep.dir/bench/campaign_sweep.cpp.o.d"
  "bench_campaign_sweep"
  "bench_campaign_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_campaign_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
