file(REMOVE_RECURSE
  "CMakeFiles/ParamsTest.dir/tests/ParamsTest.cpp.o"
  "CMakeFiles/ParamsTest.dir/tests/ParamsTest.cpp.o.d"
  "ParamsTest"
  "ParamsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ParamsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
