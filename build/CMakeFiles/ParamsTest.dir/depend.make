# Empty dependencies file for ParamsTest.
# This may be replaced when dependencies are built.
