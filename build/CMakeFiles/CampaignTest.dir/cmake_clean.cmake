file(REMOVE_RECURSE
  "CMakeFiles/CampaignTest.dir/tests/CampaignTest.cpp.o"
  "CMakeFiles/CampaignTest.dir/tests/CampaignTest.cpp.o.d"
  "CampaignTest"
  "CampaignTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CampaignTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
