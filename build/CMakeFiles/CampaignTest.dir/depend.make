# Empty dependencies file for CampaignTest.
# This may be replaced when dependencies are built.
