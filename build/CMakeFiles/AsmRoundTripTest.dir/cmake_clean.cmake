file(REMOVE_RECURSE
  "AsmRoundTripTest"
  "AsmRoundTripTest.pdb"
  "CMakeFiles/AsmRoundTripTest.dir/tests/AsmRoundTripTest.cpp.o"
  "CMakeFiles/AsmRoundTripTest.dir/tests/AsmRoundTripTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AsmRoundTripTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
