# Empty dependencies file for AsmRoundTripTest.
# This may be replaced when dependencies are built.
