file(REMOVE_RECURSE
  "CMakeFiles/example_tradeoff_explorer.dir/examples/tradeoff_explorer.cpp.o"
  "CMakeFiles/example_tradeoff_explorer.dir/examples/tradeoff_explorer.cpp.o.d"
  "example_tradeoff_explorer"
  "example_tradeoff_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tradeoff_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
