# Empty dependencies file for example_tradeoff_explorer.
# This may be replaced when dependencies are built.
