file(REMOVE_RECURSE
  "CMakeFiles/InstrumenterTest.dir/tests/InstrumenterTest.cpp.o"
  "CMakeFiles/InstrumenterTest.dir/tests/InstrumenterTest.cpp.o.d"
  "InstrumenterTest"
  "InstrumenterTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/InstrumenterTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
