# Empty dependencies file for InstrumenterTest.
# This may be replaced when dependencies are built.
