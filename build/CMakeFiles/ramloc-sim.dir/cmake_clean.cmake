file(REMOVE_RECURSE
  "CMakeFiles/ramloc-sim.dir/tools/ramloc-sim.cpp.o"
  "CMakeFiles/ramloc-sim.dir/tools/ramloc-sim.cpp.o.d"
  "ramloc-sim"
  "ramloc-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramloc-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
