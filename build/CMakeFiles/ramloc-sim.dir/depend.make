# Empty dependencies file for ramloc-sim.
# This may be replaced when dependencies are built.
