file(REMOVE_RECURSE
  "CMakeFiles/example_profile_guided.dir/examples/profile_guided.cpp.o"
  "CMakeFiles/example_profile_guided.dir/examples/profile_guided.cpp.o.d"
  "example_profile_guided"
  "example_profile_guided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_profile_guided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
