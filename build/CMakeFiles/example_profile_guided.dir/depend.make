# Empty dependencies file for example_profile_guided.
# This may be replaced when dependencies are built.
