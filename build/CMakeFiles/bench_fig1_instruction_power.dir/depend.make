# Empty dependencies file for bench_fig1_instruction_power.
# This may be replaced when dependencies are built.
