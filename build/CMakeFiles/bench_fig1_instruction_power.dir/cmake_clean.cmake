file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_instruction_power.dir/bench/fig1_instruction_power.cpp.o"
  "CMakeFiles/bench_fig1_instruction_power.dir/bench/fig1_instruction_power.cpp.o.d"
  "bench_fig1_instruction_power"
  "bench_fig1_instruction_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_instruction_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
