# Empty dependencies file for bench_fig8_sleep_illustration.
# This may be replaced when dependencies are built.
