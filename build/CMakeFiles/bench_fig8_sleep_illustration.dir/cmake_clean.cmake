file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_sleep_illustration.dir/bench/fig8_sleep_illustration.cpp.o"
  "CMakeFiles/bench_fig8_sleep_illustration.dir/bench/fig8_sleep_illustration.cpp.o.d"
  "bench_fig8_sleep_illustration"
  "bench_fig8_sleep_illustration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_sleep_illustration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
