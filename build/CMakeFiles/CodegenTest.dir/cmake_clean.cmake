file(REMOVE_RECURSE
  "CMakeFiles/CodegenTest.dir/tests/CodegenTest.cpp.o"
  "CMakeFiles/CodegenTest.dir/tests/CodegenTest.cpp.o.d"
  "CodegenTest"
  "CodegenTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CodegenTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
