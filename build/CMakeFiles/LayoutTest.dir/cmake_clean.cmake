file(REMOVE_RECURSE
  "CMakeFiles/LayoutTest.dir/tests/LayoutTest.cpp.o"
  "CMakeFiles/LayoutTest.dir/tests/LayoutTest.cpp.o.d"
  "LayoutTest"
  "LayoutTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LayoutTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
