# Empty dependencies file for LayoutTest.
# This may be replaced when dependencies are built.
