file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_power_profile.dir/bench/fig7_power_profile.cpp.o"
  "CMakeFiles/bench_fig7_power_profile.dir/bench/fig7_power_profile.cpp.o.d"
  "bench_fig7_power_profile"
  "bench_fig7_power_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_power_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
