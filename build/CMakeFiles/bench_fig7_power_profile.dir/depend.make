# Empty dependencies file for bench_fig7_power_profile.
# This may be replaced when dependencies are built.
