file(REMOVE_RECURSE
  "CMakeFiles/ModelTest.dir/tests/ModelTest.cpp.o"
  "CMakeFiles/ModelTest.dir/tests/ModelTest.cpp.o.d"
  "ModelTest"
  "ModelTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ModelTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
