# Empty dependencies file for ModelTest.
# This may be replaced when dependencies are built.
