# Empty dependencies file for JsonTest.
# This may be replaced when dependencies are built.
