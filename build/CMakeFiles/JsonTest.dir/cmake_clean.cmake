file(REMOVE_RECURSE
  "CMakeFiles/JsonTest.dir/tests/JsonTest.cpp.o"
  "CMakeFiles/JsonTest.dir/tests/JsonTest.cpp.o.d"
  "JsonTest"
  "JsonTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/JsonTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
