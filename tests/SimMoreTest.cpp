//===- tests/SimMoreTest.cpp - simulator edge cases ----------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "layout/Linker.h"
#include "power/PowerModel.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace ramloc;
using namespace ramloc::build;

namespace {

Image linkSnippet(std::vector<Instr> Body, Module Extra = {}) {
  Module M = std::move(Extra);
  M.EntryFunction = "t";
  Function F("t");
  BasicBlock BB("entry");
  BB.Instrs = std::move(Body);
  if (BB.Instrs.empty() || !BB.Instrs.back().isTerminator())
    BB.Instrs.push_back(bkpt());
  F.Blocks.push_back(BB);
  M.Functions.insert(M.Functions.begin(), F);
  LinkResult LR = linkModule(M);
  EXPECT_TRUE(LR.ok()) << (LR.Errors.empty() ? "" : LR.Errors.front());
  return LR.Img;
}

} // namespace

TEST(SimMore, SdivOverflowClamp) {
  // INT_MIN / -1 saturates to INT_MIN (ARM semantics).
  Image Img = linkSnippet({
      ldrLitConst(R1, static_cast<int32_t>(0x80000000)),
      ldrLitConst(R2, -1),
      sdiv(R0, R1, R2),
  });
  SimOptions SO;
  SO.IncludeStartupCopy = false;
  RunStats S = runImage(Img, SO);
  ASSERT_TRUE(S.ok()) << S.Error;
  EXPECT_EQ(S.ExitCode, 0x80000000u);
}

TEST(SimMore, BlxCallsThroughRegister) {
  Module Extra;
  Extra.EntryFunction = "t";
  Function G("callee");
  BasicBlock GB("entry");
  GB.Instrs = {movImm(R0, 99), bx(LR)};
  G.Blocks.push_back(GB);
  Extra.Functions.push_back(G);
  Image Img = linkSnippet(
      {
          ldrLitSym(R4, "callee"),
          blx(R4),
      },
      std::move(Extra));
  RunStats S = runImage(Img);
  ASSERT_TRUE(S.ok()) << S.Error;
  EXPECT_EQ(S.ExitCode, 99u);
}

TEST(SimMore, SkippedConditionalHasNoEffectAndOneCycle) {
  Image Img = linkSnippet({
      movImm(R0, 5),
      cmpImm(R0, 5), // Z = 1
      it(Cond::NE),
      withCond(movImm(R0, 77), Cond::NE), // skipped
  });
  SimOptions SO;
  SO.IncludeStartupCopy = false;
  RunStats S = runImage(Img, SO);
  ASSERT_TRUE(S.ok()) << S.Error;
  EXPECT_EQ(S.ExitCode, 5u);
  // mov(1) + cmp(1) + it(1) + skipped(1) + bkpt(1).
  EXPECT_EQ(S.Cycles, 5u);
}

TEST(SimMore, SkippedLoadDoesNotTouchMemoryOrFault) {
  // A predicated load from a bogus address must not fault when skipped.
  Image Img = linkSnippet({
      ldrLitConst(R1, 0x40000000), // unmapped
      movImm(R0, 1),
      cmpImm(R0, 1),
      it(Cond::NE),
      withCond(ldrImm(R2, R1, 0), Cond::NE), // skipped
  });
  RunStats S = runImage(Img);
  EXPECT_TRUE(S.ok()) << S.Error;
}

TEST(SimMore, UnalignedWordAccessWorks) {
  // The M3 supports unaligned word loads; our byte-wise memory does too.
  Module Extra;
  Extra.addBss("buf", 16);
  Image Img = linkSnippet(
      {
          ldrLitSym(R1, "buf"),
          ldrLitConst(R2, 0x11223344),
          strImm(R2, R1, 1), // unaligned store
          ldrImm(R0, R1, 1), // unaligned load back
      },
      std::move(Extra));
  RunStats S = runImage(Img);
  ASSERT_TRUE(S.ok()) << S.Error;
  EXPECT_EQ(S.ExitCode, 0x11223344u);
}

TEST(SimMore, StackGrowsDownFromTop) {
  Image Img = linkSnippet({
      movReg(R0, SP),
  });
  Simulator Sim(Img, {});
  EXPECT_EQ(Sim.state().R[SP], Img.Map.stackTop());
  Sim.run();
  EXPECT_EQ(Sim.stats().ExitCode, Img.Map.stackTop());
}

TEST(SimMore, PopReturnToExitHalts) {
  // push {lr}; pop {pc} with lr = ExitAddress ends the run cleanly.
  Image Img = linkSnippet({
      movImm(R0, 42),
      push(1u << LR),
      pop(1u << PC),
  });
  RunStats S = runImage(Img);
  ASSERT_TRUE(S.ok()) << S.Error;
  EXPECT_EQ(S.ExitCode, 42u);
}

TEST(SimMore, MlaAndExtendedArithmetic) {
  Image Img = linkSnippet({
      movImm(R1, 1000),
      movImm(R2, 1000),
      movImm(R3, 7),
      mla(R0, R1, R2, R3),
  });
  RunStats S = runImage(Img);
  EXPECT_EQ(S.ExitCode, 1000007u);
}

TEST(SimMore, DeviceVariationPerturbsEnergyNotCycles) {
  Module Extra;
  Extra.addBss("buf", 16);
  Image Img = linkSnippet(
      {
          ldrLitSym(R1, "buf"),
          ldrImm(R2, R1, 0),
          strImm(R2, R1, 4),
      },
      std::move(Extra));
  RunStats S = runImage(Img);
  ASSERT_TRUE(S.ok());

  PowerModel Nominal = PowerModel::stm32f100();
  PowerModel BoardA = Nominal.withDeviceVariation(1);
  PowerModel BoardB = Nominal.withDeviceVariation(2);
  EnergyReport EN = Nominal.integrate(S);
  EnergyReport EA = BoardA.integrate(S);
  EnergyReport EB = BoardB.integrate(S);
  // Same cycles, different joules; deterministic per seed.
  EXPECT_DOUBLE_EQ(EN.Seconds, EA.Seconds);
  EXPECT_NE(EA.MilliJoules, EB.MilliJoules);
  EXPECT_NE(EA.MilliJoules, EN.MilliJoules);
  EXPECT_DOUBLE_EQ(BoardA.integrate(S).MilliJoules, EA.MilliJoules);
  // Bounded perturbation: within 8%.
  EXPECT_NEAR(EA.MilliJoules, EN.MilliJoules,
              0.085 * EN.MilliJoules);
}

TEST(SimMore, PowerSamplingCoversAllCycles) {
  Module Extra;
  Extra.addBss("buf", 16);
  std::vector<Instr> Body;
  Body.push_back(ldrLitSym(R1, "buf"));
  for (int I = 0; I != 50; ++I)
    Body.push_back(ldrImm(R2, R1, 0));
  Image Img = linkSnippet(std::move(Body), std::move(Extra));
  SimOptions SO;
  SO.IncludeStartupCopy = false;
  SO.SampleIntervalCycles = 10;
  RunStats S = runImage(Img, SO);
  ASSERT_TRUE(S.ok()) << S.Error;
  ASSERT_FALSE(S.Samples.empty());
  uint64_t SampleTotal = 0;
  for (const PowerSample &Sample : S.Samples)
    SampleTotal += Sample.Cycles;
  EXPECT_EQ(SampleTotal, S.Cycles);
  // Every full interval reaches the threshold.
  for (unsigned I = 0; I + 1 < S.Samples.size(); ++I)
    EXPECT_GE(S.Samples[I].Cycles, 10u);
}

TEST(SimMore, SampledPowerMatchesOverallAverage) {
  Module Extra;
  Extra.addBss("buf", 16);
  std::vector<Instr> Body;
  Body.push_back(ldrLitSym(R1, "buf"));
  for (int I = 0; I != 30; ++I)
    Body.push_back(addReg(R2, R2, R1));
  Image Img = linkSnippet(std::move(Body), std::move(Extra));
  SimOptions SO;
  SO.IncludeStartupCopy = false;
  SO.SampleIntervalCycles = 8;
  RunStats S = runImage(Img, SO);
  ASSERT_TRUE(S.ok());
  PowerModel PM = PowerModel::stm32f100();
  EnergyReport R = PM.integrate(S);
  // Cycle-weighted mean of the sample powers equals the run average.
  double WeightedSum = 0;
  for (const PowerSample &Sample : S.Samples)
    WeightedSum +=
        PM.averageMilliWatts(Sample) * static_cast<double>(Sample.Cycles);
  EXPECT_NEAR(WeightedSum / static_cast<double>(S.Cycles),
              R.AvgMilliWatts, 1e-9);
}

TEST(SimMore, SamplingOffByDefault) {
  Image Img = linkSnippet({movImm(R0, 1)});
  RunStats S = runImage(Img);
  EXPECT_TRUE(S.Samples.empty());
}

TEST(SimMore, ZeroVariationIsIdentity) {
  PowerModel Nominal = PowerModel::stm32f100();
  PowerModel Same = Nominal.withDeviceVariation(7, 0.0);
  for (unsigned F = 0; F != 2; ++F)
    for (unsigned C = 0; C != 7; ++C)
      EXPECT_DOUBLE_EQ(Same.MilliWatts[F][C], Nominal.MilliWatts[F][C]);
}
