//===- tests/SimTest.cpp - simulator semantics -----------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "layout/Linker.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace ramloc;
using namespace ramloc::build;

namespace {

/// Wraps a single block of instructions (ending in bkpt) into a runnable
/// image and executes it; returns the final stats. r0..r2 preloadable.
RunStats runSnippet(std::vector<Instr> Body, uint32_t R0V = 0,
                    uint32_t R1V = 0, uint32_t R2V = 0,
                    Module *Extra = nullptr) {
  Module M = Extra ? *Extra : Module();
  M.EntryFunction = "t";
  Function F("t");
  BasicBlock BB("entry");
  BB.Instrs = std::move(Body);
  if (BB.Instrs.empty() || !BB.Instrs.back().isTerminator())
    BB.Instrs.push_back(bkpt());
  F.Blocks.push_back(BB);
  M.Functions.insert(M.Functions.begin(), F);
  LinkResult LR = linkModule(M);
  EXPECT_TRUE(LR.ok()) << (LR.Errors.empty() ? "" : LR.Errors.front());
  SimOptions SO;
  SO.IncludeStartupCopy = false;
  return runImage(LR.Img, SO, R0V, R1V, R2V);
}

uint32_t exitOf(std::vector<Instr> Body, uint32_t R0V = 0,
                uint32_t R1V = 0, uint32_t R2V = 0) {
  RunStats S = runSnippet(std::move(Body), R0V, R1V, R2V);
  EXPECT_TRUE(S.ok()) << S.Error;
  return S.ExitCode;
}

} // namespace

TEST(Sim, MovAndArithmetic) {
  EXPECT_EQ(exitOf({movImm(R0, 42)}), 42u);
  EXPECT_EQ(exitOf({movImm(R1, 7), movReg(R0, R1)}), 7u);
  EXPECT_EQ(exitOf({movImm(R0, 5), addImm(R0, R0, 3)}), 8u);
  EXPECT_EQ(exitOf({movImm(R0, 5), subImm(R0, R0, 7)}), 0xFFFFFFFEu);
  EXPECT_EQ(exitOf({movImm(R1, 6), movImm(R2, 7), mul(R0, R1, R2)}), 42u);
  EXPECT_EQ(exitOf({movImm(R1, 5), rsb(R0, R1, 0)}, 0),
            static_cast<uint32_t>(-5));
  EXPECT_EQ(exitOf({movImm(R1, 6), movImm(R2, 7), movImm(R3, 100),
                    mla(R0, R1, R2, R3)}),
            142u);
}

TEST(Sim, Division) {
  EXPECT_EQ(exitOf({movImm(R1, 42), movImm(R2, 5), udiv(R0, R1, R2)}), 8u);
  EXPECT_EQ(exitOf({movImm(R1, 42), movImm(R2, 0), udiv(R0, R1, R2)}), 0u);
  // Signed: -42 / 5 = -8 (trunc toward zero).
  EXPECT_EQ(exitOf({movImm(R1, 42), rsb(R1, R1, 0), movImm(R2, 5),
                    sdiv(R0, R1, R2)}),
            static_cast<uint32_t>(-8));
}

TEST(Sim, Logical) {
  EXPECT_EQ(exitOf({movImm(R1, 0xF0), movImm(R2, 0x3C),
                    andReg(R0, R1, R2)}),
            0x30u);
  EXPECT_EQ(exitOf({movImm(R1, 0xF0), movImm(R2, 0x0F),
                    orrReg(R0, R1, R2)}),
            0xFFu);
  EXPECT_EQ(exitOf({movImm(R1, 0xFF), movImm(R2, 0x0F),
                    eorReg(R0, R1, R2)}),
            0xF0u);
  EXPECT_EQ(exitOf({movImm(R1, 0xFF), movImm(R2, 0x0F),
                    bicReg(R0, R1, R2)}),
            0xF0u);
  EXPECT_EQ(exitOf({movImm(R1, 0), mvn(R0, R1)}), 0xFFFFFFFFu);
}

TEST(Sim, Shifts) {
  EXPECT_EQ(exitOf({movImm(R1, 1), lslImm(R0, R1, 31)}), 0x80000000u);
  EXPECT_EQ(exitOf({ldrLitConst(R1, -16), asrImm(R0, R1, 2)}),
            static_cast<uint32_t>(-4));
  EXPECT_EQ(exitOf({ldrLitConst(R1, 0x80000000), lsrImm(R0, R1, 31)}), 1u);
  EXPECT_EQ(exitOf({movImm(R1, 0xF0), movImm(R2, 4), lsrReg(R0, R1, R2)}),
            0x0Fu);
  EXPECT_EQ(exitOf({movImm(R1, 1), movImm(R2, 40), lslReg(R0, R1, R2)}),
            0u); // shift >= 32 clears
  EXPECT_EQ(exitOf({movImm(R1, 0x81), movImm(R2, 8), rorReg(R0, R1, R2)}),
            0x81000000u);
}

TEST(Sim, Extensions) {
  EXPECT_EQ(exitOf({ldrLitConst(R1, 0x1234FF80), uxtb(R0, R1)}), 0x80u);
  EXPECT_EQ(exitOf({ldrLitConst(R1, 0x1234FF80), sxtb(R0, R1)}),
            0xFFFFFF80u);
  EXPECT_EQ(exitOf({ldrLitConst(R1, 0x1234FF80), uxth(R0, R1)}),
            0xFF80u);
  EXPECT_EQ(exitOf({ldrLitConst(R1, 0x12348000), sxth(R0, R1)}),
            0xFFFF8000u);
}

TEST(Sim, FlagsAndConditionalBranch) {
  // Count down from 3: loop body runs 3 times.
  Module M;
  M.EntryFunction = "t";
  Function F("t");
  BasicBlock A("entry");
  A.Instrs = {movImm(R0, 0), movImm(R1, 3)};
  BasicBlock L("loop");
  L.Instrs = {addImm(R0, R0, 10), setS(subImm(R1, R1, 1)),
              bCond(Cond::NE, "loop")};
  BasicBlock D("done");
  D.Instrs = {bkpt()};
  F.Blocks = {A, L, D};
  M.Functions.push_back(F);
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok());
  RunStats S = runImage(LR.Img);
  EXPECT_EQ(S.ExitCode, 30u);
  EXPECT_EQ(S.BlockCounts[0][1], 3u);
}

TEST(Sim, SignedUnsignedConditions) {
  // -1 < 1 signed (LT) but -1 > 1 unsigned (HI).
  std::vector<Instr> Signed = {
      movImm(R1, 1),          rsb(R2, R1, 0), // r2 = -1
      cmpReg(R2, R1),         ite(Cond::LT),
      withCond(movImm(R0, 1), Cond::LT),
      withCond(movImm(R0, 2), Cond::GE),
  };
  EXPECT_EQ(exitOf(Signed), 1u);
  std::vector<Instr> Unsigned = {
      movImm(R1, 1),          rsb(R2, R1, 0),
      cmpReg(R2, R1),         ite(Cond::HI),
      withCond(movImm(R0, 1), Cond::HI),
      withCond(movImm(R0, 2), Cond::LS),
  };
  EXPECT_EQ(exitOf(Unsigned), 1u);
}

TEST(Sim, AdcSbcCarryChain) {
  // 0xFFFFFFFF + 1 sets carry; adc adds it through.
  std::vector<Instr> Body = {
      ldrLitConst(R1, static_cast<int32_t>(0xFFFFFFFF)),
      movImm(R2, 1),
      setS(addReg(R3, R1, R2)), // r3 = 0, C = 1
      movImm(R1, 0),
      movImm(R2, 0),
      adc(R0, R1, R2), // r0 = 0 + 0 + C = 1
  };
  EXPECT_EQ(exitOf(Body), 1u);
}

TEST(Sim, CbzCbnz) {
  Module M;
  M.EntryFunction = "t";
  Function F("t");
  BasicBlock A("entry");
  A.Instrs = {cbz(R0, "zero")};
  BasicBlock B2("nonzero");
  B2.Instrs = {movImm(R0, 2), bkpt()};
  BasicBlock C("zero");
  C.Instrs = {movImm(R0, 1), bkpt()};
  F.Blocks = {A, B2, C};
  M.Functions.push_back(F);
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok());
  EXPECT_EQ(runImage(LR.Img, {}, 0).ExitCode, 1u);
  EXPECT_EQ(runImage(LR.Img, {}, 7).ExitCode, 2u);
}

TEST(Sim, MemoryAccess) {
  Module Extra;
  Extra.addBss("buf", 64);
  std::vector<Instr> Body = {
      ldrLitSym(R1, "buf"),
      ldrLitConst(R2, 0x11223344),
      strImm(R2, R1, 0),
      ldrbImm(R0, R1, 1), // little-endian byte 1 = 0x33
  };
  RunStats S = runSnippet(Body, 0, 0, 0, &Extra);
  ASSERT_TRUE(S.ok()) << S.Error;
  EXPECT_EQ(S.ExitCode, 0x33u);
}

TEST(Sim, ByteAndHalfwordAccess) {
  Module Extra;
  Extra.addBss("buf", 64);
  std::vector<Instr> Body = {
      ldrLitSym(R1, "buf"),   movImm(R2, 0xAB), strbImm(R2, R1, 5),
      ldrLitConst(R2, 0xBEEF), strhImm(R2, R1, 8), ldrhImm(R3, R1, 8),
      ldrbImm(R0, R1, 5),     addReg(R0, R0, R3),
  };
  RunStats S = runSnippet(Body, 0, 0, 0, &Extra);
  ASSERT_TRUE(S.ok()) << S.Error;
  EXPECT_EQ(S.ExitCode, 0xAB + 0xBEEFu);
}

TEST(Sim, IndexedAddressing) {
  Module Extra;
  Extra.addRodataWords("tab", {10, 20, 30, 40});
  std::vector<Instr> Body = {
      ldrLitSym(R1, "tab"), movImm(R2, 8), ldrReg(R0, R1, R2),
  };
  RunStats S = runSnippet(Body, 0, 0, 0, &Extra);
  ASSERT_TRUE(S.ok()) << S.Error;
  EXPECT_EQ(S.ExitCode, 30u);
}

TEST(Sim, PushPopRoundTrip) {
  std::vector<Instr> Body = {
      movImm(R4, 11), movImm(R5, 22),
      push((1u << R4) | (1u << R5)),
      movImm(R4, 0),  movImm(R5, 0),
      pop((1u << R4) | (1u << R5)),
      addReg(R0, R4, R5),
  };
  EXPECT_EQ(exitOf(Body), 33u);
}

TEST(Sim, CallAndReturn) {
  Module M;
  M.EntryFunction = "main";
  Function Main("main");
  BasicBlock MB("entry");
  MB.Instrs = {movImm(R0, 20), bl("double_it"), bkpt()};
  Main.Blocks.push_back(MB);
  Function Callee("double_it");
  BasicBlock CB("entry");
  CB.Instrs = {addReg(R0, R0, R0), bx(LR)};
  Callee.Blocks.push_back(CB);
  M.Functions = {Main, Callee};
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok());
  RunStats S = runImage(LR.Img);
  ASSERT_TRUE(S.ok()) << S.Error;
  EXPECT_EQ(S.ExitCode, 40u);
}

TEST(Sim, NestedCallsWithLinkRegisterSave) {
  Module M;
  M.EntryFunction = "main";
  Function Main("main");
  BasicBlock MB("entry");
  MB.Instrs = {movImm(R0, 1), bl("outer"), bkpt()};
  Main.Blocks.push_back(MB);
  Function Outer("outer");
  BasicBlock OB("entry");
  OB.Instrs = {push(1u << LR), bl("inner"), addImm(R0, R0, 100),
               pop(1u << PC)};
  Outer.Blocks.push_back(OB);
  Function Inner("inner");
  BasicBlock IB("entry");
  IB.Instrs = {addImm(R0, R0, 10), bx(LR)};
  Inner.Blocks.push_back(IB);
  M.Functions = {Main, Outer, Inner};
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok());
  RunStats S = runImage(LR.Img);
  ASSERT_TRUE(S.ok()) << S.Error;
  EXPECT_EQ(S.ExitCode, 111u);
}

TEST(Sim, LongJumpViaLdrPc) {
  Module M;
  M.EntryFunction = "t";
  Function F("t");
  BasicBlock A("entry");
  A.Instrs = {movImm(R0, 5), ldrLitSym(PC, "far")};
  BasicBlock Skip("skipped");
  Skip.Instrs = {movImm(R0, 99), bkpt()};
  BasicBlock Far("far");
  Far.Instrs = {addImm(R0, R0, 1), bkpt()};
  F.Blocks = {A, Skip, Far};
  M.Functions.push_back(F);
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok());
  RunStats S = runImage(LR.Img);
  EXPECT_EQ(S.ExitCode, 6u);
  EXPECT_EQ(S.BlockCounts[0][1], 0u); // skipped never executes
}

TEST(Sim, Faults) {
  // Write to flash.
  Module Extra;
  Extra.addRodataWords("tab", {1});
  RunStats S = runSnippet({ldrLitSym(R1, "tab"), strImm(R0, R1, 0)}, 0, 0,
                          0, &Extra);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.Error.find("write fault"), std::string::npos);

  // Read unmapped memory.
  S = runSnippet({ldrLitConst(R1, 0x40000000), ldrImm(R0, R1, 0)});
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.Error.find("read fault"), std::string::npos);
}

TEST(Sim, CycleLimit) {
  Module M;
  M.EntryFunction = "t";
  Function F("t");
  BasicBlock A("spin");
  A.Instrs = {b("spin")};
  F.Blocks.push_back(A);
  M.Functions.push_back(F);
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok());
  SimOptions SO;
  SO.MaxCycles = 1000;
  RunStats S = runImage(LR.Img, SO);
  EXPECT_FALSE(S.ok());
  EXPECT_TRUE(S.HitCycleLimit);
}

TEST(Sim, WfiCountsSleepEvents) {
  RunStats S = runSnippet({wfi(), wfi(), movImm(R0, 1)});
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(S.SleepEvents, 2u);
}
