//===- tests/StoreIntegrityTest.cpp - checksummed store end to end -----------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The store-integrity contract: CRC32C record framing (a flipped bit
/// anywhere in any store file is never served), quarantine of damaged
/// lines, cross-process rewrite locking, orphaned-temporary sweeping,
/// fsck detection and self-repair, read-side fault injection, and a
/// multi-writer storm under injected faults that must lose no durable
/// record. The process-level SIGKILL variant of the storm lives in CI;
/// here the same machinery is driven in-process for determinism.
///
//===----------------------------------------------------------------------===//

#include "campaign/CacheStore.h"
#include "campaign/Campaign.h"
#include "campaign/Report.h"
#include "support/Checksum.h"
#include "support/FaultInjector.h"
#include "support/FileLock.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace ramloc;

namespace {

/// A fresh, empty directory under the test temp root.
std::string freshDir(const std::string &Name) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / "ramloc-integrity" /
      Name;
  std::filesystem::remove_all(Dir);
  return Dir.string();
}

std::string slurp(const std::string &Path) {
  std::string Out;
  EXPECT_TRUE(readTextFile(Path, Out));
  return Out;
}

/// Two cheap Measure jobs, the same grid throughout the file.
GridSpec tinyGrid() {
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.RsparePoints = {256, 512};
  return Grid;
}

/// A hand-built successful result: enough fields for the report dialect
/// to round-trip without running a pipeline.
JobResult makeResult(unsigned Rspare) {
  JobResult R;
  R.Spec.Benchmark = "crc32";
  R.Spec.RspareBytes = Rspare;
  R.Spec.Kind = JobKind::ModelOnly;
  R.PredictedBaseEnergyMilliJoules = 2.0;
  R.PredictedOptEnergyMilliJoules = 1.0 + Rspare * 1e-6;
  R.PredictedBaseCycles = 1000;
  R.PredictedOptCycles = 900;
  R.RamBytes = Rspare / 2;
  R.MovedBlocks = 3;
  return R;
}

/// Uninstalls whatever injector a test left behind, so suites stay
/// independent even when an assertion fails mid-test.
struct FaultTestGuard : ::testing::Test {
  ~FaultTestGuard() override { FaultInjector::uninstall(); }
};

/// A cache directory pre-seeded with two results via save(), plus the
/// untouched on-disk bytes for tamper-and-restore loops.
struct SeededStore {
  std::string Dir;
  std::string ResultsDoc;
};

SeededStore seedResults(const std::string &Name) {
  SeededStore S;
  S.Dir = freshDir(Name);
  CacheStore Store;
  EXPECT_TRUE(Store.open(S.Dir));
  Store.cache().insert(makeResult(256).Spec.cacheKey(), makeResult(256));
  Store.cache().insert(makeResult(512).Spec.cacheKey(), makeResult(512));
  EXPECT_TRUE(Store.save());
  S.ResultsDoc = slurp(Store.path());
  return S;
}

std::string storeFile(const std::string &Dir, const char *Name) {
  return (std::filesystem::path(Dir) / Name).string();
}

} // namespace

//===----------------------------------------------------------------------===//
// CRC32C and the framed-line layout
//===----------------------------------------------------------------------===//

TEST(Checksum, Crc32cMatchesTheStandardVectors) {
  // The iSCSI/ext4/LevelDB polynomial's canonical check value.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  // Incremental == one-shot.
  EXPECT_EQ(crc32c("6789", crc32c("12345")), crc32c("123456789"));
  // A single flipped bit anywhere changes the sum.
  EXPECT_NE(crc32c("123456788"), crc32c("123456789"));
}

TEST(Checksum, FrameRoundTripsAndRejectsDamage) {
  std::string Payload = "{\"k\":\"v\",\"n\":1.5}";
  std::string Line = frameRecord(Payload);
  ASSERT_EQ(Line.size(), Payload.size() + 9);
  EXPECT_EQ(Line[8], ' ');

  std::string_view Out;
  ASSERT_TRUE(unframeRecord(Line, Out));
  EXPECT_EQ(Out, Payload);

  // Too short, malformed prefix, uppercase hex, payload tamper, prefix
  // tamper: every shape of damage is rejected.
  EXPECT_FALSE(unframeRecord("", Out));
  EXPECT_FALSE(unframeRecord("0123456", Out));
  EXPECT_FALSE(unframeRecord("xyzzyxyz " + Payload, Out));
  std::string Upper = Line;
  for (int I = 0; I != 8; ++I)
    Upper[I] = static_cast<char>(std::toupper(Upper[I]));
  if (Upper != Line) // all-digit checksums have no case to flip
    EXPECT_FALSE(unframeRecord(Upper, Out));
  std::string TornPayload = Line.substr(0, Line.size() - 1);
  EXPECT_FALSE(unframeRecord(TornPayload, Out));
  std::string Fused = Line + Line;
  EXPECT_FALSE(unframeRecord(Fused, Out));
}

TEST(Checksum, EveryBitFlipInAFramedLineIsCaught) {
  std::string Line = frameRecord("{\"group\":\"g\",\"energy_mj\":1.25}");
  std::string_view Out;
  ASSERT_TRUE(unframeRecord(Line, Out));
  for (size_t Byte = 0; Byte != Line.size(); ++Byte)
    for (int Bit = 0; Bit != 8; ++Bit) {
      std::string Flipped = Line;
      Flipped[Byte] = static_cast<char>(Flipped[Byte] ^ (1 << Bit));
      EXPECT_FALSE(unframeRecord(Flipped, Out))
          << "byte " << Byte << " bit " << Bit << " slipped through";
    }
}

//===----------------------------------------------------------------------===//
// Flipped bits are never served — any file, any line
//===----------------------------------------------------------------------===//

TEST(StoreIntegrity, FlippedResultBitsAreQuarantinedNotServed) {
  SeededStore S = seedResults("flip-results");
  std::string Path = storeFile(S.Dir, "results.jsonl");

  // Flip single bits across the final record line — prefix, separator,
  // and payload positions — and prove the damaged record never loads.
  size_t LastStart = S.ResultsDoc.rfind('\n', S.ResultsDoc.size() - 2) + 1;
  size_t LastLen = S.ResultsDoc.size() - LastStart - 1; // sans newline
  for (size_t Byte : {size_t(0), size_t(4), size_t(8), size_t(9),
                      LastLen / 2, LastLen - 1}) {
    for (int Bit : {0, 3, 7}) {
      std::string Doc = S.ResultsDoc;
      Doc[LastStart + Byte] =
          static_cast<char>(Doc[LastStart + Byte] ^ (1 << Bit));
      if (Doc == S.ResultsDoc)
        continue;
      ASSERT_TRUE(writeTextFile(Path, Doc));
      CacheStore Store;
      ASSERT_TRUE(Store.open(S.Dir));
      EXPECT_EQ(Store.loadedEntries(), 1u)
          << "byte " << Byte << " bit " << Bit;
      EXPECT_EQ(Store.skippedLines(), 1u);
      EXPECT_EQ(Store.crcMismatches(), 1u);
      EXPECT_FALSE(Store.invalidated());
    }
  }

  // The damaged line was preserved: the quarantine holds tampered bytes
  // verbatim, and the metric counted every catch.
  std::string Q = slurp(Path + ".quarantine");
  EXPECT_FALSE(Q.empty());
  EXPECT_GT(globalMetrics().counterValue("cachestore.crc_mismatch"), 0u);
}

TEST(StoreIntegrity, FlippedProfileBitIsNeverServed) {
  std::string Dir = freshDir("flip-profiles");
  GridSpec Grid = tinyGrid();
  Grid.Kind = JobKind::ModelOnly;
  Grid.FreqModes = {FreqMode::Profiled};
  Grid.RsparePoints = {256}; // one job, one profile record
  {
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    CampaignOptions Opts;
    Opts.Cache = &Store.cache();
    Opts.Profiles = &Store.profiles();
    runCampaign(Grid, Opts);
    ASSERT_TRUE(Store.save());
  }
  std::string Path = storeFile(Dir, "profiles.jsonl");
  std::string Doc = slurp(Path);
  size_t RecordStart = Doc.find('\n') + 1;
  size_t RecordMid = RecordStart + (Doc.size() - RecordStart) / 2;
  Doc[RecordMid] = static_cast<char>(Doc[RecordMid] ^ 0x01);
  ASSERT_TRUE(writeTextFile(Path, Doc));

  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  EXPECT_EQ(Store.loadedProfiles(), 0u);
  EXPECT_EQ(Store.skippedProfileLines(), 1u);
  EXPECT_EQ(Store.crcMismatches(), 1u);
  EXPECT_TRUE(std::filesystem::exists(Path + ".quarantine"));
}

TEST(StoreIntegrity, FlippedIncumbentBitIsNeverServed) {
  std::string Dir = freshDir("flip-incumbents");
  {
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    Store.incumbents().offer("g", {true, false}, 3.0);
    ASSERT_TRUE(Store.save());
  }
  std::string Path = storeFile(Dir, "incumbents.jsonl");
  std::string Doc = slurp(Path);
  // Flip the energy's leading digit: without the CRC this still parses
  // as JSON and would silently seed a *wrong* energy — the exact silent
  // corruption the frame exists to stop.
  size_t Pos = Doc.find("\"energy_mj\":");
  ASSERT_NE(Pos, std::string::npos);
  Pos += std::string("\"energy_mj\":").size();
  ASSERT_TRUE(std::isdigit(static_cast<unsigned char>(Doc[Pos])));
  Doc[Pos] = Doc[Pos] == '3' ? '7' : '3';
  ASSERT_TRUE(writeTextFile(Path, Doc));

  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  EXPECT_EQ(Store.loadedIncumbents(), 0u);
  EXPECT_EQ(Store.skippedIncumbentLines(), 1u);
  EXPECT_EQ(Store.incumbents().size(), 0u);
  EXPECT_EQ(Store.crcMismatches(), 1u);
}

TEST(StoreIntegrity, FlippedJournalBitIsNeverReplayed) {
  std::string Dir = freshDir("flip-journal");
  std::string Error;
  {
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    ASSERT_TRUE(Store.beginJournal("cfg", /*Resume=*/false, &Error))
        << Error;
    ASSERT_TRUE(Store.appendJournal(makeResult(256), &Error)) << Error;
    ASSERT_TRUE(Store.appendJournal(makeResult(512), &Error)) << Error;
  }
  std::string Path = storeFile(Dir, "progress.jsonl");
  std::string Doc = slurp(Path);
  size_t Second = Doc.find('\n', Doc.find('\n') + 1) + 1; // third line
  size_t Mid = Second + (Doc.size() - Second) / 2;
  Doc[Mid] = static_cast<char>(Doc[Mid] ^ 0x01);
  ASSERT_TRUE(writeTextFile(Path, Doc));

  CacheStore Resumed;
  ASSERT_TRUE(Resumed.open(Dir));
  ASSERT_TRUE(Resumed.beginJournal("cfg", /*Resume=*/true, &Error))
      << Error;
  ASSERT_EQ(Resumed.journalEntries().size(), 1u);
  EXPECT_EQ(Resumed.journalEntries()[0].Spec.RspareBytes, 256u);
  EXPECT_EQ(Resumed.journalSkipped(), 1u);
  EXPECT_EQ(Resumed.crcMismatches(), 1u);
}

//===----------------------------------------------------------------------===//
// Header damage: stale, truncated, bit-flipped — empty store, never a
// crash, never silent reuse
//===----------------------------------------------------------------------===//

namespace {

enum class HeaderTamper { Stale, Truncated, Flipped };

/// Replaces/damages the first line of \p Path per \p Mode. Stale writes
/// a correctly framed header naming another world — CRC-valid, still
/// unusable; the other two damage the frame itself.
void tamperHeader(const std::string &Path, HeaderTamper Mode) {
  std::string Doc;
  ASSERT_TRUE(readTextFile(Path, Doc));
  size_t NL = Doc.find('\n');
  ASSERT_NE(NL, std::string::npos);
  std::string Header = Doc.substr(0, NL);
  std::string Rest = Doc.substr(NL); // keeps the leading newline
  switch (Mode) {
  case HeaderTamper::Stale:
    Header = frameRecord(
        "{\"schema\":\"ramloc-elsewhere-v9\",\"fingerprint\":\"0\"}");
    break;
  case HeaderTamper::Truncated:
    Header = Header.substr(0, Header.size() / 2);
    break;
  case HeaderTamper::Flipped:
    Header[Header.size() / 2] =
        static_cast<char>(Header[Header.size() / 2] ^ 0x04);
    break;
  }
  ASSERT_TRUE(writeTextFile(Path, Header + Rest));
}

} // namespace

TEST(StoreIntegrity, DamagedResultHeadersYieldEmptyUsableStore) {
  for (HeaderTamper Mode : {HeaderTamper::Stale, HeaderTamper::Truncated,
                            HeaderTamper::Flipped}) {
    SeededStore S = seedResults("hdr-results");
    tamperHeader(storeFile(S.Dir, "results.jsonl"), Mode);
    CacheStore Store;
    ASSERT_TRUE(Store.open(S.Dir));
    EXPECT_EQ(Store.loadedEntries(), 0u);
    EXPECT_TRUE(Store.invalidated());
    // Usable: a save() repairs the file and the next load is clean.
    Store.cache().insert(makeResult(768).Spec.cacheKey(), makeResult(768));
    ASSERT_TRUE(Store.save());
    CacheStore After;
    ASSERT_TRUE(After.open(S.Dir));
    EXPECT_EQ(After.loadedEntries(), 1u);
    EXPECT_EQ(After.skippedLines(), 0u);
    EXPECT_FALSE(After.invalidated());
  }
}

TEST(StoreIntegrity, DamagedProfileAndIncumbentHeadersYieldEmptyStore) {
  for (HeaderTamper Mode : {HeaderTamper::Stale, HeaderTamper::Truncated,
                            HeaderTamper::Flipped}) {
    std::string Dir = freshDir("hdr-side");
    {
      CacheStore Store;
      ASSERT_TRUE(Store.open(Dir));
      Store.incumbents().offer("g", {true}, 1.0);
      ASSERT_TRUE(Store.save());
    }
    tamperHeader(storeFile(Dir, "incumbents.jsonl"), Mode);
    tamperHeader(storeFile(Dir, "profiles.jsonl"), Mode);
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    EXPECT_EQ(Store.loadedIncumbents(), 0u);
    EXPECT_EQ(Store.loadedProfiles(), 0u);
    EXPECT_EQ(Store.incumbents().size(), 0u);
    // Usable: save rewrites both sidecar files cleanly.
    Store.incumbents().offer("h", {false, true}, 2.0);
    ASSERT_TRUE(Store.save());
    CacheStore After;
    ASSERT_TRUE(After.open(Dir));
    EXPECT_EQ(After.loadedIncumbents(), 1u);
  }
}

TEST(StoreIntegrity, DamagedJournalHeadersReplayNothing) {
  for (HeaderTamper Mode : {HeaderTamper::Stale, HeaderTamper::Truncated,
                            HeaderTamper::Flipped}) {
    std::string Dir = freshDir("hdr-journal");
    std::string Error;
    {
      CacheStore Store;
      ASSERT_TRUE(Store.open(Dir));
      ASSERT_TRUE(Store.beginJournal("cfg", false, &Error)) << Error;
      ASSERT_TRUE(Store.appendJournal(makeResult(256), &Error)) << Error;
    }
    tamperHeader(storeFile(Dir, "progress.jsonl"), Mode);
    CacheStore Resumed;
    ASSERT_TRUE(Resumed.open(Dir));
    ASSERT_TRUE(Resumed.beginJournal("cfg", true, &Error)) << Error;
    EXPECT_EQ(Resumed.journalEntries().size(), 0u);
    // Usable: the header was rewritten fresh, appends and a later
    // resume work.
    ASSERT_TRUE(Resumed.appendJournal(makeResult(512), &Error)) << Error;
    CacheStore Again;
    ASSERT_TRUE(Again.open(Dir));
    ASSERT_TRUE(Again.beginJournal("cfg", true, &Error)) << Error;
    EXPECT_EQ(Again.journalEntries().size(), 1u);
  }
}

//===----------------------------------------------------------------------===//
// Quarantine
//===----------------------------------------------------------------------===//

TEST(StoreIntegrity, QuarantineDeduplicatesAcrossRepeatedLoads) {
  SeededStore S = seedResults("quarantine");
  std::string Path = storeFile(S.Dir, "results.jsonl");
  std::string Doc = S.ResultsDoc;
  size_t Mid = Doc.size() / 2;
  Doc[Mid] = static_cast<char>(Doc[Mid] ^ 0x01);
  ASSERT_TRUE(writeTextFile(Path, Doc));

  for (int Round = 0; Round != 3; ++Round) {
    CacheStore Store;
    ASSERT_TRUE(Store.open(S.Dir));
    EXPECT_EQ(Store.crcMismatches(), 1u);
  }
  // Three loads of the same damage: one quarantined line, not three.
  std::string Q = slurp(Path + ".quarantine");
  EXPECT_EQ(std::count(Q.begin(), Q.end(), '\n'), 1);
  // And the quarantined bytes are the damaged line verbatim.
  size_t LineStart = Doc.rfind('\n', Mid) + 1;
  size_t LineEnd = Doc.find('\n', Mid);
  EXPECT_EQ(Q, Doc.substr(LineStart, LineEnd - LineStart) + "\n");
}

//===----------------------------------------------------------------------===//
// Cross-process locking (flock is per open file description, so two
// FileLock objects in one process exclude each other like processes do)
//===----------------------------------------------------------------------===//

TEST(FileLockTest, ExcludesASecondHolderUntilReleased) {
  std::string Dir = freshDir("lock");
  std::filesystem::create_directories(Dir);
  std::string LockPath = storeFile(Dir, "results.jsonl.lock");

  FileLock A, B;
  ASSERT_TRUE(A.acquire(LockPath, 100));
  EXPECT_TRUE(A.held());
  EXPECT_EQ(A.path(), LockPath);

  std::string Error;
  EXPECT_FALSE(B.acquire(LockPath, 50, &Error));
  EXPECT_NE(Error.find("timed out"), std::string::npos);
  EXPECT_FALSE(B.held());

  A.release();
  EXPECT_FALSE(A.held());
  EXPECT_TRUE(B.acquire(LockPath, 100));
  B.release();

  // The lock file survives release — unlinking it would reintroduce the
  // race it closes.
  EXPECT_TRUE(std::filesystem::exists(LockPath));
}

TEST(FileLockTest, ReacquiringAHeldLockIsAnError) {
  std::string Dir = freshDir("lock-reacquire");
  std::filesystem::create_directories(Dir);
  FileLock A;
  ASSERT_TRUE(A.acquire(storeFile(Dir, "x.lock"), 100));
  std::string Error;
  EXPECT_FALSE(A.acquire(storeFile(Dir, "y.lock"), 100, &Error));
  EXPECT_NE(Error.find("already held"), std::string::npos);
}

TEST_F(FaultTestGuard, InjectedLockContentionTimesOutAndCounts) {
  std::string Dir = freshDir("lock-fault");
  std::filesystem::create_directories(Dir);
  FaultInjector F;
  F.arm("cache.lock", 1.0);
  F.install();

  uint64_t WaitsBefore =
      globalMetrics().counterValue("cachestore.lock_waits");
  FileLock L;
  std::string Error;
  EXPECT_FALSE(L.acquire(storeFile(Dir, "z.lock"), 40, &Error));
  EXPECT_NE(Error.find("timed out"), std::string::npos);
  EXPECT_GT(F.firedCount("cache.lock"), 0u);
  EXPECT_GT(globalMetrics().counterValue("cachestore.lock_waits"),
            WaitsBefore);

  // Clear the fault: the same lock acquires instantly.
  FaultInjector::uninstall();
  EXPECT_TRUE(L.acquire(storeFile(Dir, "z.lock"), 100));
}

TEST(StoreIntegrity, CompactionWaitsOnTheRewriteLock) {
  SeededStore S = seedResults("lock-compact");
  CacheStore Store;
  ASSERT_TRUE(Store.open(S.Dir));
  Store.setLockWaitMs(50);

  FileLock Holder;
  ASSERT_TRUE(
      Holder.acquire(storeFile(S.Dir, "results.jsonl.lock"), 100));
  std::string Error;
  EXPECT_FALSE(Store.compact(&Error));
  EXPECT_NE(Error.find("timed out"), std::string::npos);

  Holder.release();
  EXPECT_TRUE(Store.compact(&Error)) << Error;
}

//===----------------------------------------------------------------------===//
// Orphaned temporaries
//===----------------------------------------------------------------------===//

TEST(StoreIntegrity, OpenSweepsDeadWritersTempsOnly) {
  SeededStore S = seedResults("orphans");

  // A genuinely dead PID: fork a child that exits immediately and reap
  // it, so kill(pid, 0) is guaranteed ESRCH (no recycling race within
  // this test's lifetime).
  pid_t Dead = fork();
  ASSERT_GE(Dead, 0);
  if (Dead == 0)
    _exit(0);
  int Status = 0;
  ASSERT_EQ(waitpid(Dead, &Status, 0), Dead);

  std::string Orphan =
      storeFile(S.Dir, "results.jsonl.tmp.") + std::to_string(Dead);
  std::string Live = storeFile(S.Dir, "profiles.jsonl.tmp.") +
                     std::to_string(::getpid());
  std::string NotATemp = storeFile(S.Dir, "results.jsonl.tmp.abc");
  ASSERT_TRUE(writeTextFile(Orphan, "half-written\n"));
  ASSERT_TRUE(writeTextFile(Live, "in-flight\n"));
  ASSERT_TRUE(writeTextFile(NotATemp, "not ours to judge\n"));

  CacheStore Store;
  ASSERT_TRUE(Store.open(S.Dir));
  ASSERT_EQ(Store.sweptTempFiles().size(), 1u);
  EXPECT_EQ(Store.sweptTempFiles()[0],
            "results.jsonl.tmp." + std::to_string(Dead));
  EXPECT_FALSE(std::filesystem::exists(Orphan));
  EXPECT_TRUE(std::filesystem::exists(Live));     // live writer: untouched
  EXPECT_TRUE(std::filesystem::exists(NotATemp)); // not a PID temp

  // fsck reports the sweep as damage once; a later open is clean.
  CacheStore::FsckReport Report;
  ASSERT_TRUE(Store.fsck(/*Repair=*/false, Report));
  EXPECT_EQ(Report.OrphanedTemps.size(), 1u);
  EXPECT_TRUE(Report.damaged());

  std::filesystem::remove(Live);
  CacheStore Clean;
  ASSERT_TRUE(Clean.open(S.Dir));
  EXPECT_TRUE(Clean.sweptTempFiles().empty());
}

//===----------------------------------------------------------------------===//
// Read-side fault sites
//===----------------------------------------------------------------------===//

TEST_F(FaultTestGuard, InjectedLoadEioReadsAsAbsentStore) {
  SeededStore S = seedResults("load-eio");
  FaultInjector F;
  F.arm("cache.load.eio", 1.0);
  F.install();

  CacheStore Store;
  ASSERT_TRUE(Store.open(S.Dir));
  EXPECT_EQ(Store.loadedEntries(), 0u);
  EXPECT_EQ(Store.skippedLines(), 0u); // unreadable, not corrupt
  EXPECT_FALSE(Store.invalidated());

  // The bytes were never touched: without the fault everything loads.
  FaultInjector::uninstall();
  CacheStore Clean;
  ASSERT_TRUE(Clean.open(S.Dir));
  EXPECT_EQ(Clean.loadedEntries(), 2u);
}

TEST_F(FaultTestGuard, InjectedLoadFlipsAreCaughtByTheCrc) {
  SeededStore S = seedResults("load-flip");
  FaultInjector F;
  F.arm("cache.load.flip", 1.0);
  F.install();

  // Every line read gets one bit flipped in memory; the CRC must catch
  // each one — the header's flip strands the records behind it.
  CacheStore Store;
  ASSERT_TRUE(Store.open(S.Dir));
  EXPECT_EQ(Store.loadedEntries(), 0u);
  EXPECT_GE(Store.crcMismatches(), 1u);
  EXPECT_GT(F.firedCount("cache.load.flip"), 0u);

  FaultInjector::uninstall();
  CacheStore Clean;
  ASSERT_TRUE(Clean.open(S.Dir));
  EXPECT_EQ(Clean.loadedEntries(), 2u); // the file itself is undamaged
}

//===----------------------------------------------------------------------===//
// fsck: detect, repair, converge
//===----------------------------------------------------------------------===//

TEST(StoreIntegrity, FsckReportsCleanStoresAndToleratesDuplicates) {
  std::string Dir = freshDir("fsck-clean");
  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  Store.incumbents().offer("g", {false, false}, 9.0);
  ASSERT_TRUE(Store.save());
  Store.incumbents().offer("g", {true, false}, 3.0);
  ASSERT_TRUE(Store.save()); // improvement re-appends: duplicate group

  CacheStore::FsckReport Report;
  ASSERT_TRUE(Store.fsck(false, Report));
  ASSERT_EQ(Report.Files.size(), 4u);
  EXPECT_FALSE(Report.damaged());
  const CacheStore::FsckFile &Inc = Report.Files[2];
  EXPECT_EQ(Inc.Name, "incumbents");
  EXPECT_EQ(Inc.Valid, 1u);
  EXPECT_EQ(Inc.Duplicate, 1u); // benign: best-wins folds it on load
  EXPECT_FALSE(Inc.damaged());
  EXPECT_FALSE(Report.Files[3].Present); // no journal in flight
}

TEST(StoreIntegrity, FsckDetectsRepairsAndConverges) {
  SeededStore S = seedResults("fsck-repair");
  std::string Path = storeFile(S.Dir, "results.jsonl");
  std::string Doc = S.ResultsDoc;
  Doc[Doc.size() / 2] = static_cast<char>(Doc[Doc.size() / 2] ^ 0x01);
  Doc += "never framed at all\n";
  ASSERT_TRUE(writeTextFile(Path, Doc));

  CacheStore Store;
  ASSERT_TRUE(Store.open(S.Dir));
  CacheStore::FsckReport Before;
  ASSERT_TRUE(Store.fsck(/*Repair=*/false, Before));
  EXPECT_TRUE(Before.damaged());
  EXPECT_EQ(Before.Files[0].Corrupt, 2u);
  EXPECT_EQ(Before.Files[0].Valid, 1u);

  std::string Error;
  ASSERT_TRUE(Store.fsck(/*Repair=*/true, Before, &Error)) << Error;

  // Repair converged: a fresh walk is clean, the survivor still loads,
  // and the evidence is in quarantine.
  CacheStore After;
  ASSERT_TRUE(After.open(S.Dir));
  EXPECT_EQ(After.loadedEntries(), 1u);
  EXPECT_EQ(After.skippedLines(), 0u);
  CacheStore::FsckReport Clean;
  ASSERT_TRUE(After.fsck(false, Clean));
  EXPECT_FALSE(Clean.damaged());
  EXPECT_TRUE(std::filesystem::exists(Path + ".quarantine"));
}

TEST(StoreIntegrity, FsckRepairsTheJournalKeepingItsHeaderVerbatim) {
  std::string Dir = freshDir("fsck-journal");
  std::string Error;
  {
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    ASSERT_TRUE(Store.beginJournal("cfg", false, &Error)) << Error;
    ASSERT_TRUE(Store.appendJournal(makeResult(256), &Error)) << Error;
    ASSERT_TRUE(Store.appendJournal(makeResult(512), &Error)) << Error;
  }
  std::string Path = storeFile(Dir, "progress.jsonl");
  std::string Doc = slurp(Path);
  std::string Header = Doc.substr(0, Doc.find('\n'));
  size_t Second = Doc.find('\n', Doc.find('\n') + 1) + 1;
  size_t Mid = Second + (Doc.size() - Second) / 2;
  Doc[Mid] = static_cast<char>(Doc[Mid] ^ 0x01);
  ASSERT_TRUE(writeTextFile(Path, Doc));

  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  CacheStore::FsckReport Report;
  ASSERT_TRUE(Store.fsck(/*Repair=*/true, Report, &Error)) << Error;
  EXPECT_EQ(Report.Files[3].Corrupt, 1u);
  EXPECT_EQ(Report.Files[3].Valid, 1u);

  // The pinned configuration survived untouched and the valid entry
  // still replays.
  std::string Repaired = slurp(Path);
  EXPECT_EQ(Repaired.substr(0, Repaired.find('\n')), Header);
  CacheStore Resumed;
  ASSERT_TRUE(Resumed.open(Dir));
  ASSERT_TRUE(Resumed.beginJournal("cfg", true, &Error)) << Error;
  ASSERT_EQ(Resumed.journalEntries().size(), 1u);
  EXPECT_EQ(Resumed.journalEntries()[0].Spec.RspareBytes, 256u);
  EXPECT_EQ(Resumed.journalSkipped(), 0u);
}

TEST(StoreIntegrity, FsckRemovesAJournalWithAnUntrustedHeader) {
  std::string Dir = freshDir("fsck-journal-hdr");
  std::string Error;
  {
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    ASSERT_TRUE(Store.beginJournal("cfg", false, &Error)) << Error;
    ASSERT_TRUE(Store.appendJournal(makeResult(256), &Error)) << Error;
  }
  std::string Path = storeFile(Dir, "progress.jsonl");
  tamperHeader(Path, HeaderTamper::Flipped);

  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  CacheStore::FsckReport Report;
  ASSERT_TRUE(Store.fsck(/*Repair=*/true, Report, &Error)) << Error;
  EXPECT_FALSE(Report.Files[3].HeaderOk);
  EXPECT_FALSE(std::filesystem::exists(Path));
}

//===----------------------------------------------------------------------===//
// Multi-writer storm under injected faults: no durable record is lost
//===----------------------------------------------------------------------===//

TEST_F(FaultTestGuard, WriterStormUnderFaultsLosesNoDurableRecord) {
  std::string Dir = freshDir("storm");
  {
    // Concurrent writers share the store append-only (one O_APPEND
    // write per record); the initial header rewrite is not a concurrent
    // operation, so lay it down before the threads start — exactly what
    // a sharded campaign driver does by opening the store up front.
    CacheStore Seed;
    ASSERT_TRUE(Seed.open(Dir));
    Seed.cache().insert(makeResult(1).Spec.cacheKey(), makeResult(1));
    ASSERT_TRUE(Seed.save());
  }

  // Every write path hurts some of the time: torn appends, EIO on open,
  // failed renames, contended locks. Deterministic seed, so a failure
  // here replays exactly.
  FaultInjector F;
  F.arm("cache.append.short", 0.15, 99);
  F.arm("cache.append.eio", 0.15, 99);
  F.arm("cache.rename", 0.15, 99);
  F.arm("cache.lock", 0.10, 99);
  F.install();

  constexpr unsigned Writers = 4;
  constexpr unsigned Rounds = 10;
  std::mutex Mu;
  std::set<std::string> Durable;

  std::vector<std::thread> Threads;
  for (unsigned W = 0; W != Writers; ++W)
    Threads.emplace_back([&, W] {
      CacheStore Store;
      if (!Store.open(Dir))
        return;
      Store.setLockWaitMs(2000);
      for (unsigned R = 0; R != Rounds; ++R) {
        JobResult Result = makeResult(1000 + W * 100 + R);
        std::string Key = Result.Spec.cacheKey();
        Store.cache().insert(Key, Result);
        // save() returning true is the durability contract: from that
        // moment the record must survive anything short of disk loss.
        if (Store.save()) {
          std::lock_guard<std::mutex> Lock(Mu);
          Durable.insert(Key);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  FaultInjector::uninstall();

  ASSERT_FALSE(Durable.empty()); // faults must not have starved everyone
  CacheStore Survivor;
  ASSERT_TRUE(Survivor.open(Dir));
  for (const std::string &Key : Durable) {
    JobResult Out;
    EXPECT_TRUE(Survivor.cache().lookup(Key, Out))
        << "durable record lost: " << Key;
  }

  // The wreckage the faults left (torn tails, duplicate re-appends) is
  // damage fsck can see and repair away completely.
  CacheStore::FsckReport Report;
  ASSERT_TRUE(Survivor.fsck(/*Repair=*/true, Report));
  CacheStore Clean;
  ASSERT_TRUE(Clean.open(Dir));
  CacheStore::FsckReport After;
  ASSERT_TRUE(Clean.fsck(false, After));
  EXPECT_FALSE(After.damaged());
  for (const std::string &Key : Durable) {
    JobResult Out;
    EXPECT_TRUE(Clean.cache().lookup(Key, Out));
  }
}
