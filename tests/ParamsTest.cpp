//===- tests/ParamsTest.cpp - model parameter extraction --------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "core/BlockParams.h"

#include <gtest/gtest.h>

using namespace ramloc;
using namespace ramloc::build;

namespace {

BasicBlock makeBlock(const std::string &Label, std::vector<Instr> Instrs) {
  BasicBlock BB(Label);
  BB.Instrs = std::move(Instrs);
  return BB;
}

Module figure2Module() {
  Module M;
  M.EntryFunction = "fn";
  Function F("fn");
  F.Blocks.push_back(makeBlock("init", {movImm(R1, 1), movImm(R0, 0)}));
  F.Blocks.push_back(makeBlock("loop", {mul(R1, R1, R2),
                                        addImm(R0, R0, 1),
                                        cmpImm(R0, 64),
                                        bCond(Cond::NE, "loop")}));
  F.Blocks.push_back(
      makeBlock("if", {cmpImm(R1, 255), bCond(Cond::LE, "return")}));
  F.Blocks.push_back(makeBlock("iftrue", {movImm(R0, 255), b("return")}));
  F.Blocks.push_back(makeBlock("return", {movReg(R0, R1), bx(LR)}));
  M.Functions.push_back(F);
  return M;
}

ModelParams extractFigure2(Module &M) {
  ModuleFrequency Freq = estimateModuleFrequency(M);
  return extractParams(M, Freq, PowerModel::stm32f100());
}

} // namespace

TEST(Params, GlobalNumbering) {
  Module M = figure2Module();
  ModelParams MP = extractFigure2(M);
  ASSERT_EQ(MP.numBlocks(), 5u);
  EXPECT_EQ(MP.globalIndex(0, 2), 2u);
  EXPECT_EQ(MP.Blocks[1].Name, "fn:loop");
}

TEST(Params, SizesCountEncodingsAndPools) {
  Module M = figure2Module();
  ModelParams MP = extractFigure2(M);
  // init: two 16-bit movs = 4 bytes.
  EXPECT_EQ(MP.Blocks[0].Sb, 4u);
  // loop: mul(2) + add(2) + cmp(2) + bne(2) = 8.
  EXPECT_EQ(MP.Blocks[1].Sb, 8u);

  // A block with a literal load also counts its pool word.
  M.addRodataWords("tab", {1});
  M.Functions[0].Blocks[0].Instrs.push_back(ldrLitSym(R3, "tab"));
  ModelParams MP2 = extractFigure2(M);
  EXPECT_EQ(MP2.Blocks[0].Sb, 4u + 2u + 4u);
}

TEST(Params, CyclesUseTakenProbability) {
  Module M = figure2Module();
  ModelParams MP = extractFigure2(M);
  // loop: mul(1) + add(1) + cmp(1) + bne at p=0.9: 0.9*3 + 0.1*1 = 2.8.
  EXPECT_NEAR(MP.Blocks[1].Cb, 3.0 + 2.8, 1e-9);
  // Instruction-count metric sees 4 instructions.
  EXPECT_DOUBLE_EQ(MP.Blocks[1].Ib, 4.0);
}

TEST(Params, FrequencyFromLoopDepth) {
  Module M = figure2Module();
  ModelParams MP = extractFigure2(M);
  EXPECT_DOUBLE_EQ(MP.Blocks[0].Fb, 1.0);
  EXPECT_DOUBLE_EQ(MP.Blocks[1].Fb, 10.0);
  EXPECT_DOUBLE_EQ(MP.Blocks[4].Fb, 1.0);
}

TEST(Params, Figure4InstrumentationCosts) {
  Module M = figure2Module();
  ModelParams MP = extractFigure2(M);

  // loop ends in a conditional branch: 8-2 = 6 extra instruction bytes
  // plus two pool words; cycles 7 - (0.9*3 + 0.1*1) = 4.2.
  EXPECT_EQ(MP.Blocks[1].Kb, 6u + 8u);
  EXPECT_NEAR(MP.Blocks[1].Tb, 7.0 - 2.8, 1e-9);
  EXPECT_DOUBLE_EQ(MP.Blocks[1].TbInstr, 3.0);

  // iftrue ends in an unconditional branch: 2 extra bytes + one pool
  // word; 4 - 3 = 1 extra cycle.
  EXPECT_EQ(MP.Blocks[3].Kb, 2u + 4u);
  EXPECT_NEAR(MP.Blocks[3].Tb, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(MP.Blocks[3].TbInstr, 0.0);

  // init falls through: a whole new ldr pc (4 bytes + pool, 4 cycles).
  EXPECT_EQ(MP.Blocks[0].Kb, 4u + 4u);
  EXPECT_NEAR(MP.Blocks[0].Tb, 4.0, 1e-9);

  // return needs nothing (bx lr is already indirect).
  EXPECT_EQ(MP.Blocks[4].Kb, 0u);
  EXPECT_DOUBLE_EQ(MP.Blocks[4].Tb, 0.0);
}

TEST(Params, PoolCountingCanBeDisabled) {
  Module M = figure2Module();
  ModuleFrequency Freq = estimateModuleFrequency(M);
  ExtractOptions Opts;
  Opts.CountLiteralPoolInKb = false;
  ModelParams MP = extractParams(M, Freq, PowerModel::stm32f100(), Opts);
  EXPECT_EQ(MP.Blocks[1].Kb, 6u); // Figure 4's raw byte count
  EXPECT_EQ(MP.Blocks[3].Kb, 2u);
}

TEST(Params, CmpBranchCosts) {
  Module M;
  M.EntryFunction = "f";
  Function F("f");
  F.Blocks.push_back(makeBlock("a", {cbz(R0, "out")}));
  F.Blocks.push_back(makeBlock("mid", {nop()}));
  F.Blocks.push_back(makeBlock("out", {bx(LR)}));
  M.Functions.push_back(F);
  ModuleFrequency Freq = estimateModuleFrequency(M);
  ModelParams MP = extractParams(M, Freq, PowerModel::stm32f100());
  EXPECT_EQ(MP.Blocks[0].Term, TermKind::CmpBranch);
  EXPECT_EQ(MP.Blocks[0].Kb, 8u + 8u);
  // cmp+ite+ldr+ldr+bx = 8 cycles vs 0.5*3+0.5*1 = 2 -> 6 extra.
  EXPECT_NEAR(MP.Blocks[0].Tb, 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(MP.Blocks[0].TbInstr, 4.0);
}

TEST(Params, LoadCountsIntoLb) {
  Module M;
  M.EntryFunction = "f";
  M.addBss("buf", 16);
  Function F("f");
  F.Blocks.push_back(makeBlock(
      "a", {ldrLitSym(R1, "buf"), ldrImm(R2, R1, 0), ldrImm(R3, R1, 4),
            strImm(R2, R1, 8), bx(LR)}));
  M.Functions.push_back(F);
  ModuleFrequency Freq = estimateModuleFrequency(M);
  ModelParams MP = extractParams(M, Freq, PowerModel::stm32f100());
  // Three load-class instructions (ldrLit + two ldr), store excluded.
  EXPECT_DOUBLE_EQ(MP.Blocks[0].Lb, 3.0);
}

TEST(Params, SuccessorsAndCalls) {
  Module M = figure2Module();
  Function Main("main");
  Main.Blocks.push_back(
      makeBlock("entry", {bl("fn"), bl("fn"), bkpt()}));
  M.Functions.push_back(Main);
  M.EntryFunction = "main";
  ModelParams MP = extractFigure2(M);

  // fn:loop's successors: itself and fn:if.
  EXPECT_EQ(MP.Blocks[1].Succs.size(), 2u);
  // main:entry has two calls to fn, grouped.
  const BlockParams &MainEntry = MP.Blocks[5];
  ASSERT_EQ(MainEntry.Calls.size(), 1u);
  EXPECT_EQ(MainEntry.Calls[0].CalleeEntry, 0u);
  EXPECT_EQ(MainEntry.Calls[0].Count, 2u);
}

TEST(Params, LibraryBlocksNotMovable) {
  Module M = figure2Module();
  M.Functions[0].Optimizable = false;
  ModelParams MP = extractFigure2(M);
  for (const BlockParams &B : MP.Blocks)
    EXPECT_FALSE(B.Movable);
}

TEST(Params, CalleesOfLibraryCodePinned) {
  Module M = figure2Module();
  // A library function calls fn: fn's entry must stay in flash because
  // the library call site cannot be rewritten.
  Function Lib("libfn");
  Lib.Optimizable = false;
  Lib.Blocks.push_back(makeBlock("entry", {push(1u << LR), bl("fn"),
                                           pop(1u << PC)}));
  M.Functions.push_back(Lib);
  ModelParams MP = extractFigure2(M);
  EXPECT_FALSE(MP.Blocks[0].Movable); // fn:init pinned
  EXPECT_TRUE(MP.Blocks[1].Movable);  // the loop can still move
}

TEST(Params, EnergyCoefficients) {
  Module M = figure2Module();
  ModelParams MP = extractFigure2(M);
  EXPECT_GT(MP.EFlash, MP.ERam);
  EXPECT_DOUBLE_EQ(MP.ClockHz, 24e6);
  // bl -> ldr+blx: (2+3) - 4 = 1 extra cycle.
  EXPECT_DOUBLE_EQ(MP.CallInstrCycles, 1.0);
}
