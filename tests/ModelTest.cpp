//===- tests/ModelTest.cpp - ILP model, enumerator, greedy ------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "core/Enumerator.h"
#include "core/Greedy.h"
#include "core/IlpModel.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ramloc;

namespace {

/// Builds synthetic model parameters: a chain of N blocks where block i
/// has the given frequency/size profile. Succs follow the chain; the last
/// block has none (return).
ModelParams syntheticChain(const std::vector<double> &Freqs,
                           const std::vector<unsigned> &Sizes) {
  ModelParams MP;
  MP.EFlash = 15.0;
  MP.ERam = 9.0;
  MP.FuncOffset = {0};
  unsigned N = Freqs.size();
  for (unsigned I = 0; I != N; ++I) {
    BlockParams B;
    B.Name = "f:b" + std::to_string(I);
    B.Sb = Sizes[I];
    B.Cb = 10.0;
    B.Fb = Freqs[I];
    B.Kb = 10;
    B.Tb = 4.0;
    B.Lb = 1.0;
    B.Ib = 5.0;
    B.TbInstr = 2.0;
    B.Term = I + 1 == N ? TermKind::Return : TermKind::Uncond;
    if (I + 1 != N)
      B.Succs.push_back(I + 1);
    MP.Blocks.push_back(std::move(B));
  }
  return MP;
}

ModelParams randomParams(SplitMix64 &Rng, unsigned N) {
  ModelParams MP;
  MP.EFlash = 15.0;
  MP.ERam = 9.0;
  MP.FuncOffset = {0};
  for (unsigned I = 0; I != N; ++I) {
    BlockParams B;
    B.Name = "f:b" + std::to_string(I);
    B.Sb = 4 + 2 * static_cast<unsigned>(Rng.nextBelow(30));
    B.Cb = 2.0 + static_cast<double>(Rng.nextBelow(40));
    B.Fb = static_cast<double>(1 + Rng.nextBelow(200));
    B.Kb = 6 + 2 * static_cast<unsigned>(Rng.nextBelow(6));
    B.Tb = 1.0 + static_cast<double>(Rng.nextBelow(6));
    B.Lb = static_cast<double>(Rng.nextBelow(4));
    B.Term = TermKind::Cond;
    MP.Blocks.push_back(std::move(B));
  }
  // Random successor edges (forward and backward allowed).
  for (unsigned I = 0; I != N; ++I) {
    unsigned Count = static_cast<unsigned>(Rng.nextBelow(3));
    for (unsigned C = 0; C != Count; ++C) {
      unsigned S = static_cast<unsigned>(Rng.nextBelow(N));
      if (S != I)
        MP.Blocks[I].Succs.push_back(S);
    }
  }
  return MP;
}

std::vector<unsigned> allBlocks(const ModelParams &MP) {
  std::vector<unsigned> V(MP.numBlocks());
  for (unsigned I = 0; I != V.size(); ++I)
    V[I] = I;
  return V;
}

/// Continuous random parameters: with probability 1 no two placements tie
/// on energy, so the optimum is unique and solver-vs-enumerator checks
/// can demand bit-for-bit equality on the assignment.
ModelParams randomContinuousParams(SplitMix64 &Rng, unsigned N) {
  ModelParams MP;
  MP.EFlash = 15.0;
  MP.ERam = 9.0;
  MP.FuncOffset = {0};
  for (unsigned I = 0; I != N; ++I) {
    BlockParams B;
    B.Name = "f:b" + std::to_string(I);
    B.Sb = 4 + 2 * static_cast<unsigned>(Rng.nextBelow(30));
    B.Cb = 2.0 + 38.0 * Rng.nextDouble();
    B.Fb = 1.0 + 199.0 * Rng.nextDouble();
    B.Kb = 6 + 2 * static_cast<unsigned>(Rng.nextBelow(6));
    B.Tb = 1.0 + 5.0 * Rng.nextDouble();
    B.Lb = 3.0 * Rng.nextDouble();
    B.Term = TermKind::Cond;
    MP.Blocks.push_back(std::move(B));
  }
  for (unsigned I = 0; I != N; ++I) {
    unsigned Count = static_cast<unsigned>(Rng.nextBelow(3));
    for (unsigned C = 0; C != Count; ++C) {
      unsigned S = static_cast<unsigned>(Rng.nextBelow(N));
      if (S != I)
        MP.Blocks[I].Succs.push_back(S);
    }
  }
  return MP;
}

/// The enumerator's optimum as an Assignment over all blocks.
Assignment enumeratorOptimum(const ModelParams &MP, const ModelKnobs &Knobs) {
  auto Points = enumerateSolutions(MP, allBlocks(MP));
  double BaseCycles =
      evaluateAssignment(MP, Assignment(MP.numBlocks(), false)).Cycles;
  int Best = bestFeasiblePoint(Points, BaseCycles, Knobs);
  EXPECT_GE(Best, 0); // all-flash is always feasible
  Assignment InRam(MP.numBlocks(), false);
  for (unsigned I = 0; I != MP.numBlocks(); ++I)
    InRam[I] = (Points[static_cast<unsigned>(Best)].Mask >> I) & 1;
  return InRam;
}

} // namespace

TEST(Model, InstrumentedSetMatchesEq5) {
  ModelParams MP = syntheticChain({1, 1, 1}, {10, 10, 10});
  // Middle block in RAM: both its neighbours cross.
  Assignment InRam = {false, true, false};
  std::vector<bool> I = computeInstrumented(MP, InRam);
  EXPECT_TRUE(I[0]); // 0 -> 1 crosses
  EXPECT_TRUE(I[1]); // 1 -> 2 crosses
  EXPECT_FALSE(I[2]);

  // All in RAM: no crossings.
  I = computeInstrumented(MP, {true, true, true});
  EXPECT_FALSE(I[0] || I[1] || I[2]);
}

TEST(Model, EvaluateAllFlashBaseline) {
  ModelParams MP = syntheticChain({1, 100, 1}, {10, 20, 10});
  ModelEstimate E = evaluateAssignment(MP, {false, false, false});
  // Energy = sum Fb*Cb*Eflash / clock.
  double Expected = (1 + 100 + 1) * 10.0 * 15.0 / MP.ClockHz;
  EXPECT_NEAR(E.EnergyMilliJoules, Expected, 1e-12);
  EXPECT_EQ(E.RamBytes, 0u);
  EXPECT_NEAR(E.AvgMilliWatts, 15.0, 1e-9);
}

TEST(Model, EvaluateAccountsInstrumentationBothSides) {
  ModelParams MP = syntheticChain({1, 100, 1}, {10, 20, 10});
  Assignment InRam = {false, true, false};
  ModelEstimate E = evaluateAssignment(MP, InRam);
  // Block 0 (flash, instrumented): (10 + 4)*1*15.
  // Block 1 (RAM, instrumented): (10 + 4 + 1)*100*9.
  // Block 2 (flash): 10*1*15.
  double Expected = (14.0 * 15.0 + 1500.0 * 9.0 + 10.0 * 15.0) / MP.ClockHz;
  EXPECT_NEAR(E.EnergyMilliJoules, Expected, 1e-12);
  // RAM bytes: Sb + Kb of block 1 only.
  EXPECT_EQ(E.RamBytes, 30u);
}

TEST(Model, CallEdgesCostCycles) {
  ModelParams MP = syntheticChain({1, 1}, {10, 10});
  MP.Blocks[0].Calls.push_back({1u, 3u}); // three calls to block 1
  MP.Blocks[0].Succs.clear();             // isolate the call effect
  Assignment CalleeMoved = {false, true};
  ModelEstimate Base = evaluateAssignment(MP, {false, false});
  ModelEstimate Moved = evaluateAssignment(MP, CalleeMoved);
  // Caller pays 3 * CallInstrCycles at flash power; callee gets cheaper
  // but picks up its Lb=1 contention stall: (10+1)*9 - 10*15 per exec.
  double CallPenalty = 3.0 * MP.CallInstrCycles * 1.0 * 15.0 / MP.ClockHz;
  double CalleeDelta = (11.0 * 9.0 - 10.0 * 15.0) / MP.ClockHz;
  EXPECT_NEAR(Moved.EnergyMilliJoules - Base.EnergyMilliJoules,
              CallPenalty + CalleeDelta, 1e-12);
}

TEST(Model, SolverPicksHotBlockAndTail) {
  // One hot block with a cold tail; Rspare fits {hot, tail} (30 bytes,
  // uninstrumented) but not all three blocks (40). The solver should
  // cluster the hot block with its successor rather than pay Kb.
  ModelParams MP = syntheticChain({1, 1000, 1}, {10, 20, 10});
  ModelKnobs Knobs;
  Knobs.RspareBytes = 32;
  Knobs.Xlimit = 2.0;
  Assignment R = solvePlacement(MP, Knobs);
  EXPECT_FALSE(R[0]);
  EXPECT_TRUE(R[1]);
  EXPECT_TRUE(R[2]);
}

TEST(Model, RamConstraintRespected) {
  ModelParams MP = syntheticChain({10, 10, 10}, {100, 100, 100});
  ModelKnobs Knobs;
  Knobs.RspareBytes = 150; // only one block (plus Kb) can fit
  Assignment R = solvePlacement(MP, Knobs);
  ModelEstimate E = evaluateAssignment(MP, R);
  EXPECT_LE(E.RamBytes, Knobs.RspareBytes);
}

TEST(Model, TimeConstraintRespected) {
  ModelParams MP = syntheticChain({100, 100, 100}, {10, 10, 10});
  ModelKnobs Knobs;
  Knobs.RspareBytes = 10000;
  Knobs.Xlimit = 1.02; // very tight: instrumentation overhead is large
  Assignment R = solvePlacement(MP, Knobs);
  ModelEstimate Base = evaluateAssignment(
      MP, Assignment(MP.numBlocks(), false));
  ModelEstimate Opt = evaluateAssignment(MP, R);
  EXPECT_LE(Opt.Cycles, Knobs.Xlimit * Base.Cycles + 1e-6);
}

TEST(Model, ClusteringPullsNeighboursIn) {
  // A hot loop block (1) with a cheap tiny successor (2): moving both
  // avoids instrumenting the hot block (the paper's motivating insight).
  ModelParams MP = syntheticChain({1, 1000, 500, 1}, {10, 40, 8, 10});
  // Make block 2 small and cheap, frequently executed after block 1.
  ModelKnobs Knobs;
  Knobs.RspareBytes = 80;
  Knobs.Xlimit = 2.0;
  Assignment R = solvePlacement(MP, Knobs);
  EXPECT_TRUE(R[1]);
  EXPECT_TRUE(R[2]) << "solver should cluster the joining block into RAM";
}

TEST(Model, AllFlashIsAlwaysFeasible) {
  ModelParams MP = syntheticChain({5, 5}, {10000, 10000});
  ModelKnobs Knobs;
  Knobs.RspareBytes = 0; // nothing fits
  MipSolution Stats;
  Assignment R = solvePlacement(MP, Knobs, {}, &Stats);
  EXPECT_TRUE(Stats.feasible());
  EXPECT_FALSE(R[0] || R[1]);
}

TEST(Model, ImmovableBlocksStayInFlash) {
  ModelParams MP = syntheticChain({1, 1000}, {10, 10});
  MP.Blocks[1].Movable = false;
  Assignment R = solvePlacement(MP);
  EXPECT_FALSE(R[1]);
}

TEST(Enumerator, HotBlockSelection) {
  ModelParams MP = syntheticChain({1, 50, 5, 100}, {10, 10, 10, 10});
  std::vector<unsigned> Hot = selectHotBlocks(MP, 2);
  ASSERT_EQ(Hot.size(), 2u);
  EXPECT_EQ(Hot[0], 1u);
  EXPECT_EQ(Hot[1], 3u);
  MP.Blocks[3].Movable = false;
  Hot = selectHotBlocks(MP, 2);
  EXPECT_TRUE(std::find(Hot.begin(), Hot.end(), 3u) == Hot.end());
}

TEST(Enumerator, EnumeratesFullSpace) {
  ModelParams MP = syntheticChain({1, 10, 1}, {10, 10, 10});
  auto Points = enumerateSolutions(MP, allBlocks(MP));
  EXPECT_EQ(Points.size(), 8u);
  // Mask 0 is the all-flash baseline.
  EXPECT_EQ(Points[0].Estimate.RamBytes, 0u);
  // Every point's estimate is self-consistent with direct evaluation.
  Assignment InRam(3, false);
  InRam[1] = true;
  ModelEstimate Direct = evaluateAssignment(MP, InRam);
  EXPECT_NEAR(Points[2].Estimate.EnergyMilliJoules,
              Direct.EnergyMilliJoules, 1e-15);
}

TEST(Enumerator, BestFeasibleRespectsBudgets) {
  ModelParams MP = syntheticChain({1, 100, 1}, {10, 20, 10});
  auto Points = enumerateSolutions(MP, allBlocks(MP));
  double BaseCycles =
      evaluateAssignment(MP, Assignment(3, false)).Cycles;
  ModelKnobs Knobs;
  Knobs.RspareBytes = 40;
  Knobs.Xlimit = 2.0;
  int Best = bestFeasiblePoint(Points, BaseCycles, Knobs);
  ASSERT_GE(Best, 0);
  EXPECT_LE(Points[Best].Estimate.RamBytes, 40u);
}

/// The central correctness property: on every enumerable model, the ILP
/// solver's choice equals the exhaustive optimum.
class SolverVsEnumeration : public ::testing::TestWithParam<int> {};

TEST_P(SolverVsEnumeration, IlpMatchesExhaustive) {
  SplitMix64 Rng(static_cast<uint64_t>(GetParam()) * 104729 + 1);
  unsigned N = 3 + static_cast<unsigned>(Rng.nextBelow(8)); // 3..10
  ModelParams MP = randomParams(Rng, N);

  ModelKnobs Knobs;
  Knobs.RspareBytes = 30 + static_cast<unsigned>(Rng.nextBelow(200));
  Knobs.Xlimit = 1.05 + Rng.nextDouble();

  auto Points = enumerateSolutions(MP, allBlocks(MP));
  double BaseCycles =
      evaluateAssignment(MP, Assignment(N, false)).Cycles;
  int Best = bestFeasiblePoint(Points, BaseCycles, Knobs);
  ASSERT_GE(Best, 0);

  MipSolution Stats;
  Assignment R = solvePlacement(MP, Knobs, {}, &Stats);
  ASSERT_TRUE(Stats.feasible());
  ModelEstimate SolverE = evaluateAssignment(MP, R);

  EXPECT_NEAR(SolverE.EnergyMilliJoules,
              Points[Best].Estimate.EnergyMilliJoules, 1e-9)
      << "solver N=" << N << " ram=" << Knobs.RspareBytes
      << " xlimit=" << Knobs.Xlimit;
  EXPECT_LE(SolverE.RamBytes, Knobs.RspareBytes);
  EXPECT_LE(SolverE.Cycles, Knobs.Xlimit * BaseCycles + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolverVsEnumeration,
                         ::testing::Range(0, 30));

TEST(Model, PatchKnobsMatchesRebuild) {
  SplitMix64 Rng(99);
  ModelParams MP = randomContinuousParams(Rng, 8);
  ModelKnobs K1;
  K1.RspareBytes = 100;
  K1.Xlimit = 1.2;
  ModelKnobs K2;
  K2.RspareBytes = 250;
  K2.Xlimit = 1.6;

  PlacementModel Patched = buildPlacementModel(MP, K1);
  Patched.patchKnobs(K2);
  PlacementModel Rebuilt = buildPlacementModel(MP, K2);

  ASSERT_EQ(Patched.P.numConstraints(), Rebuilt.P.numConstraints());
  ASSERT_EQ(Patched.RamConstraint, Rebuilt.RamConstraint);
  ASSERT_EQ(Patched.TimeConstraint, Rebuilt.TimeConstraint);
  for (unsigned I = 0; I != Patched.P.numConstraints(); ++I)
    EXPECT_EQ(Patched.P.Constraints[I].Rhs, Rebuilt.P.Constraints[I].Rhs)
        << "constraint " << I;
  EXPECT_EQ(Patched.Knobs.RspareBytes, K2.RspareBytes);
  EXPECT_EQ(Patched.Knobs.Xlimit, K2.Xlimit);
}

/// Solve-reuse correctness, bit-for-bit: on tie-free random models the
/// cold solver, the warm-noded solver and a PlacementSolver chain that
/// visits knob points in sequence (each warm-started from its neighbour)
/// must all return exactly the enumerator's optimal assignment — and
/// therefore exactly its energy, since both sides evaluate through
/// evaluateAssignment.
class WarmSolverVsEnumeration : public ::testing::TestWithParam<int> {};

TEST_P(WarmSolverVsEnumeration, ColdWarmAndChainedMatchExhaustive) {
  SplitMix64 Rng(static_cast<uint64_t>(GetParam()) * 292663 + 17);
  unsigned N = 3 + static_cast<unsigned>(Rng.nextBelow(8)); // 3..10
  ModelParams MP = randomContinuousParams(Rng, N);

  // A small knob axis around random budgets.
  std::vector<ModelKnobs> Axis;
  for (int I = 0; I != 3; ++I) {
    ModelKnobs K;
    K.RspareBytes = 30 + static_cast<unsigned>(Rng.nextBelow(200));
    K.Xlimit = 1.05 + Rng.nextDouble();
    Axis.push_back(K);
  }

  PlacementSolver Chain(MP, Axis.front());
  for (const ModelKnobs &K : Axis) {
    Assignment Truth = enumeratorOptimum(MP, K);
    double TruthEnergy = evaluateAssignment(MP, Truth).EnergyMilliJoules;

    // Every node order must land on the enumerator's optimum, cold and
    // warm alike.
    for (NodeOrder Order :
         {NodeOrder::Dfs, NodeOrder::BestBound, NodeOrder::Hybrid}) {
      SolverConfig Cold;
      Cold.WarmNodes = false;
      Cold.Order = Order;
      Assignment FromCold = solvePlacement(MP, K, Cold);
      EXPECT_EQ(FromCold, Truth)
          << "cold solver diverged (" << nodeOrderName(Order) << ")";

      SolverConfig WarmOpts;
      WarmOpts.Order = Order;
      Assignment FromWarm = solvePlacement(MP, K, WarmOpts);
      EXPECT_EQ(FromWarm, Truth)
          << "warm-noded solver diverged (" << nodeOrderName(Order) << ")";
    }

    MipSolution Stats;
    Assignment FromChain = Chain.solve(K, {}, &Stats);
    EXPECT_EQ(FromChain, Truth) << "knob-chained solver diverged";
    EXPECT_EQ(evaluateAssignment(MP, FromChain).EnergyMilliJoules,
              TruthEnergy);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WarmSolverVsEnumeration,
                         ::testing::Range(0, 20));

TEST(Model, EncodeIsTheInverseOfDecodeAndOptimallyComplete) {
  // encode() lifts an assignment to the canonical variable vector: it
  // must be feasible at zero tolerance, achieve exactly the model energy
  // of the assignment, and decode straight back.
  SplitMix64 Rng(4242);
  ModelParams MP = randomContinuousParams(Rng, 8);
  ModelKnobs K;
  K.RspareBytes = 150;
  K.Xlimit = 1.6;
  PlacementModel PM = buildPlacementModel(MP, K);

  MipSolution Sol = solveMip(PM.P);
  ASSERT_TRUE(Sol.feasible());
  Assignment InRam = PM.decode(Sol);

  std::vector<double> X = PM.encode(MP, InRam);
  ASSERT_EQ(X.size(), PM.P.numVariables());
  EXPECT_TRUE(PM.P.isFeasible(X, /*Tol=*/0.0));
  // The encoded point reproduces the solver's objective: y/z/c/w are
  // pinned at their optimal completions for this x (the solver's own
  // point may carry simplex-arithmetic residue, hence the tolerance).
  EXPECT_NEAR(PM.P.objectiveValue(X), Sol.Objective,
              1e-6 * std::abs(Sol.Objective) + 1e-9);

  MipSolution Round;
  Round.Status = LpStatus::Optimal;
  Round.Values = X;
  EXPECT_EQ(PM.decode(Round), InRam);

  // Wrong arity is rejected.
  EXPECT_TRUE(PM.encode(MP, Assignment(MP.numBlocks() + 1, false)).empty());
}

TEST(Model, SeededSolverMatchesUnseededBitForBit) {
  // The persistent-incumbent path: seeding a fresh solver with the known
  // optimum must flag the solve as seeded and return the identical
  // assignment; seeding with a stale/infeasible assignment must be
  // harmless.
  SplitMix64 Rng(777);
  ModelParams MP = randomContinuousParams(Rng, 9);
  ModelKnobs K;
  K.RspareBytes = 120;
  K.Xlimit = 1.4;

  Assignment Truth = enumeratorOptimum(MP, K);

  PlacementSolver Seeded(MP, K);
  ASSERT_TRUE(Seeded.seedIncumbent(MP, Truth));
  MipSolution Stats;
  Assignment FromSeeded = Seeded.solve(K, {}, &Stats);
  EXPECT_TRUE(Stats.seededIncumbent());
  EXPECT_EQ(FromSeeded, Truth);

  // An over-stuffed assignment (everything in RAM) fails the RAM budget
  // re-check and is discarded, not trusted.
  PlacementSolver Stale(MP, K);
  Assignment Everything(MP.numBlocks(), true);
  if (Stale.seedIncumbent(MP, Everything)) {
    MipSolution StaleStats;
    Assignment FromStale = Stale.solve(K, {}, &StaleStats);
    EXPECT_FALSE(StaleStats.seededIncumbent());
    EXPECT_EQ(FromStale, Truth);
  }
}

TEST(Greedy, NeverBeatsIlpAndStaysFeasible) {
  for (int Seed = 0; Seed != 10; ++Seed) {
    SplitMix64 Rng(static_cast<uint64_t>(Seed) * 31 + 7);
    ModelParams MP = randomParams(Rng, 8);
    ModelKnobs Knobs;
    Knobs.RspareBytes = 120;
    Knobs.Xlimit = 1.5;
    Assignment G = greedyPlacement(MP, Knobs);
    Assignment I = solvePlacement(MP, Knobs);
    ModelEstimate GE = evaluateAssignment(MP, G);
    ModelEstimate IE = evaluateAssignment(MP, I);
    EXPECT_LE(GE.RamBytes, Knobs.RspareBytes);
    EXPECT_GE(GE.EnergyMilliJoules, IE.EnergyMilliJoules - 1e-9)
        << "greedy should not beat the exact solver (seed " << Seed << ")";
  }
}

TEST(Greedy, EmptyWhenNothingHelps) {
  // ERam == EFlash: no gain from moving anything.
  ModelParams MP = syntheticChain({1, 1}, {10, 10});
  MP.ERam = MP.EFlash;
  Assignment G = greedyPlacement(MP);
  EXPECT_FALSE(G[0] || G[1]);
}
