//===- tests/AsmRoundTripTest.cpp - parser/printer round trips -------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "asmio/Parser.h"
#include "asmio/Printer.h"
#include "beebs/Beebs.h"

#include <gtest/gtest.h>

using namespace ramloc;
using namespace ramloc::build;

namespace {

/// print -> parse -> print must be a fixed point.
void expectRoundTrip(const Module &M) {
  std::string First = printModule(M);
  ParseResult PR = parseAssembly(First);
  ASSERT_TRUE(PR.ok()) << PR.Errors.front() << "\nin:\n" << First;
  std::string Second = printModule(PR.M);
  EXPECT_EQ(First, Second);
}

} // namespace

TEST(Printer, InstructionSyntax) {
  EXPECT_EQ(printInstr(movImm(R0, 5)), "mov r0, #5");
  EXPECT_EQ(printInstr(setS(addReg(R0, R1, R2))), "adds r0, r1, r2");
  EXPECT_EQ(printInstr(cmpImm(R3, 7)), "cmp r3, #7");
  EXPECT_EQ(printInstr(ldrImm(R0, R1, 8)), "ldr r0, [r1, #8]");
  EXPECT_EQ(printInstr(ldrImm(R0, R1, 0)), "ldr r0, [r1]");
  EXPECT_EQ(printInstr(ldrReg(R0, R1, R2)), "ldr r0, [r1, r2]");
  EXPECT_EQ(printInstr(ldrLitSym(R5, "table")), "ldr r5, =table");
  EXPECT_EQ(printInstr(ldrLitConst(R5, 0x1234)), "ldr r5, =0x1234");
  EXPECT_EQ(printInstr(ldrLitSym(PC, "loop")), "ldr pc, =loop");
  EXPECT_EQ(printInstr(push((1u << R4) | (1u << R5) | (1u << LR))),
            "push {r4, r5, lr}");
  EXPECT_EQ(printInstr(pop((1u << R4) | (1u << PC))), "pop {r4, pc}");
  EXPECT_EQ(printInstr(push(0xF0 | (1u << LR))), "push {r4-r7, lr}");
  EXPECT_EQ(printInstr(bCond(Cond::NE, "loop")), "bne loop");
  EXPECT_EQ(printInstr(bCond(Cond::LS, "x")), "bls x");
  EXPECT_EQ(printInstr(cbz(R2, "out")), "cbz r2, out");
  EXPECT_EQ(printInstr(bl("fn")), "bl fn");
  EXPECT_EQ(printInstr(bx(LR)), "bx lr");
  EXPECT_EQ(printInstr(ite(Cond::EQ)), "ite eq");
  EXPECT_EQ(printInstr(withCond(ldrLitSym(R7, "a"), Cond::EQ)),
            "ldreq r7, =a");
  EXPECT_EQ(printInstr(mla(R0, R1, R2, R3)), "mla r0, r1, r2, r3");
  EXPECT_EQ(printInstr(lslImm(R0, R1, 4)), "lsl r0, r1, #4");
  EXPECT_EQ(printInstr(uxtb(R0, R1)), "uxtb r0, r1");
}

TEST(Parser, MnemonicDisambiguation) {
  // "bls" is branch-if-lower-or-same, not bl + s.
  ParseResult PR = parseAssembly(".module m\n.entry f\n.func f\n"
                                 ".block a\n    bls a\n");
  ASSERT_TRUE(PR.ok()) << PR.Errors.front();
  EXPECT_EQ(PR.M.Functions[0].Blocks[0].Instrs[0].Kind, OpKind::BCond);
  EXPECT_EQ(PR.M.Functions[0].Blocks[0].Instrs[0].CondCode, Cond::LS);

  // "bics" is bic + set-flags.
  PR = parseAssembly(".module m\n.entry f\n.func f\n"
                     ".block a\n    bics r0, r0, r1\n    bx lr\n");
  ASSERT_TRUE(PR.ok()) << PR.Errors.front();
  EXPECT_EQ(PR.M.Functions[0].Blocks[0].Instrs[0].Kind, OpKind::BicReg);
  EXPECT_TRUE(PR.M.Functions[0].Blocks[0].Instrs[0].SetsFlags);
}

TEST(Parser, Errors) {
  ParseResult PR = parseAssembly("mov r0, #1\n");
  EXPECT_FALSE(PR.ok()); // instruction outside a block

  PR = parseAssembly(".func f\n.block a\n    frobnicate r0\n");
  ASSERT_FALSE(PR.ok());
  EXPECT_NE(PR.Errors[0].find("unknown mnemonic"), std::string::npos);

  PR = parseAssembly(".func f\n.block a\n    mov r0, #99999999\n");
  EXPECT_FALSE(PR.ok());

  PR = parseAssembly(".func f\n.block a\n    ldr r0, [r1\n");
  EXPECT_FALSE(PR.ok());

  PR = parseAssembly(".bogus x\n");
  ASSERT_FALSE(PR.ok());
  EXPECT_NE(PR.Errors[0].find("unknown directive"), std::string::npos);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  ParseResult PR = parseAssembly("\n\n.func f\n.block a\n    zap\n");
  ASSERT_FALSE(PR.ok());
  EXPECT_NE(PR.Errors[0].find("line 5"), std::string::npos);
}

TEST(Parser, Comments) {
  ParseResult PR = parseAssembly(
      "; leading comment\n.module m\n.entry f\n.func f\n"
      ".block a ; trailing\n    mov r0, #1 ; set result\n    bx lr\n");
  ASSERT_TRUE(PR.ok()) << PR.Errors.front();
  EXPECT_EQ(PR.M.Functions[0].Blocks[0].Instrs.size(), 2u);
}

TEST(Parser, DataDirectives) {
  ParseResult PR = parseAssembly(
      ".module m\n.entry f\n.rodata tab 4 0a0b0c0d\n.data var 4 01000000\n"
      ".bss buf 32 8\n.func f\n.block a\n    bx lr\n");
  ASSERT_TRUE(PR.ok()) << PR.Errors.front();
  ASSERT_EQ(PR.M.Data.size(), 3u);
  EXPECT_EQ(PR.M.Data[0].Bytes.size(), 4u);
  EXPECT_EQ(PR.M.Data[0].Bytes[0], 0x0A);
  EXPECT_EQ(PR.M.Data[1].Sect, DataObject::Section::Data);
  EXPECT_EQ(PR.M.Data[2].Size, 32u);
  EXPECT_EQ(PR.M.Data[2].Align, 8u);
}

TEST(Parser, TwoOperandShorthand) {
  ParseResult PR = parseAssembly(".func f\n.block a\n    add r0, r1\n"
                                 "    bx lr\n");
  ASSERT_TRUE(PR.ok()) << PR.Errors.front();
  const Instr &I = PR.M.Functions[0].Blocks[0].Instrs[0];
  EXPECT_EQ(I.Kind, OpKind::AddReg);
  EXPECT_EQ(I.Regs[0], R0);
  EXPECT_EQ(I.Regs[1], R0);
  EXPECT_EQ(I.Regs[2], R1);
}

TEST(Parser, HomeAndLibraryAttributes) {
  ParseResult PR = parseAssembly(
      ".module m\n.entry f\n.func f library\n.block a home=ram\n"
      "    bx lr\n");
  ASSERT_TRUE(PR.ok()) << PR.Errors.front();
  EXPECT_FALSE(PR.M.Functions[0].Optimizable);
  EXPECT_EQ(PR.M.Functions[0].Blocks[0].Home, MemKind::Ram);
}

TEST(RoundTrip, HandWrittenKitchenSink) {
  Module M;
  M.Name = "sink";
  M.EntryFunction = "f";
  M.addRodataWords("tab", {0xDEADBEEF, 1});
  M.addBss("buf", 16);
  Function F("f");
  BasicBlock A("entry");
  A.Instrs = {
      push((1u << R4) | (1u << LR)),
      movImm(R0, 0),
      ldrLitSym(R4, "tab"),
      ldrImm(R1, R4, 4),
      setS(subImm(R1, R1, 1)),
      bCond(Cond::NE, "entry"),
  };
  BasicBlock B2("more");
  B2.Instrs = {
      mla(R0, R1, R2, R3),   udiv(R2, R2, R3),
      sxtb(R1, R1),          uxth(R2, R2),
      strbImm(R0, R4, 3),    ldrhImm(R0, R4, 2),
      rorReg(R0, R0, R1),    mvn(R5, R6),
      adc(R0, R0, R1),       sbc(R0, R0, R1),
      tst(R0, R1),           andImm(R0, R0, 0xFF),
      cbnz(R2, "more"),
  };
  BasicBlock C("fin");
  C.Instrs = {pop((1u << R4) | (1u << PC))};
  F.Blocks = {A, B2, C};
  M.Functions.push_back(F);
  expectRoundTrip(M);
}

// Round-trip every BEEBS benchmark at every level: a broad structural
// property over realistic modules.
class BeebsRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BeebsRoundTrip, PrintParsePrintIsFixedPoint) {
  const BeebsInfo &Info = beebsSuite()[std::get<0>(GetParam())];
  OptLevel L = AllOptLevels[std::get<1>(GetParam())];
  Module M = Info.Build(L, 2);
  expectRoundTrip(M);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BeebsRoundTrip,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(0, 5)),
    [](const auto &Info) {
      // gtest names must be identifiers: prefix so "2dfir" is legal.
      return "B" + std::string(beebsSuite()[std::get<0>(Info.param)].Name) +
             "_" + optLevelName(AllOptLevels[std::get<1>(Info.param)]);
    });
