//===- tests/IsaTest.cpp - ISA layer tests --------------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "isa/Condition.h"
#include "isa/Encoding.h"
#include "isa/Instr.h"
#include "isa/Register.h"
#include "isa/Timing.h"

#include <gtest/gtest.h>

using namespace ramloc;
using namespace ramloc::build;

TEST(Register, Names) {
  EXPECT_EQ(regName(R0), "r0");
  EXPECT_EQ(regName(R12), "r12");
  EXPECT_EQ(regName(SP), "sp");
  EXPECT_EQ(regName(LR), "lr");
  EXPECT_EQ(regName(PC), "pc");
}

TEST(Register, Parse) {
  EXPECT_EQ(parseRegName("r0"), R0);
  EXPECT_EQ(parseRegName("r15"), PC);
  EXPECT_EQ(parseRegName("sp"), SP);
  EXPECT_EQ(parseRegName("ip"), R12);
  EXPECT_EQ(parseRegName("fp"), R11);
  EXPECT_EQ(parseRegName("r16"), NumRegs);
  EXPECT_EQ(parseRegName("bogus"), NumRegs);
  EXPECT_EQ(parseRegName(""), NumRegs);
}

TEST(Register, LowRegPredicate) {
  EXPECT_TRUE(isLowReg(R0));
  EXPECT_TRUE(isLowReg(R7));
  EXPECT_FALSE(isLowReg(R8));
  EXPECT_FALSE(isLowReg(SP));
}

TEST(Condition, InversePairs) {
  EXPECT_EQ(invertCond(Cond::EQ), Cond::NE);
  EXPECT_EQ(invertCond(Cond::GT), Cond::LE);
  EXPECT_EQ(invertCond(Cond::CS), Cond::CC);
  EXPECT_EQ(invertCond(Cond::HI), Cond::LS);
  // Inversion is an involution for every real condition.
  for (unsigned C = 0; C != static_cast<unsigned>(Cond::AL); ++C) {
    Cond CC = static_cast<Cond>(C);
    EXPECT_EQ(invertCond(invertCond(CC)), CC);
  }
}

TEST(Condition, FlagEvaluation) {
  Flags F;
  F.Z = true;
  EXPECT_TRUE(condPasses(Cond::EQ, F));
  EXPECT_FALSE(condPasses(Cond::NE, F));
  EXPECT_TRUE(condPasses(Cond::AL, F));

  // Signed comparisons: N != V <=> LT.
  F = Flags{};
  F.N = true;
  EXPECT_TRUE(condPasses(Cond::LT, F));
  EXPECT_FALSE(condPasses(Cond::GE, F));
  F.V = true; // N == V again
  EXPECT_TRUE(condPasses(Cond::GE, F));
  EXPECT_TRUE(condPasses(Cond::GT, F));

  // Unsigned: HI = C && !Z.
  F = Flags{};
  F.C = true;
  EXPECT_TRUE(condPasses(Cond::HI, F));
  F.Z = true;
  EXPECT_FALSE(condPasses(Cond::HI, F));
  EXPECT_TRUE(condPasses(Cond::LS, F));
}

TEST(Condition, ComplementaryEvaluation) {
  // cond and its inverse never agree, over all flag combinations.
  for (unsigned Bits = 0; Bits != 16; ++Bits) {
    Flags F;
    F.N = Bits & 1;
    F.Z = Bits & 2;
    F.C = Bits & 4;
    F.V = Bits & 8;
    for (unsigned C = 0; C != static_cast<unsigned>(Cond::AL); ++C) {
      Cond CC = static_cast<Cond>(C);
      EXPECT_NE(condPasses(CC, F), condPasses(invertCond(CC), F));
    }
  }
}

TEST(Condition, Names) {
  EXPECT_EQ(condName(Cond::EQ), "eq");
  EXPECT_EQ(condName(Cond::AL), "");
  Cond C;
  EXPECT_TRUE(parseCondName("le", C));
  EXPECT_EQ(C, Cond::LE);
  EXPECT_TRUE(parseCondName("hs", C));
  EXPECT_EQ(C, Cond::CS);
  EXPECT_TRUE(parseCondName("", C));
  EXPECT_EQ(C, Cond::AL);
  EXPECT_FALSE(parseCondName("xx", C));
}

TEST(Encoding, NarrowDataProcessing) {
  EXPECT_EQ(encodingSizeBytes(movImm(R0, 255)), 2u);
  EXPECT_EQ(encodingSizeBytes(movImm(R0, 256)), 4u);
  EXPECT_EQ(encodingSizeBytes(movImm(R8, 1)), 4u);
  EXPECT_EQ(encodingSizeBytes(movReg(R11, R12)), 2u);
  EXPECT_EQ(encodingSizeBytes(addImm(R1, R1, 200)), 2u);
  EXPECT_EQ(encodingSizeBytes(addImm(R1, R2, 7)), 2u);
  EXPECT_EQ(encodingSizeBytes(addImm(R1, R2, 8)), 4u);
  EXPECT_EQ(encodingSizeBytes(addImm(SP, SP, 44)), 2u);
  EXPECT_EQ(encodingSizeBytes(subReg(R0, R1, R2)), 2u);
  EXPECT_EQ(encodingSizeBytes(subReg(R0, R1, R8)), 4u);
}

TEST(Encoding, TwoOperandForms) {
  EXPECT_EQ(encodingSizeBytes(andReg(R0, R0, R1)), 2u);
  EXPECT_EQ(encodingSizeBytes(andReg(R0, R1, R2)), 4u);
  EXPECT_EQ(encodingSizeBytes(mul(R2, R2, R3)), 2u);
  EXPECT_EQ(encodingSizeBytes(mul(R2, R3, R4)), 4u);
  EXPECT_EQ(encodingSizeBytes(mla(R0, R1, R2, R3)), 4u);
  EXPECT_EQ(encodingSizeBytes(udiv(R0, R1, R2)), 4u);
}

TEST(Encoding, Memory) {
  EXPECT_EQ(encodingSizeBytes(ldrImm(R0, R1, 124)), 2u);
  EXPECT_EQ(encodingSizeBytes(ldrImm(R0, R1, 128)), 4u);
  EXPECT_EQ(encodingSizeBytes(ldrImm(R0, R1, 2)), 4u); // unaligned offset
  EXPECT_EQ(encodingSizeBytes(ldrImm(R0, SP, 1020)), 2u);
  EXPECT_EQ(encodingSizeBytes(ldrbImm(R0, R1, 31)), 2u);
  EXPECT_EQ(encodingSizeBytes(ldrbImm(R0, R1, 32)), 4u);
  EXPECT_EQ(encodingSizeBytes(ldrReg(R0, R1, R2)), 2u);
  EXPECT_EQ(encodingSizeBytes(ldrReg(R0, R1, R9)), 4u);
}

TEST(Encoding, Figure4SequenceSizes) {
  // The published instrumentation byte counts depend on these encodings.
  EXPECT_EQ(encodingSizeBytes(b("x")), 2u);
  EXPECT_EQ(encodingSizeBytes(bCond(Cond::NE, "x")), 2u);
  EXPECT_EQ(encodingSizeBytes(cbz(R0, "x")), 2u);
  EXPECT_EQ(encodingSizeBytes(ldrLitSym(PC, "x")), 4u); // ldr pc, =label
  EXPECT_EQ(encodingSizeBytes(ldrLitSym(ScratchReg, "x")), 2u);
  EXPECT_EQ(encodingSizeBytes(ite(Cond::NE)), 2u);
  EXPECT_EQ(encodingSizeBytes(bx(ScratchReg)), 2u);
  EXPECT_EQ(encodingSizeBytes(cmpImm(R0, 0)), 2u);

  // Unconditional: 4 bytes; conditional: 2+2+2+2 = 8; short conditional:
  // 10; fall-through: 4 (Figure 4).
  unsigned CondSeq = encodingSizeBytes(ite(Cond::NE)) +
                     2 * encodingSizeBytes(ldrLitSym(ScratchReg, "x")) +
                     encodingSizeBytes(bx(ScratchReg));
  EXPECT_EQ(CondSeq, 8u);
  EXPECT_EQ(CondSeq + encodingSizeBytes(cmpImm(R0, 0)), 10u);
}

TEST(Encoding, PushPop) {
  EXPECT_EQ(encodingSizeBytes(push((1u << R4) | (1u << LR))), 2u);
  EXPECT_EQ(encodingSizeBytes(push((1u << R8) | (1u << LR))), 4u);
  EXPECT_EQ(encodingSizeBytes(pop((1u << R4) | (1u << PC))), 2u);
}

TEST(Timing, Figure4SequenceCycles) {
  TimingModel T;
  // ldr pc, =label: 4 cycles (Figure 4, unconditional / fall-through).
  EXPECT_EQ(T.cycles(ldrLitSym(PC, "x"), false), 4u);
  // it + ldr(exec) + ldr(skipped) + bx = 1 + 2 + 1 + 3 = 7 (conditional).
  unsigned Seq = T.cycles(ite(Cond::NE), false) +
                 T.cycles(ldrLitSym(ScratchReg, "x"), false) +
                 T.SkippedCycles + T.cycles(bx(ScratchReg), false);
  EXPECT_EQ(Seq, 7u);
  // cmp + the above = 8 (short conditional).
  EXPECT_EQ(Seq + T.cycles(cmpImm(R0, 0), false), 8u);
  // Original branches: b = 3 taken; bcc = 3 taken / 1 not.
  EXPECT_EQ(T.cycles(b("x"), true), 3u);
  EXPECT_EQ(T.cycles(bCond(Cond::NE, "x"), true), 3u);
  EXPECT_EQ(T.cycles(bCond(Cond::NE, "x"), false), 1u);
}

TEST(Timing, LoadsStoresAndPushPop) {
  TimingModel T;
  EXPECT_EQ(T.cycles(ldrImm(R0, R1, 0), false), 2u);
  EXPECT_EQ(T.cycles(strImm(R0, R1, 0), false), 2u);
  EXPECT_EQ(T.cycles(push((1u << R4) | (1u << R5) | (1u << LR)), false),
            4u); // 1 + 3 regs
  EXPECT_EQ(T.cycles(pop((1u << R4) | (1u << PC)), false),
            5u); // 1 + 2 regs + refill
  EXPECT_EQ(T.cycles(bl("f"), true), 4u);
  EXPECT_EQ(T.cycles(mul(R0, R0, R1), false), 1u);
  EXPECT_EQ(T.cycles(udiv(R0, R0, R1), false), 6u);
}

TEST(Timing, ExpectedBranchCycles) {
  TimingModel T;
  Instr Bcc = bCond(Cond::NE, "x");
  EXPECT_DOUBLE_EQ(T.expectedBranchCycles(Bcc, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(T.expectedBranchCycles(Bcc, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(T.expectedBranchCycles(Bcc, 0.5), 2.0);
}

TEST(Instr, TerminatorClassification) {
  EXPECT_TRUE(b("x").isTerminator());
  EXPECT_TRUE(bCond(Cond::EQ, "x").isTerminator());
  EXPECT_TRUE(cbz(R0, "x").isTerminator());
  EXPECT_TRUE(bx(LR).isTerminator());
  EXPECT_TRUE(bkpt().isTerminator());
  EXPECT_TRUE(pop((1u << R4) | (1u << PC)).isTerminator());
  EXPECT_FALSE(pop(1u << R4).isTerminator());
  EXPECT_TRUE(ldrLitSym(PC, "x").isTerminator());
  EXPECT_FALSE(ldrLitSym(R0, "x").isTerminator());
  EXPECT_FALSE(bl("f").isTerminator());
  EXPECT_FALSE(wfi().isTerminator());
  EXPECT_FALSE(addImm(R0, R0, 1).isTerminator());
}

TEST(Instr, CallAndJumpPredicates) {
  EXPECT_TRUE(bl("f").isCall());
  EXPECT_TRUE(blx(R3).isCall());
  EXPECT_FALSE(b("x").isCall());
  EXPECT_TRUE(ldrLitSym(PC, "x").isLongJump());
  EXPECT_FALSE(ldrLitSym(R1, "x").isLongJump());
}

TEST(Instr, RegMaskCount) {
  EXPECT_EQ(regMaskCount(0), 0u);
  EXPECT_EQ(regMaskCount(0xF), 4u);
  EXPECT_EQ(regMaskCount((1u << LR) | (1u << R0)), 2u);
}

TEST(Instr, OpClassMapping) {
  EXPECT_EQ(opClass(OpKind::LdrImm), InstrClass::Load);
  EXPECT_EQ(opClass(OpKind::Pop), InstrClass::Load);
  EXPECT_EQ(opClass(OpKind::Push), InstrClass::Store);
  EXPECT_EQ(opClass(OpKind::B), InstrClass::Branch);
  EXPECT_EQ(opClass(OpKind::Mul), InstrClass::Mul);
  EXPECT_EQ(opClass(OpKind::Nop), InstrClass::Nop);
  EXPECT_EQ(opClass(OpKind::AddImm), InstrClass::Alu);
}
