//===- tests/CampaignTest.cpp - campaign engine ----------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"
#include "campaign/Campaign.h"
#include "campaign/Report.h"
#include "power/DeviceRegistry.h"
#include "sim/ProfileCache.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <set>

using namespace ramloc;

namespace {

/// A small but non-trivial measurement grid: 2 benchmarks x 2 devices x
/// 2 Rspare points at O1 with a short repeat, cheap enough for CI.
GridSpec smallMeasureGrid() {
  GridSpec Grid;
  Grid.Benchmarks = {"crc32", "int_matmult"};
  Grid.Levels = {OptLevel::O1};
  Grid.Devices = {"stm32f100", "stm32l-lp"};
  Grid.RsparePoints = {256, 512};
  Grid.Repeat = 2;
  return Grid;
}

} // namespace

TEST(Campaign, GridExpansionOrderAndCount) {
  GridSpec Grid;
  Grid.Benchmarks = {"crc32", "sha"};
  Grid.Levels = {OptLevel::O1, OptLevel::O2};
  Grid.Devices = {"stm32f100"};
  Grid.RsparePoints = {128, 512};
  Grid.XlimitPoints = {1.5};
  Grid.FreqModes = {FreqMode::Static, FreqMode::Profiled};
  std::vector<JobSpec> Jobs = Grid.expand();
  ASSERT_EQ(Jobs.size(), Grid.jobCount());
  ASSERT_EQ(Jobs.size(), 16u);
  // Benchmark-major order; frequency mode is the innermost axis.
  EXPECT_EQ(Jobs[0].Benchmark, "crc32");
  EXPECT_EQ(Jobs[0].Freq, FreqMode::Static);
  EXPECT_EQ(Jobs[1].Freq, FreqMode::Profiled);
  EXPECT_EQ(Jobs[1].RspareBytes, 128u);
  EXPECT_EQ(Jobs[2].RspareBytes, 512u);
  EXPECT_EQ(Jobs[8].Benchmark, "sha");
  // Every job has a distinct cache key.
  std::set<std::string> Keys;
  for (const JobSpec &J : Jobs)
    Keys.insert(J.cacheKey());
  EXPECT_EQ(Keys.size(), Jobs.size());
}

TEST(Campaign, CacheKeyCapturesEveryAxis) {
  JobSpec A;
  A.Benchmark = "crc32";
  JobSpec B = A;
  EXPECT_EQ(A.cacheKey(), B.cacheKey());
  EXPECT_EQ(A.configHash(), B.configHash());
  B.RspareBytes = 1024;
  EXPECT_NE(A.cacheKey(), B.cacheKey());
  B = A;
  B.Xlimit = 1.25;
  EXPECT_NE(A.cacheKey(), B.cacheKey());
  B = A;
  B.Freq = FreqMode::Profiled;
  EXPECT_NE(A.cacheKey(), B.cacheKey());
  B = A;
  B.Kind = JobKind::ModelOnly;
  EXPECT_NE(A.cacheKey(), B.cacheKey());
  B = A;
  B.Device = "stm32l-lp";
  EXPECT_NE(A.cacheKey(), B.cacheKey());
}

TEST(Campaign, DuplicateJobsHitTheCache) {
  JobSpec Spec;
  Spec.Benchmark = "crc32";
  Spec.Level = OptLevel::O1;
  Spec.Repeat = 2;
  std::vector<JobSpec> Jobs = {Spec, Spec, Spec};
  CampaignResult CR = runCampaign(Jobs);
  ASSERT_EQ(CR.Results.size(), 3u);
  EXPECT_EQ(CR.Summary.UniqueRuns, 1u);
  EXPECT_EQ(CR.Summary.CacheHits, 2u);
  EXPECT_FALSE(CR.Results[0].CacheHit);
  EXPECT_TRUE(CR.Results[1].CacheHit);
  EXPECT_TRUE(CR.Results[2].CacheHit);
  // Duplicates carry the same numbers as the run they were copied from.
  EXPECT_EQ(CR.Results[1].OptEnergyMilliJoules,
            CR.Results[0].OptEnergyMilliJoules);
  EXPECT_EQ(CR.Results[2].BaseCycles, CR.Results[0].BaseCycles);
}

TEST(Campaign, NoCacheRunsEveryJob) {
  JobSpec Spec;
  Spec.Benchmark = "crc32";
  Spec.Level = OptLevel::O1;
  Spec.Repeat = 2;
  CampaignOptions Opts;
  Opts.UseCache = false;
  CampaignResult CR = runCampaign({Spec, Spec}, Opts);
  EXPECT_EQ(CR.Summary.UniqueRuns, 2u);
  EXPECT_EQ(CR.Summary.CacheHits, 0u);
}

TEST(Campaign, SharedCachePersistsAcrossCampaigns) {
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.RsparePoints = {256, 512};
  ResultCache Cache;
  CampaignOptions Opts;
  Opts.Cache = &Cache;
  CampaignResult First = runCampaign(Grid, Opts);
  EXPECT_EQ(First.Summary.UniqueRuns, 2u);
  EXPECT_EQ(Cache.size(), 2u);
  CampaignResult Second = runCampaign(Grid, Opts);
  EXPECT_EQ(Second.Summary.UniqueRuns, 0u);
  EXPECT_EQ(Second.Summary.CacheHits, 2u);
  EXPECT_EQ(Second.Results[0].OptEnergyMilliJoules,
            First.Results[0].OptEnergyMilliJoules);
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  GridSpec Grid = smallMeasureGrid();
  CampaignOptions Serial;
  Serial.Jobs = 1;
  CampaignOptions Parallel;
  Parallel.Jobs = 8;
  CampaignResult A = runCampaign(Grid, Serial);
  CampaignResult B = runCampaign(Grid, Parallel);
  ASSERT_EQ(A.Results.size(), B.Results.size());
  EXPECT_EQ(A.Summary.Failed, 0u);
  // The acceptance bar: serialized reports are byte-identical.
  EXPECT_EQ(campaignToJson(A), campaignToJson(B));
  EXPECT_EQ(campaignToCsv(A), campaignToCsv(B));
}

TEST(Campaign, JsonReportParsesAndMatchesResults) {
  GridSpec Grid = smallMeasureGrid();
  CampaignOptions Opts;
  Opts.Jobs = 4;
  CampaignResult CR = runCampaign(Grid, Opts);
  ASSERT_EQ(CR.Summary.Failed, 0u);

  std::string Doc = campaignToJson(CR);
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(Doc, V, &Error)) << Error;
  EXPECT_EQ(V.find("schema")->string(), "ramloc-campaign-v2");

  const JsonValue *Summary = V.find("summary");
  ASSERT_NE(Summary, nullptr);
  EXPECT_EQ(Summary->find("total")->number(), CR.Summary.Total);
  EXPECT_EQ(Summary->find("succeeded")->number(), CR.Summary.Succeeded);

  const JsonValue *JobsArr = V.find("jobs");
  ASSERT_NE(JobsArr, nullptr);
  ASSERT_EQ(JobsArr->items().size(), CR.Results.size());
  for (size_t I = 0; I != CR.Results.size(); ++I) {
    const JsonValue &J = JobsArr->items()[I];
    const JobResult &R = CR.Results[I];
    EXPECT_EQ(J.find("benchmark")->string(), R.Spec.Benchmark);
    EXPECT_EQ(J.find("device")->string(), R.Spec.Device);
    EXPECT_TRUE(J.find("ok")->boolean());
    // Numbers survive serialization exactly.
    EXPECT_EQ(J.find("opt")->find("energy_mj")->number(),
              R.OptEnergyMilliJoules);
    EXPECT_EQ(J.find("delta")->find("energy_pct")->number(),
              R.energyPct());
  }

  // The optimization's headline shape holds across the grid: measured
  // energy drops on every job of this grid.
  for (const JobResult &R : CR.Results)
    EXPECT_LT(R.OptEnergyMilliJoules, R.BaseEnergyMilliJoules)
        << R.Spec.cacheKey();
}

TEST(Campaign, CsvHasHeaderPlusOneRowPerJob) {
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  CampaignResult CR = runCampaign(Grid);
  std::string Csv = campaignToCsv(CR);
  size_t Lines = 0;
  for (char C : Csv)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 1 + CR.Results.size());
  EXPECT_EQ(Csv.rfind("benchmark,level,", 0), 0u);
}

TEST(Campaign, ModelOnlyJobsSkipMeasurementButFillModel) {
  GridSpec Grid;
  Grid.Benchmarks = {"int_matmult"};
  Grid.Repeat = 2;
  Grid.RsparePoints = {0, 256};
  Grid.Kind = JobKind::ModelOnly;
  CampaignResult CR = runCampaign(Grid);
  ASSERT_EQ(CR.Summary.Failed, 0u);
  for (const JobResult &R : CR.Results) {
    EXPECT_EQ(R.BaseCycles, 0u); // no simulation happened
    EXPECT_GT(R.PredictedBaseCycles, 0.0);
    EXPECT_LE(R.RamBytes, R.Spec.RspareBytes);
  }
  // Rspare = 0 pins everything to flash; 256 B finds savings.
  EXPECT_EQ(CR.Results[0].MovedBlocks, 0u);
  EXPECT_GT(CR.Results[1].MovedBlocks, 0u);
  EXPECT_LT(CR.Results[1].PredictedOptEnergyMilliJoules,
            CR.Results[0].PredictedOptEnergyMilliJoules);
}

TEST(Campaign, BadAxisValuesFailTheJobNotTheCampaign) {
  JobSpec Bad;
  Bad.Benchmark = "no_such_benchmark";
  JobSpec BadDev;
  BadDev.Benchmark = "crc32";
  BadDev.Level = OptLevel::O1;
  BadDev.Repeat = 2;
  BadDev.Device = "no_such_device";
  JobSpec Good = BadDev;
  Good.Device = "stm32f100";
  CampaignResult CR = runCampaign({Bad, BadDev, Good});
  EXPECT_EQ(CR.Summary.Failed, 2u);
  EXPECT_EQ(CR.Summary.Succeeded, 1u);
  EXPECT_NE(CR.Results[0].Error.find("unknown benchmark"),
            std::string::npos);
  EXPECT_NE(CR.Results[1].Error.find("unknown device"), std::string::npos);
  EXPECT_TRUE(CR.Results[2].ok());
  // Failed jobs still serialize cleanly.
  JsonValue V;
  ASSERT_TRUE(JsonValue::parse(campaignToJson(CR), V));
  EXPECT_FALSE(V.find("jobs")->items()[0].find("ok")->boolean());
}

TEST(Campaign, ProgressReportsEveryUniqueRun) {
  GridSpec Grid;
  Grid.Benchmarks = {"crc32", "int_matmult"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  CampaignOptions Opts;
  Opts.Jobs = 4;
  unsigned Calls = 0, LastDone = 0;
  Opts.Progress = [&](const JobResult &, unsigned Done, unsigned Total) {
    ++Calls;
    LastDone = Done;
    EXPECT_EQ(Total, 2u);
  };
  runCampaign(Grid, Opts);
  EXPECT_EQ(Calls, 2u);
  EXPECT_EQ(LastDone, 2u);
}

TEST(Campaign, MeasurementsMatchDirectPipelineRun) {
  // The engine is a scheduler, not a different methodology: a campaign
  // job must reproduce exactly what a hand-rolled optimizeModule gives.
  JobSpec Spec;
  Spec.Benchmark = "int_matmult";
  Spec.Level = OptLevel::O2;
  Spec.Repeat = 3;
  Spec.RspareBytes = 1024;
  JobResult R = runJob(Spec);
  ASSERT_TRUE(R.ok()) << R.Error;

  Module M = buildBeebs("int_matmult", OptLevel::O2, 3);
  PipelineOptions PO;
  PO.Knobs.RspareBytes = 1024;
  PO.Knobs.Xlimit = 1.5;
  PipelineResult PR = optimizeModule(M, PO);
  ASSERT_TRUE(PR.ok()) << PR.Error;

  EXPECT_EQ(R.BaseCycles, PR.MeasuredBase.Stats.Cycles);
  EXPECT_EQ(R.OptCycles, PR.MeasuredOpt.Stats.Cycles);
  EXPECT_EQ(R.BaseEnergyMilliJoules, PR.MeasuredBase.Energy.MilliJoules);
  EXPECT_EQ(R.OptEnergyMilliJoules, PR.MeasuredOpt.Energy.MilliJoules);
  EXPECT_EQ(R.MovedBlocks, PR.MovedBlocks.size());
}

TEST(DeviceRegistry, NamesAreUniqueAndResolvable) {
  std::set<std::string> Seen;
  for (const DeviceInfo &D : deviceRegistry()) {
    EXPECT_TRUE(Seen.insert(D.Name).second) << D.Name;
    const DeviceInfo *Found = findDevice(D.Name);
    ASSERT_NE(Found, nullptr);
    EXPECT_EQ(Found->Name, D.Name);
  }
  EXPECT_GE(deviceRegistry().size(), 3u);
  EXPECT_EQ(deviceRegistry()[0].Name, "stm32f100");
  EXPECT_EQ(findDevice("no_such_device"), nullptr);
  EXPECT_EQ(deviceNames().size(), deviceRegistry().size());
}

TEST(Campaign, CacheProvenanceDoesNotChangeReportBytes) {
  // The acceptance bar for the persistent cache: a report must be
  // byte-identical whether its numbers were computed or served from a
  // cache, so serialized reports carry no cache provenance.
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.RsparePoints = {256, 512};
  CampaignResult Cold = runCampaign(Grid);

  ResultCache Cache;
  CampaignOptions Opts;
  Opts.Cache = &Cache;
  runCampaign(Grid, Opts); // populate
  CampaignResult Warm = runCampaign(Grid, Opts);
  EXPECT_EQ(Warm.Summary.UniqueRuns, 0u);
  EXPECT_EQ(Warm.Summary.CacheHits, 2u);
  EXPECT_EQ(campaignToJson(Cold), campaignToJson(Warm));
  EXPECT_EQ(campaignToCsv(Cold), campaignToCsv(Warm));
}

TEST(Campaign, ShardRangesAreDisjointAndExhaustive) {
  for (size_t Total : {size_t(0), size_t(1), size_t(5), size_t(7),
                       size_t(16), size_t(100)}) {
    for (unsigned N : {1u, 2u, 3u, 5u, 8u, 120u}) {
      size_t PrevEnd = 0;
      for (unsigned K = 1; K <= N; ++K) {
        auto [Begin, End] = shardRange(Total, K, N);
        // Contiguous with the previous shard: disjoint and, by the final
        // check below, exhaustive.
        EXPECT_EQ(Begin, PrevEnd) << Total << " " << K << "/" << N;
        EXPECT_LE(Begin, End);
        // Balanced to within one job.
        EXPECT_LE(End - Begin, Total / N + 1);
        PrevEnd = End;
      }
      EXPECT_EQ(PrevEnd, Total) << Total << " shards=" << N;
    }
  }
  // Out-of-range shard indices are empty, not wrapping.
  EXPECT_EQ(shardRange(10, 0, 3).second, 0u);
  EXPECT_EQ(shardRange(10, 4, 3).second, shardRange(10, 4, 3).first);
}

TEST(Campaign, ShardedRunsMergeToUnshardedBytes) {
  GridSpec Grid = smallMeasureGrid();
  std::vector<JobSpec> Jobs = Grid.expand();
  CampaignResult Full = runCampaign(Jobs);
  std::string FullJson = campaignToJson(Full);
  std::string FullCsv = campaignToCsv(Full);

  std::vector<std::string> Docs;
  for (unsigned K = 1; K <= 3; ++K) {
    auto [Begin, End] = shardRange(Jobs.size(), K, 3);
    std::vector<JobSpec> Slice(Jobs.begin() + Begin, Jobs.begin() + End);
    Docs.push_back(campaignToJson(runCampaign(Slice)));
  }

  CampaignResult Merged;
  std::string Error;
  ASSERT_TRUE(mergeCampaignReports(Docs, Merged, &Error)) << Error;
  EXPECT_EQ(campaignToJson(Merged), FullJson);
  EXPECT_EQ(campaignToCsv(Merged), FullCsv);
}

TEST(Campaign, ReportParsesBackAndReserializesIdentically) {
  // Round-trip including a failed job: parse recomputes the summary and
  // reserializes to the same bytes.
  JobSpec Good;
  Good.Benchmark = "crc32";
  Good.Level = OptLevel::O1;
  Good.Repeat = 2;
  JobSpec Bad;
  Bad.Benchmark = "no_such_benchmark";
  JobSpec ModelOnly = Good;
  ModelOnly.Kind = JobKind::ModelOnly;
  CampaignResult CR = runCampaign({Good, Bad, ModelOnly});
  std::string Doc = campaignToJson(CR);

  CampaignResult Parsed;
  std::string Error;
  ASSERT_TRUE(parseCampaignReport(Doc, Parsed, &Error)) << Error;
  ASSERT_EQ(Parsed.Results.size(), 3u);
  EXPECT_FALSE(Parsed.Results[1].ok());
  EXPECT_EQ(Parsed.Results[0].OptEnergyMilliJoules,
            CR.Results[0].OptEnergyMilliJoules);
  EXPECT_EQ(Parsed.Results[0].BaseCycles, CR.Results[0].BaseCycles);
  EXPECT_EQ(Parsed.Results[2].Spec.Kind, JobKind::ModelOnly);
  EXPECT_EQ(campaignToJson(Parsed), Doc);
}

TEST(DeviceRegistry, VariantsDifferFromReference) {
  const PowerModel &Ref = findDevice("stm32f100")->Model;
  const PowerModel &LotB = findDevice("stm32f100-lotB")->Model;
  EXPECT_NE(Ref.MilliWatts[0][0], LotB.MilliWatts[0][0]);
  // Registry construction is deterministic: a second lookup sees the
  // same perturbed values.
  EXPECT_EQ(LotB.MilliWatts[0][0],
            findDevice("stm32f100-lotB")->Model.MilliWatts[0][0]);
  const PowerModel &LP = findDevice("stm32l-lp")->Model;
  EXPECT_LT(LP.MilliWatts[0][0], Ref.MilliWatts[0][0]);
  EXPECT_LT(LP.SleepMilliWatts, Ref.SleepMilliWatts);
}

TEST(DeviceRegistry, ProcessCornersScaleSystematically) {
  const PowerModel &Ref = findDevice("stm32f100")->Model;
  const PowerModel &Fast = findDevice("stm32f100-fastcorner")->Model;
  const PowerModel &Slow = findDevice("stm32f100-slowcorner")->Model;
  for (unsigned F = 0; F != 2; ++F)
    for (unsigned C = 0; C != 7; ++C) {
      EXPECT_NEAR(Fast.MilliWatts[F][C], Ref.MilliWatts[F][C] * 0.90,
                  1e-12);
      EXPECT_NEAR(Slow.MilliWatts[F][C], Ref.MilliWatts[F][C] * 1.12,
                  1e-12);
    }
  EXPECT_EQ(findDevice("stm32f100-fastcorner")->Timing.FlashWaitStates,
            0u);
  EXPECT_EQ(findDevice("stm32f100-slowcorner")->Timing.FlashWaitStates,
            1u);
  EXPECT_EQ(findDevice("stm32f103-72mhz")->Timing.FlashWaitStates, 2u);
}

TEST(Campaign, DeviceAxisIsOneSimulationPlusRecosts) {
  // The simulate-once/cost-many acceptance bar: a device-axis-heavy grid
  // (1 benchmark x all registry devices) performs exactly one full
  // simulation — every other device derives its numbers by recosting the
  // shared profile — and the report is byte-identical to the
  // all-simulated run.
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.Devices = deviceNames();
  Grid.Kind = JobKind::ModelOnly;
  Grid.FreqModes = {FreqMode::Profiled}; // one baseline simulation per job
  ASSERT_GE(Grid.Devices.size(), 9u);

  CampaignOptions Reuse;
  Reuse.Jobs = 4;
  CampaignResult WithReuse = runCampaign(Grid, Reuse);
  ASSERT_EQ(WithReuse.Summary.Failed, 0u);
  EXPECT_EQ(WithReuse.Summary.FullSims, 1u);
  EXPECT_EQ(WithReuse.Summary.Recosts, Grid.Devices.size() - 1);

  CampaignOptions NoReuse;
  NoReuse.Jobs = 4;
  NoReuse.ReuseProfiles = false;
  CampaignResult AllSimulated = runCampaign(Grid, NoReuse);
  EXPECT_EQ(AllSimulated.Summary.FullSims, 0u); // no cache, no counters
  EXPECT_EQ(AllSimulated.Summary.Recosts, 0u);
  EXPECT_EQ(campaignToJson(WithReuse), campaignToJson(AllSimulated));
  EXPECT_EQ(campaignToCsv(WithReuse), campaignToCsv(AllSimulated));
}

TEST(Campaign, MeasureGridReportsUnchangedByProfileReuse) {
  // Measure jobs run two simulations each (baseline + optimized); with
  // profile reuse the device axis shares both and the report bytes must
  // not move.
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.Devices = deviceNames();

  CampaignOptions Reuse;
  Reuse.Jobs = 4;
  CampaignResult WithReuse = runCampaign(Grid, Reuse);
  ASSERT_EQ(WithReuse.Summary.Failed, 0u);
  // Every measurement was satisfied, most of them by recost.
  EXPECT_EQ(WithReuse.Summary.FullSims + WithReuse.Summary.Recosts,
            2 * Grid.Devices.size());
  EXPECT_LT(WithReuse.Summary.FullSims, Grid.Devices.size());
  EXPECT_GE(WithReuse.Summary.FullSims, 1u);

  CampaignOptions NoReuse;
  NoReuse.Jobs = 4;
  NoReuse.ReuseProfiles = false;
  CampaignResult AllSimulated = runCampaign(Grid, NoReuse);
  EXPECT_EQ(campaignToJson(WithReuse), campaignToJson(AllSimulated));
  EXPECT_EQ(campaignToCsv(WithReuse), campaignToCsv(AllSimulated));
}

TEST(Campaign, ExternalProfileCacheSpansCampaigns) {
  // A later campaign over new devices recosts executions an earlier
  // campaign already simulated, when both share a ProfileCache.
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.Devices = {"stm32f100"};
  Grid.Kind = JobKind::ModelOnly;
  Grid.FreqModes = {FreqMode::Profiled};

  ProfileCache Profiles;
  CampaignOptions Opts;
  Opts.Profiles = &Profiles;
  CampaignResult First = runCampaign(Grid, Opts);
  ASSERT_EQ(First.Summary.Failed, 0u);
  EXPECT_EQ(First.Summary.FullSims, 1u);

  Grid.Devices = {"stm32f100-2ws", "stm32f103-72mhz"};
  CampaignResult Second = runCampaign(Grid, Opts);
  ASSERT_EQ(Second.Summary.Failed, 0u);
  EXPECT_EQ(Second.Summary.FullSims, 0u);
  EXPECT_EQ(Second.Summary.Recosts, 2u);
}

TEST(DeviceRegistry, FlashWaitStatesSlowFlashAndWidenTheGap) {
  JobSpec Ref;
  Ref.Benchmark = "crc32";
  Ref.Level = OptLevel::O1;
  Ref.Repeat = 2;
  JobSpec Waited = Ref;
  Waited.Device = "stm32f100-2ws";

  JobResult A = runJob(Ref);
  JobResult B = runJob(Waited);
  ASSERT_TRUE(A.ok()) << A.Error;
  ASSERT_TRUE(B.ok()) << B.Error;

  // Wait states add cycles to every flash fetch: the all-flash baseline
  // must be strictly slower on the wait-stated part.
  EXPECT_GT(B.BaseCycles, A.BaseCycles);
  // The optimization still wins there — RAM residence now saves time as
  // well as power, so the flash/RAM gap only widens.
  EXPECT_LT(B.OptEnergyMilliJoules, B.BaseEnergyMilliJoules);
  // And the optimized binary escapes part of the wait-state tax: its
  // cycle inflation relative to the reference part is smaller than the
  // baseline's.
  double BaseInflation = static_cast<double>(B.BaseCycles) / A.BaseCycles;
  double OptInflation = static_cast<double>(B.OptCycles) / A.OptCycles;
  EXPECT_LT(OptInflation, BaseInflation);
}

TEST(Campaign, SolveGroupKeyDropsOnlyTheKnobAxes) {
  JobSpec A;
  A.Benchmark = "crc32";
  A.RspareBytes = 256;
  A.Xlimit = 1.2;
  JobSpec B = A;
  B.RspareBytes = 1024;
  B.Xlimit = 1.8;
  EXPECT_EQ(A.solveGroupKey(), B.solveGroupKey());
  EXPECT_NE(A.cacheKey(), B.cacheKey());
  JobSpec C = A;
  C.Device = "stm32l-lp";
  EXPECT_NE(A.solveGroupKey(), C.solveGroupKey());
  JobSpec D = A;
  D.Kind = JobKind::ModelOnly;
  EXPECT_NE(A.solveGroupKey(), D.solveGroupKey());
}

TEST(Campaign, KnobAxisIsOneExtractionOneColdSolve) {
  // The PR-4 acceptance grid: 1 benchmark x 1 device x {3 Xlimit} x
  // {3 Rspare} must perform exactly 1 extraction + 1 cold solve, with
  // the remaining 8 knob points warm-started — whatever the worker
  // count, since the whole group runs as one task.
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.RsparePoints = {256, 512, 1024};
  Grid.XlimitPoints = {1.1, 1.5, 2.0};

  CampaignOptions Opts;
  Opts.Jobs = 4;
  CampaignResult CR = runCampaign(Grid, Opts);
  ASSERT_EQ(CR.Summary.Failed, 0u);
  EXPECT_EQ(CR.Summary.Extractions, 1u);
  EXPECT_EQ(CR.Summary.ColdSolves, 1u);
  EXPECT_EQ(CR.Summary.WarmSolves, 8u);
}

TEST(Campaign, KnobGridReportsUnchangedBySolveReuse) {
  // Warm and cold solvers are both exact, so a knob grid's report must
  // be byte-identical with solve reuse on or off (the --no-solve-reuse
  // escape hatch).
  GridSpec Grid;
  Grid.Benchmarks = {"crc32", "int_matmult"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.RsparePoints = {256, 1024};
  Grid.XlimitPoints = {1.1, 1.8};

  CampaignOptions Reuse;
  Reuse.Jobs = 4;
  CampaignResult WithReuse = runCampaign(Grid, Reuse);
  ASSERT_EQ(WithReuse.Summary.Failed, 0u);
  EXPECT_GT(WithReuse.Summary.WarmSolves, 0u);

  CampaignOptions Cold;
  Cold.Jobs = 4;
  Cold.ReuseSolves = false;
  Cold.Base.Solver.WarmNodes = false;
  CampaignResult AllCold = runCampaign(Grid, Cold);
  ASSERT_EQ(AllCold.Summary.Failed, 0u);
  EXPECT_EQ(AllCold.Summary.WarmSolves, 0u);
  EXPECT_EQ(AllCold.Summary.ColdSolves,
            static_cast<uint64_t>(Grid.jobCount()));
  EXPECT_EQ(AllCold.Summary.Extractions,
            static_cast<uint64_t>(Grid.jobCount()));

  EXPECT_EQ(campaignToJson(WithReuse), campaignToJson(AllCold));
  EXPECT_EQ(campaignToCsv(WithReuse), campaignToCsv(AllCold));
}

TEST(Campaign, ModelOnlyKnobGridGroupsToo) {
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.RsparePoints = {128, 512};
  Grid.XlimitPoints = {1.1, 1.6};
  Grid.Kind = JobKind::ModelOnly;

  CampaignResult CR = runCampaign(Grid, {});
  ASSERT_EQ(CR.Summary.Failed, 0u);
  EXPECT_EQ(CR.Summary.Extractions, 1u);
  EXPECT_EQ(CR.Summary.ColdSolves, 1u);
  EXPECT_EQ(CR.Summary.WarmSolves, 3u);
  // ModelOnly with static frequencies never simulates.
  EXPECT_EQ(CR.Summary.FullSims + CR.Summary.Recosts, 0u);

  CampaignOptions Cold;
  Cold.ReuseSolves = false;
  Cold.Base.Solver.WarmNodes = false;
  CampaignResult AllCold = runCampaign(Grid, Cold);
  EXPECT_EQ(campaignToJson(CR), campaignToJson(AllCold));
}

TEST(Campaign, IncumbentStoreKeepsTheBestAssignment) {
  IncumbentStore Store;
  Assignment A = {true, false, true};
  Assignment B = {false, true, false};
  Store.offer("g", A, 5.0);
  Store.offer("g", B, 7.0); // worse: ignored
  IncumbentStore::Entry E;
  ASSERT_TRUE(Store.lookup("g", E));
  EXPECT_EQ(E.InRam, A);
  EXPECT_EQ(E.EnergyMilliJoules, 5.0);
  Store.offer("g", B, 4.0); // better: replaces
  ASSERT_TRUE(Store.lookup("g", E));
  EXPECT_EQ(E.InRam, B);
  // Ties keep the earlier entry, so the store is offer-order independent.
  Store.offer("g", A, 4.0);
  ASSERT_TRUE(Store.lookup("g", E));
  EXPECT_EQ(E.InRam, B);
  EXPECT_FALSE(Store.lookup("other", E));
  EXPECT_EQ(Store.size(), 1u);
}

TEST(Campaign, IncumbentSeedingKeepsReportsByteIdentical) {
  // The cross-process pattern in-process: campaign 1 populates the
  // store, campaign 2 opens its solve groups from it. Reports must be
  // byte-identical with and without seeding, and the seeded run must
  // say it seeded.
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.RsparePoints = {256, 1024};
  Grid.XlimitPoints = {1.1, 1.8};
  Grid.Kind = JobKind::ModelOnly;

  CampaignResult Baseline = runCampaign(Grid, {});
  ASSERT_EQ(Baseline.Summary.Failed, 0u);
  EXPECT_EQ(Baseline.Summary.IncumbentSeeds, 0u);

  IncumbentStore Store;
  CampaignOptions Warmup;
  Warmup.Incumbents = &Store;
  CampaignResult First = runCampaign(Grid, Warmup);
  ASSERT_EQ(First.Summary.Failed, 0u);
  EXPECT_EQ(First.Summary.IncumbentSeeds, 0u); // store was empty
  EXPECT_EQ(Store.size(), 1u);                 // one solve group

  CampaignOptions Seeded;
  Seeded.Incumbents = &Store;
  CampaignResult Second = runCampaign(Grid, Seeded);
  ASSERT_EQ(Second.Summary.Failed, 0u);
  EXPECT_EQ(Second.Summary.IncumbentSeeds, 1u);

  CampaignOptions NoSeed;
  NoSeed.Incumbents = &Store;
  NoSeed.SeedIncumbents = false;
  CampaignResult Unseeded = runCampaign(Grid, NoSeed);
  ASSERT_EQ(Unseeded.Summary.Failed, 0u);
  EXPECT_EQ(Unseeded.Summary.IncumbentSeeds, 0u);

  EXPECT_EQ(campaignToJson(Baseline), campaignToJson(Second));
  EXPECT_EQ(campaignToJson(Baseline), campaignToJson(Unseeded));
}

TEST(Campaign, NodeOrdersProduceByteIdenticalReports) {
  // Every node-selection policy is exact; on the BEEBS models the
  // optimum is unique, so the whole report must not depend on the order
  // the search tree was walked in.
  GridSpec Grid;
  Grid.Benchmarks = {"crc32", "int_matmult"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.RsparePoints = {128, 512};
  Grid.XlimitPoints = {1.05, 1.5};
  Grid.Kind = JobKind::ModelOnly;

  std::string Reports[3];
  NodeOrder Orders[3] = {NodeOrder::Dfs, NodeOrder::BestBound,
                         NodeOrder::Hybrid};
  for (int I = 0; I != 3; ++I) {
    CampaignOptions Opts;
    Opts.Base.Solver.Order = Orders[I];
    CampaignResult CR = runCampaign(Grid, Opts);
    ASSERT_EQ(CR.Summary.Failed, 0u) << nodeOrderName(Orders[I]);
    Reports[I] = campaignToJson(CR);
  }
  EXPECT_EQ(Reports[0], Reports[1]);
  EXPECT_EQ(Reports[0], Reports[2]);
}

TEST(Campaign, SolverThreadCountsProduceByteIdenticalReports) {
  // The parallel tree search selects its incumbent canonically, so the
  // campaign report must be byte-identical across every thread count x
  // node order combination — the same guarantee the CI batch-behavior
  // job proves end-to-end through ramloc-batch --solver-threads.
  GridSpec Grid;
  Grid.Benchmarks = {"crc32", "int_matmult"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.RsparePoints = {128, 512};
  Grid.XlimitPoints = {1.05, 1.5};
  Grid.Kind = JobKind::ModelOnly;

  std::string Reference;
  for (unsigned Threads : {1u, 2u, 8u})
    for (NodeOrder Order :
         {NodeOrder::Dfs, NodeOrder::BestBound, NodeOrder::Hybrid}) {
      CampaignOptions Opts;
      Opts.Base.Solver.Threads = Threads;
      Opts.Base.Solver.Order = Order;
      CampaignResult CR = runCampaign(Grid, Opts);
      ASSERT_EQ(CR.Summary.Failed, 0u)
          << Threads << " threads, " << nodeOrderName(Order);
      std::string Report = campaignToJson(CR);
      if (Reference.empty())
        Reference = Report;
      else
        EXPECT_EQ(Report, Reference)
            << Threads << " threads, " << nodeOrderName(Order);
    }
}

TEST(Campaign, PricingRulesProduceByteIdenticalReports) {
  // Pricing only picks which pivot the simplex takes next and strong
  // branching only reorders the tree walk; both are exact, so every
  // pricing rule x strong-branch x thread-count combination must emit
  // the same campaign report bytes — the same guarantee the CI batch
  // smoke proves end-to-end through ramloc-batch --pricing.
  GridSpec Grid;
  Grid.Benchmarks = {"crc32", "int_matmult"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.RsparePoints = {128, 512};
  Grid.XlimitPoints = {1.05, 1.5};
  Grid.Kind = JobKind::ModelOnly;

  std::string Reference;
  for (Pricing Rule : {Pricing::SteepestEdge, Pricing::Dantzig,
                       Pricing::PartialDantzig, Pricing::Bland})
    for (unsigned StrongK : {0u, 8u})
      for (unsigned Threads : {1u, 4u}) {
        CampaignOptions Opts;
        Opts.Base.Solver.PricingRule = Rule;
        Opts.Base.Solver.StrongBranchK = StrongK;
        Opts.Base.Solver.Threads = Threads;
        CampaignResult CR = runCampaign(Grid, Opts);
        ASSERT_EQ(CR.Summary.Failed, 0u)
            << pricingName(Rule) << ", strong-branch " << StrongK << ", "
            << Threads << " threads";
        std::string Report = campaignToJson(CR);
        if (Reference.empty())
          Reference = Report;
        else
          EXPECT_EQ(Report, Reference)
              << pricingName(Rule) << ", strong-branch " << StrongK
              << ", " << Threads << " threads";
      }
}

TEST(Campaign, ReportWithSolverDiagnosticsParsesAndDiffsClean) {
  // A report annotated with a "solver" effort block (a diagnostic
  // dialect extension) must parse, absorb the counters, and reserialize
  // to the canonical byte stream — effort is provenance, not results.
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.Kind = JobKind::ModelOnly;
  CampaignResult CR = runCampaign(Grid, {});
  ASSERT_EQ(CR.Summary.Failed, 0u);
  std::string Canonical = campaignToJson(CR);

  // Inject a solver block into every job object.
  std::string Annotated = Canonical;
  const std::string Needle = "\"model\":";
  const std::string Block =
      "\"solver\": {\"cold_solves\": 3, \"warm_solves\": 9, "
      "\"incumbent_seeds\": 1, \"primal_pivots\": 1234}, ";
  for (size_t Pos = 0; (Pos = Annotated.find(Needle, Pos)) !=
                       std::string::npos;
       Pos += Block.size() + Needle.size())
    Annotated.insert(Pos, Block);
  ASSERT_NE(Annotated, Canonical);

  CampaignResult Parsed;
  std::string Error;
  ASSERT_TRUE(parseCampaignReport(Annotated, Parsed, &Error)) << Error;
  ASSERT_EQ(Parsed.Results.size(), CR.Results.size());
  EXPECT_EQ(Parsed.Results[0].ColdSolves, 3u);
  EXPECT_EQ(Parsed.Results[0].WarmSolves, 9u);
  EXPECT_EQ(Parsed.Results[0].IncumbentSeeds, 1u);
  // Re-serialization drops the diagnostics: back to canonical bytes.
  EXPECT_EQ(campaignToJson(Parsed), Canonical);
}
