//===- tests/SimTimingTest.cpp - cycle accounting ---------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "layout/Linker.h"
#include "power/PowerModel.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace ramloc;
using namespace ramloc::build;

namespace {

/// Builds a module with one function whose single block can be homed in
/// either memory; the block body loads count times from `buf` (RAM) or
/// `tab` (flash).
Module loadLoopModule(bool CodeInRam, bool DataInRam) {
  Module M;
  M.EntryFunction = "t";
  M.addBss("buf", 16);
  M.addRodataWords("tab", {1, 2, 3, 4});
  Function F("t");
  BasicBlock Pre("entry");
  Pre.Instrs = {ldrLitSym(R1, DataInRam ? "buf" : "tab")};
  if (CodeInRam)
    Pre.Instrs.push_back(ldrLitSym(PC, "body"));
  F.Blocks.push_back(Pre);
  BasicBlock Body("body");
  Body.Home = CodeInRam ? MemKind::Ram : MemKind::Flash;
  for (int I = 0; I != 10; ++I)
    Body.Instrs.push_back(ldrImm(R0, R1, 0));
  if (CodeInRam) {
    Body.Instrs.push_back(ldrLitSym(PC, "fin"));
  } else {
    Body.Instrs.push_back(b("fin"));
  }
  F.Blocks.push_back(Body);
  BasicBlock Fin("fin");
  Fin.Instrs = {bkpt()};
  F.Blocks.push_back(Fin);
  M.Functions.push_back(F);
  return M;
}

RunStats runTiming(const Module &M) {
  LinkResult LR = linkModule(M);
  EXPECT_TRUE(LR.ok()) << (LR.Errors.empty() ? "" : LR.Errors.front());
  SimOptions SO;
  SO.IncludeStartupCopy = false;
  return runImage(LR.Img, SO);
}

} // namespace

TEST(SimTiming, StraightLineCycleCount) {
  // mov(1) + add(1) + bkpt(1) = 3 cycles.
  Module M;
  M.EntryFunction = "t";
  Function F("t");
  BasicBlock A("entry");
  A.Instrs = {movImm(R0, 1), addImm(R0, R0, 1), bkpt()};
  F.Blocks.push_back(A);
  M.Functions.push_back(F);
  RunStats S = runTiming(M);
  EXPECT_EQ(S.Cycles, 3u);
  EXPECT_EQ(S.Instructions, 3u);
}

TEST(SimTiming, TakenVsNotTakenBranch) {
  // Not-taken bcc costs 1; taken costs 3.
  Module M;
  M.EntryFunction = "t";
  Function F("t");
  BasicBlock A("entry");
  A.Instrs = {cmpImm(R0, 1), bCond(Cond::EQ, "target")}; // r0=0: not taken
  BasicBlock B2("next");
  B2.Instrs = {bkpt()};
  BasicBlock C("target");
  C.Instrs = {bkpt()};
  F.Blocks = {A, B2, C};
  M.Functions.push_back(F);
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok());
  SimOptions SO;
  SO.IncludeStartupCopy = false;
  RunStats NotTaken = runImage(LR.Img, SO, /*r0=*/0);
  RunStats Taken = runImage(LR.Img, SO, /*r0=*/1);
  // cmp(1) + bcc(1 or 3) + bkpt(1).
  EXPECT_EQ(NotTaken.Cycles, 3u);
  EXPECT_EQ(Taken.Cycles, 5u);
}

TEST(SimTiming, RamContentionOnlyWhenBothSidesRam) {
  // 10 loads in each configuration; stalls only for RAM code + RAM data.
  RunStats FlashFlash = runTiming(loadLoopModule(false, false));
  RunStats FlashRam = runTiming(loadLoopModule(false, true));
  RunStats RamFlash = runTiming(loadLoopModule(true, false));
  RunStats RamRam = runTiming(loadLoopModule(true, true));
  ASSERT_TRUE(FlashFlash.ok() && FlashRam.ok() && RamFlash.ok() &&
              RamRam.ok());
  EXPECT_EQ(FlashFlash.ContentionStalls, 0u);
  EXPECT_EQ(FlashRam.ContentionStalls, 0u);
  // RAM-homed code pays one extra stall for the `ldr pc, =fin` long jump,
  // whose literal pool word lives in RAM alongside the code.
  EXPECT_EQ(RamFlash.ContentionStalls, 1u);
  EXPECT_EQ(RamRam.ContentionStalls, 11u);
  // The stalls show up as extra cycles relative to the RAM/flash run.
  EXPECT_EQ(RamRam.Cycles, RamFlash.Cycles + 10u);
}

TEST(SimTiming, FetchAttributionByRegion) {
  RunStats RamRun = runTiming(loadLoopModule(true, true));
  ASSERT_TRUE(RamRun.ok());
  // The body (loads) ran from RAM; entry and fin from flash.
  EXPECT_GT(RamRun.fetchCycles(MemKind::Ram), 20u);
  EXPECT_GT(RamRun.fetchCycles(MemKind::Flash), 0u);
  // Load cycles split by data region: all body loads were RAM-data.
  EXPECT_GT(RamRun.LoadCycles[1][1], 0u);
  EXPECT_EQ(RamRun.LoadCycles[0][1], 0u);
}

TEST(SimTiming, StartupCopyAccounted) {
  Module M = loadLoopModule(true, true);
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok());
  SimOptions WithCopy;
  SimOptions NoCopy;
  NoCopy.IncludeStartupCopy = false;
  RunStats A = runImage(LR.Img, WithCopy);
  RunStats B2 = runImage(LR.Img, NoCopy);
  EXPECT_EQ(A.Cycles, B2.Cycles + LR.Img.StartupCopyCycles);
}

TEST(SimTiming, ProfileMapKeys) {
  Module M = loadLoopModule(false, false);
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok());
  RunStats S = runImage(LR.Img);
  auto Prof = S.profileMap(M);
  EXPECT_EQ(Prof.at("t:entry"), 1u);
  EXPECT_EQ(Prof.at("t:body"), 1u);
  EXPECT_EQ(Prof.at("t:fin"), 1u);
}

TEST(PowerModel, Figure1Shape) {
  PowerModel PM = PowerModel::stm32f100();
  // RAM fetch cheaper than flash for every class...
  for (unsigned C = 0; C != 7; ++C) {
    if (C == static_cast<unsigned>(InstrClass::Load))
      continue;
    EXPECT_LT(PM.MilliWatts[1][C], PM.MilliWatts[0][C])
        << instrClassName(static_cast<InstrClass>(C));
  }
  // ...except the RAM-code/flash-data load, which is nearly flash-priced
  // (Figure 1, last bar).
  EXPECT_LT(PM.LoadMilliWatts[1][1], PM.LoadMilliWatts[0][0]);
  EXPECT_GT(PM.LoadMilliWatts[1][0], PM.LoadMilliWatts[1][1] * 1.5);
  EXPECT_GT(PM.eFlash(), PM.eRam());
  EXPECT_NEAR(PM.eRam() / PM.eFlash(), 0.58, 0.08);
}

TEST(PowerModel, IntegrationMatchesHandComputation) {
  PowerModel PM = PowerModel::stm32f100();
  RunStats S;
  S.Cycles = 24000; // 1 ms at 24 MHz
  S.ClassCycles[0][static_cast<unsigned>(InstrClass::Alu)] = 24000;
  EnergyReport R = PM.integrate(S);
  EXPECT_DOUBLE_EQ(R.Seconds, 0.001);
  EXPECT_NEAR(R.MilliJoules, 15.0 * 0.001, 1e-9);
  EXPECT_NEAR(R.AvgMilliWatts, 15.0, 1e-9);
  EXPECT_DOUBLE_EQ(R.RamMilliJoules, 0.0);
}

TEST(PowerModel, LoadDataRegionPricing) {
  PowerModel PM = PowerModel::stm32f100();
  RunStats S;
  S.Cycles = 1000;
  S.ClassCycles[1][static_cast<unsigned>(InstrClass::Load)] = 1000;
  S.LoadCycles[1][0] = 1000; // RAM code loading flash data
  EnergyReport R = PM.integrate(S);
  EXPECT_NEAR(R.AvgMilliWatts, 15.8, 1e-9);
}

TEST(PowerModel, SleepExtension) {
  EnergyReport R;
  R.MilliJoules = 10.0;
  R.Seconds = 1.0;
  // 10 mJ active + 3.5 mW * 2 s sleep.
  EXPECT_DOUBLE_EQ(R.totalWithSleep(2.0, 3.5), 17.0);
}
