//===- tests/LayoutTest.cpp - linker tests ---------------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "layout/Linker.h"

#include <gtest/gtest.h>

using namespace ramloc;
using namespace ramloc::build;

namespace {

Module simpleModule() {
  Module M;
  M.Name = "m";
  M.EntryFunction = "main";
  M.addRodataWords("tab", {0x11111111, 0x22222222});
  M.addDataWords("var", {0xAABBCCDD});
  M.addBss("buf", 32);
  Function F("main");
  BasicBlock A("entry");
  A.Instrs = {ldrLitSym(R0, "tab"), ldrImm(R1, R0, 4),
              ldrLitSym(R2, "var"), ldrImm(R3, R2, 0), bkpt()};
  F.Blocks.push_back(A);
  M.Functions.push_back(F);
  return M;
}

} // namespace

TEST(MemoryMap, Regions) {
  MemoryMap Map;
  EXPECT_TRUE(Map.inFlash(0x08000000));
  EXPECT_TRUE(Map.inFlash(0x0800FFFF));
  EXPECT_FALSE(Map.inFlash(0x08010000));
  EXPECT_TRUE(Map.inRam(0x20000000));
  EXPECT_TRUE(Map.inRam(0x20001FFF));
  EXPECT_FALSE(Map.inRam(0x20002000));
  EXPECT_EQ(Map.regionOf(0x08000100), MemKind::Flash);
  EXPECT_EQ(Map.regionOf(0x20000100), MemKind::Ram);
  EXPECT_EQ(Map.stackTop(), 0x20002000u);
}

TEST(Linker, BasicPlacement) {
  Module M = simpleModule();
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok()) << LR.Errors.front();
  const Image &Img = LR.Img;

  EXPECT_EQ(Img.EntryAddr, Img.Map.FlashBase);
  ASSERT_EQ(Img.Instrs.size(), 5u);
  EXPECT_EQ(Img.Instrs[0].Addr, Img.Map.FlashBase);
  EXPECT_TRUE(Img.Instrs[0].IsBlockHead);
  EXPECT_FALSE(Img.Instrs[1].IsBlockHead);

  // Data symbols placed: rodata in flash, data/bss in RAM.
  ASSERT_TRUE(Img.SymbolAddr.count("tab"));
  ASSERT_TRUE(Img.SymbolAddr.count("var"));
  ASSERT_TRUE(Img.SymbolAddr.count("buf"));
  EXPECT_TRUE(Img.Map.inFlash(Img.SymbolAddr.at("tab")));
  EXPECT_TRUE(Img.Map.inRam(Img.SymbolAddr.at("var")));
  EXPECT_TRUE(Img.Map.inRam(Img.SymbolAddr.at("buf")));

  // Initial contents visible at the placed addresses.
  EXPECT_EQ(Img.initialWord(Img.SymbolAddr.at("tab")), 0x11111111u);
  EXPECT_EQ(Img.initialWord(Img.SymbolAddr.at("tab") + 4), 0x22222222u);
  EXPECT_EQ(Img.initialWord(Img.SymbolAddr.at("var")), 0xAABBCCDDu);
  EXPECT_EQ(Img.initialWord(Img.SymbolAddr.at("buf")), 0u);

  // Literal pool slots resolved to the symbol addresses.
  EXPECT_EQ(Img.initialWord(Img.Instrs[0].TargetAddr),
            Img.SymbolAddr.at("tab"));
  EXPECT_EQ(Img.initialWord(Img.Instrs[2].TargetAddr),
            Img.SymbolAddr.at("var"));
}

TEST(Linker, InstrIndexLookup) {
  Module M;
  M.EntryFunction = "f";
  Function F("f");
  BasicBlock A("a");
  A.Instrs = {movImm(R8, 1), movImm(R0, 2), bkpt()}; // 4 + 2 + 2 bytes
  F.Blocks.push_back(A);
  M.Functions.push_back(F);
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok());
  const Image &Img = LR.Img;
  for (unsigned I = 0; I != Img.Instrs.size(); ++I)
    EXPECT_EQ(Img.instrIndexAt(Img.Instrs[I].Addr), static_cast<int>(I));
  // The middle halfword of the 32-bit mov is not an instruction start.
  EXPECT_EQ(Img.instrIndexAt(Img.Map.FlashBase + 2), -1);
  // Unmapped address.
  EXPECT_EQ(Img.instrIndexAt(0x30000000), -1);
}

TEST(Linker, RamBlockPlacement) {
  Module M = simpleModule();
  // Move the (single) block to RAM: entry lives in RAM.
  M.Functions[0].Blocks[0].Home = MemKind::Ram;
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok()) << LR.Errors.front();
  EXPECT_TRUE(LR.Img.Map.inRam(LR.Img.EntryAddr));
  EXPECT_GT(LR.Img.Sizes.RamCode, 0u);
  EXPECT_EQ(LR.Img.Sizes.FlashCode, 0u);
  // Its literal pool is in RAM too (co-located with the code).
  EXPECT_TRUE(LR.Img.Map.inRam(LR.Img.Instrs[0].TargetAddr));
  EXPECT_GT(LR.Img.Sizes.RamPool, 0u);
}

TEST(Linker, RejectsCrossMemoryDirectBranch) {
  Module M;
  M.EntryFunction = "f";
  Function F("f");
  BasicBlock A("a");
  A.Instrs = {b("bblock")};
  BasicBlock B2("bblock");
  B2.Home = MemKind::Ram;
  B2.Instrs = {bkpt()};
  F.Blocks = {A, B2};
  M.Functions.push_back(F);
  LinkResult LR = linkModule(M);
  ASSERT_FALSE(LR.ok());
  EXPECT_NE(LR.Errors[0].find("other memory"), std::string::npos);
}

TEST(Linker, RejectsCrossMemoryCall) {
  Module M;
  M.EntryFunction = "f";
  Function F("f");
  BasicBlock A("a");
  A.Instrs = {bl("g"), bkpt()};
  F.Blocks.push_back(A);
  Function G("g");
  BasicBlock GB("entry");
  GB.Home = MemKind::Ram;
  GB.Instrs = {bx(LR)};
  G.Blocks.push_back(GB);
  M.Functions = {F, G};
  LinkResult LR = linkModule(M);
  ASSERT_FALSE(LR.ok());
  EXPECT_NE(LR.Errors[0].find("crosses memories"), std::string::npos);
}

TEST(Linker, RejectsCrossMemoryFallthrough) {
  Module M;
  M.EntryFunction = "f";
  Function F("f");
  BasicBlock A("a");
  A.Instrs = {movImm(R0, 1)}; // falls through
  BasicBlock B2("b");
  B2.Home = MemKind::Ram;
  B2.Instrs = {bkpt()};
  F.Blocks = {A, B2};
  M.Functions.push_back(F);
  LinkResult LR = linkModule(M);
  ASSERT_FALSE(LR.ok());
  EXPECT_NE(LR.Errors[0].find("missing instrumentation"),
            std::string::npos);
}

TEST(Linker, AcceptsLongJumpAcrossMemories) {
  Module M;
  M.EntryFunction = "f";
  Function F("f");
  BasicBlock A("a");
  A.Instrs = {ldrLitSym(PC, "b")};
  BasicBlock B2("b");
  B2.Home = MemKind::Ram;
  B2.Instrs = {bkpt()};
  F.Blocks = {A, B2};
  M.Functions.push_back(F);
  LinkResult LR = linkModule(M);
  EXPECT_TRUE(LR.ok()) << LR.Errors.front();
}

TEST(Linker, UnresolvedSymbolDiagnosed) {
  Module M;
  M.EntryFunction = "f";
  Function F("f");
  BasicBlock A("a");
  A.Instrs = {ldrLitSym(R0, "ghost"), bkpt()};
  F.Blocks.push_back(A);
  M.Functions.push_back(F);
  LinkResult LR = linkModule(M);
  ASSERT_FALSE(LR.ok());
  EXPECT_NE(LR.Errors[0].find("ghost"), std::string::npos);
}

TEST(Linker, RamOverflowDiagnosed) {
  Module M = simpleModule();
  M.addBss("huge", 8 * 1024); // cannot fit with the stack reserve
  LinkResult LR = linkModule(M);
  ASSERT_FALSE(LR.ok());
  EXPECT_NE(LR.Errors[0].find("RAM overflow"), std::string::npos);
}

TEST(Linker, StackReserveRespected) {
  Module M = simpleModule();
  M.addBss("big", 6 * 1024);
  LinkOptions Opts;
  Opts.StackReserve = 2048; // 6K + data + pools + 2K reserve > 8K
  LinkResult LR = linkModule(M, Opts);
  EXPECT_FALSE(LR.ok());
  Opts.StackReserve = 512;
  LR = linkModule(M, Opts);
  EXPECT_TRUE(LR.ok()) << (LR.Errors.empty() ? "" : LR.Errors.front());
}

TEST(Linker, StartupCopyCycles) {
  Module M = simpleModule();
  LinkResult Base = linkModule(M);
  ASSERT_TRUE(Base.ok());
  uint64_t BaseCycles = Base.Img.StartupCopyCycles;
  // Moving code into RAM increases the startup copy.
  M.Functions[0].Blocks[0].Home = MemKind::Ram;
  LinkResult Moved = linkModule(M);
  ASSERT_TRUE(Moved.ok());
  EXPECT_GT(Moved.Img.StartupCopyCycles, BaseCycles);
}

TEST(Linker, LiteralPoolDeduplicated) {
  Module M;
  M.EntryFunction = "f";
  M.addRodataWords("tab", {1});
  Function F("f");
  BasicBlock A("a");
  A.Instrs = {ldrLitSym(R0, "tab"), ldrLitSym(R1, "tab"),
              ldrLitConst(R2, 42), bkpt()};
  F.Blocks.push_back(A);
  M.Functions.push_back(F);
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok());
  // Two distinct literals -> one shared slot for "tab" plus one constant.
  EXPECT_EQ(LR.Img.Instrs[0].TargetAddr, LR.Img.Instrs[1].TargetAddr);
  EXPECT_NE(LR.Img.Instrs[0].TargetAddr, LR.Img.Instrs[2].TargetAddr);
  EXPECT_EQ(LR.Img.Sizes.FlashPool, 8u);
  EXPECT_EQ(LR.Img.initialWord(LR.Img.Instrs[2].TargetAddr), 42u);
}

TEST(Linker, BlockAddressesExported) {
  Module M = simpleModule();
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok());
  EXPECT_TRUE(LR.Img.SymbolAddr.count("main:entry"));
  EXPECT_EQ(LR.Img.SymbolAddr.at("main:entry"), LR.Img.BlockAddr[0][0]);
}

TEST(Linker, SectionSizeAccounting) {
  Module M = simpleModule();
  LinkResult LR = linkModule(M);
  ASSERT_TRUE(LR.ok());
  EXPECT_EQ(LR.Img.Sizes.Rodata, 8u);
  EXPECT_EQ(LR.Img.Sizes.Data, 4u);
  EXPECT_EQ(LR.Img.Sizes.Bss, 32u);
  EXPECT_GT(LR.Img.Sizes.FlashCode, 0u);
  EXPECT_EQ(LR.Img.Sizes.RamCode, 0u);
}
