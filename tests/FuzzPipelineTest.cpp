//===- tests/FuzzPipelineTest.cpp - randomized differential testing -----------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// Generates random (but always-terminating) programs through the code
// generator, runs the full optimization pipeline under random budgets,
// and checks the system-wide invariants:
//
//   1. the transformed program computes the same result (differential
//      correctness against the unoptimized binary);
//   2. the RAM budget is never exceeded;
//   3. the transformed module passes the verifier and the linker's
//      cross-memory range checks;
//   4. the solver never makes the model-estimated energy worse than the
//      all-flash baseline.
//
//===----------------------------------------------------------------------===//

#include "beebs/Codegen.h"
#include "core/Pipeline.h"
#include "mir/Verifier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace ramloc;

namespace {

/// Emits a random straight-line computation over the given vars.
void emitRandomOps(FuncBuilder &B, SplitMix64 &Rng, std::vector<Var> &Vars,
                   Var Buf, unsigned Count) {
  for (unsigned I = 0; I != Count; ++I) {
    Var D = Vars[Rng.nextBelow(Vars.size())];
    Var A = Vars[Rng.nextBelow(Vars.size())];
    Var C = Vars[Rng.nextBelow(Vars.size())];
    switch (Rng.nextBelow(9)) {
    case 0:
      B.op(BinOp::Add, D, A, C);
      break;
    case 1:
      B.op(BinOp::Sub, D, A, C);
      break;
    case 2:
      B.op(BinOp::Mul, D, A, C);
      break;
    case 3:
      B.op(BinOp::Eor, D, A, C);
      break;
    case 4:
      B.op(BinOp::Orr, D, A, C);
      break;
    case 5:
      B.opImm(BinOp::Lsl, D, A,
              static_cast<int32_t>(Rng.nextBelow(7)));
      break;
    case 6:
      B.opImm(BinOp::Lsr, D, A,
              1 + static_cast<int32_t>(Rng.nextBelow(8)));
      break;
    case 7: { // bounded load from the shared buffer
      B.opImm(BinOp::And, D, A, 63);
      B.loadWIdx(D, Buf, D);
      break;
    }
    case 8: { // bounded store to the shared buffer
      B.opImm(BinOp::And, D, A, 63);
      B.storeWIdx(C, Buf, D);
      break;
    }
    }
  }
}

/// Builds a random module: `Funcs` leaf-ish functions (function i may
/// call j > i), each with a bounded loop, plus a main that accumulates a
/// checksum. Always terminates: every loop is a counted countdown.
Module randomModule(uint64_t Seed, OptLevel L) {
  SplitMix64 Rng(Seed);
  Module M;
  M.Name = "fuzz";
  M.addBss("fuzz_buf", 64 * 4);

  unsigned Funcs = 2 + static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned F = Funcs; F-- > 0;) {
    FuncBuilder B(M, "f" + std::to_string(F), L);
    Var Arg = B.param("arg");
    std::vector<Var> Vars{Arg};
    unsigned Locals = 2 + static_cast<unsigned>(Rng.nextBelow(6));
    for (unsigned V = 0; V != Locals; ++V)
      Vars.push_back(B.local("v" + std::to_string(V)));
    Var Cnt = B.local("cnt");
    Var Buf = B.local("buf");
    B.prologue();

    B.addrOf(Buf, "fuzz_buf");
    for (unsigned V = 1; V != Vars.size(); ++V)
      B.setImm(Vars[V], static_cast<uint32_t>(Rng.nextBelow(1000)));
    B.setImm(Cnt, 2 + static_cast<uint32_t>(Rng.nextBelow(6)));

    B.block("loop");
    emitRandomOps(B, Rng, Vars, Buf,
                  3 + static_cast<unsigned>(Rng.nextBelow(10)));
    // Occasionally call a later function (acyclic call graph).
    if (F + 1 < Funcs && Rng.nextBool(0.7)) {
      Var ArgV = Vars[Rng.nextBelow(Vars.size())];
      B.callInto(Vars[1], "f" + std::to_string(F + 1), {ArgV});
    }
    B.opImm(BinOp::Sub, Cnt, Cnt, 1);
    B.brCmpImm(CmpOp::Ne, Cnt, 0, "loop");

    B.block("tail");
    if (Rng.nextBool()) {
      // A data-dependent diamond for CFG variety.
      B.brCmpImm(CmpOp::SLt, Vars[1], 500, "low");
      B.block("high");
      B.opImm(BinOp::Add, Vars[1], Vars[1], 3);
      B.br("join");
      B.block("low");
      B.opImm(BinOp::Eor, Vars[1], Vars[1], 1);
      B.block("join");
    }
    B.op(BinOp::Eor, Vars[1], Vars[1], Arg);
    B.retVar(Vars[1]);
    B.finish();
  }

  // main: checksum = xor over f0(i) for a few i.
  FuncBuilder B(M, "main", L);
  Var Cnt = B.local("cnt");
  Var Sum = B.local("sum");
  Var Tmp = B.local("tmp");
  B.prologue();
  B.setImm(Sum, 0);
  B.setImm(Cnt, 3);
  B.block("repeat");
  B.callInto(Tmp, "f0", {Cnt});
  B.op(BinOp::Eor, Sum, Sum, Tmp);
  B.op(BinOp::Add, Sum, Sum, Cnt);
  B.opImm(BinOp::Sub, Cnt, Cnt, 1);
  B.brCmpImm(CmpOp::Ne, Cnt, 0, "repeat");
  B.block("done");
  B.haltWith(Sum);
  B.finish();
  M.EntryFunction = "main";
  return M;
}

} // namespace

class FuzzPipeline : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPipeline, InvariantsHoldOnRandomPrograms) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  SplitMix64 Rng(Seed ^ 0xABCDEF);
  OptLevel L = AllOptLevels[Rng.nextBelow(5)];
  Module M = randomModule(Seed * 1337 + 11, L);

  ASSERT_TRUE(moduleIsValid(M)) << verifyModule(M).front();

  PipelineOptions Opts;
  Opts.Knobs.RspareBytes =
      static_cast<unsigned>(Rng.nextBelow(600));
  Opts.Knobs.Xlimit = 1.0 + Rng.nextDouble();
  Opts.UseProfiledFrequencies = Rng.nextBool(0.3);

  PipelineResult R = optimizeModule(M, Opts);
  ASSERT_TRUE(R.ok()) << "seed " << Seed << " level " << optLevelName(L)
                      << ": " << R.Error;

  // 1. Differential correctness (optimizeModule already cross-checks the
  // exit codes; assert it explicitly anyway).
  EXPECT_EQ(R.MeasuredBase.Stats.ExitCode, R.MeasuredOpt.Stats.ExitCode);

  // 2. Budgets.
  EXPECT_LE(R.PredictedOpt.RamBytes, Opts.Knobs.RspareBytes);
  EXPECT_LE(R.PredictedOpt.Cycles,
            Opts.Knobs.Xlimit * R.PredictedBase.Cycles + 1e-6);

  // 3. The transformed module is well-formed.
  EXPECT_TRUE(moduleIsValid(R.Optimized))
      << verifyModule(R.Optimized).front();

  // 4. The solver never regresses the model estimate.
  EXPECT_LE(R.PredictedOpt.EnergyMilliJoules,
            R.PredictedBase.EnergyMilliJoules + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzPipeline, ::testing::Range(0, 40));
