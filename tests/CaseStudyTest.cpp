//===- tests/CaseStudyTest.cpp - Section 7 equations --------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "casestudy/PeriodicApp.h"

#include <gtest/gtest.h>

using namespace ramloc;

TEST(CaseStudy, Equation10) {
  // E = E0 + PS * (T - TA).
  ActiveProfile Base{16.9, 1.18};
  EXPECT_NEAR(periodEnergy(Base, 3.5, 10.0), 16.9 + 3.5 * 8.82, 1e-9);
  // T == TA: no sleep at all.
  EXPECT_NEAR(periodEnergy(Base, 3.5, 1.18), 16.9, 1e-12);
}

TEST(CaseStudy, FactorsFromProfiles) {
  ActiveProfile Base{16.9, 1.18};
  ActiveProfile Opt{16.9 * 0.825, 1.18 * 1.33};
  OptimizationFactors K = factorsFrom(Base, Opt);
  EXPECT_NEAR(K.Ke, 0.825, 1e-12);
  EXPECT_NEAR(K.Kt, 1.33, 1e-12);
}

TEST(CaseStudy, Equation12PaperNumbers) {
  // The paper's fdct case: E0 = 16.9 mJ, TA = 1.18 s, ke = 0.825,
  // kt = 1.33, PS = 3.5 mW -> Es = 4.32 mJ.
  ActiveProfile Base{16.9, 1.18};
  OptimizationFactors K{0.825, 1.33};
  double Es = energySaved(Base, K, 3.5);
  EXPECT_NEAR(Es, 4.32, 0.03);
}

TEST(CaseStudy, SavingPositiveEvenWithoutEnergyReduction) {
  // The unintuitive headline: ke = 1 (no active-energy saving) but
  // kt > 1 still saves energy overall.
  ActiveProfile Base{10.0, 1.0};
  OptimizationFactors K{1.0, 1.4};
  EXPECT_GT(energySaved(Base, K, 3.5), 0.0);
  // And the saved amount equals PS*TA*(kt-1).
  EXPECT_NEAR(energySaved(Base, K, 3.5), 3.5 * 1.0 * 0.4, 1e-12);
}

TEST(CaseStudy, SavedMatchesPeriodDifference) {
  // Es from Eq. 12 equals E - E' from Eq. 10/11 (for any T, since T
  // cancels).
  ActiveProfile Base{12.0, 0.8};
  OptimizationFactors K{0.85, 1.25};
  ActiveProfile Opt{Base.EnergyMilliJoules * K.Ke, Base.Seconds * K.Kt};
  for (double T : {2.0, 5.0, 20.0}) {
    double Direct = periodEnergy(Base, 3.5, T) - periodEnergy(Opt, 3.5, T);
    EXPECT_NEAR(Direct, energySaved(Base, K, 3.5), 1e-9) << "T=" << T;
  }
}

TEST(CaseStudy, EnergyRatioApproachesOneForLongPeriods) {
  // Figure 9's shape: largest relative saving at T = TA, asymptotically
  // no saving as sleep dominates.
  ActiveProfile Base{16.9, 1.18};
  ActiveProfile Opt{13.9, 1.57};
  double RShort = energyRatio(Base, Opt, 3.5, 2.0);
  double RMid = energyRatio(Base, Opt, 3.5, 8.0);
  double RLong = energyRatio(Base, Opt, 3.5, 50.0);
  EXPECT_LT(RShort, RMid);
  EXPECT_LT(RMid, RLong);
  EXPECT_LT(RLong, 1.0);
  EXPECT_NEAR(RLong, 1.0, 0.05);
  // The paper reports up to ~25% reduction at small periods.
  EXPECT_LT(RShort, 0.85);
}

TEST(CaseStudy, BatteryLifeExtension) {
  ActiveProfile Base{16.9, 1.18};
  ActiveProfile Opt{13.9, 1.57};
  // Battery life extension at a short period lands in the paper's "up to
  // 32%" regime.
  double Ext = batteryLifeExtension(Base, Opt, 3.5, 1.6);
  EXPECT_GT(Ext, 0.15);
  EXPECT_LT(Ext, 0.45);
  // Monotonically fades with the period.
  EXPECT_GT(Ext, batteryLifeExtension(Base, Opt, 3.5, 10.0));
}

TEST(CaseStudy, Figure8Illustration) {
  Figure8Illustration Fig;
  EXPECT_NEAR(Fig.unoptimizedMicroJoules(), 60.0, 1e-12);
  EXPECT_NEAR(Fig.optimizedMicroJoules(), 55.0, 1e-12);
  // Same active energy on both sides (the diagram's premise).
  EXPECT_NEAR(Fig.UnoptActiveMw * Fig.UnoptActiveMs,
              Fig.OptActiveMw * Fig.OptActiveMs, 1e-12);
}
