//===- tests/LpTest.cpp - simplex and branch & bound -----------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "lp/BranchBound.h"
#include "lp/Simplex.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace ramloc;

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), obj 36.
  // As minimization of the negated objective.
  LpProblem P;
  unsigned X = P.addVariable(0, 1e9, -3);
  unsigned Y = P.addVariable(0, 1e9, -5);
  P.addConstraint({{X, 1.0}}, ConstraintSense::LessEq, 4);
  P.addConstraint({{Y, 2.0}}, ConstraintSense::LessEq, 12);
  P.addConstraint({{X, 3.0}, {Y, 2.0}}, ConstraintSense::LessEq, 18);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 2.0, 1e-7);
  EXPECT_NEAR(S.Values[Y], 6.0, 1e-7);
  EXPECT_NEAR(S.Objective, -36.0, 1e-7);
}

TEST(Simplex, EqualityAndGreaterConstraints) {
  // min x + y st x + y >= 2, x - y == 0  ->  x = y = 1.
  LpProblem P;
  unsigned X = P.addVariable(0, 100, 1);
  unsigned Y = P.addVariable(0, 100, 1);
  P.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::GreaterEq, 2);
  P.addConstraint({{X, 1.0}, {Y, -1.0}}, ConstraintSense::Equal, 0);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 1.0, 1e-7);
  EXPECT_NEAR(S.Values[Y], 1.0, 1e-7);
}

TEST(Simplex, InfeasibleDetected) {
  LpProblem P;
  unsigned X = P.addVariable(0, 10, 1);
  P.addConstraint({{X, 1.0}}, ConstraintSense::GreaterEq, 20);
  EXPECT_EQ(solveLp(P).Status, LpStatus::Infeasible);
}

TEST(Simplex, ContradictoryRowsInfeasible) {
  LpProblem P;
  unsigned X = P.addVariable(0, 10, 0);
  P.addConstraint({{X, 1.0}}, ConstraintSense::GreaterEq, 5);
  P.addConstraint({{X, 1.0}}, ConstraintSense::LessEq, 3);
  EXPECT_EQ(solveLp(P).Status, LpStatus::Infeasible);
}

TEST(Simplex, UnboundedDetected) {
  LpProblem P;
  unsigned X = P.addVariable(0, std::numeric_limits<double>::infinity(),
                             -1.0);
  (void)X;
  EXPECT_EQ(solveLp(P).Status, LpStatus::Unbounded);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x st x >= -5 (shifted variable handling).
  LpProblem P;
  unsigned X = P.addVariable(-5, 5, 1);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[X], -5.0, 1e-7);
}

TEST(Simplex, FixedVariableSubstitution) {
  // x fixed at 2 by bounds participates via the RHS only.
  LpProblem P;
  unsigned X = P.addVariable(2, 2, 1);
  unsigned Y = P.addVariable(0, 10, 1);
  P.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::GreaterEq, 5);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 2.0, 1e-9);
  EXPECT_NEAR(S.Values[Y], 3.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the optimum.
  LpProblem P;
  unsigned X = P.addVariable(0, 10, -1);
  P.addConstraint({{X, 1.0}}, ConstraintSense::LessEq, 5);
  P.addConstraint({{X, 2.0}}, ConstraintSense::LessEq, 10);
  P.addConstraint({{X, 3.0}}, ConstraintSense::LessEq, 15);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 5.0, 1e-7);
}

/// Beale's classic cycling example: under naive Dantzig pricing with the
/// wrong tie-breaks, the simplex revisits the same degenerate bases
/// forever. The regression pins termination and optimality under every
/// pricing rule (each non-Bland rule falls back to Bland on a stall).
/// Optimum: x = (1/25, 0, 1, 0), objective -1/20.
TEST(Simplex, BealeCyclingTerminatesUnderEveryPricingRule) {
  auto Build = [] {
    LpProblem P;
    double Inf = std::numeric_limits<double>::infinity();
    unsigned X1 = P.addVariable(0, Inf, -0.75);
    unsigned X2 = P.addVariable(0, Inf, 150.0);
    unsigned X3 = P.addVariable(0, Inf, -0.02);
    unsigned X4 = P.addVariable(0, Inf, 6.0);
    P.addConstraint({{X1, 0.25}, {X2, -60.0}, {X3, -0.04}, {X4, 9.0}},
                    ConstraintSense::LessEq, 0);
    P.addConstraint({{X1, 0.5}, {X2, -90.0}, {X3, -0.02}, {X4, 3.0}},
                    ConstraintSense::LessEq, 0);
    P.addConstraint({{X3, 1.0}}, ConstraintSense::LessEq, 1);
    return P;
  };

  for (Pricing Rule : {Pricing::SteepestEdge, Pricing::Dantzig,
                       Pricing::PartialDantzig, Pricing::Bland}) {
    SolverConfig Opts;
    Opts.PricingRule = Rule;
    LpProblem P = Build();
    LpSolution S = solveLp(P, Opts);
    ASSERT_EQ(S.Status, LpStatus::Optimal)
        << "pricing rule " << pricingName(Rule);
    EXPECT_NEAR(S.Objective, -0.05, 1e-9);
    EXPECT_NEAR(S.Values[0], 0.04, 1e-7);
    EXPECT_NEAR(S.Values[2], 1.0, 1e-7);
    // The warm path must agree on the same degenerate-prone problem.
    WarmStart Ws;
    std::vector<double> Lo(P.numVariables()), Hi(P.numVariables());
    for (unsigned J = 0; J != P.numVariables(); ++J) {
      Lo[J] = P.Variables[J].Lower;
      Hi[J] = P.Variables[J].Upper;
    }
    LpSolution W = solveLpWarm(P, Lo, Hi, Ws, Opts);
    ASSERT_EQ(W.Status, LpStatus::Optimal);
    EXPECT_NEAR(W.Objective, -0.05, 1e-9);
  }
}

TEST(Simplex, DegenerateProblemTerminatesUnderForcedBland) {
  LpProblem P;
  unsigned X = P.addVariable(0, 10, -1);
  P.addConstraint({{X, 1.0}}, ConstraintSense::LessEq, 5);
  P.addConstraint({{X, 2.0}}, ConstraintSense::LessEq, 10);
  P.addConstraint({{X, 3.0}}, ConstraintSense::LessEq, 15);
  SolverConfig Opts;
  Opts.ForceBland = true;
  LpSolution S = solveLp(P, Opts);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 5.0, 1e-7);
}

/// The deprecated ForceBland flag is a pure alias: it maps onto
/// Pricing::Bland through effectivePricing() and overrides whatever
/// PricingRule says, so pre-enum callers keep their exact behaviour.
TEST(SolverConfig, ForceBlandAliasMapsOntoPricingEnum) {
  SolverConfig Opts;
  EXPECT_EQ(Opts.effectivePricing(), Pricing::SteepestEdge);
  Opts.ForceBland = true;
  EXPECT_EQ(Opts.effectivePricing(), Pricing::Bland);
  Opts.PricingRule = Pricing::Dantzig; // the alias still wins
  EXPECT_EQ(Opts.effectivePricing(), Pricing::Bland);

  // Round-trip every enum value through its CLI spelling.
  for (Pricing Rule : {Pricing::SteepestEdge, Pricing::Dantzig,
                       Pricing::PartialDantzig, Pricing::Bland}) {
    Pricing Parsed = Pricing::SteepestEdge;
    ASSERT_TRUE(pricingFromName(pricingName(Rule), Parsed));
    EXPECT_EQ(Parsed, Rule);
  }
  Pricing Unused = Pricing::SteepestEdge;
  EXPECT_FALSE(pricingFromName("newton", Unused));
}

TEST(Simplex, SolvedBasisIsExposed) {
  LpProblem P;
  unsigned X = P.addVariable(0, 1e9, -3);
  unsigned Y = P.addVariable(0, 1e9, -5);
  P.addConstraint({{X, 1.0}}, ConstraintSense::LessEq, 4);
  P.addConstraint({{Y, 2.0}}, ConstraintSense::LessEq, 12);
  P.addConstraint({{X, 3.0}, {Y, 2.0}}, ConstraintSense::LessEq, 18);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  // One basic column per tableau row, and with implicit bounds the
  // tableau has exactly one row per constraint — the [0, 1e9] boxes are
  // variable data, not rows (the explicit-bound-row formulation carried
  // 5 rows here).
  EXPECT_EQ(S.Basis.size(), 3u);
}

TEST(Simplex, BoundFlipReachesOptimumWithoutPivots) {
  // min -x - y st x + y <= 10, x,y in [0,1]: both variables just flip to
  // their upper bounds; the slack stays basic and no elimination runs.
  LpProblem P;
  unsigned X = P.addVariable(0, 1, -1);
  unsigned Y = P.addVariable(0, 1, -1);
  P.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::LessEq, 10);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 1.0, 1e-9);
  EXPECT_NEAR(S.Values[Y], 1.0, 1e-9);
  EXPECT_NEAR(S.Objective, -2.0, 1e-9);
  EXPECT_EQ(S.BoundFlips, 2u);
  EXPECT_EQ(S.Basis, std::vector<unsigned>{2u}); // the slack never left
}

TEST(Simplex, BoundFlipInterleavesWithPivots) {
  // min -3a - b st 2a + b <= 2, a in [0,1], b in [0,3]: a flips to its
  // upper bound (ratio 1 on the row ties its span 1; the flip wins), then
  // b enters basically to soak up the remaining slack.
  LpProblem P;
  unsigned A = P.addVariable(0, 1, -3);
  unsigned B = P.addVariable(0, 3, -1);
  P.addConstraint({{A, 2.0}, {B, 1.0}}, ConstraintSense::LessEq, 2);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[A], 1.0, 1e-9);
  EXPECT_NEAR(S.Values[B], 0.0, 1e-9);
  EXPECT_NEAR(S.Objective, -3.0, 1e-9);
  EXPECT_GE(S.BoundFlips, 1u);
}

TEST(Simplex, FreeVariableSettlesInterior) {
  // min y st y >= x - 3, y >= 1 - x, x free, y free: optimum at the
  // kink x = 2, y = -1. Both variables start nonbasic-free at 0.
  double Inf = std::numeric_limits<double>::infinity();
  LpProblem P;
  unsigned X = P.addVariable(-Inf, Inf, 0);
  unsigned Y = P.addVariable(-Inf, Inf, 1);
  P.addConstraint({{Y, 1.0}, {X, -1.0}}, ConstraintSense::GreaterEq, -3);
  P.addConstraint({{Y, 1.0}, {X, 1.0}}, ConstraintSense::GreaterEq, 1);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 2.0, 1e-7);
  EXPECT_NEAR(S.Values[Y], -1.0, 1e-7);
  EXPECT_NEAR(S.Objective, -1.0, 1e-7);
}

TEST(Simplex, FreeVariableUnboundedBelow) {
  double Inf = std::numeric_limits<double>::infinity();
  LpProblem P;
  unsigned X = P.addVariable(-Inf, Inf, 1); // min x, x free
  (void)X;
  EXPECT_EQ(solveLp(P).Status, LpStatus::Unbounded);
}

TEST(Simplex, InfeasibleBoundBoxDetected) {
  // Crossed bound overrides (branch & bound hands these to
  // solveLpWithBounds in principle) are infeasible by inspection.
  LpProblem P;
  unsigned A = P.addBinary(-1);
  unsigned B = P.addBinary(-1);
  P.addConstraint({{A, 1.0}, {B, 1.0}}, ConstraintSense::LessEq, 1);
  std::vector<double> Lo = {1, 0}, Hi = {0, 1}; // A's box is empty
  EXPECT_EQ(solveLpWithBounds(P, Lo, Hi).Status, LpStatus::Infeasible);
}

TEST(WarmLp, InfeasibleBoxPatchAndRecovery) {
  // A warm tableau patched to an empty box reports infeasible without
  // pivoting, stays re-optimizable, and recovers when the box widens.
  LpProblem P;
  unsigned A = P.addBinary(-5);
  unsigned B = P.addBinary(-3);
  P.addConstraint({{A, 2.0}, {B, 3.0}}, ConstraintSense::LessEq, 4);
  std::vector<double> Lo = {0, 0}, Hi = {1, 1};
  WarmStart Ws;
  ASSERT_EQ(solveLpWarm(P, Lo, Hi, Ws, {}).Status, LpStatus::Optimal);
  Lo[A] = 1.0;
  Hi[A] = 0.0; // empty box
  LpSolution Crossed = solveLpWarm(P, Lo, Hi, Ws, {});
  EXPECT_EQ(Crossed.Status, LpStatus::Infeasible);
  EXPECT_TRUE(Crossed.WarmStarted);
  Lo[A] = 0.0;
  Hi[A] = 1.0;
  LpSolution Back = solveLpWarm(P, Lo, Hi, Ws, {});
  ASSERT_EQ(Back.Status, LpStatus::Optimal);
  EXPECT_NEAR(Back.Objective, -7.0, 1e-9); // A = 1, B = 2/3 again
}

TEST(WarmLp, FixedVariableViaBoundsNeverEnters) {
  // Fixing a variable through the override box (lb == ub) pins it while
  // the rest re-optimizes; warm and cold agree exactly.
  LpProblem P;
  unsigned A = P.addBinary(-10);
  unsigned B = P.addBinary(-6);
  unsigned C = P.addBinary(-4);
  P.addConstraint({{A, 5.0}, {B, 4.0}, {C, 3.0}}, ConstraintSense::LessEq,
                  9);
  std::vector<double> Lo = {0, 0, 0}, Hi = {1, 1, 1};
  WarmStart Ws;
  ASSERT_EQ(solveLpWarm(P, Lo, Hi, Ws, {}).Status, LpStatus::Optimal);
  for (double V : {1.0, 0.0}) {
    Lo[B] = Hi[B] = V; // fix B at each bound in turn
    LpSolution Warm = solveLpWarm(P, Lo, Hi, Ws, {});
    LpSolution Cold = solveLpWithBounds(P, Lo, Hi);
    ASSERT_EQ(Warm.Status, LpStatus::Optimal);
    ASSERT_EQ(Cold.Status, LpStatus::Optimal);
    EXPECT_NEAR(Warm.Values[B], V, 1e-9);
    EXPECT_NEAR(Warm.Objective, Cold.Objective, 1e-9);
    Lo[B] = 0.0;
    Hi[B] = 1.0;
  }
}

TEST(WarmLp, ReoptimizesAfterBoundTightening) {
  // Binary-style knapsack relaxation: fixing a variable via its bound
  // rows must re-optimize from the retained basis (dual pivots, not a
  // fresh phase-1/2), and match the cold answer exactly.
  LpProblem P;
  unsigned A = P.addBinary(-10);
  unsigned B = P.addBinary(-6);
  unsigned C = P.addBinary(-4);
  P.addConstraint({{A, 5.0}, {B, 4.0}, {C, 3.0}}, ConstraintSense::LessEq,
                  9);
  std::vector<double> Lo = {0, 0, 0}, Hi = {1, 1, 1};

  WarmStart Ws;
  LpSolution Root = solveLpWarm(P, Lo, Hi, Ws, {});
  ASSERT_EQ(Root.Status, LpStatus::Optimal);
  EXPECT_FALSE(Root.WarmStarted);
  ASSERT_TRUE(Ws.valid());

  Hi[A] = 0.0; // branch A = 0
  LpSolution Child = solveLpWarm(P, Lo, Hi, Ws, {});
  ASSERT_EQ(Child.Status, LpStatus::Optimal);
  EXPECT_TRUE(Child.WarmStarted);
  LpSolution Cold = solveLpWithBounds(P, Lo, Hi);
  EXPECT_NEAR(Child.Objective, Cold.Objective, 1e-9);
  EXPECT_NEAR(Child.Values[A], 0.0, 1e-9);

  Hi[A] = 1.0;
  Lo[A] = 1.0; // backtrack and branch A = 1
  Child = solveLpWarm(P, Lo, Hi, Ws, {});
  ASSERT_EQ(Child.Status, LpStatus::Optimal);
  EXPECT_TRUE(Child.WarmStarted);
  Cold = solveLpWithBounds(P, Lo, Hi);
  EXPECT_NEAR(Child.Objective, Cold.Objective, 1e-9);
  EXPECT_NEAR(Child.Values[A], 1.0, 1e-9);
}

TEST(WarmLp, ReoptimizesAfterRhsPatch) {
  // The knob-axis pattern: only a constraint RHS changes between solves.
  LpProblem P;
  unsigned A = P.addBinary(-10);
  unsigned B = P.addBinary(-6);
  P.addConstraint({{A, 5.0}, {B, 4.0}}, ConstraintSense::LessEq, 9);
  std::vector<double> Lo = {0, 0}, Hi = {1, 1};

  WarmStart Ws;
  LpSolution First = solveLpWarm(P, Lo, Hi, Ws, {});
  ASSERT_EQ(First.Status, LpStatus::Optimal);
  EXPECT_NEAR(First.Objective, -16.0, 1e-9); // both fit

  P.Constraints[0].Rhs = 5.0; // tighten the budget
  LpSolution Patched = resolveLpFromBasis(P, Lo, Hi, Ws, {});
  ASSERT_EQ(Patched.Status, LpStatus::Optimal);
  EXPECT_TRUE(Patched.WarmStarted);
  LpSolution Cold = solveLp(P);
  EXPECT_NEAR(Patched.Objective, Cold.Objective, 1e-9);

  P.Constraints[0].Rhs = 9.0; // and loosen it again
  Patched = resolveLpFromBasis(P, Lo, Hi, Ws, {});
  ASSERT_EQ(Patched.Status, LpStatus::Optimal);
  EXPECT_NEAR(Patched.Objective, -16.0, 1e-9);
}

TEST(WarmLp, RefactorizationPreservesBasisAcrossWarmChain) {
  // With RefactorInterval = 1 the cadence rebuild fires after a handful
  // of pivots. The rebuild must re-eliminate the *current* basis in
  // place -- the chained solves stay warm (dual re-optimization, not a
  // cold phase-1/2 restart) and keep matching the cold answers exactly.
  LpProblem P;
  unsigned A = P.addBinary(-10);
  unsigned B = P.addBinary(-6);
  unsigned C = P.addBinary(-4);
  P.addConstraint({{A, 5.0}, {B, 4.0}, {C, 3.0}}, ConstraintSense::LessEq,
                  9);
  SolverConfig Opts;
  Opts.RefactorInterval = 1; // threshold: rows + vars + 1 = 5 pivots
  std::vector<double> Lo = {0, 0, 0}, Hi = {1, 1, 1};

  WarmStart Ws;
  ASSERT_EQ(solveLpWarm(P, Lo, Hi, Ws, Opts).Status, LpStatus::Optimal);

  bool SawRefactor = false;
  unsigned Pivots = 0;
  for (unsigned Round = 0; Round != 12; ++Round) {
    unsigned V = Round % 3;
    Lo[V] = Hi[V] = double(Round % 2); // fix one binary, alternating
    LpSolution Warm = solveLpWarm(P, Lo, Hi, Ws, Opts);
    LpSolution Cold = solveLpWithBounds(P, Lo, Hi);
    ASSERT_EQ(Warm.Status, Cold.Status) << "round " << Round;
    if (Warm.Status == LpStatus::Optimal)
      EXPECT_NEAR(Warm.Objective, Cold.Objective, 1e-9)
          << "round " << Round;
    EXPECT_TRUE(Warm.WarmStarted) << "round " << Round;
    SawRefactor |= Warm.Refactorized;
    Pivots += Warm.Iterations + Warm.DualIterations;
    Lo[V] = 0.0;
    Hi[V] = 1.0; // backtrack for the next round
  }
  // The chain pivots well past the interval, so at least one solve must
  // have gone through the in-place refactorization.
  EXPECT_TRUE(SawRefactor);
  EXPECT_GT(Pivots, 0u);
}

TEST(WarmLp, DetectsInfeasibilityAfterTightening) {
  LpProblem P;
  unsigned A = P.addBinary(0.0);
  unsigned B = P.addBinary(0.0);
  P.addConstraint({{A, 1.0}, {B, 1.0}}, ConstraintSense::GreaterEq, 2);
  std::vector<double> Lo = {0, 0}, Hi = {1, 1};
  WarmStart Ws;
  ASSERT_EQ(solveLpWarm(P, Lo, Hi, Ws, {}).Status, LpStatus::Optimal);
  Hi[A] = 0.0; // now A + B >= 2 needs A = 1
  EXPECT_EQ(solveLpWarm(P, Lo, Hi, Ws, {}).Status, LpStatus::Infeasible);
  // Loosening must recover, whichever path (dual-proven infeasibility
  // keeps the basis; a rebuild re-solves cold).
  Hi[A] = 1.0;
  EXPECT_EQ(solveLpWarm(P, Lo, Hi, Ws, {}).Status, LpStatus::Optimal);
}

TEST(WarmLp, ResolveWithoutBasisReportsIterLimit) {
  LpProblem P;
  (void)P.addBinary(-1);
  std::vector<double> Lo = {0}, Hi = {1};
  WarmStart Ws;
  EXPECT_FALSE(Ws.valid());
  EXPECT_EQ(resolveLpFromBasis(P, Lo, Hi, Ws, {}).Status,
            LpStatus::IterLimit);
}

TEST(Mip, SimpleKnapsack) {
  // max 10a + 6b + 4c st 5a + 4b + 3c <= 9 -> {a, b} wait: a+b = 16,
  // weight 9 feasible; optimal is a+b = 16.
  LpProblem P;
  unsigned A = P.addBinary(-10);
  unsigned B = P.addBinary(-6);
  unsigned C = P.addBinary(-4);
  P.addConstraint({{A, 5.0}, {B, 4.0}, {C, 3.0}}, ConstraintSense::LessEq,
                  9);
  MipSolution S = solveMip(P);
  ASSERT_TRUE(S.feasible());
  EXPECT_TRUE(S.Proven);
  EXPECT_NEAR(S.Objective, -16.0, 1e-7);
  EXPECT_NEAR(S.Values[A], 1.0, 1e-7);
  EXPECT_NEAR(S.Values[B], 1.0, 1e-7);
  EXPECT_NEAR(S.Values[C], 0.0, 1e-7);
}

TEST(Mip, IntegralityMatters) {
  // LP relaxation would take half of a big item; MIP must not.
  LpProblem P;
  unsigned A = P.addBinary(-10);
  unsigned B = P.addBinary(-4);
  P.addConstraint({{A, 10.0}, {B, 5.0}}, ConstraintSense::LessEq, 5);
  MipSolution S = solveMip(P);
  ASSERT_TRUE(S.feasible());
  EXPECT_NEAR(S.Objective, -4.0, 1e-7);
  EXPECT_NEAR(S.Values[A], 0.0, 1e-7);
}

TEST(Mip, InfeasibleMip) {
  LpProblem P;
  unsigned A = P.addBinary(-1);
  P.addConstraint({{A, 1.0}}, ConstraintSense::GreaterEq, 2);
  MipSolution S = solveMip(P);
  EXPECT_FALSE(S.feasible());
}

TEST(Mip, MixedContinuousBinary) {
  // min -x - 10b st x <= 3 + 2b, x <= 4.5, b binary.
  LpProblem P;
  unsigned X = P.addVariable(0, 4.5, -1);
  unsigned B = P.addBinary(-10);
  P.addConstraint({{X, 1.0}, {B, -2.0}}, ConstraintSense::LessEq, 3);
  MipSolution S = solveMip(P);
  ASSERT_TRUE(S.feasible());
  EXPECT_NEAR(S.Values[B], 1.0, 1e-7);
  EXPECT_NEAR(S.Values[X], 4.5, 1e-7);
}

TEST(LpProblem, FeasibilityChecker) {
  LpProblem P;
  unsigned A = P.addBinary(-1);
  unsigned B = P.addBinary(-1);
  P.addConstraint({{A, 1.0}, {B, 1.0}}, ConstraintSense::LessEq, 1);
  EXPECT_TRUE(P.isFeasible({1, 0}));
  EXPECT_TRUE(P.isFeasible({0, 1}));
  EXPECT_FALSE(P.isFeasible({1, 1}));
  EXPECT_FALSE(P.isFeasible({2, 0})); // bound violation
  EXPECT_FALSE(P.isFeasible({1}));    // wrong arity
  EXPECT_DOUBLE_EQ(P.objectiveValue({1, 0}), -1.0);
}

namespace {

/// Exhaustive 0/1 reference optimum for small problems.
double bruteForceOptimum(const LpProblem &P) {
  unsigned N = P.numVariables();
  double Best = std::numeric_limits<double>::infinity();
  for (uint64_t Mask = 0; Mask != (1ULL << N); ++Mask) {
    std::vector<double> X(N);
    for (unsigned J = 0; J != N; ++J)
      X[J] = (Mask >> J) & 1;
    if (P.isFeasible(X))
      Best = std::min(Best, P.objectiveValue(X));
  }
  return Best;
}

} // namespace

/// Property sweep: the MIP solver matches brute force on random knapsacks
/// with side constraints.
class MipRandomized : public ::testing::TestWithParam<int> {};

TEST_P(MipRandomized, MatchesBruteForce) {
  SplitMix64 Rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  unsigned N = 4 + static_cast<unsigned>(Rng.nextBelow(9)); // 4..12 vars
  LpProblem P;
  for (unsigned J = 0; J != N; ++J)
    P.addBinary(static_cast<double>(Rng.nextInRange(-20, 5)));
  unsigned NumCons = 1 + static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned C = 0; C != NumCons; ++C) {
    std::vector<std::pair<unsigned, double>> Terms;
    for (unsigned J = 0; J != N; ++J)
      if (Rng.nextBool(0.7))
        Terms.push_back({J, static_cast<double>(Rng.nextInRange(1, 9))});
    if (Terms.empty())
      Terms.push_back({0, 1.0});
    double Rhs = static_cast<double>(Rng.nextInRange(3, 25));
    P.addConstraint(std::move(Terms), ConstraintSense::LessEq, Rhs);
  }

  double Reference = bruteForceOptimum(P);
  // Every node-solve strategy x node order x branching rule is exact and
  // must agree with brute force.
  for (bool WarmNodes : {false, true})
    for (NodeOrder Order :
         {NodeOrder::Dfs, NodeOrder::BestBound, NodeOrder::Hybrid})
      for (bool PseudoCost : {false, true}) {
        SolverConfig Opts;
        Opts.WarmNodes = WarmNodes;
        Opts.Order = Order;
        Opts.PseudoCostBranching = PseudoCost;
        MipSolution S = solveMip(P, Opts);
        ASSERT_TRUE(S.feasible()); // all-zeros is always feasible here
        EXPECT_TRUE(S.Proven);
        EXPECT_NEAR(S.Objective, Reference, 1e-6)
            << (WarmNodes ? "warm" : "cold") << " nodes, "
            << nodeOrderName(Order) << " order, "
            << (PseudoCost ? "pseudo-cost" : "most-fractional");
        EXPECT_TRUE(P.isFeasible(S.Values));
        if (WarmNodes)
          EXPECT_EQ(S.coldNodeSolves() + S.warmNodeSolves(), S.NodesExplored);
        else
          EXPECT_EQ(S.coldNodeSolves(), S.NodesExplored);
      }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MipRandomized, ::testing::Range(0, 25));

TEST(Mip, WarmStartChainsAcrossRhsPatches) {
  // The knob-axis shape: one problem, the budget row's RHS swept; each
  // solve after the first re-optimizes the previous basis and seeds its
  // incumbent from the previous optimum.
  LpProblem P = [] {
    LpProblem Q;
    for (int J = 0; J != 8; ++J)
      Q.addBinary(-(5.0 + J));
    std::vector<std::pair<unsigned, double>> Terms;
    for (unsigned J = 0; J != 8; ++J)
      Terms.push_back({J, double(2 + J % 4)});
    Q.addConstraint(std::move(Terms), ConstraintSense::LessEq, 10);
    return Q;
  }();

  MipWarmStart Warm;
  bool First = true;
  for (double Budget : {10.0, 6.0, 14.0, 3.0, 10.0}) {
    P.Constraints[0].Rhs = Budget;
    MipSolution Cold = solveMip(P, [] {
      SolverConfig O;
      O.WarmNodes = false;
      return O;
    }());
    MipSolution W = solveMip(P, {}, &Warm);
    ASSERT_EQ(Cold.feasible(), W.feasible()) << "budget " << Budget;
    EXPECT_NEAR(W.Objective, Cold.Objective, 1e-9) << "budget " << Budget;
    EXPECT_EQ(W.warmStarted(), !First);
    First = false;
  }
}

TEST(Mip, ExternallySeededIncumbentOpensTheSearch) {
  // Planting a feasible assignment in the warm state before the first
  // solve marks the solution as seeded and cannot change the answer; an
  // infeasible plant is rejected by the zero-tolerance re-check.
  LpProblem P;
  unsigned A = P.addBinary(-10);
  unsigned B = P.addBinary(-6);
  unsigned C = P.addBinary(-4);
  P.addConstraint({{A, 5.0}, {B, 4.0}, {C, 3.0}}, ConstraintSense::LessEq,
                  9);
  MipSolution Plain = solveMip(P);
  ASSERT_TRUE(Plain.feasible());
  EXPECT_FALSE(Plain.seededIncumbent());

  MipWarmStart Seeded;
  Seeded.Incumbent = {1.0, 1.0, 0.0}; // the known optimum
  MipSolution S = solveMip(P, {}, &Seeded);
  ASSERT_TRUE(S.feasible());
  EXPECT_TRUE(S.seededIncumbent());
  EXPECT_NEAR(S.Objective, Plain.Objective, 1e-9);
  EXPECT_EQ(S.Values, Plain.Values);

  MipWarmStart Bogus;
  Bogus.Incumbent = {1.0, 1.0, 1.0}; // weight 12 > 9: infeasible
  MipSolution R = solveMip(P, {}, &Bogus);
  ASSERT_TRUE(R.feasible());
  EXPECT_FALSE(R.seededIncumbent());
  EXPECT_NEAR(R.Objective, Plain.Objective, 1e-9);
}

TEST(Mip, BestBoundProvesWithoutExhaustingOpenList) {
  // A chunkier knapsack: best-bound must reach the same optimum as Dfs
  // and terminate by bound (the open list prunes wholesale once the top
  // node cannot beat the incumbent).
  LpProblem P;
  for (int J = 0; J != 12; ++J)
    P.addBinary(-(3.0 + (J * 7) % 11));
  std::vector<std::pair<unsigned, double>> Terms;
  for (unsigned J = 0; J != 12; ++J)
    Terms.push_back({J, double(2 + (J * 5) % 7)});
  P.addConstraint(std::move(Terms), ConstraintSense::LessEq, 23);

  SolverConfig Dfs;
  Dfs.Order = NodeOrder::Dfs;
  SolverConfig BB;
  BB.Order = NodeOrder::BestBound;
  MipSolution SDfs = solveMip(P, Dfs);
  MipSolution SBB = solveMip(P, BB);
  ASSERT_TRUE(SDfs.feasible());
  ASSERT_TRUE(SBB.feasible());
  EXPECT_TRUE(SBB.Proven);
  EXPECT_NEAR(SDfs.Objective, SBB.Objective, 1e-9);
}

namespace {

/// Counts the exhaustive 0/1 optima of \p P at objective \p Best. The
/// random knapsacks below have integer costs, so equality is exact.
unsigned bruteForceOptimumCount(const LpProblem &P, double Best) {
  unsigned N = P.numVariables();
  unsigned Count = 0;
  for (uint64_t Mask = 0; Mask != (1ULL << N); ++Mask) {
    std::vector<double> X(N);
    for (unsigned J = 0; J != N; ++J)
      X[J] = (Mask >> J) & 1;
    if (P.isFeasible(X) && P.objectiveValue(X) == Best)
      ++Count;
  }
  return Count;
}

} // namespace

/// Property sweep for the parallel tree search: every thread count x node
/// order is exact (matches the brute-force enumerator and the serial
/// solver's objective), and whenever the optimum is unique the canonical
/// selection rule makes the assignment bit-identical to the serial one.
/// Multiple bit-equal-cost optima are the one documented divergence.
class MipParallelRandomized : public ::testing::TestWithParam<int> {};

TEST_P(MipParallelRandomized, MatchesSerialAndBruteForce) {
  SplitMix64 Rng(static_cast<uint64_t>(GetParam()) * 104729 + 71);
  unsigned N = 5 + static_cast<unsigned>(Rng.nextBelow(8)); // 5..12 vars
  LpProblem P;
  for (unsigned J = 0; J != N; ++J)
    P.addBinary(static_cast<double>(Rng.nextInRange(-20, 5)));
  unsigned NumCons = 1 + static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned C = 0; C != NumCons; ++C) {
    std::vector<std::pair<unsigned, double>> Terms;
    for (unsigned J = 0; J != N; ++J)
      if (Rng.nextBool(0.7))
        Terms.push_back({J, static_cast<double>(Rng.nextInRange(1, 9))});
    if (Terms.empty())
      Terms.push_back({0, 1.0});
    double Rhs = static_cast<double>(Rng.nextInRange(3, 25));
    P.addConstraint(std::move(Terms), ConstraintSense::LessEq, Rhs);
  }

  double Reference = bruteForceOptimum(P);
  bool Unique = bruteForceOptimumCount(P, Reference) == 1;

  MipSolution Serial = solveMip(P);
  ASSERT_TRUE(Serial.feasible()); // all-zeros is always feasible here
  EXPECT_NEAR(Serial.Objective, Reference, 1e-6);

  for (unsigned Threads : {2u, 4u})
    for (NodeOrder Order :
         {NodeOrder::Dfs, NodeOrder::BestBound, NodeOrder::Hybrid}) {
      SolverConfig Cfg;
      Cfg.Threads = Threads;
      Cfg.Order = Order;
      MipSolution S = solveMip(P, Cfg);
      ASSERT_TRUE(S.feasible());
      EXPECT_TRUE(S.Proven);
      EXPECT_NEAR(S.Objective, Reference, 1e-6)
          << Threads << " threads, " << nodeOrderName(Order) << " order";
      EXPECT_TRUE(P.isFeasible(S.Values));
      if (Unique)
        EXPECT_EQ(S.Values, Serial.Values)
            << Threads << " threads, " << nodeOrderName(Order) << " order";
      EXPECT_EQ(S.coldNodeSolves() + S.warmNodeSolves(), S.NodesExplored)
          << Threads << " threads, " << nodeOrderName(Order) << " order";
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MipParallelRandomized,
                         ::testing::Range(0, 15));

/// Property sweep for the pricing tentpole: every pricing rule x strong
/// branching on/off x thread count is exact (same objective as the
/// brute-force enumerator), and when the optimum is unique the canonical
/// selection keeps the assignment identical to the baseline config. The
/// rules take different pivot paths through the same polytopes; none may
/// change an answer.
class MipPricingRandomized : public ::testing::TestWithParam<int> {};

TEST_P(MipPricingRandomized, AllRulesAgreeWithBruteForce) {
  SplitMix64 Rng(static_cast<uint64_t>(GetParam()) * 15485863 + 37);
  unsigned N = 5 + static_cast<unsigned>(Rng.nextBelow(8)); // 5..12 vars
  LpProblem P;
  for (unsigned J = 0; J != N; ++J)
    P.addBinary(static_cast<double>(Rng.nextInRange(-20, 5)));
  unsigned NumCons = 1 + static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned C = 0; C != NumCons; ++C) {
    std::vector<std::pair<unsigned, double>> Terms;
    for (unsigned J = 0; J != N; ++J)
      if (Rng.nextBool(0.7))
        Terms.push_back({J, static_cast<double>(Rng.nextInRange(1, 9))});
    if (Terms.empty())
      Terms.push_back({0, 1.0});
    double Rhs = static_cast<double>(Rng.nextInRange(3, 25));
    P.addConstraint(std::move(Terms), ConstraintSense::LessEq, Rhs);
  }

  double Reference = bruteForceOptimum(P);
  bool Unique = bruteForceOptimumCount(P, Reference) == 1;
  MipSolution Baseline = solveMip(P);
  ASSERT_TRUE(Baseline.feasible()); // all-zeros is always feasible here
  EXPECT_NEAR(Baseline.Objective, Reference, 1e-6);

  for (Pricing Rule : {Pricing::SteepestEdge, Pricing::Dantzig,
                       Pricing::PartialDantzig, Pricing::Bland})
    for (unsigned StrongK : {0u, 4u})
      for (unsigned Threads : {1u, 4u}) {
        SolverConfig Cfg;
        Cfg.PricingRule = Rule;
        Cfg.StrongBranchK = StrongK;
        Cfg.Threads = Threads;
        MipSolution S = solveMip(P, Cfg);
        ASSERT_TRUE(S.feasible());
        EXPECT_TRUE(S.Proven);
        EXPECT_NEAR(S.Objective, Reference, 1e-6)
            << pricingName(Rule) << " pricing, strong-branch " << StrongK
            << ", " << Threads << " threads";
        EXPECT_TRUE(P.isFeasible(S.Values));
        if (Unique)
          EXPECT_EQ(S.Values, Baseline.Values)
              << pricingName(Rule) << " pricing, strong-branch " << StrongK
              << ", " << Threads << " threads";
        if (StrongK)
          EXPECT_GE(S.Stats.StrongBranchProbes, S.Stats.StrongBranchSeeds);
        else
          EXPECT_EQ(S.Stats.StrongBranchProbes, 0u);
      }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MipPricingRandomized,
                         ::testing::Range(0, 12));
