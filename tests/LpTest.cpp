//===- tests/LpTest.cpp - simplex and branch & bound -----------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "lp/BranchBound.h"
#include "lp/Simplex.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace ramloc;

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), obj 36.
  // As minimization of the negated objective.
  LpProblem P;
  unsigned X = P.addVariable(0, 1e9, -3);
  unsigned Y = P.addVariable(0, 1e9, -5);
  P.addConstraint({{X, 1.0}}, ConstraintSense::LessEq, 4);
  P.addConstraint({{Y, 2.0}}, ConstraintSense::LessEq, 12);
  P.addConstraint({{X, 3.0}, {Y, 2.0}}, ConstraintSense::LessEq, 18);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 2.0, 1e-7);
  EXPECT_NEAR(S.Values[Y], 6.0, 1e-7);
  EXPECT_NEAR(S.Objective, -36.0, 1e-7);
}

TEST(Simplex, EqualityAndGreaterConstraints) {
  // min x + y st x + y >= 2, x - y == 0  ->  x = y = 1.
  LpProblem P;
  unsigned X = P.addVariable(0, 100, 1);
  unsigned Y = P.addVariable(0, 100, 1);
  P.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::GreaterEq, 2);
  P.addConstraint({{X, 1.0}, {Y, -1.0}}, ConstraintSense::Equal, 0);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 1.0, 1e-7);
  EXPECT_NEAR(S.Values[Y], 1.0, 1e-7);
}

TEST(Simplex, InfeasibleDetected) {
  LpProblem P;
  unsigned X = P.addVariable(0, 10, 1);
  P.addConstraint({{X, 1.0}}, ConstraintSense::GreaterEq, 20);
  EXPECT_EQ(solveLp(P).Status, LpStatus::Infeasible);
}

TEST(Simplex, ContradictoryRowsInfeasible) {
  LpProblem P;
  unsigned X = P.addVariable(0, 10, 0);
  P.addConstraint({{X, 1.0}}, ConstraintSense::GreaterEq, 5);
  P.addConstraint({{X, 1.0}}, ConstraintSense::LessEq, 3);
  EXPECT_EQ(solveLp(P).Status, LpStatus::Infeasible);
}

TEST(Simplex, UnboundedDetected) {
  LpProblem P;
  unsigned X = P.addVariable(0, std::numeric_limits<double>::infinity(),
                             -1.0);
  (void)X;
  EXPECT_EQ(solveLp(P).Status, LpStatus::Unbounded);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x st x >= -5 (shifted variable handling).
  LpProblem P;
  unsigned X = P.addVariable(-5, 5, 1);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[X], -5.0, 1e-7);
}

TEST(Simplex, FixedVariableSubstitution) {
  // x fixed at 2 by bounds participates via the RHS only.
  LpProblem P;
  unsigned X = P.addVariable(2, 2, 1);
  unsigned Y = P.addVariable(0, 10, 1);
  P.addConstraint({{X, 1.0}, {Y, 1.0}}, ConstraintSense::GreaterEq, 5);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 2.0, 1e-9);
  EXPECT_NEAR(S.Values[Y], 3.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the optimum.
  LpProblem P;
  unsigned X = P.addVariable(0, 10, -1);
  P.addConstraint({{X, 1.0}}, ConstraintSense::LessEq, 5);
  P.addConstraint({{X, 2.0}}, ConstraintSense::LessEq, 10);
  P.addConstraint({{X, 3.0}}, ConstraintSense::LessEq, 15);
  LpSolution S = solveLp(P);
  ASSERT_EQ(S.Status, LpStatus::Optimal);
  EXPECT_NEAR(S.Values[X], 5.0, 1e-7);
}

TEST(Mip, SimpleKnapsack) {
  // max 10a + 6b + 4c st 5a + 4b + 3c <= 9 -> {a, b} wait: a+b = 16,
  // weight 9 feasible; optimal is a+b = 16.
  LpProblem P;
  unsigned A = P.addBinary(-10);
  unsigned B = P.addBinary(-6);
  unsigned C = P.addBinary(-4);
  P.addConstraint({{A, 5.0}, {B, 4.0}, {C, 3.0}}, ConstraintSense::LessEq,
                  9);
  MipSolution S = solveMip(P);
  ASSERT_TRUE(S.feasible());
  EXPECT_TRUE(S.Proven);
  EXPECT_NEAR(S.Objective, -16.0, 1e-7);
  EXPECT_NEAR(S.Values[A], 1.0, 1e-7);
  EXPECT_NEAR(S.Values[B], 1.0, 1e-7);
  EXPECT_NEAR(S.Values[C], 0.0, 1e-7);
}

TEST(Mip, IntegralityMatters) {
  // LP relaxation would take half of a big item; MIP must not.
  LpProblem P;
  unsigned A = P.addBinary(-10);
  unsigned B = P.addBinary(-4);
  P.addConstraint({{A, 10.0}, {B, 5.0}}, ConstraintSense::LessEq, 5);
  MipSolution S = solveMip(P);
  ASSERT_TRUE(S.feasible());
  EXPECT_NEAR(S.Objective, -4.0, 1e-7);
  EXPECT_NEAR(S.Values[A], 0.0, 1e-7);
}

TEST(Mip, InfeasibleMip) {
  LpProblem P;
  unsigned A = P.addBinary(-1);
  P.addConstraint({{A, 1.0}}, ConstraintSense::GreaterEq, 2);
  MipSolution S = solveMip(P);
  EXPECT_FALSE(S.feasible());
}

TEST(Mip, MixedContinuousBinary) {
  // min -x - 10b st x <= 3 + 2b, x <= 4.5, b binary.
  LpProblem P;
  unsigned X = P.addVariable(0, 4.5, -1);
  unsigned B = P.addBinary(-10);
  P.addConstraint({{X, 1.0}, {B, -2.0}}, ConstraintSense::LessEq, 3);
  MipSolution S = solveMip(P);
  ASSERT_TRUE(S.feasible());
  EXPECT_NEAR(S.Values[B], 1.0, 1e-7);
  EXPECT_NEAR(S.Values[X], 4.5, 1e-7);
}

TEST(LpProblem, FeasibilityChecker) {
  LpProblem P;
  unsigned A = P.addBinary(-1);
  unsigned B = P.addBinary(-1);
  P.addConstraint({{A, 1.0}, {B, 1.0}}, ConstraintSense::LessEq, 1);
  EXPECT_TRUE(P.isFeasible({1, 0}));
  EXPECT_TRUE(P.isFeasible({0, 1}));
  EXPECT_FALSE(P.isFeasible({1, 1}));
  EXPECT_FALSE(P.isFeasible({2, 0})); // bound violation
  EXPECT_FALSE(P.isFeasible({1}));    // wrong arity
  EXPECT_DOUBLE_EQ(P.objectiveValue({1, 0}), -1.0);
}

namespace {

/// Exhaustive 0/1 reference optimum for small problems.
double bruteForceOptimum(const LpProblem &P) {
  unsigned N = P.numVariables();
  double Best = std::numeric_limits<double>::infinity();
  for (uint64_t Mask = 0; Mask != (1ULL << N); ++Mask) {
    std::vector<double> X(N);
    for (unsigned J = 0; J != N; ++J)
      X[J] = (Mask >> J) & 1;
    if (P.isFeasible(X))
      Best = std::min(Best, P.objectiveValue(X));
  }
  return Best;
}

} // namespace

/// Property sweep: the MIP solver matches brute force on random knapsacks
/// with side constraints.
class MipRandomized : public ::testing::TestWithParam<int> {};

TEST_P(MipRandomized, MatchesBruteForce) {
  SplitMix64 Rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  unsigned N = 4 + static_cast<unsigned>(Rng.nextBelow(9)); // 4..12 vars
  LpProblem P;
  for (unsigned J = 0; J != N; ++J)
    P.addBinary(static_cast<double>(Rng.nextInRange(-20, 5)));
  unsigned NumCons = 1 + static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned C = 0; C != NumCons; ++C) {
    std::vector<std::pair<unsigned, double>> Terms;
    for (unsigned J = 0; J != N; ++J)
      if (Rng.nextBool(0.7))
        Terms.push_back({J, static_cast<double>(Rng.nextInRange(1, 9))});
    if (Terms.empty())
      Terms.push_back({0, 1.0});
    double Rhs = static_cast<double>(Rng.nextInRange(3, 25));
    P.addConstraint(std::move(Terms), ConstraintSense::LessEq, Rhs);
  }

  double Reference = bruteForceOptimum(P);
  MipSolution S = solveMip(P);
  ASSERT_TRUE(S.feasible()); // all-zeros is always feasible here
  EXPECT_TRUE(S.Proven);
  EXPECT_NEAR(S.Objective, Reference, 1e-6);
  EXPECT_TRUE(P.isFeasible(S.Values));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MipRandomized, ::testing::Range(0, 25));
