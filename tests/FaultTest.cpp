//===- tests/FaultTest.cpp - fault injection and graceful degradation --------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The robustness contract end to end: the deterministic fault injector
/// itself, retry-with-backoff around the cache store's I/O, torn-tail
/// recovery of the progress journal and incumbent store, cooperative
/// solver limits that degrade to truthfully-labelled best-effort
/// answers, and campaign-level behaviour under injected job aborts.
///
//===----------------------------------------------------------------------===//

#include "campaign/CacheStore.h"
#include "campaign/Campaign.h"
#include "campaign/Report.h"
#include "lp/BranchBound.h"
#include "support/FaultInjector.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>

using namespace ramloc;

namespace {

/// A fresh, empty directory under the test temp root.
std::string freshDir(const std::string &Name) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / "ramloc-fault" / Name;
  std::filesystem::remove_all(Dir);
  return Dir.string();
}

std::string slurp(const std::string &Path) {
  std::string Out;
  EXPECT_TRUE(readTextFile(Path, Out));
  return Out;
}

/// A hand-built successful result: enough fields for the report dialect
/// to round-trip without running a pipeline.
JobResult makeResult(unsigned Rspare) {
  JobResult R;
  R.Spec.Benchmark = "crc32";
  R.Spec.RspareBytes = Rspare;
  R.Spec.Kind = JobKind::ModelOnly;
  R.PredictedBaseEnergyMilliJoules = 2.0;
  R.PredictedOptEnergyMilliJoules = 1.0 + Rspare * 1e-6;
  R.PredictedBaseCycles = 1000;
  R.PredictedOptCycles = 900;
  R.RamBytes = Rspare / 2;
  R.MovedBlocks = 3;
  return R;
}

/// Uninstalls whatever injector a test left behind, so suites stay
/// independent even when an assertion fails mid-test.
struct FaultTestGuard : ::testing::Test {
  ~FaultTestGuard() override { FaultInjector::uninstall(); }
};

/// Replicates the injector's decision function (documented in
/// FaultInjector.h): fire call N of \p Site iff
/// SplitMix64(seed ^ fnv1a64(site) + N) < rate.
bool wouldFire(const std::string &Site, uint64_t Seed, uint64_t Call,
               double Rate) {
  SplitMix64 Rng((Seed ^ fnv1a64(Site)) + Call);
  return Rng.nextDouble() < Rate;
}

} // namespace

//===----------------------------------------------------------------------===//
// The injector itself
//===----------------------------------------------------------------------===//

TEST(FaultInjector, OffByDefaultAndFree) {
  FaultInjector::uninstall();
  EXPECT_EQ(FaultInjector::current(), nullptr);
  EXPECT_FALSE(FaultInjector::shouldFail("cache.append.eio"));
  EXPECT_FALSE(FaultInjector::shouldFail("anything.at.all"));
}

TEST_F(FaultTestGuard, RateOneAlwaysFiresRateZeroNever) {
  FaultInjector F;
  F.arm("always", 1.0);
  F.arm("never", 0.0);
  F.install();
  for (int I = 0; I != 50; ++I) {
    EXPECT_TRUE(FaultInjector::shouldFail("always"));
    EXPECT_FALSE(FaultInjector::shouldFail("never"));
    // Unarmed sites are consulted but never fire.
    EXPECT_FALSE(FaultInjector::shouldFail("unarmed"));
  }
  EXPECT_EQ(F.firedCount("always"), 50u);
  EXPECT_EQ(F.callCount("always"), 50u);
  EXPECT_EQ(F.firedCount("never"), 0u);
  EXPECT_EQ(F.callCount("never"), 50u);
}

TEST_F(FaultTestGuard, DecisionIsAPureFunctionOfSiteSeedAndCallIndex) {
  // Two injectors armed identically must produce the same fire sequence,
  // and it must match the documented decision function — that is what
  // makes a failing fault run replayable from its spec alone.
  std::vector<bool> First;
  for (int Round = 0; Round != 2; ++Round) {
    FaultInjector F;
    F.arm("flaky", 0.5, 1234);
    F.install();
    std::vector<bool> Fires;
    for (uint64_t I = 0; I != 200; ++I) {
      bool Fired = FaultInjector::shouldFail("flaky");
      EXPECT_EQ(Fired, wouldFire("flaky", 1234, I, 0.5));
      Fires.push_back(Fired);
    }
    FaultInjector::uninstall();
    if (Round == 0)
      First = Fires;
    else
      EXPECT_EQ(First, Fires);
  }
  // A 0.5 rate over 200 calls fires somewhere strictly between the
  // extremes — the sequence is random-looking even though deterministic.
  size_t Fired = static_cast<size_t>(std::count(First.begin(), First.end(), true));
  EXPECT_GT(Fired, 50u);
  EXPECT_LT(Fired, 150u);
}

TEST_F(FaultTestGuard, SitesAreIndependent) {
  // Interleaving calls to one site must not shift another's sequence:
  // each site keeps its own counter and seed base.
  FaultInjector F;
  F.arm("a", 0.5, 7);
  F.arm("b", 0.5, 7);
  F.install();
  for (uint64_t I = 0; I != 100; ++I) {
    EXPECT_EQ(FaultInjector::shouldFail("a"), wouldFire("a", 7, I, 0.5));
    if (I % 3 == 0) // uneven interleaving on purpose
      EXPECT_EQ(FaultInjector::shouldFail("b"),
                wouldFire("b", 7, I / 3, 0.5));
  }
}

TEST(FaultInjector, ArmSpecParsesAndRejects) {
  FaultInjector F;
  std::string Error;
  EXPECT_TRUE(F.armSpec("cache.append.eio:0.5", Error)) << Error;
  EXPECT_TRUE(F.armSpec("job.abort:1:42", Error)) << Error;
  EXPECT_EQ(F.armedSites().size(), 2u);

  EXPECT_FALSE(F.armSpec("", Error));
  EXPECT_FALSE(F.armSpec("noseparator", Error));
  EXPECT_FALSE(F.armSpec("site:", Error));
  EXPECT_FALSE(F.armSpec(":0.5", Error));
  EXPECT_FALSE(F.armSpec("site:notanumber", Error));
  EXPECT_FALSE(F.armSpec("site:1.5", Error)); // rate out of range
  EXPECT_FALSE(F.armSpec("site:-0.1", Error));
  EXPECT_FALSE(F.armSpec("site:0.5:notaseed", Error));
  EXPECT_EQ(F.armedSites().size(), 2u); // rejects armed nothing
}

TEST_F(FaultTestGuard, DestructorUninstallsItself) {
  {
    FaultInjector F;
    F.arm("x", 1.0);
    F.install();
    EXPECT_TRUE(FaultInjector::shouldFail("x"));
  }
  EXPECT_EQ(FaultInjector::current(), nullptr);
  EXPECT_FALSE(FaultInjector::shouldFail("x"));
}

//===----------------------------------------------------------------------===//
// Retry-with-backoff around cache store I/O
//===----------------------------------------------------------------------===//

TEST_F(FaultTestGuard, AppendRetryRecoversFromOneShortWrite) {
  // Pick a seed whose decision sequence for the short-write site is
  // fire-then-clear: the first append attempt tears, the retry lands.
  const char *Site = "cache.append.short";
  uint64_t Seed = 0;
  while (!(wouldFire(Site, Seed, 0, 0.5) && !wouldFire(Site, Seed, 1, 0.5) &&
           !wouldFire(Site, Seed, 2, 0.5)))
    ++Seed;

  std::string Dir = freshDir("retry-short");
  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  Store.cache().insert(makeResult(256).Spec.cacheKey(), makeResult(256));
  std::string Setup;
  ASSERT_TRUE(Store.save(&Setup)) << Setup; // fresh files rewrite, not append
  Store.cache().insert(makeResult(512).Spec.cacheKey(), makeResult(512));

  uint64_t RetriesBefore = globalMetrics().counterValue("cachestore.retries");
  FaultInjector F;
  F.arm(Site, 0.5, Seed);
  F.install();
  std::string Error;
  EXPECT_TRUE(Store.save(&Error)) << Error;
  FaultInjector::uninstall();
  EXPECT_EQ(F.firedCount(Site), 1u);
  EXPECT_GE(globalMetrics().counterValue("cachestore.retries"),
            RetriesBefore + 1);

  // The torn first attempt plus the retried line must load back as
  // exactly two valid entries — the retry prepends a newline so the
  // fragment becomes one corrupt (skipped) line, never a fused record.
  CacheStore Reload;
  ASSERT_TRUE(Reload.open(Dir));
  EXPECT_EQ(Reload.loadedEntries(), 2u);
}

TEST_F(FaultTestGuard, PersistentIoFailureIsReportedNotFatal) {
  std::string Dir = freshDir("retry-exhausted");
  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  Store.cache().insert(makeResult(256).Spec.cacheKey(), makeResult(256));
  std::string Setup;
  ASSERT_TRUE(Store.save(&Setup)) << Setup; // fresh files rewrite, not append
  Store.cache().insert(makeResult(512).Spec.cacheKey(), makeResult(512));

  uint64_t RetriesBefore = globalMetrics().counterValue("cachestore.retries");
  FaultInjector F;
  F.arm("cache.append.eio", 1.0);
  F.install();
  std::string Error;
  EXPECT_FALSE(Store.save(&Error));
  EXPECT_FALSE(Error.empty());
  FaultInjector::uninstall();
  // Three attempts, two of them retries.
  EXPECT_GE(globalMetrics().counterValue("cachestore.retries"),
            RetriesBefore + 2);

  // The injector gone, the same save succeeds and the store is whole.
  EXPECT_TRUE(Store.save(&Error)) << Error;
  CacheStore Reload;
  ASSERT_TRUE(Reload.open(Dir));
  EXPECT_EQ(Reload.loadedEntries(), 2u);
}

TEST_F(FaultTestGuard, InjectedRenameFailureLeavesOldFileIntact) {
  std::string Dir = freshDir("rename-fault");
  {
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    Store.cache().insert(makeResult(256).Spec.cacheKey(), makeResult(256));
    std::string Error;
    ASSERT_TRUE(Store.save(&Error)) << Error;
  }
  std::string Before = slurp((std::filesystem::path(Dir) / "results.jsonl").string());

  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  FaultInjector F;
  F.arm("cache.rename", 1.0);
  F.install();
  std::string Error;
  EXPECT_FALSE(Store.compact(&Error));
  FaultInjector::uninstall();

  // Atomic replace: a failed rename must leave the original bytes.
  EXPECT_EQ(slurp((std::filesystem::path(Dir) / "results.jsonl").string()),
            Before);
}

//===----------------------------------------------------------------------===//
// Progress journal: round-trip, torn tails, config pinning
//===----------------------------------------------------------------------===//

TEST(Journal, RoundTripsFailedAndDegradedEntries) {
  std::string Dir = freshDir("journal-roundtrip");
  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  std::string Error;
  ASSERT_TRUE(Store.beginJournal("limits:t0:n0:p0", /*Resume=*/false, &Error))
      << Error;

  JobResult Ok = makeResult(256);
  JobResult Degraded = makeResult(512);
  Degraded.SolveOutcome = SolveStatus::FeasibleLimit;
  JobResult Failed = makeResult(1024);
  Failed.Error = "simulated failure";
  ASSERT_TRUE(Store.appendJournal(Ok, &Error)) << Error;
  ASSERT_TRUE(Store.appendJournal(Degraded, &Error)) << Error;
  ASSERT_TRUE(Store.appendJournal(Failed, &Error)) << Error;

  // Unlike results.jsonl, the journal's contract is "reproduce the
  // interrupted run's report": failures and degraded answers replay too.
  CacheStore Resumed;
  ASSERT_TRUE(Resumed.open(Dir));
  ASSERT_TRUE(Resumed.beginJournal("limits:t0:n0:p0", /*Resume=*/true, &Error))
      << Error;
  ASSERT_EQ(Resumed.journalEntries().size(), 3u);
  EXPECT_EQ(Resumed.journalSkipped(), 0u);
  EXPECT_EQ(Resumed.journalEntries()[0].Spec.cacheKey(), Ok.Spec.cacheKey());
  EXPECT_EQ(Resumed.journalEntries()[1].SolveOutcome,
            SolveStatus::FeasibleLimit);
  EXPECT_FALSE(Resumed.journalEntries()[2].ok());
  EXPECT_EQ(Resumed.journalEntries()[2].Error, "simulated failure");
}

TEST(Journal, TornTailIsDroppedAndNeverPoisonsLaterAppends) {
  std::string Dir = freshDir("journal-torn");
  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  std::string Error;
  ASSERT_TRUE(Store.beginJournal("cfg", false, &Error)) << Error;
  ASSERT_TRUE(Store.appendJournal(makeResult(256), &Error)) << Error;
  ASSERT_TRUE(Store.appendJournal(makeResult(512), &Error)) << Error;

  // Kill mid-append: chop the final line in half, newline included.
  std::string Doc = slurp(Store.journalPath());
  std::ofstream(Store.journalPath(), std::ios::binary)
      << Doc.substr(0, Doc.size() - Doc.size() / 4);

  // Resume drops exactly the torn tail, keeps the complete prefix, and
  // terminates the fragment so the next append starts a fresh line.
  CacheStore Resumed;
  ASSERT_TRUE(Resumed.open(Dir));
  ASSERT_TRUE(Resumed.beginJournal("cfg", true, &Error)) << Error;
  EXPECT_EQ(Resumed.journalEntries().size(), 1u);
  EXPECT_EQ(Resumed.journalSkipped(), 1u);
  ASSERT_TRUE(Resumed.appendJournal(makeResult(512), &Error)) << Error;

  CacheStore Again;
  ASSERT_TRUE(Again.open(Dir));
  ASSERT_TRUE(Again.beginJournal("cfg", true, &Error)) << Error;
  EXPECT_EQ(Again.journalEntries().size(), 2u);
  EXPECT_EQ(Again.journalSkipped(), 1u); // the fragment, now one bad line
}

TEST(Journal, ConfigTokenMismatchDiscardsTheJournal) {
  // A journal written under different solver limits describes different
  // results; resuming it would mislabel best-effort answers as this
  // run's. The header pins the config and a mismatch replays nothing.
  std::string Dir = freshDir("journal-config");
  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  std::string Error;
  ASSERT_TRUE(Store.beginJournal("limits:t5:n0:p0", false, &Error)) << Error;
  ASSERT_TRUE(Store.appendJournal(makeResult(256), &Error)) << Error;

  CacheStore Resumed;
  ASSERT_TRUE(Resumed.open(Dir));
  ASSERT_TRUE(Resumed.beginJournal("limits:t0:n0:p0", true, &Error)) << Error;
  EXPECT_TRUE(Resumed.journalEntries().empty());

  // The mismatched resume rewrote a fresh header under its own token:
  // a follow-up resume under that token finds an empty, valid journal.
  CacheStore Third;
  ASSERT_TRUE(Third.open(Dir));
  ASSERT_TRUE(Third.beginJournal("limits:t0:n0:p0", true, &Error)) << Error;
  EXPECT_TRUE(Third.journalEntries().empty());
  EXPECT_EQ(Third.journalSkipped(), 0u);
}

TEST(Journal, ClearRemovesTheFile) {
  std::string Dir = freshDir("journal-clear");
  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  std::string Error;
  ASSERT_TRUE(Store.beginJournal("cfg", false, &Error)) << Error;
  ASSERT_TRUE(std::filesystem::exists(Store.journalPath()));
  std::string Path = Store.journalPath();
  Store.clearJournal();
  EXPECT_FALSE(std::filesystem::exists(Path));
}

TEST(Incumbents, TruncatedTailIsSkippedAndRecomputed) {
  // The incumbent store shares the torn-tail discipline: a killed writer
  // costs the final line, never the file.
  std::string Dir = freshDir("inc-torn");
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.Kind = JobKind::ModelOnly;
  {
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    CampaignOptions Opts;
    Opts.Cache = &Store.cache();
    Opts.Incumbents = &Store.incumbents();
    runCampaign(Grid, Opts);
    std::string Error;
    ASSERT_TRUE(Store.save(&Error)) << Error;
  }
  std::string IncPath = (std::filesystem::path(Dir) / "incumbents.jsonl").string();
  std::string Doc = slurp(IncPath);
  ASSERT_GT(Doc.size(), 20u);
  std::ofstream(IncPath, std::ios::binary) << Doc.substr(0, Doc.size() - 10);

  CacheStore Reload;
  ASSERT_TRUE(Reload.open(Dir)); // no abort, no poisoned state
  EXPECT_EQ(Reload.loadedIncumbents(), 0u);
  EXPECT_EQ(Reload.skippedIncumbentLines(), 1u);

  // The next campaign recomputes and re-offers; save appends past the
  // torn fragment — it must NOT rewrite, a rewrite would discard lines
  // other writers appended since we opened. The fragment stays behind
  // as one quarantined line until a compaction removes it. (No result
  // cache on purpose: a served hit would skip the solve and with it the
  // incumbent offer we are testing for.)
  CampaignOptions Opts;
  Opts.Incumbents = &Reload.incumbents();
  runCampaign(Grid, Opts);
  std::string Error;
  ASSERT_TRUE(Reload.save(&Error)) << Error;
  CacheStore Healed;
  ASSERT_TRUE(Healed.open(Dir));
  EXPECT_EQ(Healed.loadedIncumbents(), 1u);
  EXPECT_EQ(Healed.skippedIncumbentLines(), 1u); // the torn fragment

  // Compaction is the repair path: afterwards the store is pristine.
  ASSERT_TRUE(Healed.compact(&Error)) << Error;
  CacheStore Clean;
  ASSERT_TRUE(Clean.open(Dir));
  EXPECT_EQ(Clean.loadedIncumbents(), 1u);
  EXPECT_EQ(Clean.skippedIncumbentLines(), 0u);
}

//===----------------------------------------------------------------------===//
// Cooperative solver limits: best-effort answers, truthful labels
//===----------------------------------------------------------------------===//

namespace {

/// Exhaustive 0/1 reference optimum for small problems.
double bruteForceOptimum(const LpProblem &P) {
  unsigned N = P.numVariables();
  double Best = std::numeric_limits<double>::infinity();
  for (uint64_t Mask = 0; Mask != (1ULL << N); ++Mask) {
    std::vector<double> X(N);
    for (unsigned J = 0; J != N; ++J)
      X[J] = (Mask >> J) & 1;
    if (P.isFeasible(X))
      Best = std::min(Best, P.objectiveValue(X));
  }
  return Best;
}

LpProblem randomKnapsack(uint64_t Seed) {
  SplitMix64 Rng(Seed * 6151 + 29);
  unsigned N = 6 + static_cast<unsigned>(Rng.nextBelow(7)); // 6..12 vars
  LpProblem P;
  for (unsigned J = 0; J != N; ++J)
    P.addBinary(static_cast<double>(Rng.nextInRange(-20, 5)));
  unsigned NumCons = 1 + static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned C = 0; C != NumCons; ++C) {
    std::vector<std::pair<unsigned, double>> Terms;
    for (unsigned J = 0; J != N; ++J)
      if (Rng.nextBool(0.7))
        Terms.push_back({J, static_cast<double>(Rng.nextInRange(1, 9))});
    if (Terms.empty())
      Terms.push_back({0, 1.0});
    P.addConstraint(std::move(Terms), ConstraintSense::LessEq,
                    static_cast<double>(Rng.nextInRange(3, 25)));
  }
  return P;
}

} // namespace

/// Property sweep: under any node/pivot budget the solver returns its
/// best incumbent, the objective never beats the true optimum, and the
/// Outcome label is truthful — Optimal only with a completed proof.
class LimitedMip : public ::testing::TestWithParam<int> {};

TEST_P(LimitedMip, BestEffortNeverMislabelled) {
  LpProblem P = randomKnapsack(static_cast<uint64_t>(GetParam()));
  double Reference = bruteForceOptimum(P);

  SolverConfig Unlimited;
  MipSolution Full = solveMip(P, Unlimited);
  ASSERT_TRUE(Full.feasible()); // all-zeros is feasible by construction
  EXPECT_TRUE(Full.Proven);
  EXPECT_EQ(Full.Outcome, SolveStatus::Optimal);
  EXPECT_NEAR(Full.Objective, Reference, 1e-6);

  SplitMix64 Rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  for (unsigned Threads : {1u, 2u})
    for (int Budget = 0; Budget != 3; ++Budget) {
      SolverConfig Cfg;
      Cfg.Threads = Threads;
      Cfg.NodeLimit = 1 + Rng.nextBelow(4);
      if (Budget == 1)
        Cfg.PivotLimit = 1 + Rng.nextBelow(20);
      if (Budget == 2)
        Cfg.NodeLimit = 0, Cfg.PivotLimit = 1; // pivot budget alone
      MipSolution S = solveMip(P, Cfg);
      switch (S.Outcome) {
      case SolveStatus::Optimal:
        // A completed proof under a budget is still a proof.
        EXPECT_TRUE(S.Proven);
        EXPECT_NEAR(S.Objective, Reference, 1e-6);
        break;
      case SolveStatus::FeasibleLimit:
        // Best effort: feasible, and never better than the optimum.
        ASSERT_TRUE(S.feasible());
        EXPECT_FALSE(S.Proven);
        EXPECT_TRUE(P.isFeasible(S.Values));
        EXPECT_GE(S.Objective, Reference - 1e-6);
        break;
      case SolveStatus::Aborted:
        // No incumbent found before the budget ran out.
        EXPECT_FALSE(S.feasible());
        break;
      case SolveStatus::InfeasibleProven:
        ADD_FAILURE() << "feasible problem proven infeasible";
        break;
      }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LimitedMip, ::testing::Range(0, 15));

TEST(Limits, InfeasibleIsProvenEvenUnderBudgets) {
  LpProblem P;
  unsigned A = P.addBinary(-1);
  P.addConstraint({{A, 1.0}}, ConstraintSense::GreaterEq, 2);
  SolverConfig Cfg;
  Cfg.NodeLimit = 1;
  MipSolution S = solveMip(P, Cfg);
  EXPECT_FALSE(S.feasible());
  EXPECT_EQ(S.Outcome, SolveStatus::InfeasibleProven);
}

TEST(Limits, GenerousDeadlineStaysOptimal) {
  // A wall-clock budget that is not hit must not perturb the result or
  // its label (the deadline is checked, never acted on).
  LpProblem P = randomKnapsack(3);
  SolverConfig Cfg;
  Cfg.TimeLimitMs = 60 * 1000;
  MipSolution S = solveMip(P, Cfg);
  EXPECT_EQ(S.Outcome, SolveStatus::Optimal);
  EXPECT_NEAR(S.Objective, bruteForceOptimum(P), 1e-6);
}

TEST(Limits, StatusNamesRoundTrip) {
  for (SolveStatus S :
       {SolveStatus::Optimal, SolveStatus::FeasibleLimit,
        SolveStatus::InfeasibleProven, SolveStatus::Aborted}) {
    SolveStatus Back;
    ASSERT_TRUE(solveStatusFromName(solveStatusName(S), Back));
    EXPECT_EQ(Back, S);
  }
  SolveStatus Out;
  EXPECT_FALSE(solveStatusFromName("unknown", Out));
}

TEST(Limits, DegradedResultIsLabelledInReportsAndKeptOutOfTheCache) {
  JobResult R = makeResult(256);
  R.SolveOutcome = SolveStatus::FeasibleLimit;

  // The report dialect round-trips the label...
  JsonWriter W(/*Pretty=*/false);
  writeJobResult(W, R);
  EXPECT_NE(W.str().find("\"solve_status\":\"feasible-limit\""),
            std::string::npos);
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(W.str(), V, &Error)) << Error;
  JobResult Back;
  ASSERT_TRUE(parseJobResult(V, Back, &Error)) << Error;
  EXPECT_EQ(Back.SolveOutcome, SolveStatus::FeasibleLimit);

  // ...an optimal result serializes without it (today's exact bytes)...
  JsonWriter W2(/*Pretty=*/false);
  writeJobResult(W2, makeResult(256));
  EXPECT_EQ(W2.str().find("solve_status"), std::string::npos);

  // ...and the persistent cache refuses to serve it: a later unlimited
  // run must recompute the true optimum.
  std::string Dir = freshDir("degraded-cache");
  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  Store.cache().insert(R.Spec.cacheKey(), R);
  ASSERT_TRUE(Store.save(&Error)) << Error;
  CacheStore Reload;
  ASSERT_TRUE(Reload.open(Dir));
  EXPECT_EQ(Reload.loadedEntries(), 0u);
}

//===----------------------------------------------------------------------===//
// Campaign-level faults
//===----------------------------------------------------------------------===//

TEST_F(FaultTestGuard, InjectedJobAbortsFailCleanlyAndAreJournaled) {
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.RsparePoints = {256, 512};
  Grid.Kind = JobKind::ModelOnly;

  FaultInjector F;
  F.arm("job.abort", 1.0);
  F.install();
  CampaignOptions Opts;
  std::vector<JobResult> Journaled;
  Opts.Journal = [&](const JobResult &R) { Journaled.push_back(R); };
  CampaignResult CR = runCampaign(Grid, Opts);
  FaultInjector::uninstall();

  EXPECT_EQ(CR.Summary.Failed, 2u);
  EXPECT_EQ(CR.Summary.Succeeded, 0u);
  ASSERT_EQ(Journaled.size(), 2u);
  for (const JobResult &R : CR.Results) {
    EXPECT_FALSE(R.ok());
    EXPECT_NE(R.Error.find("job.abort"), std::string::npos);
  }
}

TEST_F(FaultTestGuard, ForcedColdRebuildIsResultNeutral) {
  // solver.degrade discards usable warm state, forcing cold rebuilds;
  // warm and cold solves are both exact, so the report must not move.
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.RsparePoints = {128, 256, 512};
  Grid.Kind = JobKind::ModelOnly;

  CampaignResult Clean = runCampaign(Grid, CampaignOptions{});

  FaultInjector F;
  F.arm("solver.degrade", 1.0);
  F.install();
  CampaignResult Faulted = runCampaign(Grid, CampaignOptions{});
  FaultInjector::uninstall();

  EXPECT_EQ(campaignToJson(Clean), campaignToJson(Faulted));
}
