//===- tests/SimProfileTest.cpp - execute/recost equivalence -----------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// The acceptance bar for the simulate-once/cost-many split: RunStats
// derived by recosting a shared ExecutionProfile must equal direct
// simulation on EVERY counter, for every registry device (wait-stated
// parts included), across the whole BEEBS suite — plus round-trip checks
// for the predecoded dispatch table and the profile serialization.
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"
#include "core/Pipeline.h"
#include "power/DeviceRegistry.h"
#include "sim/ExecutionProfile.h"
#include "sim/Predecode.h"
#include "sim/ProfileCache.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace ramloc;

namespace {

Image linkBeebs(const std::string &Name, OptLevel Level = OptLevel::O1,
                unsigned Repeat = 2) {
  Module M = buildBeebs(Name, Level, Repeat);
  LinkResult LR = linkModule(M, {});
  EXPECT_TRUE(LR.ok()) << Name;
  return LR.Img;
}

/// Every RunStats counter, compared field by field so a divergence names
/// the counter that broke.
void expectStatsEqual(const RunStats &A, const RunStats &B,
                      const std::string &Context) {
  EXPECT_EQ(A.Cycles, B.Cycles) << Context;
  EXPECT_EQ(A.Instructions, B.Instructions) << Context;
  for (unsigned F = 0; F != 2; ++F)
    for (unsigned C = 0; C != 7; ++C)
      EXPECT_EQ(A.ClassCycles[F][C], B.ClassCycles[F][C])
          << Context << " ClassCycles[" << F << "][" << C << "]";
  for (unsigned F = 0; F != 2; ++F)
    for (unsigned D = 0; D != 2; ++D)
      EXPECT_EQ(A.LoadCycles[F][D], B.LoadCycles[F][D])
          << Context << " LoadCycles[" << F << "][" << D << "]";
  EXPECT_EQ(A.ContentionStalls, B.ContentionStalls) << Context;
  EXPECT_EQ(A.FlashWaitCycles, B.FlashWaitCycles) << Context;
  EXPECT_EQ(A.SleepEvents, B.SleepEvents) << Context;
  EXPECT_EQ(A.BlockCounts, B.BlockCounts) << Context;
  EXPECT_EQ(A.Samples.size(), B.Samples.size()) << Context;
  EXPECT_EQ(A.ExitCode, B.ExitCode) << Context;
  EXPECT_EQ(A.Error, B.Error) << Context;
  EXPECT_EQ(A.HitCycleLimit, B.HitCycleLimit) << Context;
}

} // namespace

TEST(ExecutionProfile, RecostMatchesDirectSimulationAcrossSuiteAndDevices) {
  for (const BeebsInfo &Info : beebsSuite()) {
    Image Img = linkBeebs(Info.Name);

    // Collect the profile under the reference device...
    ExecutionProfile Profile;
    SimOptions RefSim;
    RunStats RefStats = runImageProfiled(Img, RefSim, Profile);
    ASSERT_TRUE(RefStats.ok()) << Info.Name;
    ASSERT_TRUE(Profile.Valid) << Info.Name;

    // ...and recost it for every registry device, wait-stated parts
    // included: bit-for-bit equality with direct simulation.
    for (const DeviceInfo &D : deviceRegistry()) {
      SimOptions Sim;
      Sim.Timing = D.Timing;
      RunStats Direct = runImage(Img, Sim);
      RunStats Recost;
      ASSERT_TRUE(recostProfile(Img, Profile, Sim, Recost))
          << Info.Name << " on " << D.Name;
      expectStatsEqual(Direct, Recost,
                       std::string(Info.Name) + " on " + D.Name);
    }
  }
}

TEST(ExecutionProfile, ProfileIsDeviceIndependent) {
  // The whole premise: which instructions execute does not depend on the
  // timing model, so a profile collected on a wait-stated part equals
  // one collected on the reference part.
  Image Img = linkBeebs("crc32");
  ExecutionProfile RefProfile, WaitedProfile;
  SimOptions RefSim;
  SimOptions WaitedSim;
  WaitedSim.Timing = findDevice("stm32f103-72mhz")->Timing;
  ASSERT_EQ(WaitedSim.Timing.FlashWaitStates, 2u);

  RunStats RefStats = runImageProfiled(Img, RefSim, RefProfile);
  RunStats WaitedStats = runImageProfiled(Img, WaitedSim, WaitedProfile);
  ASSERT_TRUE(RefStats.ok());
  ASSERT_TRUE(WaitedStats.ok());
  EXPECT_GT(WaitedStats.Cycles, RefStats.Cycles);
  EXPECT_EQ(RefProfile, WaitedProfile);
}

TEST(ExecutionProfile, ProfiledRunMatchesPlainRun) {
  Image Img = linkBeebs("int_matmult");
  SimOptions Sim;
  Sim.Timing = findDevice("stm32f100-2ws")->Timing;
  ExecutionProfile Profile;
  RunStats A = runImageProfiled(Img, Sim, Profile);
  RunStats B = runImage(Img, Sim);
  expectStatsEqual(A, B, "int_matmult profiled vs plain");
}

TEST(ExecutionProfile, RecostCoversOptimizedImagesWithRamCode) {
  // Optimized binaries execute from both memories and exercise the
  // contention path; the recost must track the placement exactly.
  Module M = buildBeebs("crc32", OptLevel::O1, 2);
  PipelineOptions PO;
  PO.Knobs.RspareBytes = 1024;
  PipelineResult PR = optimizeModule(M, PO);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  ASSERT_FALSE(PR.MovedBlocks.empty());
  LinkResult LR = linkModule(PR.Optimized, {});
  ASSERT_TRUE(LR.ok());

  ExecutionProfile Profile;
  SimOptions RefSim;
  (void)runImageProfiled(LR.Img, RefSim, Profile);
  ASSERT_TRUE(Profile.Valid);
  for (const DeviceInfo &D : deviceRegistry()) {
    SimOptions Sim;
    Sim.Timing = D.Timing;
    RunStats Direct = runImage(LR.Img, Sim);
    EXPECT_GT(Direct.fetchCycles(MemKind::Ram), 0u);
    RunStats Recost;
    ASSERT_TRUE(recostProfile(LR.Img, Profile, Sim, Recost)) << D.Name;
    expectStatsEqual(Direct, Recost, "optimized crc32 on " + D.Name);
  }
}

TEST(ExecutionProfile, RecostRefusesTimingDependentOutput) {
  Image Img = linkBeebs("crc32");
  ExecutionProfile Profile;
  SimOptions Sim;
  (void)runImageProfiled(Img, Sim, Profile);
  ASSERT_TRUE(Profile.Valid);

  SimOptions Sampling;
  Sampling.SampleIntervalCycles = 1000;
  RunStats Out;
  EXPECT_FALSE(recostProfile(Img, Profile, Sampling, Out));
}

TEST(ExecutionProfile, RecostRefusesCycleBudgetOverflow) {
  Image Img = linkBeebs("crc32");
  ExecutionProfile Profile;
  SimOptions Sim;
  RunStats Stats = runImageProfiled(Img, Sim, Profile);
  ASSERT_TRUE(Profile.Valid);

  // A budget below the run's cost must force the full-simulation path
  // (whose abort point depends on the device), never a recost.
  SimOptions Tight;
  Tight.MaxCycles = Stats.Cycles - 1;
  RunStats Out;
  EXPECT_FALSE(recostProfile(Img, Profile, Tight, Out));
  // At exactly the run's cost the simulator completes (the limit check
  // runs before each step, and the last step lands on the budget).
  SimOptions Exact;
  Exact.MaxCycles = Stats.Cycles;
  ASSERT_TRUE(recostProfile(Img, Profile, Exact, Out));
  expectStatsEqual(runImage(Img, Exact), Out, "exact-budget recost");
}

TEST(ExecutionProfile, InvalidProfilesAreNeverRecost) {
  Image Img = linkBeebs("crc32");
  ExecutionProfile Profile;
  SimOptions Starved;
  Starved.MaxCycles = 100; // aborts mid-run
  RunStats Stats = runImageProfiled(Img, Starved, Profile);
  EXPECT_TRUE(Stats.HitCycleLimit);
  EXPECT_FALSE(Profile.Valid);
  RunStats Out;
  EXPECT_FALSE(recostProfile(Img, Profile, SimOptions{}, Out));
}

TEST(ExecutionProfile, ExecutionKeySeparatesImagesAndArguments) {
  Image A = linkBeebs("crc32");
  Image B = linkBeebs("sha");
  EXPECT_NE(A.fingerprint(), B.fingerprint());
  EXPECT_NE(executionKey(A), executionKey(B));
  EXPECT_NE(executionKey(A, 1), executionKey(A, 2));
  EXPECT_EQ(executionKey(A), executionKey(A));

  Image A2 = linkBeebs("crc32");
  EXPECT_EQ(A.fingerprint(), A2.fingerprint());
}

TEST(ExecutionProfile, SerializationRoundTripsExactly) {
  Image Img = linkBeebs("2dfir");
  ExecutionProfile Profile;
  SimOptions Sim;
  (void)runImageProfiled(Img, Sim, Profile);
  ASSERT_TRUE(Profile.Valid);
  std::string Key = executionKey(Img);

  JsonWriter W(/*Pretty=*/false);
  writeExecutionProfile(W, Key, Profile);
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(W.str(), V, &Error)) << Error;
  ExecutionProfile Back;
  std::string BackKey;
  ASSERT_TRUE(parseExecutionProfile(V, BackKey, Back));
  EXPECT_EQ(BackKey, Key);
  EXPECT_EQ(Back, Profile);

  // And the parsed profile recosts identically to the original.
  for (const DeviceInfo &D : deviceRegistry()) {
    SimOptions DevSim;
    DevSim.Timing = D.Timing;
    RunStats FromOriginal, FromParsed;
    ASSERT_TRUE(recostProfile(Img, Profile, DevSim, FromOriginal));
    ASSERT_TRUE(recostProfile(Img, Back, DevSim, FromParsed));
    expectStatsEqual(FromOriginal, FromParsed, "parsed profile " + D.Name);
  }
}

TEST(Predecode, RoundTripsAgainstTheRawInstructionStream) {
  // Predecode an optimized image (code in both memories) under a
  // wait-stated timing model and check every pre-resolved field against
  // a fresh computation from the placed instruction.
  Module M = buildBeebs("crc32", OptLevel::O1, 2);
  PipelineOptions PO;
  PO.Knobs.RspareBytes = 1024;
  PipelineResult PR = optimizeModule(M, PO);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  LinkResult LR = linkModule(PR.Optimized, {});
  ASSERT_TRUE(LR.ok());
  const Image &Img = LR.Img;

  TimingModel T = findDevice("stm32f100-2ws")->Timing;
  ASSERT_GT(T.FlashWaitStates, 0u);
  DecodedImage Dec = predecodeImage(Img, T);
  ASSERT_EQ(Dec.size(), Img.Instrs.size());

  bool SawRamFetch = false;
  for (size_t I = 0; I != Dec.size(); ++I) {
    const DecodedInstr &D = Dec[I];
    const PlacedInstr &P = Img.Instrs[I];
    ASSERT_EQ(D.P, &P);
    MemKind Fetch = Img.Map.regionOf(P.Addr);
    unsigned Wait =
        Fetch == MemKind::Flash ? T.FlashWaitStates : 0;
    SawRamFetch |= Fetch == MemKind::Ram;
    EXPECT_EQ(D.Fetch, static_cast<uint8_t>(Fetch));
    EXPECT_EQ(D.Class, static_cast<uint8_t>(opClass(P.I.Kind)));
    EXPECT_EQ(D.Kind, P.I.Kind);
    EXPECT_EQ(D.CondCode, P.I.CondCode);
    EXPECT_EQ(D.NextAddr, P.Addr + P.Size);
    EXPECT_EQ(D.TargetAddr, P.TargetAddr);
    EXPECT_EQ(D.FuncIdx, P.FuncIdx);
    EXPECT_EQ(D.BlockIdx, P.BlockIdx);
    EXPECT_EQ(D.IsBlockHead, P.IsBlockHead);
    EXPECT_EQ(D.CheckCond, P.I.CondCode != Cond::AL &&
                               P.I.Kind != OpKind::BCond);
    EXPECT_EQ(D.CyclesNotTaken, T.cycles(P.I, false) + Wait);
    EXPECT_EQ(D.CyclesTaken, T.cycles(P.I, true) + Wait);
    EXPECT_EQ(D.CyclesSkipped, T.SkippedCycles + Wait);
    EXPECT_EQ(D.FlashWait, Wait);
    EXPECT_EQ(D.ContentionStall,
              Fetch == MemKind::Ram ? T.RamContentionStall : 0u);
  }
  EXPECT_TRUE(SawRamFetch); // the image really exercised both regions
}

TEST(ProfileCache, ComputeOnceUnderConcurrency) {
  ProfileCache Cache;
  std::atomic<unsigned> Owners{0};
  std::atomic<unsigned> Recipients{0};
  auto Payload = std::make_shared<ExecutionProfile>();
  Payload->Valid = true;

  std::vector<std::thread> Threads;
  for (unsigned I = 0; I != 8; ++I)
    Threads.emplace_back([&] {
      bool Owner = false;
      std::shared_ptr<const ExecutionProfile> P =
          Cache.acquire("key", Owner);
      if (Owner) {
        ++Owners;
        Cache.publish("key", Payload);
      } else {
        EXPECT_EQ(P, Payload);
        ++Recipients;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Owners.load(), 1u);
  EXPECT_EQ(Recipients.load(), 7u);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(ProfileCache, MeasureModuleSharesOneSimulationAcrossDevices) {
  Module M = buildBeebs("crc32", OptLevel::O1, 2);
  ProfileCache Profiles;
  for (const DeviceInfo &D : deviceRegistry()) {
    SimOptions Sim;
    Sim.Timing = D.Timing;
    Measurement Got = measureModule(M, D.Model, {}, Sim, &Profiles);
    ASSERT_TRUE(Got.ok()) << D.Name;
    Measurement Direct = measureModule(M, D.Model, {}, Sim);
    expectStatsEqual(Direct.Stats, Got.Stats, D.Name);
    // Energy integration over identical integers is bit-identical.
    EXPECT_EQ(Direct.Energy.MilliJoules, Got.Energy.MilliJoules)
        << D.Name;
    EXPECT_EQ(Direct.Energy.Seconds, Got.Energy.Seconds) << D.Name;
    EXPECT_EQ(Direct.Energy.AvgMilliWatts, Got.Energy.AvgMilliWatts)
        << D.Name;
  }
  ProfileCache::Counters C = Profiles.counters();
  EXPECT_EQ(C.FullSims, 1u);
  EXPECT_EQ(C.Recosts, deviceRegistry().size() - 1);
}

TEST(ProfileCache, SamplingRunsBypassTheCache) {
  Module M = buildBeebs("crc32", OptLevel::O1, 2);
  ProfileCache Profiles;
  SimOptions Sim;
  Sim.SampleIntervalCycles = 500;
  Measurement Got = measureModule(M, PowerModel::stm32f100(), {}, Sim,
                                  &Profiles);
  ASSERT_TRUE(Got.ok());
  EXPECT_FALSE(Got.Stats.Samples.empty());
  ProfileCache::Counters C = Profiles.counters();
  EXPECT_EQ(C.FullSims, 0u);
  EXPECT_EQ(C.Recosts, 0u);
  EXPECT_EQ(Profiles.size(), 0u);
}
