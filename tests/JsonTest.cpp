//===- tests/JsonTest.cpp - JSON writer and parser ----------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace ramloc;

TEST(Json, EscapingSpecialCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(jsonEscape(std::string("nul\x01" "byte")), "nul\\u0001byte");
  // UTF-8 passes through untouched.
  EXPECT_EQ(jsonEscape("\xC3\xA9"), "\xC3\xA9");
}

TEST(Json, EscapedStringsRoundTrip) {
  const std::string Original = "q\"b\\c\tn\nr\rf\fb\b\x01end";
  JsonWriter W(false);
  W.value(Original);
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(W.str(), V, &Error)) << Error;
  ASSERT_EQ(V.kind(), JsonValue::Kind::String);
  EXPECT_EQ(V.string(), Original);
}

TEST(Json, NumbersRoundTripExactly) {
  for (double Value :
       {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 1e-17, 6.02214076e23, -2.5e-308,
        3.141592653589793, 9007199254740992.0, -123456.789}) {
    std::string Text = jsonNumber(Value);
    JsonValue V;
    ASSERT_TRUE(JsonValue::parse(Text, V)) << Text;
    ASSERT_EQ(V.kind(), JsonValue::Kind::Number);
    EXPECT_EQ(V.number(), Value) << Text;
  }
}

TEST(Json, IntegralDoublesPrintWithoutFraction) {
  EXPECT_EQ(jsonNumber(512.0), "512");
  EXPECT_EQ(jsonNumber(-3.0), "-3");
  EXPECT_EQ(jsonNumber(0.0), "0");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(jsonNumber(std::nan("")), "null");
}

TEST(Json, NestedObjectsAndArrays) {
  JsonWriter W;
  W.beginObject();
  W.field("name", "campaign");
  W.key("axes").beginArray();
  W.beginObject().field("rspare", 512u).endObject();
  W.beginObject().field("xlimit", 1.5).endObject();
  W.endArray();
  W.key("empty_obj").beginObject().endObject();
  W.key("empty_arr").beginArray().endArray();
  W.field("ok", true);
  W.key("missing").null();
  W.endObject();

  JsonValue V;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(W.str(), V, &Error)) << Error;
  ASSERT_EQ(V.kind(), JsonValue::Kind::Object);
  EXPECT_EQ(V.find("name")->string(), "campaign");
  const JsonValue *Axes = V.find("axes");
  ASSERT_NE(Axes, nullptr);
  ASSERT_EQ(Axes->items().size(), 2u);
  EXPECT_EQ(Axes->items()[0].find("rspare")->number(), 512.0);
  EXPECT_EQ(Axes->items()[1].find("xlimit")->number(), 1.5);
  EXPECT_TRUE(V.find("empty_obj")->members().empty());
  EXPECT_TRUE(V.find("empty_arr")->items().empty());
  EXPECT_TRUE(V.find("ok")->boolean());
  EXPECT_TRUE(V.find("missing")->isNull());
  EXPECT_EQ(V.find("no_such_key"), nullptr);
}

TEST(Json, CompactAndPrettyParseTheSame) {
  auto build = [](bool Pretty) {
    JsonWriter W(Pretty);
    W.beginObject();
    W.field("a", 1);
    W.key("b").beginArray().value(2).value(3).endArray();
    W.endObject();
    return W.str();
  };
  std::string Compact = build(false);
  std::string Pretty = build(true);
  EXPECT_EQ(Compact, "{\"a\":1,\"b\":[2,3]}");
  EXPECT_NE(Compact, Pretty);
  JsonValue VC, VP;
  ASSERT_TRUE(JsonValue::parse(Compact, VC));
  ASSERT_TRUE(JsonValue::parse(Pretty, VP));
  EXPECT_EQ(VP.find("a")->number(), VC.find("a")->number());
  EXPECT_EQ(VP.find("b")->items().size(), VC.find("b")->items().size());
}

TEST(Json, WriterIsDeterministic) {
  auto build = [] {
    JsonWriter W;
    W.beginObject();
    W.field("x", 1.0 / 3.0);
    W.endObject();
    return W.str();
  };
  EXPECT_EQ(build(), build());
}

TEST(Json, ParserRejectsMalformedInput) {
  JsonValue V;
  std::string Error;
  EXPECT_FALSE(JsonValue::parse("", V, &Error));
  EXPECT_FALSE(JsonValue::parse("{", V, &Error));
  EXPECT_FALSE(JsonValue::parse("{\"a\":}", V, &Error));
  EXPECT_FALSE(JsonValue::parse("[1,]", V, &Error));
  EXPECT_FALSE(JsonValue::parse("\"unterminated", V, &Error));
  EXPECT_FALSE(JsonValue::parse("1.2.3", V, &Error));
  EXPECT_FALSE(JsonValue::parse("tru", V, &Error));
  EXPECT_FALSE(JsonValue::parse("{} trailing", V, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(Json, ParserHandlesUnicodeEscapes) {
  JsonValue V;
  ASSERT_TRUE(JsonValue::parse("\"\\u0041\\u00e9\\u20ac\"", V));
  EXPECT_EQ(V.string(), "A\xC3\xA9\xE2\x82\xAC"); // A, e-acute, euro
}

TEST(Json, ParseAcceptsWhitespaceEverywhere) {
  JsonValue V;
  ASSERT_TRUE(
      JsonValue::parse("  { \"a\" : [ 1 , 2 ] , \"b\" : null }  ", V));
  EXPECT_EQ(V.find("a")->items().size(), 2u);
}
