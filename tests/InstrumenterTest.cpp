//===- tests/InstrumenterTest.cpp - Figure 4 transformation -----------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "core/Instrumenter.h"
#include "core/Pipeline.h"
#include "mir/Verifier.h"

#include <gtest/gtest.h>

using namespace ramloc;
using namespace ramloc::build;

namespace {

BasicBlock makeBlock(const std::string &Label, std::vector<Instr> Instrs) {
  BasicBlock BB(Label);
  BB.Instrs = std::move(Instrs);
  return BB;
}

Module figure2Module() {
  Module M;
  M.EntryFunction = "fn";
  Function F("fn");
  F.Blocks.push_back(makeBlock("init", {movImm(R1, 1), movImm(R0, 0)}));
  F.Blocks.push_back(makeBlock("loop", {mul(R1, R1, R2),
                                        addImm(R0, R0, 1),
                                        cmpImm(R0, 64),
                                        bCond(Cond::NE, "loop")}));
  F.Blocks.push_back(
      makeBlock("if", {cmpImm(R1, 255), bCond(Cond::LE, "return")}));
  F.Blocks.push_back(makeBlock("iftrue", {movImm(R0, 255), b("return")}));
  F.Blocks.push_back(makeBlock("return", {movReg(R0, R1), bx(LR)}));
  M.Functions.push_back(F);
  return M;
}

ModelParams paramsFor(const Module &M) {
  return extractParams(M, estimateModuleFrequency(M),
                       PowerModel::stm32f100());
}

} // namespace

TEST(Instrumenter, NoOpWhenNothingMoves) {
  Module M = figure2Module();
  ModelParams MP = paramsFor(M);
  InstrumenterStats Stats;
  Module Out = applyPlacement(M, MP, Assignment(5, false), &Stats);
  EXPECT_EQ(Stats.BlocksMoved, 0u);
  EXPECT_EQ(Stats.BranchesRewritten, 0u);
  for (unsigned B = 0; B != 5; ++B) {
    EXPECT_EQ(Out.Functions[0].Blocks[B].Home, MemKind::Flash);
    EXPECT_EQ(Out.Functions[0].Blocks[B].Instrs,
              M.Functions[0].Blocks[B].Instrs);
  }
}

TEST(Instrumenter, PaperExampleLoopAndIf) {
  // The paper's Figure 2 placement: loop + if in RAM.
  Module M = figure2Module();
  ModelParams MP = paramsFor(M);
  Assignment InRam(5, false);
  InRam[1] = true; // loop
  InRam[2] = true; // if
  InstrumenterStats Stats;
  Module Out = applyPlacement(M, MP, InRam, &Stats);
  EXPECT_EQ(Stats.BlocksMoved, 2u);
  EXPECT_TRUE(moduleIsValid(Out)) << verifyModule(Out).front();

  const Function &F = Out.Functions[0];
  // init (flash) falls through into loop (RAM): needs ldr pc, =loop.
  EXPECT_TRUE(F.Blocks[0].Instrs.back().isLongJump());
  EXPECT_EQ(F.Blocks[0].Instrs.back().Sym, "loop");

  // loop (RAM): back edge stays in RAM, fall-through to if stays in RAM
  // -> no rewrite; terminator still bne.
  EXPECT_EQ(F.Blocks[1].Instrs.back().Kind, OpKind::BCond);

  // if (RAM): both successors (return, iftrue) are flash -> the Figure 4
  // ite/ldr/ldr/bx sequence.
  const auto &IfInstrs = F.Blocks[2].Instrs;
  ASSERT_GE(IfInstrs.size(), 5u);
  unsigned N = IfInstrs.size();
  EXPECT_EQ(IfInstrs[N - 4].Kind, OpKind::It);
  EXPECT_EQ(IfInstrs[N - 4].CondCode, Cond::LE);
  EXPECT_EQ(IfInstrs[N - 3].Kind, OpKind::LdrLit);
  EXPECT_EQ(IfInstrs[N - 3].Sym, "return");
  EXPECT_EQ(IfInstrs[N - 3].CondCode, Cond::LE);
  EXPECT_EQ(IfInstrs[N - 2].Sym, "iftrue");
  EXPECT_EQ(IfInstrs[N - 2].CondCode, Cond::GT);
  EXPECT_EQ(IfInstrs[N - 1].Kind, OpKind::Bx);
  EXPECT_EQ(IfInstrs[N - 1].Regs[0], ScratchReg);

  // The blocks are homed correctly.
  EXPECT_EQ(F.Blocks[1].Home, MemKind::Ram);
  EXPECT_EQ(F.Blocks[2].Home, MemKind::Ram);
  EXPECT_EQ(F.Blocks[0].Home, MemKind::Flash);
}

TEST(Instrumenter, UnconditionalBranchRewrite) {
  Module M = figure2Module();
  ModelParams MP = paramsFor(M);
  Assignment InRam(5, false);
  InRam[4] = true; // return moves to RAM
  Module Out = applyPlacement(M, MP, InRam);
  // iftrue's `b return` becomes `ldr pc, =return`.
  EXPECT_TRUE(Out.Functions[0].Blocks[3].Instrs.back().isLongJump());
  // if's conditional branch targets return too: full ITE rewrite.
  EXPECT_EQ(Out.Functions[0].Blocks[2].Instrs.back().Kind, OpKind::Bx);
  EXPECT_TRUE(moduleIsValid(Out)) << verifyModule(Out).front();
}

TEST(Instrumenter, CmpBranchRewrite) {
  Module M;
  M.EntryFunction = "f";
  Function F("f");
  F.Blocks.push_back(makeBlock("a", {cbnz(R0, "far")}));
  F.Blocks.push_back(makeBlock("near", {movImm(R0, 1), bkpt()}));
  F.Blocks.push_back(makeBlock("far", {movImm(R0, 2), bkpt()}));
  M.Functions.push_back(F);
  ModelParams MP = paramsFor(M);
  Assignment InRam(3, false);
  InRam[2] = true;
  Module Out = applyPlacement(M, MP, InRam);
  const auto &A = Out.Functions[0].Blocks[0].Instrs;
  // cbnz -> cmp #0; ite ne; ldrne; ldreq; bx (Figure 4 short conditional).
  ASSERT_EQ(A.size(), 5u);
  EXPECT_EQ(A[0].Kind, OpKind::CmpImm);
  EXPECT_EQ(A[1].Kind, OpKind::It);
  EXPECT_EQ(A[1].CondCode, Cond::NE);
  EXPECT_EQ(A[2].Sym, "far");
  EXPECT_EQ(A[3].Sym, "near");
  EXPECT_EQ(A[4].Kind, OpKind::Bx);
  EXPECT_TRUE(moduleIsValid(Out)) << verifyModule(Out).front();
}

TEST(Instrumenter, CallRewrite) {
  Module M;
  M.EntryFunction = "main";
  Function Main("main");
  Main.Blocks.push_back(makeBlock("entry", {movImm(R0, 3), bl("leaf"),
                                            bl("leaf"), bkpt()}));
  M.Functions.push_back(Main);
  Function Leaf("leaf");
  Leaf.Blocks.push_back(makeBlock("entry", {addImm(R0, R0, 1), bx(LR)}));
  M.Functions.push_back(Leaf);

  ModelParams MP = paramsFor(M);
  Assignment InRam(MP.numBlocks(), false);
  InRam[MP.globalIndex(1, 0)] = true; // move the leaf
  InstrumenterStats Stats;
  Module Out = applyPlacement(M, MP, InRam, &Stats);
  EXPECT_EQ(Stats.CallsRewritten, 2u);
  const auto &E = Out.Functions[0].Blocks[0].Instrs;
  // mov, (ldr r7,=leaf; blx r7) x2, bkpt.
  ASSERT_EQ(E.size(), 6u);
  EXPECT_EQ(E[1].Kind, OpKind::LdrLit);
  EXPECT_EQ(E[1].Regs[0], ScratchReg);
  EXPECT_EQ(E[1].Sym, "leaf");
  EXPECT_EQ(E[2].Kind, OpKind::Blx);
  EXPECT_TRUE(moduleIsValid(Out)) << verifyModule(Out).front();
}

TEST(Instrumenter, TransformedModuleLinksAndRuns) {
  Module M = figure2Module();
  // Wrap in a runnable main: fn(7) with k=7 -> saturates at 255.
  Function Main("main");
  Main.Blocks.push_back(makeBlock(
      "entry", {movImm(R2, 7), push(1u << LR), bl("fn"), pop(1u << PC)}));
  // pop {pc} returns to ExitAddress -> halt with r0.
  M.Functions.push_back(Main);
  M.EntryFunction = "main";

  Measurement Base = measureModule(M, PowerModel::stm32f100());
  ASSERT_TRUE(Base.ok()) << Base.Stats.Error;

  ModelParams MP = paramsFor(M);
  // Every non-trivial subset of fn's five blocks must produce a program
  // with identical output (32 subsets, including all-in-RAM).
  for (uint32_t Mask = 0; Mask != 32; ++Mask) {
    Assignment InRam(MP.numBlocks(), false);
    for (unsigned B = 0; B != 5; ++B)
      InRam[B] = (Mask >> B) & 1;
    Module Out = applyPlacement(M, MP, InRam);
    ASSERT_TRUE(moduleIsValid(Out)) << verifyModule(Out).front();
    Measurement Opt = measureModule(Out, PowerModel::stm32f100());
    ASSERT_TRUE(Opt.ok()) << "mask " << Mask << ": " << Opt.Stats.Error;
    EXPECT_EQ(Opt.Stats.ExitCode, Base.Stats.ExitCode) << "mask " << Mask;
  }
}

TEST(Instrumenter, StatsCountRewrites) {
  Module M = figure2Module();
  ModelParams MP = paramsFor(M);
  Assignment InRam(5, false);
  InRam[1] = true;
  InstrumenterStats Stats;
  applyPlacement(M, MP, InRam, &Stats);
  // init->loop fall-through rewritten; loop's bne rewritten (fall-through
  // crosses back to flash).
  EXPECT_EQ(Stats.FallthroughsRewritten, 1u);
  EXPECT_EQ(Stats.BranchesRewritten, 1u);
  EXPECT_EQ(Stats.BlocksMoved, 1u);
}
