//===- tests/BeebsTest.cpp - workload validation -----------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"
#include "beebs/MicroBench.h"
#include "core/Pipeline.h"
#include "mir/Verifier.h"

#include <gtest/gtest.h>

using namespace ramloc;

TEST(Beebs, SuiteHasTenBenchmarks) {
  EXPECT_EQ(beebsSuite().size(), 10u);
  // The paper's Figure 5 set.
  const char *Expected[] = {"2dfir",    "blowfish",      "crc32",
                            "cubic",    "dijkstra",      "fdct",
                            "float_matmult", "int_matmult",
                            "rijndael", "sha"};
  for (unsigned I = 0; I != 10; ++I)
    EXPECT_STREQ(beebsSuite()[I].Name, Expected[I]);
}

TEST(Beebs, RepeatScalesWork) {
  Module M1 = buildBeebs("crc32", OptLevel::O1, 1);
  Module M4 = buildBeebs("crc32", OptLevel::O1, 4);
  Measurement R1 = measureModule(M1, PowerModel::stm32f100());
  Measurement R4 = measureModule(M4, PowerModel::stm32f100());
  ASSERT_TRUE(R1.ok() && R4.ok());
  EXPECT_GT(R4.Stats.Cycles, 3 * R1.Stats.Cycles);
  EXPECT_LT(R4.Stats.Cycles, 5 * R1.Stats.Cycles);
}

TEST(Beebs, RepeatChangesChecksumInputs) {
  // Different repeat counts exercise different seeds; checksums differ
  // for most benchmarks (not a strict requirement, but catches kernels
  // that ignore their seed entirely).
  Module M2 = buildBeebs("sha", OptLevel::O1, 2);
  Module M3 = buildBeebs("sha", OptLevel::O1, 3);
  Measurement R2 = measureModule(M2, PowerModel::stm32f100());
  Measurement R3 = measureModule(M3, PowerModel::stm32f100());
  ASSERT_TRUE(R2.ok() && R3.ok());
  EXPECT_NE(R2.Stats.ExitCode, R3.Stats.ExitCode);
}

TEST(Beebs, OptimizationLevelsShrinkOrSpeed) {
  // O1 must be faster than O0 for the register-pressure kernels, and Os
  // must not be larger than O0.
  for (const char *Name : {"int_matmult", "sha", "rijndael"}) {
    Module O0 = buildBeebs(Name, OptLevel::O0, 2);
    Module O1 = buildBeebs(Name, OptLevel::O1, 2);
    Measurement R0 = measureModule(O0, PowerModel::stm32f100());
    Measurement R1 = measureModule(O1, PowerModel::stm32f100());
    ASSERT_TRUE(R0.ok() && R1.ok()) << Name;
    EXPECT_LT(R1.Stats.Cycles, R0.Stats.Cycles) << Name;
    EXPECT_LE(O1.Functions[0].codeSizeBytes(),
              O0.Functions[0].codeSizeBytes())
        << Name;
  }
}

TEST(Beebs, UnrollingReducesCyclesOnMarkedKernels) {
  Module O1 = buildBeebs("int_matmult", OptLevel::O1, 2);
  Module O3 = buildBeebs("int_matmult", OptLevel::O3, 2);
  Measurement R1 = measureModule(O1, PowerModel::stm32f100());
  Measurement R3 = measureModule(O3, PowerModel::stm32f100());
  ASSERT_TRUE(R1.ok() && R3.ok());
  EXPECT_LT(R3.Stats.Cycles, R1.Stats.Cycles);
  // Unrolled code is bigger.
  EXPECT_GT(O3.Functions[0].codeSizeBytes(),
            O1.Functions[0].codeSizeBytes());
}

TEST(Beebs, SoftFloatLibraryIsNotOptimizable) {
  Module M = buildBeebs("float_matmult", OptLevel::O2, 1);
  unsigned LibraryFuncs = 0;
  for (const Function &F : M.Functions)
    if (!F.Optimizable)
      ++LibraryFuncs;
  EXPECT_EQ(LibraryFuncs, 3u); // fp_add32, fp_mul32, fp_div32
}

TEST(Beebs, SoftFloatDominatesFloatBenchmarks) {
  Module M = buildBeebs("cubic", OptLevel::O2, 1);
  Measurement R = measureModule(M, PowerModel::stm32f100());
  ASSERT_TRUE(R.ok());
  // Most executed blocks belong to the library functions.
  uint64_t LibCount = 0, AppCount = 0;
  for (unsigned F = 0; F != M.Functions.size(); ++F) {
    for (uint64_t C : R.Stats.BlockCounts[F]) {
      if (M.Functions[F].Optimizable)
        AppCount += C;
      else
        LibCount += C;
    }
  }
  EXPECT_GT(LibCount, AppCount);
}

// Checksum stability across optimisation levels: the defining
// correctness property of the level-parameterised code generator.
class BeebsChecksum : public ::testing::TestWithParam<int> {};

TEST_P(BeebsChecksum, StableAcrossLevels) {
  const BeebsInfo &Info = beebsSuite()[GetParam()];
  uint32_t Ref = 0;
  uint64_t PrevCycles = 0;
  for (OptLevel L : AllOptLevels) {
    Module M = Info.Build(L, 3);
    ASSERT_TRUE(moduleIsValid(M))
        << Info.Name << " " << optLevelName(L) << ": "
        << verifyModule(M).front();
    Measurement R = measureModule(M, PowerModel::stm32f100());
    ASSERT_TRUE(R.ok()) << Info.Name << " " << optLevelName(L) << ": "
                        << R.Stats.Error;
    EXPECT_NE(R.Stats.ExitCode, 0u)
        << Info.Name << ": degenerate zero checksum";
    if (L == OptLevel::O0) {
      Ref = R.Stats.ExitCode;
      PrevCycles = R.Stats.Cycles;
      EXPECT_GT(PrevCycles, 0u);
    } else {
      EXPECT_EQ(R.Stats.ExitCode, Ref)
          << Info.Name << " at " << optLevelName(L);
      // O0 is the slowest configuration.
      EXPECT_LE(R.Stats.Cycles, PrevCycles) << Info.Name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BeebsChecksum,
                         ::testing::Range(0, 10), [](const auto &Info) {
                           return "B" + std::string(
                                            beebsSuite()[Info.param].Name);
                         });

TEST(Micro, AllVariantsRun) {
  for (MicroKind K : AllMicroKinds) {
    for (bool InRam : {false, true}) {
      Module M = buildMicroLoop(K, InRam, 500);
      ASSERT_TRUE(moduleIsValid(M))
          << microKindName(K) << ": " << verifyModule(M).front();
      Measurement R = measureModule(M, PowerModel::stm32f100());
      ASSERT_TRUE(R.ok()) << microKindName(K) << ": " << R.Stats.Error;
      EXPECT_GT(R.Stats.Cycles, 500u * 16u);
    }
  }
}

TEST(Micro, RamPowerLowerExceptFlashLoads) {
  PowerModel PM = PowerModel::stm32f100();
  for (MicroKind K : AllMicroKinds) {
    Measurement Flash =
        measureModule(buildMicroLoop(K, false, 2000), PM);
    Measurement Ram = measureModule(buildMicroLoop(K, true, 2000), PM);
    ASSERT_TRUE(Flash.ok() && Ram.ok());
    if (K == MicroKind::LoadFlash) {
      // Figure 1's last bar: nearly as expensive as flash execution.
      EXPECT_GT(Ram.Energy.AvgMilliWatts,
                0.9 * Flash.Energy.AvgMilliWatts);
    } else {
      EXPECT_LT(Ram.Energy.AvgMilliWatts,
                0.72 * Flash.Energy.AvgMilliWatts)
          << microKindName(K);
    }
  }
}

TEST(Micro, BranchVariantChainsSixteenBlocks) {
  Module M = buildMicroLoop(MicroKind::Branch, false, 10);
  // 16 branch blocks + entry + latch + done.
  EXPECT_GE(M.Functions[0].Blocks.size(), 18u);
}
