//===- tests/SupportTest.cpp - support library tests ----------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <gtest/gtest.h>

using namespace ramloc;

TEST(Format, Basic) {
  EXPECT_EQ(formatString("x=%d", 42), "x=42");
  EXPECT_EQ(formatString("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(formatString("%s", ""), "");
}

TEST(Format, LongStringsAllocate) {
  std::string Long(1000, 'y');
  EXPECT_EQ(formatString("%s", Long.c_str()).size(), 1000u);
}

TEST(Format, Double) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(-1.0, 0), "-1");
}

TEST(Format, PercentChange) {
  EXPECT_EQ(formatPercentChange(0.9), "-10.0%");
  EXPECT_EQ(formatPercentChange(1.25), "+25.0%");
  EXPECT_EQ(formatPercentChange(1.0), "+0.0%");
}

TEST(Format, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcdef", 4), "abcdef");
}

TEST(Random, Deterministic) {
  SplitMix64 A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, DifferentSeedsDiffer) {
  SplitMix64 A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(Random, RangeBounds) {
  SplitMix64 R(7);
  for (int I = 0; I != 1000; ++I) {
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
}

TEST(Random, DoubleInUnitInterval) {
  SplitMix64 R(9);
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Random, BoolProbability) {
  SplitMix64 R(11);
  int True = 0;
  for (int I = 0; I != 10000; ++I)
    True += R.nextBool(0.25);
  EXPECT_NEAR(True / 10000.0, 0.25, 0.03);
}

TEST(Statistics, Mean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Statistics, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4, 1}), 2.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Statistics, StdDev) {
  EXPECT_DOUBLE_EQ(sampleStdDev({2, 2, 2}), 0.0);
  EXPECT_NEAR(sampleStdDev({1, 2, 3}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(sampleStdDev({5}), 0.0);
}

TEST(Statistics, PercentChange) {
  EXPECT_DOUBLE_EQ(percentChange(100, 90), -10.0);
  EXPECT_DOUBLE_EQ(percentChange(50, 75), 50.0);
}

TEST(Table, RendersAlignedColumns) {
  Table T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name    value"), std::string::npos);
  EXPECT_NE(Out.find("longer  22"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(Table, SeparatorRow) {
  Table T({"h"});
  T.addRow({"x"});
  T.addSeparator();
  T.addRow({"y"});
  std::string Out = T.render();
  // Two rules: one under the header, one mid-table.
  size_t First = Out.find("-\n");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(Out.find("-\n", First + 1), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table T({"a", "b", "c"});
  T.addRow({"only"});
  EXPECT_NO_THROW({ std::string S = T.render(); });
}
