//===- tests/TraceTest.cpp - span recorder and Chrome JSON --------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace ramloc;

TEST(Trace, NoRecorderMeansInactiveSpans) {
  ASSERT_EQ(TraceRecorder::current(), nullptr);
  TraceSpan Span("orphan", "test");
  EXPECT_FALSE(Span.active());
  Span.arg("ignored", "1"); // must be a no-op, not a crash
}

TEST(Trace, SpansNestAndSortParentFirst) {
  TraceRecorder R;
  R.install();
  {
    TraceSpan Outer("outer", "test");
    {
      TraceSpan Inner("inner", "test");
      EXPECT_TRUE(Inner.active());
    }
  }
  TraceRecorder::uninstall();

  TraceSnapshot S = R.snapshot();
  ASSERT_EQ(S.Events.size(), 2u);
  // Same start-ordering Chrome expects: the enclosing span first.
  EXPECT_STREQ(S.Events[0].Name, "outer");
  EXPECT_STREQ(S.Events[1].Name, "inner");
  // The child's window is contained in the parent's.
  EXPECT_LE(S.Events[0].StartNs, S.Events[1].StartNs);
  EXPECT_GE(S.Events[0].StartNs + S.Events[0].DurNs,
            S.Events[1].StartNs + S.Events[1].DurNs);
}

TEST(Trace, ArgsAreRecorded) {
  TraceRecorder R;
  R.install();
  {
    TraceSpan Span("solve", "solver");
    Span.arg("warm", "1").arg("nodes", "42");
  }
  TraceRecorder::uninstall();

  TraceSnapshot S = R.snapshot();
  ASSERT_EQ(S.Events.size(), 1u);
  ASSERT_EQ(S.Events[0].Args.size(), 2u);
  EXPECT_EQ(S.Events[0].Args[0].first, "warm");
  EXPECT_EQ(S.Events[0].Args[0].second, "1");
  EXPECT_EQ(S.Events[0].Args[1].first, "nodes");
  EXPECT_EQ(S.Events[0].Args[1].second, "42");
}

TEST(Trace, SpanCrossingUninstallIsDropped) {
  TraceRecorder R;
  R.install();
  {
    TraceSpan Span("doomed", "test");
    EXPECT_TRUE(Span.active());
    TraceRecorder::uninstall();
    // Span closes here: the recorder is gone, so it must drop, not record.
  }
  EXPECT_EQ(R.eventCount(), 0u);
}

TEST(Trace, ConcurrentThreadsEachGetTheirOwnLane) {
  constexpr unsigned Threads = 4, SpansPerThread = 200;
  TraceRecorder R;
  R.install();
  {
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back([&R, T] {
        R.setThreadName("lane-" + std::to_string(T));
        for (unsigned I = 0; I != SpansPerThread; ++I)
          TraceSpan Span("work", "test");
      });
    for (std::thread &T : Pool)
      T.join();
  }
  TraceRecorder::uninstall();

  EXPECT_EQ(R.eventCount(), Threads * SpansPerThread);
  TraceSnapshot S = R.snapshot();
  EXPECT_EQ(S.ThreadNames.size(), Threads);
  // Events are grouped by lane, each lane sorted by start time.
  for (size_t I = 1; I != S.Events.size(); ++I) {
    const TraceEvent &A = S.Events[I - 1], &B = S.Events[I];
    EXPECT_TRUE(A.Tid < B.Tid ||
                (A.Tid == B.Tid && A.StartNs <= B.StartNs));
  }
}

TEST(Trace, SecondRecorderDoesNotInheritStaleThreadCaches) {
  TraceRecorder First;
  First.install();
  { TraceSpan Span("one", "test"); }
  TraceRecorder::uninstall();

  TraceRecorder Second;
  Second.install();
  { TraceSpan Span("two", "test"); }
  TraceRecorder::uninstall();

  ASSERT_EQ(First.eventCount(), 1u);
  ASSERT_EQ(Second.eventCount(), 1u);
  EXPECT_STREQ(First.snapshot().Events[0].Name, "one");
  EXPECT_STREQ(Second.snapshot().Events[0].Name, "two");
}

TEST(Trace, ChromeJsonRoundTripsThroughTheParser) {
  TraceRecorder R;
  R.install();
  R.setThreadName("main");
  {
    TraceSpan Span("solve", "solver");
    Span.arg("warm", "0");
  }
  { TraceSpan Span("apply", "pipeline"); }
  TraceRecorder::uninstall();

  std::string Doc = traceToChromeJson(R.snapshot());
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(Doc, V, &Error)) << Error;

  const JsonValue *Unit = V.find("displayTimeUnit");
  ASSERT_NE(Unit, nullptr);
  EXPECT_EQ(Unit->string(), "ms");

  const JsonValue *Events = V.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->kind(), JsonValue::Kind::Array);
  // One thread_name metadata event plus the two spans.
  ASSERT_EQ(Events->items().size(), 3u);

  const JsonValue &Meta = Events->items()[0];
  EXPECT_EQ(Meta.find("ph")->string(), "M");
  EXPECT_EQ(Meta.find("name")->string(), "thread_name");
  EXPECT_EQ(Meta.find("args")->find("name")->string(), "main");

  const JsonValue &Solve = Events->items()[1];
  EXPECT_EQ(Solve.find("ph")->string(), "X");
  EXPECT_EQ(Solve.find("name")->string(), "solve");
  EXPECT_EQ(Solve.find("cat")->string(), "solver");
  EXPECT_GE(Solve.find("dur")->number(), 0.0);
  EXPECT_EQ(Solve.find("args")->find("warm")->string(), "0");

  const JsonValue &Apply = Events->items()[2];
  EXPECT_EQ(Apply.find("name")->string(), "apply");
  // ts is microseconds on the same clock: apply started after solve.
  EXPECT_GE(Apply.find("ts")->number(), Solve.find("ts")->number());
}

TEST(Trace, IdenticalSnapshotsSerializeIdentically) {
  TraceSnapshot S;
  TraceEvent E;
  E.Name = "extract";
  E.Category = "pipeline";
  E.StartNs = 1500;
  E.DurNs = 2500;
  E.Tid = 0;
  S.Events.push_back(E);
  S.ThreadNames.emplace_back(0u, "main");
  EXPECT_EQ(traceToChromeJson(S), traceToChromeJson(S));
  EXPECT_NE(traceToChromeJson(S, /*Pretty=*/true),
            traceToChromeJson(S, /*Pretty=*/false));
}
