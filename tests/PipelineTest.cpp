//===- tests/PipelineTest.cpp - end-to-end optimization ----------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"
#include "core/Pipeline.h"

#include <gtest/gtest.h>

using namespace ramloc;

namespace {

PipelineOptions fastOptions() {
  PipelineOptions PO;
  PO.Knobs.RspareBytes = 1024;
  PO.Knobs.Xlimit = 1.5;
  return PO;
}

} // namespace

TEST(Pipeline, IntMatmultImprovesEnergy) {
  Module M = buildBeebs("int_matmult", OptLevel::O2, 3);
  PipelineResult R = optimizeModule(M, fastOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.MovedBlocks.empty());
  // The headline result: measured energy drops, time rises.
  EXPECT_LT(R.MeasuredOpt.Energy.MilliJoules,
            R.MeasuredBase.Energy.MilliJoules);
  EXPECT_GE(R.MeasuredOpt.Energy.Seconds, R.MeasuredBase.Energy.Seconds);
  // Average power drops substantially (Figure 5: power always drops).
  EXPECT_LT(R.MeasuredOpt.Energy.AvgMilliWatts,
            R.MeasuredBase.Energy.AvgMilliWatts);
}

TEST(Pipeline, ChecksumPreservedAcrossSuite) {
  // A cross-module integration sweep at one level: outputs preserved.
  for (const BeebsInfo &Info : beebsSuite()) {
    Module M = Info.Build(OptLevel::O1, 2);
    PipelineResult R = optimizeModule(M, fastOptions());
    ASSERT_TRUE(R.ok()) << Info.Name << ": " << R.Error;
    EXPECT_EQ(R.MeasuredBase.Stats.ExitCode,
              R.MeasuredOpt.Stats.ExitCode)
        << Info.Name;
  }
}

TEST(Pipeline, ModelPredictionsTrackMeasurement) {
  Module M = buildBeebs("fdct", OptLevel::O2, 4);
  PipelineResult R = optimizeModule(M, fastOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  // The model is an estimate: demand directional agreement and a loose
  // magnitude match (within 35%) for the energy ratio.
  double PredictedRatio = R.PredictedOpt.EnergyMilliJoules /
                          R.PredictedBase.EnergyMilliJoules;
  double MeasuredRatio = R.MeasuredOpt.Energy.MilliJoules /
                         R.MeasuredBase.Energy.MilliJoules;
  EXPECT_LT(PredictedRatio, 1.0);
  EXPECT_LT(MeasuredRatio, 1.0);
  EXPECT_NEAR(PredictedRatio, MeasuredRatio, 0.35);
}

TEST(Pipeline, RespectsRamBudget) {
  Module M = buildBeebs("sha", OptLevel::O2, 2);
  PipelineOptions PO = fastOptions();
  PO.Knobs.RspareBytes = 64; // tiny: at most a block or two
  PipelineResult R = optimizeModule(M, PO);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_LE(R.PredictedOpt.RamBytes, 64u);
}

TEST(Pipeline, ZeroBudgetMeansNoChange) {
  Module M = buildBeebs("crc32", OptLevel::O1, 2);
  PipelineOptions PO = fastOptions();
  PO.Knobs.RspareBytes = 0;
  PipelineResult R = optimizeModule(M, PO);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.MovedBlocks.empty());
  EXPECT_EQ(R.MeasuredOpt.Stats.Cycles, R.MeasuredBase.Stats.Cycles);
}

TEST(Pipeline, ProfiledFrequenciesWork) {
  Module M = buildBeebs("dijkstra", OptLevel::O2, 2);
  PipelineOptions PO = fastOptions();
  PO.UseProfiledFrequencies = true;
  PipelineResult R = optimizeModule(M, PO);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.MeasuredBase.Stats.ExitCode, R.MeasuredOpt.Stats.ExitCode);
  EXPECT_LT(R.MeasuredOpt.Energy.MilliJoules,
            R.MeasuredBase.Energy.MilliJoules);
}

TEST(Pipeline, TightXlimitLimitsSlowdown) {
  Module M = buildBeebs("int_matmult", OptLevel::O1, 2);
  PipelineOptions PO = fastOptions();
  PO.Knobs.Xlimit = 1.05;
  PipelineResult R = optimizeModule(M, PO);
  ASSERT_TRUE(R.ok()) << R.Error;
  // The modelled slowdown respects the bound...
  EXPECT_LE(R.PredictedOpt.Cycles,
            1.05 * R.PredictedBase.Cycles + 1e-6);
  // ...and the measured slowdown stays close to it (the model and the
  // simulated hardware share the cycle tables, so agreement is tight).
  EXPECT_LE(R.MeasuredOpt.Stats.Cycles,
            1.12 * R.MeasuredBase.Stats.Cycles);
}

TEST(Pipeline, LibraryHeavyBenchmarksBarelyImprove) {
  // cubic spends its time in non-optimizable soft-float code, so the
  // optimizer finds little to move (the paper's Section 6 observation).
  Module Cubic = buildBeebs("cubic", OptLevel::O2, 2);
  PipelineResult RC = optimizeModule(Cubic, fastOptions());
  ASSERT_TRUE(RC.ok()) << RC.Error;
  double CubicSaving = 1.0 - RC.MeasuredOpt.Energy.MilliJoules /
                                 RC.MeasuredBase.Energy.MilliJoules;

  Module IM = buildBeebs("int_matmult", OptLevel::O2, 2);
  PipelineResult RI = optimizeModule(IM, fastOptions());
  ASSERT_TRUE(RI.ok()) << RI.Error;
  double MatmultSaving = 1.0 - RI.MeasuredOpt.Energy.MilliJoules /
                                   RI.MeasuredBase.Energy.MilliJoules;

  EXPECT_LT(CubicSaving, MatmultSaving);
  EXPECT_LT(CubicSaving, 0.10);
}

TEST(Pipeline, LinkerViewUnlocksLibraryCode) {
  // The paper's Section 8 future work, implemented: with full program
  // visibility the soft-float library moves too and cubic's saving jumps.
  Module M = buildBeebs("cubic", OptLevel::O2, 2);
  PipelineOptions Compiler = fastOptions();
  PipelineResult RC = optimizeModule(M, Compiler);
  ASSERT_TRUE(RC.ok()) << RC.Error;

  PipelineOptions Linker = fastOptions();
  Linker.Extract.TreatLibraryAsMovable = true;
  PipelineResult RL = optimizeModule(M, Linker);
  ASSERT_TRUE(RL.ok()) << RL.Error;

  EXPECT_EQ(RL.MeasuredBase.Stats.ExitCode,
            RL.MeasuredOpt.Stats.ExitCode);
  EXPECT_GT(RL.MovedBlocks.size(), RC.MovedBlocks.size());
  double CompilerRatio = RC.MeasuredOpt.Energy.MilliJoules /
                         RC.MeasuredBase.Energy.MilliJoules;
  double LinkerRatio = RL.MeasuredOpt.Energy.MilliJoules /
                       RL.MeasuredBase.Energy.MilliJoules;
  EXPECT_LT(LinkerRatio, CompilerRatio - 0.10);
}

TEST(Pipeline, VerifierRejectionSurfaces) {
  Module M = buildBeebs("crc32", OptLevel::O1, 2);
  M.Functions[0].Blocks[0].Instrs.push_back(
      build::b("nonexistent-label"));
  PipelineResult R = optimizeModule(M, fastOptions());
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("verifier"), std::string::npos);
}

TEST(Pipeline, StagedFlowMatchesOptimizeModule) {
  // optimizeModule is documented as exactly extract -> solve -> apply;
  // driving the stages by hand must reproduce it bit for bit (the
  // campaign engine's solve groups rely on this).
  Module M = buildBeebs("crc32", OptLevel::O1, 2);
  PipelineOptions Opts = fastOptions();

  PipelineResult Whole = optimizeModule(M, Opts);
  ASSERT_TRUE(Whole.ok());

  ExtractedModule EM = extractModule(M, Opts);
  ASSERT_TRUE(EM.ok());
  EXPECT_EQ(EM.MeasuredBase.Stats.Cycles, Whole.MeasuredBase.Stats.Cycles);
  EXPECT_EQ(EM.PredictedBase.EnergyMilliJoules,
            Whole.PredictedBase.EnergyMilliJoules);

  PlacementSolver Solver(EM.MP, Opts.Knobs);
  MipSolution Sol;
  Assignment InRam = Solver.solve(Opts.Knobs, Opts.Solver, &Sol);
  EXPECT_EQ(InRam, Whole.InRam);

  PipelineResult Staged = applyAndMeasure(M, EM, InRam, Sol, Opts);
  ASSERT_TRUE(Staged.ok());
  EXPECT_EQ(Staged.MeasuredOpt.Stats.Cycles,
            Whole.MeasuredOpt.Stats.Cycles);
  EXPECT_EQ(Staged.MeasuredOpt.Energy.MilliJoules,
            Whole.MeasuredOpt.Energy.MilliJoules);
  EXPECT_EQ(Staged.MovedBlocks, Whole.MovedBlocks);
  EXPECT_EQ(Staged.PredictedOpt.RamBytes, Whole.PredictedOpt.RamBytes);
}

TEST(Pipeline, ExtractModuleSkipsBaselineWhenNotNeeded) {
  Module M = buildBeebs("crc32", OptLevel::O1, 2);
  PipelineOptions Opts = fastOptions();
  ExtractedModule EM = extractModule(M, Opts, /*NeedBaseline=*/false);
  ASSERT_TRUE(EM.ok());
  EXPECT_EQ(EM.MeasuredBase.Stats.Cycles, 0u); // never simulated
  EXPECT_GT(EM.MP.numBlocks(), 0u);

  // Profiled frequencies force the baseline regardless.
  Opts.UseProfiledFrequencies = true;
  EM = extractModule(M, Opts, /*NeedBaseline=*/false);
  ASSERT_TRUE(EM.ok());
  EXPECT_GT(EM.MeasuredBase.Stats.Cycles, 0u);
}
