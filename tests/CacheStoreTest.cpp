//===- tests/CacheStoreTest.cpp - persistent result cache --------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "campaign/CacheStore.h"
#include "campaign/Campaign.h"
#include "campaign/Report.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

using namespace ramloc;

namespace {

/// A fresh, empty directory under the test temp root.
std::string freshDir(const std::string &Name) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / "ramloc-cache" / Name;
  std::filesystem::remove_all(Dir);
  return Dir.string();
}

std::string slurp(const std::string &Path) {
  std::string Out;
  EXPECT_TRUE(readTextFile(Path, Out));
  return Out;
}

/// Two cheap Measure jobs, the same grid throughout the file.
GridSpec tinyGrid() {
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.Levels = {OptLevel::O1};
  Grid.Repeat = 2;
  Grid.RsparePoints = {256, 512};
  return Grid;
}

} // namespace

TEST(CacheStore, SecondRunIsServedEntirelyFromDisk) {
  std::string Dir = freshDir("roundtrip");

  CacheStore First;
  ASSERT_TRUE(First.open(Dir));
  EXPECT_EQ(First.loadedEntries(), 0u);
  CampaignOptions Opts;
  Opts.Cache = &First.cache();
  CampaignResult CR1 = runCampaign(tinyGrid(), Opts);
  EXPECT_EQ(CR1.Summary.UniqueRuns, 2u);
  std::string Error;
  ASSERT_TRUE(First.save(&Error)) << Error;

  // A new process: reload from disk, run the same grid, recompute
  // nothing, and emit byte-identical reports.
  CacheStore Second;
  ASSERT_TRUE(Second.open(Dir));
  EXPECT_EQ(Second.loadedEntries(), 2u);
  EXPECT_FALSE(Second.invalidated());
  CampaignOptions Opts2;
  Opts2.Cache = &Second.cache();
  CampaignResult CR2 = runCampaign(tinyGrid(), Opts2);
  EXPECT_EQ(CR2.Summary.UniqueRuns, 0u);
  EXPECT_EQ(CR2.Summary.CacheHits, 2u);
  EXPECT_EQ(campaignToJson(CR1), campaignToJson(CR2));
  EXPECT_EQ(campaignToCsv(CR1), campaignToCsv(CR2));
}

TEST(CacheStore, ModelOnlyResultsPersistToo) {
  std::string Dir = freshDir("modelonly");
  GridSpec Grid = tinyGrid();
  Grid.Kind = JobKind::ModelOnly;

  CacheStore First;
  ASSERT_TRUE(First.open(Dir));
  CampaignOptions Opts;
  Opts.Cache = &First.cache();
  CampaignResult CR1 = runCampaign(Grid, Opts);
  ASSERT_TRUE(First.save());

  CacheStore Second;
  ASSERT_TRUE(Second.open(Dir));
  CampaignOptions Opts2;
  Opts2.Cache = &Second.cache();
  CampaignResult CR2 = runCampaign(Grid, Opts2);
  EXPECT_EQ(CR2.Summary.UniqueRuns, 0u);
  EXPECT_EQ(campaignToJson(CR1), campaignToJson(CR2));
}

TEST(CacheStore, CorruptFileFallsBackToRecompute) {
  std::string Dir = freshDir("corrupt");
  {
    CacheStore Seed;
    ASSERT_TRUE(Seed.open(Dir)); // creates the directory
  }
  // A file that is not JSON at all: the store must shrug, not fail.
  std::filesystem::path File =
      std::filesystem::path(Dir) / "results.jsonl";
  ASSERT_TRUE(writeTextFile(File.string(), "not json at all\x01\x02\n"));

  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  EXPECT_EQ(Store.loadedEntries(), 0u);

  CampaignOptions Opts;
  Opts.Cache = &Store.cache();
  CampaignResult CR = runCampaign(tinyGrid(), Opts);
  EXPECT_EQ(CR.Summary.UniqueRuns, 2u); // everything recomputed
  EXPECT_EQ(CR.Summary.Failed, 0u);
  // And save() repairs the store for the next run.
  ASSERT_TRUE(Store.save());
  CacheStore After;
  ASSERT_TRUE(After.open(Dir));
  EXPECT_EQ(After.loadedEntries(), 2u);
}

TEST(CacheStore, TruncatedTailEntryIsSkipped) {
  std::string Dir = freshDir("truncated");
  CacheStore Seed;
  ASSERT_TRUE(Seed.open(Dir));
  CampaignOptions Opts;
  Opts.Cache = &Seed.cache();
  runCampaign(tinyGrid(), Opts);
  ASSERT_TRUE(Seed.save());

  // Chop the file mid-way through its final entry, as a killed writer
  // of an append-style store would have left it.
  std::string Doc = slurp(Seed.path());
  ASSERT_EQ(Doc.back(), '\n');
  size_t LastLineStart = Doc.rfind('\n', Doc.size() - 2) + 1;
  size_t LastLineLen = Doc.size() - LastLineStart;
  ASSERT_TRUE(writeTextFile(
      Seed.path(), Doc.substr(0, LastLineStart + LastLineLen / 2)));

  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  EXPECT_EQ(Store.loadedEntries(), 1u);
  EXPECT_EQ(Store.skippedLines(), 1u);

  // The missing entry recomputes; the surviving one is served.
  CampaignOptions Opts2;
  Opts2.Cache = &Store.cache();
  CampaignResult CR = runCampaign(tinyGrid(), Opts2);
  EXPECT_EQ(CR.Summary.UniqueRuns, 1u);
  EXPECT_EQ(CR.Summary.CacheHits, 1u);
  EXPECT_EQ(CR.Summary.Failed, 0u);
}

TEST(CacheStore, OutOfRangeNumbersAreSkippedNotFatal) {
  // A parseable line with an unrepresentable integer field must be
  // skipped like any other corruption — not undefined behaviour in the
  // double-to-integer cast (the sanitizer CI job would abort).
  std::string Dir = freshDir("outofrange");
  CacheStore Seed;
  ASSERT_TRUE(Seed.open(Dir));
  CampaignOptions Opts;
  Opts.Cache = &Seed.cache();
  runCampaign(tinyGrid(), Opts);
  ASSERT_TRUE(Seed.save());

  std::string Doc = slurp(Seed.path());
  size_t Pos = Doc.find("\"rspare_bytes\":256");
  ASSERT_NE(Pos, std::string::npos);
  Doc.replace(Pos, 18, "\"rspare_bytes\":-25");
  size_t Cycles = Doc.find("\"cycles\":");
  ASSERT_NE(Cycles, std::string::npos);
  ASSERT_TRUE(writeTextFile(Seed.path(), Doc));

  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  EXPECT_EQ(Store.loadedEntries(), 1u);
  EXPECT_EQ(Store.skippedLines(), 1u);
}

TEST(CacheStore, FingerprintChangeInvalidatesTheStore) {
  std::string Dir = freshDir("fingerprint");
  CacheStore Seed;
  ASSERT_TRUE(Seed.open(Dir));
  CampaignOptions Opts;
  Opts.Cache = &Seed.cache();
  runCampaign(tinyGrid(), Opts);
  ASSERT_TRUE(Seed.save());

  // Simulate a power-model / device-table version bump: same schema,
  // different fingerprint. Every entry must be discarded.
  std::string Doc = slurp(Seed.path());
  size_t Newline = Doc.find('\n');
  ASSERT_NE(Newline, std::string::npos);
  std::string Tampered =
      "{\"schema\":\"ramloc-cache-v1\","
      "\"fingerprint\":\"0000000000000000\"}" +
      Doc.substr(Newline);
  ASSERT_TRUE(writeTextFile(Seed.path(), Tampered));

  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  EXPECT_TRUE(Store.invalidated());
  EXPECT_EQ(Store.loadedEntries(), 0u);

  // An unknown store schema is equally fatal to the old entries.
  std::string BadSchema =
      "{\"schema\":\"ramloc-cache-v999\",\"fingerprint\":\"" +
      CacheStore::fingerprint() + "\"}" + Doc.substr(Newline);
  ASSERT_TRUE(writeTextFile(Seed.path(), BadSchema));
  CacheStore Store2;
  ASSERT_TRUE(Store2.open(Dir));
  EXPECT_TRUE(Store2.invalidated());
  EXPECT_EQ(Store2.loadedEntries(), 0u);
}

TEST(CacheStore, SaveIsAtomicRename) {
  std::string Dir = freshDir("atomic");
  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  CampaignOptions Opts;
  Opts.Cache = &Store.cache();
  runCampaign(tinyGrid(), Opts);
  ASSERT_TRUE(Store.save());
  ASSERT_TRUE(Store.save()); // idempotent rewrite over a live store
  EXPECT_FALSE(std::filesystem::exists(Store.path() + ".tmp"));

  CacheStore Reload;
  ASSERT_TRUE(Reload.open(Dir));
  EXPECT_EQ(Reload.loadedEntries(), 2u);
  EXPECT_EQ(Reload.skippedLines(), 0u);
}

TEST(CacheStore, JobResultRoundTripsExactly) {
  JobSpec Spec;
  Spec.Benchmark = "int_matmult";
  Spec.Level = OptLevel::O2;
  Spec.Repeat = 2;
  Spec.RspareBytes = 1024;
  Spec.Xlimit = 1.25;
  JobResult R = runJob(Spec);
  ASSERT_TRUE(R.ok()) << R.Error;

  JsonWriter W(/*Pretty=*/false);
  writeJobResult(W, R);
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(W.str(), V, &Error)) << Error;
  JobResult Back;
  ASSERT_TRUE(parseJobResult(V, Back, &Error)) << Error;

  EXPECT_EQ(Back.Spec.cacheKey(), Spec.cacheKey());
  EXPECT_EQ(Back.BaseEnergyMilliJoules, R.BaseEnergyMilliJoules);
  EXPECT_EQ(Back.OptEnergyMilliJoules, R.OptEnergyMilliJoules);
  EXPECT_EQ(Back.BaseSeconds, R.BaseSeconds);
  EXPECT_EQ(Back.OptSeconds, R.OptSeconds);
  EXPECT_EQ(Back.BaseAvgMilliWatts, R.BaseAvgMilliWatts);
  EXPECT_EQ(Back.OptAvgMilliWatts, R.OptAvgMilliWatts);
  EXPECT_EQ(Back.BaseCycles, R.BaseCycles);
  EXPECT_EQ(Back.OptCycles, R.OptCycles);
  EXPECT_EQ(Back.PredictedBaseEnergyMilliJoules,
            R.PredictedBaseEnergyMilliJoules);
  EXPECT_EQ(Back.PredictedOptEnergyMilliJoules,
            R.PredictedOptEnergyMilliJoules);
  EXPECT_EQ(Back.PredictedBaseCycles, R.PredictedBaseCycles);
  EXPECT_EQ(Back.PredictedOptCycles, R.PredictedOptCycles);
  EXPECT_EQ(Back.RamBytes, R.RamBytes);
  EXPECT_EQ(Back.MovedBlocks, R.MovedBlocks);

  // Failed jobs round-trip their error.
  JobResult Failed;
  Failed.Spec.Benchmark = "nope";
  Failed.Error = "unknown benchmark 'nope'";
  JsonWriter W2(/*Pretty=*/false);
  writeJobResult(W2, Failed);
  ASSERT_TRUE(JsonValue::parse(W2.str(), V, &Error)) << Error;
  JobResult FailedBack;
  ASSERT_TRUE(parseJobResult(V, FailedBack, &Error)) << Error;
  EXPECT_FALSE(FailedBack.ok());
  EXPECT_EQ(FailedBack.Error, Failed.Error);
}

TEST(CacheStore, FailedResultsAreNotPersisted) {
  std::string Dir = freshDir("failures");
  JobSpec Good;
  Good.Benchmark = "crc32";
  Good.Level = OptLevel::O1;
  Good.Repeat = 2;
  JobSpec Bad;
  Bad.Benchmark = "no_such_benchmark";

  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  CampaignOptions Opts;
  Opts.Cache = &Store.cache();
  CampaignResult CR = runCampaign({Good, Bad}, Opts);
  EXPECT_EQ(CR.Summary.Failed, 1u);
  EXPECT_EQ(Store.cache().size(), 2u); // in-memory keeps both
  ASSERT_TRUE(Store.save());

  // A failure may be a bug the next build fixes, so only the success
  // survives the round-trip and the failed job re-runs.
  CacheStore Reload;
  ASSERT_TRUE(Reload.open(Dir));
  EXPECT_EQ(Reload.loadedEntries(), 1u);
  CampaignOptions Opts2;
  Opts2.Cache = &Reload.cache();
  CampaignResult CR2 = runCampaign({Good, Bad}, Opts2);
  EXPECT_EQ(CR2.Summary.UniqueRuns, 1u);
  EXPECT_EQ(CR2.Summary.CacheHits, 1u);
}

TEST(CacheStore, FingerprintIsStableWithinAProcess) {
  EXPECT_EQ(CacheStore::fingerprint(), CacheStore::fingerprint());
  EXPECT_EQ(CacheStore::fingerprint().size(), 16u);
  // The profile fingerprint tracks simulator semantics, not device
  // tables: it must be stable and distinct from the results fingerprint.
  EXPECT_EQ(CacheStore::profileFingerprint(),
            CacheStore::profileFingerprint());
  EXPECT_EQ(CacheStore::profileFingerprint().size(), 16u);
  EXPECT_NE(CacheStore::profileFingerprint(), CacheStore::fingerprint());
}

TEST(CacheStore, SaveAppendsNewEntriesWithoutRewriting) {
  std::string Dir = freshDir("append");
  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  CampaignOptions Opts;
  Opts.Cache = &Store.cache();
  runCampaign(tinyGrid(), Opts);
  ASSERT_TRUE(Store.save());
  std::string FirstDoc = slurp(Store.path());

  // More work into the same store: save must extend the file, keeping
  // the earlier bytes as an untouched prefix (the append property a
  // concurrent writer's lines depend on).
  GridSpec More = tinyGrid();
  More.RsparePoints = {1024};
  runCampaign(More, Opts);
  ASSERT_TRUE(Store.save());
  std::string SecondDoc = slurp(Store.path());
  ASSERT_GT(SecondDoc.size(), FirstDoc.size());
  EXPECT_EQ(SecondDoc.substr(0, FirstDoc.size()), FirstDoc);

  CacheStore Reload;
  ASSERT_TRUE(Reload.open(Dir));
  EXPECT_EQ(Reload.loadedEntries(), 3u);
}

TEST(CacheStore, ConcurrentWritersBothSurvive) {
  // Two stores over one directory (two shard workers, say). With the old
  // rewrite-on-save semantics the second save clobbered the first; with
  // append-mode both writers' entries survive.
  std::string Dir = freshDir("concurrent");
  CacheStore A, B;
  ASSERT_TRUE(A.open(Dir));
  ASSERT_TRUE(B.open(Dir));

  GridSpec GridA = tinyGrid();
  GridA.RsparePoints = {256};
  CampaignOptions OptsA;
  OptsA.Cache = &A.cache();
  runCampaign(GridA, OptsA);
  ASSERT_TRUE(A.save());

  GridSpec GridB = tinyGrid();
  GridB.RsparePoints = {1024};
  CampaignOptions OptsB;
  OptsB.Cache = &B.cache();
  runCampaign(GridB, OptsB);
  ASSERT_TRUE(B.save());

  CacheStore Reload;
  ASSERT_TRUE(Reload.open(Dir));
  EXPECT_EQ(Reload.loadedEntries(), 2u);
  EXPECT_EQ(Reload.skippedLines(), 0u);
}

TEST(CacheStore, CompactFoldsDuplicateAppends) {
  // Two writers racing the same grid append duplicate records; loads
  // keep the first of each key, and compact() rewrites one sorted copy.
  std::string Dir = freshDir("compact");
  CacheStore A, B;
  ASSERT_TRUE(A.open(Dir));
  ASSERT_TRUE(B.open(Dir));
  CampaignOptions OptsA, OptsB;
  OptsA.Cache = &A.cache();
  OptsB.Cache = &B.cache();
  runCampaign(tinyGrid(), OptsA);
  runCampaign(tinyGrid(), OptsB);
  ASSERT_TRUE(A.save());
  ASSERT_TRUE(B.save());

  // Duplicated lines on disk, deduplicated in memory.
  std::string Doc = slurp(A.path());
  size_t Lines = 0;
  for (char C : Doc)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 1u + 4u); // header + 2 entries per writer
  CacheStore Before;
  ASSERT_TRUE(Before.open(Dir));
  EXPECT_EQ(Before.loadedEntries(), 2u);

  ASSERT_TRUE(Before.compact());
  std::string Compacted = slurp(Before.path());
  Lines = 0;
  for (char C : Compacted)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 1u + 2u);
  CacheStore After;
  ASSERT_TRUE(After.open(Dir));
  EXPECT_EQ(After.loadedEntries(), 2u);
}

TEST(CacheStore, ProfilesPersistAndServeNewDevices) {
  // Execution profiles are device-independent, so a store written while
  // sweeping one device turns a later process's sweep of *different*
  // devices into pure recosts — even though those results are not cached.
  std::string Dir = freshDir("profiles");
  GridSpec Grid = tinyGrid();
  Grid.Kind = JobKind::ModelOnly;
  Grid.FreqModes = {FreqMode::Profiled};
  Grid.RsparePoints = {256};
  Grid.Devices = {"stm32f100"};

  CacheStore First;
  ASSERT_TRUE(First.open(Dir));
  CampaignOptions Opts;
  Opts.Cache = &First.cache();
  Opts.Profiles = &First.profiles();
  CampaignResult CR1 = runCampaign(Grid, Opts);
  ASSERT_EQ(CR1.Summary.Failed, 0u);
  EXPECT_EQ(CR1.Summary.FullSims, 1u);
  ASSERT_TRUE(First.save());

  CacheStore Second;
  ASSERT_TRUE(Second.open(Dir));
  EXPECT_EQ(Second.loadedProfiles(), 1u);
  Grid.Devices = {"stm32f100-2ws"};
  CampaignOptions Opts2;
  Opts2.Cache = &Second.cache();
  Opts2.Profiles = &Second.profiles();
  CampaignResult CR2 = runCampaign(Grid, Opts2);
  ASSERT_EQ(CR2.Summary.Failed, 0u);
  EXPECT_EQ(CR2.Summary.FullSims, 0u);
  EXPECT_EQ(CR2.Summary.Recosts, 1u);
}

TEST(CacheStore, GcProfilesDropsStaleAndDuplicates) {
  std::string Dir = freshDir("gc-basic");
  CampaignOptions Opts;
  {
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    Opts.Cache = &Store.cache();
    Opts.Profiles = &Store.profiles();
    runCampaign(tinyGrid(), Opts);
    ASSERT_TRUE(Store.save());
  }

  // Duplicate a line (a concurrent appender racing the same execution)
  // and inject a corrupt one.
  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  std::string Doc = slurp(Store.profilePath());
  size_t FirstEntry = Doc.find('\n') + 1;
  size_t SecondLine = Doc.find('\n', FirstEntry) + 1;
  std::string Dup = Doc.substr(FirstEntry, SecondLine - FirstEntry);
  {
    std::ofstream Out(Store.profilePath(), std::ios::app);
    Out << "{\"broken\": tru\n" << Dup;
  }

  CacheStore::ProfileGcStats Stats;
  ASSERT_TRUE(Store.gcProfiles(/*MaxBytes=*/0, Stats));
  EXPECT_EQ(Stats.DroppedInvalid, 2u); // corrupt line + duplicate key
  EXPECT_EQ(Stats.Evicted, 0u);
  EXPECT_GT(Stats.Kept, 0u);
  EXPECT_LE(Stats.BytesAfter, Stats.BytesBefore);

  // The rewritten store loads cleanly with no skipped lines.
  CacheStore After;
  ASSERT_TRUE(After.open(Dir));
  EXPECT_EQ(After.skippedProfileLines(), 0u);
  EXPECT_EQ(After.loadedProfiles(), Stats.Kept);
}

TEST(CacheStore, GcProfilesEvictsOldestOverTheCap) {
  std::string Dir = freshDir("gc-cap");
  {
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    CampaignOptions Opts;
    Opts.Cache = &Store.cache();
    Opts.Profiles = &Store.profiles();
    runCampaign(tinyGrid(), Opts);
    ASSERT_TRUE(Store.save());
  }
  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  size_t Before = Store.loadedProfiles();
  ASSERT_GT(Before, 1u);

  // Cap low enough that only the newest entry survives.
  std::string Doc = slurp(Store.profilePath());
  size_t LastLineStart = Doc.rfind('\n', Doc.size() - 2) + 1;
  std::string LastLine = Doc.substr(LastLineStart);
  size_t HeaderLen = Doc.find('\n') + 1;
  uint64_t Cap = HeaderLen + LastLine.size() + 8;

  CacheStore::ProfileGcStats Stats;
  ASSERT_TRUE(Store.gcProfiles(Cap, Stats));
  EXPECT_EQ(Stats.Kept, 1u);
  EXPECT_EQ(Stats.Evicted, Before - 1);
  EXPECT_LE(Stats.BytesAfter, Cap);

  // The survivor is the newest (last-appended) entry, kept verbatim.
  std::string AfterDoc = slurp(Store.profilePath());
  EXPECT_NE(AfterDoc.find(LastLine), std::string::npos);

  CacheStore After;
  ASSERT_TRUE(After.open(Dir));
  EXPECT_EQ(After.loadedProfiles(), 1u);
}

TEST(CacheStore, GcProfilesDiscardsStaleFingerprintWholesale) {
  std::string Dir = freshDir("gc-stale");
  {
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    CampaignOptions Opts;
    Opts.Cache = &Store.cache();
    Opts.Profiles = &Store.profiles();
    runCampaign(tinyGrid(), Opts);
    ASSERT_TRUE(Store.save());
  }
  CacheStore Store;
  ASSERT_TRUE(Store.open(Dir));
  // Rewrite the header with a bogus fingerprint: simulator semantics
  // moved on, every entry must go.
  std::string Doc = slurp(Store.profilePath());
  size_t HeaderLen = Doc.find('\n') + 1;
  std::string Tampered =
      "{\"schema\":\"ramloc-profiles-v1\",\"fingerprint\":\"0000\"}\n" +
      Doc.substr(HeaderLen);
  ASSERT_TRUE(writeTextFile(Store.profilePath(), Tampered));

  CacheStore::ProfileGcStats Stats;
  ASSERT_TRUE(Store.gcProfiles(0, Stats));
  EXPECT_EQ(Stats.Kept, 0u);
  EXPECT_GT(Stats.DroppedInvalid, 0u);

  CacheStore After;
  ASSERT_TRUE(After.open(Dir));
  EXPECT_EQ(After.loadedProfiles(), 0u);
  EXPECT_EQ(After.skippedProfileLines(), 0u); // clean, just empty
}

TEST(CacheStore, IncumbentsRoundTripAcrossProcesses) {
  std::string Dir = freshDir("incumbents");
  GridSpec Grid = tinyGrid();
  Grid.Kind = JobKind::ModelOnly;

  CacheStore First;
  ASSERT_TRUE(First.open(Dir));
  EXPECT_EQ(First.loadedIncumbents(), 0u);
  CampaignOptions Opts;
  Opts.Incumbents = &First.incumbents();
  CampaignResult CR1 = runCampaign(Grid, Opts);
  ASSERT_EQ(CR1.Summary.Failed, 0u);
  EXPECT_EQ(CR1.Summary.IncumbentSeeds, 0u); // nothing persisted yet
  EXPECT_EQ(First.incumbents().size(), 1u);  // one solve group
  std::string Error;
  ASSERT_TRUE(First.save(&Error)) << Error;

  // "Next process": the store reloads the incumbent and the same grid's
  // first cold solve opens from it — with a byte-identical report.
  CacheStore Second;
  ASSERT_TRUE(Second.open(Dir));
  EXPECT_EQ(Second.loadedIncumbents(), 1u);
  CampaignOptions Opts2;
  Opts2.Incumbents = &Second.incumbents();
  CampaignResult CR2 = runCampaign(Grid, Opts2);
  ASSERT_EQ(CR2.Summary.Failed, 0u);
  EXPECT_EQ(CR2.Summary.IncumbentSeeds, 1u);
  EXPECT_EQ(campaignToJson(CR1), campaignToJson(CR2));

  // Unchanged incumbents append nothing on a re-save.
  std::string Before = slurp(Second.incumbentPath());
  ASSERT_TRUE(Second.save(&Error)) << Error;
  EXPECT_EQ(slurp(Second.incumbentPath()), Before);
}

TEST(CacheStore, StaleIncumbentFingerprintIsDiscarded) {
  std::string Dir = freshDir("incstale");
  {
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    Store.incumbents().offer("crc32|O1|r2|stm32f100|static|model-only",
                             {true, false}, 1.0);
    ASSERT_TRUE(Store.save());
  }
  // Corrupt the header fingerprint: a different model world.
  std::string Path =
      (std::filesystem::path(Dir) / "incumbents.jsonl").string();
  std::string Doc = slurp(Path);
  ASSERT_TRUE(writeTextFile(
      Path,
      "{\"schema\": \"ramloc-incumbents-v1\", \"fingerprint\": "
      "\"0000000000000000\"}\n" +
          Doc.substr(Doc.find('\n') + 1)));

  CacheStore Reload;
  ASSERT_TRUE(Reload.open(Dir));
  EXPECT_EQ(Reload.loadedIncumbents(), 0u);
  EXPECT_EQ(Reload.incumbents().size(), 0u);
}

TEST(CacheStore, CorruptIncumbentLinesAreSkippedNotFatal) {
  std::string Dir = freshDir("inccorrupt");
  {
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    Store.incumbents().offer("groupA", {true, false, true}, 2.5);
    Store.incumbents().offer("groupB", {false, true}, 1.5);
    ASSERT_TRUE(Store.save());
  }
  std::string Path =
      (std::filesystem::path(Dir) / "incumbents.jsonl").string();
  std::string Doc = slurp(Path);
  // A torn tail line (killed writer) and a wrong-typed record.
  ASSERT_TRUE(writeTextFile(
      Path, Doc + "{\"group\": \"groupC\", \"energy_mj\": \"nan\", "
                  "\"blocks\": 7}\n{\"group\": \"groupD\", \"ener"));

  CacheStore Reload;
  ASSERT_TRUE(Reload.open(Dir));
  EXPECT_EQ(Reload.loadedIncumbents(), 2u);
  EXPECT_EQ(Reload.skippedIncumbentLines(), 2u);
  IncumbentStore::Entry E;
  ASSERT_TRUE(Reload.incumbents().lookup("groupA", E));
  EXPECT_EQ(E.InRam, Assignment({true, false, true}));
}

TEST(CacheStore, AppendedImprovementWinsOnLoadAndCompactFolds) {
  std::string Dir = freshDir("incimprove");
  {
    CacheStore Store;
    ASSERT_TRUE(Store.open(Dir));
    Store.incumbents().offer("g", {false, false}, 9.0);
    ASSERT_TRUE(Store.save());
    // An improvement re-appends: two lines for "g" on disk, best wins
    // at the next load.
    Store.incumbents().offer("g", {true, false}, 3.0);
    ASSERT_TRUE(Store.save());
  }
  std::string Path =
      (std::filesystem::path(Dir) / "incumbents.jsonl").string();
  std::string TwoAppends = slurp(Path);
  EXPECT_EQ(std::count(TwoAppends.begin(), TwoAppends.end(), '\n'), 3);

  CacheStore Reload;
  ASSERT_TRUE(Reload.open(Dir));
  EXPECT_EQ(Reload.loadedIncumbents(), 2u); // both lines parsed
  IncumbentStore::Entry E;
  ASSERT_TRUE(Reload.incumbents().lookup("g", E));
  EXPECT_EQ(E.EnergyMilliJoules, 3.0);
  EXPECT_EQ(E.InRam, Assignment({true, false}));

  // compactIncumbents folds the duplicates to one line per group.
  ASSERT_TRUE(Reload.compactIncumbents());
  std::string Compacted = slurp(Path);
  EXPECT_EQ(std::count(Compacted.begin(), Compacted.end(), '\n'), 2);
  CacheStore Again;
  ASSERT_TRUE(Again.open(Dir));
  EXPECT_EQ(Again.loadedIncumbents(), 1u);
  ASSERT_TRUE(Again.incumbents().lookup("g", E));
  EXPECT_EQ(E.EnergyMilliJoules, 3.0);
}
