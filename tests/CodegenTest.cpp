//===- tests/CodegenTest.cpp - benchmark code generator ------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "beebs/Codegen.h"
#include "core/Pipeline.h"
#include "mir/Verifier.h"

#include <gtest/gtest.h>

using namespace ramloc;

namespace {

/// Builds `int addmul(a, b) { t = a + b; return t * 3; }` at a level.
Module addmulModule(OptLevel L) {
  Module M;
  M.EntryFunction = "main";
  {
    FuncBuilder B(M, "addmul", L);
    Var A = B.param("a");
    Var Bp = B.param("b");
    Var T = B.local("t");
    Var C = B.local("c");
    B.prologue();
    B.op(BinOp::Add, T, A, Bp);
    B.setImm(C, 3);
    B.op(BinOp::Mul, T, T, C);
    B.retVar(T);
    B.finish();
  }
  {
    FuncBuilder B(M, "main", L);
    Var X = B.local("x");
    Var Y = B.local("y");
    B.prologue();
    B.setImm(X, 20);
    B.setImm(Y, 22);
    B.callInto(X, "addmul", {X, Y});
    B.haltWith(X);
    B.finish();
  }
  return M;
}

unsigned countOpcode(const Function &F, OpKind K) {
  unsigned N = 0;
  for (const BasicBlock &BB : F.Blocks)
    for (const Instr &I : BB.Instrs)
      N += I.Kind == K;
  return N;
}

} // namespace

TEST(Codegen, AllLevelsComputeTheSame) {
  for (OptLevel L : AllOptLevels) {
    Module M = addmulModule(L);
    ASSERT_TRUE(moduleIsValid(M)) << verifyModule(M).front();
    Measurement R = measureModule(M, PowerModel::stm32f100());
    ASSERT_TRUE(R.ok()) << R.Stats.Error;
    EXPECT_EQ(R.Stats.ExitCode, 126u) << optLevelName(L); // (20+22)*3
  }
}

TEST(Codegen, O0SpillsEverything) {
  Module M = addmulModule(OptLevel::O0);
  const Function &F = *M.findFunction("addmul");
  // Every statement round-trips the stack: loads and stores abound.
  EXPECT_GT(countOpcode(F, OpKind::LdrImm), 3u);
  EXPECT_GT(countOpcode(F, OpKind::StrImm), 2u);
  // The frame is set up with sub sp / add sp.
  EXPECT_GE(countOpcode(F, OpKind::SubImm), 1u);
}

TEST(Codegen, O1KeepsLocalsInRegisters) {
  Module M = addmulModule(OptLevel::O1);
  const Function &F = *M.findFunction("addmul");
  // No stack traffic beyond push/pop.
  EXPECT_EQ(countOpcode(F, OpKind::LdrImm), 0u);
  EXPECT_EQ(countOpcode(F, OpKind::StrImm), 0u);
}

TEST(Codegen, O0CodeIsLargerAndSlower) {
  Module M0 = addmulModule(OptLevel::O0);
  Module M1 = addmulModule(OptLevel::O1);
  EXPECT_GT(M0.findFunction("addmul")->codeSizeBytes(),
            M1.findFunction("addmul")->codeSizeBytes());
  Measurement R0 = measureModule(M0, PowerModel::stm32f100());
  Measurement R1 = measureModule(M1, PowerModel::stm32f100());
  ASSERT_TRUE(R0.ok() && R1.ok());
  EXPECT_GT(R0.Stats.Cycles, R1.Stats.Cycles);
}

TEST(Codegen, ScratchRegisterNeverAllocated) {
  // Many locals: the pool must skip r7 and spill the overflow.
  Module M;
  M.EntryFunction = "f";
  FuncBuilder B(M, "f", OptLevel::O1);
  std::vector<Var> Vars;
  for (unsigned I = 0; I != 12; ++I)
    Vars.push_back(B.local("v" + std::to_string(I)));
  B.prologue();
  for (unsigned I = 0; I != 12; ++I)
    B.setImm(Vars[I], I);
  Var Acc = Vars[0];
  for (unsigned I = 1; I != 12; ++I)
    B.op(BinOp::Add, Acc, Acc, Vars[I]);
  B.haltWith(Acc);
  B.finish();

  ASSERT_TRUE(moduleIsValid(M)) << verifyModule(M).front();
  Measurement R = measureModule(M, PowerModel::stm32f100());
  ASSERT_TRUE(R.ok()) << R.Stats.Error;
  EXPECT_EQ(R.Stats.ExitCode, 66u); // 0+1+...+11
}

TEST(Codegen, UnrollFactorsPerLevel) {
  Module M;
  FuncBuilder B0(M, "a", OptLevel::O0);
  EXPECT_EQ(B0.unroll(), 1u);
  FuncBuilder B1(M, "b", OptLevel::O1);
  EXPECT_EQ(B1.unroll(), 1u);
  FuncBuilder B2(M, "c", OptLevel::O2);
  EXPECT_EQ(B2.unroll(), 2u);
  FuncBuilder B3(M, "d", OptLevel::O3);
  EXPECT_EQ(B3.unroll(), 4u);
  FuncBuilder Bs(M, "e", OptLevel::Os);
  EXPECT_EQ(Bs.unroll(), 1u);
}

TEST(Codegen, ParameterMarshalling) {
  // Four parameters arrive in r0-r3 and survive into the body at all
  // levels.
  for (OptLevel L : AllOptLevels) {
    Module M;
    M.EntryFunction = "main";
    {
      FuncBuilder B(M, "sum4", L);
      Var A = B.param("a");
      Var Bv = B.param("b");
      Var C = B.param("c");
      Var D = B.param("d");
      B.prologue();
      B.op(BinOp::Add, A, A, Bv);
      B.op(BinOp::Add, A, A, C);
      B.op(BinOp::Add, A, A, D);
      B.retVar(A);
      B.finish();
    }
    {
      FuncBuilder B(M, "main", L);
      Var W = B.local("w");
      Var X = B.local("x");
      Var Y = B.local("y");
      Var Z = B.local("z");
      B.prologue();
      B.setImm(W, 1);
      B.setImm(X, 2);
      B.setImm(Y, 4);
      B.setImm(Z, 8);
      B.callInto(W, "sum4", {W, X, Y, Z});
      B.haltWith(W);
      B.finish();
    }
    Measurement R = measureModule(M, PowerModel::stm32f100());
    ASSERT_TRUE(R.ok()) << optLevelName(L) << ": " << R.Stats.Error;
    EXPECT_EQ(R.Stats.ExitCode, 15u) << optLevelName(L);
  }
}

TEST(Codegen, ByteMemoryOps) {
  Module M;
  M.EntryFunction = "main";
  M.addBss("bytes", 16);
  FuncBuilder B(M, "main", OptLevel::O1);
  Var Buf = B.local("buf");
  Var I = B.local("i");
  Var V = B.local("v");
  Var Sum = B.local("sum");
  B.prologue();
  B.addrOf(Buf, "bytes");
  B.setImm(I, 0);
  B.block("fill");
  B.opImm(BinOp::Lsl, V, I, 4);
  B.storeBIdx(V, Buf, I);
  B.opImm(BinOp::Add, I, I, 1);
  B.brCmpImm(CmpOp::SLt, I, 16, "fill");
  B.block("read");
  B.setImm(Sum, 0);
  B.setImm(I, 0);
  B.block("acc");
  B.loadBIdx(V, Buf, I);
  B.op(BinOp::Add, Sum, Sum, V);
  B.opImm(BinOp::Add, I, I, 1);
  B.brCmpImm(CmpOp::SLt, I, 16, "acc");
  B.block("done");
  B.haltWith(Sum);
  B.finish();

  Measurement R = measureModule(M, PowerModel::stm32f100());
  ASSERT_TRUE(R.ok()) << R.Stats.Error;
  // sum of (i << 4) & 0xFF for i in 0..15 = 16 * (0+...+15) mod byte
  uint32_t Expected = 0;
  for (uint32_t I = 0; I != 16; ++I)
    Expected += static_cast<uint8_t>(I << 4);
  EXPECT_EQ(R.Stats.ExitCode, Expected);
}

TEST(Codegen, GeneratedFunctionsSurviveOptimization) {
  // The generated code must interact correctly with the instrumenter at
  // every level (r7 discipline, block shapes).
  for (OptLevel L : AllOptLevels) {
    Module M = addmulModule(L);
    PipelineOptions Opts;
    Opts.Knobs.RspareBytes = 4096;
    Opts.Knobs.Xlimit = 3.0;
    PipelineResult R = optimizeModule(M, Opts);
    ASSERT_TRUE(R.ok()) << optLevelName(L) << ": " << R.Error;
    EXPECT_EQ(R.MeasuredOpt.Stats.ExitCode, 126u);
  }
}
