//===- tests/MirTest.cpp - CFG / dominators / loops / frequency -----------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "mir/CFG.h"
#include "mir/Dominators.h"
#include "mir/Frequency.h"
#include "mir/Loops.h"
#include "mir/Module.h"
#include "mir/Verifier.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ramloc;
using namespace ramloc::build;

namespace {

BasicBlock makeBlock(const std::string &Label, std::vector<Instr> Instrs) {
  BasicBlock BB(Label);
  BB.Instrs = std::move(Instrs);
  return BB;
}

/// The paper's Figure 2 function: init -> loop (self) -> if -> iftrue? ->
/// return.
Function figure2Function() {
  Function F("fn");
  F.Blocks.push_back(makeBlock("init", {movImm(R1, 1), movImm(R0, 0)}));
  F.Blocks.push_back(makeBlock("loop", {mul(R1, R1, R2),
                                        addImm(R0, R0, 1),
                                        cmpImm(R0, 64),
                                        bCond(Cond::NE, "loop")}));
  F.Blocks.push_back(
      makeBlock("if", {cmpImm(R1, 255), bCond(Cond::LE, "return")}));
  F.Blocks.push_back(makeBlock("iftrue", {movImm(R0, 255), b("return")}));
  F.Blocks.push_back(makeBlock("return", {movReg(R0, R1), bx(LR)}));
  return F;
}

Module figure2Module() {
  Module M;
  M.Name = "fig2";
  M.EntryFunction = "fn";
  M.Functions.push_back(figure2Function());
  return M;
}

} // namespace

TEST(Module, Lookup) {
  Module M = figure2Module();
  EXPECT_NE(M.findFunction("fn"), nullptr);
  EXPECT_EQ(M.findFunction("nope"), nullptr);
  EXPECT_EQ(M.Functions[0].blockIndex("loop"), 1);
  EXPECT_EQ(M.Functions[0].blockIndex("missing"), -1);
  EXPECT_EQ(M.numBlocks(), 5u);
}

TEST(Module, DataHelpers) {
  Module M;
  M.addRodataWords("tab", {1, 2});
  M.addDataWords("var", {3});
  M.addBss("buf", 64, 8);
  EXPECT_EQ(M.findData("tab")->sizeBytes(), 8u);
  EXPECT_EQ(M.findData("tab")->Sect, DataObject::Section::Rodata);
  EXPECT_EQ(M.findData("var")->Bytes[0], 3u);
  EXPECT_EQ(M.findData("buf")->sizeBytes(), 64u);
  EXPECT_EQ(M.findData("buf")->Align, 8u);
  EXPECT_EQ(M.findData("zzz"), nullptr);
}

TEST(CFG, Figure2Shape) {
  Function F = figure2Function();
  CFG G = CFG::build(F);
  ASSERT_EQ(G.size(), 5u);

  // init falls through to loop.
  EXPECT_EQ(G.edges(0).Term, TermKind::Fallthrough);
  EXPECT_EQ(G.edges(0).FallSucc, 1);

  // loop: conditional self-edge + fallthrough to if.
  EXPECT_EQ(G.edges(1).Term, TermKind::Cond);
  EXPECT_EQ(G.edges(1).TakenSucc, 1);
  EXPECT_EQ(G.edges(1).FallSucc, 2);
  ASSERT_EQ(G.edges(1).Succs.size(), 2u);

  // if: conditional to return / fallthrough to iftrue.
  EXPECT_EQ(G.edges(2).Term, TermKind::Cond);
  EXPECT_EQ(G.edges(2).TakenSucc, 4);
  EXPECT_EQ(G.edges(2).FallSucc, 3);

  // iftrue: unconditional to return.
  EXPECT_EQ(G.edges(3).Term, TermKind::Uncond);
  EXPECT_EQ(G.edges(3).TakenSucc, 4);

  // return: no successors.
  EXPECT_EQ(G.edges(4).Term, TermKind::Return);
  EXPECT_TRUE(G.edges(4).Succs.empty());

  // Predecessors of return: if (taken) and iftrue.
  EXPECT_EQ(G.edges(4).Preds.size(), 2u);
}

TEST(CFG, ReversePostOrderStartsAtEntry) {
  Function F = figure2Function();
  CFG G = CFG::build(F);
  ASSERT_FALSE(G.reversePostOrder().empty());
  EXPECT_EQ(G.reversePostOrder()[0], 0u);
  for (unsigned B = 0; B != G.size(); ++B)
    EXPECT_TRUE(G.isReachable(B));
}

TEST(CFG, UnreachableBlockDetected) {
  Function F("f");
  F.Blocks.push_back(makeBlock("entry", {b("exit")}));
  F.Blocks.push_back(makeBlock("dead", {movImm(R0, 1), b("exit")}));
  F.Blocks.push_back(makeBlock("exit", {bx(LR)}));
  CFG G = CFG::build(F);
  EXPECT_TRUE(G.isReachable(0));
  EXPECT_FALSE(G.isReachable(1));
  EXPECT_TRUE(G.isReachable(2));
}

TEST(CFG, HaltAndIndirect) {
  Function F("f");
  F.Blocks.push_back(makeBlock("entry", {bkpt()}));
  CFG G = CFG::build(F);
  EXPECT_EQ(G.edges(0).Term, TermKind::Halt);

  Function F2("g");
  F2.Blocks.push_back(makeBlock("entry", {ldrLitSym(PC, "next")}));
  F2.Blocks.push_back(makeBlock("next", {bx(LR)}));
  CFG G2 = CFG::build(F2);
  EXPECT_EQ(G2.edges(0).Term, TermKind::IndirectJump);
  EXPECT_EQ(G2.edges(0).TakenSucc, 1);
}

TEST(Dominators, Figure2) {
  Function F = figure2Function();
  CFG G = CFG::build(F);
  DominatorTree DT = DominatorTree::build(G);
  EXPECT_EQ(DT.idom(0), -1);
  EXPECT_EQ(DT.idom(1), 0);
  EXPECT_EQ(DT.idom(2), 1);
  EXPECT_EQ(DT.idom(3), 2);
  EXPECT_EQ(DT.idom(4), 2); // return joins if/iftrue
  EXPECT_TRUE(DT.dominates(0, 4));
  EXPECT_TRUE(DT.dominates(1, 4));
  EXPECT_TRUE(DT.dominates(2, 3));
  EXPECT_FALSE(DT.dominates(3, 4));
  EXPECT_TRUE(DT.dominates(3, 3));
}

TEST(Dominators, Diamond) {
  Function F("f");
  F.Blocks.push_back(makeBlock("a", {cmpImm(R0, 0), bCond(Cond::EQ, "c")}));
  F.Blocks.push_back(makeBlock("b", {b("d")}));
  F.Blocks.push_back(makeBlock("c", {nop()})); // falls to d
  F.Blocks.push_back(makeBlock("d", {bx(LR)}));
  CFG G = CFG::build(F);
  DominatorTree DT = DominatorTree::build(G);
  EXPECT_EQ(DT.idom(3), 0); // join dominated by the fork, not a branch
  EXPECT_FALSE(DT.dominates(1, 3));
  EXPECT_FALSE(DT.dominates(2, 3));
}

TEST(Loops, Figure2SelfLoop) {
  Function F = figure2Function();
  CFG G = CFG::build(F);
  DominatorTree DT = DominatorTree::build(G);
  LoopInfo LI = LoopInfo::build(G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_EQ(LI.loops()[0].Header, 1u);
  EXPECT_EQ(LI.depth(1), 1u);
  EXPECT_EQ(LI.depth(0), 0u);
  EXPECT_EQ(LI.depth(2), 0u);
  EXPECT_TRUE(LI.isBackEdge(1, 1));
  EXPECT_FALSE(LI.isBackEdge(0, 1));
  EXPECT_TRUE(LI.isExitEdge(1, 2));
}

TEST(Loops, NestedLoops) {
  // outer: header o; inner: header i inside o.
  Function F("f");
  F.Blocks.push_back(makeBlock("entry", {movImm(R0, 0)}));
  F.Blocks.push_back(makeBlock("outer", {movImm(R1, 0)}));
  F.Blocks.push_back(makeBlock("inner", {addImm(R1, R1, 1), cmpImm(R1, 10),
                                         bCond(Cond::NE, "inner")}));
  F.Blocks.push_back(makeBlock("latch", {addImm(R0, R0, 1), cmpImm(R0, 10),
                                         bCond(Cond::NE, "outer")}));
  F.Blocks.push_back(makeBlock("exit", {bx(LR)}));
  CFG G = CFG::build(F);
  DominatorTree DT = DominatorTree::build(G);
  LoopInfo LI = LoopInfo::build(G, DT);
  ASSERT_EQ(LI.loops().size(), 2u);
  EXPECT_EQ(LI.depth(0), 0u);
  EXPECT_EQ(LI.depth(1), 1u); // outer header
  EXPECT_EQ(LI.depth(2), 2u); // inner
  EXPECT_EQ(LI.depth(3), 1u); // outer latch
  EXPECT_EQ(LI.depth(4), 0u);
}

TEST(Frequency, LoopDepthEstimate) {
  Module M = figure2Module();
  ModuleFrequency MF = estimateModuleFrequency(M);
  // Depth-0 blocks run once, the loop ~10 times.
  EXPECT_DOUBLE_EQ(MF.BlockFreq[0][0], 1.0);
  EXPECT_DOUBLE_EQ(MF.BlockFreq[0][1], 10.0);
  EXPECT_DOUBLE_EQ(MF.BlockFreq[0][2], 1.0);
  // Back edge gets the high taken probability.
  EXPECT_DOUBLE_EQ(MF.TakenProb[0][1], 0.9);
}

TEST(Frequency, CallGraphPropagation) {
  Module M = figure2Module();
  // Add a main that calls fn from inside a loop.
  Function Main("main");
  Main.Blocks.push_back(makeBlock("entry", {movImm(R4, 0)}));
  Main.Blocks.push_back(makeBlock("call", {bl("fn"), addImm(R4, R4, 1),
                                           cmpImm(R4, 10),
                                           bCond(Cond::NE, "call")}));
  Main.Blocks.push_back(makeBlock("done", {bkpt()}));
  M.Functions.push_back(std::move(Main));
  M.EntryFunction = "main";

  ModuleFrequency MF = estimateModuleFrequency(M);
  int MainIdx = M.functionIndex("main");
  int FnIdx = M.functionIndex("fn");
  ASSERT_GE(MainIdx, 0);
  ASSERT_GE(FnIdx, 0);
  EXPECT_DOUBLE_EQ(MF.CallCount[static_cast<unsigned>(MainIdx)], 1.0);
  // fn called ~10 times (loop-depth estimate of the call block).
  EXPECT_DOUBLE_EQ(MF.CallCount[static_cast<unsigned>(FnIdx)], 10.0);
  // fn's loop block: 10 calls x 10 local iterations.
  EXPECT_DOUBLE_EQ(MF.BlockFreq[static_cast<unsigned>(FnIdx)][1], 100.0);
}

TEST(Frequency, RecursionConvergesWithoutHanging) {
  // Direct recursion: the fixed point must terminate (iteration cap) and
  // produce a finite, capped call count.
  Module M;
  M.EntryFunction = "main";
  Function Rec("rec");
  Rec.Blocks.push_back(makeBlock(
      "entry", {push(1u << LR), cmpImm(R0, 0), bCond(Cond::EQ, "out")}));
  Rec.Blocks.push_back(makeBlock(
      "again", {subImm(R0, R0, 1), bl("rec"), b("out")}));
  Rec.Blocks.push_back(makeBlock("out", {pop(1u << PC)}));
  M.Functions.push_back(Rec);
  Function Main("main");
  Main.Blocks.push_back(makeBlock("entry", {movImm(R0, 3), bl("rec"),
                                            bkpt()}));
  M.Functions.push_back(Main);

  ModuleFrequency MF = estimateModuleFrequency(M);
  int RecIdx = M.functionIndex("rec");
  ASSERT_GE(RecIdx, 0);
  double Count = MF.CallCount[static_cast<unsigned>(RecIdx)];
  EXPECT_GT(Count, 0.0);
  EXPECT_TRUE(std::isfinite(Count));
  EXPECT_LE(Count, 1e12); // the estimator's cap
}

TEST(Frequency, MutualRecursionAlsoConverges) {
  Module M;
  M.EntryFunction = "main";
  auto makeCaller = [](const char *Name, const char *Callee) {
    Function F(Name);
    F.Blocks.push_back(makeBlock(
        "entry", {push(1u << LR), bl(Callee), pop(1u << PC)}));
    return F;
  };
  M.Functions.push_back(makeCaller("ping", "pong"));
  M.Functions.push_back(makeCaller("pong", "ping"));
  Function Main("main");
  Main.Blocks.push_back(makeBlock("entry", {bl("ping"), bkpt()}));
  M.Functions.push_back(Main);

  ModuleFrequency MF = estimateModuleFrequency(M);
  for (double C : MF.CallCount) {
    EXPECT_TRUE(std::isfinite(C));
    EXPECT_LE(C, 1e12);
  }
}

TEST(Frequency, ProfileOverride) {
  Module M = figure2Module();
  std::map<std::string, uint64_t> Counts = {
      {"fn:init", 1}, {"fn:loop", 64}, {"fn:if", 1}, {"fn:return", 1}};
  ModuleFrequency MF = moduleFrequencyFromProfile(M, Counts);
  EXPECT_DOUBLE_EQ(MF.BlockFreq[0][1], 64.0);
  EXPECT_DOUBLE_EQ(MF.BlockFreq[0][3], 0.0); // iftrue never seen
}

TEST(Verifier, AcceptsFigure2) {
  Module M = figure2Module();
  EXPECT_TRUE(moduleIsValid(M)) << verifyModule(M).front();
}

TEST(Verifier, RejectsBadBranchTarget) {
  Module M = figure2Module();
  M.Functions[0].Blocks[3].Instrs.back() = b("nowhere");
  auto Errs = verifyModule(M);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("nowhere"), std::string::npos);
}

TEST(Verifier, RejectsMidBlockTerminator) {
  Module M = figure2Module();
  M.Functions[0].Blocks[0].Instrs.insert(
      M.Functions[0].Blocks[0].Instrs.begin(), bx(LR));
  EXPECT_FALSE(moduleIsValid(M));
}

TEST(Verifier, RejectsFallthroughOffEnd) {
  Module M = figure2Module();
  M.Functions[0].Blocks.back().Instrs.pop_back(); // drop bx lr
  EXPECT_FALSE(moduleIsValid(M));
}

TEST(Verifier, RejectsDuplicateLabels) {
  Module M = figure2Module();
  M.Functions[0].Blocks[3].Label = "loop";
  EXPECT_FALSE(moduleIsValid(M));
}

TEST(Verifier, RejectsEmptyBlock) {
  Module M = figure2Module();
  M.Functions[0].Blocks.insert(M.Functions[0].Blocks.begin() + 1,
                               BasicBlock("empty"));
  EXPECT_FALSE(moduleIsValid(M));
}

TEST(Verifier, RejectsMissingEntryFunction) {
  Module M = figure2Module();
  M.EntryFunction = "main";
  EXPECT_FALSE(moduleIsValid(M));
}

TEST(Verifier, ScratchDiscipline) {
  Module M = figure2Module();
  M.Functions[0].Blocks[0].Instrs[0] = movImm(R7, 1);
  EXPECT_FALSE(moduleIsValid(M));
  // Library functions may use r7 freely.
  M.Functions[0].Optimizable = false;
  EXPECT_TRUE(moduleIsValid(M));
  // Or the check can be switched off.
  M.Functions[0].Optimizable = true;
  VerifierOptions VO;
  VO.EnforceScratchDiscipline = false;
  EXPECT_TRUE(moduleIsValid(M, VO));
}

TEST(Verifier, ItBlockCoverage) {
  Module M = figure2Module();
  // Well-formed ITE sequence.
  BasicBlock Good("ite");
  Good.Instrs.push_back(cmpImm(R0, 0));
  Good.Instrs.push_back(ite(Cond::EQ));
  Good.Instrs.push_back(withCond(movImm(R1, 1), Cond::EQ));
  Good.Instrs.push_back(withCond(movImm(R1, 2), Cond::NE));
  Good.Instrs.push_back(bx(LR));
  M.Functions[0].Blocks.push_back(Good);
  EXPECT_TRUE(moduleIsValid(M)) << verifyModule(M).front();

  // Wrong second condition.
  M.Functions[0].Blocks.back().Instrs[3] =
      withCond(movImm(R1, 2), Cond::EQ);
  EXPECT_FALSE(moduleIsValid(M));

  // Conditional instruction with no IT block at all.
  M.Functions[0].Blocks.back().Instrs.erase(
      M.Functions[0].Blocks.back().Instrs.begin() + 1);
  EXPECT_FALSE(moduleIsValid(M));
}

TEST(Verifier, BssWithBytesRejected) {
  Module M = figure2Module();
  DataObject D;
  D.Name = "bad";
  D.Sect = DataObject::Section::Bss;
  D.Bytes = {1, 2, 3};
  M.Data.push_back(D);
  EXPECT_FALSE(moduleIsValid(M));
}
