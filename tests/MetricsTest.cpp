//===- tests/MetricsTest.cpp - metrics registry and Summary views -------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "campaign/Campaign.h"
#include "campaign/Report.h"
#include "support/Json.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace ramloc;

TEST(Metrics, CountersAccumulateAcrossThreads) {
  MetricsRegistry Reg;
  Counter &C = Reg.counter("work.items");
  constexpr unsigned Threads = 4, AddsPerThread = 1000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&C] {
      for (unsigned I = 0; I != AddsPerThread; ++I)
        C.add();
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(C.value(), Threads * AddsPerThread);
  // Same instrument on re-lookup, not a fresh one.
  EXPECT_EQ(&Reg.counter("work.items"), &C);
}

TEST(Metrics, CounterValueDoesNotCreate) {
  MetricsRegistry Reg;
  EXPECT_EQ(Reg.counterValue("never.recorded"), 0u);
  // The read must not have materialized the counter in snapshots.
  JsonValue V;
  ASSERT_TRUE(JsonValue::parse(Reg.toJson(), V));
  EXPECT_EQ(V.find("counters")->members().size(), 0u);
}

TEST(Metrics, HistogramTracksRunningStats) {
  MetricsRegistry Reg;
  Histogram &H = Reg.histogram("solve.pivots");
  EXPECT_EQ(H.stats().Count, 0u);
  EXPECT_EQ(H.stats().mean(), 0.0);
  for (double Sample : {4.0, 1.0, 7.0})
    H.record(Sample);
  Histogram::Stats S = H.stats();
  EXPECT_EQ(S.Count, 3u);
  EXPECT_EQ(S.Sum, 12.0);
  EXPECT_EQ(S.Min, 1.0);
  EXPECT_EQ(S.Max, 7.0);
  EXPECT_EQ(S.mean(), 4.0);
}

TEST(Metrics, ScopedTimerRecordsExactlyOnce) {
  MetricsRegistry Reg;
  Histogram &H = Reg.histogram("phase.seconds");
  {
    ScopedTimer T(&H);
    EXPECT_GE(T.seconds(), 0.0);
    EXPECT_EQ(H.stats().Count, 0u); // polling must not record
    double Elapsed = T.stop();
    EXPECT_EQ(T.stop(), Elapsed); // idempotent
  }
  // stop() recorded; destruction must not double-record.
  EXPECT_EQ(H.stats().Count, 1u);
  { ScopedTimer T(&H); } // destructor path records too
  EXPECT_EQ(H.stats().Count, 2u);
  { ScopedTimer NoSink; } // and no sink is fine
}

TEST(Metrics, SnapshotIsSortedAndDeterministic) {
  auto populate = [](MetricsRegistry &Reg) {
    // Insertion order deliberately unsorted.
    Reg.counter("zeta").add(3);
    Reg.counter("alpha").add(1);
    Reg.gauge("level").set(2.5);
    Reg.histogram("span").record(4.0);
  };
  MetricsRegistry A, B;
  populate(A);
  populate(B);
  EXPECT_EQ(A.toJson(), B.toJson());

  JsonValue V;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(A.toJson(), V, &Error)) << Error;
  EXPECT_EQ(V.find("schema")->string(), "ramloc-metrics-v1");
  const auto &Counters = V.find("counters")->members();
  ASSERT_EQ(Counters.size(), 2u);
  EXPECT_EQ(Counters[0].first, "alpha"); // sorted by name
  EXPECT_EQ(Counters[1].first, "zeta");
  EXPECT_EQ(Counters[1].second.number(), 3.0);
  EXPECT_EQ(V.find("gauges")->find("level")->number(), 2.5);
  const JsonValue *Span = V.find("histograms")->find("span");
  ASSERT_NE(Span, nullptr);
  EXPECT_EQ(Span->find("count")->number(), 1.0);
  EXPECT_EQ(Span->find("mean")->number(), 4.0);
}

namespace {

GridSpec modelOnlyGrid() {
  GridSpec Grid;
  Grid.Benchmarks = {"crc32"};
  Grid.RsparePoints = {128, 256, 512};
  Grid.Kind = JobKind::ModelOnly;
  return Grid;
}

} // namespace

TEST(Metrics, SummaryFieldsAreViewsOverTheRegistry) {
  MetricsRegistry Reg;
  CampaignOptions Opts;
  Opts.Metrics = &Reg;
  CampaignResult CR = runCampaign(modelOnlyGrid(), Opts);

  EXPECT_EQ(CR.Summary.Extractions,
            Reg.counterValue("campaign.solve.extractions"));
  EXPECT_EQ(CR.Summary.ColdSolves, Reg.counterValue("campaign.solve.cold"));
  EXPECT_EQ(CR.Summary.WarmSolves, Reg.counterValue("campaign.solve.warm"));
  EXPECT_EQ(CR.Summary.IncumbentSeeds,
            Reg.counterValue("campaign.solve.incumbent_seeds"));
  EXPECT_EQ(CR.Summary.FullSims,
            Reg.counterValue("campaign.sim.full_sims"));
  EXPECT_EQ(CR.Summary.Recosts, Reg.counterValue("campaign.sim.recosts"));
  EXPECT_EQ(CR.Summary.UniqueRuns,
            Reg.counterValue("campaign.jobs.unique"));
  EXPECT_EQ(CR.Summary.CacheHits,
            Reg.counterValue("campaign.cache.hits"));
  // The known shape of a 3-knob-point solve group.
  EXPECT_EQ(CR.Summary.Extractions, 1u);
  EXPECT_EQ(CR.Summary.ColdSolves, 1u);
  EXPECT_EQ(CR.Summary.WarmSolves, 2u);
  // Solve effort histograms recorded one sample per solve.
  EXPECT_EQ(Reg.histogram("campaign.solve.nodes").stats().Count, 3u);
  EXPECT_EQ(Reg.histogram("campaign.wall_seconds").stats().Count, 1u);
}

TEST(Metrics, SharedRegistryStillYieldsPerCampaignSummaries) {
  MetricsRegistry Reg;
  CampaignOptions Opts;
  Opts.Metrics = &Reg;
  CampaignResult First = runCampaign(modelOnlyGrid(), Opts);
  CampaignResult Second = runCampaign(modelOnlyGrid(), Opts);

  // The registry accumulated both campaigns...
  EXPECT_EQ(Reg.counterValue("campaign.solve.extractions"), 2u);
  EXPECT_EQ(Reg.counterValue("campaign.solve.warm"), 4u);
  // ...but each Summary is windowed to its own campaign.
  EXPECT_EQ(Second.Summary.Extractions, First.Summary.Extractions);
  EXPECT_EQ(Second.Summary.ColdSolves, First.Summary.ColdSolves);
  EXPECT_EQ(Second.Summary.WarmSolves, First.Summary.WarmSolves);
  EXPECT_EQ(Second.Summary.UniqueRuns, First.Summary.UniqueRuns);
}

TEST(Metrics, TelemetryNeverChangesReports) {
  // No registry, no recorder: the reference run.
  CampaignResult Plain = runCampaign(modelOnlyGrid());

  // Registry attached and a trace recorder installed: the report must be
  // byte-identical — telemetry is a side channel by contract.
  MetricsRegistry Reg;
  TraceRecorder Recorder;
  Recorder.install();
  CampaignOptions Opts;
  Opts.Metrics = &Reg;
  Opts.Jobs = 4;
  CampaignResult Instrumented = runCampaign(modelOnlyGrid(), Opts);
  TraceRecorder::uninstall();

  EXPECT_EQ(campaignToJson(Plain), campaignToJson(Instrumented));
  EXPECT_GT(Recorder.eventCount(), 0u);
  EXPECT_GT(Reg.counterValue("campaign.solve.extractions"), 0u);
}
