//===- lp/Simplex.cpp - two-phase primal simplex ------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
//
// Implementation notes. The problem is converted to standard form:
//   - every variable is shifted by its (finite) lower bound so x' >= 0;
//   - finite upper bounds become explicit rows x' <= hi - lo;
//   - fixed variables (lo == hi) are substituted into RHS and dropped;
//   - rows are normalised to non-negative RHS; <= rows get a slack, >= rows
//     a surplus plus an artificial, == rows an artificial.
// Phase 1 minimises the artificial sum; phase 2 the true objective. Dantzig
// pricing with a Bland fallback once degeneracy stalls progress.
//
// The warm path (WarmState, at the bottom of this file) uses a different
// standard form: every variable keeps its column — fixed variables are NOT
// substituted out — and every integer variable gets explicit upper and
// lower bound rows. Branch & bound bound changes and knob-row RHS patches
// are then pure RHS updates: adding delta * (the row's identity-start
// column) to the RHS column retargets the solved tableau in O(rows), after
// which the dual simplex restores primal feasibility from the still
// dual-feasible parent basis.
//
//===----------------------------------------------------------------------===//

#include "lp/Simplex.h"

#include <algorithm>
#include <cmath>

using namespace ramloc;

const char *ramloc::lpStatusName(LpStatus S) {
  switch (S) {
  case LpStatus::Optimal:
    return "optimal";
  case LpStatus::Infeasible:
    return "infeasible";
  case LpStatus::Unbounded:
    return "unbounded";
  case LpStatus::IterLimit:
    return "iteration-limit";
  }
  return "?";
}

bool LpProblem::isFeasible(const std::vector<double> &X, double Tol) const {
  if (X.size() != Variables.size())
    return false;
  for (unsigned J = 0, E = numVariables(); J != E; ++J)
    if (X[J] < Variables[J].Lower - Tol || X[J] > Variables[J].Upper + Tol)
      return false;
  for (const LpConstraint &C : Constraints) {
    double Lhs = 0.0;
    for (const auto &[Var, Coef] : C.Terms)
      Lhs += Coef * X[Var];
    switch (C.Sense) {
    case ConstraintSense::LessEq:
      if (Lhs > C.Rhs + Tol)
        return false;
      break;
    case ConstraintSense::GreaterEq:
      if (Lhs < C.Rhs - Tol)
        return false;
      break;
    case ConstraintSense::Equal:
      if (std::abs(Lhs - C.Rhs) > Tol)
        return false;
      break;
    }
  }
  return true;
}

namespace {

/// Dense tableau: Rows x Cols, column Cols-1 is the RHS, row Rows-1 the
/// objective under optimisation (phase 1 or 2).
class Tableau {
public:
  Tableau(const LpProblem &P, const std::vector<double> &Lower,
          const std::vector<double> &Upper, const SimplexOptions &Opts)
      : P(P), Opts(Opts), Lower(Lower), Upper(Upper) {}

  LpSolution solve() {
    LpSolution Sol;
    if (!build()) {
      Sol.Status = LpStatus::Infeasible;
      return Sol;
    }

    // Phase 1: minimise artificial sum (already priced into row Obj).
    if (NumArtificials > 0) {
      LpStatus S = iterate(/*Phase1=*/true);
      if (S != LpStatus::Optimal) {
        Sol.Status = S == LpStatus::Unbounded ? LpStatus::Infeasible : S;
        Sol.Iterations = Iterations;
        return Sol;
      }
      if (T[ObjRow][RhsCol] < -Opts.Tolerance) {
        Sol.Status = LpStatus::Infeasible;
        Sol.Iterations = Iterations;
        return Sol;
      }
      pivotOutArtificials();
      installPhase2Objective();
    }

    LpStatus S = iterate(/*Phase1=*/false);
    Sol.Status = S;
    Sol.Iterations = Iterations;
    if (S != LpStatus::Optimal)
      return Sol;

    Sol.Basis = Basis;
    Sol.Values.assign(P.numVariables(), 0.0);
    for (unsigned J = 0, E = P.numVariables(); J != E; ++J)
      Sol.Values[J] = Lower[J];
    for (unsigned R = 0; R != NumRows; ++R) {
      unsigned Col = Basis[R];
      if (Col < NumStructural) {
        unsigned Var = StructuralVar[Col];
        Sol.Values[Var] = Lower[Var] + T[R][RhsCol];
      }
    }
    Sol.Objective = P.objectiveValue(Sol.Values);
    return Sol;
  }

private:
  /// Builds the standard-form tableau; returns false on trivially
  /// inconsistent fixed-variable rows.
  bool build() {
    unsigned NV = P.numVariables();
    // Structural columns: non-fixed variables.
    StructuralVar.clear();
    VarColumn.assign(NV, UINT32_MAX);
    for (unsigned J = 0; J != NV; ++J) {
      if (Upper[J] - Lower[J] > Opts.Tolerance) {
        VarColumn[J] = static_cast<unsigned>(StructuralVar.size());
        StructuralVar.push_back(J);
      }
    }
    NumStructural = static_cast<unsigned>(StructuralVar.size());

    // Row list: original constraints + upper-bound rows.
    struct Row {
      std::vector<std::pair<unsigned, double>> Terms; // column, coef
      ConstraintSense Sense;
      double Rhs;
    };
    std::vector<Row> Rows;
    for (const LpConstraint &C : P.Constraints) {
      Row R;
      R.Sense = C.Sense;
      R.Rhs = C.Rhs;
      for (const auto &[Var, Coef] : C.Terms) {
        R.Rhs -= Coef * Lower[Var]; // shift by lower bound
        if (VarColumn[Var] != UINT32_MAX)
          R.Terms.push_back({VarColumn[Var], Coef});
        // fixed variables contribute only via the shift above
      }
      if (R.Terms.empty()) {
        // Constant row: must hold on its own.
        bool OK = true;
        switch (R.Sense) {
        case ConstraintSense::LessEq:
          OK = R.Rhs >= -1e-7;
          break;
        case ConstraintSense::GreaterEq:
          OK = R.Rhs <= 1e-7;
          break;
        case ConstraintSense::Equal:
          OK = std::abs(R.Rhs) <= 1e-7;
          break;
        }
        if (!OK)
          return false;
        continue;
      }
      Rows.push_back(std::move(R));
    }
    for (unsigned Col = 0; Col != NumStructural; ++Col) {
      unsigned Var = StructuralVar[Col];
      if (!std::isfinite(Upper[Var]))
        continue;
      Row R;
      R.Sense = ConstraintSense::LessEq;
      R.Rhs = Upper[Var] - Lower[Var];
      R.Terms.push_back({Col, 1.0});
      Rows.push_back(std::move(R));
    }

    NumRows = static_cast<unsigned>(Rows.size());

    // Count slack and artificial columns after RHS normalisation.
    unsigned NumSlacks = 0;
    NumArtificials = 0;
    for (Row &R : Rows) {
      if (R.Rhs < 0) {
        R.Rhs = -R.Rhs;
        for (auto &[Col, Coef] : R.Terms)
          Coef = -Coef;
        if (R.Sense == ConstraintSense::LessEq)
          R.Sense = ConstraintSense::GreaterEq;
        else if (R.Sense == ConstraintSense::GreaterEq)
          R.Sense = ConstraintSense::LessEq;
      }
      if (R.Sense != ConstraintSense::Equal)
        ++NumSlacks;
      if (R.Sense != ConstraintSense::LessEq)
        ++NumArtificials;
    }

    NumCols = NumStructural + NumSlacks + NumArtificials;
    RhsCol = NumCols;
    ObjRow = NumRows;
    T.assign(NumRows + 1, std::vector<double>(NumCols + 1, 0.0));
    Basis.assign(NumRows, 0);
    ArtificialStart = NumStructural + NumSlacks;

    unsigned SlackCursor = NumStructural;
    unsigned ArtCursor = ArtificialStart;
    for (unsigned RI = 0; RI != NumRows; ++RI) {
      const Row &R = Rows[RI];
      for (const auto &[Col, Coef] : R.Terms)
        T[RI][Col] += Coef;
      T[RI][RhsCol] = R.Rhs;
      switch (R.Sense) {
      case ConstraintSense::LessEq:
        T[RI][SlackCursor] = 1.0;
        Basis[RI] = SlackCursor++;
        break;
      case ConstraintSense::GreaterEq:
        T[RI][SlackCursor] = -1.0;
        ++SlackCursor;
        T[RI][ArtCursor] = 1.0;
        Basis[RI] = ArtCursor++;
        break;
      case ConstraintSense::Equal:
        T[RI][ArtCursor] = 1.0;
        Basis[RI] = ArtCursor++;
        break;
      }
    }

    if (NumArtificials > 0) {
      // Phase-1 objective: minimise sum of artificials. Express the
      // objective row in terms of non-basic columns: row_obj = -sum of
      // rows with artificial basics.
      for (unsigned RI = 0; RI != NumRows; ++RI) {
        if (Basis[RI] < ArtificialStart)
          continue;
        for (unsigned C = 0; C <= NumCols; ++C)
          T[ObjRow][C] -= T[RI][C];
        // keep the artificial's own column zeroed in the objective
        T[ObjRow][Basis[RI]] = 0.0;
      }
    } else {
      installPhase2Objective();
    }
    return true;
  }

  /// Loads the real objective into the objective row, priced out against
  /// the current basis.
  void installPhase2Objective() {
    for (unsigned C = 0; C <= NumCols; ++C)
      T[ObjRow][C] = 0.0;
    for (unsigned Col = 0; Col != NumStructural; ++Col)
      T[ObjRow][Col] = P.Variables[StructuralVar[Col]].Objective;
    // Price out basic variables.
    for (unsigned RI = 0; RI != NumRows; ++RI) {
      unsigned BCol = Basis[RI];
      double Cost = T[ObjRow][BCol];
      if (std::abs(Cost) < Opts.Tolerance)
        continue;
      for (unsigned C = 0; C <= NumCols; ++C)
        T[ObjRow][C] -= Cost * T[RI][C];
    }
  }

  /// After phase 1, force remaining (degenerate) artificial basics out of
  /// the basis where possible.
  void pivotOutArtificials() {
    for (unsigned RI = 0; RI != NumRows; ++RI) {
      if (Basis[RI] < ArtificialStart)
        continue;
      for (unsigned C = 0; C != ArtificialStart; ++C) {
        if (std::abs(T[RI][C]) > 1e-7) {
          pivot(RI, C);
          break;
        }
      }
    }
  }

  /// Primal simplex iterations on the current objective row. In phase 1
  /// artificial columns may re-enter; in phase 2 they are barred.
  LpStatus iterate(bool Phase1) {
    unsigned StallCount = 0;
    double LastObj = T[ObjRow][RhsCol];
    while (Iterations < Opts.MaxIterations) {
      ++Iterations;
      unsigned Limit = Phase1 ? NumCols : ArtificialStart;
      bool Bland = Opts.ForceBland || StallCount > NumRows + 16;

      // Entering column: most negative reduced cost (Dantzig), or first
      // negative (Bland) when stalled.
      int Entering = -1;
      double Best = -Opts.Tolerance;
      for (unsigned C = 0; C != Limit; ++C) {
        double RC = T[ObjRow][C];
        if (RC < Best) {
          Entering = static_cast<int>(C);
          if (Bland)
            break;
          Best = RC;
        }
      }
      if (Entering < 0)
        return LpStatus::Optimal;

      // Leaving row: minimum ratio test (Bland tie-break on basis index).
      int Leaving = -1;
      double BestRatio = 0.0;
      for (unsigned R = 0; R != NumRows; ++R) {
        double A = T[R][static_cast<unsigned>(Entering)];
        if (A <= Opts.Tolerance)
          continue;
        double Ratio = T[R][RhsCol] / A;
        if (Leaving < 0 || Ratio < BestRatio - Opts.Tolerance ||
            (Ratio < BestRatio + Opts.Tolerance &&
             Basis[R] < Basis[static_cast<unsigned>(Leaving)])) {
          Leaving = static_cast<int>(R);
          BestRatio = Ratio;
        }
      }
      if (Leaving < 0)
        return LpStatus::Unbounded;

      pivot(static_cast<unsigned>(Leaving),
            static_cast<unsigned>(Entering));

      double Obj = T[ObjRow][RhsCol];
      if (std::abs(Obj - LastObj) < Opts.Tolerance)
        ++StallCount;
      else
        StallCount = 0;
      LastObj = Obj;
    }
    return LpStatus::IterLimit;
  }

  void pivot(unsigned Row, unsigned Col) {
    double Pivot = T[Row][Col];
    for (unsigned C = 0; C <= NumCols; ++C)
      T[Row][C] /= Pivot;
    for (unsigned R = 0; R <= NumRows; ++R) {
      if (R == Row)
        continue;
      double Factor = T[R][Col];
      if (std::abs(Factor) < 1e-12)
        continue;
      for (unsigned C = 0; C <= NumCols; ++C)
        T[R][C] -= Factor * T[Row][C];
      T[R][Col] = 0.0; // cut numerical drift
    }
    Basis[Row] = Col;
  }

  const LpProblem &P;
  const SimplexOptions &Opts;
  const std::vector<double> &Lower;
  const std::vector<double> &Upper;

  std::vector<std::vector<double>> T;
  std::vector<unsigned> Basis;
  std::vector<unsigned> StructuralVar; ///< column -> original variable
  std::vector<unsigned> VarColumn;     ///< variable -> column (or UINT32_MAX)
  unsigned NumStructural = 0;
  unsigned NumRows = 0;
  unsigned NumCols = 0;
  unsigned RhsCol = 0;
  unsigned ObjRow = 0;
  unsigned NumArtificials = 0;
  unsigned ArtificialStart = 0;
  unsigned Iterations = 0;
};

} // namespace

LpSolution ramloc::solveLpWithBounds(const LpProblem &P,
                                     const std::vector<double> &Lower,
                                     const std::vector<double> &Upper,
                                     const SimplexOptions &Opts) {
  assert(Lower.size() == P.numVariables() &&
         Upper.size() == P.numVariables() && "bounds size mismatch");
  Tableau Tab(P, Lower, Upper, Opts);
  return Tab.solve();
}

LpSolution ramloc::solveLp(const LpProblem &P, const SimplexOptions &Opts) {
  std::vector<double> Lower(P.numVariables()), Upper(P.numVariables());
  for (unsigned J = 0, E = P.numVariables(); J != E; ++J) {
    Lower[J] = P.Variables[J].Lower;
    Upper[J] = P.Variables[J].Upper;
  }
  return solveLpWithBounds(P, Lower, Upper, Opts);
}

//===----------------------------------------------------------------------===//
// Warm path: re-optimizable tableau with explicit bound rows.
//===----------------------------------------------------------------------===//

namespace ramloc {

/// The retained standard form. Unlike the cold Tableau, every variable is
/// structural (column j is variable j, shifted by its *root* lower bound)
/// and integer variables carry explicit bound rows:
///
///   x'_j <= hi_j - rootLo_j          (all vars with finite upper)
///   -x'_j <= -(lo_j - rootLo_j)      (integer vars only; trivial at root)
///
/// so the bound changes branch & bound makes — and any constraint RHS
/// patch, e.g. the placement model's knob rows — are RHS-only updates.
/// Each row records the column that started as its identity vector (its
/// slack or artificial); after any sequence of pivots that column holds
/// B^-1 e_row, so "RHS of row r moved by delta" is applied as
/// RhsCol += delta * column(IdCol[r]) over every row including the
/// objective (whose entry at the identity column is the row's dual
/// price). Reduced costs are untouched by patches and are recomputed
/// only when the tableau is rebuilt; the needsRefactor() pivot budget is
/// what bounds drift across the thousands of pivots a search tree makes.
struct WarmState {
  // Structure signature: a handle is only reusable against the problem
  // shape it was built from.
  unsigned NumVars = 0;
  unsigned NumCons = 0;
  size_t TermSum = 0;

  std::vector<double> RootLo; ///< shift applied to every column

  /// Flat row-major tableau ((NumRows + 1) x (NumCols + 1)); the warm
  /// path lives in pivots, so the layout is optimized for them: rows are
  /// contiguous, and pivot() walks a nonzero-index list of the pivot row
  /// instead of the full width (placement tableaus stay fairly sparse).
  std::vector<double> T;
  std::vector<unsigned> NzScratch; ///< pivot-row nonzeros, reused
  std::vector<unsigned> Basis;
  unsigned NumRows = 0;
  unsigned NumCols = 0;
  unsigned RhsCol = 0;
  unsigned ObjRow = 0;
  unsigned Stride = 0;
  unsigned NumArtificials = 0;
  unsigned ArtificialStart = 0;

  double *row(unsigned R) { return T.data() + size_t(R) * Stride; }
  const double *row(unsigned R) const {
    return T.data() + size_t(R) * Stride;
  }

  std::vector<int> ConsRow;    ///< constraint index -> tableau row (-1 none)
  std::vector<int> UpperRowOf; ///< variable -> upper-bound row (-1 none)
  std::vector<int> LowerRowOf; ///< variable -> lower-bound row (-1 none)
  std::vector<unsigned> RowIdCol; ///< row -> identity-start column
  /// Row -> the factor its original-orientation data was multiplied by
  /// when stored: the build-time sign flip times the equilibration scale.
  /// The placement model mixes +-1 McCormick rows with Fb*Tb cycle rows
  /// around 1e7, and a tableau that lives across thousands of pivots
  /// cannot survive that spread with absolute tolerances — each row is
  /// normalized to unit max-coefficient at build, which keeps every
  /// tolerance meaningful. Solution values are unaffected (row scaling
  /// never moves the feasible set).
  std::vector<double> RowScale;
  /// The objective row is priced in units of the largest |c_j| for the
  /// same reason; extract() reports the true objective from the values.
  double ObjScale = 1.0;

  /// The bound/RHS values the tableau currently encodes.
  std::vector<double> AppliedLo, AppliedHi, AppliedRhs;

  /// False until a solve leaves a re-optimizable (dual-feasible) basis.
  bool Usable = false;

  /// Pivots performed since the tableau was built. Dense tableau updates
  /// accumulate rounding with every pivot; past a generous budget the
  /// handle is rebuilt from the original data (the dense analogue of
  /// periodic refactorization), bounding worst-case drift at a cost of
  /// one cold solve per ~64 * rows pivots.
  uint64_t PivotsSinceBuild = 0;

  bool needsRefactor() const {
    return PivotsSinceBuild > 64ull * (NumRows + 1);
  }

  bool matches(const LpProblem &P) const {
    if (P.numVariables() != NumVars || P.numConstraints() != NumCons)
      return false;
    size_t Terms = 0;
    for (const LpConstraint &C : P.Constraints)
      Terms += C.Terms.size();
    return Terms == TermSum;
  }

  /// Builds the tableau at the given bounds. Returns false when a
  /// zero-term constraint is inconsistent on its own (the problem is
  /// trivially infeasible).
  bool build(const LpProblem &P, const std::vector<double> &Lower,
             const std::vector<double> &Upper, const SimplexOptions &Opts);
  void installObjective(const LpProblem &P, const SimplexOptions &Opts);
  void pivotOutArtificials();
  LpStatus primalIterate(bool Phase1, const SimplexOptions &Opts,
                         unsigned &Iterations);
  LpStatus dualIterate(const SimplexOptions &Opts, unsigned &Iterations);
  void pivot(unsigned Row, unsigned Col);
  /// Applies bound/RHS differences against the Applied* state as RHS
  /// patches over the constraint rows (the objective row is re-priced by
  /// installObjective afterwards).
  void patchTo(const LpProblem &P, const std::vector<double> &Lower,
               const std::vector<double> &Upper);
  void extract(const LpProblem &P, LpSolution &Sol) const;
  /// Two-phase primal solve of the freshly built tableau.
  LpSolution solveFresh(const LpProblem &P, const SimplexOptions &Opts);
};

} // namespace ramloc

bool WarmState::build(const LpProblem &P, const std::vector<double> &Lower,
                      const std::vector<double> &Upper,
                      const SimplexOptions &Opts) {
  NumVars = P.numVariables();
  NumCons = P.numConstraints();
  TermSum = 0;
  Usable = false;

  RootLo.assign(NumVars, 0.0);
  for (unsigned J = 0; J != NumVars; ++J)
    RootLo[J] = P.Variables[J].Lower;

  struct Row {
    std::vector<std::pair<unsigned, double>> Terms;
    ConstraintSense Sense;
    double Rhs;
    int Cons = -1;    ///< original constraint index
    int UpperOf = -1; ///< variable whose upper bound this row is
    int LowerOf = -1; ///< variable whose lower bound this row is
  };
  std::vector<Row> Rows;

  ConsRow.assign(NumCons, -1);
  AppliedRhs.assign(NumCons, 0.0);
  for (unsigned I = 0; I != NumCons; ++I) {
    const LpConstraint &C = P.Constraints[I];
    TermSum += C.Terms.size();
    AppliedRhs[I] = C.Rhs;
    Row R;
    R.Sense = C.Sense;
    R.Rhs = C.Rhs;
    R.Cons = static_cast<int>(I);
    // Coalesce repeated variables and shift by the root lower bounds.
    std::vector<double> Coef(NumVars, 0.0);
    for (const auto &[Var, C2] : C.Terms) {
      Coef[Var] += C2;
      R.Rhs -= C2 * RootLo[Var];
    }
    for (unsigned J = 0; J != NumVars; ++J)
      if (Coef[J] != 0.0)
        R.Terms.push_back({J, Coef[J]});
    if (R.Terms.empty()) {
      bool OK = true;
      switch (R.Sense) {
      case ConstraintSense::LessEq:
        OK = R.Rhs >= -1e-7;
        break;
      case ConstraintSense::GreaterEq:
        OK = R.Rhs <= 1e-7;
        break;
      case ConstraintSense::Equal:
        OK = std::abs(R.Rhs) <= 1e-7;
        break;
      }
      if (!OK)
        return false;
      continue;
    }
    Rows.push_back(std::move(R));
  }

  UpperRowOf.assign(NumVars, -1);
  LowerRowOf.assign(NumVars, -1);
  AppliedLo = Lower;
  AppliedHi = Upper;
  for (unsigned J = 0; J != NumVars; ++J) {
    if (std::isfinite(Upper[J])) {
      Row R;
      R.Sense = ConstraintSense::LessEq;
      R.Rhs = Upper[J] - RootLo[J];
      R.Terms.push_back({J, 1.0});
      R.UpperOf = static_cast<int>(J);
      Rows.push_back(std::move(R));
    }
    if (P.Variables[J].Integer) {
      Row R;
      R.Sense = ConstraintSense::LessEq;
      R.Rhs = -(Lower[J] - RootLo[J]);
      R.Terms.push_back({J, -1.0});
      R.LowerOf = static_cast<int>(J);
      Rows.push_back(std::move(R));
    }
  }

  NumRows = static_cast<unsigned>(Rows.size());
  RowIdCol.assign(NumRows, 0);
  RowScale.assign(NumRows, 1.0);

  unsigned NumSlacks = 0;
  NumArtificials = 0;
  for (unsigned RI = 0; RI != NumRows; ++RI) {
    Row &R = Rows[RI];
    if (R.Rhs < 0) {
      RowScale[RI] = -1.0;
      R.Rhs = -R.Rhs;
      for (auto &[Col, Coef] : R.Terms)
        Coef = -Coef;
      if (R.Sense == ConstraintSense::LessEq)
        R.Sense = ConstraintSense::GreaterEq;
      else if (R.Sense == ConstraintSense::GreaterEq)
        R.Sense = ConstraintSense::LessEq;
    }
    // Equilibrate: normalize the row to unit max-coefficient.
    double MaxCoef = 0.0;
    for (const auto &[Col, Coef] : R.Terms)
      MaxCoef = std::max(MaxCoef, std::abs(Coef));
    if (MaxCoef > 0.0 && MaxCoef != 1.0) {
      double S = 1.0 / MaxCoef;
      for (auto &[Col, Coef] : R.Terms)
        Coef *= S;
      R.Rhs *= S;
      RowScale[RI] *= S;
    }
    if (R.Sense != ConstraintSense::Equal)
      ++NumSlacks;
    if (R.Sense != ConstraintSense::LessEq)
      ++NumArtificials;
  }

  ArtificialStart = NumVars + NumSlacks;
  NumCols = ArtificialStart + NumArtificials;
  RhsCol = NumCols;
  ObjRow = NumRows;
  Stride = NumCols + 1;
  T.assign(size_t(NumRows + 1) * Stride, 0.0);
  Basis.assign(NumRows, 0);
  PivotsSinceBuild = 0;

  unsigned SlackCursor = NumVars;
  unsigned ArtCursor = ArtificialStart;
  for (unsigned RI = 0; RI != NumRows; ++RI) {
    const Row &R = Rows[RI];
    if (R.Cons >= 0)
      ConsRow[static_cast<unsigned>(R.Cons)] = static_cast<int>(RI);
    if (R.UpperOf >= 0)
      UpperRowOf[static_cast<unsigned>(R.UpperOf)] = static_cast<int>(RI);
    if (R.LowerOf >= 0)
      LowerRowOf[static_cast<unsigned>(R.LowerOf)] = static_cast<int>(RI);
    double *Tr = row(RI);
    for (const auto &[Col, Coef] : R.Terms)
      Tr[Col] += Coef;
    Tr[RhsCol] = R.Rhs;
    switch (R.Sense) {
    case ConstraintSense::LessEq:
      Tr[SlackCursor] = 1.0;
      RowIdCol[RI] = SlackCursor;
      Basis[RI] = SlackCursor++;
      break;
    case ConstraintSense::GreaterEq:
      Tr[SlackCursor] = -1.0;
      ++SlackCursor;
      Tr[ArtCursor] = 1.0;
      RowIdCol[RI] = ArtCursor;
      Basis[RI] = ArtCursor++;
      break;
    case ConstraintSense::Equal:
      Tr[ArtCursor] = 1.0;
      RowIdCol[RI] = ArtCursor;
      Basis[RI] = ArtCursor++;
      break;
    }
  }
  // Stored rows are flipped/scaled relative to their original
  // orientation, so their identity-start columns track B^-1 e_r of the
  // *stored* system; RowScale folds the flip and the equilibration back
  // in when a patch arrives as an original-orientation delta.

  if (NumArtificials > 0) {
    double *Obj = row(ObjRow);
    for (unsigned RI = 0; RI != NumRows; ++RI) {
      if (Basis[RI] < ArtificialStart)
        continue;
      const double *Tr = row(RI);
      for (unsigned C = 0; C <= NumCols; ++C)
        Obj[C] -= Tr[C];
      Obj[Basis[RI]] = 0.0;
    }
  } else {
    installObjective(P, Opts);
  }
  return true;
}

void WarmState::installObjective(const LpProblem &P,
                                 const SimplexOptions &Opts) {
  double MaxC = 0.0;
  for (unsigned J = 0; J != NumVars; ++J)
    MaxC = std::max(MaxC, std::abs(P.Variables[J].Objective));
  ObjScale = MaxC > 0.0 ? 1.0 / MaxC : 1.0;

  double *Obj = row(ObjRow);
  for (unsigned C = 0; C <= NumCols; ++C)
    Obj[C] = 0.0;
  for (unsigned J = 0; J != NumVars; ++J)
    Obj[J] = P.Variables[J].Objective * ObjScale;
  for (unsigned RI = 0; RI != NumRows; ++RI) {
    unsigned BCol = Basis[RI];
    double Cost = Obj[BCol];
    if (std::abs(Cost) < Opts.Tolerance)
      continue;
    const double *Tr = row(RI);
    for (unsigned C = 0; C <= NumCols; ++C)
      Obj[C] -= Cost * Tr[C];
  }
}

void WarmState::pivotOutArtificials() {
  for (unsigned RI = 0; RI != NumRows; ++RI) {
    if (Basis[RI] < ArtificialStart)
      continue;
    const double *Tr = row(RI);
    for (unsigned C = 0; C != ArtificialStart; ++C) {
      if (std::abs(Tr[C]) > 1e-7) {
        pivot(RI, C);
        break;
      }
    }
  }
}

LpStatus WarmState::primalIterate(bool Phase1, const SimplexOptions &Opts,
                                  unsigned &Iterations) {
  unsigned StallCount = 0;
  double LastObj = row(ObjRow)[RhsCol];
  while (Iterations < Opts.MaxIterations) {
    ++Iterations;
    unsigned Limit = Phase1 ? NumCols : ArtificialStart;
    bool Bland = Opts.ForceBland || StallCount > NumRows + 16;

    const double *Obj = row(ObjRow);
    int Entering = -1;
    double Best = -Opts.Tolerance;
    for (unsigned C = 0; C != Limit; ++C) {
      double RC = Obj[C];
      if (RC < Best) {
        Entering = static_cast<int>(C);
        if (Bland)
          break;
        Best = RC;
      }
    }
    if (Entering < 0)
      return LpStatus::Optimal;

    int Leaving = -1;
    double BestRatio = 0.0;
    for (unsigned R = 0; R != NumRows; ++R) {
      const double *Tr = row(R);
      double A = Tr[static_cast<unsigned>(Entering)];
      if (A <= Opts.Tolerance)
        continue;
      double Ratio = Tr[RhsCol] / A;
      if (Leaving < 0 || Ratio < BestRatio - Opts.Tolerance ||
          (Ratio < BestRatio + Opts.Tolerance &&
           Basis[R] < Basis[static_cast<unsigned>(Leaving)])) {
        Leaving = static_cast<int>(R);
        BestRatio = Ratio;
      }
    }
    if (Leaving < 0)
      return LpStatus::Unbounded;

    pivot(static_cast<unsigned>(Leaving), static_cast<unsigned>(Entering));

    double NewObj = row(ObjRow)[RhsCol];
    if (std::abs(NewObj - LastObj) < Opts.Tolerance)
      ++StallCount;
    else
      StallCount = 0;
    LastObj = NewObj;
  }
  return LpStatus::IterLimit;
}

LpStatus WarmState::dualIterate(const SimplexOptions &Opts,
                                unsigned &Iterations) {
  unsigned StallCount = 0;
  double LastObj = row(ObjRow)[RhsCol];
  while (Iterations < Opts.MaxIterations) {
    // Leaving row: most negative basic value; ties broken on the smaller
    // basis index for determinism.
    int Leaving = -1;
    double MostNeg = 0.0;
    for (unsigned R = 0; R != NumRows; ++R) {
      double V = row(R)[RhsCol];
      if (V >= -Opts.Tolerance)
        continue;
      if (Leaving < 0 || V < MostNeg - Opts.Tolerance ||
          (V < MostNeg + Opts.Tolerance &&
           Basis[R] < Basis[static_cast<unsigned>(Leaving)])) {
        Leaving = static_cast<int>(R);
        MostNeg = V;
      }
    }
    if (Leaving < 0)
      return LpStatus::Optimal; // primal feasible again

    ++Iterations;
    bool Bland = Opts.ForceBland || StallCount > NumRows + 16;

    // Entering column: dual ratio test over eligible columns (artificials
    // must stay out — letting one re-enter would relax its == / >= row).
    // Unlike the primal ratio test, which naturally shuns tiny pivot
    // elements (they give huge ratios), the dual test would happily pick
    // them — a degenerate row with reduced cost 0 over a 1e-9 coefficient
    // "wins" the ratio test and then destroys the tableau when the pivot
    // divides by it. So pivoting requires a minimum magnitude, near-tied
    // ratios prefer the larger pivot element, and when only sub-threshold
    // negative coefficients remain the row is neither reparable nor
    // provably infeasible: give up with IterLimit and let the caller
    // rebuild cold.
    constexpr double PivotTol = 1e-7;
    unsigned LR = static_cast<unsigned>(Leaving);
    const double *Lrow = row(LR);
    const double *Obj = row(ObjRow);
    int Entering = -1;
    double BestRatio = 0.0, BestMag = 0.0;
    bool SawTiny = false;
    for (unsigned C = 0; C != ArtificialStart; ++C) {
      double A = Lrow[C];
      if (A >= -Opts.Tolerance)
        continue;
      if (A > -PivotTol) {
        SawTiny = true;
        continue;
      }
      if (Bland && Entering >= 0)
        continue; // first eligible column wins
      double RC = std::max(Obj[C], 0.0);
      double Ratio = RC / (-A);
      if (Entering < 0 || Ratio < BestRatio - Opts.Tolerance ||
          (!Bland && Ratio < BestRatio + Opts.Tolerance && -A > BestMag)) {
        Entering = static_cast<int>(C);
        BestRatio = Ratio;
        BestMag = -A;
      }
    }
    if (Entering < 0)
      return SawTiny ? LpStatus::IterLimit : LpStatus::Infeasible;

    pivot(LR, static_cast<unsigned>(Entering));

    double NewObj = row(ObjRow)[RhsCol];
    if (std::abs(NewObj - LastObj) < Opts.Tolerance)
      ++StallCount;
    else
      StallCount = 0;
    LastObj = NewObj;
  }
  return LpStatus::IterLimit;
}

void WarmState::pivot(unsigned Row, unsigned Col) {
  ++PivotsSinceBuild;
  double *PR = row(Row);
  double Pivot = PR[Col];
  // A nonzero-index walk is arithmetically identical to the full-width
  // loop (subtracting Factor * 0 is a no-op) and much cheaper while the
  // pivot row is sparse; once fill-in has made it dense, the plain
  // contiguous loop vectorizes better than the indirection.
  NzScratch.clear();
  for (unsigned C = 0; C <= NumCols; ++C) {
    if (PR[C] == 0.0)
      continue;
    PR[C] /= Pivot;
    NzScratch.push_back(C);
  }
  bool Sparse = NzScratch.size() * 2 < NumCols;
  for (unsigned R = 0; R <= NumRows; ++R) {
    if (R == Row)
      continue;
    double *Tr = row(R);
    double Factor = Tr[Col];
    if (std::abs(Factor) < 1e-12)
      continue;
    if (Sparse) {
      for (unsigned C : NzScratch)
        Tr[C] -= Factor * PR[C];
    } else {
      for (unsigned C = 0; C <= NumCols; ++C)
        Tr[C] -= Factor * PR[C];
    }
    Tr[Col] = 0.0;
  }
  Basis[Row] = Col;
}

void WarmState::patchTo(const LpProblem &P, const std::vector<double> &Lower,
                        const std::vector<double> &Upper) {
  // One RHS patch: row r's original-orientation RHS moved by Delta. The
  // stored row may be the negation of the original (RowFlip), and after
  // pivots the row's identity-start column holds B^-1 e_r, so the whole
  // RHS column — including the objective row's, whose entry at the
  // identity column is the row's dual price — shifts by (flip * delta)
  // times that column.
  auto patchRow = [this](int Row, double Delta) {
    if (Row < 0 || Delta == 0.0)
      return;
    unsigned R0 = static_cast<unsigned>(Row);
    double D = RowScale[R0] * Delta;
    unsigned Id = RowIdCol[R0];
    for (unsigned R = 0; R <= NumRows; ++R) {
      double *Tr = row(R);
      Tr[RhsCol] += D * Tr[Id];
    }
  };

  for (unsigned I = 0; I != NumCons; ++I) {
    double New = P.Constraints[I].Rhs;
    patchRow(ConsRow[I], New - AppliedRhs[I]);
    AppliedRhs[I] = New;
  }
  for (unsigned J = 0; J != NumVars; ++J) {
    if (Upper[J] != AppliedHi[J]) {
      // Stored row: x' <= hi - rootLo, so delta is the raw bound move.
      assert(UpperRowOf[J] >= 0 && "bound change on a row-less variable");
      patchRow(UpperRowOf[J], Upper[J] - AppliedHi[J]);
      AppliedHi[J] = Upper[J];
    }
    if (Lower[J] != AppliedLo[J]) {
      // Stored row: -x' <= -(lo - rootLo): a raised bound lowers the RHS.
      assert(LowerRowOf[J] >= 0 && "bound change on a row-less variable");
      patchRow(LowerRowOf[J], -(Lower[J] - AppliedLo[J]));
      AppliedLo[J] = Lower[J];
    }
  }
}

void WarmState::extract(const LpProblem &P, LpSolution &Sol) const {
  Sol.Basis = Basis;
  Sol.Values.assign(NumVars, 0.0);
  for (unsigned J = 0; J != NumVars; ++J)
    Sol.Values[J] = RootLo[J];
  for (unsigned R = 0; R != NumRows; ++R)
    if (Basis[R] < NumVars)
      Sol.Values[Basis[R]] = RootLo[Basis[R]] + row(R)[RhsCol];
  Sol.Objective = P.objectiveValue(Sol.Values);
}

LpSolution WarmState::solveFresh(const LpProblem &P,
                                 const SimplexOptions &Opts) {
  LpSolution Sol;
  if (NumArtificials > 0) {
    LpStatus S = primalIterate(/*Phase1=*/true, Opts, Sol.Iterations);
    if (S != LpStatus::Optimal) {
      Sol.Status = S == LpStatus::Unbounded ? LpStatus::Infeasible : S;
      return Sol;
    }
    if (row(ObjRow)[RhsCol] < -Opts.Tolerance) {
      Sol.Status = LpStatus::Infeasible;
      return Sol;
    }
    pivotOutArtificials();
    installObjective(P, Opts);
  }
  Sol.Status = primalIterate(/*Phase1=*/false, Opts, Sol.Iterations);
  if (Sol.Status != LpStatus::Optimal)
    return Sol;
  Usable = true;
  extract(P, Sol);
  return Sol;
}

WarmStart::WarmStart() = default;
WarmStart::~WarmStart() = default;
WarmStart::WarmStart(WarmStart &&) noexcept = default;
WarmStart &WarmStart::operator=(WarmStart &&) noexcept = default;

bool WarmStart::valid() const { return S && S->Usable; }

void WarmStart::reset() { S.reset(); }

LpSolution ramloc::resolveLpFromBasis(const LpProblem &P,
                                      const std::vector<double> &Lower,
                                      const std::vector<double> &Upper,
                                      WarmStart &Warm,
                                      const SimplexOptions &Opts) {
  LpSolution Sol;
  if (!Warm.valid() || !Warm.S->matches(P))
    return Sol; // IterLimit: nothing to re-optimize from
  WarmState &W = *Warm.S;

  // Bounds/RHS diffs land as RHS patches (the objective row's entry
  // updates through the identity columns like any other row); the
  // reduced costs are untouched, so the basis stays dual feasible and the
  // dual simplex picks up directly. Drift from the incremental updates is
  // bounded by the periodic refactorization in solveLpWarm.
  W.patchTo(P, Lower, Upper);
  // Re-optimization earns its keep only while it is much cheaper than a
  // fresh solve; a repair that drags on (a far jump across the search
  // tree, or a tableau gone dense) is cut off and rebuilt cold instead.
  SimplexOptions DualOpts = Opts;
  DualOpts.MaxIterations =
      std::min(Opts.MaxIterations, std::max(64u, W.NumRows / 4));
  LpStatus S = W.dualIterate(DualOpts, Sol.DualIterations);
  Sol.WarmStarted = true;
  if (S == LpStatus::Optimal) {
    // The dual ratio test keeps reduced costs non-negative in exact
    // arithmetic; a short primal pass mops up any numerical residue
    // (almost always zero iterations). It gets the same tight budget:
    // a polish that starts pivoting in earnest signals a basis not worth
    // saving, and the rebuild is cheaper than letting it wander.
    S = W.primalIterate(/*Phase1=*/false, DualOpts, Sol.Iterations);
  }
  Sol.Status = S;
  if (S == LpStatus::Optimal) {
    W.extract(P, Sol);
  } else if (S != LpStatus::Infeasible) {
    // Iteration limit / unbounded drift: the tableau is no longer
    // trustworthy. A dual-proven Infeasible, by contrast, leaves a
    // dual-feasible basis the next patch can continue from.
    W.Usable = false;
  }
  return Sol;
}

LpSolution ramloc::solveLpWarm(const LpProblem &P,
                               const std::vector<double> &Lower,
                               const std::vector<double> &Upper,
                               WarmStart &Warm, const SimplexOptions &Opts) {
  assert(Lower.size() == P.numVariables() &&
         Upper.size() == P.numVariables() && "bounds size mismatch");
  if (Warm.valid() && Warm.S->matches(P) && !Warm.S->needsRefactor()) {
    LpSolution Sol = resolveLpFromBasis(P, Lower, Upper, Warm, Opts);
    if (Sol.Status != LpStatus::IterLimit && Sol.Status != LpStatus::Unbounded)
      return Sol;
    // fall through: rebuild from scratch
  }
  Warm.S = std::make_unique<WarmState>();
  if (!Warm.S->build(P, Lower, Upper, Opts)) {
    LpSolution Sol;
    Sol.Status = LpStatus::Infeasible;
    return Sol;
  }
  return Warm.S->solveFresh(P, Opts);
}
