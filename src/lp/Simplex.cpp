//===- lp/Simplex.cpp - two-phase primal simplex ------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
//
// Implementation notes. The problem is converted to standard form:
//   - every variable is shifted by its (finite) lower bound so x' >= 0;
//   - finite upper bounds become explicit rows x' <= hi - lo;
//   - fixed variables (lo == hi) are substituted into RHS and dropped;
//   - rows are normalised to non-negative RHS; <= rows get a slack, >= rows
//     a surplus plus an artificial, == rows an artificial.
// Phase 1 minimises the artificial sum; phase 2 the true objective. Dantzig
// pricing with a Bland fallback once degeneracy stalls progress.
//
//===----------------------------------------------------------------------===//

#include "lp/Simplex.h"

#include <algorithm>
#include <cmath>

using namespace ramloc;

const char *ramloc::lpStatusName(LpStatus S) {
  switch (S) {
  case LpStatus::Optimal:
    return "optimal";
  case LpStatus::Infeasible:
    return "infeasible";
  case LpStatus::Unbounded:
    return "unbounded";
  case LpStatus::IterLimit:
    return "iteration-limit";
  }
  return "?";
}

bool LpProblem::isFeasible(const std::vector<double> &X, double Tol) const {
  if (X.size() != Variables.size())
    return false;
  for (unsigned J = 0, E = numVariables(); J != E; ++J)
    if (X[J] < Variables[J].Lower - Tol || X[J] > Variables[J].Upper + Tol)
      return false;
  for (const LpConstraint &C : Constraints) {
    double Lhs = 0.0;
    for (const auto &[Var, Coef] : C.Terms)
      Lhs += Coef * X[Var];
    switch (C.Sense) {
    case ConstraintSense::LessEq:
      if (Lhs > C.Rhs + Tol)
        return false;
      break;
    case ConstraintSense::GreaterEq:
      if (Lhs < C.Rhs - Tol)
        return false;
      break;
    case ConstraintSense::Equal:
      if (std::abs(Lhs - C.Rhs) > Tol)
        return false;
      break;
    }
  }
  return true;
}

namespace {

/// Dense tableau: Rows x Cols, column Cols-1 is the RHS, row Rows-1 the
/// objective under optimisation (phase 1 or 2).
class Tableau {
public:
  Tableau(const LpProblem &P, const std::vector<double> &Lower,
          const std::vector<double> &Upper, const SimplexOptions &Opts)
      : P(P), Opts(Opts), Lower(Lower), Upper(Upper) {}

  LpSolution solve() {
    LpSolution Sol;
    if (!build()) {
      Sol.Status = LpStatus::Infeasible;
      return Sol;
    }

    // Phase 1: minimise artificial sum (already priced into row Obj).
    if (NumArtificials > 0) {
      LpStatus S = iterate(/*Phase1=*/true);
      if (S != LpStatus::Optimal) {
        Sol.Status = S == LpStatus::Unbounded ? LpStatus::Infeasible : S;
        Sol.Iterations = Iterations;
        return Sol;
      }
      if (T[ObjRow][RhsCol] < -Opts.Tolerance) {
        Sol.Status = LpStatus::Infeasible;
        Sol.Iterations = Iterations;
        return Sol;
      }
      pivotOutArtificials();
      installPhase2Objective();
    }

    LpStatus S = iterate(/*Phase1=*/false);
    Sol.Status = S;
    Sol.Iterations = Iterations;
    if (S != LpStatus::Optimal)
      return Sol;

    Sol.Values.assign(P.numVariables(), 0.0);
    for (unsigned J = 0, E = P.numVariables(); J != E; ++J)
      Sol.Values[J] = Lower[J];
    for (unsigned R = 0; R != NumRows; ++R) {
      unsigned Col = Basis[R];
      if (Col < NumStructural) {
        unsigned Var = StructuralVar[Col];
        Sol.Values[Var] = Lower[Var] + T[R][RhsCol];
      }
    }
    Sol.Objective = P.objectiveValue(Sol.Values);
    return Sol;
  }

private:
  /// Builds the standard-form tableau; returns false on trivially
  /// inconsistent fixed-variable rows.
  bool build() {
    unsigned NV = P.numVariables();
    // Structural columns: non-fixed variables.
    StructuralVar.clear();
    VarColumn.assign(NV, UINT32_MAX);
    for (unsigned J = 0; J != NV; ++J) {
      if (Upper[J] - Lower[J] > Opts.Tolerance) {
        VarColumn[J] = static_cast<unsigned>(StructuralVar.size());
        StructuralVar.push_back(J);
      }
    }
    NumStructural = static_cast<unsigned>(StructuralVar.size());

    // Row list: original constraints + upper-bound rows.
    struct Row {
      std::vector<std::pair<unsigned, double>> Terms; // column, coef
      ConstraintSense Sense;
      double Rhs;
    };
    std::vector<Row> Rows;
    for (const LpConstraint &C : P.Constraints) {
      Row R;
      R.Sense = C.Sense;
      R.Rhs = C.Rhs;
      for (const auto &[Var, Coef] : C.Terms) {
        R.Rhs -= Coef * Lower[Var]; // shift by lower bound
        if (VarColumn[Var] != UINT32_MAX)
          R.Terms.push_back({VarColumn[Var], Coef});
        // fixed variables contribute only via the shift above
      }
      if (R.Terms.empty()) {
        // Constant row: must hold on its own.
        bool OK = true;
        switch (R.Sense) {
        case ConstraintSense::LessEq:
          OK = R.Rhs >= -1e-7;
          break;
        case ConstraintSense::GreaterEq:
          OK = R.Rhs <= 1e-7;
          break;
        case ConstraintSense::Equal:
          OK = std::abs(R.Rhs) <= 1e-7;
          break;
        }
        if (!OK)
          return false;
        continue;
      }
      Rows.push_back(std::move(R));
    }
    for (unsigned Col = 0; Col != NumStructural; ++Col) {
      unsigned Var = StructuralVar[Col];
      if (!std::isfinite(Upper[Var]))
        continue;
      Row R;
      R.Sense = ConstraintSense::LessEq;
      R.Rhs = Upper[Var] - Lower[Var];
      R.Terms.push_back({Col, 1.0});
      Rows.push_back(std::move(R));
    }

    NumRows = static_cast<unsigned>(Rows.size());

    // Count slack and artificial columns after RHS normalisation.
    unsigned NumSlacks = 0;
    NumArtificials = 0;
    for (Row &R : Rows) {
      if (R.Rhs < 0) {
        R.Rhs = -R.Rhs;
        for (auto &[Col, Coef] : R.Terms)
          Coef = -Coef;
        if (R.Sense == ConstraintSense::LessEq)
          R.Sense = ConstraintSense::GreaterEq;
        else if (R.Sense == ConstraintSense::GreaterEq)
          R.Sense = ConstraintSense::LessEq;
      }
      if (R.Sense != ConstraintSense::Equal)
        ++NumSlacks;
      if (R.Sense != ConstraintSense::LessEq)
        ++NumArtificials;
    }

    NumCols = NumStructural + NumSlacks + NumArtificials;
    RhsCol = NumCols;
    ObjRow = NumRows;
    T.assign(NumRows + 1, std::vector<double>(NumCols + 1, 0.0));
    Basis.assign(NumRows, 0);
    ArtificialStart = NumStructural + NumSlacks;

    unsigned SlackCursor = NumStructural;
    unsigned ArtCursor = ArtificialStart;
    for (unsigned RI = 0; RI != NumRows; ++RI) {
      const Row &R = Rows[RI];
      for (const auto &[Col, Coef] : R.Terms)
        T[RI][Col] += Coef;
      T[RI][RhsCol] = R.Rhs;
      switch (R.Sense) {
      case ConstraintSense::LessEq:
        T[RI][SlackCursor] = 1.0;
        Basis[RI] = SlackCursor++;
        break;
      case ConstraintSense::GreaterEq:
        T[RI][SlackCursor] = -1.0;
        ++SlackCursor;
        T[RI][ArtCursor] = 1.0;
        Basis[RI] = ArtCursor++;
        break;
      case ConstraintSense::Equal:
        T[RI][ArtCursor] = 1.0;
        Basis[RI] = ArtCursor++;
        break;
      }
    }

    if (NumArtificials > 0) {
      // Phase-1 objective: minimise sum of artificials. Express the
      // objective row in terms of non-basic columns: row_obj = -sum of
      // rows with artificial basics.
      for (unsigned RI = 0; RI != NumRows; ++RI) {
        if (Basis[RI] < ArtificialStart)
          continue;
        for (unsigned C = 0; C <= NumCols; ++C)
          T[ObjRow][C] -= T[RI][C];
        // keep the artificial's own column zeroed in the objective
        T[ObjRow][Basis[RI]] = 0.0;
      }
    } else {
      installPhase2Objective();
    }
    return true;
  }

  /// Loads the real objective into the objective row, priced out against
  /// the current basis.
  void installPhase2Objective() {
    for (unsigned C = 0; C <= NumCols; ++C)
      T[ObjRow][C] = 0.0;
    for (unsigned Col = 0; Col != NumStructural; ++Col)
      T[ObjRow][Col] = P.Variables[StructuralVar[Col]].Objective;
    // Price out basic variables.
    for (unsigned RI = 0; RI != NumRows; ++RI) {
      unsigned BCol = Basis[RI];
      double Cost = T[ObjRow][BCol];
      if (std::abs(Cost) < Opts.Tolerance)
        continue;
      for (unsigned C = 0; C <= NumCols; ++C)
        T[ObjRow][C] -= Cost * T[RI][C];
    }
  }

  /// After phase 1, force remaining (degenerate) artificial basics out of
  /// the basis where possible.
  void pivotOutArtificials() {
    for (unsigned RI = 0; RI != NumRows; ++RI) {
      if (Basis[RI] < ArtificialStart)
        continue;
      for (unsigned C = 0; C != ArtificialStart; ++C) {
        if (std::abs(T[RI][C]) > 1e-7) {
          pivot(RI, C);
          break;
        }
      }
    }
  }

  /// Primal simplex iterations on the current objective row. In phase 1
  /// artificial columns may re-enter; in phase 2 they are barred.
  LpStatus iterate(bool Phase1) {
    unsigned StallCount = 0;
    double LastObj = T[ObjRow][RhsCol];
    while (Iterations < Opts.MaxIterations) {
      ++Iterations;
      unsigned Limit = Phase1 ? NumCols : ArtificialStart;
      bool Bland = StallCount > NumRows + 16;

      // Entering column: most negative reduced cost (Dantzig), or first
      // negative (Bland) when stalled.
      int Entering = -1;
      double Best = -Opts.Tolerance;
      for (unsigned C = 0; C != Limit; ++C) {
        double RC = T[ObjRow][C];
        if (RC < Best) {
          Entering = static_cast<int>(C);
          if (Bland)
            break;
          Best = RC;
        }
      }
      if (Entering < 0)
        return LpStatus::Optimal;

      // Leaving row: minimum ratio test (Bland tie-break on basis index).
      int Leaving = -1;
      double BestRatio = 0.0;
      for (unsigned R = 0; R != NumRows; ++R) {
        double A = T[R][static_cast<unsigned>(Entering)];
        if (A <= Opts.Tolerance)
          continue;
        double Ratio = T[R][RhsCol] / A;
        if (Leaving < 0 || Ratio < BestRatio - Opts.Tolerance ||
            (Ratio < BestRatio + Opts.Tolerance &&
             Basis[R] < Basis[static_cast<unsigned>(Leaving)])) {
          Leaving = static_cast<int>(R);
          BestRatio = Ratio;
        }
      }
      if (Leaving < 0)
        return LpStatus::Unbounded;

      pivot(static_cast<unsigned>(Leaving),
            static_cast<unsigned>(Entering));

      double Obj = T[ObjRow][RhsCol];
      if (std::abs(Obj - LastObj) < Opts.Tolerance)
        ++StallCount;
      else
        StallCount = 0;
      LastObj = Obj;
    }
    return LpStatus::IterLimit;
  }

  void pivot(unsigned Row, unsigned Col) {
    double Pivot = T[Row][Col];
    for (unsigned C = 0; C <= NumCols; ++C)
      T[Row][C] /= Pivot;
    for (unsigned R = 0; R <= NumRows; ++R) {
      if (R == Row)
        continue;
      double Factor = T[R][Col];
      if (std::abs(Factor) < 1e-12)
        continue;
      for (unsigned C = 0; C <= NumCols; ++C)
        T[R][C] -= Factor * T[Row][C];
      T[R][Col] = 0.0; // cut numerical drift
    }
    Basis[Row] = Col;
  }

  const LpProblem &P;
  const SimplexOptions &Opts;
  const std::vector<double> &Lower;
  const std::vector<double> &Upper;

  std::vector<std::vector<double>> T;
  std::vector<unsigned> Basis;
  std::vector<unsigned> StructuralVar; ///< column -> original variable
  std::vector<unsigned> VarColumn;     ///< variable -> column (or UINT32_MAX)
  unsigned NumStructural = 0;
  unsigned NumRows = 0;
  unsigned NumCols = 0;
  unsigned RhsCol = 0;
  unsigned ObjRow = 0;
  unsigned NumArtificials = 0;
  unsigned ArtificialStart = 0;
  unsigned Iterations = 0;
};

} // namespace

LpSolution ramloc::solveLpWithBounds(const LpProblem &P,
                                     const std::vector<double> &Lower,
                                     const std::vector<double> &Upper,
                                     const SimplexOptions &Opts) {
  assert(Lower.size() == P.numVariables() &&
         Upper.size() == P.numVariables() && "bounds size mismatch");
  Tableau Tab(P, Lower, Upper, Opts);
  return Tab.solve();
}

LpSolution ramloc::solveLp(const LpProblem &P, const SimplexOptions &Opts) {
  std::vector<double> Lower(P.numVariables()), Upper(P.numVariables());
  for (unsigned J = 0, E = P.numVariables(); J != E; ++J) {
    Lower[J] = P.Variables[J].Lower;
    Upper[J] = P.Variables[J].Upper;
  }
  return solveLpWithBounds(P, Lower, Upper, Opts);
}
