//===- lp/Simplex.cpp - bounded-variable simplex ------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
//
// Implementation notes. One engine serves both the cold and the warm path:
// a dense bounded-variable tableau in which every constraint becomes an
// equality with one bounded slack
//
//   a_i . x + s_i = b_i    with  s_i in [0, inf)   for <=
//                                s_i in (-inf, 0]  for >=
//                                s_i in [0, 0]     for ==
//
// and every variable — structural or slack — carries its [lb, ub] box as
// data. Nonbasic variables sit at a bound (or at zero when free); the
// RHS is not a tableau column but the vector Beta of current *basic
// values*, updated in closed form by every pivot, bound flip and patch.
// There are no bound rows and no artificial columns: the tableau has
// exactly one row per (non-degenerate) constraint, roughly half of the
// all-bounds-as-rows formulation this repo used through PR 4.
//
// A cold solve starts from the all-slack basis with structurals at their
// finite bounds. That start is primal infeasible exactly where >=/== rows
// bite, so feasibility is restored by a dual simplex under a *zero*
// objective (every status is trivially dual-feasible then — the
// artificial-free analogue of phase 1), after which the true objective is
// priced against the basis and primal bounded iterations finish the job.
// The primal ratio test has three outcomes: a basic variable hits a
// bound (ordinary pivot), the entering variable's own span is the
// binding limit (a bound *flip*: no pivot, no elimination, an O(rows)
// value update), or nothing binds (unbounded).
//
// The warm path keeps the whole state. Branch & bound bound changes and
// knob-row RHS patches are O(rows) updates — a nonbasic variable slides
// along its moved bound, an RHS shift lands through the row's slack
// column (which holds B^-1 e_r after any pivot sequence) — and leave the
// basis dual feasible because the objective row is untouched, so the
// dual simplex re-optimizes from where the parent left off.
//
// Rows are equilibrated to unit max-coefficient at build: the placement
// model mixes +-1 McCormick rows with Fb*Tb cycle-budget rows around
// 1e7, and a tableau living across thousands of pivots cannot survive
// that spread with absolute tolerances. Row scaling never moves the
// feasible set, and the slack boxes (0 / +-inf) are scale-invariant.
//
//===----------------------------------------------------------------------===//

#include "lp/Simplex.h"

#include "support/FaultInjector.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace ramloc;

const char *ramloc::lpStatusName(LpStatus S) {
  switch (S) {
  case LpStatus::Optimal:
    return "optimal";
  case LpStatus::Infeasible:
    return "infeasible";
  case LpStatus::Unbounded:
    return "unbounded";
  case LpStatus::IterLimit:
    return "iteration-limit";
  }
  return "?";
}

bool LpProblem::isFeasible(const std::vector<double> &X, double Tol) const {
  if (X.size() != Variables.size())
    return false;
  for (unsigned J = 0, E = numVariables(); J != E; ++J)
    if (X[J] < Variables[J].Lower - Tol || X[J] > Variables[J].Upper + Tol)
      return false;
  for (const LpConstraint &C : Constraints) {
    double Lhs = 0.0;
    for (const auto &[Var, Coef] : C.Terms)
      Lhs += Coef * X[Var];
    switch (C.Sense) {
    case ConstraintSense::LessEq:
      if (Lhs > C.Rhs + Tol)
        return false;
      break;
    case ConstraintSense::GreaterEq:
      if (Lhs < C.Rhs - Tol)
        return false;
      break;
    case ConstraintSense::Equal:
      if (std::abs(Lhs - C.Rhs) > Tol)
        return false;
      break;
    }
  }
  return true;
}

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// Minimum |pivot element| either ratio test will divide by. The dual
/// test in particular would otherwise happily pick a degenerate 1e-9
/// coefficient ("ratio 0") and destroy the tableau dividing by it.
constexpr double PivotTol = 1e-7;

/// A box violation a stuck row (no above-threshold pivot element) is
/// allowed to keep. Rows are equilibrated to unit max-coefficient, so
/// this is ~1e-7 of a row's dominant term — below every tolerance the
/// callers apply — whereas rebuilding the whole warm state over it costs
/// a full cold solve. Material stuck violations still fail hard.
constexpr double StuckTol = 1e-7;

/// Floor under every steepest-edge weight. In exact arithmetic a weight
/// is >= the squared diagonal of B^-1 and cannot reach zero; the floor
/// only catches recurrence round-off from dividing by it.
constexpr double DseFloor = 1e-10;

/// Relative drift between a recurrence-maintained steepest-edge weight
/// and its exact recompute that the refactorization self-check counts as
/// material. Weights only steer row *selection*, so drift below this
/// cannot change an answer — the counter is a numerics canary.
constexpr double DseDriftTol = 1e-4;

} // namespace

namespace ramloc {

/// The retained bounded-variable state (also built throwaway for cold
/// solves). Columns are [0, NumVars) structural then one slack per row;
/// Beta holds the basic values, Stat/Lo/Hi the nonbasic side and the box
/// of every column.
struct WarmState {
  enum class VStat : uint8_t { Basic, AtLower, AtUpper, Free };

  // Structure signature: a handle is only reusable against the problem
  // shape it was built from.
  unsigned NumVars = 0;
  unsigned NumCons = 0;
  size_t TermSum = 0;

  /// Flat row-major coefficient tableau (NumRows x NumCols). The warm
  /// path lives in pivots, so elimination walks a nonzero-index list of
  /// the pivot row while it stays sparse.
  std::vector<double> T;
  std::vector<double> Obj;  ///< reduced costs, one per column (scaled)
  std::vector<double> Beta; ///< current value of each row's basic var
  std::vector<unsigned> Basis;
  std::vector<VStat> Stat;  ///< per column
  std::vector<double> Lo, Hi; ///< per-column box (slacks included)
  std::vector<unsigned> NzScratch;
  /// Slack-column subset of NzScratch, rebuilt per pivot while the
  /// steepest-edge recurrence is live (eliminate()).
  std::vector<unsigned> SlackNzScratch;
  /// dualIterate scratch, member-owned like NzScratch: the dual runs
  /// once per branch & bound node, so per-call allocations would sit on
  /// the solver's hottest path.
  std::vector<std::tuple<double, double, unsigned>> CandScratch;
  std::vector<bool> DeferScratch;
  unsigned NumRows = 0;
  unsigned NumCols = 0;

  double *row(unsigned R) { return T.data() + size_t(R) * NumCols; }
  const double *row(unsigned R) const {
    return T.data() + size_t(R) * NumCols;
  }

  std::vector<int> ConsRow; ///< constraint index -> tableau row (-1 none)
  /// Row -> the equilibration scale its original data was multiplied by;
  /// folds an original-orientation RHS delta into stored units.
  std::vector<double> RowScale;
  /// The objective row is priced in units of the largest |c_j| for the
  /// same dynamic-range reason; extract() reports the true objective
  /// from the values.
  double ObjScale = 1.0;

  /// The constraint RHS values the state currently encodes (variable
  /// bounds are encoded directly in Lo/Hi).
  std::vector<double> AppliedRhs;

  /// False until a solve leaves a re-optimizable (dual-feasible) basis.
  bool Usable = false;

  /// Pivots performed since the tableau was last built or refactorized.
  /// Dense updates accumulate rounding with every pivot; past the
  /// configured budget the handle is refactorized from its current basis
  /// (the dense analogue of periodic product-form/LU refactorization),
  /// bounding worst-case drift at a cost of one re-elimination per
  /// RefactorInterval * (rows + vars + 1) pivots.
  uint64_t PivotsSinceBuild = 0;

  //===--- Dual steepest-edge pricing state -------------------------------===//
  //
  // DseWeight[r] approximates ||e_r^T B^-1||^2, the squared norm of row r
  // of the basis inverse — which the slack block of the tableau holds
  // outright (column NumVars+k of row r is (B^-1)[r][k] in scaled row
  // space), so the *exact* weights are an O(rows^2) recompute away. While
  // the dual simplex is iterating the weights follow the Forrest–Goldfarb
  // recurrence instead (folded into eliminate()'s nonzero walk); primal
  // pivots merely invalidate them (DseEnabled false) and the next dual
  // entry recomputes, which is one O(rows^2) pass instead of one per
  // primal pivot.

  /// Recurrence-maintained steepest-edge weights, one per row. Meaningful
  /// only while DseValid.
  std::vector<double> DseWeight;
  /// True while DseWeight tracks the current basis.
  bool DseValid = false;
  /// True while the active iteration keeps the weights fresh through
  /// eliminate(); false makes eliminate() invalidate instead.
  bool DseEnabled = false;

  /// Lifetime pricing-effort counters; entry points report per-solve
  /// deltas via pricingSnap()/pricingDelta().
  uint64_t DseUpdates = 0;
  uint64_t DseRecomputes = 0;
  uint64_t DseDrift = 0;

  struct PricingSnap {
    uint64_t Updates, Recomputes, Drift;
  };
  PricingSnap pricingSnap() const {
    return {DseUpdates, DseRecomputes, DseDrift};
  }
  void pricingDelta(const PricingSnap &S, LpSolution &Sol) const {
    Sol.PricingUpdates = static_cast<unsigned>(DseUpdates - S.Updates);
    Sol.PricingRecomputes =
        static_cast<unsigned>(DseRecomputes - S.Recomputes);
    Sol.PricingDrift = static_cast<unsigned>(DseDrift - S.Drift);
  }

  /// Rotating start column for Pricing::PartialDantzig's candidate-
  /// section scan; advanced past each chosen entering column so sections
  /// take turns supplying pivots.
  unsigned PartialCursor = 0;

  bool needsRefactor(const SolverConfig &Opts) const {
    return Opts.RefactorInterval != 0 &&
           PivotsSinceBuild >
               uint64_t(Opts.RefactorInterval) * (NumRows + NumVars + 1);
  }

  bool matches(const LpProblem &P) const {
    if (P.numVariables() != NumVars || P.numConstraints() != NumCons)
      return false;
    size_t Terms = 0;
    for (const LpConstraint &C : P.Constraints)
      Terms += C.Terms.size();
    return Terms == TermSum;
  }

  bool fixed(unsigned C) const { return Lo[C] == Hi[C]; }

  /// The value a nonbasic column currently stands at.
  double nbVal(unsigned C) const {
    switch (Stat[C]) {
    case VStat::AtLower:
      return Lo[C];
    case VStat::AtUpper:
      return Hi[C];
    default:
      return 0.0; // Free (Basic values live in Beta)
    }
  }

  bool build(const LpProblem &P, const std::vector<double> &Lower,
             const std::vector<double> &Upper, const SolverConfig &Opts);
  bool refactorFromBasis(const LpProblem &P, const SolverConfig &Opts);
  void installObjective(const LpProblem &P, const SolverConfig &Opts);
  void computeDseWeights();
  LpStatus primalIterate(const SolverConfig &Opts, unsigned &Iterations,
                         unsigned &BoundFlips);
  LpStatus dualIterate(const SolverConfig &Opts, unsigned &Iterations,
                       unsigned &BoundFlips);
  void eliminate(unsigned Row, unsigned Col);
  bool patchTo(const LpProblem &P, const std::vector<double> &Lower,
               const std::vector<double> &Upper);
  bool anyEmptyBox() const;
  bool primalInfeasible(double Tol) const;
  void extract(const LpProblem &P, LpSolution &Sol) const;
  LpSolution solveFresh(const LpProblem &P, const SolverConfig &Opts);
};

} // namespace ramloc

bool WarmState::build(const LpProblem &P, const std::vector<double> &Lower,
                      const std::vector<double> &Upper,
                      const SolverConfig &Opts) {
  (void)Opts;
  NumVars = P.numVariables();
  NumCons = P.numConstraints();
  TermSum = 0;
  Usable = false;

  for (unsigned J = 0; J != NumVars; ++J)
    if (Lower[J] > Upper[J])
      return false; // empty box: trivially infeasible

  struct Row {
    std::vector<std::pair<unsigned, double>> Terms;
    ConstraintSense Sense;
    double Rhs;
    int Cons;
  };
  std::vector<Row> Rows;

  ConsRow.assign(NumCons, -1);
  AppliedRhs.assign(NumCons, 0.0);
  std::vector<double> Coef(NumVars, 0.0);
  for (unsigned I = 0; I != NumCons; ++I) {
    const LpConstraint &C = P.Constraints[I];
    TermSum += C.Terms.size();
    AppliedRhs[I] = C.Rhs;
    Row R;
    R.Sense = C.Sense;
    R.Rhs = C.Rhs;
    R.Cons = static_cast<int>(I);
    // Coalesce repeated variables.
    for (const auto &[Var, C2] : C.Terms)
      Coef[Var] += C2;
    for (const auto &[Var, C2] : C.Terms) {
      (void)C2;
      if (Coef[Var] != 0.0) {
        R.Terms.push_back({Var, Coef[Var]});
        Coef[Var] = 0.0;
      }
    }
    if (R.Terms.empty()) {
      // Constant row: must hold on its own.
      bool OK = true;
      switch (R.Sense) {
      case ConstraintSense::LessEq:
        OK = R.Rhs >= -1e-7;
        break;
      case ConstraintSense::GreaterEq:
        OK = R.Rhs <= 1e-7;
        break;
      case ConstraintSense::Equal:
        OK = std::abs(R.Rhs) <= 1e-7;
        break;
      }
      if (!OK)
        return false;
      continue;
    }
    Rows.push_back(std::move(R));
  }

  NumRows = static_cast<unsigned>(Rows.size());
  NumCols = NumVars + NumRows;
  RowScale.assign(NumRows, 1.0);

  T.assign(size_t(NumRows) * NumCols, 0.0);
  Obj.assign(NumCols, 0.0);
  Beta.assign(NumRows, 0.0);
  Basis.assign(NumRows, 0);
  Stat.assign(NumCols, VStat::Basic);
  Lo.assign(NumCols, 0.0);
  Hi.assign(NumCols, 0.0);
  ObjScale = 1.0;
  PivotsSinceBuild = 0;
  DseValid = false;
  DseEnabled = false;
  PartialCursor = 0;

  // Structural columns: box from the overrides, nonbasic at a finite
  // bound (lower preferred), free when both bounds are infinite. Any
  // start is dual-feasible under the zero phase-1 objective.
  for (unsigned J = 0; J != NumVars; ++J) {
    Lo[J] = Lower[J];
    Hi[J] = Upper[J];
    Stat[J] = std::isfinite(Lo[J])   ? VStat::AtLower
              : std::isfinite(Hi[J]) ? VStat::AtUpper
                                     : VStat::Free;
  }

  for (unsigned RI = 0; RI != NumRows; ++RI) {
    Row &R = Rows[RI];
    ConsRow[static_cast<unsigned>(R.Cons)] = static_cast<int>(RI);
    // Equilibrate: normalize the row to unit max-coefficient.
    double MaxCoef = 0.0;
    for (const auto &[Col, C2] : R.Terms)
      MaxCoef = std::max(MaxCoef, std::abs(C2));
    double S = MaxCoef > 0.0 ? 1.0 / MaxCoef : 1.0;
    RowScale[RI] = S;

    double *Tr = row(RI);
    for (const auto &[Col, C2] : R.Terms)
      Tr[Col] = C2 * S;
    unsigned SlackCol = NumVars + RI;
    Tr[SlackCol] = 1.0;
    Basis[RI] = SlackCol;
    Stat[SlackCol] = VStat::Basic;
    switch (R.Sense) {
    case ConstraintSense::LessEq:
      Lo[SlackCol] = 0.0;
      Hi[SlackCol] = Inf;
      break;
    case ConstraintSense::GreaterEq:
      Lo[SlackCol] = -Inf;
      Hi[SlackCol] = 0.0;
      break;
    case ConstraintSense::Equal:
      Lo[SlackCol] = 0.0;
      Hi[SlackCol] = 0.0;
      break;
    }
    // Basic (slack) value: the scaled RHS minus the nonbasic activity.
    double B = R.Rhs * S;
    for (const auto &[Col, C2] : R.Terms)
      B -= C2 * S * nbVal(Col);
    Beta[RI] = B;
  }
  return true;
}

bool WarmState::refactorFromBasis(const LpProblem &P,
                                  const SolverConfig &Opts) {
  // Re-derive the tableau from original problem data *at the current
  // basis*: rows are refilled with pristine coefficients (discarding the
  // rounding drift and fill-in dense in-place updates accumulate) and
  // re-eliminated against the basis the warm chain has refined, so the
  // re-optimization that follows starts exactly where the chain left
  // off instead of from an all-slack cold start. Statuses, boxes and
  // applied RHS values all survive; Beta is recomputed from scratch
  // against the fresh rows; steepest-edge weights are re-anchored with a
  // drift self-check. Returns false when the retained basis turns out
  // numerically singular against the pristine rows — the caller then
  // falls back to the old rebuild-from-scratch path.
  std::vector<double> NewT(size_t(NumRows) * NumCols, 0.0);
  std::vector<double> Rhs(NumRows, 0.0);
  auto nrow = [&](unsigned R) { return NewT.data() + size_t(R) * NumCols; };

  // Refill each row in its original slot with original coefficients at
  // the same equilibration scale, so slack column NumVars+r keeps
  // meaning "row r's slack" and RHS patches keep landing through it.
  std::vector<double> Coef(NumVars, 0.0);
  for (unsigned I = 0; I != NumCons; ++I) {
    int R0 = ConsRow[I];
    if (R0 < 0)
      continue; // constant row: never materialized
    const LpConstraint &C = P.Constraints[I];
    for (const auto &[Var, C2] : C.Terms)
      Coef[Var] += C2;
    double S = RowScale[static_cast<unsigned>(R0)];
    double *Tr = nrow(static_cast<unsigned>(R0));
    for (const auto &[Var, C2] : C.Terms) {
      (void)C2;
      if (Coef[Var] != 0.0) {
        Tr[Var] = Coef[Var] * S;
        Coef[Var] = 0.0;
      }
    }
    Tr[NumVars + static_cast<unsigned>(R0)] = 1.0;
    // The RHS the state currently encodes, not the problem's: patches
    // already applied must not be re-applied by the next patchTo diff.
    Rhs[static_cast<unsigned>(R0)] =
        AppliedRhs[I] * S;
  }

  // Gauss-Jordan re-elimination of the current basis column set. Pivot
  // rows are chosen by largest |entry| (partial pivoting); which tableau
  // row ends up hosting which basic variable is irrelevant — all row/
  // constraint bookkeeping is keyed by slack *columns*, not row order.
  std::vector<unsigned> SavedBasis = Basis;
  std::vector<unsigned> NewBasis(NumRows, 0);
  std::vector<bool> RowUsed(NumRows, false);
  for (unsigned Pos = 0; Pos != NumRows; ++Pos) {
    unsigned Col = SavedBasis[Pos];
    int PivRow = -1;
    double BestMag = PivotTol;
    for (unsigned R = 0; R != NumRows; ++R) {
      if (RowUsed[R])
        continue;
      double Mag = std::abs(nrow(R)[Col]);
      if (Mag > BestMag) {
        BestMag = Mag;
        PivRow = static_cast<int>(R);
      }
    }
    if (PivRow < 0)
      return false; // singular basis against pristine data
    unsigned PR = static_cast<unsigned>(PivRow);
    RowUsed[PR] = true;
    NewBasis[PR] = Col;
    double *Prow = nrow(PR);
    double Piv = Prow[Col];
    for (unsigned C = 0; C != NumCols; ++C)
      Prow[C] /= Piv;
    Prow[Col] = 1.0;
    Rhs[PR] /= Piv;
    for (unsigned R = 0; R != NumRows; ++R) {
      if (R == PR)
        continue;
      double *Tr = nrow(R);
      double F = Tr[Col];
      if (std::abs(F) < 1e-12) {
        Tr[Col] = 0.0;
        continue;
      }
      for (unsigned C = 0; C != NumCols; ++C)
        Tr[C] -= F * Prow[C];
      Tr[Col] = 0.0;
      Rhs[R] -= F * Rhs[PR];
    }
  }

  T = std::move(NewT);
  Basis = std::move(NewBasis);
  // Basic values from first principles: row r now reads
  //   x_B[r] + sum_nonbasic T[r][c] x_c = Rhs[r].
  for (unsigned R = 0; R != NumRows; ++R) {
    double B = Rhs[R];
    const double *Tr = row(R);
    for (unsigned C = 0; C != NumCols; ++C) {
      if (Stat[C] == VStat::Basic)
        continue;
      double V = nbVal(C);
      if (V != 0.0)
        B -= Tr[C] * V;
    }
    Beta[R] = B;
  }
  installObjective(P, Opts); // exact reduced costs against the new rows
  PivotsSinceBuild = 0;

  // Steepest-edge self-check: compare the recurrence-maintained weights
  // against an exact recompute off the fresh slack block, then keep the
  // recompute. Row order changed, so compare per basic *column*.
  if (DseValid) {
    std::vector<double> OldBySlot(NumCols, 0.0);
    for (unsigned R = 0; R != NumRows; ++R)
      OldBySlot[SavedBasis[R]] = DseWeight[R];
    computeDseWeights();
    for (unsigned R = 0; R != NumRows; ++R) {
      double Old = OldBySlot[Basis[R]];
      double New = DseWeight[R];
      if (std::abs(Old - New) > DseDriftTol * std::max(1.0, New))
        ++DseDrift;
    }
  }
  return true;
}

void WarmState::installObjective(const LpProblem &P,
                                 const SolverConfig &Opts) {
  double MaxC = 0.0;
  for (unsigned J = 0; J != NumVars; ++J)
    MaxC = std::max(MaxC, std::abs(P.Variables[J].Objective));
  ObjScale = MaxC > 0.0 ? 1.0 / MaxC : 1.0;

  std::fill(Obj.begin(), Obj.end(), 0.0);
  for (unsigned J = 0; J != NumVars; ++J)
    Obj[J] = P.Variables[J].Objective * ObjScale;
  // Price out basic variables. T[r][Basis[k]] is the identity on basic
  // columns, so one pass over the rows suffices.
  for (unsigned RI = 0; RI != NumRows; ++RI) {
    double Cost = Obj[Basis[RI]];
    if (std::abs(Cost) < Opts.Tolerance * 1e-3)
      continue;
    const double *Tr = row(RI);
    for (unsigned C = 0; C != NumCols; ++C)
      Obj[C] -= Cost * Tr[C];
    Obj[Basis[RI]] = 0.0;
  }
}

void WarmState::computeDseWeights() {
  // Exact reference weights straight off the slack block: row r of the
  // tableau restricted to the slack columns *is* row r of B^-1 (in
  // scaled row space), so ||rho_r||^2 is a dot product with itself.
  DseWeight.assign(NumRows, 1.0);
  for (unsigned R = 0; R != NumRows; ++R) {
    const double *Tr = row(R);
    double W = 0.0;
    for (unsigned K = 0; K != NumRows; ++K) {
      double V = Tr[NumVars + K];
      W += V * V;
    }
    DseWeight[R] = std::max(W, DseFloor);
  }
  ++DseRecomputes;
  DseValid = true;
}

void WarmState::eliminate(unsigned Row, unsigned Col) {
  ++PivotsSinceBuild;
  double *PR = row(Row);
  double Pivot = PR[Col];
  // A nonzero-index walk is arithmetically identical to the full-width
  // loop (subtracting Factor * 0 is a no-op) and much cheaper while the
  // pivot row is sparse; once fill-in has made it dense, the plain
  // contiguous loop vectorizes better than the indirection.
  NzScratch.clear();
  for (unsigned C = 0; C != NumCols; ++C) {
    if (PR[C] == 0.0)
      continue;
    PR[C] /= Pivot;
    NzScratch.push_back(C);
  }
  bool Sparse = NzScratch.size() * 2 < NumCols;

  // Steepest-edge recurrence (Forrest–Goldfarb), phrased against the
  // *normalized* pivot row the elimination is about to subtract: with
  // u = slack block of PR/alpha (= rho_r / alpha, row Row of B^-1 over
  // the pivot element) the Gauss-Jordan step maps rho_i' = rho_i - a_i u
  // and rho_r' = u, hence
  //   w_i' = w_i - 2 a_i (rho_i . u) + a_i^2 ||u||^2,   w_r' = ||u||^2.
  // Both dot products ride the same nonzero walk as the subtraction
  // (slack columns only), so the exact update costs a fraction of the
  // elimination itself. A pivot without the recurrence live invalidates
  // the weights; the next dual entry recomputes them in one pass.
  bool Dse = DseValid && DseEnabled;
  double U = 0.0;
  if (Dse) {
    SlackNzScratch.clear();
    for (unsigned C : NzScratch)
      if (C >= NumVars) {
        SlackNzScratch.push_back(C);
        U += PR[C] * PR[C];
      }
  } else if (DseValid) {
    DseValid = false;
  }

  auto apply = [&](double *Tr, double *W) {
    double Factor = Tr[Col];
    if (std::abs(Factor) < 1e-12)
      return;
    if (W) {
      double S = 0.0;
      for (unsigned C : SlackNzScratch)
        S += Tr[C] * PR[C];
      *W = std::max(*W - 2.0 * Factor * S + Factor * Factor * U, DseFloor);
    }
    if (Sparse) {
      for (unsigned C : NzScratch)
        Tr[C] -= Factor * PR[C];
    } else {
      for (unsigned C = 0; C != NumCols; ++C)
        Tr[C] -= Factor * PR[C];
    }
    Tr[Col] = 0.0; // cut numerical drift
  };
  for (unsigned R = 0; R != NumRows; ++R)
    if (R != Row)
      apply(this->row(R), Dse ? &DseWeight[R] : nullptr);
  apply(Obj.data(), nullptr);
  Basis[Row] = Col;
  if (Dse) {
    DseWeight[Row] = std::max(U, DseFloor);
    ++DseUpdates;
  }
}

bool WarmState::primalInfeasible(double Tol) const {
  for (unsigned R = 0; R != NumRows; ++R) {
    unsigned B = Basis[R];
    if (Beta[R] < Lo[B] - Tol || Beta[R] > Hi[B] + Tol)
      return true;
  }
  return false;
}

bool WarmState::anyEmptyBox() const {
  for (unsigned J = 0; J != NumVars; ++J)
    if (Lo[J] > Hi[J])
      return true;
  return false;
}

LpStatus WarmState::primalIterate(const SolverConfig &Opts,
                                  unsigned &Iterations,
                                  unsigned &BoundFlips) {
  const Pricing Rule = Opts.effectivePricing();
  // Steepest-edge weights are a dual-side investment: maintaining them
  // through every primal pivot would cost O(rows^2) each, while the next
  // dual entry can recompute them all in one O(rows^2) pass. So primal
  // pivots invalidate (via eliminate()) and the dual recomputes lazily.
  DseEnabled = false;
  // Partial pricing scans columns in rotating sections; the section size
  // balances scan savings against pivot quality.
  const unsigned Section = std::max(32u, NumCols / 8);
  unsigned StallCount = 0;
  while (Iterations < Opts.MaxIterations) {
    bool Bland = Rule == Pricing::Bland || StallCount > NumRows + 16;
    bool Partial = !Bland && Rule == Pricing::PartialDantzig;

    // Entering column: an at-lower (or free) variable with negative
    // reduced cost moves up, an at-upper (or free) one with positive
    // reduced cost moves down. Dantzig picks the worst violation over
    // all columns; Bland the first; Partial the worst within the first
    // rotating section that offers any candidate.
    int Entering = -1;
    double Dir = 0.0, Best = Opts.Tolerance;
    unsigned Start = Partial ? PartialCursor % NumCols : 0;
    for (unsigned O = 0; O != NumCols; ++O) {
      unsigned C = Start + O;
      if (C >= NumCols)
        C -= NumCols;
      if (Stat[C] != VStat::Basic && !fixed(C)) {
        double RC = Obj[C];
        double D = 0.0;
        if (RC < -Opts.Tolerance && Stat[C] != VStat::AtUpper)
          D = 1.0;
        else if (RC > Opts.Tolerance && Stat[C] != VStat::AtLower)
          D = -1.0;
        if (D != 0.0 && std::abs(RC) > Best) {
          Entering = static_cast<int>(C);
          Dir = D;
          if (Bland)
            break;
          Best = std::abs(RC);
        }
      }
      // Section boundary: partial pricing stops at the first section
      // that produced a candidate.
      if (Partial && Entering >= 0 && (O + 1) % Section == 0)
        break;
    }
    if (Entering < 0)
      return LpStatus::Optimal;
    unsigned Q = static_cast<unsigned>(Entering);
    if (Partial)
      PartialCursor = (Q + 1) % NumCols;

    // Ratio test: how far can the entering variable travel before a
    // basic variable hits a bound — or before its own span runs out (a
    // bound flip, no pivot needed). Near-tied rows prefer the larger
    // pivot element for stability, then the lower basis index for
    // determinism.
    double FlipLimit =
        Stat[Q] == VStat::Free ? Inf : Hi[Q] - Lo[Q]; // >= 0, may be Inf
    int LeaveRow = -1;
    bool LeaveToLower = false;
    double BestT = Inf, BestMag = 0.0;
    for (unsigned R = 0; R != NumRows; ++R) {
      double A = Dir * row(R)[Q];
      if (std::abs(A) < PivotTol)
        continue;
      unsigned B = Basis[R];
      double t, Mag = std::abs(row(R)[Q]);
      bool ToLower;
      if (A > 0.0) { // basic value decreases towards its lower bound
        if (!std::isfinite(Lo[B]))
          continue;
        t = (Beta[R] - Lo[B]) / A;
        ToLower = true;
      } else { // basic value increases towards its upper bound
        if (!std::isfinite(Hi[B]))
          continue;
        t = (Hi[B] - Beta[R]) / (-A);
        ToLower = false;
      }
      t = std::max(t, 0.0); // clamp tiny feasibility residue
      if (LeaveRow < 0 || t < BestT - Opts.Tolerance ||
          (t < BestT + Opts.Tolerance &&
           (Mag > BestMag + Opts.Tolerance ||
            (std::abs(Mag - BestMag) <= Opts.Tolerance &&
             Basis[R] < Basis[static_cast<unsigned>(LeaveRow)])))) {
        LeaveRow = static_cast<int>(R);
        LeaveToLower = ToLower;
        BestT = t;
        BestMag = Mag;
      }
    }

    ++Iterations;
    double RcQ = Obj[Q]; // captured now: elimination zeroes the column
    double Step;
    if (FlipLimit <= BestT) {
      if (!std::isfinite(FlipLimit))
        return LpStatus::Unbounded; // nothing binds in this direction
      // Bound flip: the entering variable jumps to its opposite bound.
      Step = FlipLimit;
      for (unsigned R = 0; R != NumRows; ++R)
        Beta[R] -= Step * Dir * row(R)[Q];
      Stat[Q] = Stat[Q] == VStat::AtLower ? VStat::AtUpper : VStat::AtLower;
      ++BoundFlips;
    } else {
      Step = BestT;
      unsigned LR = static_cast<unsigned>(LeaveRow);
      unsigned P = Basis[LR];
      for (unsigned R = 0; R != NumRows; ++R)
        if (R != LR)
          Beta[R] -= Step * Dir * row(R)[Q];
      double VQ = nbVal(Q) + Step * Dir;
      Stat[P] = LeaveToLower ? VStat::AtLower : VStat::AtUpper;
      Stat[Q] = VStat::Basic;
      Beta[LR] = VQ;
      eliminate(LR, Q);
    }

    // Objective progress |rc * step| drives the anti-cycling switch.
    if (std::abs(RcQ) * Step < Opts.Tolerance)
      ++StallCount;
    else
      StallCount = 0;
  }
  return LpStatus::IterLimit;
}

LpStatus WarmState::dualIterate(const SolverConfig &Opts,
                                unsigned &Iterations,
                                unsigned &BoundFlips) {
  const Pricing Rule = Opts.effectivePricing();
  DseEnabled = Rule == Pricing::SteepestEdge;
  if (DseEnabled && !DseValid)
    computeDseWeights(); // first activation, or primal pivots intervened
  unsigned StallCount = 0;
  // Per-iteration candidate list for the bound-flipping ratio test:
  // {ratio, -|a|, column}, sorted ascending so ties prefer the larger
  // pivot element and then the lower column index — deterministic.
  std::vector<std::tuple<double, double, unsigned>> &Cands = CandScratch;
  Cands.reserve(NumCols);
  // Rows set aside within one iteration because every eligible entering
  // coefficient was sub-threshold: other violated rows are repaired
  // first, after which a deferred row is usually repairable again (or
  // its violation gone). Only when *every* violated row is stuck does
  // the repair give up.
  std::vector<bool> &RowDeferred = DeferScratch;
  RowDeferred.assign(NumRows, false);
  while (Iterations < Opts.MaxIterations) {
    bool Bland = Rule == Pricing::Bland || StallCount > NumRows + 16;
    bool Dse = DseEnabled && DseValid && !Bland;
    std::fill(RowDeferred.begin(), RowDeferred.end(), false);

    unsigned LR = 0, P = 0;
    double Target = 0.0;
    bool BelowLb = false;
    int BlandPick = -1;
    for (;;) {
      // Leaving row: steepest-edge scores violation^2 per unit of
      // basis-inverse row norm — the row whose repair moves the true
      // (unscaled) infeasibility most per pivot; Dantzig takes the raw
      // worst violation; Bland the lowest basis index among violators.
      // Deferred rows are skipped; ties keep the first (lowest row
      // index) for determinism.
      int Leaving = -1;
      double Worst = Opts.Tolerance;
      double BestScore = 0.0;
      bool DeferredViolated = false;
      for (unsigned R = 0; R != NumRows; ++R) {
        unsigned B = Basis[R];
        double ViolLo = Lo[B] - Beta[R];
        double ViolHi = Beta[R] - Hi[B];
        double V = std::max(ViolLo, ViolHi);
        if (V <= Opts.Tolerance)
          continue;
        if (RowDeferred[R]) {
          if (V > StuckTol)
            DeferredViolated = true;
          continue;
        }
        bool Take;
        double Score = Dse ? V * V / DseWeight[R] : 0.0;
        if (Leaving < 0)
          Take = true;
        else if (Bland)
          Take = B < Basis[static_cast<unsigned>(Leaving)];
        else if (Dse)
          Take = Score > BestScore;
        else
          Take = V > Worst;
        if (Take) {
          Leaving = static_cast<int>(R);
          Worst = std::max(V, Worst);
          BestScore = Score;
          BelowLb = ViolLo >= ViolHi;
        }
      }
      if (Leaving < 0)
        // Every repairable row is inside its box. A still-violated
        // deferred row is numerically stuck: neither reparable nor
        // provably infeasible — give up and let the caller rebuild.
        return DeferredViolated ? LpStatus::IterLimit : LpStatus::Optimal;
      LR = static_cast<unsigned>(Leaving);
      P = Basis[LR];
      Target = BelowLb ? Lo[P] : Hi[P];

      // Entering candidates: the dual ratio test over sign-eligible
      // columns. The leaving variable lands on its violated bound, so
      // the entering one must move *into* its box: at-lower columns need
      // the matching coefficient sign to increase, at-upper ones to
      // decrease; free columns are eligible either way (their reduced
      // cost is ~0, so they win most ratio contests — the standard
      // preference). Fixed columns never enter: a zero-span column
      // cannot absorb any movement, and letting one in (an == row's
      // slack, the artificial analogue) would relax its row. Unlike the
      // primal test, which naturally shuns tiny pivot elements, the dual
      // test would happily divide by one, so pivoting requires a minimum
      // magnitude.
      const double *Lrow = row(LR);
      Cands.clear();
      BlandPick = -1;
      bool SawTiny = false;
      for (unsigned C = 0; C != NumCols; ++C) {
        if (Stat[C] == VStat::Basic || fixed(C))
          continue;
        double A = Lrow[C];
        bool Eligible;
        switch (Stat[C]) {
        case VStat::AtLower:
          Eligible = BelowLb ? A < 0.0 : A > 0.0;
          break;
        case VStat::AtUpper:
          Eligible = BelowLb ? A > 0.0 : A < 0.0;
          break;
        default: // Free
          Eligible = A != 0.0;
          break;
        }
        if (!Eligible)
          continue;
        if (std::abs(A) < PivotTol) {
          SawTiny = true;
          continue;
        }
        if (Bland) {
          BlandPick = static_cast<int>(C);
          break; // first eligible wins, no flips: termination first
        }
        // Dual-feasibility residue is clamped: at-lower costs are >= 0
        // and at-upper <= 0 in exact arithmetic.
        double RC = Stat[C] == VStat::AtLower   ? std::max(Obj[C], 0.0)
                    : Stat[C] == VStat::AtUpper ? std::max(-Obj[C], 0.0)
                                                : std::abs(Obj[C]);
        Cands.push_back({RC / std::abs(A), -std::abs(A), C});
      }
      if (BlandPick >= 0 || !Cands.empty())
        break;
      if (!SawTiny)
        return LpStatus::Infeasible; // this row alone proves it
      RowDeferred[LR] = true; // stuck for now: repair another row first
    }

    ++Iterations;
    const double *Lrow = row(LR);

    // Bound-flipping ratio test. On an all-boxed problem (every
    // placement variable lives in [0, 1]) the plain dual test chains:
    // the entering variable overshoots its own span, lands outside its
    // box and must immediately leave again, so one repair costs a dozen
    // pivots. Walking the candidates in ratio order instead, every
    // column whose whole span cannot absorb the remaining violation
    // *flips* to its opposite bound — an O(rows) value update, no
    // elimination — and the first column that can absorb the rest
    // pivots. Dual feasibility is preserved exactly because a flipped
    // column's reduced cost crosses zero at the chosen pivot ratio: its
    // new sign matches its new side.
    unsigned Q;
    if (BlandPick >= 0) {
      Q = static_cast<unsigned>(BlandPick);
    } else {
      std::sort(Cands.begin(), Cands.end());
      Q = std::get<2>(Cands.back()); // fallback: worst-ratio column
      for (size_t I = 0; I != Cands.size(); ++I) {
        unsigned C = std::get<2>(Cands[I]);
        double AbsA = -std::get<1>(Cands[I]);
        double Span = Stat[C] == VStat::Free ? Inf : Hi[C] - Lo[C];
        double Remaining = std::abs(Beta[LR] - Target);
        if (AbsA * Span >= Remaining || I + 1 == Cands.size()) {
          Q = C;
          break;
        }
        // Flip C across its box; every basic value — the violated row's
        // included — absorbs the move.
        double Delta = Stat[C] == VStat::AtLower ? Span : -Span;
        for (unsigned R = 0; R != NumRows; ++R)
          Beta[R] -= Delta * row(R)[C];
        Stat[C] =
            Stat[C] == VStat::AtLower ? VStat::AtUpper : VStat::AtLower;
        ++BoundFlips;
      }
    }

    // Pivot: the leaving variable goes to its violated bound, the
    // entering one absorbs what the flips left over.
    double DeltaQ = (Beta[LR] - Target) / Lrow[Q];
    for (unsigned R = 0; R != NumRows; ++R)
      if (R != LR)
        Beta[R] -= DeltaQ * row(R)[Q];
    double VQ = nbVal(Q) + DeltaQ;
    Stat[P] = BelowLb ? VStat::AtLower : VStat::AtUpper;
    Stat[Q] = VStat::Basic;
    Beta[LR] = VQ;
    eliminate(LR, Q);

    if (std::abs(DeltaQ) < Opts.Tolerance)
      ++StallCount;
    else
      StallCount = 0;
  }
  return LpStatus::IterLimit;
}

/// Applies bound/RHS differences in place. Returns false when a change
/// cannot be absorbed without breaking dual feasibility (a nonbasic
/// variable forced to switch sides because its resting bound vanished) —
/// the caller then rebuilds cold.
bool WarmState::patchTo(const LpProblem &P, const std::vector<double> &Lower,
                        const std::vector<double> &Upper) {
  bool OK = true;

  // Constraint RHS deltas land through the row's slack column, which
  // holds B^-1 e_r after any pivot sequence.
  for (unsigned I = 0; I != NumCons; ++I) {
    double New = P.Constraints[I].Rhs;
    double Delta = New - AppliedRhs[I];
    if (Delta == 0.0)
      continue;
    AppliedRhs[I] = New;
    int R0 = ConsRow[I];
    if (R0 < 0)
      continue; // constant row: unchanged consistency assumed
    double D = RowScale[static_cast<unsigned>(R0)] * Delta;
    unsigned Id = NumVars + static_cast<unsigned>(R0);
    for (unsigned R = 0; R != NumRows; ++R)
      Beta[R] += D * row(R)[Id];
  }

  // Variable-bound deltas: a nonbasic variable slides along to its moved
  // bound (O(rows) down its column); a basic one merely has its box
  // re-checked by the next dual pass.
  for (unsigned J = 0; J != NumVars; ++J) {
    if (Lower[J] == Lo[J] && Upper[J] == Hi[J])
      continue;
    double OldVal = nbVal(J);
    bool WasBasic = Stat[J] == VStat::Basic;
    Lo[J] = Lower[J];
    Hi[J] = Upper[J];
    if (WasBasic)
      continue;
    // Re-derive the resting side; a forced side switch would break dual
    // feasibility (the reduced-cost sign convention is per side).
    VStat NewStat = Stat[J];
    if (NewStat == VStat::AtLower && !std::isfinite(Lo[J]))
      NewStat = std::isfinite(Hi[J]) ? VStat::AtUpper : VStat::Free;
    else if (NewStat == VStat::AtUpper && !std::isfinite(Hi[J]))
      NewStat = std::isfinite(Lo[J]) ? VStat::AtLower : VStat::Free;
    else if (NewStat == VStat::Free &&
             (std::isfinite(Lo[J]) || std::isfinite(Hi[J])))
      NewStat = std::isfinite(Lo[J]) ? VStat::AtLower : VStat::AtUpper;
    if (NewStat != Stat[J]) {
      OK = false;
      Stat[J] = NewStat;
    }
    double NewVal = nbVal(J);
    double Delta = NewVal - OldVal;
    if (Delta != 0.0)
      for (unsigned R = 0; R != NumRows; ++R)
        Beta[R] -= Delta * row(R)[J];
  }
  return OK;
}

void WarmState::extract(const LpProblem &P, LpSolution &Sol) const {
  Sol.Basis = Basis;
  Sol.Values.assign(NumVars, 0.0);
  for (unsigned J = 0; J != NumVars; ++J)
    if (Stat[J] != VStat::Basic)
      Sol.Values[J] = nbVal(J);
  for (unsigned R = 0; R != NumRows; ++R)
    if (Basis[R] < NumVars)
      Sol.Values[Basis[R]] = Beta[R];
  Sol.Objective = P.objectiveValue(Sol.Values);
}

LpSolution WarmState::solveFresh(const LpProblem &P,
                                 const SolverConfig &Opts) {
  LpSolution Sol;
  PricingSnap Snap = pricingSnap();
  // Feasibility phase: the all-slack start violates boxes exactly where
  // >=/== rows bite. Under the zero objective every status is dual
  // feasible, so the dual simplex is the artificial-free phase 1.
  if (primalInfeasible(Opts.Tolerance)) {
    LpStatus S = dualIterate(Opts, Sol.DualIterations, Sol.BoundFlips);
    if (S != LpStatus::Optimal) {
      Sol.Status = S;
      pricingDelta(Snap, Sol);
      return Sol;
    }
  }
  installObjective(P, Opts);
  Sol.Status = primalIterate(Opts, Sol.Iterations, Sol.BoundFlips);
  pricingDelta(Snap, Sol);
  if (Sol.Status != LpStatus::Optimal)
    return Sol;
  Usable = true;
  extract(P, Sol);
  return Sol;
}

LpSolution ramloc::solveLpWithBounds(const LpProblem &P,
                                     const std::vector<double> &Lower,
                                     const std::vector<double> &Upper,
                                     const SolverConfig &Opts) {
  assert(Lower.size() == P.numVariables() &&
         Upper.size() == P.numVariables() && "bounds size mismatch");
  WarmState W;
  if (!W.build(P, Lower, Upper, Opts)) {
    LpSolution Sol;
    Sol.Status = LpStatus::Infeasible;
    return Sol;
  }
  return W.solveFresh(P, Opts);
}

LpSolution ramloc::solveLp(const LpProblem &P, const SolverConfig &Opts) {
  std::vector<double> Lower(P.numVariables()), Upper(P.numVariables());
  for (unsigned J = 0, E = P.numVariables(); J != E; ++J) {
    Lower[J] = P.Variables[J].Lower;
    Upper[J] = P.Variables[J].Upper;
  }
  return solveLpWithBounds(P, Lower, Upper, Opts);
}

//===----------------------------------------------------------------------===//
// Warm path entry points.
//===----------------------------------------------------------------------===//

WarmStart::WarmStart() = default;
WarmStart::~WarmStart() = default;
WarmStart::WarmStart(WarmStart &&) noexcept = default;
WarmStart &WarmStart::operator=(WarmStart &&) noexcept = default;

bool WarmStart::valid() const { return S && S->Usable; }

void WarmStart::reset() { S.reset(); }

WarmStart WarmStart::clone() const {
  WarmStart C;
  if (S)
    C.S = std::make_unique<WarmState>(*S);
  return C;
}

LpSolution ramloc::resolveLpFromBasis(const LpProblem &P,
                                      const std::vector<double> &Lower,
                                      const std::vector<double> &Upper,
                                      WarmStart &Warm,
                                      const SolverConfig &Opts) {
  LpSolution Sol;
  if (!Warm.valid() || !Warm.S->matches(P))
    return Sol; // IterLimit: nothing to re-optimize from
  WarmState &W = *Warm.S;

  // Bound/RHS diffs are absorbed in place; the reduced costs are
  // untouched, so the basis stays dual feasible and the dual simplex
  // picks up directly. Drift from the incremental updates is bounded by
  // the periodic refactorization in solveLpWarm.
  if (!W.patchTo(P, Lower, Upper)) {
    // A bound side-switch the warm state cannot absorb: rebuild cold.
    W.Usable = false;
    return Sol;
  }
  Sol.WarmStarted = true;
  if (W.anyEmptyBox()) {
    // A crossed box is infeasible by inspection; the state stays
    // coherent, so a later widening patch can continue from here.
    Sol.Status = LpStatus::Infeasible;
    return Sol;
  }
  // Re-optimization earns its keep only while it is cheaper than a fresh
  // solve; a repair that drags on (a far jump across the search tree, or
  // a tableau gone dense) is cut off and rebuilt cold instead. The
  // budget is sized just above what a cold solve typically costs — a
  // repair cut off *below* that line wastes its pivots and then pays the
  // rebuild anyway, which is how a too-tight budget quietly halves warm
  // throughput.
  SolverConfig DualOpts = Opts;
  DualOpts.MaxIterations =
      std::min(Opts.MaxIterations, std::max(128u, W.NumRows + W.NumVars));
  WarmState::PricingSnap Snap = W.pricingSnap();
  LpStatus S = W.dualIterate(DualOpts, Sol.DualIterations, Sol.BoundFlips);
  if (S == LpStatus::Optimal) {
    // The dual ratio test keeps reduced costs sign-correct in exact
    // arithmetic; a short primal pass mops up any numerical residue
    // (almost always zero iterations). It gets the same tight budget: a
    // polish that starts pivoting in earnest signals a basis not worth
    // saving, and the rebuild is cheaper than letting it wander.
    S = W.primalIterate(DualOpts, Sol.Iterations, Sol.BoundFlips);
  }
  W.pricingDelta(Snap, Sol);
  Sol.Status = S;
  if (S == LpStatus::Optimal) {
    W.extract(P, Sol);
  } else if (S != LpStatus::Infeasible) {
    // Iteration limit / unbounded drift: the tableau is no longer
    // trustworthy. A dual-proven Infeasible, by contrast, leaves a
    // dual-feasible basis the next patch can continue from.
    W.Usable = false;
  }
  return Sol;
}

LpSolution ramloc::solveLpWarm(const LpProblem &P,
                               const std::vector<double> &Lower,
                               const std::vector<double> &Upper,
                               WarmStart &Warm, const SolverConfig &Opts) {
  assert(Lower.size() == P.numVariables() &&
         Upper.size() == P.numVariables() && "bounds size mismatch");
  bool HadUsableMatch = Warm.valid() && Warm.S->matches(P);
  // Fault site: pretend the retained tableau is unusable and rebuild
  // cold. Result-neutral by construction — both paths are exact — so
  // injecting here must only move effort counters, never answers; the
  // FaultTest suite pins exactly that.
  if (HadUsableMatch && FaultInjector::shouldFail("solver.degrade"))
    HadUsableMatch = false;
  // A retained tableau past its refactorization cadence is re-derived
  // *in place from its current basis* — pristine rows re-eliminated
  // against the refined basis, Beta and steepest-edge weights
  // re-anchored — and the re-optimization then proceeds warm as usual.
  // Only a numerically singular basis (refactorFromBasis false) or a
  // re-optimization that exhausts its budget below falls back to the
  // cold rebuild-from-scratch path.
  bool Refactorized = false;
  bool Resolvable = HadUsableMatch;
  WarmState::PricingSnap Snap{};
  if (HadUsableMatch)
    Snap = Warm.S->pricingSnap();
  if (Resolvable && Warm.S->needsRefactor(Opts)) {
    if (Warm.S->refactorFromBasis(P, Opts))
      Refactorized = true;
    else
      Resolvable = false;
  }
  if (Resolvable) {
    LpSolution Sol = resolveLpFromBasis(P, Lower, Upper, Warm, Opts);
    if (Sol.Status != LpStatus::IterLimit &&
        Sol.Status != LpStatus::Unbounded) {
      Sol.Refactorized = Refactorized;
      // Fold the refactorization's recomputes/drift (spent before the
      // resolve's own snapshot) into the reported per-solve delta.
      Warm.S->pricingDelta(Snap, Sol);
      return Sol;
    }
    // fall through: rebuild from scratch
  }
  Warm.S = std::make_unique<WarmState>();
  if (!Warm.S->build(P, Lower, Upper, Opts)) {
    LpSolution Sol;
    Sol.Status = LpStatus::Infeasible;
    Sol.Refactorized = HadUsableMatch;
    return Sol;
  }
  LpSolution Sol = Warm.S->solveFresh(P, Opts);
  Sol.Refactorized = HadUsableMatch;
  return Sol;
}
