//===- lp/BranchBound.cpp - 0/1 MIP solver ------------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "lp/BranchBound.h"

#include "support/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

using namespace ramloc;

const char *ramloc::nodeOrderName(NodeOrder O) {
  switch (O) {
  case NodeOrder::Dfs:
    return "dfs";
  case NodeOrder::BestBound:
    return "best-bound";
  case NodeOrder::Hybrid:
    return "hybrid";
  }
  return "?";
}

bool ramloc::nodeOrderFromName(const std::string &Name, NodeOrder &Out) {
  if (Name == "dfs")
    Out = NodeOrder::Dfs;
  else if (Name == "best-bound")
    Out = NodeOrder::BestBound;
  else if (Name == "hybrid")
    Out = NodeOrder::Hybrid;
  else
    return false;
  return true;
}

namespace {

struct Node {
  std::vector<double> Lower;
  std::vector<double> Upper;
  double Bound;      ///< parent LP objective: lower bound on this subtree
  uint64_t Seq = 0;  ///< creation order; deterministic tie-break
  int BranchVar = -1; ///< variable whose bound created this node
  bool BranchUp = false; ///< true: forced to 1; false: forced to 0
  double FracDist = 0.0; ///< fractional distance the branch moved it
};

/// Heap discipline for best-bound mode: the "largest" element (heap top)
/// is the open node with the smallest parent bound; among equal bounds
/// the youngest node wins, which keeps ties diving like Dfs would.
bool worseThan(const Node &A, const Node &B) {
  if (A.Bound != B.Bound)
    return A.Bound > B.Bound;
  return A.Seq < B.Seq;
}

/// Rounds an LP point to the nearest binary assignment; returns true if
/// the rounded point is feasible. Cheap incumbent generator.
bool roundToFeasible(const LpProblem &P, const std::vector<double> &X,
                     std::vector<double> &Out) {
  Out = X;
  for (unsigned J = 0, E = P.numVariables(); J != E; ++J)
    if (P.Variables[J].Integer)
      Out[J] = Out[J] >= 0.5 ? 1.0 : 0.0;
  return P.isFeasible(Out);
}

/// Per-variable branching history: average objective degradation per unit
/// of fraction moved, one estimate per direction. Reset for every
/// solveMip call so a solve's branching decisions depend only on its own
/// tree, not on what a previous knob point explored.
struct PseudoCosts {
  std::vector<double> DownSum, UpSum;
  std::vector<unsigned> DownCnt, UpCnt;

  explicit PseudoCosts(unsigned N)
      : DownSum(N, 0.0), UpSum(N, 0.0), DownCnt(N, 0), UpCnt(N, 0) {}

  void observe(unsigned Var, bool Up, double Degradation, double Dist) {
    double PerUnit = std::max(Degradation, 0.0) / std::max(Dist, 1e-6);
    if (Up) {
      UpSum[Var] += PerUnit;
      ++UpCnt[Var];
    } else {
      DownSum[Var] += PerUnit;
      ++DownCnt[Var];
    }
  }

  double estimate(unsigned Var, bool Up, double Fallback) const {
    unsigned Cnt = Up ? UpCnt[Var] : DownCnt[Var];
    if (Cnt == 0)
      return Fallback;
    return (Up ? UpSum[Var] : DownSum[Var]) / Cnt;
  }
};

/// Picks the branching variable for a fractional relaxation point.
/// Pseudo-cost scoring multiplies the estimated degradation of the two
/// children (the product rule); variables without history score with the
/// tree-wide average so early decisions degrade to most-fractional.
int pickBranchVariable(const LpProblem &P, const std::vector<double> &X,
                       const MipOptions &Opts, const PseudoCosts &PC) {
  int BranchVar = -1;
  double BestScore = 0.0;

  // Tree-wide average per-unit degradation, the fallback estimate.
  double Sum = 0.0;
  unsigned Cnt = 0;
  if (Opts.PseudoCostBranching) {
    for (unsigned J = 0, E = P.numVariables(); J != E; ++J) {
      if (PC.DownCnt[J]) {
        Sum += PC.DownSum[J] / PC.DownCnt[J];
        ++Cnt;
      }
      if (PC.UpCnt[J]) {
        Sum += PC.UpSum[J] / PC.UpCnt[J];
        ++Cnt;
      }
    }
  }
  double Fallback = Cnt ? Sum / Cnt : 1.0;

  for (unsigned J = 0, E = P.numVariables(); J != E; ++J) {
    if (!P.Variables[J].Integer)
      continue;
    double V = X[J];
    double Frac = std::min(V - std::floor(V), std::ceil(V) - V);
    if (Frac <= Opts.IntegerTolerance)
      continue;
    double Score;
    if (Opts.PseudoCostBranching) {
      double Down = V - std::floor(V);
      double Up = std::ceil(V) - V;
      Score = std::max(Down * PC.estimate(J, false, Fallback), 1e-12) *
              std::max(Up * PC.estimate(J, true, Fallback), 1e-12);
    } else {
      Score = Frac;
    }
    if (BranchVar < 0 || Score > BestScore) {
      BranchVar = static_cast<int>(J);
      BestScore = Score;
    }
  }
  return BranchVar;
}

} // namespace

MipSolution ramloc::solveMip(const LpProblem &P, const MipOptions &Opts,
                             MipWarmStart *Warm) {
  MipSolution Best;
  Best.Proven = true; // until the node budget is hit

  // Publish this solve's effort into the global metrics registry on
  // every exit path. The registry is the one source the campaign
  // summaries, the perf harnesses and --metrics snapshots all read, so
  // nobody re-derives pivot counts by hand; recording happens once per
  // solve (never per node or pivot), so the cost is a handful of
  // relaxed atomic adds.
  struct EffortRecorder {
    const MipSolution &Sol;
    ~EffortRecorder() {
      MetricsRegistry &M = globalMetrics();
      M.counter("mip.solves").add();
      M.counter("mip.nodes").add(Sol.NodesExplored);
      M.counter("mip.cold_node_solves").add(Sol.ColdNodeSolves);
      M.counter("mip.warm_node_solves").add(Sol.WarmNodeSolves);
      M.counter("mip.primal_pivots").add(Sol.PrimalPivots);
      M.counter("mip.dual_pivots").add(Sol.DualPivots);
      M.counter("mip.bound_flips").add(Sol.BoundFlips);
      if (Sol.WarmStarted)
        M.counter("mip.warm_starts").add();
      if (Sol.SeededIncumbent)
        M.counter("mip.seeded_incumbents").add();
    }
  } Effort{Best};

  for ([[maybe_unused]] const LpVariable &V : P.Variables)
    assert((!V.Integer || (V.Lower >= 0.0 && V.Upper <= 1.0)) &&
           "only binary integer variables are supported");

  std::vector<double> RootLo(P.numVariables()), RootHi(P.numVariables());
  for (unsigned J = 0, E = P.numVariables(); J != E; ++J) {
    RootLo[J] = P.Variables[J].Lower;
    RootHi[J] = P.Variables[J].Upper;
  }

  // Knob-axis / cross-process reuse: the LP basis survives from the
  // previous solve, and the seeded incumbent — when still feasible under
  // the patched bounds/RHS — opens the search with a proven-quality
  // point, so most of the new tree prunes immediately. The feasibility
  // re-check is exact (zero tolerance): admitting a point that is
  // infeasible by even a whisker could prune the true optimum, whereas
  // spuriously rejecting a boundary-tight seed merely loses a head start.
  WarmStart LocalWs;
  WarmStart &Ws = Warm ? Warm->Lp : LocalWs;
  Best.WarmStarted = Opts.WarmNodes && Ws.valid();

  bool HaveIncumbent = false;
  if (Warm && Warm->Incumbent.size() == P.numVariables() &&
      P.isFeasible(Warm->Incumbent, /*Tol=*/0.0)) {
    HaveIncumbent = true;
    Best.SeededIncumbent = true;
    Best.Status = LpStatus::Optimal;
    Best.Objective = P.objectiveValue(Warm->Incumbent);
    Best.Values = Warm->Incumbent;
  }

  PseudoCosts PC(P.numVariables());

  // The open list doubles as a stack (diving mode) and a binary heap
  // (best-bound mode). Hybrid starts diving and heapifies once the first
  // incumbent exists — from then on pops take the smallest-bound node.
  std::vector<Node> Open;
  uint64_t NextSeq = 0;
  bool HeapMode = Opts.Order == NodeOrder::BestBound ||
                  (Opts.Order == NodeOrder::Hybrid && HaveIncumbent);
  Node Root;
  Root.Lower = std::move(RootLo);
  Root.Upper = std::move(RootHi);
  Root.Bound = -std::numeric_limits<double>::infinity();
  Root.Seq = NextSeq++;
  Open.push_back(std::move(Root));

  while (!Open.empty()) {
    if (Best.NodesExplored >= Opts.MaxNodes) {
      Best.Proven = false;
      break;
    }
    if (!HeapMode && Opts.Order == NodeOrder::Hybrid && HaveIncumbent) {
      std::make_heap(Open.begin(), Open.end(), worseThan);
      HeapMode = true;
    }
    if (HeapMode)
      std::pop_heap(Open.begin(), Open.end(), worseThan);
    Node N = std::move(Open.back());
    Open.pop_back();

    // Bound pruning against the incumbent. In best-bound mode the popped
    // node has the smallest bound of the whole open list, so a prune
    // here proves every remaining node away too.
    if (HaveIncumbent && N.Bound >= Best.Objective - Opts.GapTolerance) {
      if (HeapMode)
        break;
      continue;
    }

    ++Best.NodesExplored;
    LpSolution Relax =
        Opts.WarmNodes
            ? solveLpWarm(P, N.Lower, N.Upper, Ws, Opts.Simplex)
            : solveLpWithBounds(P, N.Lower, N.Upper, Opts.Simplex);
    if (Relax.WarmStarted)
      ++Best.WarmNodeSolves;
    else
      ++Best.ColdNodeSolves;
    Best.PrimalPivots += Relax.Iterations;
    Best.DualPivots += Relax.DualIterations;
    Best.BoundFlips += Relax.BoundFlips;

    // Feed the branching history: this node's relaxation tells us what
    // its creating branch actually cost per unit of fraction moved.
    if (N.BranchVar >= 0 && std::isfinite(N.Bound) &&
        Relax.Status == LpStatus::Optimal)
      PC.observe(static_cast<unsigned>(N.BranchVar), N.BranchUp,
                 Relax.Objective - N.Bound, N.FracDist);

    if (Relax.Status == LpStatus::Infeasible)
      continue;
    if (Relax.Status == LpStatus::Unbounded) {
      // A bounded-binary MIP with unbounded relaxation direction in the
      // continuous part: treat as a hard failure.
      Best.Status = LpStatus::Unbounded;
      return Best;
    }
    if (Relax.Status == LpStatus::IterLimit) {
      Best.Proven = false;
      continue;
    }
    if (HaveIncumbent &&
        Relax.Objective >= Best.Objective - Opts.GapTolerance)
      continue;

    int BranchVar = pickBranchVariable(P, Relax.Values, Opts, PC);

    if (BranchVar < 0) {
      // Integral: new incumbent.
      if (!HaveIncumbent || Relax.Objective < Best.Objective) {
        HaveIncumbent = true;
        Best.Status = LpStatus::Optimal;
        Best.Objective = Relax.Objective;
        Best.Values = Relax.Values;
      }
      continue;
    }

    // Rounding heuristic for an early incumbent.
    std::vector<double> Rounded;
    if (!HaveIncumbent && roundToFeasible(P, Relax.Values, Rounded)) {
      double Obj = P.objectiveValue(Rounded);
      HaveIncumbent = true;
      Best.Status = LpStatus::Optimal;
      Best.Objective = Obj;
      Best.Values = std::move(Rounded);
    }

    unsigned BV = static_cast<unsigned>(BranchVar);
    double Frac = Relax.Values[BV];
    Node Zero{N.Lower, N.Upper, Relax.Objective, 0, BranchVar, false, Frac};
    Zero.Upper[BV] = 0.0;
    Node One{std::move(N.Lower), std::move(N.Upper), Relax.Objective, 0,
             BranchVar, true, 1.0 - Frac};
    One.Lower[BV] = 1.0;
    // Explore the closer side first: the stack pops the last pushed
    // node, and the heap breaks bound ties towards the younger Seq.
    auto push = [&](Node &&Child) {
      Child.Seq = NextSeq++;
      Open.push_back(std::move(Child));
      if (HeapMode)
        std::push_heap(Open.begin(), Open.end(), worseThan);
    };
    if (Frac >= 0.5) {
      push(std::move(Zero));
      push(std::move(One));
    } else {
      push(std::move(One));
      push(std::move(Zero));
    }
  }

  if (Warm)
    Warm->Incumbent =
        Best.feasible() ? Best.Values : std::vector<double>();
  return Best;
}
