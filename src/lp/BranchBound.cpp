//===- lp/BranchBound.cpp - 0/1 MIP solver ------------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "lp/BranchBound.h"

#include "support/Metrics.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

using namespace ramloc;

namespace {

struct Node {
  std::vector<double> Lower;
  std::vector<double> Upper;
  double Bound;      ///< parent LP objective: lower bound on this subtree
  uint64_t Seq = 0;  ///< creation order; heap tie-break towards diving
  int BranchVar = -1; ///< variable whose bound created this node
  bool BranchUp = false; ///< true: forced to 1; false: forced to 0
  double FracDist = 0.0; ///< fractional distance the branch moved it
};

/// Heap discipline for best-bound mode: the "largest" element (heap top)
/// is the open node with the smallest parent bound; among equal bounds
/// the youngest node wins, which keeps ties diving like Dfs would.
bool worseThan(const Node &A, const Node &B) {
  if (A.Bound != B.Bound)
    return A.Bound > B.Bound;
  return A.Seq < B.Seq;
}

/// Rounds an LP point to the nearest binary assignment; returns true if
/// the rounded point is feasible. Cheap incumbent generator.
bool roundToFeasible(const LpProblem &P, const std::vector<double> &X,
                     std::vector<double> &Out) {
  Out = X;
  for (unsigned J = 0, E = P.numVariables(); J != E; ++J)
    if (P.Variables[J].Integer)
      Out[J] = Out[J] >= 0.5 ? 1.0 : 0.0;
  return P.isFeasible(Out);
}

/// Snaps every integral-within-tolerance integer variable to its exact
/// 0/1 value. Incumbents are canonicalized before they are compared or
/// stored, so the same binary assignment reached through two different
/// tableau histories (warm chains drift in the last bits) produces one
/// representative point.
void snapIntegers(const LpProblem &P, std::vector<double> &V, double IntTol) {
  for (unsigned J = 0, E = P.numVariables(); J != E; ++J) {
    if (!P.Variables[J].Integer)
      continue;
    double R = std::round(V[J]);
    if (std::abs(V[J] - R) <= IntTol)
      V[J] = R;
  }
}

/// The canonical incumbent order (see BranchBound.h): a candidate
/// replaces the current best only on a strictly smaller objective, or a
/// bit-equal objective with a lexicographically smaller assignment. The
/// relation is a total order on candidate points, so the surviving
/// incumbent is independent of the order candidates arrive in — the
/// property the parallel search's determinism rests on. The serial path
/// applies the same rule so thread counts agree.
bool canonicallyBetter(double Obj, const std::vector<double> &V, bool HaveCur,
                       double CurObj, const std::vector<double> &CurV) {
  if (!HaveCur)
    return true;
  if (Obj != CurObj)
    return Obj < CurObj;
  return std::lexicographical_compare(V.begin(), V.end(), CurV.begin(),
                                      CurV.end());
}

/// The solve's cooperative limits, resolved once at entry. Limits are
/// checked at node granularity — a node's LP solve always runs to its
/// own completion — so hitting one loses the optimality proof but never
/// corrupts state: the search simply stops expanding and keeps whatever
/// incumbent it holds. The node cap folds SolverConfig::NodeLimit into
/// the long-standing MaxNodes backstop (effective cap = min of the two),
/// so with every limit at its 0 default the search behaves bit-for-bit
/// as before.
struct SearchLimits {
  std::chrono::steady_clock::time_point Deadline{};
  bool HaveDeadline = false;
  uint64_t NodeCap = 0;
  uint64_t PivotCap = 0; ///< 0 = unlimited

  explicit SearchLimits(const SolverConfig &Cfg) {
    if (Cfg.TimeLimitMs) {
      HaveDeadline = true;
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(Cfg.TimeLimitMs);
    }
    NodeCap = Cfg.MaxNodes;
    if (Cfg.NodeLimit && Cfg.NodeLimit < NodeCap)
      NodeCap = Cfg.NodeLimit;
    PivotCap = Cfg.PivotLimit;
  }

  bool deadlinePassed() const {
    return HaveDeadline && std::chrono::steady_clock::now() >= Deadline;
  }
  bool pivotsExhausted(uint64_t PivotsSpent) const {
    return PivotCap != 0 && PivotsSpent >= PivotCap;
  }
};

/// Derives the one-word trust label from what the finished search
/// established. The mapping is deliberately conservative: any lost proof
/// demotes a feasible answer to FeasibleLimit, and anything without a
/// trustworthy point (unbounded relaxation, limit-before-incumbent,
/// root iteration limit) is Aborted — a degraded answer must never read
/// as Optimal downstream.
void finalizeOutcome(MipSolution &Sol) {
  if (Sol.Status == LpStatus::Optimal)
    Sol.Outcome =
        Sol.Proven ? SolveStatus::Optimal : SolveStatus::FeasibleLimit;
  else if (Sol.Status == LpStatus::Infeasible && Sol.Proven)
    Sol.Outcome = SolveStatus::InfeasibleProven;
  else
    Sol.Outcome = SolveStatus::Aborted;
}

/// Per-variable branching history: average objective degradation per unit
/// of fraction moved, one estimate per direction. Reset for every
/// solveMip call (and kept per worker in the parallel search) so a
/// solve's branching decisions depend only on its own tree, not on what a
/// previous knob point explored.
struct PseudoCosts {
  std::vector<double> DownSum, UpSum;
  std::vector<unsigned> DownCnt, UpCnt;

  explicit PseudoCosts(unsigned N)
      : DownSum(N, 0.0), UpSum(N, 0.0), DownCnt(N, 0), UpCnt(N, 0) {}

  void observe(unsigned Var, bool Up, double Degradation, double Dist) {
    double PerUnit = std::max(Degradation, 0.0) / std::max(Dist, 1e-6);
    if (Up) {
      UpSum[Var] += PerUnit;
      ++UpCnt[Var];
    } else {
      DownSum[Var] += PerUnit;
      ++DownCnt[Var];
    }
  }

  double estimate(unsigned Var, bool Up, double Fallback) const {
    unsigned Cnt = Up ? UpCnt[Var] : DownCnt[Var];
    if (Cnt == 0)
      return Fallback;
    return (Up ? UpSum[Var] : DownSum[Var]) / Cnt;
  }
};

/// Folds one node relaxation's effort into the search ledger.
void accumulateLp(SolverStats &St, const LpSolution &Relax) {
  if (Relax.WarmStarted)
    ++St.WarmNodeSolves;
  else
    ++St.ColdNodeSolves;
  St.PrimalPivots += Relax.Iterations;
  St.DualPivots += Relax.DualIterations;
  St.BoundFlips += Relax.BoundFlips;
  if (Relax.Refactorized)
    ++St.Refactorizations;
  St.PricingUpdates += Relax.PricingUpdates;
  St.PricingRecomputes += Relax.PricingRecomputes;
  St.PricingDrift += Relax.PricingDrift;
}

/// Picks the branching variable for a fractional relaxation point.
/// Pseudo-cost scoring multiplies the estimated degradation of the two
/// children (the product rule); variables without history score with the
/// tree-wide average so early decisions degrade to most-fractional.
int pickBranchVariable(const LpProblem &P, const std::vector<double> &X,
                       const SolverConfig &Opts, const PseudoCosts &PC) {
  int BranchVar = -1;
  double BestScore = 0.0;

  // Tree-wide average per-unit degradation, the fallback estimate.
  double Sum = 0.0;
  unsigned Cnt = 0;
  if (Opts.PseudoCostBranching) {
    for (unsigned J = 0, E = P.numVariables(); J != E; ++J) {
      if (PC.DownCnt[J]) {
        Sum += PC.DownSum[J] / PC.DownCnt[J];
        ++Cnt;
      }
      if (PC.UpCnt[J]) {
        Sum += PC.UpSum[J] / PC.UpCnt[J];
        ++Cnt;
      }
    }
  }
  double Fallback = Cnt ? Sum / Cnt : 1.0;

  for (unsigned J = 0, E = P.numVariables(); J != E; ++J) {
    if (!P.Variables[J].Integer)
      continue;
    double V = X[J];
    double Frac = std::min(V - std::floor(V), std::ceil(V) - V);
    if (Frac <= Opts.IntegerTolerance)
      continue;
    double Score;
    if (Opts.PseudoCostBranching) {
      double Down = V - std::floor(V);
      double Up = std::ceil(V) - V;
      Score = std::max(Down * PC.estimate(J, false, Fallback), 1e-12) *
              std::max(Up * PC.estimate(J, true, Fallback), 1e-12);
    } else {
      Score = Frac;
    }
    if (BranchVar < 0 || Score > BestScore) {
      BranchVar = static_cast<int>(J);
      BestScore = Score;
    }
  }
  return BranchVar;
}

/// Splits \p N on \p BranchVar and hands both children to \p Push,
/// closer side last: a LIFO shard pops the last pushed node, and the
/// heap breaks bound ties towards the younger Seq — either way the
/// search dives into the half the relaxation already leans towards.
template <typename PushFn>
void branchNode(Node &&N, int BranchVar, double Frac, double Bound,
                PushFn &&Push) {
  unsigned BV = static_cast<unsigned>(BranchVar);
  Node Zero{N.Lower, N.Upper, Bound, 0, BranchVar, false, Frac};
  Zero.Upper[BV] = 0.0;
  Node One{std::move(N.Lower), std::move(N.Upper), Bound, 0, BranchVar, true,
           1.0 - Frac};
  One.Lower[BV] = 1.0;
  if (Frac >= 0.5) {
    Push(std::move(Zero));
    Push(std::move(One));
  } else {
    Push(std::move(One));
    Push(std::move(Zero));
  }
}

//===----------------------------------------------------------------------===//
// Root strong branching.
//===----------------------------------------------------------------------===//

/// Probes the top-K branching candidates at the root by actually solving
/// both children with bounded dual re-solves, and seeds the pseudo-cost
/// history with the observed degradations — so the very first branching
/// decision already ranks by measured impact instead of raw fraction.
/// Candidates are ranked most-fractional-first (no pseudo-costs exist at
/// the root yet), two probes per candidate, fanned over up to
/// SolverConfig::Threads worker threads.
///
/// Determinism: every probe re-optimizes its *own clone* of the solved
/// root tableau, so each probe's outcome and pivot count are independent
/// of which thread ran it and in what order; results land in fixed
/// per-probe slots and are folded into the pseudo-cost history in
/// candidate order after all probes finish. Probes only inform the
/// branching order (inconclusive ones are simply skipped), so the
/// search's answer is byte-identical with strong branching on or off.
void strongBranchRoot(const LpProblem &P, const SolverConfig &Cfg,
                      const SearchLimits &Limits, const WarmStart &RootWs,
                      const std::vector<double> &RootLo,
                      const std::vector<double> &RootHi,
                      const LpSolution &Root, PseudoCosts &PC,
                      SolverStats &St) {
  struct Cand {
    unsigned Var;
    double DownDist; ///< V - floor(V); up distance is 1 - DownDist
  };
  std::vector<Cand> Cands;
  for (unsigned J = 0, E = P.numVariables(); J != E; ++J) {
    if (!P.Variables[J].Integer)
      continue;
    double V = Root.Values[J];
    double Down = V - std::floor(V);
    if (std::min(Down, 1.0 - Down) > Cfg.IntegerTolerance)
      Cands.push_back({J, Down});
  }
  std::stable_sort(Cands.begin(), Cands.end(),
                   [](const Cand &A, const Cand &B) {
                     return std::min(A.DownDist, 1.0 - A.DownDist) >
                            std::min(B.DownDist, 1.0 - B.DownDist);
                   });
  if (Cands.size() > Cfg.StrongBranchK)
    Cands.resize(Cfg.StrongBranchK);
  if (Cands.empty())
    return;

  struct Probe {
    unsigned Var;
    bool Up;
    double Dist;
  };
  std::vector<Probe> Probes;
  Probes.reserve(Cands.size() * 2);
  for (const Cand &C : Cands) {
    Probes.push_back({C.Var, false, C.DownDist});
    Probes.push_back({C.Var, true, 1.0 - C.DownDist});
  }

  struct Result {
    bool Conclusive = false;
    double Degradation = 0.0;
  };
  std::vector<Result> Results(Probes.size());
  unsigned Pool = std::min<size_t>(std::max(1u, Cfg.Threads), Probes.size());
  std::vector<SolverStats> ProbeStats(Pool);
  std::atomic<size_t> NextProbe{0};

  auto runProbes = [&](unsigned T) {
    SolverStats &S = ProbeStats[T];
    for (;;) {
      size_t I = NextProbe.fetch_add(1, std::memory_order_relaxed);
      if (I >= Probes.size())
        return;
      // A passed deadline drains the remaining probes unrun (their
      // slots stay inconclusive): probes are a head start, never owed.
      if (Limits.deadlinePassed())
        continue;
      const Probe &Pr = Probes[I];
      WarmStart W = RootWs.clone();
      std::vector<double> Lo = RootLo, Hi = RootHi;
      if (Pr.Up)
        Lo[Pr.Var] = 1.0;
      else
        Hi[Pr.Var] = 0.0;
      LpSolution Child = resolveLpFromBasis(P, Lo, Hi, W, Cfg);
      ++S.StrongBranchProbes;
      S.PrimalPivots += Child.Iterations;
      S.DualPivots += Child.DualIterations;
      S.BoundFlips += Child.BoundFlips;
      S.PricingUpdates += Child.PricingUpdates;
      S.PricingRecomputes += Child.PricingRecomputes;
      S.PricingDrift += Child.PricingDrift;
      if (Child.Status == LpStatus::Optimal)
        Results[I] = {true, Child.Objective - Root.Objective};
    }
  };

  if (Pool <= 1) {
    runProbes(0);
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(Pool);
    for (unsigned T = 0; T != Pool; ++T)
      Threads.emplace_back([&, T] { runProbes(T); });
    for (std::thread &T : Threads)
      T.join();
  }

  // Seed in fixed probe order so the pseudo-cost sums are bit-identical
  // regardless of thread scheduling.
  for (size_t I = 0; I != Probes.size(); ++I) {
    if (!Results[I].Conclusive)
      continue;
    PC.observe(Probes[I].Var, Probes[I].Up, Results[I].Degradation,
               Probes[I].Dist);
    ++St.StrongBranchSeeds;
  }
  for (const SolverStats &S : ProbeStats)
    St.merge(S);
}

//===----------------------------------------------------------------------===//
// Parallel tree search.
//===----------------------------------------------------------------------===//

/// Work-stealing search over the open list, JobQueue-style: one deque
/// shard per worker, own-end pops, sibling steals when dry. Dfs shards
/// pop their own back (diving) and steal a victim's *front* — the oldest
/// node, closest to the root, i.e. the largest unexplored subtree, which
/// keeps steals rare. Best-bound shards maintain the heap discipline
/// in-place (deque iterators are random-access), and a steal takes the
/// victim's heap top; Hybrid shards convert to heaps lazily once the
/// shared incumbent exists. Termination and result selection are in
/// BranchBound.h's file comment: Pending/Queued counters close the
/// search, the canonical incumbent order makes the answer independent of
/// worker scheduling.
struct ParallelTree {
  struct Shard {
    std::deque<Node> Q;
    std::mutex Mu;
    bool Heap = false;
  };

  const LpProblem &P;
  const SolverConfig &Cfg;
  const SearchLimits &Limits;
  unsigned NumWorkers;
  const WarmStart *RootWs; ///< solved root tableau each worker clones

  std::vector<Shard> Shards;

  std::mutex StateMu;
  std::condition_variable WorkCv;
  size_t Queued = 0;  ///< unclaimed nodes across all shards
  size_t Pending = 0; ///< unclaimed + in-flight nodes
  bool Stopping = false; ///< hard abort (unbounded relaxation)

  // Shared incumbent. BestObj is a monotone non-increasing pruning bound
  // read with relaxed loads on the hot path; installs go through IncMu
  // and the canonical order.
  std::atomic<bool> HaveInc{false};
  std::atomic<double> BestObj{std::numeric_limits<double>::infinity()};
  std::mutex IncMu;
  double IncObjective = 0.0;
  std::vector<double> IncValues;

  std::atomic<uint64_t> NextSeq{0};
  std::atomic<unsigned> Explored{0};
  std::atomic<bool> LostProof{false};
  std::atomic<bool> SawUnbounded{false};
  /// Simplex pivots spent search-wide (root solve seeds it; every node
  /// adds its own after the LP returns). Only read when a PivotLimit is
  /// set; one relaxed add per node keeps it off the hot path.
  std::atomic<uint64_t> PivotsUsed{0};

  std::vector<SolverStats> WorkerStats;

  ParallelTree(const LpProblem &P, const SolverConfig &Cfg,
               const SearchLimits &Limits, unsigned NumWorkers,
               const WarmStart *RootWs)
      : P(P), Cfg(Cfg), Limits(Limits), NumWorkers(NumWorkers), RootWs(RootWs),
        Shards(NumWorkers), WorkerStats(NumWorkers) {
    if (Cfg.Order == NodeOrder::BestBound)
      for (Shard &S : Shards)
        S.Heap = true;
  }

  void seedIncumbent(double Obj, std::vector<double> Values) {
    IncObjective = Obj;
    IncValues = std::move(Values);
    BestObj.store(Obj, std::memory_order_relaxed);
    HaveInc.store(true, std::memory_order_relaxed);
  }

  void offerIncumbent(std::vector<double> &&V, double Obj) {
    std::lock_guard<std::mutex> L(IncMu);
    if (canonicallyBetter(Obj, V, HaveInc.load(std::memory_order_relaxed),
                          IncObjective, IncValues)) {
      IncObjective = Obj;
      IncValues = std::move(V);
      BestObj.store(Obj, std::memory_order_relaxed);
      HaveInc.store(true, std::memory_order_release);
    }
  }

  /// Hybrid shards flip to the heap discipline the first time they are
  /// touched after the shared incumbent appears. Caller holds S.Mu.
  void maybeConvert(Shard &S) {
    if (!S.Heap && Cfg.Order == NodeOrder::Hybrid &&
        HaveInc.load(std::memory_order_relaxed)) {
      std::make_heap(S.Q.begin(), S.Q.end(), worseThan);
      S.Heap = true;
    }
  }

  /// Direct push during single-threaded setup (root children).
  void pushInitial(Node &&N) {
    N.Seq = NextSeq.fetch_add(1, std::memory_order_relaxed);
    Shard &S = Shards[0];
    S.Q.push_back(std::move(N));
    if (S.Heap)
      std::push_heap(S.Q.begin(), S.Q.end(), worseThan);
    ++Queued;
    ++Pending;
  }

  void pushChild(unsigned Me, Node &&N) {
    N.Seq = NextSeq.fetch_add(1, std::memory_order_relaxed);
    Shard &S = Shards[Me];
    {
      std::lock_guard<std::mutex> L(S.Mu);
      maybeConvert(S);
      S.Q.push_back(std::move(N));
      if (S.Heap)
        std::push_heap(S.Q.begin(), S.Q.end(), worseThan);
    }
    {
      std::lock_guard<std::mutex> L(StateMu);
      ++Queued;
      ++Pending;
    }
    WorkCv.notify_one();
  }

  /// Pops one node from \p Victim. Owners and thieves use the same heap
  /// pop in heap mode (the best-bound node matters more than locality);
  /// in diving mode the owner takes its newest node and a thief the
  /// victim's oldest.
  bool tryPop(unsigned Victim, bool Stealing, Node &Out) {
    Shard &S = Shards[Victim];
    std::lock_guard<std::mutex> L(S.Mu);
    maybeConvert(S);
    if (S.Q.empty())
      return false;
    if (S.Heap) {
      std::pop_heap(S.Q.begin(), S.Q.end(), worseThan);
      Out = std::move(S.Q.back());
      S.Q.pop_back();
    } else if (Stealing) {
      Out = std::move(S.Q.front());
      S.Q.pop_front();
    } else {
      Out = std::move(S.Q.back());
      S.Q.pop_back();
    }
    return true;
  }

  /// Blocks until a node is claimed or the search is over. A claim
  /// reserves one node by decrementing Queued (pushes make the node
  /// visible in its shard *before* incrementing Queued, so a reservation
  /// is always backed); the scan then walks own shard first, siblings
  /// after, retrying on the rare transient miss where concurrent claims
  /// and pushes shuffle which shard holds the backing node.
  bool claimNode(unsigned Me, Node &Out) {
    {
      std::unique_lock<std::mutex> L(StateMu);
      WorkCv.wait(L, [&] { return Stopping || Pending == 0 || Queued > 0; });
      if (Stopping || Queued == 0)
        return false;
      --Queued;
    }
    for (;;) {
      for (unsigned K = 0; K != NumWorkers; ++K)
        if (tryPop((Me + K) % NumWorkers, /*Stealing=*/K != 0, Out))
          return true;
      std::this_thread::yield();
      std::lock_guard<std::mutex> L(StateMu);
      if (Stopping)
        return false;
    }
  }

  void finishNode() {
    std::lock_guard<std::mutex> L(StateMu);
    --Pending;
    if (Pending == 0)
      WorkCv.notify_all();
  }

  void abortSearch() {
    {
      std::lock_guard<std::mutex> L(StateMu);
      Stopping = true;
    }
    WorkCv.notify_all();
  }

  void processNode(unsigned Me, Node N, WarmStart &W, PseudoCosts &PC,
                   SolverStats &St) {
    // Cooperative deadline / pivot-budget check. Unlike the node cap,
    // these limits stop the *whole* search, not just this node: the
    // budget is global, so once it is spent every shard's remaining
    // nodes are equally unaffordable and waking siblings to re-discover
    // that wastes the caller's deadline.
    if (Limits.deadlinePassed() ||
        Limits.pivotsExhausted(PivotsUsed.load(std::memory_order_relaxed))) {
      LostProof.store(true, std::memory_order_relaxed);
      abortSearch();
      return;
    }
    if (N.Bound >= BestObj.load(std::memory_order_relaxed) - Cfg.GapTolerance)
      return;
    uint64_t Ticket = Explored.fetch_add(1, std::memory_order_relaxed);
    if (Ticket >= Limits.NodeCap) {
      Explored.fetch_sub(1, std::memory_order_relaxed);
      LostProof.store(true, std::memory_order_relaxed);
      return;
    }

    LpSolution Relax = Cfg.WarmNodes
                           ? solveLpWarm(P, N.Lower, N.Upper, W, Cfg)
                           : solveLpWithBounds(P, N.Lower, N.Upper, Cfg);
    accumulateLp(St, Relax);
    PivotsUsed.fetch_add(Relax.Iterations + Relax.DualIterations,
                         std::memory_order_relaxed);

    if (N.BranchVar >= 0 && std::isfinite(N.Bound) &&
        Relax.Status == LpStatus::Optimal)
      PC.observe(static_cast<unsigned>(N.BranchVar), N.BranchUp,
                 Relax.Objective - N.Bound, N.FracDist);

    if (Relax.Status == LpStatus::Infeasible)
      return;
    if (Relax.Status == LpStatus::Unbounded) {
      SawUnbounded.store(true, std::memory_order_relaxed);
      abortSearch();
      return;
    }
    if (Relax.Status == LpStatus::IterLimit) {
      LostProof.store(true, std::memory_order_relaxed);
      return;
    }
    if (Relax.Objective >=
        BestObj.load(std::memory_order_relaxed) - Cfg.GapTolerance)
      return;

    int BranchVar = pickBranchVariable(P, Relax.Values, Cfg, PC);
    if (BranchVar < 0) {
      std::vector<double> Cand = std::move(Relax.Values);
      snapIntegers(P, Cand, Cfg.IntegerTolerance);
      double Obj = P.objectiveValue(Cand);
      offerIncumbent(std::move(Cand), Obj);
      return;
    }

    if (!HaveInc.load(std::memory_order_relaxed)) {
      std::vector<double> Rounded;
      if (roundToFeasible(P, Relax.Values, Rounded)) {
        double Obj = P.objectiveValue(Rounded);
        offerIncumbent(std::move(Rounded), Obj);
      }
    }

    double Frac = Relax.Values[static_cast<unsigned>(BranchVar)];
    branchNode(std::move(N), BranchVar, Frac, Relax.Objective,
               [&](Node &&Child) { pushChild(Me, std::move(Child)); });
  }

  /// Root pseudo-cost history (strong-branching seeds) every worker
  /// starts its own copy from; null = start empty.
  const PseudoCosts *SeedPC = nullptr;

  void worker(unsigned Me) {
    WarmStart W;
    if (Cfg.WarmNodes && RootWs)
      W = RootWs->clone();
    PseudoCosts PC = SeedPC ? *SeedPC : PseudoCosts(P.numVariables());
    SolverStats &St = WorkerStats[Me];
    Node N;
    while (claimNode(Me, N)) {
      processNode(Me, std::move(N), W, PC, St);
      finishNode();
    }
  }

  void run() {
    std::vector<std::thread> Threads;
    Threads.reserve(NumWorkers);
    for (unsigned I = 0; I != NumWorkers; ++I)
      Threads.emplace_back([this, I] { worker(I); });
    for (std::thread &T : Threads)
      T.join();
  }
};

/// The search proper. The public solveMip wraps this to stamp the
/// Outcome label and publish effort metrics on every exit path, so the
/// body is free to return early wherever the tree ends.
MipSolution solveMipImpl(const LpProblem &P, const SolverConfig &Cfg,
                         MipWarmStart *Warm) {
  MipSolution Best;
  Best.Proven = true; // until a node/pivot/time budget is hit

  // Resolve the cooperative limits once: the deadline anchors to this
  // call's entry, and the node cap folds NodeLimit into MaxNodes.
  SearchLimits Limits(Cfg);

  for ([[maybe_unused]] const LpVariable &V : P.Variables)
    assert((!V.Integer || (V.Lower >= 0.0 && V.Upper <= 1.0)) &&
           "only binary integer variables are supported");

  std::vector<double> RootLo(P.numVariables()), RootHi(P.numVariables());
  for (unsigned J = 0, E = P.numVariables(); J != E; ++J) {
    RootLo[J] = P.Variables[J].Lower;
    RootHi[J] = P.Variables[J].Upper;
  }

  // Knob-axis / cross-process reuse: the LP basis survives from the
  // previous solve, and the seeded incumbent — when still feasible under
  // the patched bounds/RHS — opens the search with a proven-quality
  // point, so most of the new tree prunes immediately. The feasibility
  // re-check is exact (zero tolerance): admitting a point that is
  // infeasible by even a whisker could prune the true optimum, whereas
  // spuriously rejecting a boundary-tight seed merely loses a head start.
  WarmStart LocalWs;
  WarmStart &Ws = Warm ? Warm->Lp : LocalWs;
  Best.Stats.WarmStarted = Cfg.WarmNodes && Ws.valid();

  bool HaveIncumbent = false;
  if (Warm && Warm->Incumbent.size() == P.numVariables() &&
      P.isFeasible(Warm->Incumbent, /*Tol=*/0.0)) {
    HaveIncumbent = true;
    Best.Stats.SeededIncumbent = true;
    Best.Status = LpStatus::Optimal;
    Best.Objective = P.objectiveValue(Warm->Incumbent);
    Best.Values = Warm->Incumbent;
  }

  unsigned Threads = std::max(1u, Cfg.Threads);

  if (Threads > 1) {
    //===--- Parallel tree search ------------------------------------------===//
    // The root relaxation is solved serially on the caller's tableau —
    // preserving the cross-solve warm-start semantics and the campaign's
    // cold/warm accounting — then the tree below it fans out over the
    // work-stealing pool, each worker re-optimizing its own clone of the
    // solved root tableau.
    if (Limits.NodeCap == 0) {
      Best.Proven = false;
      return Best;
    }
    ++Best.NodesExplored;
    LpSolution Relax = Cfg.WarmNodes
                           ? solveLpWarm(P, RootLo, RootHi, Ws, Cfg)
                           : solveLpWithBounds(P, RootLo, RootHi, Cfg);
    accumulateLp(Best.Stats, Relax);

    if (Relax.Status == LpStatus::Unbounded) {
      Best.Status = LpStatus::Unbounded;
      return Best;
    }
    if (Relax.Status == LpStatus::IterLimit) {
      Best.Proven = false;
      return Best;
    }
    if (Relax.Status == LpStatus::Optimal &&
        !(HaveIncumbent &&
          Relax.Objective >= Best.Objective - Cfg.GapTolerance)) {
      ParallelTree PT(P, Cfg, Limits, Threads, Cfg.WarmNodes ? &Ws : nullptr);
      if (HaveIncumbent)
        PT.seedIncumbent(Best.Objective, Best.Values);

      PseudoCosts RootPC(P.numVariables());
      if (Cfg.StrongBranchK && Cfg.WarmNodes && Ws.valid())
        strongBranchRoot(P, Cfg, Limits, Ws, RootLo, RootHi, Relax, RootPC,
                         Best.Stats);
      PT.SeedPC = &RootPC;
      // The root solve's (and any strong-branch probes') pivots count
      // against the search-wide budget.
      PT.PivotsUsed.store(Best.Stats.PrimalPivots + Best.Stats.DualPivots,
                          std::memory_order_relaxed);
      int BranchVar = pickBranchVariable(P, Relax.Values, Cfg, RootPC);
      if (BranchVar < 0) {
        std::vector<double> Cand = std::move(Relax.Values);
        snapIntegers(P, Cand, Cfg.IntegerTolerance);
        double Obj = P.objectiveValue(Cand);
        PT.offerIncumbent(std::move(Cand), Obj);
      } else {
        if (!PT.HaveInc.load(std::memory_order_relaxed)) {
          std::vector<double> Rounded;
          if (roundToFeasible(P, Relax.Values, Rounded)) {
            double Obj = P.objectiveValue(Rounded);
            PT.offerIncumbent(std::move(Rounded), Obj);
          }
        }
        Node Root;
        Root.Lower = std::move(RootLo);
        Root.Upper = std::move(RootHi);
        double Frac = Relax.Values[static_cast<unsigned>(BranchVar)];
        branchNode(std::move(Root), BranchVar, Frac, Relax.Objective,
                   [&](Node &&Child) { PT.pushInitial(std::move(Child)); });
        PT.run();
      }

      Best.NodesExplored += PT.Explored.load(std::memory_order_relaxed);
      for (const SolverStats &St : PT.WorkerStats)
        Best.Stats.merge(St);
      if (PT.SawUnbounded.load(std::memory_order_relaxed)) {
        Best.Status = LpStatus::Unbounded;
        return Best;
      }
      if (PT.LostProof.load(std::memory_order_relaxed))
        Best.Proven = false;
      if (PT.HaveInc.load(std::memory_order_acquire)) {
        Best.Status = LpStatus::Optimal;
        Best.Objective = PT.IncObjective;
        Best.Values = std::move(PT.IncValues);
      }
    }
    if (Warm)
      Warm->Incumbent =
          Best.feasible() ? Best.Values : std::vector<double>();
    return Best;
  }

  //===--- Serial tree search ----------------------------------------------===//

  PseudoCosts PC(P.numVariables());

  // The open list doubles as a stack (diving mode) and a binary heap
  // (best-bound mode). Hybrid starts diving and heapifies once the first
  // incumbent exists — from then on pops take the smallest-bound node.
  std::vector<Node> Open;
  uint64_t NextSeq = 0;
  bool HeapMode = Cfg.Order == NodeOrder::BestBound ||
                  (Cfg.Order == NodeOrder::Hybrid && HaveIncumbent);
  Node Root;
  Root.Lower = std::move(RootLo);
  Root.Upper = std::move(RootHi);
  Root.Bound = -std::numeric_limits<double>::infinity();
  Root.Seq = NextSeq++;
  Open.push_back(std::move(Root));

  while (!Open.empty()) {
    // Cooperative limits, checked once per node between LP solves: the
    // node cap, the search-wide pivot budget spent so far, and the
    // wall-clock deadline. Breaking with nodes still open loses the
    // optimality proof but keeps the incumbent.
    if (Best.NodesExplored >= Limits.NodeCap ||
        Limits.pivotsExhausted(Best.Stats.PrimalPivots +
                               Best.Stats.DualPivots) ||
        Limits.deadlinePassed()) {
      Best.Proven = false;
      break;
    }
    if (!HeapMode && Cfg.Order == NodeOrder::Hybrid && HaveIncumbent) {
      std::make_heap(Open.begin(), Open.end(), worseThan);
      HeapMode = true;
    }
    if (HeapMode)
      std::pop_heap(Open.begin(), Open.end(), worseThan);
    Node N = std::move(Open.back());
    Open.pop_back();

    // Bound pruning against the incumbent. In best-bound mode the popped
    // node has the smallest bound of the whole open list, so a prune
    // here proves every remaining node away too.
    if (HaveIncumbent && N.Bound >= Best.Objective - Cfg.GapTolerance) {
      if (HeapMode)
        break;
      continue;
    }

    ++Best.NodesExplored;
    LpSolution Relax = Cfg.WarmNodes
                           ? solveLpWarm(P, N.Lower, N.Upper, Ws, Cfg)
                           : solveLpWithBounds(P, N.Lower, N.Upper, Cfg);
    accumulateLp(Best.Stats, Relax);

    // Root strong branching, serial flavour: the root is the first node
    // popped (no creating branch), and its solved tableau is the one Ws
    // holds right now — the probes clone it just like the parallel path
    // clones the serially-solved root.
    if (N.BranchVar < 0 && Cfg.StrongBranchK && Cfg.WarmNodes &&
        Ws.valid() && Relax.Status == LpStatus::Optimal)
      strongBranchRoot(P, Cfg, Limits, Ws, N.Lower, N.Upper, Relax, PC,
                       Best.Stats);

    // Feed the branching history: this node's relaxation tells us what
    // its creating branch actually cost per unit of fraction moved.
    if (N.BranchVar >= 0 && std::isfinite(N.Bound) &&
        Relax.Status == LpStatus::Optimal)
      PC.observe(static_cast<unsigned>(N.BranchVar), N.BranchUp,
                 Relax.Objective - N.Bound, N.FracDist);

    if (Relax.Status == LpStatus::Infeasible)
      continue;
    if (Relax.Status == LpStatus::Unbounded) {
      // A bounded-binary MIP with unbounded relaxation direction in the
      // continuous part: treat as a hard failure.
      Best.Status = LpStatus::Unbounded;
      return Best;
    }
    if (Relax.Status == LpStatus::IterLimit) {
      Best.Proven = false;
      continue;
    }
    if (HaveIncumbent &&
        Relax.Objective >= Best.Objective - Cfg.GapTolerance)
      continue;

    int BranchVar = pickBranchVariable(P, Relax.Values, Cfg, PC);

    if (BranchVar < 0) {
      // Integral: candidate incumbent, installed under the same
      // canonical order the parallel search uses so thread counts agree.
      std::vector<double> Cand = std::move(Relax.Values);
      snapIntegers(P, Cand, Cfg.IntegerTolerance);
      double Obj = P.objectiveValue(Cand);
      if (canonicallyBetter(Obj, Cand, HaveIncumbent, Best.Objective,
                            Best.Values)) {
        HaveIncumbent = true;
        Best.Status = LpStatus::Optimal;
        Best.Objective = Obj;
        Best.Values = std::move(Cand);
      }
      continue;
    }

    // Rounding heuristic for an early incumbent.
    std::vector<double> Rounded;
    if (!HaveIncumbent && roundToFeasible(P, Relax.Values, Rounded)) {
      double Obj = P.objectiveValue(Rounded);
      HaveIncumbent = true;
      Best.Status = LpStatus::Optimal;
      Best.Objective = Obj;
      Best.Values = std::move(Rounded);
    }

    double Frac = Relax.Values[static_cast<unsigned>(BranchVar)];
    branchNode(std::move(N), BranchVar, Frac, Relax.Objective,
               [&](Node &&Child) {
                 Child.Seq = NextSeq++;
                 Open.push_back(std::move(Child));
                 if (HeapMode)
                   std::push_heap(Open.begin(), Open.end(), worseThan);
               });
  }

  if (Warm)
    Warm->Incumbent =
        Best.feasible() ? Best.Values : std::vector<double>();
  return Best;
}

} // namespace

MipSolution ramloc::solveMip(const LpProblem &P, const SolverConfig &Cfg,
                             MipWarmStart *Warm) {
  MipSolution Sol = solveMipImpl(P, Cfg, Warm);
  finalizeOutcome(Sol);

  // Publish this solve's effort and outcome into the global metrics
  // registry. The registry is the one source the campaign summaries, the
  // perf harnesses and --metrics snapshots all read, so nobody re-derives
  // pivot counts by hand; recording happens once per solve (never per
  // node or pivot), so the cost is a handful of relaxed atomic adds.
  MetricsRegistry &M = globalMetrics();
  M.counter("mip.solves").add();
  M.counter("mip.nodes").add(Sol.NodesExplored);
  M.counter("mip.cold_node_solves").add(Sol.Stats.ColdNodeSolves);
  M.counter("mip.warm_node_solves").add(Sol.Stats.WarmNodeSolves);
  M.counter("mip.primal_pivots").add(Sol.Stats.PrimalPivots);
  M.counter("mip.dual_pivots").add(Sol.Stats.DualPivots);
  M.counter("mip.bound_flips").add(Sol.Stats.BoundFlips);
  M.counter("mip.refactorizations").add(Sol.Stats.Refactorizations);
  M.counter("mip.pricing.updates").add(Sol.Stats.PricingUpdates);
  M.counter("mip.pricing.recomputes").add(Sol.Stats.PricingRecomputes);
  M.counter("mip.pricing.drift").add(Sol.Stats.PricingDrift);
  M.counter("mip.strongbranch.probes").add(Sol.Stats.StrongBranchProbes);
  M.counter("mip.strongbranch.seeds").add(Sol.Stats.StrongBranchSeeds);
  if (Sol.Stats.WarmStarted)
    M.counter("mip.warm_starts").add();
  if (Sol.Stats.SeededIncumbent)
    M.counter("mip.seeded_incumbents").add();
  M.counter(std::string("mip.status.") + solveStatusName(Sol.Outcome)).add();
  return Sol;
}
