//===- lp/BranchBound.cpp - 0/1 MIP solver ------------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "lp/BranchBound.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

using namespace ramloc;

namespace {

struct Node {
  std::vector<double> Lower;
  std::vector<double> Upper;
  double Bound; // parent LP objective: lower bound on this subtree
};

/// Rounds an LP point to the nearest binary assignment; returns true if
/// the rounded point is feasible. Cheap incumbent generator.
bool roundToFeasible(const LpProblem &P, const std::vector<double> &X,
                     std::vector<double> &Out) {
  Out = X;
  for (unsigned J = 0, E = P.numVariables(); J != E; ++J)
    if (P.Variables[J].Integer)
      Out[J] = Out[J] >= 0.5 ? 1.0 : 0.0;
  return P.isFeasible(Out);
}

} // namespace

MipSolution ramloc::solveMip(const LpProblem &P, const MipOptions &Opts,
                             MipWarmStart *Warm) {
  MipSolution Best;
  Best.Proven = true; // until the node budget is hit

  for ([[maybe_unused]] const LpVariable &V : P.Variables)
    assert((!V.Integer || (V.Lower >= 0.0 && V.Upper <= 1.0)) &&
           "only binary integer variables are supported");

  std::vector<double> RootLo(P.numVariables()), RootHi(P.numVariables());
  for (unsigned J = 0, E = P.numVariables(); J != E; ++J) {
    RootLo[J] = P.Variables[J].Lower;
    RootHi[J] = P.Variables[J].Upper;
  }

  // Knob-axis reuse: the LP basis survives from the previous solve, and
  // its optimum — when still feasible under the patched bounds/RHS —
  // opens the search with a proven-quality incumbent, so most of the new
  // tree prunes immediately. The feasibility re-check is exact (zero
  // tolerance): admitting a point that is infeasible by even a whisker
  // could prune the true optimum, whereas spuriously rejecting a
  // boundary-tight seed merely loses a head start.
  WarmStart LocalWs;
  WarmStart &Ws = Warm ? Warm->Lp : LocalWs;
  Best.WarmStarted = Opts.WarmNodes && Ws.valid();

  bool HaveIncumbent = false;
  if (Warm && Warm->Incumbent.size() == P.numVariables() &&
      P.isFeasible(Warm->Incumbent, /*Tol=*/0.0)) {
    HaveIncumbent = true;
    Best.Status = LpStatus::Optimal;
    Best.Objective = P.objectiveValue(Warm->Incumbent);
    Best.Values = Warm->Incumbent;
  }

  std::vector<Node> Stack;
  Stack.push_back({std::move(RootLo), std::move(RootHi),
                   -std::numeric_limits<double>::infinity()});

  while (!Stack.empty()) {
    if (Best.NodesExplored >= Opts.MaxNodes) {
      Best.Proven = false;
      break;
    }
    Node N = std::move(Stack.back());
    Stack.pop_back();

    // Bound pruning against the incumbent.
    if (HaveIncumbent && N.Bound >= Best.Objective - Opts.GapTolerance)
      continue;

    ++Best.NodesExplored;
    LpSolution Relax =
        Opts.WarmNodes
            ? solveLpWarm(P, N.Lower, N.Upper, Ws, Opts.Simplex)
            : solveLpWithBounds(P, N.Lower, N.Upper, Opts.Simplex);
    if (Relax.WarmStarted)
      ++Best.WarmNodeSolves;
    else
      ++Best.ColdNodeSolves;
    Best.PrimalPivots += Relax.Iterations;
    Best.DualPivots += Relax.DualIterations;
    if (Relax.Status == LpStatus::Infeasible)
      continue;
    if (Relax.Status == LpStatus::Unbounded) {
      // A bounded-binary MIP with unbounded relaxation direction in the
      // continuous part: treat as a hard failure.
      Best.Status = LpStatus::Unbounded;
      return Best;
    }
    if (Relax.Status == LpStatus::IterLimit) {
      Best.Proven = false;
      continue;
    }
    if (HaveIncumbent &&
        Relax.Objective >= Best.Objective - Opts.GapTolerance)
      continue;

    // Most fractional binary.
    int BranchVar = -1;
    double BestFrac = Opts.IntegerTolerance;
    for (unsigned J = 0, E = P.numVariables(); J != E; ++J) {
      if (!P.Variables[J].Integer)
        continue;
      double V = Relax.Values[J];
      double Frac = std::min(V - std::floor(V), std::ceil(V) - V);
      if (Frac > BestFrac) {
        BestFrac = Frac;
        BranchVar = static_cast<int>(J);
      }
    }

    if (BranchVar < 0) {
      // Integral: new incumbent.
      if (!HaveIncumbent || Relax.Objective < Best.Objective) {
        HaveIncumbent = true;
        Best.Status = LpStatus::Optimal;
        Best.Objective = Relax.Objective;
        Best.Values = Relax.Values;
      }
      continue;
    }

    // Rounding heuristic for an early incumbent.
    std::vector<double> Rounded;
    if (!HaveIncumbent && roundToFeasible(P, Relax.Values, Rounded)) {
      double Obj = P.objectiveValue(Rounded);
      HaveIncumbent = true;
      Best.Status = LpStatus::Optimal;
      Best.Objective = Obj;
      Best.Values = std::move(Rounded);
    }

    unsigned BV = static_cast<unsigned>(BranchVar);
    double Frac = Relax.Values[BV];
    // Explore the closer side first (DFS pops the last pushed node).
    Node Zero{N.Lower, N.Upper, Relax.Objective};
    Zero.Upper[BV] = 0.0;
    Node One{std::move(N.Lower), std::move(N.Upper), Relax.Objective};
    One.Lower[BV] = 1.0;
    if (Frac >= 0.5) {
      Stack.push_back(std::move(Zero));
      Stack.push_back(std::move(One));
    } else {
      Stack.push_back(std::move(One));
      Stack.push_back(std::move(Zero));
    }
  }

  if (Warm)
    Warm->Incumbent =
        Best.feasible() ? Best.Values : std::vector<double>();
  return Best;
}
