//===- lp/SolverConfig.h - unified solver knobs and counters ----*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One configuration struct for the whole exact-solver stack and one
/// counter struct for its effort accounting.
///
/// Through PR 6 the stack threaded three structs individually —
/// SimplexOptions into every simplex entry point, MipOptions (embedding a
/// SimplexOptions) into solveMip, and ad-hoc counter fields on
/// MipSolution — so adding a knob meant touching every call site from
/// PlacementSolver down to resolveLpFromBasis. SolverConfig flattens the
/// knobs into a single value that rides unchanged through
/// PlacementSolver -> solveMip -> solveLpWarm -> resolveLpFromBasis;
/// thread count, pricing rule and refactorization cadence plug in here
/// and nowhere else. SolverStats is the matching effort ledger: one
/// instance per solve (or per worker in the parallel tree search, merged
/// at the end), mirrored into the mip.* metrics so per-thread counts
/// aggregate through the registry instead of ad-hoc summing.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_LP_SOLVERCONFIG_H
#define RAMLOC_LP_SOLVERCONFIG_H

#include <cstdint>
#include <string>

namespace ramloc {

/// Which open node the branch & bound search expands next. Every order is
/// exact; see lp/BranchBound.h for the trade-offs.
enum class NodeOrder : uint8_t {
  Dfs,       ///< depth-first diving (warm-friendliest)
  BestBound, ///< smallest parent bound first (smallest tree)
  Hybrid,    ///< dive until an incumbent exists, then best-bound
};

const char *nodeOrderName(NodeOrder O);
bool nodeOrderFromName(const std::string &Name, NodeOrder &Out);

/// How the simplex prices its pivots. Every rule is exact — the optimum
/// (and therefore every campaign report) is byte-identical across rules;
/// what changes is how many pivots the search spends getting there, which
/// is the solver's hot-path currency on warm re-solve chains.
enum class Pricing : uint8_t {
  /// Dual steepest-edge (Forrest–Goldfarb): the leaving row is the one
  /// whose box violation is largest *per unit of basis-inverse row norm*,
  /// so one pivot repairs as much true infeasibility as possible instead
  /// of chasing raw violation magnitudes. Reference weights are exact
  /// (the dense tableau's slack block holds B^-1 outright), updated by a
  /// per-pivot recurrence and self-checked against a fresh recompute at
  /// every refactorization. The default: warm branch & bound re-solves
  /// are dual-simplex dominated, and this is where their pivots go.
  SteepestEdge,
  /// Textbook most-violated selection, both simplexes. The pre-PR-10
  /// behaviour, kept as the A/B baseline the perf gates compare against.
  Dantzig,
  /// Dantzig with a rotating candidate-section scan on the primal side:
  /// the entering column is the best of the first section that offers
  /// one, not of all columns. Cheaper per iteration on cold phase-1
  /// passes over wide tableaux; the dual side prices as Dantzig.
  PartialDantzig,
  /// Bland's least-index rule everywhere. Immune to cycling by
  /// construction; exists so the degenerate-pivot regressions can pin
  /// the fallback every other rule switches to when stalled.
  Bland,
};

const char *pricingName(Pricing P);
bool pricingFromName(const std::string &Name, Pricing &Out);

/// What a finished solve actually proved. LpStatus says what the final
/// point is; SolveStatus says how much to trust it — the two are
/// orthogonal once deadlines exist, because a deadline can stop a search
/// that holds a perfectly good incumbent it simply has not proven
/// optimal. A degraded answer must always carry its label: nothing in
/// the stack may report a limit-truncated solve as Optimal.
enum class SolveStatus : uint8_t {
  Optimal,          ///< incumbent returned and proven optimal
  FeasibleLimit,    ///< feasible incumbent returned; proof cut short by a
                    ///< time/node/pivot limit (best-effort answer)
  InfeasibleProven, ///< no feasible point exists, and that was proven
  Aborted,          ///< nothing trustworthy: limit hit before any
                    ///< incumbent, unbounded relaxation, or numerics
};

const char *solveStatusName(SolveStatus S);
bool solveStatusFromName(const std::string &Name, SolveStatus &Out);

/// Every knob the exact-solver stack reads, LP engine and MIP search
/// alike. One instance flows through the whole call chain; layers read
/// the fields they own and pass the value on untouched.
struct SolverConfig {
  //===--- LP engine (simplex) --------------------------------------------===//

  /// Reduced-cost / feasibility tolerance for both ratio tests.
  double Tolerance = 1e-9;
  /// Pivot budget per simplex phase.
  unsigned MaxIterations = 100000;
  /// Pivot selection rule (see Pricing). Exact and report-neutral either
  /// way; SteepestEdge spends the fewest dual pivots on warm chains.
  Pricing PricingRule = Pricing::SteepestEdge;
  /// Deprecated alias for PricingRule = Pricing::Bland, kept so pre-PR-10
  /// callers compile and behave identically; the solver reads only
  /// effectivePricing(). Prefer setting PricingRule directly.
  bool ForceBland = false;
  /// Refactorization cadence: after RefactorInterval * (rows + vars + 1)
  /// pivots, a retained warm tableau is re-derived *from its current
  /// basis* — the rows are rebuilt from original problem data and
  /// re-eliminated against the basis the chain has refined, which
  /// re-sparsifies fill-in and discards the rounding drift dense
  /// in-place updates accumulate (the dense analogue of periodic
  /// product-form/LU refactorization) while keeping the basis, the
  /// nonbasic statuses and the re-anchored steepest-edge weights, so
  /// 1000-point knob chains and Pareto sweeps never pay a cold restart.
  /// Only a numerically singular basis degrades to the old
  /// rebuild-from-scratch path. 0 disables the cadence entirely.
  unsigned RefactorInterval = 64;

  /// The pricing rule the solver actually applies: the deprecated
  /// ForceBland flag wins (mapping onto Pricing::Bland) so old callers
  /// keep their exact semantics without scattered special cases.
  Pricing effectivePricing() const {
    return ForceBland ? Pricing::Bland : PricingRule;
  }

  //===--- MIP search (branch & bound) ------------------------------------===//

  /// |value - round(value)| below which a binary is considered integral.
  double IntegerTolerance = 1e-6;
  /// Node budget; exceeding it returns the best incumbent with
  /// Proven = false.
  unsigned MaxNodes = 200000;
  /// Absolute optimality gap at which a node is pruned.
  double GapTolerance = 1e-9;
  /// Warm-start each node's relaxation from its parent's basis (dual
  /// simplex) instead of re-solving from scratch. Exact either way;
  /// disable for the fully cold reference path (--reuse without 'solve').
  bool WarmNodes = true;
  /// Node-selection policy (see NodeOrder). Every order is exact.
  NodeOrder Order = NodeOrder::Dfs;
  /// Branch on the variable with the best pseudo-cost score (estimated
  /// objective degradation both ways), falling back to most-fractional
  /// until a variable has observed degradations. Disable for plain
  /// most-fractional branching.
  bool PseudoCostBranching = true;
  /// Strong branching at the root: probe the top-K branching candidates
  /// (pseudo-cost ranked; most-fractional until costs exist) by actually
  /// solving both children with bounded dual re-solves on clones of the
  /// solved root tableau, fanned over the Threads worker pool, and seed
  /// the pseudo-cost history with the observed degradations before the
  /// first real branch is chosen. Exact and report-neutral — probes only
  /// inform the branching order, never the answer. 0 disables (default);
  /// probing needs a warm root tableau, so fully cold runs
  /// (WarmNodes = false) skip it.
  unsigned StrongBranchK = 0;

  //===--- Cooperative limits (graceful degradation) ----------------------===//
  //
  // All three default to 0 = unlimited. Limits are checked cooperatively
  // at node granularity (a node's LP solve is never interrupted midway),
  // and a limited search always returns the best incumbent found so far
  // with a truthful MipSolution::Outcome — FeasibleLimit when one
  // exists, Aborted when the limit fired first. Time limits make results
  // machine-dependent by nature; node and pivot limits are deterministic
  // for a fixed thread count.

  /// Wall-clock deadline for one solveMip call, in milliseconds.
  unsigned TimeLimitMs = 0;
  /// Node cap for one solveMip call. Effectively min'ed with MaxNodes
  /// (the long-standing safety backstop, which keeps its own default).
  uint64_t NodeLimit = 0;
  /// Cap on total simplex pivots (primal + dual, summed over nodes and
  /// workers) for one solveMip call.
  uint64_t PivotLimit = 0;

  //===--- Parallel tree search -------------------------------------------===//

  /// Worker threads for the branch & bound tree (--solver-threads). 1 =
  /// serial. Each worker carries its own warm tableau cloned from the
  /// solved root and a work-stealing shard of the open list; the shared
  /// incumbent is installed under a canonical tie-break (strictly better
  /// objective, else bit-equal objective and lexicographically smaller
  /// assignment), so the result never depends on worker arrival order
  /// and reports stay byte-identical across thread counts whenever the
  /// optimum is unique — the same caveat every other exact-path A/B
  /// switch in this repo carries.
  unsigned Threads = 1;
};

/// The solver's effort ledger: how each explored node's relaxation was
/// satisfied and what the simplex spent doing it. One instance per
/// solveMip call — the parallel tree search keeps one per worker and
/// merges them — published into the mip.* metrics registry counters by
/// the solve itself, so campaign summaries, perf harnesses and --metrics
/// snapshots all read one source.
struct SolverStats {
  /// A cold search has ColdNodeSolves == NodesExplored; the warm path
  /// pays one cold solve (the root, unless a MipWarmStart seeded it) and
  /// re-optimizes the rest.
  unsigned ColdNodeSolves = 0;
  unsigned WarmNodeSolves = 0;
  uint64_t PrimalPivots = 0;
  uint64_t DualPivots = 0;
  /// Ratio-test outcomes that moved a variable across its box without a
  /// pivot (bounded-variable fast path).
  uint64_t BoundFlips = 0;
  /// Warm tableaux re-derived from original problem data mid-search: the
  /// periodic SolverConfig::RefactorInterval cadence (which now keeps the
  /// current basis) plus repair bail-outs (iteration-limited or
  /// numerically stuck re-optimizations, which rebuild cold).
  uint64_t Refactorizations = 0;
  /// Steepest-edge weight recurrence updates applied (one per pivot while
  /// dual steepest-edge pricing is active).
  uint64_t PricingUpdates = 0;
  /// Exact weight recomputes from the tableau's basis-inverse block:
  /// first activations plus the per-refactorization re-anchoring.
  uint64_t PricingRecomputes = 0;
  /// Refactorization self-checks where a recurrence-maintained weight had
  /// drifted materially from its exact recompute. Drift is repaired on
  /// the spot (the recompute wins); a nonzero count is a numerics canary,
  /// not an error.
  uint64_t PricingDrift = 0;
  /// Root strong-branching child probes performed (two per candidate).
  uint64_t StrongBranchProbes = 0;
  /// Pseudo-cost observations seeded from conclusive root probes.
  uint64_t StrongBranchSeeds = 0;
  /// True when the solve itself started from a caller-provided
  /// MipWarmStart basis (knob-axis reuse) rather than a cold root.
  bool WarmStarted = false;
  /// True when the caller-provided incumbent survived the zero-tolerance
  /// feasibility re-check and opened the search.
  bool SeededIncumbent = false;

  /// Folds \p Other in (parallel workers' ledgers into the solve's).
  /// Counters add; the per-solve flags are root-level facts and OR in.
  SolverStats &merge(const SolverStats &Other);
};

} // namespace ramloc

#endif // RAMLOC_LP_SOLVERCONFIG_H
