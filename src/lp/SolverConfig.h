//===- lp/SolverConfig.h - unified solver knobs and counters ----*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One configuration struct for the whole exact-solver stack and one
/// counter struct for its effort accounting.
///
/// Through PR 6 the stack threaded three structs individually —
/// SimplexOptions into every simplex entry point, MipOptions (embedding a
/// SimplexOptions) into solveMip, and ad-hoc counter fields on
/// MipSolution — so adding a knob meant touching every call site from
/// PlacementSolver down to resolveLpFromBasis. SolverConfig flattens the
/// knobs into a single value that rides unchanged through
/// PlacementSolver -> solveMip -> solveLpWarm -> resolveLpFromBasis;
/// thread count, pricing rule and refactorization cadence plug in here
/// and nowhere else. SolverStats is the matching effort ledger: one
/// instance per solve (or per worker in the parallel tree search, merged
/// at the end), mirrored into the mip.* metrics so per-thread counts
/// aggregate through the registry instead of ad-hoc summing.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_LP_SOLVERCONFIG_H
#define RAMLOC_LP_SOLVERCONFIG_H

#include <cstdint>
#include <string>

namespace ramloc {

/// Which open node the branch & bound search expands next. Every order is
/// exact; see lp/BranchBound.h for the trade-offs.
enum class NodeOrder : uint8_t {
  Dfs,       ///< depth-first diving (warm-friendliest)
  BestBound, ///< smallest parent bound first (smallest tree)
  Hybrid,    ///< dive until an incumbent exists, then best-bound
};

const char *nodeOrderName(NodeOrder O);
bool nodeOrderFromName(const std::string &Name, NodeOrder &Out);

/// What a finished solve actually proved. LpStatus says what the final
/// point is; SolveStatus says how much to trust it — the two are
/// orthogonal once deadlines exist, because a deadline can stop a search
/// that holds a perfectly good incumbent it simply has not proven
/// optimal. A degraded answer must always carry its label: nothing in
/// the stack may report a limit-truncated solve as Optimal.
enum class SolveStatus : uint8_t {
  Optimal,          ///< incumbent returned and proven optimal
  FeasibleLimit,    ///< feasible incumbent returned; proof cut short by a
                    ///< time/node/pivot limit (best-effort answer)
  InfeasibleProven, ///< no feasible point exists, and that was proven
  Aborted,          ///< nothing trustworthy: limit hit before any
                    ///< incumbent, unbounded relaxation, or numerics
};

const char *solveStatusName(SolveStatus S);
bool solveStatusFromName(const std::string &Name, SolveStatus &Out);

/// Every knob the exact-solver stack reads, LP engine and MIP search
/// alike. One instance flows through the whole call chain; layers read
/// the fields they own and pass the value on untouched.
struct SolverConfig {
  //===--- LP engine (simplex) --------------------------------------------===//

  /// Reduced-cost / feasibility tolerance for both ratio tests.
  double Tolerance = 1e-9;
  /// Pivot budget per simplex phase.
  unsigned MaxIterations = 100000;
  /// Always price with Bland's rule instead of Dantzig-with-Bland-
  /// fallback. Slower, but immune to cycling by construction; exists so
  /// the degenerate-pivot regression tests can pin both rules.
  bool ForceBland = false;
  /// Refactorization cadence: a retained warm tableau is rebuilt from the
  /// original problem data after RefactorInterval * (rows + vars + 1)
  /// pivots, bounding the rounding drift dense in-place updates
  /// accumulate (the dense analogue of periodic product-form/LU
  /// refactorization) and re-sparsifying fill-in before long warm chains
  /// — best-bound order's far basis jumps in particular — start
  /// thrashing. 0 disables the cadence entirely.
  unsigned RefactorInterval = 64;

  //===--- MIP search (branch & bound) ------------------------------------===//

  /// |value - round(value)| below which a binary is considered integral.
  double IntegerTolerance = 1e-6;
  /// Node budget; exceeding it returns the best incumbent with
  /// Proven = false.
  unsigned MaxNodes = 200000;
  /// Absolute optimality gap at which a node is pruned.
  double GapTolerance = 1e-9;
  /// Warm-start each node's relaxation from its parent's basis (dual
  /// simplex) instead of re-solving from scratch. Exact either way;
  /// disable for the fully cold reference path (--reuse without 'solve').
  bool WarmNodes = true;
  /// Node-selection policy (see NodeOrder). Every order is exact.
  NodeOrder Order = NodeOrder::Dfs;
  /// Branch on the variable with the best pseudo-cost score (estimated
  /// objective degradation both ways), falling back to most-fractional
  /// until a variable has observed degradations. Disable for plain
  /// most-fractional branching.
  bool PseudoCostBranching = true;

  //===--- Cooperative limits (graceful degradation) ----------------------===//
  //
  // All three default to 0 = unlimited. Limits are checked cooperatively
  // at node granularity (a node's LP solve is never interrupted midway),
  // and a limited search always returns the best incumbent found so far
  // with a truthful MipSolution::Outcome — FeasibleLimit when one
  // exists, Aborted when the limit fired first. Time limits make results
  // machine-dependent by nature; node and pivot limits are deterministic
  // for a fixed thread count.

  /// Wall-clock deadline for one solveMip call, in milliseconds.
  unsigned TimeLimitMs = 0;
  /// Node cap for one solveMip call. Effectively min'ed with MaxNodes
  /// (the long-standing safety backstop, which keeps its own default).
  uint64_t NodeLimit = 0;
  /// Cap on total simplex pivots (primal + dual, summed over nodes and
  /// workers) for one solveMip call.
  uint64_t PivotLimit = 0;

  //===--- Parallel tree search -------------------------------------------===//

  /// Worker threads for the branch & bound tree (--solver-threads). 1 =
  /// serial. Each worker carries its own warm tableau cloned from the
  /// solved root and a work-stealing shard of the open list; the shared
  /// incumbent is installed under a canonical tie-break (strictly better
  /// objective, else bit-equal objective and lexicographically smaller
  /// assignment), so the result never depends on worker arrival order
  /// and reports stay byte-identical across thread counts whenever the
  /// optimum is unique — the same caveat every other exact-path A/B
  /// switch in this repo carries.
  unsigned Threads = 1;
};

/// The solver's effort ledger: how each explored node's relaxation was
/// satisfied and what the simplex spent doing it. One instance per
/// solveMip call — the parallel tree search keeps one per worker and
/// merges them — published into the mip.* metrics registry counters by
/// the solve itself, so campaign summaries, perf harnesses and --metrics
/// snapshots all read one source.
struct SolverStats {
  /// A cold search has ColdNodeSolves == NodesExplored; the warm path
  /// pays one cold solve (the root, unless a MipWarmStart seeded it) and
  /// re-optimizes the rest.
  unsigned ColdNodeSolves = 0;
  unsigned WarmNodeSolves = 0;
  uint64_t PrimalPivots = 0;
  uint64_t DualPivots = 0;
  /// Ratio-test outcomes that moved a variable across its box without a
  /// pivot (bounded-variable fast path).
  uint64_t BoundFlips = 0;
  /// Warm tableaux rebuilt from original problem data mid-search: the
  /// periodic SolverConfig::RefactorInterval cadence plus repair
  /// bail-outs (iteration-limited or numerically stuck re-optimizations).
  uint64_t Refactorizations = 0;
  /// True when the solve itself started from a caller-provided
  /// MipWarmStart basis (knob-axis reuse) rather than a cold root.
  bool WarmStarted = false;
  /// True when the caller-provided incumbent survived the zero-tolerance
  /// feasibility re-check and opened the search.
  bool SeededIncumbent = false;

  /// Folds \p Other in (parallel workers' ledgers into the solve's).
  /// Counters add; the per-solve flags are root-level facts and OR in.
  SolverStats &merge(const SolverStats &Other);
};

} // namespace ramloc

#endif // RAMLOC_LP_SOLVERCONFIG_H
