//===- lp/Problem.h - linear program description ----------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Problem container for the from-scratch LP/MIP solver that stands in for
/// GLPK (the solver the paper integrates; Section 4.3). Minimization form:
///
///   minimize    c . x
///   subject to  a_i . x  {<=, >=, ==}  b_i
///               lo_j <= x_j <= hi_j
///               x_j integral for integer-marked variables
///
/// Either bound may be infinite: the bounded-variable simplex keeps a
/// nonbasic variable at whichever finite bound it has (or at zero when
/// both are infinite — a free variable), so boxes are data, not rows. A
/// variable with lo == hi is fixed: it participates in constraints and
/// the objective but never enters a basis.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_LP_PROBLEM_H
#define RAMLOC_LP_PROBLEM_H

#include <cassert>
#include <cmath>
#include <string>
#include <vector>

namespace ramloc {

/// Constraint sense.
enum class ConstraintSense : uint8_t {
  LessEq,
  GreaterEq,
  Equal,
};

/// A linear constraint: sparse terms (variable index, coefficient).
struct LpConstraint {
  std::vector<std::pair<unsigned, double>> Terms;
  ConstraintSense Sense = ConstraintSense::LessEq;
  double Rhs = 0.0;
  std::string Name;
};

/// One decision variable.
struct LpVariable {
  double Lower = 0.0;
  double Upper = 1.0;
  double Objective = 0.0;
  bool Integer = false;
  std::string Name;

  /// True when the box pins the variable to a single value.
  bool isFixed() const { return Lower == Upper; }
  /// True when both bounds are infinite.
  bool isFree() const {
    return !std::isfinite(Lower) && !std::isfinite(Upper);
  }
};

/// A minimization LP/MIP.
class LpProblem {
public:
  /// Adds a variable and returns its index. Bounds may be infinite on
  /// either side (a fully free variable has both infinite).
  unsigned addVariable(double Lower, double Upper, double Objective,
                       bool Integer = false, std::string Name = {}) {
    assert(Lower <= Upper && "empty variable domain");
    Variables.push_back({Lower, Upper, Objective, Integer, std::move(Name)});
    return static_cast<unsigned>(Variables.size()) - 1;
  }

  /// Adds a binary 0/1 variable.
  unsigned addBinary(double Objective, std::string Name = {}) {
    return addVariable(0.0, 1.0, Objective, /*Integer=*/true,
                       std::move(Name));
  }

  /// Adds a constraint; terms may repeat a variable (coefficients add).
  void addConstraint(std::vector<std::pair<unsigned, double>> Terms,
                     ConstraintSense Sense, double Rhs,
                     std::string Name = {}) {
    for ([[maybe_unused]] const auto &[Var, Coef] : Terms)
      assert(Var < Variables.size() && "constraint references unknown var");
    Constraints.push_back({std::move(Terms), Sense, Rhs, std::move(Name)});
  }

  unsigned numVariables() const {
    return static_cast<unsigned>(Variables.size());
  }
  unsigned numConstraints() const {
    return static_cast<unsigned>(Constraints.size());
  }

  /// Objective value of an assignment (no feasibility check).
  double objectiveValue(const std::vector<double> &X) const {
    assert(X.size() == Variables.size() && "assignment size mismatch");
    double Sum = 0.0;
    for (unsigned J = 0, E = numVariables(); J != E; ++J)
      Sum += Variables[J].Objective * X[J];
    return Sum;
  }

  /// True if \p X satisfies all constraints and bounds within \p Tol.
  bool isFeasible(const std::vector<double> &X, double Tol = 1e-6) const;

  std::vector<LpVariable> Variables;
  std::vector<LpConstraint> Constraints;
};

} // namespace ramloc

#endif // RAMLOC_LP_PROBLEM_H
