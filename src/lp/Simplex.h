//===- lp/Simplex.h - bounded-variable simplex ------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense bounded-variable tableau simplex. Integrality markers are ignored
/// here; lp/BranchBound.h layers 0/1 search on top. Problem sizes in this
/// project are small (tens to a few hundred variables), so a dense tableau
/// is plenty; pivot selection is pluggable (SolverConfig::Pricing — dual
/// steepest-edge by default, Dantzig / partial Dantzig / Bland behind the
/// enum, all with the Bland anti-cycling fallback when stalled).
///
/// Variables carry their [lb, ub] box implicitly: a nonbasic variable sits
/// *at* its lower or upper bound (or at zero when free) and the tableau
/// holds only one row per constraint — no explicit bound rows. That halves
/// the tableau against the classic all-bounds-as-rows formulation this
/// repo used through PR 4, and it makes every bound change a O(1) status/
/// box update plus an O(rows) basic-value refresh instead of a row edit.
/// The primal ratio test gains the bound-flip case: when the entering
/// variable's own span is the binding limit it jumps to its opposite
/// bound with no pivot at all (LpSolution::BoundFlips counts these).
///
/// Two solving modes share this header:
///
///  - solveLp / solveLpWithBounds: build a fresh tableau and solve from
///    scratch (the "cold" path): a dual-simplex feasibility phase from the
///    all-slack basis under a zero objective, then primal iterations on
///    the true objective.
///  - solveLpWarm / resolveLpFromBasis: keep the solved tableau, basis and
///    nonbasic statuses in a WarmStart handle and re-optimize with the
///    *dual* simplex after bound or RHS changes. A bound tightening or a
///    knob-row RHS patch leaves the retained basis dual-feasible (the
///    objective row is untouched), so re-optimization typically costs a
///    handful of pivots where a cold solve pays a full feasibility +
///    optimality pass — the fast path branch & bound and the knob-axis
///    sweeps ride on.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_LP_SIMPLEX_H
#define RAMLOC_LP_SIMPLEX_H

#include "lp/Problem.h"
#include "lp/SolverConfig.h"

#include <memory>

namespace ramloc {

/// Solver outcome.
enum class LpStatus : uint8_t {
  Optimal,
  Infeasible,
  Unbounded,
  IterLimit,
};

const char *lpStatusName(LpStatus S);

/// An LP solution: variable values in original problem space.
struct LpSolution {
  LpStatus Status = LpStatus::IterLimit;
  double Objective = 0.0;
  std::vector<double> Values;
  /// Primal simplex pivots this solve performed (the optimality phase, or
  /// the post-reoptimization clean-up pass on the warm path).
  unsigned Iterations = 0;
  /// Dual simplex pivots performed: the cold path's feasibility phase, or
  /// the warm path's re-optimization.
  unsigned DualIterations = 0;
  /// Ratio-test outcomes where the entering variable jumped to its other
  /// bound without a basis change (bounded-variable fast path: no pivot,
  /// no elimination, just an O(rows) value update).
  unsigned BoundFlips = 0;
  /// Steepest-edge pricing effort this solve: weight-recurrence updates
  /// applied per pivot, exact recomputes from the basis-inverse block,
  /// and self-check repairs where a recurrence weight had drifted from
  /// its recompute (see the mip.pricing.* counters).
  unsigned PricingUpdates = 0;
  unsigned PricingRecomputes = 0;
  unsigned PricingDrift = 0;
  /// True when this solution was reached by re-optimizing a retained
  /// basis rather than solving from scratch.
  bool WarmStarted = false;
  /// True when a previously valid, structurally matching warm tableau was
  /// re-derived from original problem data for this solve — the periodic
  /// SolverConfig::RefactorInterval cadence (which re-eliminates against
  /// the *current* basis, so the solve still counts as warm) or a repair
  /// after a failed re-optimization (which rebuilds cold). First builds
  /// and structure changes don't count.
  bool Refactorized = false;
  /// The solved basis: one column index per tableau row (columns are
  /// variables first, then one slack per row). With implicit bounds the
  /// tableau has exactly one row per non-degenerate constraint.
  std::vector<unsigned> Basis;
};

struct WarmState;

/// Opaque re-optimization state: the bounded-variable tableau, its basis,
/// the per-column nonbasic statuses and the bookkeeping that maps
/// variable-bound and constraint-RHS changes onto O(rows) updates. Built
/// on first use by solveLpWarm; move-only.
///
/// A WarmStart is tied to one problem *structure* (variable count,
/// constraint count and coefficients). Bounds and constraint RHS values
/// may change freely between solves — that is the point — but coefficient
/// or shape changes require a fresh handle (solveLpWarm detects shape
/// changes and rebuilds; coefficient edits it cannot see).
class WarmStart {
public:
  WarmStart();
  ~WarmStart();
  WarmStart(WarmStart &&) noexcept;
  WarmStart &operator=(WarmStart &&) noexcept;
  WarmStart(const WarmStart &) = delete;
  WarmStart &operator=(const WarmStart &) = delete;

  /// True when the handle holds a basis that resolveLpFromBasis can
  /// re-optimize from.
  bool valid() const;
  /// Drops the retained state; the next solveLpWarm builds from scratch.
  void reset();
  /// Deep-copies the retained tableau into an independent handle. The
  /// parallel branch & bound clones the solved root tableau once per
  /// worker so each thread re-optimizes its own copy with no sharing.
  WarmStart clone() const;

private:
  std::unique_ptr<WarmState> S;
  friend LpSolution solveLpWarm(const LpProblem &P,
                                const std::vector<double> &Lower,
                                const std::vector<double> &Upper,
                                WarmStart &Warm, const SolverConfig &Cfg);
  friend LpSolution resolveLpFromBasis(const LpProblem &P,
                                       const std::vector<double> &Lower,
                                       const std::vector<double> &Upper,
                                       WarmStart &Warm,
                                       const SolverConfig &Cfg);
};

/// Solves the LP relaxation of \p P.
LpSolution solveLp(const LpProblem &P, const SolverConfig &Cfg = {});

/// Solves with per-variable bound overrides (used by branch & bound to fix
/// binaries). \p Lower/\p Upper must have one entry per variable. An empty
/// box (Lower[j] > Upper[j]) is reported as Infeasible.
LpSolution solveLpWithBounds(const LpProblem &P,
                             const std::vector<double> &Lower,
                             const std::vector<double> &Upper,
                             const SolverConfig &Cfg = {});

/// Warm-capable solve: on first use (or after a structure change /
/// numerical failure) builds \p Warm's tableau at the given bounds and
/// solves cold; on later calls re-optimizes the retained basis with the
/// dual simplex (see resolveLpFromBasis). When the tableau reaches its
/// SolverConfig::RefactorInterval cadence it is refactorized *in place
/// from its current basis* — rows rebuilt from original data and
/// re-eliminated against the basis the chain has refined, statuses and
/// steepest-edge weights re-anchored — and the re-optimization proceeds
/// warm; only a numerically singular basis or a re-optimization that
/// hits its iteration limit degrades to a fresh cold build. Either way
/// the result is the exact LP optimum; LpSolution::WarmStarted records
/// which path satisfied the call and LpSolution::Refactorized whether a
/// retained tableau was re-derived.
LpSolution solveLpWarm(const LpProblem &P, const std::vector<double> &Lower,
                       const std::vector<double> &Upper, WarmStart &Warm,
                       const SolverConfig &Cfg = {});

/// Dual-simplex re-optimization entry point: diffs \p Lower/\p Upper and
/// the constraint RHS values of \p P against the state retained in
/// \p Warm and applies the differences in place — a nonbasic variable is
/// slid along to its moved bound, a basic one merely has its box
/// re-checked, and a constraint RHS shift lands through the row's slack
/// column — then runs the dual simplex until every basic variable is back
/// inside its box. Returns IterLimit without touching the state when
/// \p Warm holds no re-optimizable basis; callers wanting automatic
/// fallback use solveLpWarm.
LpSolution resolveLpFromBasis(const LpProblem &P,
                              const std::vector<double> &Lower,
                              const std::vector<double> &Upper,
                              WarmStart &Warm,
                              const SolverConfig &Cfg);

} // namespace ramloc

#endif // RAMLOC_LP_SIMPLEX_H
