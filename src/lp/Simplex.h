//===- lp/Simplex.h - two-phase primal simplex ------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense two-phase tableau simplex. Integrality markers are ignored here;
/// lp/BranchBound.h layers 0/1 search on top. Problem sizes in this project
/// are small (tens to a few hundred variables), so a dense tableau with
/// Dantzig pricing and a Bland anti-cycling fallback is plenty.
///
/// Two solving modes share this header:
///
///  - solveLp / solveLpWithBounds: build a fresh tableau and run two-phase
///    primal simplex from scratch (the "cold" path).
///  - solveLpWarm / resolveLpFromBasis: keep the solved tableau and basis
///    in a WarmStart handle and re-optimize with the *dual* simplex after
///    bound or RHS changes. A bound tightening or a knob-row RHS patch
///    leaves the parent basis dual-feasible (the objective row is
///    untouched), so re-optimization typically costs a handful of pivots
///    where a cold solve pays a full phase-1 + phase-2 — the fast path
///    branch & bound and the knob-axis sweeps ride on.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_LP_SIMPLEX_H
#define RAMLOC_LP_SIMPLEX_H

#include "lp/Problem.h"

#include <memory>

namespace ramloc {

/// Solver outcome.
enum class LpStatus : uint8_t {
  Optimal,
  Infeasible,
  Unbounded,
  IterLimit,
};

const char *lpStatusName(LpStatus S);

/// An LP solution: variable values in original problem space.
struct LpSolution {
  LpStatus Status = LpStatus::IterLimit;
  double Objective = 0.0;
  std::vector<double> Values;
  /// Primal simplex pivots this solve performed (phase 1 + phase 2, or
  /// the post-reoptimization clean-up pass on the warm path).
  unsigned Iterations = 0;
  /// Dual simplex pivots a warm re-optimization performed (0 on the cold
  /// path).
  unsigned DualIterations = 0;
  /// True when this solution was reached by re-optimizing a retained
  /// basis rather than solving from scratch.
  bool WarmStarted = false;
  /// The solved basis: one standard-form column index per tableau row.
  /// Retained so callers can observe/assert reuse; the re-optimizable
  /// state itself lives in WarmStart.
  std::vector<unsigned> Basis;
};

/// Simplex knobs.
struct SimplexOptions {
  double Tolerance = 1e-9;
  unsigned MaxIterations = 100000;
  /// Always price with Bland's rule instead of Dantzig-with-Bland-
  /// fallback. Slower, but immune to cycling by construction; exists so
  /// the degenerate-pivot regression tests can pin both rules.
  bool ForceBland = false;
};

struct WarmState;

/// Opaque re-optimization state: the standard-form tableau, its basis and
/// the row bookkeeping that maps variable-bound and constraint-RHS changes
/// onto RHS patches. Built on first use by solveLpWarm; move-only.
///
/// A WarmStart is tied to one problem *structure* (variable count,
/// constraint count and coefficients). Bounds and constraint RHS values
/// may change freely between solves — that is the point — but coefficient
/// or shape changes require a fresh handle (solveLpWarm detects shape
/// changes and rebuilds; coefficient edits it cannot see).
class WarmStart {
public:
  WarmStart();
  ~WarmStart();
  WarmStart(WarmStart &&) noexcept;
  WarmStart &operator=(WarmStart &&) noexcept;
  WarmStart(const WarmStart &) = delete;
  WarmStart &operator=(const WarmStart &) = delete;

  /// True when the handle holds a basis that resolveLpFromBasis can
  /// re-optimize from.
  bool valid() const;
  /// Drops the retained state; the next solveLpWarm builds from scratch.
  void reset();

private:
  std::unique_ptr<WarmState> S;
  friend LpSolution solveLpWarm(const LpProblem &P,
                                const std::vector<double> &Lower,
                                const std::vector<double> &Upper,
                                WarmStart &Warm, const SimplexOptions &Opts);
  friend LpSolution resolveLpFromBasis(const LpProblem &P,
                                       const std::vector<double> &Lower,
                                       const std::vector<double> &Upper,
                                       WarmStart &Warm,
                                       const SimplexOptions &Opts);
};

/// Solves the LP relaxation of \p P.
LpSolution solveLp(const LpProblem &P, const SimplexOptions &Opts = {});

/// Solves with per-variable bound overrides (used by branch & bound to fix
/// binaries). \p Lower/\p Upper must have one entry per variable.
LpSolution solveLpWithBounds(const LpProblem &P,
                             const std::vector<double> &Lower,
                             const std::vector<double> &Upper,
                             const SimplexOptions &Opts = {});

/// Warm-capable solve: on first use (or after a structure change /
/// numerical failure) builds \p Warm's tableau at the given bounds and
/// runs two-phase primal simplex; on later calls re-optimizes the
/// retained basis with the dual simplex (see resolveLpFromBasis), falling
/// back to a fresh build when re-optimization hits the iteration limit.
/// Either way the result is the exact LP optimum; LpSolution::WarmStarted
/// records which path satisfied the call.
LpSolution solveLpWarm(const LpProblem &P, const std::vector<double> &Lower,
                       const std::vector<double> &Upper, WarmStart &Warm,
                       const SimplexOptions &Opts = {});

/// Dual-simplex re-optimization entry point: diffs \p Lower/\p Upper and
/// the constraint RHS values of \p P against the state retained in
/// \p Warm, applies the differences as RHS patches (bounds are explicit
/// rows in the warm tableau), re-prices the objective row against the
/// current basis and runs the dual simplex until primal feasibility is
/// restored. Returns IterLimit without touching the state when \p Warm
/// holds no re-optimizable basis; callers wanting automatic fallback use
/// solveLpWarm.
LpSolution resolveLpFromBasis(const LpProblem &P,
                              const std::vector<double> &Lower,
                              const std::vector<double> &Upper,
                              WarmStart &Warm,
                              const SimplexOptions &Opts = {});

} // namespace ramloc

#endif // RAMLOC_LP_SIMPLEX_H
