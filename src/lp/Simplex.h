//===- lp/Simplex.h - two-phase primal simplex ------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense two-phase tableau simplex. Integrality markers are ignored here;
/// lp/BranchBound.h layers 0/1 search on top. Problem sizes in this project
/// are small (tens to a few hundred variables), so a dense tableau with
/// Dantzig pricing and a Bland anti-cycling fallback is plenty.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_LP_SIMPLEX_H
#define RAMLOC_LP_SIMPLEX_H

#include "lp/Problem.h"

namespace ramloc {

/// Solver outcome.
enum class LpStatus : uint8_t {
  Optimal,
  Infeasible,
  Unbounded,
  IterLimit,
};

const char *lpStatusName(LpStatus S);

/// An LP solution: variable values in original problem space.
struct LpSolution {
  LpStatus Status = LpStatus::IterLimit;
  double Objective = 0.0;
  std::vector<double> Values;
  unsigned Iterations = 0;
};

/// Simplex knobs.
struct SimplexOptions {
  double Tolerance = 1e-9;
  unsigned MaxIterations = 100000;
};

/// Solves the LP relaxation of \p P.
LpSolution solveLp(const LpProblem &P, const SimplexOptions &Opts = {});

/// Solves with per-variable bound overrides (used by branch & bound to fix
/// binaries). \p Lower/\p Upper must have one entry per variable.
LpSolution solveLpWithBounds(const LpProblem &P,
                             const std::vector<double> &Lower,
                             const std::vector<double> &Upper,
                             const SimplexOptions &Opts = {});

} // namespace ramloc

#endif // RAMLOC_LP_SIMPLEX_H
