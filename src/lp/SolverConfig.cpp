//===- lp/SolverConfig.cpp - unified solver knobs and counters ------------===//

#include "lp/SolverConfig.h"

namespace ramloc {

const char *nodeOrderName(NodeOrder O) {
  switch (O) {
  case NodeOrder::Dfs:
    return "dfs";
  case NodeOrder::BestBound:
    return "best-bound";
  case NodeOrder::Hybrid:
    return "hybrid";
  }
  return "dfs";
}

bool nodeOrderFromName(const std::string &Name, NodeOrder &Out) {
  if (Name == "dfs")
    Out = NodeOrder::Dfs;
  else if (Name == "best-bound")
    Out = NodeOrder::BestBound;
  else if (Name == "hybrid")
    Out = NodeOrder::Hybrid;
  else
    return false;
  return true;
}

SolverStats &SolverStats::merge(const SolverStats &Other) {
  ColdNodeSolves += Other.ColdNodeSolves;
  WarmNodeSolves += Other.WarmNodeSolves;
  PrimalPivots += Other.PrimalPivots;
  DualPivots += Other.DualPivots;
  BoundFlips += Other.BoundFlips;
  Refactorizations += Other.Refactorizations;
  WarmStarted = WarmStarted || Other.WarmStarted;
  SeededIncumbent = SeededIncumbent || Other.SeededIncumbent;
  return *this;
}

} // namespace ramloc
