//===- lp/SolverConfig.cpp - unified solver knobs and counters ------------===//

#include "lp/SolverConfig.h"

namespace ramloc {

const char *nodeOrderName(NodeOrder O) {
  switch (O) {
  case NodeOrder::Dfs:
    return "dfs";
  case NodeOrder::BestBound:
    return "best-bound";
  case NodeOrder::Hybrid:
    return "hybrid";
  }
  return "dfs";
}

bool nodeOrderFromName(const std::string &Name, NodeOrder &Out) {
  if (Name == "dfs")
    Out = NodeOrder::Dfs;
  else if (Name == "best-bound")
    Out = NodeOrder::BestBound;
  else if (Name == "hybrid")
    Out = NodeOrder::Hybrid;
  else
    return false;
  return true;
}

const char *pricingName(Pricing P) {
  switch (P) {
  case Pricing::SteepestEdge:
    return "steepest-edge";
  case Pricing::Dantzig:
    return "dantzig";
  case Pricing::PartialDantzig:
    return "partial";
  case Pricing::Bland:
    return "bland";
  }
  return "steepest-edge";
}

bool pricingFromName(const std::string &Name, Pricing &Out) {
  if (Name == "steepest-edge")
    Out = Pricing::SteepestEdge;
  else if (Name == "dantzig")
    Out = Pricing::Dantzig;
  else if (Name == "partial")
    Out = Pricing::PartialDantzig;
  else if (Name == "bland")
    Out = Pricing::Bland;
  else
    return false;
  return true;
}

const char *solveStatusName(SolveStatus S) {
  switch (S) {
  case SolveStatus::Optimal:
    return "optimal";
  case SolveStatus::FeasibleLimit:
    return "feasible-limit";
  case SolveStatus::InfeasibleProven:
    return "infeasible-proven";
  case SolveStatus::Aborted:
    return "aborted";
  }
  return "aborted";
}

bool solveStatusFromName(const std::string &Name, SolveStatus &Out) {
  if (Name == "optimal")
    Out = SolveStatus::Optimal;
  else if (Name == "feasible-limit")
    Out = SolveStatus::FeasibleLimit;
  else if (Name == "infeasible-proven")
    Out = SolveStatus::InfeasibleProven;
  else if (Name == "aborted")
    Out = SolveStatus::Aborted;
  else
    return false;
  return true;
}

SolverStats &SolverStats::merge(const SolverStats &Other) {
  ColdNodeSolves += Other.ColdNodeSolves;
  WarmNodeSolves += Other.WarmNodeSolves;
  PrimalPivots += Other.PrimalPivots;
  DualPivots += Other.DualPivots;
  BoundFlips += Other.BoundFlips;
  Refactorizations += Other.Refactorizations;
  PricingUpdates += Other.PricingUpdates;
  PricingRecomputes += Other.PricingRecomputes;
  PricingDrift += Other.PricingDrift;
  StrongBranchProbes += Other.StrongBranchProbes;
  StrongBranchSeeds += Other.StrongBranchSeeds;
  WarmStarted = WarmStarted || Other.WarmStarted;
  SeededIncumbent = SeededIncumbent || Other.SeededIncumbent;
  return *this;
}

} // namespace ramloc
