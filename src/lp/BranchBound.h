//===- lp/BranchBound.h - 0/1 MIP solver ------------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch & bound over the simplex relaxation for problems whose integer
/// variables are all binary (exactly the shape of the paper's Section 4
/// model after linearization), with best-bound pruning, pseudo-cost
/// branching (most-fractional until costs are observed) and an
/// LP-rounding incumbent heuristic.
///
/// Node selection is pluggable (MipOptions::Order). Warm starts made node
/// cost uneven — a child next to its parent re-optimizes in a handful of
/// dual pivots where a far jump pays a bigger repair — so the policy is a
/// real lever:
///
///  - Dfs (default): classic depth-first diving, the warm-friendliest
///    order — every node is one bound change from the previous one, so
///    the dual repair is local and the retained tableau pays for itself.
///  - BestBound: always expand the open node with the smallest parent
///    bound; minimizes nodes explored and proves the gap earliest, at the
///    price of larger basis repairs per node.
///  - Hybrid: dive depth-first until the first incumbent exists, then
///    switch to best-bound for the proof phase — the smallest trees of
///    the three, the strongest choice for cold (--no-solve-reuse) runs
///    where there is no retained basis to thrash.
///
/// All orders are exact and return an optimal solution; on problems with
/// a unique optimum they return bit-identical assignments.
///
/// Solve once, branch cheap: each child node differs from its parent in
/// exactly one variable bound, which — with the bounded-variable tableau
/// — is an O(1) box update plus an O(rows) basic-value refresh that
/// leaves the parent basis dual feasible, so by default nodes are solved
/// by dual-simplex re-optimization of one evolving WarmStart tableau
/// instead of a fresh solve (MipOptions::WarmNodes; both paths are exact,
/// so the answer is the same either way — MipSolution's counters record
/// how each node was satisfied). A MipWarmStart additionally carries that
/// tableau and the previous optimum *across* solveMip calls, so a sweep
/// that only patches bounds or constraint RHS values between solves — the
/// knob axis of a placement campaign — re-optimizes from its neighbour
/// instead of starting over, and an externally seeded incumbent (e.g. the
/// persistent cache's best-known assignment) opens the search with most
/// of the tree already pruned.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_LP_BRANCHBOUND_H
#define RAMLOC_LP_BRANCHBOUND_H

#include "lp/Simplex.h"

namespace ramloc {

/// Which open node the search expands next.
enum class NodeOrder : uint8_t {
  Dfs,       ///< depth-first diving (warm-friendliest)
  BestBound, ///< smallest parent bound first (smallest tree)
  Hybrid,    ///< dive until an incumbent exists, then best-bound
};

const char *nodeOrderName(NodeOrder O);
bool nodeOrderFromName(const std::string &Name, NodeOrder &Out);

/// MIP search knobs.
struct MipOptions {
  SimplexOptions Simplex;
  double IntegerTolerance = 1e-6;
  /// Node budget; exceeding it returns the best incumbent with
  /// Proven = false.
  unsigned MaxNodes = 200000;
  /// Absolute optimality gap at which a node is pruned.
  double GapTolerance = 1e-9;
  /// Warm-start each node's relaxation from its parent's basis (dual
  /// simplex) instead of re-solving from scratch. Exact either way;
  /// disable for the fully cold reference path (--no-solve-reuse).
  bool WarmNodes = true;
  /// Node-selection policy (see NodeOrder). Every order is exact.
  NodeOrder Order = NodeOrder::Dfs;
  /// Branch on the variable with the best pseudo-cost score (estimated
  /// objective degradation both ways), falling back to most-fractional
  /// until a variable has observed degradations. Disable for plain
  /// most-fractional branching.
  bool PseudoCostBranching = true;
};

/// MIP outcome. Status Optimal with Proven false means "best found within
/// the node budget".
struct MipSolution {
  LpStatus Status = LpStatus::Infeasible;
  double Objective = 0.0;
  std::vector<double> Values;
  unsigned NodesExplored = 0;
  bool Proven = false;

  /// Node-level solve accounting: how each explored node's relaxation was
  /// satisfied, and the pivots each path spent. A cold search has
  /// ColdNodeSolves == NodesExplored; the warm path pays one cold solve
  /// (the root, unless a MipWarmStart seeded it) and re-optimizes the
  /// rest. BoundFlips counts ratio-test outcomes that moved a variable
  /// across its box without a pivot (bounded-variable fast path).
  unsigned ColdNodeSolves = 0;
  unsigned WarmNodeSolves = 0;
  uint64_t PrimalPivots = 0;
  uint64_t DualPivots = 0;
  uint64_t BoundFlips = 0;
  /// True when this solve itself started from a caller-provided
  /// MipWarmStart basis (knob-axis reuse) rather than a cold root.
  bool WarmStarted = false;
  /// True when the caller-provided incumbent survived the zero-tolerance
  /// feasibility re-check and opened the search.
  bool SeededIncumbent = false;

  bool feasible() const { return Status == LpStatus::Optimal; }
};

/// Cross-solve warm-start state for a structurally fixed problem whose
/// bounds or constraint RHS values change between solves. The LP tableau
/// evolves in place across the search trees, and the previous optimum —
/// or an externally provided assignment, e.g. the persistent cache's
/// best-known placement — seeds the next solve's incumbent (after an
/// exact, zero-tolerance feasibility re-check under the patched problem:
/// admitting a point infeasible by even a whisker could prune the true
/// optimum, whereas spuriously rejecting a boundary-tight seed merely
/// loses a head start). Reuse with a *structurally* different problem is
/// detected and degrades to a cold solve.
struct MipWarmStart {
  WarmStart Lp;
  /// The incumbent seed for the next solve (empty when none): the
  /// previous solve's optimum, or a caller-planted assignment.
  std::vector<double> Incumbent;
};

/// Solves \p P to optimality (integer variables must be binary). With
/// \p Warm, re-optimizes from the previous solve's basis and incumbent
/// and leaves the state primed for the next call.
MipSolution solveMip(const LpProblem &P, const MipOptions &Opts = {},
                     MipWarmStart *Warm = nullptr);

} // namespace ramloc

#endif // RAMLOC_LP_BRANCHBOUND_H
