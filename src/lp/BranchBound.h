//===- lp/BranchBound.h - 0/1 MIP solver ------------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch & bound over the simplex relaxation for problems whose integer
/// variables are all binary (exactly the shape of the paper's Section 4
/// model after linearization). Depth-first with best-bound pruning, most
/// fractional branching, and an LP-rounding incumbent heuristic.
///
/// Solve once, branch cheap: each child node differs from its parent in
/// exactly one variable bound, which leaves the parent's LP basis dual
/// feasible, so by default nodes are solved by dual-simplex
/// re-optimization of one evolving WarmStart tableau instead of a
/// two-phase solve from scratch (MipOptions::WarmNodes; both paths are
/// exact, so the answer is the same either way — MipSolution's counters
/// record how each node was satisfied). A MipWarmStart additionally
/// carries that tableau and the previous optimum *across* solveMip calls,
/// so a sweep that only patches bounds or constraint RHS values between
/// solves — the knob axis of a placement campaign — re-optimizes from its
/// neighbour instead of starting over.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_LP_BRANCHBOUND_H
#define RAMLOC_LP_BRANCHBOUND_H

#include "lp/Simplex.h"

namespace ramloc {

/// MIP search knobs.
struct MipOptions {
  SimplexOptions Simplex;
  double IntegerTolerance = 1e-6;
  /// Node budget; exceeding it returns the best incumbent with
  /// Proven = false.
  unsigned MaxNodes = 200000;
  /// Absolute optimality gap at which a node is pruned.
  double GapTolerance = 1e-9;
  /// Warm-start each node's relaxation from its parent's basis (dual
  /// simplex) instead of re-solving two-phase from scratch. Exact either
  /// way; disable for the fully cold reference path (--no-solve-reuse).
  bool WarmNodes = true;
};

/// MIP outcome. Status Optimal with Proven false means "best found within
/// the node budget".
struct MipSolution {
  LpStatus Status = LpStatus::Infeasible;
  double Objective = 0.0;
  std::vector<double> Values;
  unsigned NodesExplored = 0;
  bool Proven = false;

  /// Node-level solve accounting: how each explored node's relaxation was
  /// satisfied, and the pivots each path spent. A cold search has
  /// ColdNodeSolves == NodesExplored; the warm path pays one cold solve
  /// (the root, unless a MipWarmStart seeded it) and re-optimizes the
  /// rest.
  unsigned ColdNodeSolves = 0;
  unsigned WarmNodeSolves = 0;
  uint64_t PrimalPivots = 0;
  uint64_t DualPivots = 0;
  /// True when this solve itself started from a caller-provided
  /// MipWarmStart basis (knob-axis reuse) rather than a cold root.
  bool WarmStarted = false;

  bool feasible() const { return Status == LpStatus::Optimal; }
};

/// Cross-solve warm-start state for a structurally fixed problem whose
/// bounds or constraint RHS values change between solves. The LP tableau
/// evolves in place across the search trees, and the previous optimum
/// seeds the next solve's incumbent (after a feasibility re-check under
/// the patched problem). Reuse with a *structurally* different problem is
/// detected and degrades to a cold solve.
struct MipWarmStart {
  WarmStart Lp;
  /// The previous solve's optimal point (empty when none); used as the
  /// next solve's starting incumbent when still feasible.
  std::vector<double> Incumbent;
};

/// Solves \p P to optimality (integer variables must be binary). With
/// \p Warm, re-optimizes from the previous solve's basis and incumbent
/// and leaves the state primed for the next call.
MipSolution solveMip(const LpProblem &P, const MipOptions &Opts = {},
                     MipWarmStart *Warm = nullptr);

} // namespace ramloc

#endif // RAMLOC_LP_BRANCHBOUND_H
