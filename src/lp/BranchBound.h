//===- lp/BranchBound.h - 0/1 MIP solver ------------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch & bound over the simplex relaxation for problems whose integer
/// variables are all binary (exactly the shape of the paper's Section 4
/// model after linearization). Depth-first with best-bound pruning, most
/// fractional branching, and an LP-rounding incumbent heuristic.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_LP_BRANCHBOUND_H
#define RAMLOC_LP_BRANCHBOUND_H

#include "lp/Simplex.h"

namespace ramloc {

/// MIP search knobs.
struct MipOptions {
  SimplexOptions Simplex;
  double IntegerTolerance = 1e-6;
  /// Node budget; exceeding it returns the best incumbent with
  /// Proven = false.
  unsigned MaxNodes = 200000;
  /// Absolute optimality gap at which a node is pruned.
  double GapTolerance = 1e-9;
};

/// MIP outcome. Status Optimal with Proven false means "best found within
/// the node budget".
struct MipSolution {
  LpStatus Status = LpStatus::Infeasible;
  double Objective = 0.0;
  std::vector<double> Values;
  unsigned NodesExplored = 0;
  bool Proven = false;

  bool feasible() const { return Status == LpStatus::Optimal; }
};

/// Solves \p P to optimality (integer variables must be binary).
MipSolution solveMip(const LpProblem &P, const MipOptions &Opts = {});

} // namespace ramloc

#endif // RAMLOC_LP_BRANCHBOUND_H
