//===- lp/BranchBound.h - 0/1 MIP solver ------------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch & bound over the simplex relaxation for problems whose integer
/// variables are all binary (exactly the shape of the paper's Section 4
/// model after linearization), with best-bound pruning, pseudo-cost
/// branching (most-fractional until costs are observed) and an
/// LP-rounding incumbent heuristic.
///
/// Node selection is pluggable (SolverConfig::Order). Warm starts made
/// node cost uneven — a child next to its parent re-optimizes in a
/// handful of dual pivots where a far jump pays a bigger repair — so the
/// policy is a real lever:
///
///  - Dfs (default): classic depth-first diving, the warm-friendliest
///    order — every node is one bound change from the previous one, so
///    the dual repair is local and the retained tableau pays for itself.
///  - BestBound: always expand the open node with the smallest parent
///    bound; minimizes nodes explored and proves the gap earliest, at the
///    price of larger basis repairs per node.
///  - Hybrid: dive depth-first until the first incumbent exists, then
///    switch to best-bound for the proof phase — the smallest trees of
///    the three, the strongest choice for cold (--reuse without 'solve')
///    runs where there is no retained basis to thrash.
///
/// All orders are exact and return an optimal solution; on problems with
/// a unique optimum they return bit-identical assignments.
///
/// Solve once, branch cheap: each child node differs from its parent in
/// exactly one variable bound, which — with the bounded-variable tableau
/// — is an O(1) box update plus an O(rows) basic-value refresh that
/// leaves the parent basis dual feasible, so by default nodes are solved
/// by dual-simplex re-optimization of one evolving WarmStart tableau
/// instead of a fresh solve (SolverConfig::WarmNodes; both paths are
/// exact, so the answer is the same either way — MipSolution::Stats
/// records how each node was satisfied). A MipWarmStart additionally
/// carries that tableau and the previous optimum *across* solveMip calls,
/// so a sweep that only patches bounds or constraint RHS values between
/// solves — the knob axis of a placement campaign — re-optimizes from its
/// neighbour instead of starting over, and an externally seeded incumbent
/// (e.g. the persistent cache's best-known assignment) opens the search
/// with most of the tree already pruned.
///
/// With SolverConfig::Threads > 1 the tree itself is searched in
/// parallel: the root relaxation is solved once on the caller's warm
/// tableau (preserving the cross-solve reuse semantics above), then the
/// open list is sharded across workers with JobQueue-style deque
/// stealing — each worker dives its own shard front-to-back in the
/// configured order and steals from a sibling's tail when dry — and each
/// worker re-optimizes its own deep copy of the solved root tableau.
/// The shared incumbent makes pruning global. Determinism comes from
/// *canonical result selection*, not from scheduling: a candidate
/// incumbent's integer values are snapped exactly and it replaces the
/// current best only when its objective is strictly smaller, or bit-equal
/// with a lexicographically smaller assignment. That rule is independent
/// of tree shape and arrival order, and the serial path applies the same
/// rule, so any thread count returns the same assignment whenever the
/// optimum is unique (multiple bit-equal-energy optima remain the one
/// documented divergence, exactly as for node-order and warm/cold A/Bs).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_LP_BRANCHBOUND_H
#define RAMLOC_LP_BRANCHBOUND_H

#include "lp/Simplex.h"

namespace ramloc {

/// MIP outcome. Status Optimal with Proven false means "best found within
/// the node budget"; Outcome is the one-word trust label derived from
/// (Status, Proven) that callers must propagate — a degraded answer is
/// never reported as SolveStatus::Optimal.
struct MipSolution {
  LpStatus Status = LpStatus::Infeasible;
  double Objective = 0.0;
  std::vector<double> Values;
  unsigned NodesExplored = 0;
  bool Proven = false;
  /// What this solve proved (see lp/SolverConfig.h). Optimal only when
  /// the incumbent's optimality was proven; FeasibleLimit when a
  /// cooperative limit (TimeLimitMs / NodeLimit / PivotLimit / MaxNodes)
  /// truncated the proof but an incumbent exists; InfeasibleProven when
  /// infeasibility was established; Aborted otherwise.
  SolveStatus Outcome = SolveStatus::Aborted;

  /// The solve's effort ledger (merged across workers when the tree was
  /// searched in parallel), also published into the mip.* metrics
  /// counters. Use the accessors below for the common reads.
  SolverStats Stats;

  bool feasible() const { return Status == LpStatus::Optimal; }

  unsigned coldNodeSolves() const { return Stats.ColdNodeSolves; }
  unsigned warmNodeSolves() const { return Stats.WarmNodeSolves; }
  uint64_t primalPivots() const { return Stats.PrimalPivots; }
  uint64_t dualPivots() const { return Stats.DualPivots; }
  uint64_t boundFlips() const { return Stats.BoundFlips; }
  uint64_t refactorizations() const { return Stats.Refactorizations; }
  bool warmStarted() const { return Stats.WarmStarted; }
  bool seededIncumbent() const { return Stats.SeededIncumbent; }
};

/// Cross-solve warm-start state for a structurally fixed problem whose
/// bounds or constraint RHS values change between solves. The LP tableau
/// evolves in place across the search trees, and the previous optimum —
/// or an externally provided assignment, e.g. the persistent cache's
/// best-known placement — seeds the next solve's incumbent (after an
/// exact, zero-tolerance feasibility re-check under the patched problem:
/// admitting a point infeasible by even a whisker could prune the true
/// optimum, whereas spuriously rejecting a boundary-tight seed merely
/// loses a head start). Reuse with a *structurally* different problem is
/// detected and degrades to a cold solve.
struct MipWarmStart {
  WarmStart Lp;
  /// The incumbent seed for the next solve (empty when none): the
  /// previous solve's optimum, or a caller-planted assignment.
  std::vector<double> Incumbent;
};

/// Solves \p P to optimality (integer variables must be binary). With
/// \p Warm, re-optimizes from the previous solve's basis and incumbent
/// and leaves the state primed for the next call. Cfg.Threads > 1
/// searches the tree with a work-stealing worker pool; results are
/// canonical across thread counts (see the file comment).
MipSolution solveMip(const LpProblem &P, const SolverConfig &Cfg = {},
                     MipWarmStart *Warm = nullptr);

} // namespace ramloc

#endif // RAMLOC_LP_BRANCHBOUND_H
