//===- asmio/Printer.h - textual assembly output ----------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules in the project's UAL-like assembly dialect. The output
/// round-trips through asmio/Parser.h, which the test suite checks.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_ASMIO_PRINTER_H
#define RAMLOC_ASMIO_PRINTER_H

#include "mir/Module.h"

#include <string>

namespace ramloc {

/// Renders one instruction, e.g. "add r0, r1, #4" or "ldrne r5, =label".
std::string printInstr(const Instr &I);

/// Renders a whole module in the parseable dialect.
std::string printModule(const Module &M);

} // namespace ramloc

#endif // RAMLOC_ASMIO_PRINTER_H
