//===- asmio/Parser.h - textual assembly input ------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the project's UAL-like assembly dialect into a Module. The
/// dialect is what asmio/Printer.h emits:
///
///   .module demo
///   .entry main
///   .rodata table 4 0a0b0c0d
///   .bss scratch 64 4
///   .func main
///   .block entry
///       push {r4, lr}
///       mov r4, #0
///       bl helper
///       pop {r4, pc}
///
/// Errors are collected with line numbers rather than thrown; the result
/// is usable iff ok().
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_ASMIO_PARSER_H
#define RAMLOC_ASMIO_PARSER_H

#include "mir/Module.h"

#include <string>
#include <string_view>
#include <vector>

namespace ramloc {

/// Outcome of parsing: a module plus diagnostics.
struct ParseResult {
  Module M;
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Parses \p Text into a module. Never asserts on user input.
ParseResult parseAssembly(std::string_view Text);

} // namespace ramloc

#endif // RAMLOC_ASMIO_PARSER_H
