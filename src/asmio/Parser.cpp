//===- asmio/Parser.cpp - textual assembly input ------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "asmio/Parser.h"

#include "support/Format.h"

#include <cctype>
#include <cstdlib>
#include <optional>

using namespace ramloc;

namespace {

/// Splits one line into whitespace/comma separated tokens, keeping bracket
/// and brace groups intact: "ldr r0, [r1, #4]" -> {"ldr","r0","[r1,#4]"}.
std::vector<std::string> tokenizeLine(std::string_view Line) {
  std::vector<std::string> Tokens;
  std::string Cur;
  int GroupDepth = 0;
  for (char C : Line) {
    if (C == ';') // comment to end of line
      break;
    if (C == '[' || C == '{') {
      ++GroupDepth;
      Cur += C;
      continue;
    }
    if (C == ']' || C == '}') {
      --GroupDepth;
      Cur += C;
      continue;
    }
    if (GroupDepth == 0 && (std::isspace(static_cast<unsigned char>(C)) ||
                            C == ',')) {
      if (!Cur.empty()) {
        Tokens.push_back(Cur);
        Cur.clear();
      }
      continue;
    }
    if (GroupDepth > 0 && std::isspace(static_cast<unsigned char>(C)))
      continue; // normalize inside groups
    Cur += C;
  }
  if (!Cur.empty())
    Tokens.push_back(Cur);
  return Tokens;
}

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  ParseResult run() {
    unsigned LineNo = 0;
    size_t Pos = 0;
    while (Pos < Text.size()) {
      size_t Eol = Text.find('\n', Pos);
      if (Eol == std::string_view::npos)
        Eol = Text.size();
      ++LineNo;
      parseLine(LineNo, Text.substr(Pos, Eol - Pos));
      Pos = Eol + 1;
    }
    return std::move(Result);
  }

private:
  void error(unsigned LineNo, const std::string &Msg) {
    Result.Errors.push_back(formatString("line %u: %s", LineNo, Msg.c_str()));
  }

  Function *currentFunction() {
    if (Result.M.Functions.empty())
      return nullptr;
    return &Result.M.Functions.back();
  }

  BasicBlock *currentBlock() {
    Function *F = currentFunction();
    if (!F || F->Blocks.empty())
      return nullptr;
    return &F->Blocks.back();
  }

  void parseLine(unsigned LineNo, std::string_view Line) {
    std::vector<std::string> Tok = tokenizeLine(Line);
    if (Tok.empty())
      return;
    if (Tok[0][0] == '.') {
      parseDirective(LineNo, Tok);
      return;
    }
    BasicBlock *BB = currentBlock();
    if (!BB) {
      error(LineNo, "instruction outside of a block");
      return;
    }
    if (auto I = parseInstr(LineNo, Tok))
      BB->Instrs.push_back(std::move(*I));
  }

  // --- directives --------------------------------------------------------

  void parseDirective(unsigned LineNo, const std::vector<std::string> &Tok) {
    const std::string &D = Tok[0];
    if (D == ".module") {
      if (Tok.size() == 2)
        Result.M.Name = Tok[1];
      else
        error(LineNo, ".module expects a name");
      return;
    }
    if (D == ".entry") {
      if (Tok.size() == 2)
        Result.M.EntryFunction = Tok[1];
      else
        error(LineNo, ".entry expects a function name");
      return;
    }
    if (D == ".rodata" || D == ".data") {
      if (Tok.size() < 3 || Tok.size() > 4) {
        error(LineNo, D + " expects: name align [hexbytes]");
        return;
      }
      DataObject Obj;
      Obj.Name = Tok[1];
      Obj.Sect = D == ".rodata" ? DataObject::Section::Rodata
                                : DataObject::Section::Data;
      Obj.Align = static_cast<uint32_t>(std::strtoul(Tok[2].c_str(),
                                                     nullptr, 10));
      if (Tok.size() == 4 && !parseHexBytes(Tok[3], Obj.Bytes)) {
        error(LineNo, "bad hex byte string");
        return;
      }
      Result.M.Data.push_back(std::move(Obj));
      return;
    }
    if (D == ".bss") {
      if (Tok.size() != 4) {
        error(LineNo, ".bss expects: name size align");
        return;
      }
      DataObject Obj;
      Obj.Name = Tok[1];
      Obj.Sect = DataObject::Section::Bss;
      Obj.Size = static_cast<uint32_t>(std::strtoul(Tok[1 + 1].c_str(),
                                                    nullptr, 10));
      Obj.Align = static_cast<uint32_t>(std::strtoul(Tok[3].c_str(),
                                                     nullptr, 10));
      Result.M.Data.push_back(std::move(Obj));
      return;
    }
    if (D == ".func") {
      if (Tok.size() < 2 || Tok.size() > 3) {
        error(LineNo, ".func expects: name [library]");
        return;
      }
      Function F(Tok[1]);
      if (Tok.size() == 3) {
        if (Tok[2] == "library")
          F.Optimizable = false;
        else
          error(LineNo, "unknown .func attribute '" + Tok[2] + "'");
      }
      Result.M.Functions.push_back(std::move(F));
      return;
    }
    if (D == ".block") {
      Function *F = currentFunction();
      if (!F) {
        error(LineNo, ".block outside of a function");
        return;
      }
      if (Tok.size() < 2 || Tok.size() > 3) {
        error(LineNo, ".block expects: label [home=ram]");
        return;
      }
      BasicBlock BB(Tok[1]);
      if (Tok.size() == 3) {
        if (Tok[2] == "home=ram")
          BB.Home = MemKind::Ram;
        else if (Tok[2] == "home=flash")
          BB.Home = MemKind::Flash;
        else
          error(LineNo, "unknown .block attribute '" + Tok[2] + "'");
      }
      F->Blocks.push_back(std::move(BB));
      return;
    }
    error(LineNo, "unknown directive '" + D + "'");
  }

  static bool parseHexBytes(const std::string &S,
                            std::vector<uint8_t> &Out) {
    if (S.size() % 2 != 0)
      return false;
    auto hexVal = [](char C) -> int {
      if (C >= '0' && C <= '9')
        return C - '0';
      if (C >= 'a' && C <= 'f')
        return C - 'a' + 10;
      if (C >= 'A' && C <= 'F')
        return C - 'A' + 10;
      return -1;
    };
    for (size_t I = 0; I < S.size(); I += 2) {
      int Hi = hexVal(S[I]), Lo = hexVal(S[I + 1]);
      if (Hi < 0 || Lo < 0)
        return false;
      Out.push_back(static_cast<uint8_t>(Hi * 16 + Lo));
    }
    return true;
  }

  // --- operand scanning ---------------------------------------------------

  struct Mnemonic {
    std::string Base;
    bool S = false;
    Cond C = Cond::AL;
  };

  static std::optional<Mnemonic> splitMnemonic(const std::string &Word) {
    // Exact matches that would otherwise be eaten by suffix stripping.
    static const char *const Exact[] = {"bl",  "blx", "bx",  "bkpt", "nop",
                                        "wfi", "it",  "ite", "push", "pop",
                                        "cbz", "cbnz", "b"};
    for (const char *E : Exact)
      if (Word == E)
        return Mnemonic{Word, false, Cond::AL};

    static const char *const Bases[] = {
        "udiv", "sdiv", "uxtb", "uxth", "sxtb", "sxth", "ldrb", "ldrh",
        "strb", "strh", "ldr",  "str",  "mov",  "mvn",  "add",  "sub",
        "rsb",  "adc",  "sbc",  "mul",  "mla",  "and",  "orr",  "eor",
        "bic",  "lsl",  "lsr",  "asr",  "ror",  "cmp",  "tst"};
    for (const char *Base : Bases) {
      std::string B(Base);
      if (Word.rfind(B, 0) != 0)
        continue;
      std::string Rest = Word.substr(B.size());
      Mnemonic Mn{B, false, Cond::AL};
      if (!Rest.empty() && Rest[0] == 's' &&
          (Rest.size() == 1 || Rest.size() == 3)) {
        Mn.S = true;
        Rest = Rest.substr(1);
      }
      if (!Rest.empty()) {
        if (!parseCondName(Rest, Mn.C))
          continue;
      }
      return Mn;
    }
    // Conditional branch: "b" + condition.
    if (Word.size() == 3 && Word[0] == 'b') {
      Cond C;
      if (parseCondName(Word.substr(1), C))
        return Mnemonic{"b", false, C};
    }
    return std::nullopt;
  }

  struct Operand {
    enum class Kind {
      Register,
      Immediate, ///< #n
      Literal,   ///< =sym or =const (Sym empty when constant)
      Memory,    ///< [rn] / [rn, #off] / [rn, rm]
      RegList,   ///< {r4-r7, lr}
      Symbol,    ///< bare identifier
    } K;
    Reg R = R0;
    Reg MemBase = R0;
    Reg MemIndex = NumRegs; ///< NumRegs when the offset is immediate
    int32_t Imm = 0;
    uint32_t Mask = 0;
    std::string Sym;
  };

  std::optional<Operand> parseOperand(unsigned LineNo,
                                      const std::string &Tok) {
    Operand Op;
    if (Tok[0] == '#') {
      Op.K = Operand::Kind::Immediate;
      Op.Imm = static_cast<int32_t>(std::strtol(Tok.c_str() + 1, nullptr, 0));
      return Op;
    }
    if (Tok[0] == '=') {
      Op.K = Operand::Kind::Literal;
      std::string Rest = Tok.substr(1);
      if (!Rest.empty() &&
          (std::isdigit(static_cast<unsigned char>(Rest[0])) ||
           Rest[0] == '-')) {
        Op.Imm = static_cast<int32_t>(std::strtoul(Rest.c_str(), nullptr, 0));
      } else {
        Op.Sym = Rest;
      }
      return Op;
    }
    if (Tok[0] == '[') {
      if (Tok.back() != ']') {
        error(LineNo, "unterminated memory operand");
        return std::nullopt;
      }
      std::string Inner = Tok.substr(1, Tok.size() - 2);
      // Split on the comma we preserved inside the group.
      size_t Comma = Inner.find(',');
      std::string BaseText =
          Comma == std::string::npos ? Inner : Inner.substr(0, Comma);
      Reg Base = parseRegName(BaseText);
      if (Base == NumRegs) {
        error(LineNo, "bad base register '" + BaseText + "'");
        return std::nullopt;
      }
      Op.K = Operand::Kind::Memory;
      Op.MemBase = Base;
      if (Comma == std::string::npos)
        return Op;
      std::string OffText = Inner.substr(Comma + 1);
      if (!OffText.empty() && OffText[0] == '#') {
        Op.Imm = static_cast<int32_t>(
            std::strtol(OffText.c_str() + 1, nullptr, 0));
        return Op;
      }
      Reg Index = parseRegName(OffText);
      if (Index == NumRegs) {
        error(LineNo, "bad index '" + OffText + "'");
        return std::nullopt;
      }
      Op.MemIndex = Index;
      return Op;
    }
    if (Tok[0] == '{') {
      if (Tok.back() != '}') {
        error(LineNo, "unterminated register list");
        return std::nullopt;
      }
      Op.K = Operand::Kind::RegList;
      std::string Inner = Tok.substr(1, Tok.size() - 2);
      size_t Pos = 0;
      while (Pos < Inner.size()) {
        size_t Comma = Inner.find(',', Pos);
        std::string Item = Inner.substr(
            Pos, Comma == std::string::npos ? std::string::npos
                                            : Comma - Pos);
        size_t Dash = Item.find('-');
        if (Dash == std::string::npos) {
          Reg R = parseRegName(Item);
          if (R == NumRegs) {
            error(LineNo, "bad register '" + Item + "' in list");
            return std::nullopt;
          }
          Op.Mask |= 1u << R;
        } else {
          Reg Lo = parseRegName(Item.substr(0, Dash));
          Reg Hi = parseRegName(Item.substr(Dash + 1));
          if (Lo == NumRegs || Hi == NumRegs || Lo > Hi) {
            error(LineNo, "bad register range '" + Item + "'");
            return std::nullopt;
          }
          for (unsigned R = Lo; R <= Hi; ++R)
            Op.Mask |= 1u << R;
        }
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
      return Op;
    }
    Reg R = parseRegName(Tok);
    if (R != NumRegs) {
      Op.K = Operand::Kind::Register;
      Op.R = R;
      return Op;
    }
    Op.K = Operand::Kind::Symbol;
    Op.Sym = Tok;
    return Op;
  }

  // --- instructions -------------------------------------------------------

  std::optional<Instr> parseInstr(unsigned LineNo,
                                  const std::vector<std::string> &Tok) {
    auto Mn = splitMnemonic(Tok[0]);
    if (!Mn) {
      error(LineNo, "unknown mnemonic '" + Tok[0] + "'");
      return std::nullopt;
    }
    std::vector<Operand> Ops;
    for (unsigned I = 1, E = Tok.size(); I != E; ++I) {
      auto Op = parseOperand(LineNo, Tok[I]);
      if (!Op)
        return std::nullopt;
      Ops.push_back(std::move(*Op));
    }
    auto Fail = [&](const char *Msg) -> std::optional<Instr> {
      error(LineNo, formatString("%s: %s", Tok[0].c_str(), Msg));
      return std::nullopt;
    };
    auto isReg = [&](unsigned I) {
      return I < Ops.size() && Ops[I].K == Operand::Kind::Register;
    };
    auto isImm = [&](unsigned I) {
      return I < Ops.size() && Ops[I].K == Operand::Kind::Immediate;
    };

    Instr Out = buildInstr(*Mn, Ops, Fail, isReg, isImm);
    if (Out.Kind == OpKind::Bkpt && Mn->Base != "bkpt")
      return std::nullopt; // buildInstr signalled failure
    Out.SetsFlags |= Mn->S;
    if (Mn->C != Cond::AL)
      Out.CondCode = Mn->C;
    return Out;
  }

  template <typename FailT, typename IsRegT, typename IsImmT>
  Instr buildInstr(const Mnemonic &Mn, std::vector<Operand> &Ops, FailT Fail,
                   IsRegT isReg, IsImmT isImm) {
    using namespace build;
    const std::string &B = Mn.Base;
    // Error sentinel: a bkpt from a non-bkpt mnemonic (checked by caller).
    Instr Bad = bkpt();
    auto R = [&](unsigned I) { return Ops[I].R; };

    if (B == "nop")
      return nop();
    if (B == "wfi")
      return wfi();
    if (B == "bkpt")
      return bkpt();
    if (B == "it" || B == "ite") {
      if (Ops.size() != 1 || Ops[0].K != Operand::Kind::Symbol)
        return Fail("expects a condition"), Bad;
      Cond C;
      if (!parseCondName(Ops[0].Sym, C) || C == Cond::AL)
        return Fail("bad condition"), Bad;
      return B == "it" ? it(C) : ite(C);
    }
    if (B == "push" || B == "pop") {
      if (Ops.size() != 1 || Ops[0].K != Operand::Kind::RegList)
        return Fail("expects a register list"), Bad;
      return B == "push" ? push(Ops[0].Mask) : pop(Ops[0].Mask);
    }
    if (B == "b") {
      if (Ops.size() != 1 || Ops[0].K != Operand::Kind::Symbol)
        return Fail("expects a label"), Bad;
      return Mn.C == Cond::AL ? b(Ops[0].Sym) : bCond(Mn.C, Ops[0].Sym);
    }
    if (B == "bl") {
      if (Ops.size() != 1 || Ops[0].K != Operand::Kind::Symbol)
        return Fail("expects a function name"), Bad;
      return bl(Ops[0].Sym);
    }
    if (B == "blx" || B == "bx") {
      if (Ops.size() != 1 || !isReg(0))
        return Fail("expects a register"), Bad;
      return B == "blx" ? blx(R(0)) : bx(R(0));
    }
    if (B == "cbz" || B == "cbnz") {
      if (Ops.size() != 2 || !isReg(0) ||
          Ops[1].K != Operand::Kind::Symbol)
        return Fail("expects: rn, label"), Bad;
      if (!isLowReg(R(0)))
        return Fail("requires a low register"), Bad;
      return B == "cbz" ? cbz(R(0), Ops[1].Sym) : cbnz(R(0), Ops[1].Sym);
    }
    if (B == "mov") {
      if (Ops.size() != 2 || !isReg(0))
        return Fail("expects: rd, (rm|#imm)"), Bad;
      if (isImm(1)) {
        if (Ops[1].Imm < 0 || Ops[1].Imm > 0xFFFF)
          return Fail("immediate out of range"), Bad;
        return movImm(R(0), Ops[1].Imm);
      }
      if (!isReg(1))
        return Fail("expects: rd, (rm|#imm)"), Bad;
      return movReg(R(0), R(1));
    }
    if (B == "mvn" || B == "uxtb" || B == "uxth" || B == "sxtb" ||
        B == "sxth") {
      if (Ops.size() != 2 || !isReg(0) || !isReg(1))
        return Fail("expects: rd, rm"), Bad;
      if (B == "mvn")
        return mvn(R(0), R(1));
      if (B == "uxtb")
        return uxtb(R(0), R(1));
      if (B == "uxth")
        return uxth(R(0), R(1));
      if (B == "sxtb")
        return sxtb(R(0), R(1));
      return sxth(R(0), R(1));
    }
    if (B == "cmp") {
      if (Ops.size() != 2 || !isReg(0))
        return Fail("expects: rn, (rm|#imm)"), Bad;
      if (isImm(1)) {
        if (Ops[1].Imm < 0 || Ops[1].Imm > 4095)
          return Fail("immediate out of range"), Bad;
        return cmpImm(R(0), Ops[1].Imm);
      }
      if (!isReg(1))
        return Fail("expects: rn, (rm|#imm)"), Bad;
      return cmpReg(R(0), R(1));
    }
    if (B == "tst") {
      if (Ops.size() != 2 || !isReg(0) || !isReg(1))
        return Fail("expects: rn, rm"), Bad;
      return tst(R(0), R(1));
    }
    if (B == "mla") {
      if (Ops.size() != 4 || !isReg(0) || !isReg(1) || !isReg(2) ||
          !isReg(3))
        return Fail("expects: rd, rn, rm, ra"), Bad;
      return mla(R(0), R(1), R(2), R(3));
    }
    if (B == "ldr" || B == "str" || B == "ldrb" || B == "strb" ||
        B == "ldrh" || B == "strh")
      return buildMemInstr(B, Ops, Fail, Bad);

    // Three-operand (or two-operand shorthand) data processing.
    if (Ops.size() == 2 && isReg(0)) {
      // "add r0, r1" means "add r0, r0, r1".
      Ops.insert(Ops.begin() + 1, Ops[0]);
    }
    if (Ops.size() != 3 || !isReg(0) || !isReg(1))
      return Fail("expects: rd, rn, (rm|#imm)"), Bad;
    bool ImmForm = isImm(2);
    if (!ImmForm && !isReg(2))
      return Fail("expects: rd, rn, (rm|#imm)"), Bad;
    int32_t Imm = ImmForm ? Ops[2].Imm : 0;

    if (ImmForm && (B == "add" || B == "sub") && (Imm < 0 || Imm > 4095))
      return Fail("immediate out of range"), Bad;
    if (ImmForm && B == "lsl" && (Imm < 0 || Imm > 31))
      return Fail("shift out of range"), Bad;
    if (ImmForm && (B == "lsr" || B == "asr") && (Imm < 1 || Imm > 32))
      return Fail("shift out of range"), Bad;

    if (B == "add")
      return ImmForm ? addImm(R(0), R(1), Imm) : addReg(R(0), R(1), R(2));
    if (B == "sub")
      return ImmForm ? subImm(R(0), R(1), Imm) : subReg(R(0), R(1), R(2));
    if (B == "rsb")
      return ImmForm ? rsb(R(0), R(1), Imm)
                     : (Fail("rsb requires an immediate"), Bad);
    if (B == "adc")
      return ImmForm ? (Fail("adc requires registers"), Bad)
                     : adc(R(0), R(1), R(2));
    if (B == "sbc")
      return ImmForm ? (Fail("sbc requires registers"), Bad)
                     : sbc(R(0), R(1), R(2));
    if (B == "mul")
      return ImmForm ? (Fail("mul requires registers"), Bad)
                     : mul(R(0), R(1), R(2));
    if (B == "udiv")
      return ImmForm ? (Fail("udiv requires registers"), Bad)
                     : udiv(R(0), R(1), R(2));
    if (B == "sdiv")
      return ImmForm ? (Fail("sdiv requires registers"), Bad)
                     : sdiv(R(0), R(1), R(2));
    if (B == "and")
      return ImmForm ? andImm(R(0), R(1), Imm) : andReg(R(0), R(1), R(2));
    if (B == "orr")
      return ImmForm ? orrImm(R(0), R(1), Imm) : orrReg(R(0), R(1), R(2));
    if (B == "eor")
      return ImmForm ? eorImm(R(0), R(1), Imm) : eorReg(R(0), R(1), R(2));
    if (B == "bic")
      return ImmForm ? bicImm(R(0), R(1), Imm) : bicReg(R(0), R(1), R(2));
    if (B == "lsl")
      return ImmForm ? lslImm(R(0), R(1), Imm) : lslReg(R(0), R(1), R(2));
    if (B == "lsr")
      return ImmForm ? lsrImm(R(0), R(1), Imm) : lsrReg(R(0), R(1), R(2));
    if (B == "asr")
      return ImmForm ? asrImm(R(0), R(1), Imm) : asrReg(R(0), R(1), R(2));
    if (B == "ror")
      return ImmForm ? (Fail("ror requires registers"), Bad)
                     : rorReg(R(0), R(1), R(2));
    return Fail("unhandled mnemonic"), Bad;
  }

  template <typename FailT>
  Instr buildMemInstr(const std::string &B, std::vector<Operand> &Ops,
                      FailT Fail, Instr Bad) {
    using namespace build;
    if (Ops.size() != 2 || Ops[0].K != Operand::Kind::Register)
      return Fail("expects: rt, (mem|=lit)"), Bad;
    Reg Rt = Ops[0].R;
    if (Ops[1].K == Operand::Kind::Literal) {
      if (B != "ldr")
        return Fail("only ldr supports literals"), Bad;
      return Ops[1].Sym.empty() ? ldrLitConst(Rt, Ops[1].Imm)
                                : ldrLitSym(Rt, Ops[1].Sym);
    }
    if (Ops[1].K != Operand::Kind::Memory)
      return Fail("expects a memory operand"), Bad;
    Reg Rn = Ops[1].MemBase;
    bool HasIndex = Ops[1].MemIndex != NumRegs;
    Reg Rm = HasIndex ? Ops[1].MemIndex : R0;
    int32_t Off = Ops[1].Imm;
    if (!HasIndex && (Off < 0 || Off > 4095))
      return Fail("offset out of range"), Bad;
    if (B == "ldr")
      return HasIndex ? ldrReg(Rt, Rn, Rm) : ldrImm(Rt, Rn, Off);
    if (B == "str")
      return HasIndex ? strReg(Rt, Rn, Rm) : strImm(Rt, Rn, Off);
    if (B == "ldrb")
      return HasIndex ? ldrbReg(Rt, Rn, Rm) : ldrbImm(Rt, Rn, Off);
    if (B == "strb")
      return HasIndex ? strbReg(Rt, Rn, Rm) : strbImm(Rt, Rn, Off);
    if (B == "ldrh")
      return HasIndex ? (Fail("ldrh has no register form"), Bad)
                      : ldrhImm(Rt, Rn, Off);
    if (B == "strh")
      return HasIndex ? (Fail("strh has no register form"), Bad)
                      : strhImm(Rt, Rn, Off);
    return Fail("unhandled memory mnemonic"), Bad;
  }

  std::string_view Text;
  ParseResult Result;
};

} // namespace

ParseResult ramloc::parseAssembly(std::string_view Text) {
  return Parser(Text).run();
}
