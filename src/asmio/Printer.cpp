//===- asmio/Printer.cpp - textual assembly output ----------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "asmio/Printer.h"

#include "support/Format.h"

#include <cassert>

using namespace ramloc;

namespace {

std::string regListText(uint32_t Mask) {
  std::string Out = "{";
  bool First = true;
  // Emit maximal runs rN-rM for compactness, then sp/lr/pc singles.
  for (unsigned R = 0; R < 16;) {
    if (!(Mask & (1u << R))) {
      ++R;
      continue;
    }
    unsigned End = R;
    while (End + 1 < 13 && (Mask & (1u << (End + 1))))
      ++End;
    if (!First)
      Out += ", ";
    First = false;
    if (End > R + 1) {
      Out += regName(static_cast<Reg>(R)) + "-" +
             regName(static_cast<Reg>(End));
      R = End + 1;
    } else {
      Out += regName(static_cast<Reg>(R));
      ++R;
    }
  }
  Out += "}";
  return Out;
}

std::string mnemonicText(const Instr &I) {
  // The it/ite condition is printed as the operand, not as a suffix.
  if (I.Kind == OpKind::It)
    return (I.Imm & 4) ? "ite" : "it";
  std::string Out = opMnemonic(I.Kind);
  if (I.SetsFlags && I.Kind != OpKind::CmpImm && I.Kind != OpKind::CmpReg &&
      I.Kind != OpKind::Tst)
    Out += "s";
  if (I.CondCode != Cond::AL)
    Out += condName(I.CondCode);
  return Out;
}

std::string r(const Instr &I, unsigned Idx) {
  return regName(I.Regs[Idx]);
}

} // namespace

std::string ramloc::printInstr(const Instr &I) {
  std::string M = mnemonicText(I);
  switch (I.Kind) {
  case OpKind::MovImm:
    return formatString("%s %s, #%d", M.c_str(), r(I, 0).c_str(), I.Imm);
  case OpKind::MovReg:
  case OpKind::Mvn:
  case OpKind::Uxtb:
  case OpKind::Uxth:
  case OpKind::Sxtb:
  case OpKind::Sxth:
    return formatString("%s %s, %s", M.c_str(), r(I, 0).c_str(),
                        r(I, 1).c_str());
  case OpKind::AddImm:
  case OpKind::SubImm:
  case OpKind::Rsb:
  case OpKind::AndImm:
  case OpKind::OrrImm:
  case OpKind::EorImm:
  case OpKind::BicImm:
    return formatString("%s %s, %s, #%d", M.c_str(), r(I, 0).c_str(),
                        r(I, 1).c_str(), I.Imm);
  case OpKind::AddReg:
  case OpKind::SubReg:
  case OpKind::Adc:
  case OpKind::Sbc:
  case OpKind::Mul:
  case OpKind::Udiv:
  case OpKind::Sdiv:
  case OpKind::AndReg:
  case OpKind::OrrReg:
  case OpKind::EorReg:
  case OpKind::BicReg:
  case OpKind::LslReg:
  case OpKind::LsrReg:
  case OpKind::AsrReg:
  case OpKind::RorReg:
    return formatString("%s %s, %s, %s", M.c_str(), r(I, 0).c_str(),
                        r(I, 1).c_str(), r(I, 2).c_str());
  case OpKind::Mla:
    return formatString("%s %s, %s, %s, %s", M.c_str(), r(I, 0).c_str(),
                        r(I, 1).c_str(), r(I, 2).c_str(), r(I, 3).c_str());
  case OpKind::LslImm:
  case OpKind::LsrImm:
  case OpKind::AsrImm:
    return formatString("%s %s, %s, #%d", M.c_str(), r(I, 0).c_str(),
                        r(I, 1).c_str(), I.Imm);
  case OpKind::CmpImm:
    return formatString("%s %s, #%d", M.c_str(), r(I, 0).c_str(), I.Imm);
  case OpKind::CmpReg:
  case OpKind::Tst:
    return formatString("%s %s, %s", M.c_str(), r(I, 0).c_str(),
                        r(I, 1).c_str());
  case OpKind::LdrImm:
  case OpKind::StrImm:
  case OpKind::LdrbImm:
  case OpKind::StrbImm:
  case OpKind::LdrhImm:
  case OpKind::StrhImm:
    if (I.Imm == 0)
      return formatString("%s %s, [%s]", M.c_str(), r(I, 0).c_str(),
                          r(I, 1).c_str());
    return formatString("%s %s, [%s, #%d]", M.c_str(), r(I, 0).c_str(),
                        r(I, 1).c_str(), I.Imm);
  case OpKind::LdrReg:
  case OpKind::StrReg:
  case OpKind::LdrbReg:
  case OpKind::StrbReg:
    return formatString("%s %s, [%s, %s]", M.c_str(), r(I, 0).c_str(),
                        r(I, 1).c_str(), r(I, 2).c_str());
  case OpKind::LdrLit:
    if (!I.Sym.empty())
      return formatString("%s %s, =%s", M.c_str(), r(I, 0).c_str(),
                          I.Sym.c_str());
    return formatString("%s %s, =0x%x", M.c_str(), r(I, 0).c_str(),
                        static_cast<unsigned>(I.Imm));
  case OpKind::Push:
  case OpKind::Pop:
    return formatString("%s %s", M.c_str(),
                        regListText(static_cast<uint32_t>(I.Imm)).c_str());
  case OpKind::B:
  case OpKind::BCond:
  case OpKind::Bl:
    return formatString("%s %s", M.c_str(), I.Sym.c_str());
  case OpKind::Cbz:
  case OpKind::Cbnz:
    return formatString("%s %s, %s", M.c_str(), r(I, 0).c_str(),
                        I.Sym.c_str());
  case OpKind::Blx:
  case OpKind::Bx:
    return formatString("%s %s", M.c_str(), r(I, 0).c_str());
  case OpKind::It:
    return formatString("%s %s", M.c_str(), condName(I.CondCode).c_str());
  case OpKind::Nop:
  case OpKind::Wfi:
  case OpKind::Bkpt:
    return M;
  }
  assert(false && "invalid opcode");
  return "";
}

std::string ramloc::printModule(const Module &M) {
  std::string Out;
  Out += formatString(".module %s\n", M.Name.c_str());
  Out += formatString(".entry %s\n", M.EntryFunction.c_str());

  for (const DataObject &D : M.Data) {
    switch (D.Sect) {
    case DataObject::Section::Bss:
      Out += formatString(".bss %s %u %u\n", D.Name.c_str(), D.Size,
                          D.Align);
      continue;
    case DataObject::Section::Rodata:
      Out += formatString(".rodata %s %u ", D.Name.c_str(), D.Align);
      break;
    case DataObject::Section::Data:
      Out += formatString(".data %s %u ", D.Name.c_str(), D.Align);
      break;
    }
    for (uint8_t B : D.Bytes)
      Out += formatString("%02x", B);
    Out += '\n';
  }

  for (const Function &F : M.Functions) {
    Out += formatString("\n.func %s%s\n", F.Name.c_str(),
                        F.Optimizable ? "" : " library");
    for (const BasicBlock &BB : F.Blocks) {
      Out += formatString(".block %s%s\n", BB.Label.c_str(),
                          BB.Home == MemKind::Ram ? " home=ram" : "");
      for (const Instr &I : BB.Instrs)
        Out += "    " + printInstr(I) + "\n";
    }
  }
  return Out;
}
