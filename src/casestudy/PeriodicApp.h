//===- casestudy/PeriodicApp.h - Section 7 sleep model ----------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The periodic-sensing application model of Section 7: a device wakes
/// every T seconds, runs the active region, then sleeps at quiescent
/// power PS. Equations 10-12:
///
///   E   = E0 + PS * (T - TA)                                   (Eq. 10)
///   E'  = ke*E0 + PS * (T - kt*TA)                              (Eq. 11)
///   Es  = E - E' = E0*(1 - ke) + PS*TA*(kt - 1)                 (Eq. 12)
///
/// The counter-intuitive headline: Es > 0 even when ke == 1, because a
/// slower active region spends less time in the (more expensive than
/// sleep) active state. Units: mJ, mW, seconds.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_CASESTUDY_PERIODICAPP_H
#define RAMLOC_CASESTUDY_PERIODICAPP_H

namespace ramloc {

/// Active-region profile: energy and duration of one activation.
struct ActiveProfile {
  double EnergyMilliJoules = 0.0; ///< E0 (or ke*E0 when optimized)
  double Seconds = 0.0;           ///< TA (or kt*TA)
};

/// The optimization's effect expressed as the paper's ke/kt factors.
struct OptimizationFactors {
  double Ke = 1.0; ///< energy ratio: E0'/E0 (expected <= 1)
  double Kt = 1.0; ///< time ratio: TA'/TA (expected >= 1)
};

/// ke/kt from measured base and optimized profiles.
OptimizationFactors factorsFrom(const ActiveProfile &Base,
                                const ActiveProfile &Opt);

/// Eq. 10/11: energy of one period of length \p PeriodSeconds.
/// \p PeriodSeconds must be >= Active.Seconds.
double periodEnergy(const ActiveProfile &Active, double SleepMilliWatts,
                    double PeriodSeconds);

/// Eq. 12: energy saved per period by applying the optimization.
double energySaved(const ActiveProfile &Base, const OptimizationFactors &K,
                   double SleepMilliWatts);

/// Optimized-over-base energy ratio for one period (Figure 9's y-axis,
/// as a fraction; multiply by 100 for percent).
double energyRatio(const ActiveProfile &Base, const ActiveProfile &Opt,
                   double SleepMilliWatts, double PeriodSeconds);

/// Battery-life extension as a fraction (0.32 == 32% longer): a battery
/// of fixed capacity powers E-per-period loads for time proportional to
/// 1/E.
double batteryLifeExtension(const ActiveProfile &Base,
                            const ActiveProfile &Opt,
                            double SleepMilliWatts, double PeriodSeconds);

/// Figure 8's illustration: same active energy, longer active time,
/// lower total. All values from the paper's diagram.
struct Figure8Illustration {
  double UnoptActiveMw = 10.0;
  double UnoptActiveMs = 5.0;
  double OptActiveMw = 5.0;
  double OptActiveMs = 10.0;
  double SleepMw = 1.0;
  double PeriodMs = 15.0;

  /// 10mW*5ms + 1mW*10ms = 60 uJ.
  double unoptimizedMicroJoules() const;
  /// 5mW*10ms + 1mW*5ms = 55 uJ.
  double optimizedMicroJoules() const;
};

} // namespace ramloc

#endif // RAMLOC_CASESTUDY_PERIODICAPP_H
