//===- casestudy/PeriodicApp.cpp - Section 7 sleep model ------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "casestudy/PeriodicApp.h"

#include <cassert>

using namespace ramloc;

OptimizationFactors ramloc::factorsFrom(const ActiveProfile &Base,
                                        const ActiveProfile &Opt) {
  assert(Base.EnergyMilliJoules > 0 && Base.Seconds > 0 &&
         "base profile must be non-trivial");
  return {Opt.EnergyMilliJoules / Base.EnergyMilliJoules,
          Opt.Seconds / Base.Seconds};
}

double ramloc::periodEnergy(const ActiveProfile &Active,
                            double SleepMilliWatts, double PeriodSeconds) {
  assert(PeriodSeconds >= Active.Seconds &&
         "period shorter than the active region");
  return Active.EnergyMilliJoules +
         SleepMilliWatts * (PeriodSeconds - Active.Seconds);
}

double ramloc::energySaved(const ActiveProfile &Base,
                           const OptimizationFactors &K,
                           double SleepMilliWatts) {
  return Base.EnergyMilliJoules * (1.0 - K.Ke) +
         SleepMilliWatts * Base.Seconds * (K.Kt - 1.0);
}

double ramloc::energyRatio(const ActiveProfile &Base,
                           const ActiveProfile &Opt,
                           double SleepMilliWatts, double PeriodSeconds) {
  double E = periodEnergy(Base, SleepMilliWatts, PeriodSeconds);
  double EPrime = periodEnergy(Opt, SleepMilliWatts, PeriodSeconds);
  assert(E > 0 && "base period energy must be positive");
  return EPrime / E;
}

double ramloc::batteryLifeExtension(const ActiveProfile &Base,
                                    const ActiveProfile &Opt,
                                    double SleepMilliWatts,
                                    double PeriodSeconds) {
  double Ratio = energyRatio(Base, Opt, SleepMilliWatts, PeriodSeconds);
  assert(Ratio > 0 && "optimized energy must be positive");
  return 1.0 / Ratio - 1.0;
}

double Figure8Illustration::unoptimizedMicroJoules() const {
  return UnoptActiveMw * UnoptActiveMs +
         SleepMw * (PeriodMs - UnoptActiveMs);
}

double Figure8Illustration::optimizedMicroJoules() const {
  return OptActiveMw * OptActiveMs + SleepMw * (PeriodMs - OptActiveMs);
}
