//===- isa/Instr.cpp - machine instruction ---------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "isa/Instr.h"

#include <cassert>

using namespace ramloc;

const char *ramloc::opMnemonic(OpKind Kind) {
  switch (Kind) {
#define X(Name, Mnemonic, Class)                                             \
  case OpKind::Name:                                                         \
    return Mnemonic;
    RAMLOC_OPCODES(X)
#undef X
  }
  assert(false && "invalid opcode");
  return "";
}

InstrClass ramloc::opClass(OpKind Kind) {
  switch (Kind) {
#define X(Name, Mnemonic, Class)                                             \
  case OpKind::Name:                                                         \
    return InstrClass::Class;
    RAMLOC_OPCODES(X)
#undef X
  }
  assert(false && "invalid opcode");
  return InstrClass::Nop;
}

const char *ramloc::instrClassName(InstrClass Class) {
  switch (Class) {
  case InstrClass::Nop:
    return "nop";
  case InstrClass::Alu:
    return "alu";
  case InstrClass::Mul:
    return "mul";
  case InstrClass::Div:
    return "div";
  case InstrClass::Load:
    return "load";
  case InstrClass::Store:
    return "store";
  case InstrClass::Branch:
    return "branch";
  }
  assert(false && "invalid class");
  return "";
}

bool Instr::isTerminator() const {
  switch (Kind) {
  case OpKind::B:
  case OpKind::BCond:
  case OpKind::Cbz:
  case OpKind::Cbnz:
  case OpKind::Bx:
  case OpKind::Bkpt:
    return true;
  case OpKind::Pop:
    return isPopReturn();
  case OpKind::LdrLit:
    return isLongJump();
  default:
    return false;
  }
}

unsigned ramloc::regMaskCount(uint32_t Mask) {
  unsigned Count = 0;
  for (unsigned I = 0; I < 16; ++I)
    if (Mask & (1u << I))
      ++Count;
  return Count;
}

namespace {

Instr make(OpKind Kind, Reg R0In = R0, Reg R1In = R0, Reg R2In = R0,
           Reg R3In = R0, int32_t Imm = 0, std::string Sym = {}) {
  Instr I;
  I.Kind = Kind;
  I.Regs[0] = R0In;
  I.Regs[1] = R1In;
  I.Regs[2] = R2In;
  I.Regs[3] = R3In;
  I.Imm = Imm;
  I.Sym = std::move(Sym);
  return I;
}

} // namespace

namespace ramloc {
namespace build {

Instr movImm(Reg Rd, int32_t Imm) {
  assert(Imm >= 0 && Imm <= 0xFFFF && "mov imm out of range; use ldr =const");
  return make(OpKind::MovImm, Rd, R0, R0, R0, Imm);
}
Instr movReg(Reg Rd, Reg Rm) { return make(OpKind::MovReg, Rd, Rm); }
Instr mvn(Reg Rd, Reg Rm) { return make(OpKind::Mvn, Rd, Rm); }
Instr addImm(Reg Rd, Reg Rn, int32_t Imm) {
  assert(Imm >= 0 && Imm <= 4095 && "add imm out of range");
  return make(OpKind::AddImm, Rd, Rn, R0, R0, Imm);
}
Instr addReg(Reg Rd, Reg Rn, Reg Rm) {
  return make(OpKind::AddReg, Rd, Rn, Rm);
}
Instr subImm(Reg Rd, Reg Rn, int32_t Imm) {
  assert(Imm >= 0 && Imm <= 4095 && "sub imm out of range");
  return make(OpKind::SubImm, Rd, Rn, R0, R0, Imm);
}
Instr subReg(Reg Rd, Reg Rn, Reg Rm) {
  return make(OpKind::SubReg, Rd, Rn, Rm);
}
Instr rsb(Reg Rd, Reg Rn, int32_t Imm) {
  return make(OpKind::Rsb, Rd, Rn, R0, R0, Imm);
}
Instr adc(Reg Rd, Reg Rn, Reg Rm) { return make(OpKind::Adc, Rd, Rn, Rm); }
Instr sbc(Reg Rd, Reg Rn, Reg Rm) { return make(OpKind::Sbc, Rd, Rn, Rm); }
Instr mul(Reg Rd, Reg Rn, Reg Rm) { return make(OpKind::Mul, Rd, Rn, Rm); }
Instr mla(Reg Rd, Reg Rn, Reg Rm, Reg Ra) {
  return make(OpKind::Mla, Rd, Rn, Rm, Ra);
}
Instr udiv(Reg Rd, Reg Rn, Reg Rm) { return make(OpKind::Udiv, Rd, Rn, Rm); }
Instr sdiv(Reg Rd, Reg Rn, Reg Rm) { return make(OpKind::Sdiv, Rd, Rn, Rm); }
Instr andReg(Reg Rd, Reg Rn, Reg Rm) {
  return make(OpKind::AndReg, Rd, Rn, Rm);
}
Instr orrReg(Reg Rd, Reg Rn, Reg Rm) {
  return make(OpKind::OrrReg, Rd, Rn, Rm);
}
Instr eorReg(Reg Rd, Reg Rn, Reg Rm) {
  return make(OpKind::EorReg, Rd, Rn, Rm);
}
Instr bicReg(Reg Rd, Reg Rn, Reg Rm) {
  return make(OpKind::BicReg, Rd, Rn, Rm);
}
Instr andImm(Reg Rd, Reg Rn, int32_t Imm) {
  return make(OpKind::AndImm, Rd, Rn, R0, R0, Imm);
}
Instr orrImm(Reg Rd, Reg Rn, int32_t Imm) {
  return make(OpKind::OrrImm, Rd, Rn, R0, R0, Imm);
}
Instr eorImm(Reg Rd, Reg Rn, int32_t Imm) {
  return make(OpKind::EorImm, Rd, Rn, R0, R0, Imm);
}
Instr bicImm(Reg Rd, Reg Rn, int32_t Imm) {
  return make(OpKind::BicImm, Rd, Rn, R0, R0, Imm);
}
Instr lslImm(Reg Rd, Reg Rm, int32_t Sh) {
  assert(Sh >= 0 && Sh <= 31 && "shift out of range");
  return make(OpKind::LslImm, Rd, Rm, R0, R0, Sh);
}
Instr lsrImm(Reg Rd, Reg Rm, int32_t Sh) {
  assert(Sh >= 1 && Sh <= 32 && "shift out of range");
  return make(OpKind::LsrImm, Rd, Rm, R0, R0, Sh);
}
Instr asrImm(Reg Rd, Reg Rm, int32_t Sh) {
  assert(Sh >= 1 && Sh <= 32 && "shift out of range");
  return make(OpKind::AsrImm, Rd, Rm, R0, R0, Sh);
}
Instr lslReg(Reg Rd, Reg Rn, Reg Rm) {
  return make(OpKind::LslReg, Rd, Rn, Rm);
}
Instr lsrReg(Reg Rd, Reg Rn, Reg Rm) {
  return make(OpKind::LsrReg, Rd, Rn, Rm);
}
Instr asrReg(Reg Rd, Reg Rn, Reg Rm) {
  return make(OpKind::AsrReg, Rd, Rn, Rm);
}
Instr rorReg(Reg Rd, Reg Rn, Reg Rm) {
  return make(OpKind::RorReg, Rd, Rn, Rm);
}
Instr cmpImm(Reg Rn, int32_t Imm) {
  assert(Imm >= 0 && Imm <= 4095 && "cmp imm out of range");
  Instr I = make(OpKind::CmpImm, Rn, R0, R0, R0, Imm);
  I.SetsFlags = true;
  return I;
}
Instr cmpReg(Reg Rn, Reg Rm) {
  Instr I = make(OpKind::CmpReg, Rn, Rm);
  I.SetsFlags = true;
  return I;
}
Instr tst(Reg Rn, Reg Rm) {
  Instr I = make(OpKind::Tst, Rn, Rm);
  I.SetsFlags = true;
  return I;
}
Instr uxtb(Reg Rd, Reg Rm) { return make(OpKind::Uxtb, Rd, Rm); }
Instr uxth(Reg Rd, Reg Rm) { return make(OpKind::Uxth, Rd, Rm); }
Instr sxtb(Reg Rd, Reg Rm) { return make(OpKind::Sxtb, Rd, Rm); }
Instr sxth(Reg Rd, Reg Rm) { return make(OpKind::Sxth, Rd, Rm); }

Instr ldrImm(Reg Rt, Reg Rn, int32_t Off) {
  assert(Off >= 0 && Off <= 4095 && "ldr offset out of range");
  return make(OpKind::LdrImm, Rt, Rn, R0, R0, Off);
}
Instr ldrReg(Reg Rt, Reg Rn, Reg Rm) {
  return make(OpKind::LdrReg, Rt, Rn, Rm);
}
Instr strImm(Reg Rt, Reg Rn, int32_t Off) {
  assert(Off >= 0 && Off <= 4095 && "str offset out of range");
  return make(OpKind::StrImm, Rt, Rn, R0, R0, Off);
}
Instr strReg(Reg Rt, Reg Rn, Reg Rm) {
  return make(OpKind::StrReg, Rt, Rn, Rm);
}
Instr ldrbImm(Reg Rt, Reg Rn, int32_t Off) {
  assert(Off >= 0 && Off <= 4095 && "ldrb offset out of range");
  return make(OpKind::LdrbImm, Rt, Rn, R0, R0, Off);
}
Instr ldrbReg(Reg Rt, Reg Rn, Reg Rm) {
  return make(OpKind::LdrbReg, Rt, Rn, Rm);
}
Instr strbImm(Reg Rt, Reg Rn, int32_t Off) {
  assert(Off >= 0 && Off <= 4095 && "strb offset out of range");
  return make(OpKind::StrbImm, Rt, Rn, R0, R0, Off);
}
Instr strbReg(Reg Rt, Reg Rn, Reg Rm) {
  return make(OpKind::StrbReg, Rt, Rn, Rm);
}
Instr ldrhImm(Reg Rt, Reg Rn, int32_t Off) {
  assert(Off >= 0 && Off <= 4095 && (Off % 2) == 0 && "bad ldrh offset");
  return make(OpKind::LdrhImm, Rt, Rn, R0, R0, Off);
}
Instr strhImm(Reg Rt, Reg Rn, int32_t Off) {
  assert(Off >= 0 && Off <= 4095 && (Off % 2) == 0 && "bad strh offset");
  return make(OpKind::StrhImm, Rt, Rn, R0, R0, Off);
}

Instr ldrLitSym(Reg Rt, std::string Sym) {
  assert(!Sym.empty() && "literal symbol must be named");
  return make(OpKind::LdrLit, Rt, R0, R0, R0, 0, std::move(Sym));
}
Instr ldrLitConst(Reg Rt, int32_t Imm) {
  return make(OpKind::LdrLit, Rt, R0, R0, R0, Imm);
}

Instr push(uint32_t Mask) {
  assert(Mask != 0 && (Mask & 0xA000) == 0 && "push allows r0-r12 and lr");
  return make(OpKind::Push, R0, R0, R0, R0, static_cast<int32_t>(Mask));
}
Instr pop(uint32_t Mask) {
  assert(Mask != 0 && (Mask & 0x6000) == 0 && "pop allows r0-r12 and pc");
  return make(OpKind::Pop, R0, R0, R0, R0, static_cast<int32_t>(Mask));
}

Instr b(std::string Target) {
  return make(OpKind::B, R0, R0, R0, R0, 0, std::move(Target));
}
Instr bCond(Cond C, std::string Target) {
  assert(C != Cond::AL && "conditional branch needs a real condition");
  Instr I = make(OpKind::BCond, R0, R0, R0, R0, 0, std::move(Target));
  I.CondCode = C;
  return I;
}
Instr cbz(Reg Rn, std::string Target) {
  assert(isLowReg(Rn) && "cbz requires a low register");
  return make(OpKind::Cbz, Rn, R0, R0, R0, 0, std::move(Target));
}
Instr cbnz(Reg Rn, std::string Target) {
  assert(isLowReg(Rn) && "cbnz requires a low register");
  return make(OpKind::Cbnz, Rn, R0, R0, R0, 0, std::move(Target));
}
Instr bl(std::string Callee) {
  return make(OpKind::Bl, R0, R0, R0, R0, 0, std::move(Callee));
}
Instr blx(Reg Rm) { return make(OpKind::Blx, Rm); }
Instr bx(Reg Rm) { return make(OpKind::Bx, Rm); }

Instr it(Cond C) {
  assert(C != Cond::AL && "it needs a real condition");
  Instr I = make(OpKind::It, R0, R0, R0, R0, /*Imm=*/1);
  I.CondCode = C;
  return I;
}
Instr ite(Cond C) {
  assert(C != Cond::AL && "ite needs a real condition");
  Instr I = make(OpKind::It, R0, R0, R0, R0, /*Imm=*/2 | 4);
  I.CondCode = C;
  return I;
}

Instr nop() { return make(OpKind::Nop); }
Instr wfi() { return make(OpKind::Wfi); }
Instr bkpt() { return make(OpKind::Bkpt); }

Instr setS(Instr I) {
  I.SetsFlags = true;
  return I;
}
Instr withCond(Instr I, Cond C) {
  I.CondCode = C;
  return I;
}

} // namespace build
} // namespace ramloc
