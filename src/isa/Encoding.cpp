//===- isa/Encoding.cpp - instruction encoding sizes ------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "isa/Encoding.h"

#include <cassert>

using namespace ramloc;

static bool allLow(Reg A, Reg B) { return isLowReg(A) && isLowReg(B); }
static bool allLow(Reg A, Reg B, Reg C) {
  return isLowReg(A) && isLowReg(B) && isLowReg(C);
}

unsigned ramloc::encodingSizeBytes(const Instr &I) {
  const Reg Rd = I.Regs[0], Rn = I.Regs[1], Rm = I.Regs[2];
  switch (I.Kind) {
  case OpKind::MovImm:
    // mov rd, #imm8 (T1) vs movw (T3).
    return (isLowReg(Rd) && I.Imm >= 0 && I.Imm <= 255) ? 2 : 4;
  case OpKind::MovReg:
    return 2; // T1 mov works with high registers.
  case OpKind::Mvn:
  case OpKind::Uxtb:
  case OpKind::Uxth:
  case OpKind::Sxtb:
  case OpKind::Sxth:
    return allLow(Rd, Rn) ? 2 : 4;
  case OpKind::AddImm:
  case OpKind::SubImm:
    // add/sub rd, rn, #imm3 or rd, #imm8 (rd == rn); sp-relative T2.
    if (Rd == SP && Rn == SP && I.Imm % 4 == 0 && I.Imm <= 508)
      return 2;
    if (allLow(Rd, Rn) && (I.Imm <= 7 || (Rd == Rn && I.Imm <= 255)))
      return 2;
    return 4;
  case OpKind::AddReg:
    return 2; // T2 add rd, rm handles high registers.
  case OpKind::SubReg:
    return allLow(Rd, Rn, Rm) ? 2 : 4;
  case OpKind::Rsb:
    return (allLow(Rd, Rn) && I.Imm == 0) ? 2 : 4;
  case OpKind::Adc:
  case OpKind::Sbc:
  case OpKind::AndReg:
  case OpKind::OrrReg:
  case OpKind::EorReg:
  case OpKind::BicReg:
  case OpKind::LslReg:
  case OpKind::LsrReg:
  case OpKind::AsrReg:
  case OpKind::RorReg:
    // Two-operand T1 forms require rd == rn and low registers.
    return (Rd == Rn && allLow(Rd, Rm)) ? 2 : 4;
  case OpKind::Mul:
    return ((Rd == Rn || Rd == Rm) && allLow(Rd, Rn, Rm)) ? 2 : 4;
  case OpKind::Mla:
  case OpKind::Udiv:
  case OpKind::Sdiv:
  case OpKind::AndImm:
  case OpKind::OrrImm:
  case OpKind::EorImm:
  case OpKind::BicImm:
    return 4;
  case OpKind::LslImm:
  case OpKind::LsrImm:
  case OpKind::AsrImm:
    return allLow(Rd, Rn) ? 2 : 4;
  case OpKind::CmpImm:
    return (isLowReg(Rd) && I.Imm <= 255) ? 2 : 4;
  case OpKind::CmpReg:
    return 2; // T2 cmp handles high registers.
  case OpKind::Tst:
    return allLow(Rd, Rn) ? 2 : 4;
  case OpKind::LdrImm:
  case OpKind::StrImm:
    if (Rn == SP && isLowReg(Rd) && I.Imm % 4 == 0 && I.Imm <= 1020)
      return 2;
    if (allLow(Rd, Rn) && I.Imm % 4 == 0 && I.Imm <= 124)
      return 2;
    return 4;
  case OpKind::LdrbImm:
  case OpKind::StrbImm:
    return (allLow(Rd, Rn) && I.Imm <= 31) ? 2 : 4;
  case OpKind::LdrhImm:
  case OpKind::StrhImm:
    return (allLow(Rd, Rn) && I.Imm <= 62) ? 2 : 4;
  case OpKind::LdrReg:
  case OpKind::StrReg:
  case OpKind::LdrbReg:
  case OpKind::StrbReg:
    return allLow(Rd, Rn, Rm) ? 2 : 4;
  case OpKind::LdrLit:
    // ldr rt, [pc, #imm8] is 16-bit for low rt; `ldr pc, =x` and high
    // registers need the 32-bit LDR.W encoding (Figure 4: 4 bytes).
    return isLowReg(Rd) ? 2 : 4;
  case OpKind::Push:
  case OpKind::Pop: {
    // T1 push/pop covers r0-r7 + lr/pc; anything else needs 32 bits.
    uint32_t Mask = static_cast<uint32_t>(I.Imm);
    uint32_t HighOnly = Mask & 0x1F00; // r8-r12
    return HighOnly == 0 ? 2 : 4;
  }
  case OpKind::B:
  case OpKind::BCond:
    return 2; // Near branches; the instrumenter handles long ranges.
  case OpKind::Cbz:
  case OpKind::Cbnz:
    return 2;
  case OpKind::Bl:
    return 4;
  case OpKind::Blx:
  case OpKind::Bx:
    return 2;
  case OpKind::It:
  case OpKind::Nop:
  case OpKind::Wfi:
  case OpKind::Bkpt:
    return 2;
  }
  assert(false && "invalid opcode");
  return 4;
}
