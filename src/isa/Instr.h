//===- isa/Instr.h - machine instruction ------------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat machine-instruction record plus factory helpers. Operands are
/// stored positionally in \c Regs / \c Imm / \c Sym; the meaning per opcode
/// is documented on the factory functions, which are the preferred way to
/// construct instructions.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_ISA_INSTR_H
#define RAMLOC_ISA_INSTR_H

#include "isa/Condition.h"
#include "isa/OpKind.h"
#include "isa/Register.h"

#include <cstdint>
#include <string>

namespace ramloc {

/// A single machine instruction.
///
/// Operand conventions:
///  - data ops:        Regs[0]=rd, Regs[1]=rn, Regs[2]=rm, Regs[3]=ra (mla)
///  - compares:        Regs[0]=rn, Regs[1]=rm / Imm
///  - loads/stores:    Regs[0]=rt, Regs[1]=rn, Regs[2]=rm or Imm offset
///  - ldr rt, =X:      Regs[0]=rt; Sym names a symbol, else Imm constant
///  - push/pop:        Imm is a register bitmask (bit 14 = lr, bit 15 = pc)
///  - branches:        Sym is the target label / callee name; bx/blx use
///                     Regs[0]
///  - it:              Imm encodes the pattern length (1 or 2) in bits 0-1
///                     and then-else mask in bit 2 (0 = IT, 1 = ITE);
///                     CondCode holds the condition
struct Instr {
  OpKind Kind = OpKind::Nop;
  /// Execution condition. AL unless the instruction sits in an IT block or
  /// is a conditional branch.
  Cond CondCode = Cond::AL;
  /// True if the instruction updates NZCV (the "s" suffix).
  bool SetsFlags = false;
  Reg Regs[4] = {R0, R0, R0, R0};
  int32_t Imm = 0;
  /// Symbol operand: branch target label, callee, or data symbol.
  std::string Sym;

  bool operator==(const Instr &O) const = default;

  /// True for instructions that can end a basic block (b, conditional b,
  /// cbz/cbnz, bx, pop {...pc}, ldr pc, bkpt). wfi is NOT a terminator:
  /// it sleeps and falls through.
  bool isTerminator() const;

  /// True for bl / blx call instructions.
  bool isCall() const { return Kind == OpKind::Bl || Kind == OpKind::Blx; }

  /// True when this is `ldr pc, =sym`, the indirect long-range jump the
  /// instrumenter emits (Figure 4).
  bool isLongJump() const {
    return Kind == OpKind::LdrLit && Regs[0] == PC;
  }

  /// True for pop {..., pc}.
  bool isPopReturn() const {
    return Kind == OpKind::Pop && (Imm & (1 << PC)) != 0;
  }
};

/// Number of registers in a push/pop mask.
unsigned regMaskCount(uint32_t Mask);

// Factory helpers. These assert operand validity so malformed instructions
// fail at construction, not deep inside the simulator.
namespace build {

Instr movImm(Reg Rd, int32_t Imm);
Instr movReg(Reg Rd, Reg Rm);
Instr mvn(Reg Rd, Reg Rm);
Instr addImm(Reg Rd, Reg Rn, int32_t Imm);
Instr addReg(Reg Rd, Reg Rn, Reg Rm);
Instr subImm(Reg Rd, Reg Rn, int32_t Imm);
Instr subReg(Reg Rd, Reg Rn, Reg Rm);
Instr rsb(Reg Rd, Reg Rn, int32_t Imm);
Instr adc(Reg Rd, Reg Rn, Reg Rm);
Instr sbc(Reg Rd, Reg Rn, Reg Rm);
Instr mul(Reg Rd, Reg Rn, Reg Rm);
Instr mla(Reg Rd, Reg Rn, Reg Rm, Reg Ra);
Instr udiv(Reg Rd, Reg Rn, Reg Rm);
Instr sdiv(Reg Rd, Reg Rn, Reg Rm);
Instr andReg(Reg Rd, Reg Rn, Reg Rm);
Instr orrReg(Reg Rd, Reg Rn, Reg Rm);
Instr eorReg(Reg Rd, Reg Rn, Reg Rm);
Instr bicReg(Reg Rd, Reg Rn, Reg Rm);
Instr andImm(Reg Rd, Reg Rn, int32_t Imm);
Instr orrImm(Reg Rd, Reg Rn, int32_t Imm);
Instr eorImm(Reg Rd, Reg Rn, int32_t Imm);
Instr bicImm(Reg Rd, Reg Rn, int32_t Imm);
Instr lslImm(Reg Rd, Reg Rm, int32_t Sh);
Instr lsrImm(Reg Rd, Reg Rm, int32_t Sh);
Instr asrImm(Reg Rd, Reg Rm, int32_t Sh);
Instr lslReg(Reg Rd, Reg Rn, Reg Rm);
Instr lsrReg(Reg Rd, Reg Rn, Reg Rm);
Instr asrReg(Reg Rd, Reg Rn, Reg Rm);
Instr rorReg(Reg Rd, Reg Rn, Reg Rm);
Instr cmpImm(Reg Rn, int32_t Imm);
Instr cmpReg(Reg Rn, Reg Rm);
Instr tst(Reg Rn, Reg Rm);
Instr uxtb(Reg Rd, Reg Rm);
Instr uxth(Reg Rd, Reg Rm);
Instr sxtb(Reg Rd, Reg Rm);
Instr sxth(Reg Rd, Reg Rm);

Instr ldrImm(Reg Rt, Reg Rn, int32_t Off);
Instr ldrReg(Reg Rt, Reg Rn, Reg Rm);
Instr strImm(Reg Rt, Reg Rn, int32_t Off);
Instr strReg(Reg Rt, Reg Rn, Reg Rm);
Instr ldrbImm(Reg Rt, Reg Rn, int32_t Off);
Instr ldrbReg(Reg Rt, Reg Rn, Reg Rm);
Instr strbImm(Reg Rt, Reg Rn, int32_t Off);
Instr strbReg(Reg Rt, Reg Rn, Reg Rm);
Instr ldrhImm(Reg Rt, Reg Rn, int32_t Off);
Instr strhImm(Reg Rt, Reg Rn, int32_t Off);

/// ldr Rt, =Sym — loads the address of \p Sym via the literal pool.
Instr ldrLitSym(Reg Rt, std::string Sym);
/// ldr Rt, =Imm — loads a 32-bit constant via the literal pool.
Instr ldrLitConst(Reg Rt, int32_t Imm);

Instr push(uint32_t Mask);
Instr pop(uint32_t Mask);

Instr b(std::string Target);
Instr bCond(Cond C, std::string Target);
Instr cbz(Reg Rn, std::string Target);
Instr cbnz(Reg Rn, std::string Target);
Instr bl(std::string Callee);
Instr blx(Reg Rm);
Instr bx(Reg Rm);

/// it/ite with one or two covered instructions.
Instr it(Cond C);
Instr ite(Cond C);

Instr nop();
Instr wfi();
Instr bkpt();

/// Returns a copy of \p I marked as setting flags (the "s" suffix).
Instr setS(Instr I);
/// Returns a copy of \p I predicated on \p C (for use inside IT blocks).
Instr withCond(Instr I, Cond C);

} // namespace build

} // namespace ramloc

#endif // RAMLOC_ISA_INSTR_H
