//===- isa/Register.h - register file names ---------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register numbering for the Thumb-2-like target. r0-r12 are general
/// purpose, r13 = sp, r14 = lr, r15 = pc. By project convention r7 is
/// reserved by the code generator as the instrumentation scratch register
/// (the paper's Figure 4 uses r5 and is silent on liveness; reserving a low
/// register keeps the rewritten sequences at the published 16-bit sizes).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_ISA_REGISTER_H
#define RAMLOC_ISA_REGISTER_H

#include <cassert>
#include <cstdint>
#include <string>

namespace ramloc {

/// A machine register, 0..15.
enum Reg : uint8_t {
  R0 = 0,
  R1,
  R2,
  R3,
  R4,
  R5,
  R6,
  R7,
  R8,
  R9,
  R10,
  R11,
  R12,
  SP = 13,
  LR = 14,
  PC = 15,
  NumRegs = 16,
};

/// The register the instrumenter may clobber at block boundaries. The code
/// generator never allocates it.
inline constexpr Reg ScratchReg = R7;

/// True for r0-r7, the registers reachable by most 16-bit encodings.
inline bool isLowReg(Reg R) { return R < 8; }

/// Returns the canonical assembly name ("r0".."r12", "sp", "lr", "pc").
std::string regName(Reg R);

/// Parses a register name; returns NumRegs on failure. Accepts "rN", "sp",
/// "lr", "pc", "ip" (= r12), "fp" (= r11).
Reg parseRegName(const std::string &Name);

} // namespace ramloc

#endif // RAMLOC_ISA_REGISTER_H
