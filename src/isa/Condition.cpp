//===- isa/Condition.cpp - condition codes ---------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "isa/Condition.h"

#include <cassert>

using namespace ramloc;

Cond ramloc::invertCond(Cond C) {
  switch (C) {
  case Cond::EQ:
    return Cond::NE;
  case Cond::NE:
    return Cond::EQ;
  case Cond::CS:
    return Cond::CC;
  case Cond::CC:
    return Cond::CS;
  case Cond::MI:
    return Cond::PL;
  case Cond::PL:
    return Cond::MI;
  case Cond::VS:
    return Cond::VC;
  case Cond::VC:
    return Cond::VS;
  case Cond::HI:
    return Cond::LS;
  case Cond::LS:
    return Cond::HI;
  case Cond::GE:
    return Cond::LT;
  case Cond::LT:
    return Cond::GE;
  case Cond::GT:
    return Cond::LE;
  case Cond::LE:
    return Cond::GT;
  case Cond::AL:
    break;
  }
  assert(false && "AL has no inverse");
  return Cond::AL;
}

bool ramloc::condPasses(Cond C, const Flags &F) {
  switch (C) {
  case Cond::EQ:
    return F.Z;
  case Cond::NE:
    return !F.Z;
  case Cond::CS:
    return F.C;
  case Cond::CC:
    return !F.C;
  case Cond::MI:
    return F.N;
  case Cond::PL:
    return !F.N;
  case Cond::VS:
    return F.V;
  case Cond::VC:
    return !F.V;
  case Cond::HI:
    return F.C && !F.Z;
  case Cond::LS:
    return !F.C || F.Z;
  case Cond::GE:
    return F.N == F.V;
  case Cond::LT:
    return F.N != F.V;
  case Cond::GT:
    return !F.Z && F.N == F.V;
  case Cond::LE:
    return F.Z || F.N != F.V;
  case Cond::AL:
    return true;
  }
  assert(false && "invalid condition");
  return false;
}

std::string ramloc::condName(Cond C) {
  switch (C) {
  case Cond::EQ:
    return "eq";
  case Cond::NE:
    return "ne";
  case Cond::CS:
    return "cs";
  case Cond::CC:
    return "cc";
  case Cond::MI:
    return "mi";
  case Cond::PL:
    return "pl";
  case Cond::VS:
    return "vs";
  case Cond::VC:
    return "vc";
  case Cond::HI:
    return "hi";
  case Cond::LS:
    return "ls";
  case Cond::GE:
    return "ge";
  case Cond::LT:
    return "lt";
  case Cond::GT:
    return "gt";
  case Cond::LE:
    return "le";
  case Cond::AL:
    return "";
  }
  assert(false && "invalid condition");
  return "";
}

bool ramloc::parseCondName(const std::string &Name, Cond &Out) {
  static const struct {
    const char *Text;
    Cond C;
  } TableEntries[] = {
      {"eq", Cond::EQ}, {"ne", Cond::NE}, {"cs", Cond::CS},
      {"cc", Cond::CC}, {"mi", Cond::MI}, {"pl", Cond::PL},
      {"vs", Cond::VS}, {"vc", Cond::VC}, {"hi", Cond::HI},
      {"ls", Cond::LS}, {"ge", Cond::GE}, {"lt", Cond::LT},
      {"gt", Cond::GT}, {"le", Cond::LE}, {"hs", Cond::CS},
      {"lo", Cond::CC},
  };
  if (Name.empty()) {
    Out = Cond::AL;
    return true;
  }
  for (const auto &Entry : TableEntries) {
    if (Name == Entry.Text) {
      Out = Entry.C;
      return true;
    }
  }
  return false;
}
