//===- isa/Condition.h - condition codes ------------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ARM condition codes, NZCV flag evaluation, and condition inversion (used
/// by the instrumenter when it rewrites conditional branches into
/// it/ldr/ldr/bx sequences).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_ISA_CONDITION_H
#define RAMLOC_ISA_CONDITION_H

#include <cstdint>
#include <string>

namespace ramloc {

/// ARM condition codes. AL means unconditional.
enum class Cond : uint8_t {
  EQ,
  NE,
  CS,
  CC,
  MI,
  PL,
  VS,
  VC,
  HI,
  LS,
  GE,
  LT,
  GT,
  LE,
  AL,
};

/// Processor condition flags.
struct Flags {
  bool N = false;
  bool Z = false;
  bool C = false;
  bool V = false;

  bool operator==(const Flags &O) const = default;
};

/// Returns the logical inverse, e.g. EQ -> NE, GT -> LE. AL has no inverse
/// and asserts.
Cond invertCond(Cond C);

/// Evaluates \p C against \p F per the ARM ARM condition table.
bool condPasses(Cond C, const Flags &F);

/// Returns the lower-case suffix, e.g. "eq"; empty string for AL.
std::string condName(Cond C);

/// Parses a condition suffix; returns AL for the empty string and
/// Cond::AL + false via the bool for unknown text.
bool parseCondName(const std::string &Name, Cond &Out);

} // namespace ramloc

#endif // RAMLOC_ISA_CONDITION_H
