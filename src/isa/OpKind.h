//===- isa/OpKind.h - opcode definitions ------------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opcode set of the Thumb-2-like target: the subset of the Cortex-M3
/// Thumb-2 instruction set the BEEBS-style workloads and the Figure 4
/// instrumentation sequences need. Each opcode carries an InstrClass used
/// by the power model (Figure 1 groups power by instruction type).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_ISA_OPKIND_H
#define RAMLOC_ISA_OPKIND_H

#include <cstdint>
#include <string>

namespace ramloc {

// X-macro: RAMLOC_OPCODE(enumerator, mnemonic, instr-class)
#define RAMLOC_OPCODES(X)                                                    \
  /* --- data processing ------------------------------------------------ */ \
  X(MovImm, "mov", Alu)                                                      \
  X(MovReg, "mov", Alu)                                                      \
  X(Mvn, "mvn", Alu)                                                         \
  X(AddImm, "add", Alu)                                                      \
  X(AddReg, "add", Alu)                                                      \
  X(SubImm, "sub", Alu)                                                      \
  X(SubReg, "sub", Alu)                                                      \
  X(Rsb, "rsb", Alu)                                                         \
  X(Adc, "adc", Alu)                                                         \
  X(Sbc, "sbc", Alu)                                                         \
  X(Mul, "mul", Mul)                                                         \
  X(Mla, "mla", Mul)                                                         \
  X(Udiv, "udiv", Div)                                                       \
  X(Sdiv, "sdiv", Div)                                                       \
  X(AndReg, "and", Alu)                                                      \
  X(OrrReg, "orr", Alu)                                                      \
  X(EorReg, "eor", Alu)                                                      \
  X(BicReg, "bic", Alu)                                                      \
  X(AndImm, "and", Alu)                                                      \
  X(OrrImm, "orr", Alu)                                                      \
  X(EorImm, "eor", Alu)                                                      \
  X(BicImm, "bic", Alu)                                                      \
  X(LslImm, "lsl", Alu)                                                      \
  X(LsrImm, "lsr", Alu)                                                      \
  X(AsrImm, "asr", Alu)                                                      \
  X(LslReg, "lsl", Alu)                                                      \
  X(LsrReg, "lsr", Alu)                                                      \
  X(AsrReg, "asr", Alu)                                                      \
  X(RorReg, "ror", Alu)                                                      \
  X(CmpImm, "cmp", Alu)                                                      \
  X(CmpReg, "cmp", Alu)                                                      \
  X(Tst, "tst", Alu)                                                         \
  X(Uxtb, "uxtb", Alu)                                                       \
  X(Uxth, "uxth", Alu)                                                       \
  X(Sxtb, "sxtb", Alu)                                                       \
  X(Sxth, "sxth", Alu)                                                       \
  /* --- memory ---------------------------------------------------------- */ \
  X(LdrImm, "ldr", Load)                                                     \
  X(LdrReg, "ldr", Load)                                                     \
  X(StrImm, "str", Store)                                                    \
  X(StrReg, "str", Store)                                                    \
  X(LdrbImm, "ldrb", Load)                                                   \
  X(LdrbReg, "ldrb", Load)                                                   \
  X(StrbImm, "strb", Store)                                                  \
  X(StrbReg, "strb", Store)                                                  \
  X(LdrhImm, "ldrh", Load)                                                   \
  X(StrhImm, "strh", Store)                                                  \
  X(LdrLit, "ldr", Load)                                                     \
  X(Push, "push", Store)                                                     \
  X(Pop, "pop", Load)                                                        \
  /* --- control flow ---------------------------------------------------- */ \
  X(B, "b", Branch)                                                          \
  X(BCond, "b", Branch)                                                      \
  X(Cbz, "cbz", Branch)                                                      \
  X(Cbnz, "cbnz", Branch)                                                    \
  X(Bl, "bl", Branch)                                                        \
  X(Blx, "blx", Branch)                                                      \
  X(Bx, "bx", Branch)                                                        \
  X(It, "it", Nop)                                                           \
  /* --- misc ------------------------------------------------------------ */ \
  X(Nop, "nop", Nop)                                                         \
  X(Wfi, "wfi", Nop)                                                         \
  X(Bkpt, "bkpt", Nop)

/// Opcode enumeration.
enum class OpKind : uint8_t {
#define X(Name, Mnemonic, Class) Name,
  RAMLOC_OPCODES(X)
#undef X
};

/// Instruction classes as used by the power model: Figure 1 of the paper
/// measures distinct average power for stores, loads, ALU ops, nops and
/// branches, out of both flash and RAM.
enum class InstrClass : uint8_t {
  Nop,
  Alu,
  Mul,
  Div,
  Load,
  Store,
  Branch,
};

/// Returns the assembly mnemonic (without condition or width suffixes).
const char *opMnemonic(OpKind Kind);

/// Returns the power-model class of the opcode.
InstrClass opClass(OpKind Kind);

/// Human-readable name for an instruction class.
const char *instrClassName(InstrClass Class);

/// The number of opcode enumerators (for table sizing).
constexpr unsigned NumOpKinds = 0
#define X(Name, Mnemonic, Class) +1
    RAMLOC_OPCODES(X)
#undef X
    ;

} // namespace ramloc

#endif // RAMLOC_ISA_OPKIND_H
