//===- isa/Timing.h - Cortex-M3-style cycle model ---------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-instruction cycle counts for a Cortex-M3-class core at 24 MHz with
/// zero-wait-state flash. The defaults are chosen so the instrumentation
/// sequences of the paper's Figure 4 cost exactly the published cycle
/// counts: `ldr pc, =x` = 4, `it; ldrcc; ldrcc; bx` = 7, with a leading
/// `cmp` = 8. The paper's Section 4 notes the model is based on cycles, not
/// instruction counts, because the M3 prefetches and speculates branch
/// targets; the simulator consumes the same table, so model and "hardware"
/// agree by construction (as they should: the paper calibrated its model
/// from its hardware).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_ISA_TIMING_H
#define RAMLOC_ISA_TIMING_H

#include "isa/Instr.h"

namespace ramloc {

/// Cycle-cost parameters. All values are in CPU cycles.
struct TimingModel {
  unsigned AluCycles = 1;
  unsigned MulCycles = 1;
  unsigned MlaCycles = 2;
  unsigned DivCycles = 6;
  unsigned LoadCycles = 2;
  unsigned StoreCycles = 2;
  /// Pipeline refill penalty added to any taken control transfer.
  unsigned BranchRefillCycles = 2;
  /// Base cycle of a branch instruction (issue slot).
  unsigned BranchIssueCycles = 1;
  unsigned CallCycles = 4;     // bl
  unsigned CallRegCycles = 3;  // blx rm
  unsigned BxCycles = 3;       // bx rm (includes refill)
  unsigned ItCycles = 1;
  unsigned SkippedCycles = 1; // condition-failed instruction in an IT block
  unsigned NopCycles = 1;
  /// Extra stall when a load executed from RAM also reads RAM: the single
  /// RAM port serves both fetch and data (the paper's Lb / Or(b) term).
  unsigned RamContentionStall = 1;
  /// Flash access wait states: extra cycles added to every instruction
  /// fetched from flash. The reference STM32F100 at 24 MHz is zero-wait-
  /// state; faster-clocked or prefetch-disabled parts pay 1-2 cycles per
  /// flash fetch, which widens the flash/RAM gap the optimization
  /// exploits (RAM fetches are always single-cycle). Applied by the
  /// simulator per fetch and mirrored in the model's Cb/Lb extraction.
  unsigned FlashWaitStates = 0;

  /// Cycles for \p I. \p Taken selects the taken/not-taken cost for
  /// conditional control flow; unconditional control flow ignores it.
  /// Contention stalls are *not* included (the simulator adds them based on
  /// actual fetch/data memories; the model adds Lb estimates).
  unsigned cycles(const Instr &I, bool Taken) const;

  /// Cycles for a conditional branch weighted by taken probability.
  double expectedBranchCycles(const Instr &I, double TakenProb) const;
};

} // namespace ramloc

#endif // RAMLOC_ISA_TIMING_H
