//===- isa/Timing.cpp - Cortex-M3-style cycle model -------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "isa/Timing.h"

#include <cassert>

using namespace ramloc;

unsigned TimingModel::cycles(const Instr &I, bool Taken) const {
  switch (I.Kind) {
  case OpKind::Mul:
    return MulCycles;
  case OpKind::Mla:
    return MlaCycles;
  case OpKind::Udiv:
  case OpKind::Sdiv:
    return DivCycles;
  case OpKind::LdrImm:
  case OpKind::LdrReg:
  case OpKind::LdrbImm:
  case OpKind::LdrbReg:
  case OpKind::LdrhImm:
    return LoadCycles;
  case OpKind::LdrLit:
    // `ldr pc, =x` pays the load plus a pipeline refill: 2 + 2 = 4, the
    // Figure 4 cost of the rewritten unconditional branch.
    return I.isLongJump() ? LoadCycles + BranchRefillCycles : LoadCycles;
  case OpKind::StrImm:
  case OpKind::StrReg:
  case OpKind::StrbImm:
  case OpKind::StrbReg:
  case OpKind::StrhImm:
    return StoreCycles;
  case OpKind::Push:
    return 1 + regMaskCount(static_cast<uint32_t>(I.Imm));
  case OpKind::Pop: {
    unsigned Base = 1 + regMaskCount(static_cast<uint32_t>(I.Imm));
    return I.isPopReturn() ? Base + BranchRefillCycles : Base;
  }
  case OpKind::B:
    return BranchIssueCycles + BranchRefillCycles;
  case OpKind::BCond:
  case OpKind::Cbz:
  case OpKind::Cbnz:
    return Taken ? BranchIssueCycles + BranchRefillCycles
                 : BranchIssueCycles;
  case OpKind::Bl:
    return CallCycles;
  case OpKind::Blx:
    return CallRegCycles;
  case OpKind::Bx:
    return BxCycles;
  case OpKind::It:
    return ItCycles;
  case OpKind::Nop:
  case OpKind::Wfi:
  case OpKind::Bkpt:
    return NopCycles;
  default:
    return AluCycles;
  }
}

double TimingModel::expectedBranchCycles(const Instr &I,
                                         double TakenProb) const {
  assert(TakenProb >= 0.0 && TakenProb <= 1.0 && "probability range");
  return TakenProb * cycles(I, /*Taken=*/true) +
         (1.0 - TakenProb) * cycles(I, /*Taken=*/false);
}
