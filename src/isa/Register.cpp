//===- isa/Register.cpp - register file names ------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "isa/Register.h"

#include "support/Format.h"

using namespace ramloc;

std::string ramloc::regName(Reg R) {
  switch (R) {
  case SP:
    return "sp";
  case LR:
    return "lr";
  case PC:
    return "pc";
  default:
    assert(R < NumRegs && "invalid register");
    return formatString("r%u", static_cast<unsigned>(R));
  }
}

Reg ramloc::parseRegName(const std::string &Name) {
  if (Name == "sp")
    return SP;
  if (Name == "lr")
    return LR;
  if (Name == "pc")
    return PC;
  if (Name == "ip")
    return R12;
  if (Name == "fp")
    return R11;
  if (Name.size() >= 2 && Name.size() <= 3 && Name[0] == 'r') {
    unsigned N = 0;
    for (unsigned I = 1, E = Name.size(); I != E; ++I) {
      if (Name[I] < '0' || Name[I] > '9')
        return NumRegs;
      N = N * 10 + static_cast<unsigned>(Name[I] - '0');
    }
    if (N < 16)
      return static_cast<Reg>(N);
  }
  return NumRegs;
}
