//===- isa/Encoding.h - instruction encoding sizes --------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 16-bit vs 32-bit encoding-size rules mirroring the Thumb-2 encodings the
/// Cortex-M3 would pick. Sizes feed the model parameter Sb (block size in
/// bytes) and the linker's address assignment, and make the Figure 4
/// instrumentation byte counts exact (4/8/10 bytes).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_ISA_ENCODING_H
#define RAMLOC_ISA_ENCODING_H

#include "isa/Instr.h"

namespace ramloc {

/// Returns the encoding size of \p I in bytes (2 or 4).
unsigned encodingSizeBytes(const Instr &I);

} // namespace ramloc

#endif // RAMLOC_ISA_ENCODING_H
