//===- sim/Predecode.cpp - pre-resolved interpreter dispatch -------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/Predecode.h"

#include "support/Trace.h"

using namespace ramloc;

DecodedImage ramloc::predecodeImage(const Image &Img,
                                    const TimingModel &Timing) {
  TraceSpan Span("predecode", "sim");
  DecodedImage Dec;
  Dec.reserve(Img.Instrs.size());
  for (const PlacedInstr &P : Img.Instrs) {
    DecodedInstr D;
    D.P = &P;
    D.NextAddr = P.Addr + P.Size;
    D.TargetAddr = P.TargetAddr;
    MemKind Fetch = Img.Map.regionOf(P.Addr);
    D.Fetch = static_cast<uint8_t>(Fetch);
    D.Class = static_cast<uint8_t>(opClass(P.I.Kind));
    D.Kind = P.I.Kind;
    D.CondCode = P.I.CondCode;
    D.CheckCond = P.I.CondCode != Cond::AL && P.I.Kind != OpKind::BCond;
    D.IsBlockHead = P.IsBlockHead;
    D.FuncIdx = P.FuncIdx;
    D.BlockIdx = P.BlockIdx;
    D.FlashWait = Fetch == MemKind::Flash ? Timing.FlashWaitStates : 0;
    D.ContentionStall =
        Fetch == MemKind::Ram ? Timing.RamContentionStall : 0;
    D.CyclesNotTaken = Timing.cycles(P.I, /*Taken=*/false) + D.FlashWait;
    D.CyclesTaken = Timing.cycles(P.I, /*Taken=*/true) + D.FlashWait;
    D.CyclesSkipped = Timing.SkippedCycles + D.FlashWait;
    Dec.push_back(D);
  }
  return Dec;
}
