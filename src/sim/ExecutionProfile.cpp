//===- sim/ExecutionProfile.cpp - device-independent run profile ---------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/ExecutionProfile.h"

#include "support/Format.h"
#include "support/Json.h"

using namespace ramloc;

std::string ramloc::executionKey(const Image &Img, uint32_t Arg0,
                                 uint32_t Arg1, uint32_t Arg2) {
  return formatString(
      "%016llx:%08x:%08x:%08x",
      static_cast<unsigned long long>(Img.fingerprint()), Arg0, Arg1,
      Arg2);
}

RunStats ramloc::runImageProfiled(const Image &Img, const SimOptions &Opts,
                                  ExecutionProfile &Profile, uint32_t Arg0,
                                  uint32_t Arg1, uint32_t Arg2) {
  Simulator Sim(Img, Opts);
  Sim.collectProfile(Profile);
  Sim.state().R[R0] = Arg0;
  Sim.state().R[R1] = Arg1;
  Sim.state().R[R2] = Arg2;
  Sim.run();
  RunStats Stats = Sim.takeStats();
  Profile.BlockCounts = Stats.BlockCounts;
  Profile.Instructions = Stats.Instructions;
  Profile.SleepEvents = Stats.SleepEvents;
  Profile.ExitCode = Stats.ExitCode;
  Profile.Valid = Stats.ok() && !Stats.HitCycleLimit;
  return Stats;
}

bool ramloc::recostProfile(const Image &Img,
                           const ExecutionProfile &Profile,
                           const SimOptions &Opts, RunStats &Out) {
  // Sample boundaries depend on per-step cycle costs: timing-dependent
  // output that only a full simulation can produce.
  if (!Profile.Valid || Opts.SampleIntervalCycles != 0)
    return false;
  if (Profile.Instrs.size() != Img.Instrs.size())
    return false;
  if (Profile.BlockCounts.size() != Img.BlockAddr.size())
    return false;
  for (unsigned F = 0, NF = Img.BlockAddr.size(); F != NF; ++F)
    if (Profile.BlockCounts[F].size() != Img.BlockAddr[F].size())
      return false;

  const TimingModel &T = Opts.Timing;
  RunStats RS;
  RS.BlockCounts = Profile.BlockCounts;
  RS.Instructions = Profile.Instructions;
  RS.SleepEvents = Profile.SleepEvents;
  RS.ExitCode = Profile.ExitCode;

  if (Opts.IncludeStartupCopy && Img.StartupCopyCycles > 0) {
    RS.Cycles += Img.StartupCopyCycles;
    RS.ClassCycles[0][static_cast<unsigned>(InstrClass::Load)] +=
        Img.StartupCopyCycles;
    RS.LoadCycles[0][0] += Img.StartupCopyCycles;
  }

  for (size_t I = 0, N = Img.Instrs.size(); I != N; ++I) {
    const InstrCounts &C = Profile.Instrs[I];
    if (C.Exec == 0 && C.Skipped == 0)
      continue;
    const PlacedInstr &P = Img.Instrs[I];
    unsigned F = static_cast<unsigned>(Img.Map.regionOf(P.Addr));
    unsigned Cls = static_cast<unsigned>(opClass(P.I.Kind));
    uint64_t Wait =
        F == static_cast<unsigned>(MemKind::Flash) ? T.FlashWaitStates : 0;
    OpKind K = P.I.Kind;
    bool CondBranch =
        K == OpKind::BCond || K == OpKind::Cbz || K == OpKind::Cbnz;
    bool IsLoad = Cls == static_cast<unsigned>(InstrClass::Load);

    if (IsLoad) {
      // The simulator splits each load execution by its data memory and
      // adds the RAM-port contention stall when a RAM fetch loads RAM.
      if (C.LoadData[0] + C.LoadData[1] != C.Exec)
        return false; // malformed profile
      for (unsigned D = 0; D != 2; ++D) {
        uint64_t Count = C.LoadData[D];
        if (Count == 0)
          continue;
        uint64_t Per = T.cycles(P.I, /*Taken=*/false) + Wait;
        if (F == static_cast<unsigned>(MemKind::Ram) &&
            D == static_cast<unsigned>(MemKind::Ram)) {
          Per += T.RamContentionStall;
          RS.ContentionStalls += Count * T.RamContentionStall;
        }
        uint64_t Cyc = Count * Per;
        RS.Cycles += Cyc;
        RS.ClassCycles[F][Cls] += Cyc;
        RS.LoadCycles[F][D] += Cyc;
      }
    } else if (CondBranch) {
      if (C.Taken > C.Exec)
        return false; // malformed profile
      uint64_t Cyc =
          (C.Exec - C.Taken) * (T.cycles(P.I, /*Taken=*/false) + Wait) +
          C.Taken * (T.cycles(P.I, /*Taken=*/true) + Wait);
      RS.Cycles += Cyc;
      RS.ClassCycles[F][Cls] += Cyc;
    } else {
      // Unconditional control flow is accounted with Taken=true by the
      // simulator; everything else with Taken=false (cycles() ignores the
      // flag outside conditional branches either way).
      bool Taken = K == OpKind::B || K == OpKind::Bl ||
                   K == OpKind::Blx || K == OpKind::Bx;
      uint64_t Cyc = C.Exec * (T.cycles(P.I, Taken) + Wait);
      RS.Cycles += Cyc;
      RS.ClassCycles[F][Cls] += Cyc;
    }

    if (C.Skipped > 0) {
      uint64_t Cyc = C.Skipped * (T.SkippedCycles + Wait);
      RS.Cycles += Cyc;
      RS.ClassCycles[F][Cls] += Cyc;
    }
    RS.FlashWaitCycles += (C.Exec + C.Skipped) * Wait;
  }

  // A full simulation aborts when the running total reaches MaxCycles
  // before a step; totals at or under the budget can never have tripped
  // that check mid-run. Past it, abort timing is device-dependent — fall
  // back to full simulation rather than guess.
  if (RS.Cycles > Opts.MaxCycles)
    return false;

  Out = std::move(RS);
  return true;
}

namespace {

/// Strict non-negative integer extraction (doubles above 2^53 or with a
/// fractional part are corruption, not data).
bool asCount(const JsonValue &V, uint64_t &Out) {
  if (V.kind() != JsonValue::Kind::Number)
    return false;
  double D = V.number();
  if (D < 0 || D > 9007199254740992.0 ||
      D != static_cast<double>(static_cast<uint64_t>(D)))
    return false;
  Out = static_cast<uint64_t>(D);
  return true;
}

} // namespace

void ramloc::writeExecutionProfile(JsonWriter &W, const std::string &Key,
                                   const ExecutionProfile &Profile) {
  W.beginObject();
  W.field("key", Key);
  W.field("instructions", Profile.Instructions);
  W.field("sleep_events", Profile.SleepEvents);
  W.field("exit_code", static_cast<uint64_t>(Profile.ExitCode));
  W.key("blocks").beginArray();
  for (const std::vector<uint64_t> &F : Profile.BlockCounts) {
    W.beginArray();
    for (uint64_t B : F)
      W.value(B);
    W.endArray();
  }
  W.endArray();
  // One element per static instruction: a bare count when only Exec is
  // non-zero (the overwhelmingly common case), else the full 5-tuple
  // [exec, taken, skipped, load_flash, load_ram].
  W.key("instrs").beginArray();
  for (const InstrCounts &C : Profile.Instrs) {
    if (C.Taken == 0 && C.Skipped == 0 && C.LoadData[0] == 0 &&
        C.LoadData[1] == 0) {
      W.value(C.Exec);
      continue;
    }
    W.beginArray();
    W.value(C.Exec).value(C.Taken).value(C.Skipped);
    W.value(C.LoadData[0]).value(C.LoadData[1]);
    W.endArray();
  }
  W.endArray();
  W.endObject();
}

bool ramloc::parseExecutionProfile(const JsonValue &V, std::string &Key,
                                   ExecutionProfile &Out) {
  if (V.kind() != JsonValue::Kind::Object)
    return false;
  const JsonValue *K = V.find("key");
  const JsonValue *Instructions = V.find("instructions");
  const JsonValue *Sleep = V.find("sleep_events");
  const JsonValue *Exit = V.find("exit_code");
  const JsonValue *Blocks = V.find("blocks");
  const JsonValue *Instrs = V.find("instrs");
  if (!K || K->kind() != JsonValue::Kind::String || !Instructions ||
      !Sleep || !Exit || !Blocks ||
      Blocks->kind() != JsonValue::Kind::Array || !Instrs ||
      Instrs->kind() != JsonValue::Kind::Array)
    return false;

  ExecutionProfile P;
  uint64_t ExitCode = 0;
  if (!asCount(*Instructions, P.Instructions) ||
      !asCount(*Sleep, P.SleepEvents) || !asCount(*Exit, ExitCode) ||
      ExitCode > 0xFFFFFFFFull)
    return false;
  P.ExitCode = static_cast<uint32_t>(ExitCode);

  for (const JsonValue &F : Blocks->items()) {
    if (F.kind() != JsonValue::Kind::Array)
      return false;
    std::vector<uint64_t> Counts;
    Counts.reserve(F.items().size());
    for (const JsonValue &B : F.items()) {
      uint64_t C = 0;
      if (!asCount(B, C))
        return false;
      Counts.push_back(C);
    }
    P.BlockCounts.push_back(std::move(Counts));
  }

  P.Instrs.reserve(Instrs->items().size());
  for (const JsonValue &E : Instrs->items()) {
    InstrCounts C;
    if (E.kind() == JsonValue::Kind::Number) {
      if (!asCount(E, C.Exec))
        return false;
    } else if (E.kind() == JsonValue::Kind::Array &&
               E.items().size() == 5) {
      if (!asCount(E.items()[0], C.Exec) ||
          !asCount(E.items()[1], C.Taken) ||
          !asCount(E.items()[2], C.Skipped) ||
          !asCount(E.items()[3], C.LoadData[0]) ||
          !asCount(E.items()[4], C.LoadData[1]))
        return false;
    } else {
      return false;
    }
    P.Instrs.push_back(C);
  }

  P.Valid = true;
  Key = K->string();
  Out = std::move(P);
  return true;
}
