//===- sim/ProfileCache.cpp - shared execution-profile cache -------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/ProfileCache.h"

#include "support/Metrics.h"

#include <algorithm>

using namespace ramloc;

std::shared_ptr<const ExecutionProfile>
ProfileCache::acquire(const std::string &Key, bool &Owner) {
  Owner = false;
  std::shared_ptr<Entry> E;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    std::shared_ptr<Entry> &Slot = Map[Key];
    if (!Slot) {
      Slot = std::make_shared<Entry>();
      Owner = true;
      return nullptr;
    }
    E = Slot;
  }
  std::unique_lock<std::mutex> Lock(E->M);
  E->CV.wait(Lock, [&E] { return E->Done; });
  return E->Profile;
}

void ProfileCache::publish(const std::string &Key,
                           std::shared_ptr<const ExecutionProfile> Profile) {
  std::shared_ptr<Entry> E;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Map.find(Key);
    if (It == Map.end())
      It = Map.emplace(Key, std::make_shared<Entry>()).first;
    E = It->second;
  }
  {
    std::lock_guard<std::mutex> Lock(E->M);
    E->Profile = std::move(Profile);
    E->Done = true;
  }
  E->CV.notify_all();
}

void ProfileCache::preload(const std::string &Key,
                           std::shared_ptr<const ExecutionProfile> Profile) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::shared_ptr<Entry> &Slot = Map[Key];
  if (Slot)
    return; // first publisher wins; never clobber an in-flight compute
  Slot = std::make_shared<Entry>();
  Slot->Profile = std::move(Profile);
  Slot->Done = true;
}

void ProfileCache::noteFullSim() {
  globalMetrics().counter("sim.full_sims").add();
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.FullSims;
}

void ProfileCache::noteRecost() {
  globalMetrics().counter("sim.recosts").add();
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.Recosts;
}

ProfileCache::Counters ProfileCache::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

std::vector<std::pair<std::string, std::shared_ptr<const ExecutionProfile>>>
ProfileCache::snapshot() const {
  std::vector<std::pair<std::string, std::shared_ptr<const ExecutionProfile>>>
      Out;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const auto &[Key, E] : Map) {
      // Ready/valid checks only; snapshot never blocks on in-flight
      // computes (Done is written under E->M, but a racing writer just
      // means the entry lands in the next snapshot).
      std::lock_guard<std::mutex> ELock(E->M);
      if (E->Done && E->Profile && E->Profile->Valid)
        Out.emplace_back(Key, E->Profile);
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Out;
}

size_t ProfileCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const auto &[Key, E] : Map) {
    std::lock_guard<std::mutex> ELock(E->M);
    if (E->Done && E->Profile && E->Profile->Valid)
      ++N;
  }
  return N;
}
