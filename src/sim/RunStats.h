//===- sim/RunStats.h - execution statistics --------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What the simulator measures: cycle counts attributed per (fetch memory,
/// instruction class), load cycles further split by data memory (for the
/// Figure 1 "RAM code loading flash" case), contention stalls, and
/// per-block execution counts (the profiled Fb of Figure 5).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_SIM_RUNSTATS_H
#define RAMLOC_SIM_RUNSTATS_H

#include "isa/OpKind.h"
#include "mir/Module.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ramloc {

/// Cycle attribution for one sampling interval: the same matrices as the
/// whole-run statistics, windowed. PowerModel::averageMilliWatts turns a
/// sample into a point on a power-vs-time profile (Figure 7).
struct PowerSample {
  uint64_t Cycles = 0;
  uint64_t ClassCycles[2][7] = {};
  uint64_t LoadCycles[2][2] = {};
};

/// Execution statistics of one simulated run.
struct RunStats {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  /// Cycles per [fetch memory][instruction class]; loads are *also*
  /// accounted here (for totals) and split in LoadCycles.
  uint64_t ClassCycles[2][7] = {};
  /// Load-class cycles per [fetch memory][data memory].
  uint64_t LoadCycles[2][2] = {};
  /// Extra stalls from fetch/data contention on the RAM port (the
  /// behaviour the model's Lb / Or(b) term estimates).
  uint64_t ContentionStalls = 0;
  /// Extra cycles spent waiting on flash fetches (TimingModel's
  /// FlashWaitStates; zero on the reference zero-wait-state device).
  uint64_t FlashWaitCycles = 0;
  /// wfi executions (sleep markers for the case-study workloads).
  uint64_t SleepEvents = 0;
  /// Per-block execution counts, indexed [function][block].
  std::vector<std::vector<uint64_t>> BlockCounts;
  /// Power-profile samples (only when SimOptions::SampleIntervalCycles
  /// is non-zero). The last sample may cover a short tail interval.
  std::vector<PowerSample> Samples;
  /// r0 at the halting bkpt: workload checksum by convention.
  uint32_t ExitCode = 0;
  /// Non-empty if the run faulted (bad memory access, cycle budget, ...).
  std::string Error;
  bool HitCycleLimit = false;

  bool ok() const { return Error.empty(); }

  uint64_t fetchCycles(MemKind M) const {
    uint64_t Sum = 0;
    for (unsigned C = 0; C != 7; ++C)
      Sum += ClassCycles[static_cast<unsigned>(M)][C];
    return Sum;
  }

  /// Flattens block counts into the "func:label" keyed map consumed by
  /// moduleFrequencyFromProfile (the Figure 5 "w/Frequency" runs).
  std::map<std::string, uint64_t> profileMap(const Module &M) const;
};

} // namespace ramloc

#endif // RAMLOC_SIM_RUNSTATS_H
