//===- sim/Simulator.cpp - Cortex-M3-like interpreter -------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "sim/ExecutionProfile.h"
#include "support/Format.h"

#include <cassert>

using namespace ramloc;

namespace {

/// ADD with carry-in, producing NZCV the ARM way.
struct AddResult {
  uint32_t Value;
  bool C;
  bool V;
};

AddResult addWithCarry(uint32_t A, uint32_t B, bool CarryIn) {
  uint64_t Unsigned =
      static_cast<uint64_t>(A) + B + (CarryIn ? 1 : 0);
  int64_t Signed = static_cast<int64_t>(static_cast<int32_t>(A)) +
                   static_cast<int32_t>(B) + (CarryIn ? 1 : 0);
  uint32_t Result = static_cast<uint32_t>(Unsigned);
  return {Result, Unsigned > 0xFFFFFFFFULL,
          Signed != static_cast<int32_t>(Result)};
}

} // namespace

std::map<std::string, uint64_t> RunStats::profileMap(const Module &M) const {
  std::map<std::string, uint64_t> Out;
  for (unsigned F = 0, NF = BlockCounts.size(); F != NF; ++F) {
    assert(F < M.Functions.size() && "stats do not match module");
    const Function &Fn = M.Functions[F];
    for (unsigned B = 0, NB = BlockCounts[F].size(); B != NB; ++B)
      Out[Fn.Name + ":" + Fn.Blocks[B].Label] = BlockCounts[F][B];
  }
  return Out;
}

Simulator::Simulator(const Image &Img, const SimOptions &Opts)
    : Img(Img), Opts(Opts), Dec(predecodeImage(Img, Opts.Timing)),
      Ram(Img.RamBytes) {
  State.R[SP] = Img.Map.stackTop();
  State.R[LR] = ExitAddress;
  PcAddr = Img.EntryAddr;
  Stats.BlockCounts.resize(Img.BlockAddr.size());
  for (unsigned F = 0, NF = Img.BlockAddr.size(); F != NF; ++F)
    Stats.BlockCounts[F].assign(Img.BlockAddr[F].size(), 0);

  if (Opts.IncludeStartupCopy && Img.StartupCopyCycles > 0) {
    // The boot loop runs from flash, streaming words from flash to RAM.
    Stats.Cycles += Img.StartupCopyCycles;
    Stats.ClassCycles[0][static_cast<unsigned>(InstrClass::Load)] +=
        Img.StartupCopyCycles;
    Stats.LoadCycles[0][0] += Img.StartupCopyCycles;
  }
}

void Simulator::collectProfile(ExecutionProfile &P) {
  Prof = &P;
  P = ExecutionProfile{};
  P.Instrs.assign(Img.Instrs.size(), InstrCounts{});
}

void Simulator::fault(const std::string &Msg) {
  if (Stats.Error.empty())
    Stats.Error = Msg;
  Halted = true;
}

void Simulator::halt() {
  Stats.ExitCode = State.R[R0];
  Halted = true;
  if (Opts.SampleIntervalCycles != 0 && CurSample.Cycles > 0) {
    Stats.Samples.push_back(CurSample); // short tail interval
    CurSample = PowerSample{};
  }
}

bool Simulator::checkAddr(uint32_t Addr, uint32_t Bytes, bool Write) {
  if (Img.Map.inRam(Addr) &&
      Addr + Bytes <= Img.Map.RamBase + Img.Map.RamSize)
    return true;
  if (!Write && Img.Map.inFlash(Addr) &&
      Addr + Bytes <= Img.Map.FlashBase + Img.Map.FlashSize)
    return true;
  fault(formatString("%s fault at 0x%08x (pc=0x%08x)",
                     Write ? "write" : "read", Addr, PcAddr));
  return false;
}

uint32_t Simulator::read32(uint32_t Addr) {
  if (!checkAddr(Addr, 4, /*Write=*/false))
    return 0;
  const uint8_t *P;
  if (Img.Map.inRam(Addr))
    P = &Ram[Addr - Img.Map.RamBase];
  else
    P = &Img.FlashBytes[Addr - Img.Map.FlashBase];
  return static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}

uint16_t Simulator::read16(uint32_t Addr) {
  if (!checkAddr(Addr, 2, /*Write=*/false))
    return 0;
  const uint8_t *P;
  if (Img.Map.inRam(Addr))
    P = &Ram[Addr - Img.Map.RamBase];
  else
    P = &Img.FlashBytes[Addr - Img.Map.FlashBase];
  return static_cast<uint16_t>(P[0] | (P[1] << 8));
}

uint8_t Simulator::read8(uint32_t Addr) {
  if (!checkAddr(Addr, 1, /*Write=*/false))
    return 0;
  if (Img.Map.inRam(Addr))
    return Ram[Addr - Img.Map.RamBase];
  return Img.FlashBytes[Addr - Img.Map.FlashBase];
}

void Simulator::write32(uint32_t Addr, uint32_t Value) {
  if (!checkAddr(Addr, 4, /*Write=*/true))
    return;
  uint8_t *P = &Ram[Addr - Img.Map.RamBase];
  P[0] = static_cast<uint8_t>(Value);
  P[1] = static_cast<uint8_t>(Value >> 8);
  P[2] = static_cast<uint8_t>(Value >> 16);
  P[3] = static_cast<uint8_t>(Value >> 24);
}

void Simulator::write16(uint32_t Addr, uint16_t Value) {
  if (!checkAddr(Addr, 2, /*Write=*/true))
    return;
  uint8_t *P = &Ram[Addr - Img.Map.RamBase];
  P[0] = static_cast<uint8_t>(Value);
  P[1] = static_cast<uint8_t>(Value >> 8);
}

void Simulator::write8(uint32_t Addr, uint8_t Value) {
  if (!checkAddr(Addr, 1, /*Write=*/true))
    return;
  Ram[Addr - Img.Map.RamBase] = Value;
}

void Simulator::book(const DecodedInstr &D, unsigned Cycles, bool IsLoad,
                     unsigned DataMem) {
  // Flash wait states are pre-added to the decoded cycle costs; only the
  // attribution counter remains per-step.
  Stats.FlashWaitCycles += D.FlashWait;
  Stats.Cycles += Cycles;
  Stats.ClassCycles[D.Fetch][D.Class] += Cycles;
  if (IsLoad)
    Stats.LoadCycles[D.Fetch][DataMem] += Cycles;

  if (Opts.SampleIntervalCycles != 0) {
    CurSample.Cycles += Cycles;
    CurSample.ClassCycles[D.Fetch][D.Class] += Cycles;
    if (IsLoad)
      CurSample.LoadCycles[D.Fetch][DataMem] += Cycles;
    if (CurSample.Cycles >= Opts.SampleIntervalCycles) {
      Stats.Samples.push_back(CurSample);
      CurSample = PowerSample{};
    }
  }
}

void Simulator::account(const DecodedInstr &D, unsigned Cycles, bool IsLoad,
                        unsigned DataMem, bool TakenBranch) {
  if (IsLoad && DataMem == static_cast<unsigned>(MemKind::Ram) &&
      D.ContentionStall != 0) {
    // Fetch and data contend for the single RAM port (the model's Lb).
    Cycles += D.ContentionStall;
    Stats.ContentionStalls += D.ContentionStall;
  }
  book(D, Cycles, IsLoad, DataMem);

  if (Prof) {
    InstrCounts &C = Prof->Instrs[CurIdx];
    ++C.Exec;
    if (TakenBranch)
      ++C.Taken;
    if (IsLoad)
      ++C.LoadData[DataMem];
  }
}

void Simulator::branchTo(uint32_t Addr) {
  Addr &= ~1u; // ignore the Thumb bit
  if (Addr == ExitAddress) {
    halt();
    return;
  }
  PcAddr = Addr;
}

bool Simulator::step() {
  if (Halted)
    return false;
  if (Stats.Cycles >= Opts.MaxCycles) {
    Stats.HitCycleLimit = true;
    fault("cycle limit exceeded");
    return false;
  }

  int Idx = Img.instrIndexAt(PcAddr);
  if (Idx < 0) {
    fault(formatString("fetch fault at 0x%08x", PcAddr));
    return false;
  }
  CurIdx = static_cast<uint32_t>(Idx);
  const DecodedInstr &D = Dec[CurIdx];
  if (D.IsBlockHead)
    ++Stats.BlockCounts[D.FuncIdx][D.BlockIdx];
  ++Stats.Instructions;

  // Predicated non-branch instruction whose condition fails: one skipped
  // cycle, no architectural effect.
  if (D.CheckCond && !condPasses(D.CondCode, State.F)) {
    if (Prof)
      ++Prof->Instrs[CurIdx].Skipped;
    // The skip costs one cycle (plus the fetch's wait states) against the
    // instruction's own class; no load/contention side effects.
    book(D, D.CyclesSkipped, /*IsLoad=*/false, 0);
    PcAddr = D.NextAddr;
    return !Halted;
  }

  execute(D);
  return !Halted;
}

void Simulator::run() {
  while (step())
    ;
}

void Simulator::execute(const DecodedInstr &D) {
  const Instr &I = D.P->I;

  switch (D.Kind) {
  // --- control flow -------------------------------------------------------
  case OpKind::B:
    account(D, D.CyclesTaken, false, 0);
    branchTo(D.TargetAddr);
    return;
  case OpKind::BCond: {
    bool Taken = condPasses(D.CondCode, State.F);
    account(D, Taken ? D.CyclesTaken : D.CyclesNotTaken, false, 0, Taken);
    if (Taken)
      branchTo(D.TargetAddr);
    else
      PcAddr = D.NextAddr;
    return;
  }
  case OpKind::Cbz:
  case OpKind::Cbnz: {
    bool Zero = reg(I.Regs[0]) == 0;
    bool Taken = D.Kind == OpKind::Cbz ? Zero : !Zero;
    account(D, Taken ? D.CyclesTaken : D.CyclesNotTaken, false, 0, Taken);
    if (Taken)
      branchTo(D.TargetAddr);
    else
      PcAddr = D.NextAddr;
    return;
  }
  case OpKind::Bl:
    account(D, D.CyclesTaken, false, 0);
    reg(LR) = D.NextAddr;
    branchTo(D.TargetAddr);
    return;
  case OpKind::Blx: {
    account(D, D.CyclesTaken, false, 0);
    uint32_t Target = reg(I.Regs[0]);
    reg(LR) = D.NextAddr;
    branchTo(Target);
    return;
  }
  case OpKind::Bx:
    account(D, D.CyclesTaken, false, 0);
    branchTo(reg(I.Regs[0]));
    return;
  case OpKind::It:
  case OpKind::Nop:
    account(D, D.CyclesNotTaken, false, 0);
    PcAddr = D.NextAddr;
    return;
  case OpKind::Wfi:
    ++Stats.SleepEvents;
    account(D, D.CyclesNotTaken, false, 0);
    PcAddr = D.NextAddr;
    return;
  case OpKind::Bkpt:
    account(D, D.CyclesNotTaken, false, 0);
    halt();
    return;

  // --- memory -------------------------------------------------------------
  case OpKind::LdrImm:
  case OpKind::LdrReg:
  case OpKind::StrImm:
  case OpKind::StrReg:
  case OpKind::LdrbImm:
  case OpKind::LdrbReg:
  case OpKind::StrbImm:
  case OpKind::StrbReg:
  case OpKind::LdrhImm:
  case OpKind::StrhImm:
  case OpKind::LdrLit:
  case OpKind::Push:
  case OpKind::Pop:
    executeMem(D);
    return;

  default:
    executeAlu(D);
    return;
  }
}

void Simulator::executeMem(const DecodedInstr &D) {
  const Instr &I = D.P->I;
  uint32_t Rt = reg(I.Regs[0]);
  uint32_t Base = reg(I.Regs[1]);

  auto effectiveAddr = [&](bool RegForm) {
    return RegForm ? Base + reg(I.Regs[2])
                   : Base + static_cast<uint32_t>(I.Imm);
  };
  auto dataMem = [&](uint32_t Addr) {
    return static_cast<unsigned>(
        Img.Map.isMapped(Addr) ? Img.Map.regionOf(Addr) : MemKind::Flash);
  };

  switch (D.Kind) {
  case OpKind::LdrImm:
  case OpKind::LdrReg: {
    uint32_t EA = effectiveAddr(D.Kind == OpKind::LdrReg);
    account(D, D.CyclesNotTaken, /*IsLoad=*/true, dataMem(EA));
    reg(I.Regs[0]) = read32(EA);
    break;
  }
  case OpKind::LdrbImm:
  case OpKind::LdrbReg: {
    uint32_t EA = effectiveAddr(D.Kind == OpKind::LdrbReg);
    account(D, D.CyclesNotTaken, true, dataMem(EA));
    reg(I.Regs[0]) = read8(EA);
    break;
  }
  case OpKind::LdrhImm: {
    uint32_t EA = effectiveAddr(false);
    account(D, D.CyclesNotTaken, true, dataMem(EA));
    reg(I.Regs[0]) = read16(EA);
    break;
  }
  case OpKind::StrImm:
  case OpKind::StrReg: {
    uint32_t EA = effectiveAddr(D.Kind == OpKind::StrReg);
    account(D, D.CyclesNotTaken, false, dataMem(EA));
    write32(EA, Rt);
    break;
  }
  case OpKind::StrbImm:
  case OpKind::StrbReg: {
    uint32_t EA = effectiveAddr(D.Kind == OpKind::StrbReg);
    account(D, D.CyclesNotTaken, false, dataMem(EA));
    write8(EA, static_cast<uint8_t>(Rt));
    break;
  }
  case OpKind::StrhImm: {
    uint32_t EA = effectiveAddr(false);
    account(D, D.CyclesNotTaken, false, dataMem(EA));
    write16(EA, static_cast<uint16_t>(Rt));
    break;
  }
  case OpKind::LdrLit: {
    // The pool slot was resolved by the linker; its memory determines the
    // data-side power (RAM code with flash pools is the expensive Figure 1
    // case; our pools co-locate with the code, so RAM code pools are RAM).
    uint32_t Value = read32(D.TargetAddr);
    account(D, D.CyclesNotTaken, true, dataMem(D.TargetAddr));
    if (I.Regs[0] == PC) {
      branchTo(Value);
      return;
    }
    reg(I.Regs[0]) = Value;
    break;
  }
  case OpKind::Push: {
    uint32_t Mask = static_cast<uint32_t>(I.Imm);
    unsigned Count = regMaskCount(Mask);
    uint32_t Addr = reg(SP) - 4 * Count;
    account(D, D.CyclesNotTaken, false,
            static_cast<unsigned>(MemKind::Ram));
    reg(SP) = Addr;
    for (unsigned R = 0; R < 16; ++R) {
      if (!(Mask & (1u << R)))
        continue;
      write32(Addr, State.R[R]);
      Addr += 4;
    }
    break;
  }
  case OpKind::Pop: {
    uint32_t Mask = static_cast<uint32_t>(I.Imm);
    account(D, D.CyclesNotTaken, /*IsLoad=*/true,
            static_cast<unsigned>(MemKind::Ram));
    uint32_t Addr = reg(SP);
    uint32_t NewPC = 0;
    bool HasPC = false;
    for (unsigned R = 0; R < 16; ++R) {
      if (!(Mask & (1u << R)))
        continue;
      uint32_t V = read32(Addr);
      Addr += 4;
      if (R == PC) {
        NewPC = V;
        HasPC = true;
      } else {
        State.R[R] = V;
      }
    }
    reg(SP) = Addr;
    if (HasPC) {
      branchTo(NewPC);
      return;
    }
    break;
  }
  default:
    assert(false && "not a memory opcode");
  }
  PcAddr = D.NextAddr;
}

void Simulator::executeAlu(const DecodedInstr &D) {
  const Instr &I = D.P->I;
  account(D, D.CyclesNotTaken, false, 0);

  uint32_t Rn = reg(I.Regs[1]);
  uint32_t RmV = reg(I.Regs[2]);
  uint32_t ImmU = static_cast<uint32_t>(I.Imm);
  uint32_t Result = 0;
  bool WroteResult = true;
  bool UpdateCV = false;
  bool NewC = State.F.C, NewV = State.F.V;

  switch (D.Kind) {
  case OpKind::MovImm:
    Result = ImmU;
    break;
  case OpKind::MovReg:
    Result = Rn; // Regs[1] = rm for mov
    break;
  case OpKind::Mvn:
    Result = ~Rn;
    break;
  case OpKind::AddImm: {
    AddResult A = addWithCarry(Rn, ImmU, false);
    Result = A.Value;
    NewC = A.C;
    NewV = A.V;
    UpdateCV = true;
    break;
  }
  case OpKind::AddReg: {
    AddResult A = addWithCarry(Rn, RmV, false);
    Result = A.Value;
    NewC = A.C;
    NewV = A.V;
    UpdateCV = true;
    break;
  }
  case OpKind::SubImm: {
    AddResult A = addWithCarry(Rn, ~ImmU, true);
    Result = A.Value;
    NewC = A.C;
    NewV = A.V;
    UpdateCV = true;
    break;
  }
  case OpKind::SubReg: {
    AddResult A = addWithCarry(Rn, ~RmV, true);
    Result = A.Value;
    NewC = A.C;
    NewV = A.V;
    UpdateCV = true;
    break;
  }
  case OpKind::Rsb: {
    AddResult A = addWithCarry(~Rn, ImmU, true);
    Result = A.Value;
    NewC = A.C;
    NewV = A.V;
    UpdateCV = true;
    break;
  }
  case OpKind::Adc: {
    AddResult A = addWithCarry(Rn, RmV, State.F.C);
    Result = A.Value;
    NewC = A.C;
    NewV = A.V;
    UpdateCV = true;
    break;
  }
  case OpKind::Sbc: {
    AddResult A = addWithCarry(Rn, ~RmV, State.F.C);
    Result = A.Value;
    NewC = A.C;
    NewV = A.V;
    UpdateCV = true;
    break;
  }
  case OpKind::Mul:
    Result = Rn * RmV;
    break;
  case OpKind::Mla:
    Result = Rn * RmV + reg(I.Regs[3]);
    break;
  case OpKind::Udiv:
    Result = RmV == 0 ? 0 : Rn / RmV;
    break;
  case OpKind::Sdiv: {
    int32_t N = static_cast<int32_t>(Rn);
    int32_t Dv = static_cast<int32_t>(RmV);
    if (Dv == 0)
      Result = 0;
    else if (N == INT32_MIN && Dv == -1)
      Result = static_cast<uint32_t>(INT32_MIN);
    else
      Result = static_cast<uint32_t>(N / Dv);
    break;
  }
  case OpKind::AndReg:
    Result = Rn & RmV;
    break;
  case OpKind::OrrReg:
    Result = Rn | RmV;
    break;
  case OpKind::EorReg:
    Result = Rn ^ RmV;
    break;
  case OpKind::BicReg:
    Result = Rn & ~RmV;
    break;
  case OpKind::AndImm:
    Result = Rn & ImmU;
    break;
  case OpKind::OrrImm:
    Result = Rn | ImmU;
    break;
  case OpKind::EorImm:
    Result = Rn ^ ImmU;
    break;
  case OpKind::BicImm:
    Result = Rn & ~ImmU;
    break;
  case OpKind::LslImm:
    Result = ImmU == 0 ? Rn : Rn << (ImmU & 31);
    break;
  case OpKind::LsrImm:
    Result = ImmU >= 32 ? 0 : Rn >> ImmU;
    break;
  case OpKind::AsrImm:
    Result = ImmU >= 32
                 ? (static_cast<int32_t>(Rn) < 0 ? 0xFFFFFFFFu : 0)
                 : static_cast<uint32_t>(static_cast<int32_t>(Rn) >>
                                         ImmU);
    break;
  case OpKind::LslReg: {
    uint32_t Amt = RmV & 0xFF;
    Result = Amt >= 32 ? 0 : Rn << Amt;
    break;
  }
  case OpKind::LsrReg: {
    uint32_t Amt = RmV & 0xFF;
    Result = Amt >= 32 ? 0 : Rn >> Amt;
    break;
  }
  case OpKind::AsrReg: {
    uint32_t Amt = RmV & 0xFF;
    if (Amt >= 32)
      Result = static_cast<int32_t>(Rn) < 0 ? 0xFFFFFFFFu : 0;
    else
      Result = static_cast<uint32_t>(static_cast<int32_t>(Rn) >> Amt);
    break;
  }
  case OpKind::RorReg: {
    uint32_t Amt = RmV & 31;
    Result = Amt == 0 ? Rn : (Rn >> Amt) | (Rn << (32 - Amt));
    break;
  }
  case OpKind::CmpImm: {
    AddResult A = addWithCarry(reg(I.Regs[0]), ~ImmU, true);
    Result = A.Value;
    NewC = A.C;
    NewV = A.V;
    UpdateCV = true;
    WroteResult = false;
    break;
  }
  case OpKind::CmpReg: {
    AddResult A = addWithCarry(reg(I.Regs[0]), ~reg(I.Regs[1]), true);
    Result = A.Value;
    NewC = A.C;
    NewV = A.V;
    UpdateCV = true;
    WroteResult = false;
    break;
  }
  case OpKind::Tst:
    Result = reg(I.Regs[0]) & reg(I.Regs[1]);
    WroteResult = false;
    break;
  case OpKind::Uxtb:
    Result = Rn & 0xFF;
    break;
  case OpKind::Uxth:
    Result = Rn & 0xFFFF;
    break;
  case OpKind::Sxtb:
    Result = static_cast<uint32_t>(
        static_cast<int32_t>(static_cast<int8_t>(Rn & 0xFF)));
    break;
  case OpKind::Sxth:
    Result = static_cast<uint32_t>(
        static_cast<int32_t>(static_cast<int16_t>(Rn & 0xFFFF)));
    break;
  default:
    assert(false && "not an ALU opcode");
  }

  if (WroteResult)
    reg(I.Regs[0]) = Result;
  if (I.SetsFlags) {
    State.F.N = (Result >> 31) != 0;
    State.F.Z = Result == 0;
    if (UpdateCV) {
      State.F.C = NewC;
      State.F.V = NewV;
    }
  }
  PcAddr = D.NextAddr;
}

RunStats ramloc::runImage(const Image &Img, const SimOptions &Opts,
                          uint32_t Arg0, uint32_t Arg1, uint32_t Arg2) {
  Simulator Sim(Img, Opts);
  Sim.state().R[R0] = Arg0;
  Sim.state().R[R1] = Arg1;
  Sim.state().R[R2] = Arg2;
  Sim.run();
  return Sim.takeStats();
}
