//===- sim/Simulator.h - Cortex-M3-like interpreter -------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cycle-approximate interpreter for linked images, standing in for the
/// paper's power-instrumented STM32VLDISCOVERY board. It attributes every
/// cycle to the memory the instruction was fetched from, applies the RAM
/// fetch/data contention stall the paper's Lb term models, and counts
/// per-block executions for profiling.
///
/// The hot loop dispatches over a predecoded image (sim/Predecode.h): the
/// fetch-region, instruction-class and cycle-cost lookups are resolved
/// once per image instead of once per step. Optionally it records a
/// device-independent ExecutionProfile (sim/ExecutionProfile.h) so later
/// runs of the same image can be recosted without re-execution.
///
/// Architectural conventions:
///  - Registers r0-r12, sp (full-descending), lr, pc; NZCV flags.
///  - The run starts at the image entry with lr = ExitAddress; returning
///    to ExitAddress or executing bkpt halts the run.
///  - r0 at halt is reported as the exit code (workload checksum).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_SIM_SIMULATOR_H
#define RAMLOC_SIM_SIMULATOR_H

#include "isa/Timing.h"
#include "layout/Image.h"
#include "sim/Predecode.h"
#include "sim/RunStats.h"

#include <cstdint>

namespace ramloc {

struct ExecutionProfile;

/// Simulation knobs.
struct SimOptions {
  TimingModel Timing;
  /// Abort threshold, to keep runaway programs bounded.
  uint64_t MaxCycles = 4'000'000'000ULL;
  /// Account the startup .data/.ramcode copy loop (flash-fetched loads).
  bool IncludeStartupCopy = true;
  /// When non-zero, record a PowerSample roughly every this many cycles
  /// (the power-profile instrumentation behind Figure 7). Sample
  /// boundaries depend on the timing model, so runs with sampling cannot
  /// be served by recosting a shared profile.
  uint64_t SampleIntervalCycles = 0;
};

/// The magic return address that terminates simulation when jumped to.
inline constexpr uint32_t ExitAddress = 0xFFFFFFF0;

/// Architectural machine state, exposed for unit tests.
struct MachineState {
  uint32_t R[16] = {};
  Flags F;
};

/// Runs \p Img from its entry to completion and returns statistics.
/// \p Argv0..2 preload r0..r2 (workload parameters).
RunStats runImage(const Image &Img, const SimOptions &Opts = {},
                  uint32_t Arg0 = 0, uint32_t Arg1 = 0, uint32_t Arg2 = 0);

/// Single-stepping simulator for tests and tooling.
class Simulator {
public:
  Simulator(const Image &Img, const SimOptions &Opts);

  /// Binds \p P as the run's execution-profile sink: per-instruction
  /// dynamic counts accumulate into it as the run proceeds. \p P is
  /// (re)initialized to the image's shape; the caller finalizes the
  /// whole-run fields (see runImageProfiled).
  void collectProfile(ExecutionProfile &P);

  /// Executes one instruction; returns false once halted or faulted.
  bool step();

  /// Runs until halt/fault/cycle-limit.
  void run();

  const MachineState &state() const { return State; }
  MachineState &state() { return State; }
  const RunStats &stats() const { return Stats; }
  RunStats takeStats() { return std::move(Stats); }
  bool halted() const { return Halted; }

  /// Direct memory access for tests and workload setup/inspection.
  uint32_t read32(uint32_t Addr);
  void write32(uint32_t Addr, uint32_t Value);
  uint8_t read8(uint32_t Addr);

private:
  uint16_t read16(uint32_t Addr);
  void write16(uint32_t Addr, uint16_t Value);
  void write8(uint32_t Addr, uint8_t Value);
  bool checkAddr(uint32_t Addr, uint32_t Bytes, bool Write);

  void fault(const std::string &Msg);
  void halt();
  /// Attributes \p Cycles to the decoded instruction's fetch memory and
  /// class (and, for loads, to \p DataMem), including the sampling
  /// accumulator — the single bookkeeping path shared by executed and
  /// condition-skipped instructions.
  void book(const DecodedInstr &D, unsigned Cycles, bool IsLoad,
            unsigned DataMem);
  /// Books \p Cycles (flash wait states pre-added by the predecoder)
  /// against the decoded instruction's fetch memory and class, adding the
  /// RAM-port contention stall for RAM-data loads. \p TakenBranch marks a
  /// taken conditional branch for the profile.
  void account(const DecodedInstr &D, unsigned Cycles, bool IsLoad,
               unsigned DataMem, bool TakenBranch = false);
  void execute(const DecodedInstr &D);
  void executeAlu(const DecodedInstr &D);
  void executeMem(const DecodedInstr &D);
  void branchTo(uint32_t Addr);

  uint32_t &reg(Reg R) { return State.R[R]; }

  const Image &Img;
  SimOptions Opts;
  MachineState State;
  RunStats Stats;
  /// Pre-resolved handlers/operands/cycle costs, parallel to Img.Instrs.
  DecodedImage Dec;
  /// Profile sink (optional); per-instruction counts index CurIdx.
  ExecutionProfile *Prof = nullptr;
  uint32_t PcAddr = 0;
  /// Index of the instruction being executed (into Img.Instrs / Dec).
  uint32_t CurIdx = 0;
  bool Halted = false;
  /// Accumulator for the current sampling interval.
  PowerSample CurSample;
  /// RAM contents (mutable); flash is read from the image (writes fault).
  std::vector<uint8_t> Ram;
};

} // namespace ramloc

#endif // RAMLOC_SIM_SIMULATOR_H
