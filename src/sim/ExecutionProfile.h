//===- sim/ExecutionProfile.h - device-independent run profile --*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execute/recost split. The architectural instruction stream of a run
/// depends only on (image, initial arguments): a TimingModel changes how
/// many cycles each step costs and how they are attributed, never which
/// instructions execute or what values they compute. So one simulation can
/// record a device-independent ExecutionProfile — per-block execution
/// counts plus, per static instruction, the dynamic facts timing cannot
/// predict (condition-failed skips, taken conditional branches, load data
/// memories) — and recostProfile() then derives the exact RunStats any
/// TimingModel would have produced, in one pass over the static
/// instructions instead of one pass over the dynamic trace. This is the
/// trace-once/cost-many structure the paper's own Fb/Cb/Lb model implies:
/// the campaign engine uses it to make the device axis of a grid nearly
/// free (1 full simulation + N-1 recosts instead of N simulations).
///
/// Equivalence is exact, not approximate: every RunStats counter —
/// Cycles, ClassCycles, LoadCycles, ContentionStalls, FlashWaitCycles,
/// BlockCounts, ExitCode — matches direct simulation bit-for-bit, so
/// downstream energy integration produces byte-identical reports.
/// recostProfile() refuses (returns false) whenever equivalence cannot be
/// guaranteed: an invalid profile, a run that would exceed the cycle
/// budget under the new timing, or a request for timing-dependent output
/// (power-profile samples); callers fall back to full simulation.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_SIM_EXECUTIONPROFILE_H
#define RAMLOC_SIM_EXECUTIONPROFILE_H

#include "sim/Simulator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ramloc {

class JsonValue;
class JsonWriter;

/// Dynamic facts about one static instruction that a TimingModel cannot
/// predict. Everything else a recost needs (opcode, fetch memory, size,
/// literal-pool slot) is static and read from the Image.
struct InstrCounts {
  /// Condition-passed executions (including taken branches).
  uint64_t Exec = 0;
  /// Taken executions of a conditional branch (BCond/Cbz/Cbnz); always
  /// <= Exec, and 0 for every other opcode.
  uint64_t Taken = 0;
  /// Predicated executions whose condition failed (one skipped cycle).
  uint64_t Skipped = 0;
  /// Load executions split by data memory [flash, RAM]. For loads the two
  /// sum to Exec; 0 for non-loads.
  uint64_t LoadData[2] = {0, 0};

  bool operator==(const InstrCounts &O) const = default;
};

/// One run's device-independent execution record, parallel to
/// Image::Instrs. Collected by runImageProfiled(); consumed by
/// recostProfile().
struct ExecutionProfile {
  /// Per static instruction, indexed like Image::Instrs.
  std::vector<InstrCounts> Instrs;
  /// Per-block execution counts, indexed [function][block] (the Fb of
  /// Figure 5, identical to RunStats::BlockCounts).
  std::vector<std::vector<uint64_t>> BlockCounts;
  uint64_t Instructions = 0;
  uint64_t SleepEvents = 0;
  uint32_t ExitCode = 0;
  /// True only when the profiled run completed cleanly (no fault, no
  /// cycle-limit abort). Invalid profiles must never be recosted or
  /// persisted.
  bool Valid = false;

  bool operator==(const ExecutionProfile &O) const = default;
};

/// The key a profile is shared and persisted under: the image fingerprint
/// plus the initial r0-r2 arguments. Two runs with equal keys execute the
/// same instruction stream on every device.
std::string executionKey(const Image &Img, uint32_t Arg0 = 0,
                         uint32_t Arg1 = 0, uint32_t Arg2 = 0);

/// Runs \p Img once, collecting both the \p Opts-timed RunStats and the
/// device-independent profile (into \p Profile). The returned stats are
/// identical to runImage() with the same options.
RunStats runImageProfiled(const Image &Img, const SimOptions &Opts,
                          ExecutionProfile &Profile, uint32_t Arg0 = 0,
                          uint32_t Arg1 = 0, uint32_t Arg2 = 0);

/// Derives the RunStats a full simulation of \p Img under \p Opts would
/// produce, from \p Profile, in O(#static instructions). Returns false —
/// leaving \p Out untouched — when exact equivalence cannot be
/// guaranteed: the profile is invalid or shaped for a different image,
/// Opts requests power-profile samples (SampleIntervalCycles != 0), or
/// the recosted run would hit Opts.MaxCycles.
bool recostProfile(const Image &Img, const ExecutionProfile &Profile,
                   const SimOptions &Opts, RunStats &Out);

/// Serializes \p Profile as one compact JSON object carrying \p Key (the
/// profile-store dialect; only valid profiles should be written).
void writeExecutionProfile(JsonWriter &W, const std::string &Key,
                           const ExecutionProfile &Profile);

/// Parses an object written by writeExecutionProfile. Returns false on a
/// malformed document; on success \p Key and \p Out are filled and the
/// profile is marked Valid.
bool parseExecutionProfile(const JsonValue &V, std::string &Key,
                           ExecutionProfile &Out);

} // namespace ramloc

#endif // RAMLOC_SIM_EXECUTIONPROFILE_H
