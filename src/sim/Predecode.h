//===- sim/Predecode.h - pre-resolved interpreter dispatch ------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter's per-step decode work — fetch-region classification,
/// instruction-class lookup, the TimingModel cycle switch, condition-gate
/// detection — depends only on (image, timing model), never on machine
/// state. predecodeImage() hoists all of it out of the hot loop into a
/// dense array parallel to Image::Instrs, built once per simulation, so
/// each step is an index, a handler dispatch on the pre-resolved opcode,
/// and pre-added cycle constants (flash wait states are folded into every
/// cycle figure; the RAM-port contention stall stays dynamic because it
/// depends on the executed load's data address).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_SIM_PREDECODE_H
#define RAMLOC_SIM_PREDECODE_H

#include "isa/Timing.h"
#include "layout/Image.h"

#include <cstdint>
#include <vector>

namespace ramloc {

/// One pre-resolved instruction: everything the interpreter's hot loop
/// needs that does not depend on machine state.
struct DecodedInstr {
  /// The placed instruction, for operand access in the handlers.
  const PlacedInstr *P = nullptr;
  /// Fall-through successor (Addr + Size).
  uint32_t NextAddr = 0;
  /// Resolved branch target / literal-pool slot (copy of P->TargetAddr).
  uint32_t TargetAddr = 0;
  /// Cycle cost with flash wait states already folded in.
  uint32_t CyclesNotTaken = 0;
  uint32_t CyclesTaken = 0;   ///< taken cost for conditional control flow
  uint32_t CyclesSkipped = 0; ///< condition-failed predicated execution
  /// FlashWaitStates when fetched from flash, else 0 (the per-fetch tax
  /// already included in the Cycles* fields, kept for stat attribution).
  uint32_t FlashWait = 0;
  /// RamContentionStall when fetched from RAM, else 0: the extra stall a
  /// RAM-data load pays on the shared RAM port (applied dynamically).
  uint32_t ContentionStall = 0;
  uint16_t FuncIdx = 0;
  uint16_t BlockIdx = 0;
  OpKind Kind = OpKind::Nop;
  Cond CondCode = Cond::AL;
  uint8_t Fetch = 0; ///< MemKind of the fetch: 0 = flash, 1 = RAM
  uint8_t Class = 0; ///< InstrClass of the opcode
  /// True for predicated non-branch instructions: the hot loop must gate
  /// them on condPasses before executing.
  bool CheckCond = false;
  bool IsBlockHead = false;
};

/// The dense PC-indexed decode table: DecodedInstr[i] describes
/// Image::Instrs[i], addressed through Image::instrIndexAt.
using DecodedImage = std::vector<DecodedInstr>;

/// Builds the decode table for \p Img under \p Timing.
DecodedImage predecodeImage(const Image &Img, const TimingModel &Timing);

} // namespace ramloc

#endif // RAMLOC_SIM_PREDECODE_H
