//===- sim/ProfileCache.h - shared execution-profile cache ------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, compute-once cache of ExecutionProfiles keyed by
/// execution key (image fingerprint + initial arguments). "Compute-once"
/// is the load-bearing property: when a campaign fans one benchmark
/// across N devices concurrently, the first worker to reach an execution
/// key becomes its owner and simulates; every other worker blocks on that
/// key until the profile is published, then recosts. The grid therefore
/// performs exactly one full simulation per distinct execution no matter
/// how the scheduler interleaves the device axis — the invariant the
/// campaign run counters assert.
///
/// The cache also tallies how runs were satisfied (full simulations vs
/// recosts), which the campaign engine surfaces as diagnostics and the
/// perf harness turns into a throughput ratio.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_SIM_PROFILECACHE_H
#define RAMLOC_SIM_PROFILECACHE_H

#include "sim/ExecutionProfile.h"

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ramloc {

class ProfileCache {
public:
  /// How measurements through this cache were satisfied.
  struct Counters {
    uint64_t FullSims = 0; ///< runs that executed the interpreter
    uint64_t Recosts = 0;  ///< runs derived from a shared profile
  };

  /// Looks \p Key up. If another caller owns the key's computation, blocks
  /// until it publishes, then returns the profile (possibly nullptr when
  /// the owning run could not produce a valid one). If the key is
  /// untouched, returns nullptr with \p Owner set: the caller must
  /// simulate and then publish() exactly once (nullptr on failure), or
  /// every later acquirer of the key deadlocks.
  std::shared_ptr<const ExecutionProfile> acquire(const std::string &Key,
                                                  bool &Owner);

  /// Publishes the owner's result for \p Key and wakes all waiters.
  /// \p Profile may be nullptr (the run faulted or hit the cycle limit);
  /// waiters then fall back to their own full simulations.
  void publish(const std::string &Key,
               std::shared_ptr<const ExecutionProfile> Profile);

  /// Non-blocking insert of an already-computed profile (disk preload).
  /// Keys already present are left untouched.
  void preload(const std::string &Key,
               std::shared_ptr<const ExecutionProfile> Profile);

  void noteFullSim();
  void noteRecost();
  Counters counters() const;

  /// Valid, ready profiles sorted by key (the persistence order).
  std::vector<std::pair<std::string, std::shared_ptr<const ExecutionProfile>>>
  snapshot() const;

  /// Number of valid, ready profiles.
  size_t size() const;

private:
  struct Entry {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    std::shared_ptr<const ExecutionProfile> Profile;
  };

  mutable std::mutex Mu;
  std::unordered_map<std::string, std::shared_ptr<Entry>> Map;
  Counters Stats;
};

} // namespace ramloc

#endif // RAMLOC_SIM_PROFILECACHE_H
