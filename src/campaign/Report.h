//===- campaign/Report.h - campaign report serialization --------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable (JSON, CSV) and human-readable (ASCII table) views of
/// a CampaignResult, plus the inverse direction: parsing a JSON report
/// back into JobResults so shard reports can be merged and cached results
/// reloaded. Serialized reports carry only deterministic fields —
/// identical campaigns produce byte-identical documents regardless of
/// thread count, cache state, or process count (sharded runs merge to the
/// unsharded bytes) — which CampaignTest asserts and downstream tooling
/// may rely on (e.g. diffing reports across commits).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_CAMPAIGN_REPORT_H
#define RAMLOC_CAMPAIGN_REPORT_H

#include "campaign/Campaign.h"

#include <string>
#include <vector>

namespace ramloc {

class JsonValue;
class JsonWriter;

/// The JSON report (schema "ramloc-campaign-v2"): a summary object plus
/// one entry per job with spec, base/opt measurements, deltas and
/// model-side numbers. Cache provenance (cache_hit, unique_runs) is
/// deliberately absent: it depends on which earlier runs populated a
/// cache, and reports must be byte-identical however a result was
/// obtained.
std::string campaignToJson(const CampaignResult &R, bool Pretty = true);

/// One CSV row per job, with a header line. Numbers use the same
/// round-trippable formatting as the JSON report.
std::string campaignToCsv(const CampaignResult &R);

/// A rendered ASCII table of per-job results (the CLI's default view).
std::string campaignToTable(const CampaignResult &R);

/// Serializes one JobResult as the report's per-job object (spec fields,
/// then base/opt/delta/model sections). Shared by campaignToJson and the
/// on-disk result cache, so both speak the same dialect.
void writeJobResult(JsonWriter &W, const JobResult &R);

/// Parses one per-job object back into \p Out. The derived fields
/// (config_hash, delta percentages) are ignored; CacheHit is left false.
/// Returns false and fills \p Error on a malformed object.
bool parseJobResult(const JsonValue &V, JobResult &Out,
                    std::string *Error = nullptr);

/// Parses a full JSON report produced by campaignToJson. The summary is
/// recomputed from the parsed jobs (not trusted from the document), so a
/// parsed-and-reserialized report is byte-identical to the original.
bool parseCampaignReport(const std::string &Doc, CampaignResult &Out,
                         std::string *Error = nullptr);

/// Merges shard reports by concatenating their job lists in argument
/// order and recomputing the summary. When the inputs are the shards
/// 1..N of one grid (in order), the merged report is byte-identical to
/// the report of the unsharded run.
bool mergeCampaignReports(const std::vector<std::string> &Docs,
                          CampaignResult &Out,
                          std::string *Error = nullptr);

/// Writes \p Text to \p Path. Returns false and fills \p Error on failure.
bool writeTextFile(const std::string &Path, const std::string &Text,
                   std::string *Error = nullptr);

/// Reads all of \p Path into \p Out. Returns false and fills \p Error on
/// failure.
bool readTextFile(const std::string &Path, std::string &Out,
                  std::string *Error = nullptr);

} // namespace ramloc

#endif // RAMLOC_CAMPAIGN_REPORT_H
