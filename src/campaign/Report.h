//===- campaign/Report.h - campaign report serialization --------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable (JSON, CSV) and human-readable (ASCII table) views of
/// a CampaignResult. Serialized reports carry only deterministic fields:
/// identical campaigns produce byte-identical documents regardless of
/// thread count, which CampaignTest asserts and downstream tooling may
/// rely on (e.g. diffing reports across commits).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_CAMPAIGN_REPORT_H
#define RAMLOC_CAMPAIGN_REPORT_H

#include "campaign/Campaign.h"

#include <string>

namespace ramloc {

/// The JSON report (schema "ramloc-campaign-v1"): a summary object plus
/// one entry per job with spec, base/opt measurements, deltas and
/// model-side numbers.
std::string campaignToJson(const CampaignResult &R, bool Pretty = true);

/// One CSV row per job, with a header line. Numbers use the same
/// round-trippable formatting as the JSON report.
std::string campaignToCsv(const CampaignResult &R);

/// A rendered ASCII table of per-job results (the CLI's default view).
std::string campaignToTable(const CampaignResult &R);

/// Writes \p Text to \p Path. Returns false and fills \p Error on failure.
bool writeTextFile(const std::string &Path, const std::string &Text,
                   std::string *Error = nullptr);

} // namespace ramloc

#endif // RAMLOC_CAMPAIGN_REPORT_H
