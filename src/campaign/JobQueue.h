//===- campaign/JobQueue.h - work-stealing thread pool ----------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread pool built from std::thread, mutexes and a
/// condition variable. Each worker owns a deque: it pops its own work
/// from the front and steals from the back of its siblings when idle,
/// so a handful of long pipeline runs (sha, rijndael) cannot strand the
/// other workers behind them. Campaign jobs are independent and write
/// to disjoint result slots, so the pool needs no futures or result
/// plumbing — callers submit closures and wait for quiescence.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_CAMPAIGN_JOBQUEUE_H
#define RAMLOC_CAMPAIGN_JOBQUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ramloc {

/// The pool. Workers start on construction and join on destruction;
/// destruction waits for all submitted jobs to finish.
class JobQueue {
public:
  using Job = std::function<void()>;

  /// \p Workers is clamped to at least 1.
  explicit JobQueue(unsigned Workers);
  ~JobQueue();

  JobQueue(const JobQueue &) = delete;
  JobQueue &operator=(const JobQueue &) = delete;

  /// Enqueues \p J (round-robin across worker deques). Safe to call from
  /// multiple threads and from inside running jobs.
  void submit(Job J);

  /// Blocks until every submitted job has finished executing.
  void wait();

  unsigned workerCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Jobs that ran on a deque other than the one they were pushed to.
  /// Diagnostics only (reported by ramloc-batch --verbose).
  size_t stealCount() const;

private:
  struct WorkerState {
    std::deque<Job> Deque;
    std::mutex Mu;
  };

  void workerLoop(unsigned Self);
  bool tryRunOne(unsigned Self);

  std::vector<std::unique_ptr<WorkerState>> Queues;
  std::vector<std::thread> Workers;

  /// Guards sleeping/waking and the counters below.
  mutable std::mutex StateMu;
  std::condition_variable WorkCv; ///< signalled when work arrives / stops
  std::condition_variable IdleCv; ///< signalled when Pending hits zero
  size_t Pending = 0;             ///< submitted but not yet finished
  size_t Steals = 0;
  bool Stopping = false;
  unsigned NextQueue = 0; ///< round-robin submission cursor
};

} // namespace ramloc

#endif // RAMLOC_CAMPAIGN_JOBQUEUE_H
