//===- campaign/CacheStore.cpp - persistent result cache -----------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "campaign/CacheStore.h"

#include "campaign/Report.h"
#include "power/DeviceRegistry.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/Trace.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

using namespace ramloc;

namespace {

constexpr const char *StoreSchema = "ramloc-cache-v1";
constexpr const char *ReportSchema = "ramloc-campaign-v2";
constexpr const char *StoreFileName = "results.jsonl";
constexpr const char *ProfileSchema = "ramloc-profiles-v1";
constexpr const char *ProfileFileName = "profiles.jsonl";
constexpr const char *IncumbentSchema = "ramloc-incumbents-v1";
constexpr const char *IncumbentFileName = "incumbents.jsonl";
/// Bump when the interpreter's architectural behaviour (instruction
/// semantics, block accounting, halt conventions) changes in a way that
/// alters recorded profiles. Timing/power changes do NOT bump it.
constexpr const char *SimSemanticsTag = "ramloc-sim-semantics-v1";

void hashBytes(uint64_t &H, std::string_view S) {
  H = fnv1a64(H, S);
  H ^= 0xff; // field separator so adjacent strings cannot alias
  H *= Fnv1aPrime;
}

void hashDouble(uint64_t &H, double V) {
  // Hash the canonical decimal spelling, not raw bits, so the fingerprint
  // is stable across platforms that agree on the value.
  hashBytes(H, jsonNumber(V));
}

std::string headerLine(const char *Schema, const std::string &Fingerprint) {
  JsonWriter W(/*Pretty=*/false);
  W.beginObject();
  W.field("schema", Schema);
  W.field("fingerprint", Fingerprint);
  W.endObject();
  return W.str() + "\n";
}

bool headerMatches(const JsonValue &V, const char *Schema,
                   const std::string &Fingerprint) {
  const JsonValue *S = V.find("schema");
  const JsonValue *Fp = V.find("fingerprint");
  return S && S->kind() == JsonValue::Kind::String &&
         S->string() == Schema && Fp &&
         Fp->kind() == JsonValue::Kind::String &&
         Fp->string() == Fingerprint;
}

bool endsWithNewline(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  if (!In || In.tellg() == std::streampos(0))
    return false;
  In.seekg(-1, std::ios::end);
  char C = 0;
  In.get(C);
  return C == '\n';
}

/// Whether appending whole lines to \p Path is safe *right now*: a valid
/// matching header and a newline-terminated tail. Checked at save() time,
/// not open() time, so a concurrent writer that created or repaired the
/// file since we opened it is appended to instead of clobbered.
bool fileAppendable(const std::string &Path, const char *Schema,
                    const std::string &Fingerprint) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::string Header;
  if (!std::getline(In, Header))
    return false;
  JsonValue V;
  if (!JsonValue::parse(Header, V) ||
      !headerMatches(V, Schema, Fingerprint))
    return false;
  return endsWithNewline(Path);
}

/// Atomic whole-file replacement: temporary in the same directory,
/// renamed over the target.
bool replaceFile(const std::string &Path, const std::string &Doc,
                 std::string *Error) {
  std::string Tmp = Path + ".tmp";
  if (!writeTextFile(Tmp, Doc, Error))
    return false;
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    if (Error)
      *Error = "cannot rename '" + Tmp + "' to '" + Path + "'";
    return false;
  }
  return true;
}

/// Appends \p Doc with O_APPEND and a single write(2) call, so the whole
/// batch of lines lands contiguously even when other processes append
/// concurrently (one write to a regular file is not interleaved by the
/// kernel; an ofstream would split a large Doc across several writes and
/// let another writer tear a record mid-line). A short write — ENOSPC or
/// a signal mid-transfer — is reported as an error; the partial tail
/// line it may leave is skipped by the next open().
bool appendToFile(const std::string &Path, const std::string &Doc,
                  std::string *Error) {
  int Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                  0644);
  if (Fd < 0) {
    if (Error)
      *Error = "cannot open '" + Path + "' for append";
    return false;
  }
  ssize_t Written = ::write(Fd, Doc.data(), Doc.size());
  ::close(Fd);
  if (Written != static_cast<ssize_t>(Doc.size())) {
    if (Error)
      *Error = "short append to '" + Path + "'";
    return false;
  }
  return true;
}

/// Hashes every device's power table and timing model into \p H: the
/// shared ingredient of the result and incumbent fingerprints.
void hashDeviceRegistry(uint64_t &H) {
  for (const DeviceInfo &D : deviceRegistry()) {
    hashBytes(H, D.Name);
    D.Model.forEachActiveValue([&H](double V) { hashDouble(H, V); });
    hashDouble(H, D.Model.SleepMilliWatts);
    hashDouble(H, D.Model.ClockHz);
    const TimingModel &T = D.Timing;
    for (unsigned V : {T.AluCycles, T.MulCycles, T.MlaCycles, T.DivCycles,
                       T.LoadCycles, T.StoreCycles, T.BranchRefillCycles,
                       T.BranchIssueCycles, T.CallCycles, T.CallRegCycles,
                       T.BxCycles, T.ItCycles, T.SkippedCycles,
                       T.NopCycles, T.RamContentionStall,
                       T.FlashWaitStates})
      hashBytes(H, formatString("%u", V));
  }
}

/// One serialized incumbent: the solve-group key, the model energy its
/// assignment achieves, and the assignment as a block bitstring.
std::string incumbentLine(const std::string &Group,
                          const IncumbentStore::Entry &E) {
  std::string Bits(E.InRam.size(), '0');
  for (size_t I = 0; I != E.InRam.size(); ++I)
    if (E.InRam[I])
      Bits[I] = '1';
  JsonWriter W(/*Pretty=*/false);
  W.beginObject();
  W.field("group", Group);
  W.field("energy_mj", E.EnergyMilliJoules);
  W.field("blocks", Bits);
  W.endObject();
  return W.str() + "\n";
}

bool parseIncumbent(const JsonValue &V, std::string &Group,
                    IncumbentStore::Entry &E) {
  if (V.kind() != JsonValue::Kind::Object)
    return false;
  const JsonValue *G = V.find("group");
  const JsonValue *En = V.find("energy_mj");
  const JsonValue *B = V.find("blocks");
  if (!G || G->kind() != JsonValue::Kind::String || !En ||
      En->kind() != JsonValue::Kind::Number || !B ||
      B->kind() != JsonValue::Kind::String)
    return false;
  Group = G->string();
  E.EnergyMilliJoules = En->number();
  const std::string &Bits = B->string();
  E.InRam.assign(Bits.size(), false);
  for (size_t I = 0; I != Bits.size(); ++I) {
    if (Bits[I] == '1')
      E.InRam[I] = true;
    else if (Bits[I] != '0')
      return false;
  }
  return !Group.empty();
}

} // namespace

std::string CacheStore::fingerprint() {
  uint64_t H = Fnv1aOffset;
  hashBytes(H, StoreSchema);
  hashBytes(H, ReportSchema);
  hashDeviceRegistry(H);
  return formatString("%016llx", static_cast<unsigned long long>(H));
}

std::string CacheStore::incumbentFingerprint() {
  uint64_t H = Fnv1aOffset;
  hashBytes(H, IncumbentSchema);
  hashDeviceRegistry(H);
  return formatString("%016llx", static_cast<unsigned long long>(H));
}

std::string CacheStore::profileFingerprint() {
  uint64_t H = Fnv1aOffset;
  hashBytes(H, ProfileSchema);
  hashBytes(H, SimSemanticsTag);
  return formatString("%016llx", static_cast<unsigned long long>(H));
}

bool CacheStore::open(const std::string &Dir, std::string *Error) {
  TraceSpan Span("cache.load", "cache");
  Loaded = Skipped = LoadedProfs = SkippedProfs = 0;
  LoadedIncs = SkippedIncs = 0;
  Invalidated = false;
  PersistedKeys.clear();
  PersistedProfKeys.clear();
  PersistedIncEnergy.clear();

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    if (Error)
      *Error = "cannot create cache directory '" + Dir +
               "': " + EC.message();
    return false;
  }
  Path = (std::filesystem::path(Dir) / StoreFileName).string();
  ProfPath = (std::filesystem::path(Dir) / ProfileFileName).string();
  IncPath = (std::filesystem::path(Dir) / IncumbentFileName).string();

  // --- results.jsonl ------------------------------------------------------
  {
    std::ifstream In(Path, std::ios::binary);
    bool SawHeader = false;
    if (In) {
      std::string Line;
      while (std::getline(In, Line)) {
        if (Line.empty())
          continue;
        JsonValue V;
        if (!JsonValue::parse(Line, V)) {
          // Corrupt or truncated line (e.g. a writer killed mid-append):
          // skip it and recompute those entries.
          ++Skipped;
          if (!SawHeader)
            break; // unreadable header: treat the file as absent
          continue;
        }
        if (!SawHeader) {
          SawHeader = true;
          if (!headerMatches(V, StoreSchema, fingerprint())) {
            Invalidated = true;
            break; // different world: discard everything
          }
          continue;
        }
        JobResult R;
        if (!parseJobResult(V, R)) {
          ++Skipped;
          continue;
        }
        // Concurrent appenders may have raced the same configuration to
        // disk; the records are deterministic, so duplicates are mere
        // bytes — first one counts, the rest are ignored until compact()
        // folds them away.
        std::string Key = R.Spec.cacheKey();
        if (!PersistedKeys.insert(Key).second)
          continue;
        Cache.insert(Key, R);
        ++Loaded;
      }
    }
    if (Invalidated)
      PersistedKeys.clear();
  }

  // --- profiles.jsonl -----------------------------------------------------
  {
    std::ifstream In(ProfPath, std::ios::binary);
    bool SawHeader = false;
    if (In) {
      std::string Line;
      while (std::getline(In, Line)) {
        if (Line.empty())
          continue;
        JsonValue V;
        if (!JsonValue::parse(Line, V)) {
          ++SkippedProfs;
          if (!SawHeader)
            break;
          continue;
        }
        if (!SawHeader) {
          SawHeader = true;
          if (!headerMatches(V, ProfileSchema, profileFingerprint()))
            break; // stale simulator semantics: drop, do not serve
          continue;
        }
        std::string Key;
        auto P = std::make_shared<ExecutionProfile>();
        if (!parseExecutionProfile(V, Key, *P)) {
          ++SkippedProfs;
          continue;
        }
        if (!PersistedProfKeys.insert(Key).second)
          continue;
        Profiles.preload(Key, std::move(P));
        ++LoadedProfs;
      }
    }
  }

  // --- incumbents.jsonl ---------------------------------------------------
  {
    std::ifstream In(IncPath, std::ios::binary);
    bool SawHeader = false;
    if (In) {
      std::string Line;
      while (std::getline(In, Line)) {
        if (Line.empty())
          continue;
        JsonValue V;
        if (!JsonValue::parse(Line, V)) {
          ++SkippedIncs;
          if (!SawHeader)
            break;
          continue;
        }
        if (!SawHeader) {
          SawHeader = true;
          if (!headerMatches(V, IncumbentSchema, incumbentFingerprint()))
            break; // different model world: seeds would only miss
          continue;
        }
        std::string Group;
        IncumbentStore::Entry E;
        if (!parseIncumbent(V, Group, E)) {
          ++SkippedIncs;
          continue;
        }
        // Concurrent appenders race improved entries to disk; offer()'s
        // best-wins rule folds duplicates whatever order they load in.
        Incumbents.offer(Group, E.InRam, E.EnergyMilliJoules);
        auto It = PersistedIncEnergy.find(Group);
        if (It == PersistedIncEnergy.end())
          PersistedIncEnergy.emplace(Group, E.EnergyMilliJoules);
        else
          It->second = std::min(It->second, E.EnergyMilliJoules);
        ++LoadedIncs;
      }
    }
  }
  return true;
}

bool CacheStore::rewriteResults(std::string *Error) {
  std::string Doc = headerLine(StoreSchema, fingerprint());
  std::set<std::string> Keys;
  for (const auto &[Key, R] : Cache.snapshot()) {
    // Failures are not durable: they may stem from a bug the next build
    // fixes, and the fingerprint tracks the device tables, not the code.
    // Serving a stale failure forever is worse than re-running the job.
    if (!R.ok())
      continue;
    JsonWriter W(/*Pretty=*/false);
    writeJobResult(W, R);
    Doc += W.str() + "\n";
    Keys.insert(Key);
  }
  if (!replaceFile(Path, Doc, Error))
    return false;
  PersistedKeys = std::move(Keys);
  return true;
}

bool CacheStore::appendResults(std::string *Error) {
  std::string Doc;
  std::vector<std::string> NewKeys;
  for (const auto &[Key, R] : Cache.snapshot()) {
    if (!R.ok() || PersistedKeys.count(Key))
      continue;
    JsonWriter W(/*Pretty=*/false);
    writeJobResult(W, R);
    Doc += W.str() + "\n";
    NewKeys.push_back(Key);
  }
  if (Doc.empty())
    return true;
  if (!appendToFile(Path, Doc, Error))
    return false;
  PersistedKeys.insert(NewKeys.begin(), NewKeys.end());
  return true;
}

bool CacheStore::rewriteProfiles(std::string *Error) {
  std::string Doc = headerLine(ProfileSchema, profileFingerprint());
  std::set<std::string> Keys;
  for (const auto &[Key, P] : Profiles.snapshot()) {
    JsonWriter W(/*Pretty=*/false);
    writeExecutionProfile(W, Key, *P);
    Doc += W.str() + "\n";
    Keys.insert(Key);
  }
  if (!replaceFile(ProfPath, Doc, Error))
    return false;
  PersistedProfKeys = std::move(Keys);
  return true;
}

bool CacheStore::appendProfiles(std::string *Error) {
  std::string Doc;
  std::vector<std::string> NewKeys;
  for (const auto &[Key, P] : Profiles.snapshot()) {
    if (PersistedProfKeys.count(Key))
      continue;
    JsonWriter W(/*Pretty=*/false);
    writeExecutionProfile(W, Key, *P);
    Doc += W.str() + "\n";
    NewKeys.push_back(Key);
  }
  if (Doc.empty())
    return true;
  if (!appendToFile(ProfPath, Doc, Error))
    return false;
  PersistedProfKeys.insert(NewKeys.begin(), NewKeys.end());
  return true;
}

bool CacheStore::rewriteIncumbents(std::string *Error) {
  std::string Doc = headerLine(IncumbentSchema, incumbentFingerprint());
  std::map<std::string, double> Energies;
  for (const auto &[Group, E] : Incumbents.snapshot()) {
    Doc += incumbentLine(Group, E);
    Energies.emplace(Group, E.EnergyMilliJoules);
  }
  if (!replaceFile(IncPath, Doc, Error))
    return false;
  PersistedIncEnergy = std::move(Energies);
  return true;
}

bool CacheStore::appendIncumbents(std::string *Error) {
  std::string Doc;
  std::vector<std::pair<std::string, double>> NewEnergies;
  for (const auto &[Group, E] : Incumbents.snapshot()) {
    // Only improvements hit the disk: load-time best-wins folding makes
    // a re-appended better entry supersede the old line without a
    // rewrite.
    auto It = PersistedIncEnergy.find(Group);
    if (It != PersistedIncEnergy.end() &&
        E.EnergyMilliJoules >= It->second)
      continue;
    Doc += incumbentLine(Group, E);
    NewEnergies.push_back({Group, E.EnergyMilliJoules});
  }
  if (Doc.empty())
    return true;
  if (!appendToFile(IncPath, Doc, Error))
    return false;
  for (auto &[Group, Energy] : NewEnergies)
    PersistedIncEnergy[Group] = Energy;
  return true;
}

bool CacheStore::save(std::string *Error) {
  TraceSpan Span("cache.append", "cache");
  if (Path.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  if (!(fileAppendable(Path, StoreSchema, fingerprint())
            ? appendResults(Error)
            : rewriteResults(Error)))
    return false;
  if (!(fileAppendable(ProfPath, ProfileSchema, profileFingerprint())
            ? appendProfiles(Error)
            : rewriteProfiles(Error)))
    return false;
  return fileAppendable(IncPath, IncumbentSchema, incumbentFingerprint())
             ? appendIncumbents(Error)
             : rewriteIncumbents(Error);
}

bool CacheStore::compact(std::string *Error) {
  TraceSpan Span("cache.compact", "cache");
  if (Path.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  return rewriteResults(Error) && rewriteProfiles(Error) &&
         rewriteIncumbents(Error);
}

bool CacheStore::compactIncumbents(std::string *Error) {
  TraceSpan Span("cache.compact", "cache");
  if (IncPath.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  return rewriteIncumbents(Error);
}

bool CacheStore::gcProfiles(uint64_t MaxBytes, ProfileGcStats &Stats,
                            std::string *Error) {
  TraceSpan Span("cache.compact", "cache");
  if (ProfPath.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  Stats = ProfileGcStats();

  // Collect the surviving (key, raw line) pairs in file order. Lines are
  // kept verbatim — GC must not perturb bytes it decided to keep.
  std::vector<std::pair<std::string, std::string>> Entries;
  {
    std::ifstream In(ProfPath, std::ios::binary);
    bool SawHeader = false, HeaderOk = false;
    std::string Line;
    while (In && std::getline(In, Line)) {
      Stats.BytesBefore += Line.size() + 1;
      if (Line.empty())
        continue;
      if (!SawHeader) {
        SawHeader = true;
        JsonValue V;
        HeaderOk = JsonValue::parse(Line, V) &&
                   headerMatches(V, ProfileSchema, profileFingerprint());
        if (!HeaderOk)
          ++Stats.DroppedInvalid; // stale world: every entry goes
        continue;
      }
      if (!HeaderOk) {
        ++Stats.DroppedInvalid;
        continue;
      }
      JsonValue V;
      std::string Key;
      auto P = std::make_shared<ExecutionProfile>();
      if (!JsonValue::parse(Line, V) ||
          !parseExecutionProfile(V, Key, *P)) {
        ++Stats.DroppedInvalid;
        continue;
      }
      Entries.push_back({std::move(Key), Line});
    }
  }

  // Duplicate keys: concurrent appenders may have raced; the newest
  // (latest-appended) occurrence wins, matching what a load would use
  // after compaction.
  {
    std::set<std::string> Seen;
    std::vector<std::pair<std::string, std::string>> Deduped;
    for (auto It = Entries.rbegin(); It != Entries.rend(); ++It) {
      if (!Seen.insert(It->first).second) {
        ++Stats.DroppedInvalid;
        continue;
      }
      Deduped.push_back(std::move(*It));
    }
    std::reverse(Deduped.begin(), Deduped.end()); // back to file order
    Entries = std::move(Deduped);
  }

  // Size cap: evict from the front (oldest appends) until the rewritten
  // file — header plus surviving lines — fits.
  std::string Header = headerLine(ProfileSchema, profileFingerprint());
  if (MaxBytes != 0) {
    uint64_t Need = Header.size();
    for (const auto &[Key, Line] : Entries)
      Need += Line.size() + 1;
    size_t Drop = 0;
    while (Drop != Entries.size() && Need > MaxBytes) {
      Need -= Entries[Drop].second.size() + 1;
      ++Drop;
    }
    Stats.Evicted = Drop;
    Entries.erase(Entries.begin(),
                  Entries.begin() + static_cast<ptrdiff_t>(Drop));
  }

  std::string Doc = Header;
  std::set<std::string> Keys;
  for (const auto &[Key, Line] : Entries) {
    Doc += Line + "\n";
    Keys.insert(Key);
  }
  if (!replaceFile(ProfPath, Doc, Error))
    return false;
  Stats.Kept = Entries.size();
  Stats.BytesAfter = Doc.size();
  PersistedProfKeys = std::move(Keys);
  return true;
}
