//===- campaign/CacheStore.cpp - persistent result cache -----------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "campaign/CacheStore.h"

#include "campaign/Report.h"
#include "power/DeviceRegistry.h"
#include "support/FaultInjector.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

using namespace ramloc;

namespace {

constexpr const char *StoreSchema = "ramloc-cache-v1";
constexpr const char *ReportSchema = "ramloc-campaign-v2";
constexpr const char *StoreFileName = "results.jsonl";
constexpr const char *ProfileSchema = "ramloc-profiles-v1";
constexpr const char *ProfileFileName = "profiles.jsonl";
constexpr const char *IncumbentSchema = "ramloc-incumbents-v1";
constexpr const char *IncumbentFileName = "incumbents.jsonl";
constexpr const char *JournalSchema = "ramloc-progress-v1";
constexpr const char *JournalFileName = "progress.jsonl";
/// Bump when the interpreter's architectural behaviour (instruction
/// semantics, block accounting, halt conventions) changes in a way that
/// alters recorded profiles. Timing/power changes do NOT bump it.
constexpr const char *SimSemanticsTag = "ramloc-sim-semantics-v1";

void hashBytes(uint64_t &H, std::string_view S) {
  H = fnv1a64(H, S);
  H ^= 0xff; // field separator so adjacent strings cannot alias
  H *= Fnv1aPrime;
}

void hashDouble(uint64_t &H, double V) {
  // Hash the canonical decimal spelling, not raw bits, so the fingerprint
  // is stable across platforms that agree on the value.
  hashBytes(H, jsonNumber(V));
}

std::string headerLine(const char *Schema, const std::string &Fingerprint) {
  JsonWriter W(/*Pretty=*/false);
  W.beginObject();
  W.field("schema", Schema);
  W.field("fingerprint", Fingerprint);
  W.endObject();
  return W.str() + "\n";
}

/// The journal's header additionally pins the run configuration token:
/// resuming under different solver limits must recompute, not replay.
std::string journalHeaderLine(const std::string &Fingerprint,
                              const std::string &Config) {
  JsonWriter W(/*Pretty=*/false);
  W.beginObject();
  W.field("schema", JournalSchema);
  W.field("fingerprint", Fingerprint);
  W.field("config", Config);
  W.endObject();
  return W.str() + "\n";
}

bool headerMatches(const JsonValue &V, const char *Schema,
                   const std::string &Fingerprint) {
  const JsonValue *S = V.find("schema");
  const JsonValue *Fp = V.find("fingerprint");
  return S && S->kind() == JsonValue::Kind::String &&
         S->string() == Schema && Fp &&
         Fp->kind() == JsonValue::Kind::String &&
         Fp->string() == Fingerprint;
}

bool endsWithNewline(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  if (!In || In.tellg() == std::streampos(0))
    return false;
  In.seekg(-1, std::ios::end);
  char C = 0;
  In.get(C);
  return C == '\n';
}

/// Whether appending whole lines to \p Path is safe *right now*: a valid
/// matching header and a newline-terminated tail. Checked at save() time,
/// not open() time, so a concurrent writer that created or repaired the
/// file since we opened it is appended to instead of clobbered.
bool fileAppendable(const std::string &Path, const char *Schema,
                    const std::string &Fingerprint) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::string Header;
  if (!std::getline(In, Header))
    return false;
  JsonValue V;
  if (!JsonValue::parse(Header, V) ||
      !headerMatches(V, Schema, Fingerprint))
    return false;
  return endsWithNewline(Path);
}

/// Atomic whole-file replacement: temporary in the same directory,
/// renamed over the target. The temporary's name carries the writer's
/// PID: `--shard` runs sharing one cache directory may repair the same
/// file concurrently, and with a fixed ".tmp" name one writer's rename
/// could ship a half-written temporary belonging to another. Distinct
/// names make each rename atomic over its own complete document;
/// last-rename-wins is then safe because every writer produces a valid
/// file.
bool replaceFile(const std::string &Path, const std::string &Doc,
                 std::string *Error) {
  std::string Tmp =
      Path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  if (!writeTextFile(Tmp, Doc, Error))
    return false;
  // Fault site: the rename itself fails (e.g. EIO on the directory).
  bool RenameFailed = FaultInjector::shouldFail("cache.rename") ||
                      std::rename(Tmp.c_str(), Path.c_str()) != 0;
  if (RenameFailed) {
    std::remove(Tmp.c_str());
    if (Error)
      *Error = "cannot rename '" + Tmp + "' to '" + Path + "'";
    return false;
  }
  return true;
}

/// Appends \p Doc with O_APPEND and a single write(2) call, so the whole
/// batch of lines lands contiguously even when other processes append
/// concurrently (one write to a regular file is not interleaved by the
/// kernel; an ofstream would split a large Doc across several writes and
/// let another writer tear a record mid-line). A short write — ENOSPC or
/// a signal mid-transfer — is reported as an error; the partial tail
/// line it may leave is skipped by the next open().
bool appendToFile(const std::string &Path, const std::string &Doc,
                  std::string *Error) {
  // Fault site: the open itself fails (transient EIO / EMFILE class).
  if (FaultInjector::shouldFail("cache.append.eio")) {
    if (Error)
      *Error = "cannot open '" + Path + "' for append (injected EIO)";
    return false;
  }
  int Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                  0644);
  if (Fd < 0) {
    if (Error)
      *Error = "cannot open '" + Path + "' for append";
    return false;
  }
  // Fault site: a short write — half the batch actually lands on disk,
  // exactly the torn-tail shape ENOSPC or a mid-transfer signal leaves.
  // The injected partial data is real: the load-time tail skip and the
  // retry path's line termination must cope with it, not a simulation
  // of it.
  size_t ToWrite = Doc.size();
  if (FaultInjector::shouldFail("cache.append.short"))
    ToWrite = Doc.size() / 2;
  ssize_t Written = ::write(Fd, Doc.data(), ToWrite);
  ::close(Fd);
  if (Written != static_cast<ssize_t>(Doc.size())) {
    if (Error)
      *Error = "short append to '" + Path + "'";
    return false;
  }
  return true;
}

/// Bounded, jittered retry around one transient-I/O operation. \p Op is
/// attempted up to three times; every re-attempt bumps the
/// `cachestore.retries` counter and sleeps a doubling ~1-3 ms backoff
/// with deterministic jitter (seeded from \p Site, so tests replay). The
/// operation owns its own cleanup between attempts.
template <typename Fn> bool withRetries(Fn &&Op, const std::string &Site) {
  constexpr unsigned MaxAttempts = 3;
  SplitMix64 Jitter(fnv1a64(Site));
  for (unsigned Attempt = 0;; ++Attempt) {
    if (Op(Attempt))
      return true;
    if (Attempt + 1 == MaxAttempts)
      return false;
    globalMetrics().counter("cachestore.retries").add();
    unsigned DelayUs = (1000u << Attempt) +
                       static_cast<unsigned>(Jitter.nextBelow(1000));
    std::this_thread::sleep_for(std::chrono::microseconds(DelayUs));
  }
}

/// appendToFile with recovery. A failed attempt may have landed part of
/// \p Doc (a short write leaves a torn tail line), so every retry leads
/// with a newline: it terminates whatever junk the failure left, the
/// junk parses as one corrupt line the next load skips, and any complete
/// lines the partial write did land become duplicates the load's
/// first-wins rule folds away. Nothing is ever lost or fused.
bool appendWithRetries(const std::string &Path, const std::string &Doc,
                       std::string *Error) {
  return withRetries(
      [&](unsigned Attempt) {
        return appendToFile(Path, Attempt == 0 ? Doc : "\n" + Doc, Error);
      },
      Path);
}

/// replaceFile with recovery: the temporary is rebuilt from scratch each
/// attempt, so a failed write or rename leaves nothing to clean up but
/// the temp file replaceFile already removed.
bool replaceWithRetries(const std::string &Path, const std::string &Doc,
                        std::string *Error) {
  return withRetries(
      [&](unsigned) { return replaceFile(Path, Doc, Error); }, Path);
}

/// Hashes every device's power table and timing model into \p H: the
/// shared ingredient of the result and incumbent fingerprints.
void hashDeviceRegistry(uint64_t &H) {
  for (const DeviceInfo &D : deviceRegistry()) {
    hashBytes(H, D.Name);
    D.Model.forEachActiveValue([&H](double V) { hashDouble(H, V); });
    hashDouble(H, D.Model.SleepMilliWatts);
    hashDouble(H, D.Model.ClockHz);
    const TimingModel &T = D.Timing;
    for (unsigned V : {T.AluCycles, T.MulCycles, T.MlaCycles, T.DivCycles,
                       T.LoadCycles, T.StoreCycles, T.BranchRefillCycles,
                       T.BranchIssueCycles, T.CallCycles, T.CallRegCycles,
                       T.BxCycles, T.ItCycles, T.SkippedCycles,
                       T.NopCycles, T.RamContentionStall,
                       T.FlashWaitStates})
      hashBytes(H, formatString("%u", V));
  }
}

/// One serialized incumbent: the solve-group key, the model energy its
/// assignment achieves, and the assignment as a block bitstring.
std::string incumbentLine(const std::string &Group,
                          const IncumbentStore::Entry &E) {
  std::string Bits(E.InRam.size(), '0');
  for (size_t I = 0; I != E.InRam.size(); ++I)
    if (E.InRam[I])
      Bits[I] = '1';
  JsonWriter W(/*Pretty=*/false);
  W.beginObject();
  W.field("group", Group);
  W.field("energy_mj", E.EnergyMilliJoules);
  W.field("blocks", Bits);
  W.endObject();
  return W.str() + "\n";
}

bool parseIncumbent(const JsonValue &V, std::string &Group,
                    IncumbentStore::Entry &E) {
  if (V.kind() != JsonValue::Kind::Object)
    return false;
  const JsonValue *G = V.find("group");
  const JsonValue *En = V.find("energy_mj");
  const JsonValue *B = V.find("blocks");
  if (!G || G->kind() != JsonValue::Kind::String || !En ||
      En->kind() != JsonValue::Kind::Number || !B ||
      B->kind() != JsonValue::Kind::String)
    return false;
  Group = G->string();
  E.EnergyMilliJoules = En->number();
  const std::string &Bits = B->string();
  E.InRam.assign(Bits.size(), false);
  for (size_t I = 0; I != Bits.size(); ++I) {
    if (Bits[I] == '1')
      E.InRam[I] = true;
    else if (Bits[I] != '0')
      return false;
  }
  return !Group.empty();
}

} // namespace

std::string CacheStore::fingerprint() {
  uint64_t H = Fnv1aOffset;
  hashBytes(H, StoreSchema);
  hashBytes(H, ReportSchema);
  hashDeviceRegistry(H);
  return formatString("%016llx", static_cast<unsigned long long>(H));
}

std::string CacheStore::incumbentFingerprint() {
  uint64_t H = Fnv1aOffset;
  hashBytes(H, IncumbentSchema);
  hashDeviceRegistry(H);
  return formatString("%016llx", static_cast<unsigned long long>(H));
}

std::string CacheStore::profileFingerprint() {
  uint64_t H = Fnv1aOffset;
  hashBytes(H, ProfileSchema);
  hashBytes(H, SimSemanticsTag);
  return formatString("%016llx", static_cast<unsigned long long>(H));
}

bool CacheStore::open(const std::string &Dir, std::string *Error) {
  TraceSpan Span("cache.load", "cache");
  Loaded = Skipped = LoadedProfs = SkippedProfs = 0;
  LoadedIncs = SkippedIncs = 0;
  Invalidated = false;
  PersistedKeys.clear();
  PersistedProfKeys.clear();
  PersistedIncEnergy.clear();

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    if (Error)
      *Error = "cannot create cache directory '" + Dir +
               "': " + EC.message();
    return false;
  }
  Path = (std::filesystem::path(Dir) / StoreFileName).string();
  ProfPath = (std::filesystem::path(Dir) / ProfileFileName).string();
  IncPath = (std::filesystem::path(Dir) / IncumbentFileName).string();

  // --- results.jsonl ------------------------------------------------------
  {
    std::ifstream In(Path, std::ios::binary);
    bool SawHeader = false;
    if (In) {
      std::string Line;
      while (std::getline(In, Line)) {
        if (Line.empty())
          continue;
        JsonValue V;
        if (!JsonValue::parse(Line, V)) {
          // Corrupt or truncated line (e.g. a writer killed mid-append):
          // skip it and recompute those entries.
          ++Skipped;
          if (!SawHeader)
            break; // unreadable header: treat the file as absent
          continue;
        }
        if (!SawHeader) {
          SawHeader = true;
          if (!headerMatches(V, StoreSchema, fingerprint())) {
            Invalidated = true;
            break; // different world: discard everything
          }
          continue;
        }
        JobResult R;
        if (!parseJobResult(V, R)) {
          ++Skipped;
          continue;
        }
        // Degraded or failed entries are never servable from this store
        // (we never write them; an external tool may have). Skipped
        // *before* the dedup insert, so a valid Optimal entry appended
        // later for the same key still loads.
        if (!R.ok() || R.SolveOutcome != SolveStatus::Optimal) {
          ++Skipped;
          continue;
        }
        // Concurrent appenders may have raced the same configuration to
        // disk; the records are deterministic, so duplicates are mere
        // bytes — first one counts, the rest are ignored until compact()
        // folds them away.
        std::string Key = R.Spec.cacheKey();
        if (!PersistedKeys.insert(Key).second)
          continue;
        Cache.insert(Key, R);
        ++Loaded;
      }
    }
    if (Invalidated)
      PersistedKeys.clear();
  }

  // --- profiles.jsonl -----------------------------------------------------
  {
    std::ifstream In(ProfPath, std::ios::binary);
    bool SawHeader = false;
    if (In) {
      std::string Line;
      while (std::getline(In, Line)) {
        if (Line.empty())
          continue;
        JsonValue V;
        if (!JsonValue::parse(Line, V)) {
          ++SkippedProfs;
          if (!SawHeader)
            break;
          continue;
        }
        if (!SawHeader) {
          SawHeader = true;
          if (!headerMatches(V, ProfileSchema, profileFingerprint()))
            break; // stale simulator semantics: drop, do not serve
          continue;
        }
        std::string Key;
        auto P = std::make_shared<ExecutionProfile>();
        if (!parseExecutionProfile(V, Key, *P)) {
          ++SkippedProfs;
          continue;
        }
        if (!PersistedProfKeys.insert(Key).second)
          continue;
        Profiles.preload(Key, std::move(P));
        ++LoadedProfs;
      }
    }
  }

  // --- incumbents.jsonl ---------------------------------------------------
  {
    std::ifstream In(IncPath, std::ios::binary);
    bool SawHeader = false;
    if (In) {
      std::string Line;
      while (std::getline(In, Line)) {
        if (Line.empty())
          continue;
        JsonValue V;
        if (!JsonValue::parse(Line, V)) {
          ++SkippedIncs;
          if (!SawHeader)
            break;
          continue;
        }
        if (!SawHeader) {
          SawHeader = true;
          if (!headerMatches(V, IncumbentSchema, incumbentFingerprint()))
            break; // different model world: seeds would only miss
          continue;
        }
        std::string Group;
        IncumbentStore::Entry E;
        if (!parseIncumbent(V, Group, E)) {
          ++SkippedIncs;
          continue;
        }
        // Concurrent appenders race improved entries to disk; offer()'s
        // best-wins rule folds duplicates whatever order they load in.
        Incumbents.offer(Group, E.InRam, E.EnergyMilliJoules);
        auto It = PersistedIncEnergy.find(Group);
        if (It == PersistedIncEnergy.end())
          PersistedIncEnergy.emplace(Group, E.EnergyMilliJoules);
        else
          It->second = std::min(It->second, E.EnergyMilliJoules);
        ++LoadedIncs;
      }
    }
  }
  return true;
}

bool CacheStore::rewriteResults(std::string *Error) {
  std::string Doc = headerLine(StoreSchema, fingerprint());
  std::set<std::string> Keys;
  for (const auto &[Key, R] : Cache.snapshot()) {
    // Failures are not durable: they may stem from a bug the next build
    // fixes, and the fingerprint tracks the device tables, not the code.
    // Serving a stale failure forever is worse than re-running the job.
    // Degraded (limit-truncated) results follow the same rule — a
    // best-effort answer must not be served where a later unlimited run
    // could compute the true optimum; the journal, not this cache, is
    // where degraded results persist.
    if (!R.ok() || R.SolveOutcome != SolveStatus::Optimal)
      continue;
    JsonWriter W(/*Pretty=*/false);
    writeJobResult(W, R);
    Doc += W.str() + "\n";
    Keys.insert(Key);
  }
  if (!replaceWithRetries(Path, Doc, Error))
    return false;
  PersistedKeys = std::move(Keys);
  return true;
}

bool CacheStore::appendResults(std::string *Error) {
  std::string Doc;
  std::vector<std::string> NewKeys;
  for (const auto &[Key, R] : Cache.snapshot()) {
    if (!R.ok() || R.SolveOutcome != SolveStatus::Optimal ||
        PersistedKeys.count(Key))
      continue;
    JsonWriter W(/*Pretty=*/false);
    writeJobResult(W, R);
    Doc += W.str() + "\n";
    NewKeys.push_back(Key);
  }
  if (Doc.empty())
    return true;
  if (!appendWithRetries(Path, Doc, Error))
    return false;
  PersistedKeys.insert(NewKeys.begin(), NewKeys.end());
  return true;
}

bool CacheStore::rewriteProfiles(std::string *Error) {
  std::string Doc = headerLine(ProfileSchema, profileFingerprint());
  std::set<std::string> Keys;
  for (const auto &[Key, P] : Profiles.snapshot()) {
    JsonWriter W(/*Pretty=*/false);
    writeExecutionProfile(W, Key, *P);
    Doc += W.str() + "\n";
    Keys.insert(Key);
  }
  if (!replaceWithRetries(ProfPath, Doc, Error))
    return false;
  PersistedProfKeys = std::move(Keys);
  return true;
}

bool CacheStore::appendProfiles(std::string *Error) {
  std::string Doc;
  std::vector<std::string> NewKeys;
  for (const auto &[Key, P] : Profiles.snapshot()) {
    if (PersistedProfKeys.count(Key))
      continue;
    JsonWriter W(/*Pretty=*/false);
    writeExecutionProfile(W, Key, *P);
    Doc += W.str() + "\n";
    NewKeys.push_back(Key);
  }
  if (Doc.empty())
    return true;
  if (!appendWithRetries(ProfPath, Doc, Error))
    return false;
  PersistedProfKeys.insert(NewKeys.begin(), NewKeys.end());
  return true;
}

bool CacheStore::rewriteIncumbents(std::string *Error) {
  std::string Doc = headerLine(IncumbentSchema, incumbentFingerprint());
  std::map<std::string, double> Energies;
  for (const auto &[Group, E] : Incumbents.snapshot()) {
    Doc += incumbentLine(Group, E);
    Energies.emplace(Group, E.EnergyMilliJoules);
  }
  if (!replaceWithRetries(IncPath, Doc, Error))
    return false;
  PersistedIncEnergy = std::move(Energies);
  return true;
}

bool CacheStore::appendIncumbents(std::string *Error) {
  std::string Doc;
  std::vector<std::pair<std::string, double>> NewEnergies;
  for (const auto &[Group, E] : Incumbents.snapshot()) {
    // Only improvements hit the disk: load-time best-wins folding makes
    // a re-appended better entry supersede the old line without a
    // rewrite.
    auto It = PersistedIncEnergy.find(Group);
    if (It != PersistedIncEnergy.end() &&
        E.EnergyMilliJoules >= It->second)
      continue;
    Doc += incumbentLine(Group, E);
    NewEnergies.push_back({Group, E.EnergyMilliJoules});
  }
  if (Doc.empty())
    return true;
  if (!appendWithRetries(IncPath, Doc, Error))
    return false;
  for (auto &[Group, Energy] : NewEnergies)
    PersistedIncEnergy[Group] = Energy;
  return true;
}

bool CacheStore::save(std::string *Error) {
  TraceSpan Span("cache.append", "cache");
  if (Path.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  if (!(fileAppendable(Path, StoreSchema, fingerprint())
            ? appendResults(Error)
            : rewriteResults(Error)))
    return false;
  if (!(fileAppendable(ProfPath, ProfileSchema, profileFingerprint())
            ? appendProfiles(Error)
            : rewriteProfiles(Error)))
    return false;
  return fileAppendable(IncPath, IncumbentSchema, incumbentFingerprint())
             ? appendIncumbents(Error)
             : rewriteIncumbents(Error);
}

bool CacheStore::compact(std::string *Error) {
  TraceSpan Span("cache.compact", "cache");
  if (Path.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  return rewriteResults(Error) && rewriteProfiles(Error) &&
         rewriteIncumbents(Error);
}

bool CacheStore::compactIncumbents(std::string *Error) {
  TraceSpan Span("cache.compact", "cache");
  if (IncPath.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  return rewriteIncumbents(Error);
}

bool CacheStore::gcProfiles(uint64_t MaxBytes, ProfileGcStats &Stats,
                            std::string *Error) {
  TraceSpan Span("cache.compact", "cache");
  if (ProfPath.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  Stats = ProfileGcStats();

  // Collect the surviving (key, raw line) pairs in file order. Lines are
  // kept verbatim — GC must not perturb bytes it decided to keep.
  std::vector<std::pair<std::string, std::string>> Entries;
  {
    std::ifstream In(ProfPath, std::ios::binary);
    bool SawHeader = false, HeaderOk = false;
    std::string Line;
    while (In && std::getline(In, Line)) {
      Stats.BytesBefore += Line.size() + 1;
      if (Line.empty())
        continue;
      if (!SawHeader) {
        SawHeader = true;
        JsonValue V;
        HeaderOk = JsonValue::parse(Line, V) &&
                   headerMatches(V, ProfileSchema, profileFingerprint());
        if (!HeaderOk)
          ++Stats.DroppedInvalid; // stale world: every entry goes
        continue;
      }
      if (!HeaderOk) {
        ++Stats.DroppedInvalid;
        continue;
      }
      JsonValue V;
      std::string Key;
      auto P = std::make_shared<ExecutionProfile>();
      if (!JsonValue::parse(Line, V) ||
          !parseExecutionProfile(V, Key, *P)) {
        ++Stats.DroppedInvalid;
        continue;
      }
      Entries.push_back({std::move(Key), Line});
    }
  }

  // Duplicate keys: concurrent appenders may have raced; the newest
  // (latest-appended) occurrence wins, matching what a load would use
  // after compaction.
  {
    std::set<std::string> Seen;
    std::vector<std::pair<std::string, std::string>> Deduped;
    for (auto It = Entries.rbegin(); It != Entries.rend(); ++It) {
      if (!Seen.insert(It->first).second) {
        ++Stats.DroppedInvalid;
        continue;
      }
      Deduped.push_back(std::move(*It));
    }
    std::reverse(Deduped.begin(), Deduped.end()); // back to file order
    Entries = std::move(Deduped);
  }

  // Size cap: evict from the front (oldest appends) until the rewritten
  // file — header plus surviving lines — fits.
  std::string Header = headerLine(ProfileSchema, profileFingerprint());
  if (MaxBytes != 0) {
    uint64_t Need = Header.size();
    for (const auto &[Key, Line] : Entries)
      Need += Line.size() + 1;
    size_t Drop = 0;
    while (Drop != Entries.size() && Need > MaxBytes) {
      Need -= Entries[Drop].second.size() + 1;
      ++Drop;
    }
    Stats.Evicted = Drop;
    Entries.erase(Entries.begin(),
                  Entries.begin() + static_cast<ptrdiff_t>(Drop));
  }

  std::string Doc = Header;
  std::set<std::string> Keys;
  for (const auto &[Key, Line] : Entries) {
    Doc += Line + "\n";
    Keys.insert(Key);
  }
  if (!replaceWithRetries(ProfPath, Doc, Error))
    return false;
  Stats.Kept = Entries.size();
  Stats.BytesAfter = Doc.size();
  PersistedProfKeys = std::move(Keys);
  return true;
}

bool CacheStore::beginJournal(const std::string &ConfigToken, bool Resume,
                              std::string *Error) {
  if (Path.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  JournalPath =
      (std::filesystem::path(Path).parent_path() / JournalFileName).string();
  JournalResults.clear();
  SkippedJournal = 0;

  std::string Header = journalHeaderLine(fingerprint(), ConfigToken);
  if (!Resume)
    return replaceWithRetries(JournalPath, Header, Error);

  bool HeaderOk = false;
  {
    std::ifstream In(JournalPath, std::ios::binary);
    bool SawHeader = false;
    std::set<std::string> Seen;
    std::string Line;
    while (In && std::getline(In, Line)) {
      if (Line.empty())
        continue;
      JsonValue V;
      if (!JsonValue::parse(Line, V)) {
        ++SkippedJournal;
        if (!SawHeader)
          break; // unreadable header: treat the journal as absent
        continue;
      }
      if (!SawHeader) {
        SawHeader = true;
        const JsonValue *Config = V.find("config");
        HeaderOk = headerMatches(V, JournalSchema, fingerprint()) &&
                   Config && Config->kind() == JsonValue::Kind::String &&
                   Config->string() == ConfigToken;
        if (!HeaderOk)
          break; // different world or solver limits: nothing to replay
        continue;
      }
      JobResult R;
      if (!parseJobResult(V, R)) {
        ++SkippedJournal; // torn tail of a killed writer, or corruption
        continue;
      }
      // A retried short write may have left the same job twice; the first
      // occurrence is the one the interrupted run reported.
      if (!Seen.insert(R.Spec.cacheKey()).second)
        continue;
      JournalResults.push_back(std::move(R));
    }
  }
  if (!HeaderOk)
    return replaceWithRetries(JournalPath, Header, Error);
  // Extend the existing journal. If the previous writer was killed
  // mid-append, its torn tail must not fuse with our first append —
  // terminate it now (the orphaned fragment parses as one corrupt line,
  // skipped by the next resume).
  if (!endsWithNewline(JournalPath))
    return appendWithRetries(JournalPath, "\n", Error);
  return true;
}

bool CacheStore::appendJournal(const JobResult &R, std::string *Error) {
  if (JournalPath.empty())
    return true;
  JsonWriter W(/*Pretty=*/false);
  writeJobResult(W, R);
  return appendWithRetries(JournalPath, W.str() + "\n", Error);
}

void CacheStore::clearJournal() {
  if (JournalPath.empty())
    return;
  std::remove(JournalPath.c_str());
  JournalPath.clear();
}
