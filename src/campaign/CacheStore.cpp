//===- campaign/CacheStore.cpp - persistent result cache -----------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "campaign/CacheStore.h"

#include "campaign/Report.h"
#include "power/DeviceRegistry.h"
#include "support/Checksum.h"
#include "support/FaultInjector.h"
#include "support/FileLock.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Trace.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

using namespace ramloc;

namespace {

// The v1 -> v2 bump is the framing change: every line (headers included)
// now carries a CRC32C prefix. Schemas feed the fingerprints, so v1
// stores can never match and are retired wholesale instead of half-read.
constexpr const char *StoreSchema = "ramloc-cache-v2";
constexpr const char *ReportSchema = "ramloc-campaign-v2";
constexpr const char *StoreFileName = "results.jsonl";
constexpr const char *ProfileSchema = "ramloc-profiles-v2";
constexpr const char *ProfileFileName = "profiles.jsonl";
constexpr const char *IncumbentSchema = "ramloc-incumbents-v2";
constexpr const char *IncumbentFileName = "incumbents.jsonl";
constexpr const char *JournalSchema = "ramloc-progress-v2";
constexpr const char *JournalFileName = "progress.jsonl";
/// Bump when the interpreter's architectural behaviour (instruction
/// semantics, block accounting, halt conventions) changes in a way that
/// alters recorded profiles. Timing/power changes do NOT bump it.
constexpr const char *SimSemanticsTag = "ramloc-sim-semantics-v1";

void hashBytes(uint64_t &H, std::string_view S) {
  H = fnv1a64(H, S);
  H ^= 0xff; // field separator so adjacent strings cannot alias
  H *= Fnv1aPrime;
}

void hashDouble(uint64_t &H, double V) {
  // Hash the canonical decimal spelling, not raw bits, so the fingerprint
  // is stable across platforms that agree on the value.
  hashBytes(H, jsonNumber(V));
}

/// One complete framed store line: CRC32C prefix, payload, newline.
std::string framedLine(const std::string &Payload) {
  return frameRecord(Payload) + "\n";
}

std::string headerLine(const char *Schema, const std::string &Fingerprint) {
  JsonWriter W(/*Pretty=*/false);
  W.beginObject();
  W.field("schema", Schema);
  W.field("fingerprint", Fingerprint);
  W.endObject();
  return framedLine(W.str());
}

/// The journal's header additionally pins the run configuration token:
/// resuming under different solver limits must recompute, not replay.
std::string journalHeaderLine(const std::string &Fingerprint,
                              const std::string &Config) {
  JsonWriter W(/*Pretty=*/false);
  W.beginObject();
  W.field("schema", JournalSchema);
  W.field("fingerprint", Fingerprint);
  W.field("config", Config);
  W.endObject();
  return framedLine(W.str());
}

bool headerMatches(const JsonValue &V, const char *Schema,
                   const std::string &Fingerprint) {
  const JsonValue *S = V.find("schema");
  const JsonValue *Fp = V.find("fingerprint");
  return S && S->kind() == JsonValue::Kind::String &&
         S->string() == Schema && Fp &&
         Fp->kind() == JsonValue::Kind::String &&
         Fp->string() == Fingerprint;
}

bool endsWithNewline(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  if (!In || In.tellg() == std::streampos(0))
    return false;
  In.seekg(-1, std::ios::end);
  char C = 0;
  In.get(C);
  return C == '\n';
}

/// How save() may add lines to \p Path *right now*. Checked at save()
/// time, not open() time, so a concurrent writer that created or
/// repaired the file since we opened it is appended to instead of
/// clobbered.
///
/// - Rewrite: missing, foreign, or damaged header — the file holds
///   nothing worth keeping, replace it wholesale.
/// - Append: matching header, newline-terminated tail.
/// - AppendAfterNewline: matching header but a torn tail line — another
///   writer's short write, or a SIGKILL mid-append. The torn fragment
///   must not demote the file to a rewrite: a rewrite here would
///   discard every record other writers appended since we opened.
///   Leading our append with a newline terminates the fragment into one
///   corrupt line the next load quarantines, and every durable record
///   survives.
enum class AppendState { Rewrite, Append, AppendAfterNewline };

AppendState appendableState(const std::string &Path, const char *Schema,
                            const std::string &Fingerprint) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return AppendState::Rewrite;
  std::string Header;
  if (!std::getline(In, Header))
    return AppendState::Rewrite;
  std::string_view Payload;
  if (!unframeRecord(Header, Payload))
    return AppendState::Rewrite;
  JsonValue V;
  if (!JsonValue::parse(std::string(Payload), V) ||
      !headerMatches(V, Schema, Fingerprint))
    return AppendState::Rewrite;
  return endsWithNewline(Path) ? AppendState::Append
                               : AppendState::AppendAfterNewline;
}

/// Atomic whole-file replacement: temporary in the same directory,
/// renamed over the target. The temporary's name carries the writer's
/// PID: `--shard` runs sharing one cache directory may repair the same
/// file concurrently, and with a fixed ".tmp" name one writer's rename
/// could ship a half-written temporary belonging to another. Distinct
/// names make each rename atomic over its own complete document;
/// last-rename-wins is then safe because every writer produces a valid
/// file.
bool replaceFile(const std::string &Path, const std::string &Doc,
                 std::string *Error) {
  std::string Tmp =
      Path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  if (!writeTextFile(Tmp, Doc, Error))
    return false;
  // Fault site: the rename itself fails (e.g. EIO on the directory).
  bool RenameFailed = FaultInjector::shouldFail("cache.rename") ||
                      std::rename(Tmp.c_str(), Path.c_str()) != 0;
  if (RenameFailed) {
    std::remove(Tmp.c_str());
    if (Error)
      *Error = "cannot rename '" + Tmp + "' to '" + Path + "'";
    return false;
  }
  return true;
}

/// Appends \p Doc with O_APPEND and a single write(2) call, so the whole
/// batch of lines lands contiguously even when other processes append
/// concurrently (one write to a regular file is not interleaved by the
/// kernel; an ofstream would split a large Doc across several writes and
/// let another writer tear a record mid-line). A short write — ENOSPC or
/// a signal mid-transfer — is reported as an error; the partial tail
/// line it may leave is skipped by the next open().
bool appendToFile(const std::string &Path, const std::string &Doc,
                  std::string *Error) {
  // Fault site: the open itself fails (transient EIO / EMFILE class).
  if (FaultInjector::shouldFail("cache.append.eio")) {
    if (Error)
      *Error = "cannot open '" + Path + "' for append (injected EIO)";
    return false;
  }
  int Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                  0644);
  if (Fd < 0) {
    if (Error)
      *Error = "cannot open '" + Path + "' for append";
    return false;
  }
  // Fault site: a short write — half the batch actually lands on disk,
  // exactly the torn-tail shape ENOSPC or a mid-transfer signal leaves.
  // The injected partial data is real: the load-time tail skip and the
  // retry path's line termination must cope with it, not a simulation
  // of it.
  size_t ToWrite = Doc.size();
  if (FaultInjector::shouldFail("cache.append.short"))
    ToWrite = Doc.size() / 2;
  ssize_t Written = ::write(Fd, Doc.data(), ToWrite);
  ::close(Fd);
  if (Written != static_cast<ssize_t>(Doc.size())) {
    if (Error)
      *Error = "short append to '" + Path + "'";
    return false;
  }
  return true;
}

/// Bounded, jittered retry around one transient-I/O operation. \p Op is
/// attempted up to three times; every re-attempt bumps the
/// `cachestore.retries` counter and sleeps a doubling ~1-3 ms backoff
/// with deterministic jitter (seeded from \p Site, so tests replay). The
/// operation owns its own cleanup between attempts.
template <typename Fn> bool withRetries(Fn &&Op, const std::string &Site) {
  constexpr unsigned MaxAttempts = 3;
  SplitMix64 Jitter(fnv1a64(Site));
  for (unsigned Attempt = 0;; ++Attempt) {
    if (Op(Attempt))
      return true;
    if (Attempt + 1 == MaxAttempts)
      return false;
    globalMetrics().counter("cachestore.retries").add();
    unsigned DelayUs = (1000u << Attempt) +
                       static_cast<unsigned>(Jitter.nextBelow(1000));
    std::this_thread::sleep_for(std::chrono::microseconds(DelayUs));
  }
}

/// appendToFile with recovery. A failed attempt may have landed part of
/// \p Doc (a short write leaves a torn tail line), so every retry leads
/// with a newline: it terminates whatever junk the failure left, the
/// junk fails its CRC as one quarantined line the next load skips, and
/// any complete lines the partial write did land become duplicates the
/// load's first-wins rule folds away. Nothing is ever lost or fused.
bool appendWithRetries(const std::string &Path, const std::string &Doc,
                       std::string *Error) {
  return withRetries(
      [&](unsigned Attempt) {
        return appendToFile(Path, Attempt == 0 ? Doc : "\n" + Doc, Error);
      },
      Path);
}

/// replaceFile with recovery: the temporary is rebuilt from scratch each
/// attempt, so a failed write or rename leaves nothing to clean up but
/// the temp file replaceFile already removed.
bool replaceWithRetries(const std::string &Path, const std::string &Doc,
                        std::string *Error) {
  return withRetries(
      [&](unsigned) { return replaceFile(Path, Doc, Error); }, Path);
}

/// replaceWithRetries under the file's rewrite lock (`<file>.lock`), so
/// two processes rebuilding the same store file serialize instead of
/// last-rename-wins silently dropping one side's survivors. Appends do
/// not take this lock — a single O_APPEND write of whole lines needs no
/// coordination, and the rewrite it might race produces a valid file
/// either way (the appended records re-append at the next save).
bool lockedReplace(const std::string &Path, const std::string &Doc,
                   unsigned LockWaitMs, std::string *Error) {
  FileLock Lock;
  if (!Lock.acquire(Path + ".lock", LockWaitMs, Error))
    return false;
  return replaceWithRetries(Path, Doc, Error);
}

/// Preserves damaged lines by appending them verbatim to the store
/// file's `.quarantine` sibling — corruption is evidence (of bad RAM, a
/// lying NFS server, a half-dead disk), and evidence should survive the
/// repair that removes it from the store. Deduplicated against the
/// quarantine's existing lines so re-opening the same damaged store does
/// not grow the file. Deliberately plain, unfaulted I/O: quarantining
/// runs on load paths, and routing it through the injected append sites
/// would shift every later site's deterministic call index.
class Quarantine {
public:
  explicit Quarantine(const std::string &StorePath)
      : QPath(StorePath + ".quarantine") {}

  void add(const std::string &RawLine) {
    if (RawLine.empty())
      return;
    if (!Loaded) {
      Loaded = true;
      std::ifstream In(QPath, std::ios::binary);
      std::string Line;
      while (In && std::getline(In, Line))
        Existing.insert(Line);
    }
    if (!Existing.insert(RawLine).second)
      return;
    std::ofstream Out(QPath, std::ios::binary | std::ios::app);
    Out << RawLine << "\n";
  }

private:
  std::string QPath;
  std::set<std::string> Existing;
  bool Loaded = false;
};

/// What one pass of scanStore() saw.
struct ScanStats {
  bool Present = false;       ///< Readable (exists, no injected EIO).
  bool SawFirstLine = false;  ///< Had at least one non-empty line.
  bool HeaderOk = false;      ///< Header framed, parsed, and accepted.
  bool HeaderDamaged = false; ///< Header failed its framing/CRC check.
  size_t CrcFailures = 0;     ///< Framing/CRC failures, header included.
  size_t Damaged = 0;         ///< Record lines not servable (CRC or JSON).
  size_t Stranded = 0;        ///< Record lines under an unusable header.
};

/// Walks one framed store file. The first non-empty line is the header:
/// it must unframe, parse, and satisfy \p AcceptHeader for any record to
/// be served; otherwise the remaining lines are merely counted as
/// stranded and \p OnRecord never fires. Record lines that fail the
/// frame check or JSON parse are counted, reported to the
/// `cachestore.crc_mismatch` metric (frame failures), and quarantined.
/// Read-side fault sites: `cache.load.eio` fails the whole read (the
/// file loads as absent), `cache.load.flip` flips one bit in a line
/// about to be checked — which the CRC must catch.
void scanStore(
    const std::string &FilePath,
    const std::function<bool(const JsonValue &)> &AcceptHeader,
    const std::function<void(const JsonValue &, const std::string &)>
        &OnRecord,
    ScanStats &S, std::string *RawHeader = nullptr) {
  if (FaultInjector::shouldFail("cache.load.eio"))
    return; // transient EIO: this load sees no file
  std::ifstream In(FilePath, std::ios::binary);
  if (!In)
    return;
  S.Present = true;
  Quarantine Q(FilePath);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    if (FaultInjector::shouldFail("cache.load.flip"))
      Line[Line.size() / 2] ^= 0x01;
    std::string_view Payload;
    if (!S.SawFirstLine) {
      S.SawFirstLine = true;
      if (!unframeRecord(Line, Payload)) {
        // A damaged header is counted but not quarantined: with no
        // trusted header there is no trusted world to sort lines into,
        // and the whole file is already preserved in place (loads never
        // modify the store; only a --repair rewrite would).
        S.HeaderDamaged = true;
        ++S.CrcFailures;
        globalMetrics().counter("cachestore.crc_mismatch").add();
        continue;
      }
      JsonValue V;
      if (!JsonValue::parse(std::string(Payload), V) || !AcceptHeader(V))
        continue; // stale header: keep scanning, serve nothing
      S.HeaderOk = true;
      if (RawHeader)
        *RawHeader = Line;
      continue;
    }
    if (!S.HeaderOk) {
      ++S.Stranded;
      continue;
    }
    if (!unframeRecord(Line, Payload)) {
      ++S.CrcFailures;
      ++S.Damaged;
      globalMetrics().counter("cachestore.crc_mismatch").add();
      Q.add(Line);
      continue;
    }
    JsonValue V;
    if (!JsonValue::parse(std::string(Payload), V)) {
      ++S.Damaged;
      Q.add(Line);
      continue;
    }
    OnRecord(V, Line);
  }
}

/// Hashes every device's power table and timing model into \p H: the
/// shared ingredient of the result and incumbent fingerprints.
void hashDeviceRegistry(uint64_t &H) {
  for (const DeviceInfo &D : deviceRegistry()) {
    hashBytes(H, D.Name);
    D.Model.forEachActiveValue([&H](double V) { hashDouble(H, V); });
    hashDouble(H, D.Model.SleepMilliWatts);
    hashDouble(H, D.Model.ClockHz);
    const TimingModel &T = D.Timing;
    for (unsigned V : {T.AluCycles, T.MulCycles, T.MlaCycles, T.DivCycles,
                       T.LoadCycles, T.StoreCycles, T.BranchRefillCycles,
                       T.BranchIssueCycles, T.CallCycles, T.CallRegCycles,
                       T.BxCycles, T.ItCycles, T.SkippedCycles,
                       T.NopCycles, T.RamContentionStall,
                       T.FlashWaitStates})
      hashBytes(H, formatString("%u", V));
  }
}

/// One serialized incumbent payload: the solve-group key, the model
/// energy its assignment achieves, and the assignment as a block
/// bitstring. Framing is the caller's job.
std::string incumbentPayload(const std::string &Group,
                             const IncumbentStore::Entry &E) {
  std::string Bits(E.InRam.size(), '0');
  for (size_t I = 0; I != E.InRam.size(); ++I)
    if (E.InRam[I])
      Bits[I] = '1';
  JsonWriter W(/*Pretty=*/false);
  W.beginObject();
  W.field("group", Group);
  W.field("energy_mj", E.EnergyMilliJoules);
  W.field("blocks", Bits);
  W.endObject();
  return W.str();
}

bool parseIncumbent(const JsonValue &V, std::string &Group,
                    IncumbentStore::Entry &E) {
  if (V.kind() != JsonValue::Kind::Object)
    return false;
  const JsonValue *G = V.find("group");
  const JsonValue *En = V.find("energy_mj");
  const JsonValue *B = V.find("blocks");
  if (!G || G->kind() != JsonValue::Kind::String || !En ||
      En->kind() != JsonValue::Kind::Number || !B ||
      B->kind() != JsonValue::Kind::String)
    return false;
  Group = G->string();
  E.EnergyMilliJoules = En->number();
  const std::string &Bits = B->string();
  E.InRam.assign(Bits.size(), false);
  for (size_t I = 0; I != Bits.size(); ++I) {
    if (Bits[I] == '1')
      E.InRam[I] = true;
    else if (Bits[I] != '0')
      return false;
  }
  return !Group.empty();
}

} // namespace

std::string CacheStore::fingerprint() {
  uint64_t H = Fnv1aOffset;
  hashBytes(H, StoreSchema);
  hashBytes(H, ReportSchema);
  hashDeviceRegistry(H);
  return formatString("%016llx", static_cast<unsigned long long>(H));
}

std::string CacheStore::incumbentFingerprint() {
  uint64_t H = Fnv1aOffset;
  hashBytes(H, IncumbentSchema);
  hashDeviceRegistry(H);
  return formatString("%016llx", static_cast<unsigned long long>(H));
}

std::string CacheStore::profileFingerprint() {
  uint64_t H = Fnv1aOffset;
  hashBytes(H, ProfileSchema);
  hashBytes(H, SimSemanticsTag);
  return formatString("%016llx", static_cast<unsigned long long>(H));
}

bool CacheStore::open(const std::string &Dir, std::string *Error) {
  TraceSpan Span("cache.load", "cache");
  Loaded = Skipped = LoadedProfs = SkippedProfs = 0;
  LoadedIncs = SkippedIncs = 0;
  CrcMismatches = 0;
  Invalidated = false;
  PersistedKeys.clear();
  PersistedProfKeys.clear();
  PersistedIncEnergy.clear();
  SweptTemps.clear();

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    if (Error)
      *Error = "cannot create cache directory '" + Dir +
               "': " + EC.message();
    return false;
  }
  Path = (std::filesystem::path(Dir) / StoreFileName).string();
  ProfPath = (std::filesystem::path(Dir) / ProfileFileName).string();
  IncPath = (std::filesystem::path(Dir) / IncumbentFileName).string();

  // Sweep orphaned rewrite temporaries: a writer killed between
  // temp-write and rename leaks `<file>.tmp.<pid>` forever. Only a dead
  // writer's temps go — a live shard's in-flight rewrite must not have
  // its temporary pulled out from under the rename (probed with
  // kill(pid, 0); EPERM means alive-but-not-ours, equally untouchable).
  {
    std::error_code DirEC;
    std::filesystem::directory_iterator It(Dir, DirEC);
    if (!DirEC) {
      for (const auto &Entry : It) {
        std::error_code StatEC;
        if (!Entry.is_regular_file(StatEC) || StatEC)
          continue;
        std::string Name = Entry.path().filename().string();
        size_t Pos = Name.rfind(".tmp.");
        if (Pos == std::string::npos || Pos + 5 >= Name.size())
          continue;
        std::string PidStr = Name.substr(Pos + 5);
        if (PidStr.find_first_not_of("0123456789") != std::string::npos)
          continue;
        long Pid = std::strtol(PidStr.c_str(), nullptr, 10);
        if (Pid <= 0 || Pid == static_cast<long>(::getpid()))
          continue;
        if (::kill(static_cast<pid_t>(Pid), 0) == 0 || errno == EPERM)
          continue; // writer still alive: its rename is coming
        std::error_code RmEC;
        std::filesystem::remove(Entry.path(), RmEC);
        if (!RmEC)
          SweptTemps.push_back(Name);
      }
    }
    std::sort(SweptTemps.begin(), SweptTemps.end());
  }

  // --- results.jsonl ------------------------------------------------------
  {
    ScanStats S;
    scanStore(
        Path,
        [](const JsonValue &V) {
          return headerMatches(V, StoreSchema, fingerprint());
        },
        [&](const JsonValue &V, const std::string &) {
          JobResult R;
          if (!parseJobResult(V, R)) {
            ++Skipped;
            return;
          }
          // Degraded or failed entries are never servable from this
          // store (we never write them; an external tool may have).
          // Skipped *before* the dedup insert, so a valid Optimal entry
          // appended later for the same key still loads.
          if (!R.ok() || R.SolveOutcome != SolveStatus::Optimal) {
            ++Skipped;
            return;
          }
          // Concurrent appenders may have raced the same configuration
          // to disk; the records are deterministic, so duplicates are
          // mere bytes — first one counts, the rest are ignored until
          // compact() folds them away.
          std::string Key = R.Spec.cacheKey();
          if (!PersistedKeys.insert(Key).second)
            return;
          Cache.insert(Key, R);
          ++Loaded;
        },
        S);
    Skipped += S.Damaged;
    CrcMismatches += S.CrcFailures;
    // A results file whose header is damaged, stale, or from another
    // schema generation is a different world: discard everything.
    Invalidated = S.SawFirstLine && !S.HeaderOk;
    if (Invalidated)
      PersistedKeys.clear();
  }

  // --- profiles.jsonl -----------------------------------------------------
  {
    ScanStats S;
    scanStore(
        ProfPath,
        [](const JsonValue &V) {
          // Stale simulator semantics: drop, do not serve.
          return headerMatches(V, ProfileSchema, profileFingerprint());
        },
        [&](const JsonValue &V, const std::string &) {
          std::string Key;
          auto P = std::make_shared<ExecutionProfile>();
          if (!parseExecutionProfile(V, Key, *P)) {
            ++SkippedProfs;
            return;
          }
          if (!PersistedProfKeys.insert(Key).second)
            return;
          Profiles.preload(Key, std::move(P));
          ++LoadedProfs;
        },
        S);
    SkippedProfs += S.Damaged;
    CrcMismatches += S.CrcFailures;
  }

  // --- incumbents.jsonl ---------------------------------------------------
  {
    ScanStats S;
    scanStore(
        IncPath,
        [](const JsonValue &V) {
          // Different model world: seeds would only miss.
          return headerMatches(V, IncumbentSchema, incumbentFingerprint());
        },
        [&](const JsonValue &V, const std::string &) {
          std::string Group;
          IncumbentStore::Entry E;
          if (!parseIncumbent(V, Group, E)) {
            ++SkippedIncs;
            return;
          }
          // Concurrent appenders race improved entries to disk;
          // offer()'s best-wins rule folds duplicates whatever order
          // they load in.
          Incumbents.offer(Group, E.InRam, E.EnergyMilliJoules);
          auto It = PersistedIncEnergy.find(Group);
          if (It == PersistedIncEnergy.end())
            PersistedIncEnergy.emplace(Group, E.EnergyMilliJoules);
          else
            It->second = std::min(It->second, E.EnergyMilliJoules);
          ++LoadedIncs;
        },
        S);
    SkippedIncs += S.Damaged;
    CrcMismatches += S.CrcFailures;
  }
  return true;
}

bool CacheStore::rewriteResults(std::string *Error) {
  std::string Doc = headerLine(StoreSchema, fingerprint());
  std::set<std::string> Keys;
  for (const auto &[Key, R] : Cache.snapshot()) {
    // Failures are not durable: they may stem from a bug the next build
    // fixes, and the fingerprint tracks the device tables, not the code.
    // Serving a stale failure forever is worse than re-running the job.
    // Degraded (limit-truncated) results follow the same rule — a
    // best-effort answer must not be served where a later unlimited run
    // could compute the true optimum; the journal, not this cache, is
    // where degraded results persist.
    if (!R.ok() || R.SolveOutcome != SolveStatus::Optimal)
      continue;
    JsonWriter W(/*Pretty=*/false);
    writeJobResult(W, R);
    Doc += framedLine(W.str());
    Keys.insert(Key);
  }
  if (!lockedReplace(Path, Doc, LockWaitMs, Error))
    return false;
  PersistedKeys = std::move(Keys);
  return true;
}

bool CacheStore::appendResults(bool TerminateTornTail, std::string *Error) {
  std::string Doc;
  std::vector<std::string> NewKeys;
  for (const auto &[Key, R] : Cache.snapshot()) {
    if (!R.ok() || R.SolveOutcome != SolveStatus::Optimal ||
        PersistedKeys.count(Key))
      continue;
    JsonWriter W(/*Pretty=*/false);
    writeJobResult(W, R);
    Doc += framedLine(W.str());
    NewKeys.push_back(Key);
  }
  if (Doc.empty())
    return true;
  if (!appendWithRetries(Path, TerminateTornTail ? "\n" + Doc : Doc, Error))
    return false;
  PersistedKeys.insert(NewKeys.begin(), NewKeys.end());
  return true;
}

bool CacheStore::rewriteProfiles(std::string *Error) {
  std::string Doc = headerLine(ProfileSchema, profileFingerprint());
  std::set<std::string> Keys;
  for (const auto &[Key, P] : Profiles.snapshot()) {
    JsonWriter W(/*Pretty=*/false);
    writeExecutionProfile(W, Key, *P);
    Doc += framedLine(W.str());
    Keys.insert(Key);
  }
  if (!lockedReplace(ProfPath, Doc, LockWaitMs, Error))
    return false;
  PersistedProfKeys = std::move(Keys);
  return true;
}

bool CacheStore::appendProfiles(bool TerminateTornTail, std::string *Error) {
  std::string Doc;
  std::vector<std::string> NewKeys;
  for (const auto &[Key, P] : Profiles.snapshot()) {
    if (PersistedProfKeys.count(Key))
      continue;
    JsonWriter W(/*Pretty=*/false);
    writeExecutionProfile(W, Key, *P);
    Doc += framedLine(W.str());
    NewKeys.push_back(Key);
  }
  if (Doc.empty())
    return true;
  if (!appendWithRetries(ProfPath, TerminateTornTail ? "\n" + Doc : Doc,
                         Error))
    return false;
  PersistedProfKeys.insert(NewKeys.begin(), NewKeys.end());
  return true;
}

bool CacheStore::rewriteIncumbents(std::string *Error) {
  std::string Doc = headerLine(IncumbentSchema, incumbentFingerprint());
  std::map<std::string, double> Energies;
  for (const auto &[Group, E] : Incumbents.snapshot()) {
    Doc += framedLine(incumbentPayload(Group, E));
    Energies.emplace(Group, E.EnergyMilliJoules);
  }
  if (!lockedReplace(IncPath, Doc, LockWaitMs, Error))
    return false;
  PersistedIncEnergy = std::move(Energies);
  return true;
}

bool CacheStore::appendIncumbents(bool TerminateTornTail,
                                  std::string *Error) {
  std::string Doc;
  std::vector<std::pair<std::string, double>> NewEnergies;
  for (const auto &[Group, E] : Incumbents.snapshot()) {
    // Only improvements hit the disk: load-time best-wins folding makes
    // a re-appended better entry supersede the old line without a
    // rewrite.
    auto It = PersistedIncEnergy.find(Group);
    if (It != PersistedIncEnergy.end() &&
        E.EnergyMilliJoules >= It->second)
      continue;
    Doc += framedLine(incumbentPayload(Group, E));
    NewEnergies.push_back({Group, E.EnergyMilliJoules});
  }
  if (Doc.empty())
    return true;
  if (!appendWithRetries(IncPath, TerminateTornTail ? "\n" + Doc : Doc,
                         Error))
    return false;
  for (auto &[Group, Energy] : NewEnergies)
    PersistedIncEnergy[Group] = Energy;
  return true;
}

bool CacheStore::save(std::string *Error) {
  TraceSpan Span("cache.append", "cache");
  if (Path.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  AppendState RS = appendableState(Path, StoreSchema, fingerprint());
  if (!(RS == AppendState::Rewrite
            ? rewriteResults(Error)
            : appendResults(RS == AppendState::AppendAfterNewline, Error)))
    return false;
  AppendState PS =
      appendableState(ProfPath, ProfileSchema, profileFingerprint());
  if (!(PS == AppendState::Rewrite
            ? rewriteProfiles(Error)
            : appendProfiles(PS == AppendState::AppendAfterNewline, Error)))
    return false;
  AppendState IS =
      appendableState(IncPath, IncumbentSchema, incumbentFingerprint());
  return IS == AppendState::Rewrite
             ? rewriteIncumbents(Error)
             : appendIncumbents(IS == AppendState::AppendAfterNewline,
                                Error);
}

bool CacheStore::compact(std::string *Error) {
  TraceSpan Span("cache.compact", "cache");
  if (Path.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  return rewriteResults(Error) && rewriteProfiles(Error) &&
         rewriteIncumbents(Error);
}

bool CacheStore::compactIncumbents(std::string *Error) {
  TraceSpan Span("cache.compact", "cache");
  if (IncPath.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  return rewriteIncumbents(Error);
}

bool CacheStore::gcProfiles(uint64_t MaxBytes, ProfileGcStats &Stats,
                            std::string *Error) {
  TraceSpan Span("cache.compact", "cache");
  if (ProfPath.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  Stats = ProfileGcStats();

  // The whole read-dedupe-rewrite cycle runs under the file's lock: a
  // concurrent GC or --repair reading the same generation would
  // otherwise decide survivorship from bytes the other is about to
  // replace.
  FileLock Lock;
  if (!Lock.acquire(ProfPath + ".lock", LockWaitMs, Error))
    return false;

  {
    std::error_code EC;
    uint64_t Size = std::filesystem::file_size(ProfPath, EC);
    Stats.BytesBefore = EC ? 0 : Size;
  }

  // Collect the surviving (key, raw line) pairs in file order. Lines are
  // kept verbatim, framing included — GC must not perturb bytes it
  // decided to keep.
  std::vector<std::pair<std::string, std::string>> Entries;
  {
    ScanStats S;
    scanStore(
        ProfPath,
        [](const JsonValue &V) {
          return headerMatches(V, ProfileSchema, profileFingerprint());
        },
        [&](const JsonValue &V, const std::string &Raw) {
          std::string Key;
          auto P = std::make_shared<ExecutionProfile>();
          if (!parseExecutionProfile(V, Key, *P)) {
            ++Stats.DroppedInvalid;
            return;
          }
          Entries.push_back({std::move(Key), Raw});
        },
        S);
    CrcMismatches += S.CrcFailures;
    Stats.DroppedInvalid += S.Damaged + S.Stranded;
    if (S.SawFirstLine && !S.HeaderOk)
      ++Stats.DroppedInvalid; // stale or damaged header: every entry goes
  }

  // Duplicate keys: concurrent appenders may have raced; the newest
  // (latest-appended) occurrence wins, matching what a load would use
  // after compaction.
  {
    std::set<std::string> Seen;
    std::vector<std::pair<std::string, std::string>> Deduped;
    for (auto It = Entries.rbegin(); It != Entries.rend(); ++It) {
      if (!Seen.insert(It->first).second) {
        ++Stats.DroppedInvalid;
        continue;
      }
      Deduped.push_back(std::move(*It));
    }
    std::reverse(Deduped.begin(), Deduped.end()); // back to file order
    Entries = std::move(Deduped);
  }

  // Size cap: evict from the front (oldest appends) until the rewritten
  // file — header plus surviving lines — fits.
  std::string Header = headerLine(ProfileSchema, profileFingerprint());
  if (MaxBytes != 0) {
    uint64_t Need = Header.size();
    for (const auto &[Key, Line] : Entries)
      Need += Line.size() + 1;
    size_t Drop = 0;
    while (Drop != Entries.size() && Need > MaxBytes) {
      Need -= Entries[Drop].second.size() + 1;
      ++Drop;
    }
    Stats.Evicted = Drop;
    Entries.erase(Entries.begin(),
                  Entries.begin() + static_cast<ptrdiff_t>(Drop));
  }

  std::string Doc = Header;
  std::set<std::string> Keys;
  for (const auto &[Key, Line] : Entries) {
    Doc += Line + "\n";
    Keys.insert(Key);
  }
  if (!replaceWithRetries(ProfPath, Doc, Error))
    return false;
  Stats.Kept = Entries.size();
  Stats.BytesAfter = Doc.size();
  PersistedProfKeys = std::move(Keys);
  return true;
}

bool CacheStore::beginJournal(const std::string &ConfigToken, bool Resume,
                              std::string *Error) {
  if (Path.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  JournalPath =
      (std::filesystem::path(Path).parent_path() / JournalFileName).string();
  JournalResults.clear();
  SkippedJournal = 0;

  std::string Header = journalHeaderLine(fingerprint(), ConfigToken);
  if (!Resume)
    return lockedReplace(JournalPath, Header, LockWaitMs, Error);

  ScanStats S;
  {
    std::set<std::string> Seen;
    scanStore(
        JournalPath,
        [&](const JsonValue &V) {
          // Different world or solver limits: nothing to replay.
          const JsonValue *Config = V.find("config");
          return headerMatches(V, JournalSchema, fingerprint()) && Config &&
                 Config->kind() == JsonValue::Kind::String &&
                 Config->string() == ConfigToken;
        },
        [&](const JsonValue &V, const std::string &) {
          JobResult R;
          if (!parseJobResult(V, R)) {
            ++SkippedJournal;
            return;
          }
          // A retried short write may have left the same job twice; the
          // first occurrence is the one the interrupted run reported.
          if (!Seen.insert(R.Spec.cacheKey()).second)
            return;
          JournalResults.push_back(std::move(R));
        },
        S);
    SkippedJournal += S.Damaged;
    CrcMismatches += S.CrcFailures;
  }
  if (!S.HeaderOk)
    return lockedReplace(JournalPath, Header, LockWaitMs, Error);
  // Extend the existing journal. If the previous writer was killed
  // mid-append, its torn tail must not fuse with our first append —
  // terminate it now (the orphaned fragment fails its CRC as one
  // quarantined line the next resume skips).
  if (!endsWithNewline(JournalPath))
    return appendWithRetries(JournalPath, "\n", Error);
  return true;
}

bool CacheStore::appendJournal(const JobResult &R, std::string *Error) {
  if (JournalPath.empty())
    return true;
  JsonWriter W(/*Pretty=*/false);
  writeJobResult(W, R);
  return appendWithRetries(JournalPath, framedLine(W.str()), Error);
}

void CacheStore::clearJournal() {
  if (JournalPath.empty())
    return;
  std::remove(JournalPath.c_str());
  JournalPath.clear();
}

bool CacheStore::fsck(bool Repair, FsckReport &Report, std::string *Error) {
  TraceSpan Span("cache.fsck", "cache");
  if (Path.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  Report = FsckReport();
  Report.OrphanedTemps = SweptTemps;

  std::string JPath =
      (std::filesystem::path(Path).parent_path() / JournalFileName)
          .string();

  // Walks one file into an FsckFile. KeyOf classifies a CRC-valid JSON
  // record: false means semantically unreadable (corrupt), true yields
  // the dedup key. RawValid collects servable lines verbatim for the
  // journal's repair rewrite.
  auto Walk =
      [&](const char *Name, const std::string &FPath,
          const std::function<bool(const JsonValue &)> &AcceptHeader,
          const std::function<bool(const JsonValue &, std::string &)>
              &KeyOf,
          std::string *RawHeader, std::vector<std::string> *RawValid) {
        FsckFile F;
        F.Name = Name;
        F.Path = FPath;
        ScanStats S;
        std::set<std::string> Keys;
        scanStore(
            FPath, AcceptHeader,
            [&](const JsonValue &V, const std::string &Raw) {
              std::string Key;
              if (!KeyOf(V, Key)) {
                ++F.Corrupt;
                return;
              }
              if (!Keys.insert(Key).second) {
                ++F.Duplicate;
                return;
              }
              ++F.Valid;
              if (RawValid)
                RawValid->push_back(Raw);
            },
            S, RawHeader);
        CrcMismatches += S.CrcFailures;
        F.Present = S.Present;
        F.HeaderOk = !S.SawFirstLine || S.HeaderOk;
        F.Corrupt += S.Damaged + (S.HeaderDamaged ? 1 : 0);
        F.Stale = S.Stranded;
        // A header that framed correctly but names another world is a
        // stale line, not a corrupt one.
        if (S.SawFirstLine && !S.HeaderOk && !S.HeaderDamaged)
          ++F.Stale;
        Report.Files.push_back(F);
        return F;
      };

  auto ResultKey = [](const JsonValue &V, std::string &Key) {
    JobResult R;
    if (!parseJobResult(V, R))
      return false;
    Key = R.Spec.cacheKey();
    return true;
  };

  FsckFile FR = Walk(
      "results", Path,
      [](const JsonValue &V) {
        return headerMatches(V, StoreSchema, fingerprint());
      },
      ResultKey, nullptr, nullptr);

  FsckFile FP = Walk(
      "profiles", ProfPath,
      [](const JsonValue &V) {
        return headerMatches(V, ProfileSchema, profileFingerprint());
      },
      [](const JsonValue &V, std::string &Key) {
        auto P = std::make_shared<ExecutionProfile>();
        return parseExecutionProfile(V, Key, *P);
      },
      nullptr, nullptr);

  FsckFile FI = Walk(
      "incumbents", IncPath,
      [](const JsonValue &V) {
        return headerMatches(V, IncumbentSchema, incumbentFingerprint());
      },
      [](const JsonValue &V, std::string &Key) {
        IncumbentStore::Entry E;
        return parseIncumbent(V, Key, E);
      },
      nullptr, nullptr);

  // The journal is checked under *any* configuration token: fsck is a
  // maintenance pass, and which solver limits an interrupted run used is
  // the resume path's business, not an integrity question.
  std::string JournalRawHeader;
  std::vector<std::string> JournalRawValid;
  FsckFile FJ = Walk(
      "progress", JPath,
      [](const JsonValue &V) {
        const JsonValue *Config = V.find("config");
        return headerMatches(V, JournalSchema, fingerprint()) && Config &&
               Config->kind() == JsonValue::Kind::String;
      },
      ResultKey, &JournalRawHeader, &JournalRawValid);

  if (!Repair)
    return true;

  // Results, profiles, and incumbents repair from what open() served —
  // the locked compaction rewrite: valid records only, deduplicated,
  // fresh framed header. Corrupt lines were quarantined during the walk;
  // lines stranded under an untrusted header fall with it.
  if (FR.damaged() && !rewriteResults(Error))
    return false;
  if (FP.damaged() && !rewriteProfiles(Error))
    return false;
  if (FI.damaged() && !rewriteIncumbents(Error))
    return false;

  // The journal is not loaded by open(), so it repairs from its own
  // walk: header kept verbatim (the pinned configuration must survive
  // untouched for --resume to honour it), servable lines kept verbatim
  // first-wins. A journal whose header cannot be trusted is removed —
  // replaying records from an unknown world is worse than recomputing.
  if (FJ.Present) {
    if (!FJ.HeaderOk) {
      std::remove(JPath.c_str());
    } else if (FJ.damaged()) {
      std::string Doc = JournalRawHeader + "\n";
      for (const std::string &Line : JournalRawValid)
        Doc += Line + "\n";
      if (!lockedReplace(JPath, Doc, LockWaitMs, Error))
        return false;
    }
  }

  // Orphaned temporaries were already swept by open(); they appear in
  // the report so the operator knows a writer died mid-rewrite.
  return true;
}
