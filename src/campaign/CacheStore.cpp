//===- campaign/CacheStore.cpp - persistent result cache -----------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "campaign/CacheStore.h"

#include "campaign/Report.h"
#include "power/DeviceRegistry.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/Json.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace ramloc;

namespace {

constexpr const char *StoreSchema = "ramloc-cache-v1";
constexpr const char *ReportSchema = "ramloc-campaign-v2";
constexpr const char *StoreFileName = "results.jsonl";

void hashBytes(uint64_t &H, std::string_view S) {
  H = fnv1a64(H, S);
  H ^= 0xff; // field separator so adjacent strings cannot alias
  H *= Fnv1aPrime;
}

void hashDouble(uint64_t &H, double V) {
  // Hash the canonical decimal spelling, not raw bits, so the fingerprint
  // is stable across platforms that agree on the value.
  hashBytes(H, jsonNumber(V));
}

} // namespace

std::string CacheStore::fingerprint() {
  uint64_t H = Fnv1aOffset;
  hashBytes(H, StoreSchema);
  hashBytes(H, ReportSchema);
  for (const DeviceInfo &D : deviceRegistry()) {
    hashBytes(H, D.Name);
    D.Model.forEachActiveValue([&H](double V) { hashDouble(H, V); });
    hashDouble(H, D.Model.SleepMilliWatts);
    hashDouble(H, D.Model.ClockHz);
    const TimingModel &T = D.Timing;
    for (unsigned V : {T.AluCycles, T.MulCycles, T.MlaCycles, T.DivCycles,
                       T.LoadCycles, T.StoreCycles, T.BranchRefillCycles,
                       T.BranchIssueCycles, T.CallCycles, T.CallRegCycles,
                       T.BxCycles, T.ItCycles, T.SkippedCycles,
                       T.NopCycles, T.RamContentionStall,
                       T.FlashWaitStates})
      hashBytes(H, formatString("%u", V));
  }
  return formatString("%016llx", static_cast<unsigned long long>(H));
}

bool CacheStore::open(const std::string &Dir, std::string *Error) {
  Loaded = Skipped = 0;
  Invalidated = false;

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    if (Error)
      *Error = "cannot create cache directory '" + Dir +
               "': " + EC.message();
    return false;
  }
  Path = (std::filesystem::path(Dir) / StoreFileName).string();

  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return true; // no store yet: empty cache, first save creates it

  std::string Line;
  bool SawHeader = false;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    JsonValue V;
    if (!JsonValue::parse(Line, V)) {
      // Corrupt or truncated line (e.g. a run killed mid-append in an
      // older format): skip it and recompute those entries.
      ++Skipped;
      if (!SawHeader)
        return true; // unreadable header: treat the file as absent
      continue;
    }
    if (!SawHeader) {
      SawHeader = true;
      const JsonValue *Schema = V.find("schema");
      const JsonValue *Fp = V.find("fingerprint");
      if (!Schema || Schema->kind() != JsonValue::Kind::String ||
          Schema->string() != StoreSchema || !Fp ||
          Fp->kind() != JsonValue::Kind::String ||
          Fp->string() != fingerprint()) {
        Invalidated = true;
        return true; // different world: discard everything
      }
      continue;
    }
    JobResult R;
    if (!parseJobResult(V, R)) {
      ++Skipped;
      continue;
    }
    Cache.insert(R.Spec.cacheKey(), R);
    ++Loaded;
  }
  return true;
}

bool CacheStore::save(std::string *Error) const {
  if (Path.empty()) {
    if (Error)
      *Error = "cache store was never opened";
    return false;
  }
  std::string Doc;
  {
    JsonWriter Header(/*Pretty=*/false);
    Header.beginObject();
    Header.field("schema", StoreSchema);
    Header.field("fingerprint", fingerprint());
    Header.endObject();
    Doc = Header.str() + "\n";
  }
  for (const auto &[Key, R] : Cache.snapshot()) {
    (void)Key; // recomputed from the spec on load
    // Failures are not durable: they may stem from a bug the next build
    // fixes, and the fingerprint tracks the device tables, not the code.
    // Serving a stale failure forever is worse than re-running the job.
    if (!R.ok())
      continue;
    JsonWriter W(/*Pretty=*/false);
    writeJobResult(W, R);
    Doc += W.str() + "\n";
  }

  std::string Tmp = Path + ".tmp";
  if (!writeTextFile(Tmp, Doc, Error))
    return false;
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    if (Error)
      *Error = "cannot rename '" + Tmp + "' to '" + Path + "'";
    return false;
  }
  return true;
}
