//===- campaign/Campaign.h - batch experiment engine ------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment-campaign engine: the paper's evaluation (Figs. 5-9) is
/// a family of sweeps of one pipeline over benchmarks x devices x knob
/// settings, and this subsystem makes such sweeps declarative. A GridSpec
/// names axis values; expand() crosses them into an ordered job list; the
/// engine deduplicates identical configurations through a config-keyed
/// result cache, executes the unique jobs on a work-stealing thread pool,
/// and aggregates summary statistics. Results are reported in expansion
/// order and carry no wall-clock data, so a campaign's report is
/// byte-identical whatever --jobs is.
///
/// Jobs are additionally grouped by *execution key* (image fingerprint +
/// arguments) through a shared ProfileCache: the first job to need a
/// given execution simulates it once and records a device-independent
/// ExecutionProfile; every other job over the same execution — the whole
/// device axis of a grid, typically — derives its bit-identical RunStats
/// by recosting that profile in O(#instructions). The cache's
/// compute-once semantics make the grouping scheduler-independent, so a
/// 1-benchmark x N-device grid performs exactly one full simulation per
/// distinct image however many workers run.
///
/// The optimizer gets the same treatment on the knob axis: jobs that
/// share everything but Xlimit/Rspare form a *solve group*. A group runs
/// as one pool task that extracts parameters and builds the ILP once,
/// then visits its knob points in expansion order, each solved as an RHS
/// patch warm-started from the previous point's basis and incumbent
/// (core/IlpModel's PlacementSolver), so a 3x3 knob grid pays 1
/// extraction + 1 cold solve + 8 re-optimizations
/// (Summary.Extractions/ColdSolves/WarmSolves assert it). Knob points
/// whose optimal placements coincide — they often do — additionally share
/// one apply+measure call, keyed by the assignment itself. Warm and cold
/// solves are both exact, so reports are byte-identical with solve reuse
/// on or off (CampaignOptions::ReuseSolves, `--no-solve-reuse`).
///
/// Even the group's first solve need not start from nothing: an
/// IncumbentStore remembers the best-known placement per solve group —
/// persisted across processes by campaign/CacheStore — and the group
/// seeds its first cold solve with it. The seed is re-validated at zero
/// tolerance under the actual knobs before it may prune anything, so a
/// stale assignment costs nothing and results stay byte-identical with
/// seeding on or off (CampaignOptions::SeedIncumbents,
/// `--no-incumbent-seed`) whenever the optimal placement is unique —
/// two distinct placements with bit-equal modelled energy being the one
/// case any pair of exact solvers may legitimately disagree on, the
/// same caveat warm knob chaining has carried since PR 4; what a fresh
/// grid gains is a proven-quality incumbent before the first node is
/// explored.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_CAMPAIGN_CAMPAIGN_H
#define RAMLOC_CAMPAIGN_CAMPAIGN_H

#include "beebs/Codegen.h"
#include "core/Pipeline.h"
#include "lp/SolverConfig.h"

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ramloc {

class MetricsRegistry;
class ProfileCache;

/// How block frequencies Fb are obtained (the Figure 5 estimated-vs-
/// "w/Frequency" axis).
enum class FreqMode : uint8_t { Static, Profiled };

/// What a job runs. Measure is the full pipeline including simulation;
/// ModelOnly stops at the ILP and model evaluation (the Figure 6 sweeps,
/// ~100x cheaper per point — except with FreqMode::Profiled, which still
/// simulates the baseline once per job to collect the profile).
enum class JobKind : uint8_t { Measure, ModelOnly };

const char *freqModeName(FreqMode M);
const char *jobKindName(JobKind K);

/// One fully-specified experiment configuration.
struct JobSpec {
  std::string Benchmark;             ///< BEEBS registry name
  OptLevel Level = OptLevel::O2;
  unsigned Repeat = 0;               ///< kernel iterations; 0 = suite default
  std::string Device = "stm32f100";  ///< DeviceRegistry name
  unsigned RspareBytes = 512;
  double Xlimit = 1.5;
  FreqMode Freq = FreqMode::Static;
  JobKind Kind = JobKind::Measure;

  /// Canonical textual form: the dedup/memoization key and the job's
  /// stable identifier in logs and reports.
  std::string cacheKey() const;
  /// FNV-1a hash of cacheKey(), reported as the job's config_hash.
  uint64_t configHash() const;
  /// The knob-free part of the key: jobs sharing it differ only in
  /// Rspare/Xlimit and can share one extraction + ILP (a solve group).
  std::string solveGroupKey() const;
};

/// A declarative grid: the cross product of the axis value lists.
struct GridSpec {
  std::vector<std::string> Benchmarks;
  std::vector<OptLevel> Levels = {OptLevel::O2};
  std::vector<std::string> Devices = {"stm32f100"};
  std::vector<unsigned> RsparePoints = {512};
  std::vector<double> XlimitPoints = {1.5};
  std::vector<FreqMode> FreqModes = {FreqMode::Static};
  JobKind Kind = JobKind::Measure;
  unsigned Repeat = 0;

  /// Crosses the axes into jobs. Order is deterministic and documented:
  /// benchmark-major, then level, device, Rspare, Xlimit, frequency mode.
  std::vector<JobSpec> expand() const;

  size_t jobCount() const {
    return Benchmarks.size() * Levels.size() * Devices.size() *
           RsparePoints.size() * XlimitPoints.size() * FreqModes.size();
  }
};

/// One job's outcome. Only deterministic quantities live here; wall time
/// is tracked campaign-wide and never serialized per job.
struct JobResult {
  JobSpec Spec;
  std::string Error; ///< empty on success
  /// What the job's solves proved (lp/SolverConfig.h). Optimal unless a
  /// cooperative solver limit (--time-limit-ms / --node-limit /
  /// --pivot-limit) truncated a proof: then FeasibleLimit — the
  /// placement is feasible and its numbers are real, but a better one
  /// may exist. Serialized (as "solve_status") only when degraded, so
  /// unlimited runs' reports carry today's exact bytes; a degraded
  /// result is labelled in the report and never persisted to the
  /// results cache.
  SolveStatus SolveOutcome = SolveStatus::Optimal;
  /// Provenance/solver diagnostics. Never serialized: reports must not
  /// depend on how a result was obtained (--diff ignores these fields for
  /// the same reason — node-order or seeding changes must never read as
  /// result drift).
  bool CacheHit = false;
  unsigned Extractions = 0; ///< parameter extractions this result ran
  unsigned ColdSolves = 0;  ///< MIP solves performed from scratch
  unsigned WarmSolves = 0;  ///< MIP solves re-optimized from a neighbour
  unsigned IncumbentSeeds = 0; ///< solves opened by a persisted incumbent

  /// Measured (JobKind::Measure only).
  double BaseEnergyMilliJoules = 0.0, OptEnergyMilliJoules = 0.0;
  double BaseSeconds = 0.0, OptSeconds = 0.0;
  double BaseAvgMilliWatts = 0.0, OptAvgMilliWatts = 0.0;
  uint64_t BaseCycles = 0, OptCycles = 0;

  /// Model-side (both kinds).
  double PredictedBaseEnergyMilliJoules = 0.0;
  double PredictedOptEnergyMilliJoules = 0.0;
  double PredictedBaseCycles = 0.0;
  double PredictedOptCycles = 0.0;
  unsigned RamBytes = 0;     ///< RAM consumed by relocated code
  unsigned MovedBlocks = 0;

  bool ok() const { return Error.empty(); }

  /// Measured percentage changes, new vs base (negative = improvement).
  double energyPct() const;
  double timePct() const;
  double powerPct() const;
};

/// Thread-safe memoization of JobResults by cacheKey(). A campaign uses
/// an internal cache for intra-run dedup; passing one in CampaignOptions
/// extends memoization across campaigns in the same process.
class ResultCache {
public:
  bool lookup(const std::string &Key, JobResult &Out) const;
  void insert(const std::string &Key, const JobResult &R);
  size_t size() const;

  /// All entries ordered by key: the deterministic iteration order the
  /// on-disk store serializes in.
  std::vector<std::pair<std::string, JobResult>> snapshot() const;

private:
  mutable std::mutex Mu;
  std::unordered_map<std::string, JobResult> Map;
};

/// Thread-safe best-known-placement memory, keyed by solveGroupKey(). A
/// solve group offers its *opening* knob point's optimum (a re-run of
/// the same grid seeds at that same point, where the entry re-validates
/// exactly; later points' looser-budget optima would mostly fail the
/// zero-tolerance re-check there); across offers the store keeps the one
/// with the lowest model energy, which is knob-independent, so "best" is
/// well defined. A later campaign — or, through CacheStore's
/// incumbents.jsonl, a later process — seeds its first cold solve from
/// it. Entries are hints, not truth: the solver re-validates a seed at
/// zero tolerance against the actual model before it may prune anything.
class IncumbentStore {
public:
  struct Entry {
    Assignment InRam;
    double EnergyMilliJoules = 0.0;
  };

  /// Best-known assignment for \p GroupKey; false when none.
  bool lookup(const std::string &GroupKey, Entry &Out) const;
  /// Offers an optimal assignment; kept only when strictly better (lower
  /// model energy) than the stored one, so the store converges whatever
  /// order offers arrive in.
  void offer(const std::string &GroupKey, const Assignment &InRam,
             double EnergyMilliJoules);
  size_t size() const;

  /// All entries ordered by key: the deterministic persistence order.
  std::vector<std::pair<std::string, Entry>> snapshot() const;

private:
  mutable std::mutex Mu;
  std::unordered_map<std::string, Entry> Map;
};

struct CampaignOptions {
  /// Worker threads. 0 picks std::thread::hardware_concurrency().
  unsigned Jobs = 1;
  /// Deduplicate identical configurations instead of re-running them.
  bool UseCache = true;
  /// Template for per-job pipeline options; each job snapshots this and
  /// overlays its own axes (knobs, device power model, frequency mode).
  PipelineOptions Base;
  /// Optional cross-campaign cache.
  ResultCache *Cache = nullptr;
  /// Share device-independent execution profiles between jobs, so grid
  /// points differing only in device recost one simulation instead of
  /// re-executing (reports stay byte-identical either way).
  bool ReuseProfiles = true;
  /// Group jobs that differ only in the Xlimit/Rspare knobs and run each
  /// group as one task: parameters extracted and the ILP built once, knob
  /// points solved as warm-started RHS patches, coinciding placements
  /// measured once (reports stay byte-identical either way). The knob
  /// points of a group serialize on one worker by design — that is what
  /// buys the 1-extraction/1-cold-solve guarantee — so a grid's
  /// parallelism is its benchmark x level x device x freq spread; a grid
  /// that is almost all knob axis on a many-core host may prefer
  /// ReuseSolves = false, which schedules every job independently (pair
  /// it with Base.Solver.WarmNodes = false for the fully cold reference
  /// solver — `--reuse` without the `solve` token).
  bool ReuseSolves = true;
  /// Optional cross-campaign profile cache (e.g. CacheStore::profiles()).
  /// When null and ReuseProfiles is true the campaign uses a private one.
  ProfileCache *Profiles = nullptr;
  /// Optional cross-campaign incumbent store (e.g.
  /// CacheStore::incumbents()): solve groups offer their optimal
  /// placements into it and — with SeedIncumbents — open their first cold
  /// solve from its best-known entry.
  IncumbentStore *Incumbents = nullptr;
  /// Seed each solve group's first solve from Incumbents. Results are
  /// byte-identical either way whenever the optimal placement is unique
  /// (seeds are re-validated at zero tolerance and both paths are exact;
  /// bit-equal-energy ties are the one legitimate divergence, as for
  /// warm knob chaining); `--no-incumbent-seed` is the A/B escape hatch
  /// that proves it.
  bool SeedIncumbents = true;
  /// Registry the campaign records its counters into (campaign.* keys:
  /// extractions, cold/warm solves, incumbent seeds, full sims vs
  /// recosts, cache hits, solve histograms). The Summary counter fields
  /// are views over this registry — computed as before/after deltas, so
  /// a registry shared across sequential campaigns still yields exact
  /// per-campaign summaries. Null uses a campaign-private registry;
  /// `ramloc-batch --metrics` passes globalMetrics() so one snapshot
  /// carries the campaign.* keys next to the deep layers' mip.*/sim.*/
  /// jobqueue.*/cache.* keys. Metrics are a side channel: reports are
  /// byte-identical whether or not a registry is attached.
  MetricsRegistry *Metrics = nullptr;
  /// Progress callback, invoked serialized (never concurrently) after
  /// each unique job finishes.
  std::function<void(const JobResult &, unsigned Done, unsigned Total)>
      Progress;
  /// Journal callback, invoked serialized (under the same lock as
  /// Progress) after each unique job finishes — the crash-safety hook
  /// `ramloc-batch --cache-dir` wires to CacheStore::appendJournal so a
  /// killed campaign's finished jobs survive and `--resume` replays
  /// them. Every invocation bumps the `campaign.journal.appends`
  /// metric, so telemetry shows how much progress a kill would have
  /// preserved. Unlike the results cache, the journal also records
  /// failed and degraded jobs: its contract is "reproduce the
  /// interrupted run's report exactly", not "store only trustworthy
  /// optima".
  std::function<void(const JobResult &)> Journal;
};

/// Aggregate statistics over the Measure jobs that succeeded.
struct CampaignSummary {
  unsigned Total = 0;
  unsigned Succeeded = 0;
  unsigned Failed = 0;
  unsigned CacheHits = 0;
  unsigned UniqueRuns = 0;
  /// Geometric mean of opt/base measured energy over succeeded Measure
  /// jobs (1.0 when there are none).
  double GeomeanEnergyRatio = 1.0;
  double MeanEnergyPct = 0.0;
  double MeanTimePct = 0.0;
  double MeanPowerPct = 0.0;
  /// Diagnostics only; excluded from serialized reports.
  double WallSeconds = 0.0;
  /// How this campaign's measurements were satisfied (diagnostics only,
  /// excluded from serialized reports): interpreter executions vs
  /// profile recosts. Zero when profile reuse is disabled.
  uint64_t FullSims = 0;
  uint64_t Recosts = 0;
  /// How the optimizer was satisfied (diagnostics only, excluded from
  /// serialized reports): parameter extractions run, MIP solves performed
  /// from scratch, and MIP solves re-optimized from a neighbouring knob
  /// point's basis. A knob grid with solve reuse does 1 extraction + 1
  /// cold solve per (benchmark, device) and warm-solves the rest.
  uint64_t Extractions = 0;
  uint64_t ColdSolves = 0;
  uint64_t WarmSolves = 0;
  /// Solve groups whose first solve was opened by a persisted incumbent
  /// (diagnostics only, excluded from serialized reports).
  uint64_t IncumbentSeeds = 0;
  /// Succeeded jobs whose SolveOutcome is not Optimal — best-effort
  /// answers under a solver limit. Deterministic (derived from Results
  /// by computeSummary), surfaced in the CLI summary, excluded from
  /// serialized reports like every other provenance field.
  unsigned Degraded = 0;
};

struct CampaignResult {
  /// One entry per requested job, in expansion/submission order.
  std::vector<JobResult> Results;
  CampaignSummary Summary;
};

/// Aggregates \p Results into the deterministic summary fields (Total,
/// Succeeded, Failed, geomean and means). Scheduling-dependent fields
/// (CacheHits, UniqueRuns, WallSeconds) are left zero; runCampaign fills
/// them afterwards. Shard merging reuses this so a merged report carries
/// exactly the summary an unsharded run would have produced.
CampaignSummary computeSummary(const std::vector<JobResult> &Results);

/// The half-open job-index range [first, second) of shard \p Index (1-based)
/// of \p Count over \p Total jobs in expansion order. Shards are contiguous,
/// disjoint, exhaustive and balanced to within one job, so concatenating the
/// shards 1..Count in order reproduces the full expansion. Out-of-range
/// shards (Index == 0 or Index > Count) yield an empty range.
std::pair<size_t, size_t> shardRange(size_t Total, unsigned Index,
                                     unsigned Count);

/// Runs one configuration synchronously. \p Base supplies the fields a
/// JobSpec does not cover (timing model, linker map, MIP budget, ...).
JobResult runJob(const JobSpec &Spec, const PipelineOptions &Base = {});

/// Runs an explicit job list. Deduplication is decided up front from the
/// cache keys, so results are independent of Opts.Jobs.
CampaignResult runCampaign(const std::vector<JobSpec> &Jobs,
                           const CampaignOptions &Opts = {});

/// Convenience: expand + run.
CampaignResult runCampaign(const GridSpec &Grid,
                           const CampaignOptions &Opts = {});

} // namespace ramloc

#endif // RAMLOC_CAMPAIGN_CAMPAIGN_H
