//===- campaign/Report.cpp - campaign report serialization ---------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "campaign/Report.h"

#include "support/Format.h"
#include "support/Json.h"
#include "support/Table.h"

#include <fstream>
#include <sstream>

using namespace ramloc;

namespace {

void writeSpec(JsonWriter &W, const JobSpec &S) {
  W.field("benchmark", S.Benchmark);
  W.field("level", optLevelName(S.Level));
  W.field("repeat", S.Repeat);
  W.field("device", S.Device);
  W.field("rspare_bytes", S.RspareBytes);
  W.field("xlimit", S.Xlimit);
  W.field("freq", freqModeName(S.Freq));
  W.field("kind", jobKindName(S.Kind));
  W.field("config_hash", formatString("%016llx",
                                      static_cast<unsigned long long>(
                                          S.configHash())));
}

// --- parsing helpers ------------------------------------------------------

bool fail(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

const JsonValue *need(const JsonValue &V, const char *Key,
                      std::string *Error) {
  const JsonValue *F = V.find(Key);
  if (!F)
    fail(Error, std::string("missing field '") + Key + "'");
  return F;
}

bool needString(const JsonValue &V, const char *Key, std::string &Out,
                std::string *Error) {
  const JsonValue *F = need(V, Key, Error);
  if (!F)
    return false;
  if (F->kind() != JsonValue::Kind::String)
    return fail(Error, std::string("field '") + Key + "' is not a string");
  Out = F->string();
  return true;
}

bool needNumber(const JsonValue &V, const char *Key, double &Out,
                std::string *Error) {
  const JsonValue *F = need(V, Key, Error);
  if (!F)
    return false;
  if (F->kind() != JsonValue::Kind::Number)
    return fail(Error, std::string("field '") + Key + "' is not a number");
  Out = F->number();
  return true;
}

// The integer casts are range-checked: a corrupt store line may carry any
// JSON number, and an unrepresentable double-to-integer cast is UB (the
// sanitizer CI job would abort instead of skipping the entry).
bool needUnsigned(const JsonValue &V, const char *Key, unsigned &Out,
                  std::string *Error) {
  double D;
  if (!needNumber(V, Key, D, Error))
    return false;
  if (!(D >= 0.0) || D > 4294967295.0)
    return fail(Error, std::string("field '") + Key + "' out of range");
  Out = static_cast<unsigned>(D);
  return true;
}

bool needU64(const JsonValue &V, const char *Key, uint64_t &Out,
             std::string *Error) {
  double D;
  if (!needNumber(V, Key, D, Error))
    return false;
  if (!(D >= 0.0) || D >= 18446744073709551616.0) // 2^64
    return fail(Error, std::string("field '") + Key + "' out of range");
  Out = static_cast<uint64_t>(D);
  return true;
}

} // namespace

void ramloc::writeJobResult(JsonWriter &W, const JobResult &R) {
  W.beginObject();
  writeSpec(W, R.Spec);
  W.field("ok", R.ok());
  if (!R.ok()) {
    W.field("error", R.Error);
    W.endObject();
    return;
  }
  // The trust label, written only when degraded: a limit-truncated
  // result must say so in the report, while unlimited runs — always
  // Optimal — keep the exact bytes every identity gate (threads x node
  // order x shard x cache x telemetry) has always compared. A missing
  // field parses as Optimal for the same reason.
  if (R.SolveOutcome != SolveStatus::Optimal)
    W.field("solve_status", solveStatusName(R.SolveOutcome));
  if (R.Spec.Kind == JobKind::Measure) {
    W.key("base").beginObject();
    W.field("energy_mj", R.BaseEnergyMilliJoules);
    W.field("seconds", R.BaseSeconds);
    W.field("power_mw", R.BaseAvgMilliWatts);
    W.field("cycles", R.BaseCycles);
    W.endObject();
    W.key("opt").beginObject();
    W.field("energy_mj", R.OptEnergyMilliJoules);
    W.field("seconds", R.OptSeconds);
    W.field("power_mw", R.OptAvgMilliWatts);
    W.field("cycles", R.OptCycles);
    W.endObject();
    W.key("delta").beginObject();
    W.field("energy_pct", R.energyPct());
    W.field("time_pct", R.timePct());
    W.field("power_pct", R.powerPct());
    W.endObject();
  }
  W.key("model").beginObject();
  W.field("base_energy_mj", R.PredictedBaseEnergyMilliJoules);
  W.field("opt_energy_mj", R.PredictedOptEnergyMilliJoules);
  W.field("base_cycles", R.PredictedBaseCycles);
  W.field("opt_cycles", R.PredictedOptCycles);
  W.field("ram_bytes", R.RamBytes);
  W.field("moved_blocks", R.MovedBlocks);
  W.endObject();
  // Solver-effort counters (ColdSolves/WarmSolves/IncumbentSeeds/pivots)
  // are deliberately NOT serialized: reports must not depend on how a
  // result was obtained, or the byte-identity guarantees (cached vs
  // computed, warm vs --no-solve-reuse, seeded vs --no-incumbent-seed,
  // any node order) would be unachievable. parseJobResult still accepts
  // an optional "solver" block from diagnostic dialects, and --diff
  // ignores it.
  W.endObject();
}

bool ramloc::parseJobResult(const JsonValue &V, JobResult &Out,
                            std::string *Error) {
  if (V.kind() != JsonValue::Kind::Object)
    return fail(Error, "job entry is not an object");
  Out = JobResult{};

  std::string Level, Freq, Kind;
  if (!needString(V, "benchmark", Out.Spec.Benchmark, Error) ||
      !needString(V, "level", Level, Error) ||
      !needUnsigned(V, "repeat", Out.Spec.Repeat, Error) ||
      !needString(V, "device", Out.Spec.Device, Error) ||
      !needUnsigned(V, "rspare_bytes", Out.Spec.RspareBytes, Error) ||
      !needNumber(V, "xlimit", Out.Spec.Xlimit, Error) ||
      !needString(V, "freq", Freq, Error) ||
      !needString(V, "kind", Kind, Error))
    return false;
  if (!optLevelFromName(Level, Out.Spec.Level))
    return fail(Error, "unknown level '" + Level + "'");
  if (Freq == freqModeName(FreqMode::Static))
    Out.Spec.Freq = FreqMode::Static;
  else if (Freq == freqModeName(FreqMode::Profiled))
    Out.Spec.Freq = FreqMode::Profiled;
  else
    return fail(Error, "unknown freq mode '" + Freq + "'");
  if (Kind == jobKindName(JobKind::Measure))
    Out.Spec.Kind = JobKind::Measure;
  else if (Kind == jobKindName(JobKind::ModelOnly))
    Out.Spec.Kind = JobKind::ModelOnly;
  else
    return fail(Error, "unknown job kind '" + Kind + "'");

  const JsonValue *Ok = need(V, "ok", Error);
  if (!Ok)
    return false;
  if (Ok->kind() != JsonValue::Kind::Bool)
    return fail(Error, "field 'ok' is not a boolean");
  if (!Ok->boolean()) {
    if (!needString(V, "error", Out.Error, Error))
      return false;
    if (Out.Error.empty())
      Out.Error = "unspecified failure";
    return true;
  }

  // Optional degraded-solve label; absent means Optimal (the only case
  // the canonical dialect omits it).
  if (const JsonValue *Status = V.find("solve_status")) {
    if (Status->kind() != JsonValue::Kind::String)
      return fail(Error, "field 'solve_status' is not a string");
    if (!solveStatusFromName(Status->string(), Out.SolveOutcome))
      return fail(Error,
                  "unknown solve_status '" + Status->string() + "'");
  }

  if (Out.Spec.Kind == JobKind::Measure) {
    const JsonValue *Base = need(V, "base", Error);
    const JsonValue *Opt = Base ? need(V, "opt", Error) : nullptr;
    if (!Base || !Opt)
      return false;
    if (!needNumber(*Base, "energy_mj", Out.BaseEnergyMilliJoules, Error) ||
        !needNumber(*Base, "seconds", Out.BaseSeconds, Error) ||
        !needNumber(*Base, "power_mw", Out.BaseAvgMilliWatts, Error) ||
        !needU64(*Base, "cycles", Out.BaseCycles, Error) ||
        !needNumber(*Opt, "energy_mj", Out.OptEnergyMilliJoules, Error) ||
        !needNumber(*Opt, "seconds", Out.OptSeconds, Error) ||
        !needNumber(*Opt, "power_mw", Out.OptAvgMilliWatts, Error) ||
        !needU64(*Opt, "cycles", Out.OptCycles, Error))
      return false;
  }

  const JsonValue *Model = need(V, "model", Error);
  if (!Model)
    return false;
  if (!(needNumber(*Model, "base_energy_mj",
                   Out.PredictedBaseEnergyMilliJoules, Error) &&
        needNumber(*Model, "opt_energy_mj",
                   Out.PredictedOptEnergyMilliJoules, Error) &&
        needNumber(*Model, "base_cycles", Out.PredictedBaseCycles,
                   Error) &&
        needNumber(*Model, "opt_cycles", Out.PredictedOptCycles, Error) &&
        needUnsigned(*Model, "ram_bytes", Out.RamBytes, Error) &&
        needUnsigned(*Model, "moved_blocks", Out.MovedBlocks, Error)))
    return false;

  // Optional solver-effort diagnostics (not part of the canonical
  // dialect; never re-serialized): tolerate and absorb them so a report
  // annotated by an external tool still parses, compares and merges —
  // and so --diff can never mistake effort drift (a node-order or
  // incumbent-seeding change) for result drift. Unknown subfields
  // (pivot counts and whatever a future dialect adds) are skipped.
  if (const JsonValue *Solver = V.find("solver")) {
    if (Solver->kind() == JsonValue::Kind::Object) {
      auto grab = [&](const char *Key, unsigned &Field) {
        const JsonValue *F = Solver->find(Key);
        if (F && F->kind() == JsonValue::Kind::Number && F->number() >= 0 &&
            F->number() <= 4294967295.0)
          Field = static_cast<unsigned>(F->number());
      };
      grab("extractions", Out.Extractions);
      grab("cold_solves", Out.ColdSolves);
      grab("warm_solves", Out.WarmSolves);
      grab("incumbent_seeds", Out.IncumbentSeeds);
    }
  }
  return true;
}

std::string ramloc::campaignToJson(const CampaignResult &R, bool Pretty) {
  JsonWriter W(Pretty);
  W.beginObject();
  W.field("schema", "ramloc-campaign-v2");
  W.key("summary").beginObject();
  W.field("total", R.Summary.Total);
  W.field("succeeded", R.Summary.Succeeded);
  W.field("failed", R.Summary.Failed);
  W.field("geomean_energy_ratio", R.Summary.GeomeanEnergyRatio);
  W.field("mean_energy_pct", R.Summary.MeanEnergyPct);
  W.field("mean_time_pct", R.Summary.MeanTimePct);
  W.field("mean_power_pct", R.Summary.MeanPowerPct);
  W.endObject();
  W.key("jobs").beginArray();
  for (const JobResult &J : R.Results)
    writeJobResult(W, J);
  W.endArray();
  W.endObject();
  return W.str() + "\n";
}

bool ramloc::parseCampaignReport(const std::string &Doc, CampaignResult &Out,
                                 std::string *Error) {
  JsonValue V;
  if (!JsonValue::parse(Doc, V, Error))
    return false;
  const JsonValue *Schema = V.find("schema");
  if (!Schema || Schema->kind() != JsonValue::Kind::String)
    return fail(Error, "not a campaign report: missing schema");
  if (Schema->string() != "ramloc-campaign-v2")
    return fail(Error,
                "unsupported report schema '" + Schema->string() + "'");
  const JsonValue *Jobs = V.find("jobs");
  if (!Jobs || Jobs->kind() != JsonValue::Kind::Array)
    return fail(Error, "not a campaign report: missing jobs array");

  Out = CampaignResult{};
  Out.Results.reserve(Jobs->items().size());
  for (size_t I = 0; I != Jobs->items().size(); ++I) {
    JobResult R;
    std::string JobError;
    if (!parseJobResult(Jobs->items()[I], R, &JobError))
      return fail(Error,
                  formatString("job %zu: %s", I, JobError.c_str()));
    Out.Results.push_back(std::move(R));
  }
  Out.Summary = computeSummary(Out.Results);
  return true;
}

bool ramloc::mergeCampaignReports(const std::vector<std::string> &Docs,
                                  CampaignResult &Out, std::string *Error) {
  Out = CampaignResult{};
  for (size_t I = 0; I != Docs.size(); ++I) {
    CampaignResult Part;
    std::string PartError;
    if (!parseCampaignReport(Docs[I], Part, &PartError))
      return fail(Error,
                  formatString("report %zu: %s", I, PartError.c_str()));
    Out.Results.insert(Out.Results.end(),
                       std::make_move_iterator(Part.Results.begin()),
                       std::make_move_iterator(Part.Results.end()));
  }
  Out.Summary = computeSummary(Out.Results);
  return true;
}

std::string ramloc::campaignToCsv(const CampaignResult &R) {
  std::string Out = "benchmark,level,repeat,device,rspare_bytes,xlimit,"
                    "freq,kind,ok,error,"
                    "base_energy_mj,opt_energy_mj,base_seconds,opt_seconds,"
                    "base_power_mw,opt_power_mw,base_cycles,opt_cycles,"
                    "energy_pct,time_pct,power_pct,"
                    "model_base_energy_mj,model_opt_energy_mj,"
                    "model_base_cycles,model_opt_cycles,"
                    "ram_bytes,moved_blocks\n";
  auto csvField = [](const std::string &S) {
    if (S.find_first_of(",\"\n") == std::string::npos)
      return S;
    std::string Quoted = "\"";
    for (char C : S) {
      if (C == '"')
        Quoted += '"';
      Quoted += C;
    }
    return Quoted + "\"";
  };
  for (const JobResult &J : R.Results) {
    const JobSpec &S = J.Spec;
    Out += csvField(S.Benchmark) + ",";
    Out += std::string(optLevelName(S.Level)) + ",";
    Out += formatString("%u", S.Repeat) + ",";
    Out += csvField(S.Device) + ",";
    Out += formatString("%u", S.RspareBytes) + ",";
    Out += jsonNumber(S.Xlimit) + ",";
    Out += std::string(freqModeName(S.Freq)) + ",";
    Out += std::string(jobKindName(S.Kind)) + ",";
    Out += std::string(J.ok() ? "1" : "0") + ",";
    Out += csvField(J.Error) + ",";
    if (J.ok() && S.Kind == JobKind::Measure) {
      Out += jsonNumber(J.BaseEnergyMilliJoules) + ",";
      Out += jsonNumber(J.OptEnergyMilliJoules) + ",";
      Out += jsonNumber(J.BaseSeconds) + ",";
      Out += jsonNumber(J.OptSeconds) + ",";
      Out += jsonNumber(J.BaseAvgMilliWatts) + ",";
      Out += jsonNumber(J.OptAvgMilliWatts) + ",";
      Out += formatString("%llu",
                          static_cast<unsigned long long>(J.BaseCycles)) +
             ",";
      Out += formatString("%llu",
                          static_cast<unsigned long long>(J.OptCycles)) +
             ",";
      Out += jsonNumber(J.energyPct()) + ",";
      Out += jsonNumber(J.timePct()) + ",";
      Out += jsonNumber(J.powerPct()) + ",";
    } else {
      Out += ",,,,,,,,,,,";
    }
    if (J.ok()) {
      Out += jsonNumber(J.PredictedBaseEnergyMilliJoules) + ",";
      Out += jsonNumber(J.PredictedOptEnergyMilliJoules) + ",";
      Out += jsonNumber(J.PredictedBaseCycles) + ",";
      Out += jsonNumber(J.PredictedOptCycles) + ",";
      Out += formatString("%u", J.RamBytes) + ",";
      Out += formatString("%u", J.MovedBlocks);
    } else {
      Out += ",,,,,";
    }
    Out += "\n";
  }
  return Out;
}

std::string ramloc::campaignToTable(const CampaignResult &R) {
  Table T({"benchmark", "level", "device", "Rspare", "Xlimit", "freq",
           "energy", "time", "power", "RAM", "status"});
  for (const JobResult &J : R.Results) {
    const JobSpec &S = J.Spec;
    std::string Status = !J.ok() ? "FAIL" : J.CacheHit ? "cached" : "ok";
    if (J.ok() && S.Kind == JobKind::Measure)
      T.addRow({S.Benchmark, optLevelName(S.Level), S.Device,
                formatString("%u", S.RspareBytes), formatDouble(S.Xlimit, 2),
                freqModeName(S.Freq),
                formatString("%+.1f%%", J.energyPct()),
                formatString("%+.1f%%", J.timePct()),
                formatString("%+.1f%%", J.powerPct()),
                formatString("%u B", J.RamBytes), Status});
    else if (J.ok())
      T.addRow({S.Benchmark, optLevelName(S.Level), S.Device,
                formatString("%u", S.RspareBytes), formatDouble(S.Xlimit, 2),
                freqModeName(S.Freq),
                formatString("%.2f uJ",
                             J.PredictedOptEnergyMilliJoules * 1e3),
                formatString("%.1f kcyc", J.PredictedOptCycles / 1e3),
                "-", formatString("%u B", J.RamBytes), Status});
    else
      T.addRow({S.Benchmark, optLevelName(S.Level), S.Device,
                formatString("%u", S.RspareBytes), formatDouble(S.Xlimit, 2),
                freqModeName(S.Freq), "-", "-", "-", "-", Status});
  }
  return T.render();
}

bool ramloc::writeTextFile(const std::string &Path, const std::string &Text,
                           std::string *Error) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << Text;
  Out.close();
  if (!Out) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

bool ramloc::readTextFile(const std::string &Path, std::string &Out,
                          std::string *Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (Error)
      *Error = "cannot open '" + Path + "' for reading";
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (In.bad()) {
    if (Error)
      *Error = "read from '" + Path + "' failed";
    return false;
  }
  Out = Buf.str();
  return true;
}
