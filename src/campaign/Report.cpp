//===- campaign/Report.cpp - campaign report serialization ---------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "campaign/Report.h"

#include "support/Format.h"
#include "support/Json.h"
#include "support/Table.h"

#include <fstream>

using namespace ramloc;

namespace {

void writeSpec(JsonWriter &W, const JobSpec &S) {
  W.field("benchmark", S.Benchmark);
  W.field("level", optLevelName(S.Level));
  W.field("repeat", S.Repeat);
  W.field("device", S.Device);
  W.field("rspare_bytes", S.RspareBytes);
  W.field("xlimit", S.Xlimit);
  W.field("freq", freqModeName(S.Freq));
  W.field("kind", jobKindName(S.Kind));
  W.field("config_hash", formatString("%016llx",
                                      static_cast<unsigned long long>(
                                          S.configHash())));
}

void writeJob(JsonWriter &W, const JobResult &R) {
  W.beginObject();
  writeSpec(W, R.Spec);
  W.field("cache_hit", R.CacheHit);
  W.field("ok", R.ok());
  if (!R.ok()) {
    W.field("error", R.Error);
    W.endObject();
    return;
  }
  if (R.Spec.Kind == JobKind::Measure) {
    W.key("base").beginObject();
    W.field("energy_mj", R.BaseEnergyMilliJoules);
    W.field("seconds", R.BaseSeconds);
    W.field("power_mw", R.BaseAvgMilliWatts);
    W.field("cycles", R.BaseCycles);
    W.endObject();
    W.key("opt").beginObject();
    W.field("energy_mj", R.OptEnergyMilliJoules);
    W.field("seconds", R.OptSeconds);
    W.field("power_mw", R.OptAvgMilliWatts);
    W.field("cycles", R.OptCycles);
    W.endObject();
    W.key("delta").beginObject();
    W.field("energy_pct", R.energyPct());
    W.field("time_pct", R.timePct());
    W.field("power_pct", R.powerPct());
    W.endObject();
  }
  W.key("model").beginObject();
  W.field("base_energy_mj", R.PredictedBaseEnergyMilliJoules);
  W.field("opt_energy_mj", R.PredictedOptEnergyMilliJoules);
  W.field("base_cycles", R.PredictedBaseCycles);
  W.field("opt_cycles", R.PredictedOptCycles);
  W.field("ram_bytes", R.RamBytes);
  W.field("moved_blocks", R.MovedBlocks);
  W.endObject();
  W.endObject();
}

} // namespace

std::string ramloc::campaignToJson(const CampaignResult &R, bool Pretty) {
  JsonWriter W(Pretty);
  W.beginObject();
  W.field("schema", "ramloc-campaign-v1");
  W.key("summary").beginObject();
  W.field("total", R.Summary.Total);
  W.field("succeeded", R.Summary.Succeeded);
  W.field("failed", R.Summary.Failed);
  W.field("cache_hits", R.Summary.CacheHits);
  W.field("unique_runs", R.Summary.UniqueRuns);
  W.field("geomean_energy_ratio", R.Summary.GeomeanEnergyRatio);
  W.field("mean_energy_pct", R.Summary.MeanEnergyPct);
  W.field("mean_time_pct", R.Summary.MeanTimePct);
  W.field("mean_power_pct", R.Summary.MeanPowerPct);
  W.endObject();
  W.key("jobs").beginArray();
  for (const JobResult &J : R.Results)
    writeJob(W, J);
  W.endArray();
  W.endObject();
  return W.str() + "\n";
}

std::string ramloc::campaignToCsv(const CampaignResult &R) {
  std::string Out = "benchmark,level,repeat,device,rspare_bytes,xlimit,"
                    "freq,kind,cache_hit,ok,error,"
                    "base_energy_mj,opt_energy_mj,base_seconds,opt_seconds,"
                    "base_power_mw,opt_power_mw,base_cycles,opt_cycles,"
                    "energy_pct,time_pct,power_pct,"
                    "model_base_energy_mj,model_opt_energy_mj,"
                    "model_base_cycles,model_opt_cycles,"
                    "ram_bytes,moved_blocks\n";
  auto csvField = [](const std::string &S) {
    if (S.find_first_of(",\"\n") == std::string::npos)
      return S;
    std::string Quoted = "\"";
    for (char C : S) {
      if (C == '"')
        Quoted += '"';
      Quoted += C;
    }
    return Quoted + "\"";
  };
  for (const JobResult &J : R.Results) {
    const JobSpec &S = J.Spec;
    Out += csvField(S.Benchmark) + ",";
    Out += std::string(optLevelName(S.Level)) + ",";
    Out += formatString("%u", S.Repeat) + ",";
    Out += csvField(S.Device) + ",";
    Out += formatString("%u", S.RspareBytes) + ",";
    Out += jsonNumber(S.Xlimit) + ",";
    Out += std::string(freqModeName(S.Freq)) + ",";
    Out += std::string(jobKindName(S.Kind)) + ",";
    Out += std::string(J.CacheHit ? "1" : "0") + ",";
    Out += std::string(J.ok() ? "1" : "0") + ",";
    Out += csvField(J.Error) + ",";
    if (J.ok() && S.Kind == JobKind::Measure) {
      Out += jsonNumber(J.BaseEnergyMilliJoules) + ",";
      Out += jsonNumber(J.OptEnergyMilliJoules) + ",";
      Out += jsonNumber(J.BaseSeconds) + ",";
      Out += jsonNumber(J.OptSeconds) + ",";
      Out += jsonNumber(J.BaseAvgMilliWatts) + ",";
      Out += jsonNumber(J.OptAvgMilliWatts) + ",";
      Out += formatString("%llu",
                          static_cast<unsigned long long>(J.BaseCycles)) +
             ",";
      Out += formatString("%llu",
                          static_cast<unsigned long long>(J.OptCycles)) +
             ",";
      Out += jsonNumber(J.energyPct()) + ",";
      Out += jsonNumber(J.timePct()) + ",";
      Out += jsonNumber(J.powerPct()) + ",";
    } else {
      Out += ",,,,,,,,,,,";
    }
    if (J.ok()) {
      Out += jsonNumber(J.PredictedBaseEnergyMilliJoules) + ",";
      Out += jsonNumber(J.PredictedOptEnergyMilliJoules) + ",";
      Out += jsonNumber(J.PredictedBaseCycles) + ",";
      Out += jsonNumber(J.PredictedOptCycles) + ",";
      Out += formatString("%u", J.RamBytes) + ",";
      Out += formatString("%u", J.MovedBlocks);
    } else {
      Out += ",,,,,";
    }
    Out += "\n";
  }
  return Out;
}

std::string ramloc::campaignToTable(const CampaignResult &R) {
  Table T({"benchmark", "level", "device", "Rspare", "Xlimit", "freq",
           "energy", "time", "power", "RAM", "status"});
  for (const JobResult &J : R.Results) {
    const JobSpec &S = J.Spec;
    std::string Status = !J.ok() ? "FAIL" : J.CacheHit ? "cached" : "ok";
    if (J.ok() && S.Kind == JobKind::Measure)
      T.addRow({S.Benchmark, optLevelName(S.Level), S.Device,
                formatString("%u", S.RspareBytes), formatDouble(S.Xlimit, 2),
                freqModeName(S.Freq),
                formatString("%+.1f%%", J.energyPct()),
                formatString("%+.1f%%", J.timePct()),
                formatString("%+.1f%%", J.powerPct()),
                formatString("%u B", J.RamBytes), Status});
    else if (J.ok())
      T.addRow({S.Benchmark, optLevelName(S.Level), S.Device,
                formatString("%u", S.RspareBytes), formatDouble(S.Xlimit, 2),
                freqModeName(S.Freq),
                formatString("%.2f uJ",
                             J.PredictedOptEnergyMilliJoules * 1e3),
                formatString("%.1f kcyc", J.PredictedOptCycles / 1e3),
                "-", formatString("%u B", J.RamBytes), Status});
    else
      T.addRow({S.Benchmark, optLevelName(S.Level), S.Device,
                formatString("%u", S.RspareBytes), formatDouble(S.Xlimit, 2),
                freqModeName(S.Freq), "-", "-", "-", "-", Status});
  }
  return T.render();
}

bool ramloc::writeTextFile(const std::string &Path, const std::string &Text,
                           std::string *Error) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << Text;
  Out.close();
  if (!Out) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}
