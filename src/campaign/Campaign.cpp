//===- campaign/Campaign.cpp - batch experiment engine -------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"

#include "beebs/Beebs.h"
#include "campaign/JobQueue.h"
#include "power/DeviceRegistry.h"
#include "sim/ProfileCache.h"
#include "support/FaultInjector.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Statistics.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>
#include <thread>
#include <unordered_map>

using namespace ramloc;

const char *ramloc::freqModeName(FreqMode M) {
  return M == FreqMode::Static ? "static" : "profiled";
}

const char *ramloc::jobKindName(JobKind K) {
  return K == JobKind::Measure ? "measure" : "model-only";
}

std::string JobSpec::cacheKey() const {
  // jsonNumber gives Xlimit a canonical round-trippable spelling, so
  // 1.5 from the CLI and 1.5 from a GridSpec literal share a key.
  return Benchmark + "|" + optLevelName(Level) + "|" +
         formatString("r%u", Repeat) + "|" + Device + "|" +
         formatString("R%u", RspareBytes) + "|X" + jsonNumber(Xlimit) +
         "|" + freqModeName(Freq) + "|" + jobKindName(Kind);
}

uint64_t JobSpec::configHash() const { return fnv1a64(cacheKey()); }

std::string JobSpec::solveGroupKey() const {
  return Benchmark + "|" + optLevelName(Level) + "|" +
         formatString("r%u", Repeat) + "|" + Device + "|" +
         freqModeName(Freq) + "|" + jobKindName(Kind);
}

std::vector<JobSpec> GridSpec::expand() const {
  std::vector<JobSpec> Jobs;
  Jobs.reserve(jobCount());
  for (const std::string &Bench : Benchmarks)
    for (OptLevel L : Levels)
      for (const std::string &Dev : Devices)
        for (unsigned Rspare : RsparePoints)
          for (double Xlimit : XlimitPoints)
            for (FreqMode FM : FreqModes) {
              JobSpec J;
              J.Benchmark = Bench;
              J.Level = L;
              J.Repeat = Repeat;
              J.Device = Dev;
              J.RspareBytes = Rspare;
              J.Xlimit = Xlimit;
              J.Freq = FM;
              J.Kind = Kind;
              Jobs.push_back(std::move(J));
            }
  return Jobs;
}

double JobResult::energyPct() const {
  return percentChange(BaseEnergyMilliJoules, OptEnergyMilliJoules);
}

double JobResult::timePct() const {
  return percentChange(BaseSeconds, OptSeconds);
}

double JobResult::powerPct() const {
  return percentChange(BaseAvgMilliWatts, OptAvgMilliWatts);
}

bool ResultCache::lookup(const std::string &Key, JobResult &Out) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It == Map.end())
    return false;
  Out = It->second;
  return true;
}

void ResultCache::insert(const std::string &Key, const JobResult &R) {
  std::lock_guard<std::mutex> Lock(Mu);
  Map.emplace(Key, R);
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.size();
}

std::vector<std::pair<std::string, JobResult>>
ResultCache::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, JobResult>> Entries(Map.begin(),
                                                         Map.end());
  std::sort(Entries.begin(), Entries.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Entries;
}

bool IncumbentStore::lookup(const std::string &GroupKey, Entry &Out) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(GroupKey);
  if (It == Map.end())
    return false;
  Out = It->second;
  return true;
}

void IncumbentStore::offer(const std::string &GroupKey,
                           const Assignment &InRam,
                           double EnergyMilliJoules) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(GroupKey);
  // Strictly-better-wins makes the stored entry independent of offer
  // order: ties keep the earlier assignment.
  if (It == Map.end()) {
    Map.emplace(GroupKey, Entry{InRam, EnergyMilliJoules});
    return;
  }
  if (EnergyMilliJoules < It->second.EnergyMilliJoules)
    It->second = Entry{InRam, EnergyMilliJoules};
}

size_t IncumbentStore::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.size();
}

std::vector<std::pair<std::string, IncumbentStore::Entry>>
IncumbentStore::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, Entry>> Entries(Map.begin(),
                                                     Map.end());
  std::sort(Entries.begin(), Entries.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Entries;
}

std::pair<size_t, size_t> ramloc::shardRange(size_t Total, unsigned Index,
                                             unsigned Count) {
  if (Count == 0 || Index == 0 || Index > Count)
    return {0, 0};
  return {Total * (Index - 1) / Count, Total * Index / Count};
}

CampaignSummary
ramloc::computeSummary(const std::vector<JobResult> &Results) {
  CampaignSummary S;
  S.Total = static_cast<unsigned>(Results.size());
  std::vector<double> Ratios, EnergyPcts, TimePcts, PowerPcts;
  for (const JobResult &R : Results) {
    if (!R.ok()) {
      ++S.Failed;
      continue;
    }
    ++S.Succeeded;
    if (R.SolveOutcome != SolveStatus::Optimal)
      ++S.Degraded;
    if (R.Spec.Kind == JobKind::Measure && R.BaseEnergyMilliJoules > 0) {
      Ratios.push_back(R.OptEnergyMilliJoules / R.BaseEnergyMilliJoules);
      EnergyPcts.push_back(R.energyPct());
      TimePcts.push_back(R.timePct());
      PowerPcts.push_back(R.powerPct());
    }
  }
  if (!Ratios.empty()) {
    S.GeomeanEnergyRatio = geomean(Ratios);
    S.MeanEnergyPct = mean(EnergyPcts);
    S.MeanTimePct = mean(TimePcts);
    S.MeanPowerPct = mean(PowerPcts);
  }
  return S;
}

namespace {

/// Fills the model-side fields shared by both job kinds.
void fillModelFields(JobResult &R, const ModelParams &MP,
                     const Assignment &InRam) {
  ModelEstimate Base =
      evaluateAssignment(MP, Assignment(MP.numBlocks(), false));
  ModelEstimate Opt = evaluateAssignment(MP, InRam);
  R.PredictedBaseEnergyMilliJoules = Base.EnergyMilliJoules;
  R.PredictedOptEnergyMilliJoules = Opt.EnergyMilliJoules;
  R.PredictedBaseCycles = Base.Cycles;
  R.PredictedOptCycles = Opt.Cycles;
  R.RamBytes = Opt.RamBytes;
  for (unsigned B = 0, E = MP.numBlocks(); B != E; ++B)
    if (InRam[B])
      ++R.MovedBlocks;
}

/// Fills the measured + model fields from a finished pipeline run.
void fillMeasureFields(JobResult &R, const PipelineResult &PR) {
  R.BaseEnergyMilliJoules = PR.MeasuredBase.Energy.MilliJoules;
  R.OptEnergyMilliJoules = PR.MeasuredOpt.Energy.MilliJoules;
  R.BaseSeconds = PR.MeasuredBase.Energy.Seconds;
  R.OptSeconds = PR.MeasuredOpt.Energy.Seconds;
  R.BaseAvgMilliWatts = PR.MeasuredBase.Energy.AvgMilliWatts;
  R.OptAvgMilliWatts = PR.MeasuredOpt.Energy.AvgMilliWatts;
  R.BaseCycles = PR.MeasuredBase.Stats.Cycles;
  R.OptCycles = PR.MeasuredOpt.Stats.Cycles;
  R.PredictedBaseEnergyMilliJoules = PR.PredictedBase.EnergyMilliJoules;
  R.PredictedOptEnergyMilliJoules = PR.PredictedOpt.EnergyMilliJoules;
  R.PredictedBaseCycles = PR.PredictedBase.Cycles;
  R.PredictedOptCycles = PR.PredictedOpt.Cycles;
  R.RamBytes = PR.PredictedOpt.RamBytes;
  R.MovedBlocks = static_cast<unsigned>(PR.MovedBlocks.size());
}

/// Runs one solve group: jobs agreeing on everything but the
/// Xlimit/Rspare knobs, visited in the order given. The module is built,
/// the baseline measured and the parameters extracted once; each knob
/// point is then an RHS patch solved with the previous point's basis and
/// incumbent (PlacementSolver), and knob points whose placements coincide
/// share one apply+measure call. Every per-job outcome — including every
/// error string — is produced by the same staged functions the
/// single-job path uses, so grouped and ungrouped runs cannot drift
/// apart. \p OnDone is invoked after each job's slot in \p Results is
/// final.
void runSolveGroup(const std::vector<JobSpec> &Jobs,
                   const std::vector<size_t> &Indices,
                   const PipelineOptions &Base,
                   std::vector<JobResult> &Results,
                   const std::function<void(size_t)> &OnDone,
                   MetricsRegistry &Reg,
                   IncumbentStore *Incumbents = nullptr,
                   bool SeedIncumbents = true) {
  const JobSpec &First = Jobs[Indices.front()];
  TraceSpan GroupSpan("solve-group", "campaign");
  if (GroupSpan.active()) {
    GroupSpan.arg("group", First.solveGroupKey());
    GroupSpan.arg("jobs", std::to_string(Indices.size()));
  }

  auto failAll = [&](const std::string &Error) {
    for (size_t I : Indices) {
      Results[I] = JobResult();
      Results[I].Spec = Jobs[I];
      Results[I].Error = Error;
      OnDone(I);
    }
  };

  if (!isKnownBeebs(First.Benchmark)) {
    failAll("unknown benchmark '" + First.Benchmark + "'");
    return;
  }
  const DeviceInfo *Dev = findDevice(First.Device);
  if (!Dev) {
    failAll("unknown device '" + First.Device + "'");
    return;
  }

  // Group options snapshot: the shared template plus the group's axes.
  PipelineOptions Opts = Base;
  Opts.Knobs.RspareBytes = First.RspareBytes;
  Opts.Knobs.Xlimit = First.Xlimit;
  Opts.Power = Dev->Model;
  // The device also owns the cycle model (flash wait states, in
  // particular), so both the simulator and the parameter extraction see
  // the part's actual fetch timing.
  Opts.Sim.Timing = Dev->Timing;
  Opts.Extract.Timing = Dev->Timing;
  Opts.UseProfiledFrequencies = First.Freq == FreqMode::Profiled;

  Module M = buildBeebs(First.Benchmark, First.Level, First.Repeat);

  // Measure jobs report the baseline; ModelOnly only simulates it when
  // the frequency profile demands it (extractModule decides).
  ExtractedModule EM =
      extractModule(M, Opts, /*NeedBaseline=*/First.Kind == JobKind::Measure);
  if (!EM.ok()) {
    failAll(EM.Error);
    return;
  }

  PlacementSolver Solver(EM.MP, Opts.Knobs);
  // Open the group's first solve with the persisted best-known placement
  // (cross-process incumbent). The solver re-validates the seed at zero
  // tolerance under the patched knobs, so a stale entry merely misses;
  // with warm nodes disabled the cross-solve state is off by design and
  // the seed would never be read.
  const std::string GroupKey = First.solveGroupKey();
  bool Seeded = false;
  if (Incumbents && SeedIncumbents && Opts.Solver.WarmNodes) {
    IncumbentStore::Entry Known;
    if (Incumbents->lookup(GroupKey, Known))
      Seeded = Solver.seedIncumbent(EM.MP, Known.InRam);
  }

  // Knob points whose optimal placements coincide produce bit-identical
  // opt images; one apply+measure serves them all.
  std::map<Assignment, JobResult> ByPlacement;
  bool FirstJob = true;
  for (size_t I : Indices) {
    const JobSpec &Spec = Jobs[I];

    // Fault site: this worker loses this one job mid-flight (a simulated
    // per-job crash). The job fails with a distinctive error — the rest
    // of the group carries on, and FirstJob stays pending so the next
    // surviving job still does the group's opening-point bookkeeping.
    if (FaultInjector::shouldFail("job.abort")) {
      JobResult R;
      R.Spec = Spec;
      R.Error = "injected fault: job aborted (job.abort)";
      Results[I] = std::move(R);
      OnDone(I);
      continue;
    }

    ModelKnobs Knobs = Opts.Knobs;
    Knobs.RspareBytes = Spec.RspareBytes;
    Knobs.Xlimit = Spec.Xlimit;

    MipSolution Sol;
    Assignment InRam = Solver.solve(Knobs, Opts.Solver, &Sol);
    // Offer the *opening* point's optimum, not every point's: a re-run
    // of the same grid seeds at the same opening point, where this
    // assignment re-validates exactly and opens the search with the true
    // optimum. Later points' optima live under looser budgets (axes are
    // conventionally ascending) and would mostly fail the zero-tolerance
    // re-check at the next run's tighter opening point.
    if (Incumbents && FirstJob)
      Incumbents->offer(GroupKey, InRam,
                        evaluateAssignment(EM.MP, InRam).EnergyMilliJoules);

    JobResult R;
    if (Spec.Kind == JobKind::Measure) {
      auto It = ByPlacement.find(InRam);
      if (It != ByPlacement.end()) {
        R = It->second;
      } else {
        PipelineOptions JobOpts = Opts;
        JobOpts.Knobs = Knobs;
        PipelineResult PR = applyAndMeasure(M, EM, InRam, Sol, JobOpts);
        if (!PR.ok())
          R.Error = PR.Error;
        else
          fillMeasureFields(R, PR);
        ByPlacement.emplace(std::move(InRam), R);
      }
    } else {
      fillModelFields(R, EM.MP, InRam);
    }
    R.Spec = Spec;
    // The job-level trust label. An Aborted solve still yields a usable
    // job: PlacementSolver::decode falls back to the all-flash placement
    // (trivially feasible — it moves nothing), so the numbers below are
    // real and the honest label is FeasibleLimit, "a feasible answer a
    // limit kept us from improving". Only a *proven* infeasibility keeps
    // its stronger label.
    R.SolveOutcome = Sol.Outcome == SolveStatus::Optimal
                         ? SolveStatus::Optimal
                     : Sol.Outcome == SolveStatus::InfeasibleProven
                         ? SolveStatus::InfeasibleProven
                         : SolveStatus::FeasibleLimit;
    R.Extractions = FirstJob ? 1 : 0;
    // A group's later solves are seeded by the knob chain itself; only
    // the first one can have been opened by the persistent store.
    R.IncumbentSeeds = FirstJob && Seeded && Sol.seededIncumbent() ? 1 : 0;
    if (Sol.warmStarted())
      R.WarmSolves = 1;
    else
      R.ColdSolves = 1;
    // The registry is the campaign's book of record for these counters;
    // the Summary fields are read back out of it as deltas.
    Reg.counter("campaign.solve.extractions").add(R.Extractions);
    Reg.counter("campaign.solve.cold").add(R.ColdSolves);
    Reg.counter("campaign.solve.warm").add(R.WarmSolves);
    Reg.counter("campaign.solve.incumbent_seeds").add(R.IncumbentSeeds);
    if (R.ok() && R.SolveOutcome != SolveStatus::Optimal)
      Reg.counter("campaign.solve.degraded").add();
    Reg.histogram("campaign.solve.nodes")
        .record(static_cast<double>(Sol.NodesExplored));
    Reg.histogram("campaign.solve.pivots")
        .record(static_cast<double>(Sol.primalPivots() + Sol.dualPivots()));
    Results[I] = std::move(R);
    OnDone(I);
    FirstJob = false;
  }
}

} // namespace

JobResult ramloc::runJob(const JobSpec &Spec, const PipelineOptions &Base) {
  std::vector<JobSpec> Jobs{Spec};
  std::vector<JobResult> Results(1);
  MetricsRegistry Scratch;
  runSolveGroup(Jobs, {0}, Base, Results, [](size_t) {}, Scratch);
  return Results[0];
}

namespace {

/// The campaign.* counter values a Summary view is a delta over. Taken
/// before any work, subtracted at the end, so a registry shared across
/// sequential campaigns (globalMetrics(), typically) still yields exact
/// per-campaign summaries.
struct CampaignBaseline {
  uint64_t Extractions, ColdSolves, WarmSolves, IncumbentSeeds;
  uint64_t FullSims, Recosts, CacheHits, UniqueRuns;

  explicit CampaignBaseline(const MetricsRegistry &Reg)
      : Extractions(Reg.counterValue("campaign.solve.extractions")),
        ColdSolves(Reg.counterValue("campaign.solve.cold")),
        WarmSolves(Reg.counterValue("campaign.solve.warm")),
        IncumbentSeeds(Reg.counterValue("campaign.solve.incumbent_seeds")),
        FullSims(Reg.counterValue("campaign.sim.full_sims")),
        Recosts(Reg.counterValue("campaign.sim.recosts")),
        CacheHits(Reg.counterValue("campaign.cache.hits")),
        UniqueRuns(Reg.counterValue("campaign.jobs.unique")) {}
};

} // namespace

CampaignResult ramloc::runCampaign(const std::vector<JobSpec> &Jobs,
                                   const CampaignOptions &Opts) {
  // The Summary counters are views over this registry: every count is
  // recorded into Reg as it happens and read back out as a delta at the
  // end, so `--metrics` snapshots and CampaignSummary can never drift
  // apart. Without a caller-supplied registry a private one serves.
  MetricsRegistry LocalMetrics;
  MetricsRegistry &Reg = Opts.Metrics ? *Opts.Metrics : LocalMetrics;
  const CampaignBaseline Start(Reg);
  ScopedTimer Timer(&Reg.histogram("campaign.wall_seconds"));
  TraceSpan CampaignSpan("campaign", "campaign");
  if (CampaignSpan.active())
    CampaignSpan.arg("jobs", std::to_string(Jobs.size()));
  CampaignResult CR;
  CR.Results.resize(Jobs.size());

  // Decide dedup up front so the outcome is independent of scheduling:
  // the first occurrence of each key runs, later ones copy its result.
  std::vector<size_t> RunIndices;          // jobs that actually execute
  std::vector<ptrdiff_t> CopyFrom(Jobs.size(), -1);
  {
    std::unordered_map<std::string, size_t> FirstByKey;
    for (size_t I = 0; I != Jobs.size(); ++I) {
      if (!Opts.UseCache) {
        RunIndices.push_back(I);
        continue;
      }
      std::string Key = Jobs[I].cacheKey();
      JobResult Cached;
      if (Opts.Cache && Opts.Cache->lookup(Key, Cached)) {
        CR.Results[I] = Cached;
        CR.Results[I].Spec = Jobs[I];
        CR.Results[I].CacheHit = true;
        continue;
      }
      auto [It, Inserted] = FirstByKey.emplace(Key, I);
      if (Inserted)
        RunIndices.push_back(I);
      else
        CopyFrom[I] = static_cast<ptrdiff_t>(It->second);
    }
  }
  Reg.counter("campaign.jobs.total").add(Jobs.size());
  Reg.counter("campaign.jobs.unique").add(RunIndices.size());
  // The Progress callback needs the unique-run total while jobs are
  // still finishing; the final Summary re-reads it from the registry.
  CR.Summary.UniqueRuns = static_cast<unsigned>(RunIndices.size());

  // Group jobs by execution key: every job shares one ProfileCache, so
  // grid points that execute the same image (the device axis, typically)
  // fan out over a single simulation. The cache's compute-once semantics
  // keep the grouping exact under any worker interleaving.
  ProfileCache CampaignProfiles;
  ProfileCache *Profiles =
      Opts.Profiles ? Opts.Profiles
                    : (Opts.ReuseProfiles ? &CampaignProfiles : nullptr);
  PipelineOptions JobBase = Opts.Base;
  if (Profiles)
    JobBase.Profiles = Profiles;
  ProfileCache::Counters Before =
      Profiles ? Profiles->counters() : ProfileCache::Counters{};

  // Partition the jobs that will run into solve groups: jobs differing
  // only in the Xlimit/Rspare knobs share one extraction and one ILP, so
  // each group runs as a single task that warm-starts successive knob
  // points (reports are byte-identical to per-job scheduling; the knob
  // points of one group just stop paying for repeated extractions and
  // from-scratch solves). With reuse disabled every job is its own group.
  std::vector<std::vector<size_t>> Groups;
  if (Opts.ReuseSolves) {
    std::unordered_map<std::string, size_t> GroupOf;
    for (size_t I : RunIndices) {
      auto [It, New] = GroupOf.emplace(Jobs[I].solveGroupKey(), Groups.size());
      if (New)
        Groups.emplace_back();
      Groups[It->second].push_back(I);
    }
  } else {
    for (size_t I : RunIndices)
      Groups.push_back({I});
  }

  unsigned Workers = Opts.Jobs != 0 ? Opts.Jobs
                                    : std::thread::hardware_concurrency();
  {
    JobQueue Pool(Workers);
    std::mutex ProgressMu;
    unsigned Done = 0;
    for (const std::vector<size_t> &Group : Groups)
      Pool.submit([&, Group] {
        runSolveGroup(
            Jobs, Group, JobBase, CR.Results,
            [&](size_t I) {
              if (Opts.Progress || Opts.Journal) {
                std::lock_guard<std::mutex> Lock(ProgressMu);
                ++Done;
                // Journal before reporting progress: once the user has
                // seen a job finish, a kill must not lose it.
                if (Opts.Journal) {
                  Opts.Journal(CR.Results[I]);
                  globalMetrics().counter("campaign.journal.appends").add();
                }
                if (Opts.Progress)
                  Opts.Progress(CR.Results[I], Done, CR.Summary.UniqueRuns);
              }
            },
            Reg, Opts.Incumbents, Opts.SeedIncumbents);
      });
    Pool.wait();
  }
  if (Profiles) {
    // The ProfileCache may be shared across campaigns (CacheStore's),
    // so its counters are windowed here rather than read raw.
    ProfileCache::Counters After = Profiles->counters();
    Reg.counter("campaign.sim.full_sims").add(After.FullSims -
                                              Before.FullSims);
    Reg.counter("campaign.sim.recosts").add(After.Recosts - Before.Recosts);
  }

  // Fill duplicates and feed the cross-campaign cache.
  uint64_t CacheHits = 0;
  for (size_t I = 0; I != Jobs.size(); ++I) {
    if (CopyFrom[I] >= 0) {
      CR.Results[I] = CR.Results[CopyFrom[I]];
      CR.Results[I].Spec = Jobs[I];
      CR.Results[I].CacheHit = true;
    }
    if (CR.Results[I].CacheHit)
      ++CacheHits;
  }
  Reg.counter("campaign.cache.hits").add(CacheHits);
  if (Opts.Cache)
    for (size_t I : RunIndices)
      Opts.Cache->insert(Jobs[I].cacheKey(), CR.Results[I]);

  // Aggregate the deterministic summary, then fill the scheduling
  // diagnostics as views over the registry: each field is the counter's
  // growth since this campaign started.
  CampaignSummary S = computeSummary(CR.Results);
  S.CacheHits = static_cast<unsigned>(
      Reg.counterValue("campaign.cache.hits") - Start.CacheHits);
  S.UniqueRuns = static_cast<unsigned>(
      Reg.counterValue("campaign.jobs.unique") - Start.UniqueRuns);
  S.FullSims =
      Reg.counterValue("campaign.sim.full_sims") - Start.FullSims;
  S.Recosts = Reg.counterValue("campaign.sim.recosts") - Start.Recosts;
  S.Extractions =
      Reg.counterValue("campaign.solve.extractions") - Start.Extractions;
  S.ColdSolves =
      Reg.counterValue("campaign.solve.cold") - Start.ColdSolves;
  S.WarmSolves =
      Reg.counterValue("campaign.solve.warm") - Start.WarmSolves;
  S.IncumbentSeeds =
      Reg.counterValue("campaign.solve.incumbent_seeds") -
      Start.IncumbentSeeds;
  S.WallSeconds = Timer.stop();
  CR.Summary = S;
  return CR;
}

CampaignResult ramloc::runCampaign(const GridSpec &Grid,
                                   const CampaignOptions &Opts) {
  return runCampaign(Grid.expand(), Opts);
}
