//===- campaign/JobQueue.cpp - work-stealing thread pool -----------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "campaign/JobQueue.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <chrono>

using namespace ramloc;

JobQueue::JobQueue(unsigned WorkerCount) {
  if (WorkerCount == 0)
    WorkerCount = 1;
  Queues.reserve(WorkerCount);
  for (unsigned I = 0; I != WorkerCount; ++I)
    Queues.push_back(std::make_unique<WorkerState>());
  Workers.reserve(WorkerCount);
  for (unsigned I = 0; I != WorkerCount; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

JobQueue::~JobQueue() {
  wait();
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void JobQueue::submit(Job J) {
  unsigned Target;
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    ++Pending;
    Target = NextQueue;
    NextQueue = (NextQueue + 1) % Queues.size();
  }
  {
    std::lock_guard<std::mutex> Lock(Queues[Target]->Mu);
    Queues[Target]->Deque.push_back(std::move(J));
  }
  WorkCv.notify_one();
}

void JobQueue::wait() {
  std::unique_lock<std::mutex> Lock(StateMu);
  IdleCv.wait(Lock, [this] { return Pending == 0; });
}

size_t JobQueue::stealCount() const {
  std::lock_guard<std::mutex> Lock(StateMu);
  return Steals;
}

bool JobQueue::tryRunOne(unsigned Self) {
  Job J;
  bool Stolen = false;
  // Own deque first (front: oldest of our own work)...
  {
    WorkerState &Mine = *Queues[Self];
    std::lock_guard<std::mutex> Lock(Mine.Mu);
    if (!Mine.Deque.empty()) {
      J = std::move(Mine.Deque.front());
      Mine.Deque.pop_front();
    }
  }
  // ...then steal from the back of a sibling.
  if (!J) {
    for (size_t Off = 1; Off != Queues.size() && !J; ++Off) {
      WorkerState &Victim = *Queues[(Self + Off) % Queues.size()];
      std::lock_guard<std::mutex> Lock(Victim.Mu);
      if (!Victim.Deque.empty()) {
        J = std::move(Victim.Deque.back());
        Victim.Deque.pop_back();
        Stolen = true;
      }
    }
  }
  if (!J)
    return false;

  {
    // Name the thread lazily, per job rather than at pool start: the
    // recorder is typically installed after the pool's threads exist,
    // and naming is one TLS lookup — noise against a whole job.
    if (TraceRecorder *R = TraceRecorder::current())
      R->setThreadName("worker-" + std::to_string(Self));
    TraceSpan Span("job", "queue");
    if (Span.active() && Stolen)
      Span.arg("stolen", "1");
    J();
  }

  MetricsRegistry &M = globalMetrics();
  M.counter("jobqueue.jobs").add();
  if (Stolen)
    M.counter("jobqueue.steals").add();
  {
    std::lock_guard<std::mutex> Lock(StateMu);
    if (Stolen)
      ++Steals;
    if (--Pending == 0)
      IdleCv.notify_all();
  }
  return true;
}

void JobQueue::workerLoop(unsigned Self) {
  Counter &IdleNs = globalMetrics().counter("jobqueue.idle_ns");
  for (;;) {
    if (tryRunOne(Self))
      continue;
    auto IdleFrom = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> Lock(StateMu);
    if (Stopping)
      return;
    // Re-check under the lock: a job may have been submitted between the
    // failed scan and acquiring StateMu. Pending > 0 with an empty scan
    // can also mean jobs are *running* elsewhere, so wake on a timeout
    // too rather than requiring a perfectly paired notify.
    WorkCv.wait_for(Lock, std::chrono::milliseconds(10));
    IdleNs.add(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - IdleFrom)
            .count()));
  }
}
