//===- campaign/CacheStore.h - persistent result cache ----------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Durable storage for campaign results, so repeated `ramloc-batch` runs
/// (and CI re-runs) are incremental: a grid point computed once is never
/// recomputed as long as the code that produced it is unchanged.
///
/// Format: one JSON-lines file, `results.jsonl`, inside the cache
/// directory. The first line is a header carrying the store schema and a
/// fingerprint of everything results depend on (the device registry's
/// power tables and timing models, and the report schema). A mismatched
/// fingerprint invalidates the whole file — results computed under a
/// different power model must never be served — and a corrupt or
/// truncated entry is skipped, degrading to recomputation rather than
/// failing the run. Every subsequent line is one JobResult in the report
/// dialect (campaign/Report.h), keyed implicitly by its spec's
/// cacheKey().
///
/// Writes are atomic: the store is rewritten to a temporary file in the
/// same directory and renamed over the old one, so a crashed or killed
/// run can truncate at worst the temporary, never the live store. Under
/// concurrent writers the last rename wins — shard workers should use
/// per-shard cache directories, or share one and accept duplicated work.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_CAMPAIGN_CACHESTORE_H
#define RAMLOC_CAMPAIGN_CACHESTORE_H

#include "campaign/Campaign.h"

#include <string>

namespace ramloc {

class CacheStore {
public:
  /// The fingerprint a valid store must carry: a stable hash over the
  /// store schema, the report schema, and the full device registry
  /// (names, power tables, timing models). Any change to those — a new
  /// power calibration, a device table edit, a serialization bump —
  /// yields a new fingerprint and retires every existing cache.
  static std::string fingerprint();

  /// Binds the store to <Dir>/results.jsonl, creating \p Dir when
  /// missing, and loads whatever valid entries the file holds. Returns
  /// false only when the directory cannot be created or the file cannot
  /// be read at all; invalid content merely yields an empty cache (see
  /// invalidated() / skippedLines()).
  bool open(const std::string &Dir, std::string *Error = nullptr);

  /// Atomically rewrites the file with every *successful* entry
  /// currently in cache(), sorted by cache key (temp file + rename).
  /// Failed results stay in-memory only: a failure may be a bug the next
  /// build fixes, and the fingerprint cannot see code changes, so
  /// persisting it would serve a stale error forever.
  bool save(std::string *Error = nullptr) const;

  /// The in-memory cache backing this store. Point CampaignOptions::Cache
  /// here; runCampaign both serves lookups from it and inserts new
  /// results into it.
  ResultCache &cache() { return Cache; }
  const ResultCache &cache() const { return Cache; }

  const std::string &path() const { return Path; }

  /// Diagnostics from the last open().
  size_t loadedEntries() const { return Loaded; }
  size_t skippedLines() const { return Skipped; }
  /// True when a store existed but carried a different fingerprint (its
  /// entries were discarded wholesale).
  bool invalidated() const { return Invalidated; }

private:
  ResultCache Cache;
  std::string Path;
  size_t Loaded = 0;
  size_t Skipped = 0;
  bool Invalidated = false;
};

} // namespace ramloc

#endif // RAMLOC_CAMPAIGN_CACHESTORE_H
