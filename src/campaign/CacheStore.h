//===- campaign/CacheStore.h - persistent result cache ----------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Durable storage for campaign results and execution profiles, so
/// repeated `ramloc-batch` runs (and CI re-runs) are incremental: a grid
/// point computed once is never recomputed as long as the code that
/// produced it is unchanged, and a benchmark simulated once is recosted —
/// not re-executed — even across processes and device-table changes.
///
/// Format: three JSON-lines files inside the cache directory.
///  - `results.jsonl`: one JobResult per line in the report dialect
///    (campaign/Report.h), keyed implicitly by its spec's cacheKey().
///    Its header fingerprint covers the device registry's power tables
///    and timing models — results computed under a different power model
///    must never be served.
///  - `profiles.jsonl`: one ExecutionProfile per line keyed by execution
///    key (image fingerprint + arguments). Profiles are device-
///    independent, so their header fingerprint covers only the simulator
///    semantics version: a power recalibration retires every cached
///    *result* yet keeps every cached *profile*, turning the re-sweep
///    into recosts instead of re-simulations.
///  - `incumbents.jsonl`: the best-known placement per solve group
///    (block bitstring + model energy), the seed for a later process's
///    first cold MIP solve. Same fingerprint discipline as results (the
///    device registry shapes the model), but staleness here is harmless
///    by construction — a seed is re-validated at zero tolerance before
///    it may prune anything, and a surviving seed can only steer which
///    of several bit-equal-energy optima wins (the unique-optimum caveat
///    every exact-solver reuse path in this repo shares) — so the
///    fingerprint only avoids pointless seeding attempts, it is not a
///    correctness gate.
///
/// Writes are append-mode: save() appends only entries not yet on disk,
/// one complete record per line with no fsync, so concurrent writers
/// sharing a directory interleave whole lines instead of losing each
/// other's work to a rewrite race, and a killed writer truncates at most
/// its final line (skipped on load). A file that needs repair — absent,
/// corrupt, truncated mid-line, or carrying a stale fingerprint — is
/// instead rewritten atomically (temporary + rename). compact() forces
/// that sorted, deduplicated rewrite; report merging is its natural home
/// (`ramloc-batch --merge --cache-dir=...`).
///
/// Integrity (all four files, headers included):
///  - Every line is CRC32C-framed (support/Checksum.h): eight hex digits
///    plus a space prefix the JSON payload. A line whose checksum does
///    not match — a flipped bit, a torn tail, a fused pair of lines — is
///    never served: it is counted (`cachestore.crc_mismatch` metric and
///    crcMismatches()), preserved by appending it to `<file>.quarantine`
///    (deduplicated, so repeated loads do not grow the file), and
///    skipped. A file whose *header* line is damaged or stale yields an
///    empty-but-usable store. Pre-framing (v1) stores are retired by the
///    store-schema bump: their fingerprints can no longer match.
///  - Atomic rewrites and compactions take a per-file advisory flock
///    (`<file>.lock`, support/FileLock.h) with a bounded wait, so two
///    `--merge` or `--fsck --repair` processes sharing a directory
///    serialize their read-then-rename cycles. Append paths stay
///    lock-free whole-line appends.
///  - open() sweeps orphaned `<file>.tmp.<pid>` temporaries whose writer
///    is no longer alive (a rewrite killed between temp-write and
///    rename); fsck() reports them.
///  - fsck() walks every store file and reports per-file valid/corrupt/
///    stale/duplicate counts; with Repair it performs the locked
///    compaction rewrite (`ramloc-batch --fsck [--repair]`).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_CAMPAIGN_CACHESTORE_H
#define RAMLOC_CAMPAIGN_CACHESTORE_H

#include "campaign/Campaign.h"
#include "sim/ProfileCache.h"

#include <map>
#include <set>
#include <string>

namespace ramloc {

class CacheStore {
public:
  /// The fingerprint a valid results store must carry: a stable hash over
  /// the store schema, the report schema, and the full device registry
  /// (names, power tables, timing models). Any change to those — a new
  /// power calibration, a device table edit, a serialization bump —
  /// yields a new fingerprint and retires every existing cache.
  static std::string fingerprint();

  /// The fingerprint of the profile store: a stable hash over the profile
  /// schema and the simulator-semantics tag (bumped by hand whenever the
  /// interpreter's architectural behaviour changes). Deliberately
  /// independent of the device registry — execution profiles are
  /// device-independent, which is their whole value.
  static std::string profileFingerprint();

  /// The fingerprint of the incumbent store: its own schema plus the
  /// device registry (the registry shapes the placement models the
  /// assignments were optimal for).
  static std::string incumbentFingerprint();

  /// Binds the store to <Dir>/results.jsonl and <Dir>/profiles.jsonl,
  /// creating \p Dir when missing, and loads whatever valid entries the
  /// files hold. Returns false only when the directory cannot be
  /// created; invalid content merely yields an empty cache (see
  /// invalidated() / skippedLines()).
  bool open(const std::string &Dir, std::string *Error = nullptr);

  /// Persists every *successful* entry not yet on disk. Healthy files
  /// grow by appended lines; a torn tail line (another writer killed
  /// mid-append) is terminated with a newline and appended past, never
  /// rewritten away — a rewrite would discard records other writers
  /// appended since we opened. Only a file whose *header* is missing,
  /// damaged, or stale-fingerprinted is rewritten atomically.
  /// Failed results stay in-memory only: a failure may be a bug the next
  /// build fixes, and the fingerprint cannot see code changes, so
  /// persisting it would serve a stale error forever. Invalid profiles
  /// are never persisted.
  bool save(std::string *Error = nullptr);

  /// Sorted, deduplicated atomic rewrite of both files — the repair and
  /// garbage-collection path for stores grown by many appenders.
  bool compact(std::string *Error = nullptr);

  /// What a profile-store GC pass did.
  struct ProfileGcStats {
    size_t Kept = 0;
    /// Corrupt lines, entries under a stale semantics fingerprint, and
    /// duplicate keys (the newest occurrence wins).
    size_t DroppedInvalid = 0;
    /// Valid entries evicted to honour the size cap.
    size_t Evicted = 0;
    uint64_t BytesBefore = 0;
    uint64_t BytesAfter = 0;
  };

  /// Garbage-collects profiles.jsonl in place (atomic rewrite): drops
  /// corrupt lines and entries whose semantics fingerprint no longer
  /// matches, folds duplicate keys to their newest occurrence, and — when
  /// \p MaxBytes is non-zero — evicts the least-recently-appended entries
  /// until the file fits. Append order is the recency signal: save()
  /// appends new profiles, so earlier lines are older (a GC rewrite
  /// preserves the surviving order, keeping later passes meaningful).
  /// Operates on the file, not the in-memory cache; run it as a
  /// maintenance pass (`ramloc-batch --gc-profiles`), not mid-campaign —
  /// a later save() from this process may re-append evicted entries it
  /// still holds in memory.
  bool gcProfiles(uint64_t MaxBytes, ProfileGcStats &Stats,
                  std::string *Error = nullptr);

  /// Sorted, deduplicated atomic rewrite of incumbents.jsonl alone:
  /// drops corrupt lines and stale-fingerprint entries, folds duplicate
  /// groups to their best assignment. The incumbent-side companion of
  /// gcProfiles (`ramloc-batch --gc-profiles` runs both).
  bool compactIncumbents(std::string *Error = nullptr);

  //===--- Store verification (--fsck) -------------------------------------===//

  /// One store file's health as seen by fsck().
  struct FsckFile {
    std::string Name; ///< "results", "profiles", "incumbents", "progress".
    std::string Path;
    bool Present = false; ///< The file exists (possibly empty).
    /// The first line framed, parsed, and matched the expected schema and
    /// fingerprint. Vacuously true for absent or empty files.
    bool HeaderOk = true;
    size_t Valid = 0;     ///< CRC-valid, parseable records.
    size_t Corrupt = 0;   ///< Framing/CRC/parse failures (header included).
    size_t Stale = 0;     ///< Lines stranded under an unusable header.
    size_t Duplicate = 0; ///< Repeated keys — benign appender races.
    /// Damage repair would fix; duplicates alone are healthy appends.
    bool damaged() const {
      return (Present && !HeaderOk) || Corrupt != 0 || Stale != 0;
    }
  };

  /// What fsck() found across the whole cache directory.
  struct FsckReport {
    std::vector<FsckFile> Files;
    /// Orphaned `*.tmp.<pid>` temporaries of dead writers that open()
    /// swept from the directory.
    std::vector<std::string> OrphanedTemps;
    bool damaged() const {
      if (!OrphanedTemps.empty())
        return true;
      for (const FsckFile &F : Files)
        if (F.damaged())
          return true;
      return false;
    }
  };

  /// Walks all four store files (requires a prior successful open()) and
  /// fills \p Report; damaged record lines are quarantined as they are
  /// found. With \p Repair, every damaged file is rewritten under its
  /// lock — valid records only, deduplicated — and a journal whose
  /// header cannot be trusted is removed (corrupt lines are quarantined;
  /// valid lines stranded under a stale header fall with it). Returns
  /// false only when a repair rewrite itself fails.
  bool fsck(bool Repair, FsckReport &Report, std::string *Error = nullptr);

  //===--- Campaign progress journal (crash-safe resume) -------------------===//
  //
  // A fourth file, <dir>/progress.jsonl, records every *finished* job of
  // an in-flight campaign as one report-dialect line, appended as jobs
  // complete. A killed campaign loses at most its torn final line; a new
  // run with `--resume` replays the journal through the result cache,
  // re-runs only what is missing, and produces a report byte-identical
  // to the uninterrupted run (the report dialect round-trips exactly).
  // Unlike results.jsonl, the journal intentionally keeps failed and
  // degraded entries — its contract is "reproduce the interrupted run's
  // report", not "store trustworthy optima" — which is why it is a
  // separate file that is removed once the final report is safely out.

  /// Binds the journal to <dir>/progress.jsonl (requires a prior
  /// successful open()). With \p Resume, valid entries under a matching
  /// header — fingerprint() plus \p ConfigToken, which must encode
  /// anything that changes results (solver limits; NOT --jobs or
  /// --solver-threads, resume is byte-identical across those) — are
  /// loaded into journalEntries(); a missing, stale, or mismatched
  /// journal simply yields none. Without \p Resume any previous journal
  /// is discarded and a fresh header written.
  bool beginJournal(const std::string &ConfigToken, bool Resume,
                    std::string *Error = nullptr);

  /// Appends one finished job to the journal (one line, retried with
  /// backoff like every other append). No-op before beginJournal().
  bool appendJournal(const JobResult &R, std::string *Error = nullptr);

  /// Removes the journal file — call once the final report is durable;
  /// an orphaned journal is harmless but would be replayed by a later
  /// --resume of the same configuration.
  void clearJournal();

  /// Entries a resuming beginJournal() recovered, in journal order
  /// (first occurrence wins for duplicated keys).
  const std::vector<JobResult> &journalEntries() const {
    return JournalResults;
  }
  /// Corrupt/torn journal lines skipped during resume (diagnostics).
  size_t journalSkipped() const { return SkippedJournal; }
  const std::string &journalPath() const { return JournalPath; }

  /// The in-memory result cache backing this store. Point
  /// CampaignOptions::Cache here; runCampaign both serves lookups from it
  /// and inserts new results into it.
  ResultCache &cache() { return Cache; }
  const ResultCache &cache() const { return Cache; }

  /// The execution-profile cache backing this store. Point
  /// CampaignOptions::Profiles here so simulations recorded by earlier
  /// processes are recosted instead of re-run.
  ProfileCache &profiles() { return Profiles; }

  /// The incumbent store backing this store. Point
  /// CampaignOptions::Incumbents here so a solve group's first cold
  /// solve opens with the best-known placement from prior invocations.
  IncumbentStore &incumbents() { return Incumbents; }

  const std::string &path() const { return Path; }
  const std::string &profilePath() const { return ProfPath; }
  const std::string &incumbentPath() const { return IncPath; }

  /// Diagnostics from the last open().
  size_t loadedEntries() const { return Loaded; }
  size_t skippedLines() const { return Skipped; }
  size_t loadedProfiles() const { return LoadedProfs; }
  size_t skippedProfileLines() const { return SkippedProfs; }
  size_t loadedIncumbents() const { return LoadedIncs; }
  size_t skippedIncumbentLines() const { return SkippedIncs; }
  /// True when a results store existed but carried a different
  /// fingerprint (its entries were discarded wholesale).
  bool invalidated() const { return Invalidated; }
  /// Framing/CRC failures seen across every load since open() — each one
  /// also bumps the `cachestore.crc_mismatch` metric and lands in the
  /// owning file's `.quarantine` sibling.
  size_t crcMismatches() const { return CrcMismatches; }
  /// Orphaned `*.tmp.<pid>` temporaries (dead writer) swept by open().
  const std::vector<std::string> &sweptTempFiles() const {
    return SweptTemps;
  }

  /// Bounds the wait for a per-file rewrite lock (default 10 s). Tests
  /// dial it down to fail fast under the `cache.lock` fault site.
  void setLockWaitMs(unsigned Ms) { LockWaitMs = Ms; }

private:
  bool rewriteResults(std::string *Error);
  bool appendResults(bool TerminateTornTail, std::string *Error);
  bool rewriteProfiles(std::string *Error);
  bool appendProfiles(bool TerminateTornTail, std::string *Error);
  bool rewriteIncumbents(std::string *Error);
  bool appendIncumbents(bool TerminateTornTail, std::string *Error);

  ResultCache Cache;
  ProfileCache Profiles;
  IncumbentStore Incumbents;
  std::string Path;
  std::string ProfPath;
  std::string IncPath;
  /// Cache keys already durable in each file (loaded or saved by us).
  /// save() appends only entries outside these sets; whether appending is
  /// safe is probed from the file itself at save() time (valid matching
  /// header, newline-terminated tail) so a concurrent writer's appends
  /// are extended, never clobbered.
  std::set<std::string> PersistedKeys;
  std::set<std::string> PersistedProfKeys;
  /// Incumbents durable per group *at an energy*: an improved assignment
  /// re-appends (best-wins on load), an unchanged one does not.
  std::map<std::string, double> PersistedIncEnergy;
  std::string JournalPath;
  std::vector<JobResult> JournalResults;
  size_t SkippedJournal = 0;
  size_t Loaded = 0;
  size_t Skipped = 0;
  size_t LoadedProfs = 0;
  size_t SkippedProfs = 0;
  size_t LoadedIncs = 0;
  size_t SkippedIncs = 0;
  size_t CrcMismatches = 0;
  std::vector<std::string> SweptTemps;
  unsigned LockWaitMs = 10000;
  bool Invalidated = false;
};

} // namespace ramloc

#endif // RAMLOC_CAMPAIGN_CACHESTORE_H
