//===- mir/CFG.h - control flow graph ---------------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function control-flow graph: successor/predecessor lists and
/// terminator classification. Succ(b) is one of the model's parameters
/// (Figure 3): a block needs instrumentation exactly when one of its
/// successors lives in the other memory (Eq. 5).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_MIR_CFG_H
#define RAMLOC_MIR_CFG_H

#include "mir/Module.h"

#include <vector>

namespace ramloc {

/// How a block transfers control to its successors. This determines which
/// Figure 4 rewriting applies when the edge crosses memories.
enum class TermKind : uint8_t {
  Fallthrough, ///< no terminator: falls into the next block
  Uncond,      ///< b label
  Cond,        ///< bcc label (+ fallthrough)
  CmpBranch,   ///< cbz/cbnz rn, label (+ fallthrough): the paper's "short
               ///< conditional branch", needing the cmp+it rewrite
  Return,      ///< bx lr / pop {...pc}
  Halt,        ///< bkpt / wfi
  IndirectJump ///< ldr pc, =label or bx rn: already long-range
};

/// CFG edges of one block.
struct BlockEdges {
  TermKind Term = TermKind::Fallthrough;
  /// All successors, by block index within the function.
  std::vector<unsigned> Succs;
  /// All predecessors, by block index.
  std::vector<unsigned> Preds;
  /// Index of the branch-taken successor (Cond/CmpBranch/Uncond), or -1.
  int TakenSucc = -1;
  /// Index of the fallthrough successor, or -1.
  int FallSucc = -1;
};

/// A per-function CFG. Build once; invalidated by any block edit.
class CFG {
public:
  /// Builds the CFG for \p F. \p F must pass the verifier; malformed input
  /// asserts.
  static CFG build(const Function &F);

  const BlockEdges &edges(unsigned Block) const {
    assert(Block < Edges.size() && "block index out of range");
    return Edges[Block];
  }

  unsigned size() const { return Edges.size(); }

  /// Blocks in reverse postorder from the entry. Unreachable blocks are
  /// appended after reachable ones in index order.
  const std::vector<unsigned> &reversePostOrder() const { return RPO; }

  /// True if \p Block is reachable from the entry.
  bool isReachable(unsigned Block) const { return Reachable[Block]; }

private:
  std::vector<BlockEdges> Edges;
  std::vector<unsigned> RPO;
  std::vector<bool> Reachable;
};

} // namespace ramloc

#endif // RAMLOC_MIR_CFG_H
