//===- mir/Loops.h - natural loop detection ---------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loop detection from back edges (u -> h where h dominates u).
/// The per-block loop depth drives the paper's static frequency estimate:
/// "A simple estimate can be made of this parameter by simply considering
/// the block's loop-depth" (Section 4.1, Fb).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_MIR_LOOPS_H
#define RAMLOC_MIR_LOOPS_H

#include "mir/CFG.h"
#include "mir/Dominators.h"

#include <vector>

namespace ramloc {

/// One natural loop: a header plus its body blocks.
struct Loop {
  unsigned Header = 0;
  /// All blocks in the loop, including the header.
  std::vector<unsigned> Blocks;
  /// Latches: blocks with a back edge to the header.
  std::vector<unsigned> Latches;
};

/// Loops of one function, with per-block nesting depth.
class LoopInfo {
public:
  static LoopInfo build(const CFG &G, const DominatorTree &DT);

  /// Nesting depth of \p Block: 0 outside any loop.
  unsigned depth(unsigned Block) const {
    assert(Block < Depth.size() && "block index out of range");
    return Depth[Block];
  }

  const std::vector<Loop> &loops() const { return Loops; }

  /// True if edge From -> To is a back edge of some detected loop.
  bool isBackEdge(unsigned From, unsigned To) const;

  /// True if \p From is inside a loop whose header is \p Header and the
  /// edge From -> To leaves that loop.
  bool isExitEdge(unsigned From, unsigned To) const;

private:
  std::vector<Loop> Loops;
  std::vector<unsigned> Depth;
  /// Per-block bitset index of containing loops (small counts; vectors).
  std::vector<std::vector<unsigned>> ContainingLoops;
};

} // namespace ramloc

#endif // RAMLOC_MIR_LOOPS_H
