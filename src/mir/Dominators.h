//===- mir/Dominators.h - dominator tree ------------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator computation (Cooper-Harvey-Kennedy iterative algorithm),
/// used to find natural loops for the static frequency estimate Fb.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_MIR_DOMINATORS_H
#define RAMLOC_MIR_DOMINATORS_H

#include "mir/CFG.h"

#include <vector>

namespace ramloc {

/// Immediate-dominator tree over a function CFG. Unreachable blocks have
/// no dominator information (idom == -1, dominated only by themselves).
class DominatorTree {
public:
  /// Builds dominators for \p G (entry = block 0).
  static DominatorTree build(const CFG &G);

  /// Immediate dominator of \p Block, or -1 for the entry / unreachable
  /// blocks.
  int idom(unsigned Block) const {
    assert(Block < Idom.size() && "block index out of range");
    return Idom[Block];
  }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(unsigned A, unsigned B) const;

  unsigned size() const { return Idom.size(); }

private:
  std::vector<int> Idom;
};

} // namespace ramloc

#endif // RAMLOC_MIR_DOMINATORS_H
