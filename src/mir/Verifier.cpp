//===- mir/Verifier.cpp - module well-formedness checks ----------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "mir/Verifier.h"

#include "support/Format.h"

#include <set>

using namespace ramloc;

namespace {

class Verifier {
public:
  Verifier(const Module &M, const VerifierOptions &Opts) : M(M), Opts(Opts) {}

  std::vector<std::string> run() {
    checkModule();
    for (const Function &F : M.Functions)
      checkFunction(F);
    return std::move(Errors);
  }

private:
  void error(const char *Fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list Args;
    va_start(Args, Fmt);
    Errors.push_back(formatStringV(Fmt, Args));
    va_end(Args);
  }

  void checkModule() {
    std::set<std::string> Names;
    for (const Function &F : M.Functions) {
      if (F.Name.empty())
        error("function with empty name");
      if (!Names.insert(F.Name).second)
        error("duplicate function name '%s'", F.Name.c_str());
    }
    std::set<std::string> DataNames;
    for (const DataObject &D : M.Data) {
      if (D.Name.empty())
        error("data object with empty name");
      if (Names.count(D.Name))
        error("data object '%s' shadows a function", D.Name.c_str());
      if (!DataNames.insert(D.Name).second)
        error("duplicate data object '%s'", D.Name.c_str());
      if (D.Align == 0 || (D.Align & (D.Align - 1)) != 0)
        error("data object '%s' has non-power-of-two alignment %u",
              D.Name.c_str(), D.Align);
      if (D.Sect == DataObject::Section::Bss && !D.Bytes.empty())
        error("bss object '%s' must not have initial bytes", D.Name.c_str());
    }
    if (!M.findFunction(M.EntryFunction))
      error("entry function '%s' not found", M.EntryFunction.c_str());
  }

  bool symbolExists(const Function &F, const std::string &Sym) const {
    return F.blockIndex(Sym) >= 0 || M.functionIndex(Sym) >= 0 ||
           M.findData(Sym) != nullptr;
  }

  void checkFunction(const Function &F) {
    if (F.Blocks.empty()) {
      error("function '%s' has no blocks", F.Name.c_str());
      return;
    }
    std::set<std::string> Labels;
    for (const BasicBlock &BB : F.Blocks) {
      if (BB.Label.empty())
        error("%s: block with empty label", F.Name.c_str());
      if (!Labels.insert(BB.Label).second)
        error("%s: duplicate label '%s'", F.Name.c_str(), BB.Label.c_str());
    }

    for (unsigned B = 0, NB = F.Blocks.size(); B != NB; ++B) {
      const BasicBlock &BB = F.Blocks[B];
      if (BB.Instrs.empty()) {
        error("%s:%s: empty block", F.Name.c_str(), BB.Label.c_str());
        continue;
      }
      checkBlock(F, BB, /*IsLast=*/B + 1 == NB);
    }
  }

  void checkBlock(const Function &F, const BasicBlock &BB, bool IsLast) {
    const char *FN = F.Name.c_str();
    const char *BN = BB.Label.c_str();

    unsigned ItRemaining = 0; // instructions still covered by an IT block
    Cond ItCond = Cond::AL;
    bool ItElse = false;

    for (unsigned I = 0, E = BB.Instrs.size(); I != E; ++I) {
      const Instr &In = BB.Instrs[I];
      bool Last = I + 1 == E;

      if (In.isTerminator() && !Last)
        error("%s:%s: terminator '%s' before end of block", FN, BN,
              opMnemonic(In.Kind));

      // IT-block bookkeeping.
      if (In.Kind == OpKind::It) {
        if (ItRemaining != 0)
          error("%s:%s: nested it block", FN, BN);
        ItRemaining = static_cast<unsigned>(In.Imm & 3);
        ItElse = (In.Imm & 4) != 0;
        ItCond = In.CondCode;
        if (ItRemaining == 0 || ItRemaining > 2)
          error("%s:%s: it block with bad length %u", FN, BN, ItRemaining);
        continue;
      }
      if (ItRemaining != 0) {
        Cond Expected = ItCond;
        if (ItElse && ItRemaining == 1)
          Expected = invertCond(ItCond);
        if (In.CondCode != Expected)
          error("%s:%s: instruction %u condition does not match it block",
                FN, BN, I);
        --ItRemaining;
      } else if (In.CondCode != Cond::AL && In.Kind != OpKind::BCond) {
        error("%s:%s: conditional instruction outside it block", FN, BN);
      }

      // Symbol resolution.
      switch (In.Kind) {
      case OpKind::B:
      case OpKind::BCond:
      case OpKind::Cbz:
      case OpKind::Cbnz:
        if (F.blockIndex(In.Sym) < 0)
          error("%s:%s: branch target '%s' not found", FN, BN,
                In.Sym.c_str());
        break;
      case OpKind::Bl:
        if (M.functionIndex(In.Sym) < 0)
          error("%s:%s: call target '%s' not found", FN, BN, In.Sym.c_str());
        break;
      case OpKind::LdrLit:
        if (!In.Sym.empty() && !symbolExists(F, In.Sym))
          error("%s:%s: literal symbol '%s' not found", FN, BN,
                In.Sym.c_str());
        break;
      default:
        break;
      }

      // Scratch-register discipline (r7 reserved for the instrumenter).
      if (Opts.EnforceScratchDiscipline && F.Optimizable &&
          writesScratch(In))
        error("%s:%s: optimizable function writes reserved scratch r%u", FN,
              BN, static_cast<unsigned>(ScratchReg));
    }

    if (ItRemaining != 0)
      error("%s:%s: it block runs past end of block", FN, BN);

    if (IsLast && !BB.Instrs.back().isTerminator())
      error("%s:%s: function falls through past its last block", FN, BN);
  }

  /// True if \p In writes ScratchReg. Instrumenter-emitted sequences load
  /// it via LdrLit, which we allow (they are emitted post-verification and
  /// re-verified with the discipline already satisfied by construction).
  static bool writesScratch(const Instr &In) {
    switch (In.Kind) {
    case OpKind::CmpImm:
    case OpKind::CmpReg:
    case OpKind::Tst:
    case OpKind::StrImm:
    case OpKind::StrReg:
    case OpKind::StrbImm:
    case OpKind::StrbReg:
    case OpKind::StrhImm:
    case OpKind::Push:
    case OpKind::B:
    case OpKind::BCond:
    case OpKind::Cbz:
    case OpKind::Cbnz:
    case OpKind::Bl:
    case OpKind::Blx:
    case OpKind::Bx:
    case OpKind::It:
    case OpKind::Nop:
    case OpKind::Wfi:
    case OpKind::Bkpt:
      return false;
    case OpKind::LdrLit:
      return false; // instrumenter-owned; see doc comment
    case OpKind::Pop:
      return (In.Imm & (1 << ScratchReg)) != 0;
    default:
      return In.Regs[0] == ScratchReg;
    }
  }

  const Module &M;
  const VerifierOptions &Opts;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> ramloc::verifyModule(const Module &M,
                                              const VerifierOptions &Opts) {
  return Verifier(M, Opts).run();
}

bool ramloc::moduleIsValid(const Module &M, const VerifierOptions &Opts) {
  return verifyModule(M, Opts).empty();
}
