//===- mir/Frequency.cpp - static execution frequency -------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "mir/Frequency.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ramloc;

FunctionFrequency
ramloc::estimateFunctionFrequency(const Function &F, const CFG &G,
                                  const LoopInfo &LI,
                                  const FrequencyOptions &Opts) {
  FunctionFrequency FF;
  unsigned N = F.Blocks.size();
  FF.BlockFreq.assign(N, 0.0);
  FF.TakenProb.assign(N, 1.0);

  for (unsigned B = 0; B != N; ++B) {
    if (!G.isReachable(B))
      continue;
    FF.BlockFreq[B] =
        std::pow(Opts.LoopIterations, static_cast<double>(LI.depth(B)));

    const BlockEdges &E = G.edges(B);
    if (E.Term != TermKind::Cond && E.Term != TermKind::CmpBranch)
      continue;
    assert(E.TakenSucc >= 0 && E.FallSucc >= 0 && "cond without targets");
    unsigned Taken = static_cast<unsigned>(E.TakenSucc);
    unsigned Fall = static_cast<unsigned>(E.FallSucc);
    if (LI.isBackEdge(B, Taken))
      FF.TakenProb[B] = Opts.BackEdgeProb;
    else if (LI.isBackEdge(B, Fall))
      FF.TakenProb[B] = 1.0 - Opts.BackEdgeProb;
    else if (LI.isExitEdge(B, Taken) && !LI.isExitEdge(B, Fall))
      FF.TakenProb[B] = 1.0 - Opts.BackEdgeProb;
    else if (LI.isExitEdge(B, Fall) && !LI.isExitEdge(B, Taken))
      FF.TakenProb[B] = Opts.BackEdgeProb;
    else
      FF.TakenProb[B] = Opts.NeutralProb;
  }
  return FF;
}

namespace {

/// Static call multiplicities: Calls[f][g] = expected `bl g` executions per
/// invocation of f.
std::vector<std::vector<double>>
countCallsPerInvocation(const Module &M,
                        const std::vector<FunctionFrequency> &Local) {
  unsigned NF = M.Functions.size();
  std::vector<std::vector<double>> Calls(NF, std::vector<double>(NF, 0.0));
  for (unsigned F = 0; F != NF; ++F) {
    const Function &Fn = M.Functions[F];
    for (unsigned B = 0, NB = Fn.Blocks.size(); B != NB; ++B) {
      for (const Instr &I : Fn.Blocks[B].Instrs) {
        if (I.Kind != OpKind::Bl)
          continue;
        int G = M.functionIndex(I.Sym);
        assert(G >= 0 && "call to unknown function");
        Calls[F][static_cast<unsigned>(G)] += Local[F].BlockFreq[B];
      }
    }
  }
  return Calls;
}

} // namespace

ModuleFrequency ramloc::estimateModuleFrequency(const Module &M,
                                                const FrequencyOptions &Opts) {
  ModuleFrequency MF;
  unsigned NF = M.Functions.size();
  MF.BlockFreq.resize(NF);
  MF.TakenProb.resize(NF);
  MF.CallCount.assign(NF, 0.0);

  std::vector<FunctionFrequency> Local(NF);
  for (unsigned F = 0; F != NF; ++F) {
    const Function &Fn = M.Functions[F];
    CFG G = CFG::build(Fn);
    DominatorTree DT = DominatorTree::build(G);
    LoopInfo LI = LoopInfo::build(G, DT);
    Local[F] = estimateFunctionFrequency(Fn, G, LI, Opts);
  }

  auto Calls = countCallsPerInvocation(M, Local);

  int Entry = M.functionIndex(M.EntryFunction);
  assert(Entry >= 0 && "entry function not found");

  // Fixed point: CallCount = e + Calls^T * CallCount. Converges in one pass
  // for acyclic call graphs processed repeatedly; recursion is capped by
  // the iteration limit (none of the provided workloads recurse).
  constexpr unsigned MaxIters = 20;
  constexpr double CountCap = 1e12;
  for (unsigned Iter = 0; Iter != MaxIters; ++Iter) {
    std::vector<double> Next(NF, 0.0);
    Next[static_cast<unsigned>(Entry)] = 1.0;
    for (unsigned F = 0; F != NF; ++F)
      for (unsigned G = 0; G != NF; ++G)
        Next[G] += MF.CallCount[F] * Calls[F][G];
    for (double &V : Next)
      V = std::min(V, CountCap);
    if (Next == MF.CallCount)
      break;
    MF.CallCount = std::move(Next);
  }

  for (unsigned F = 0; F != NF; ++F) {
    unsigned NB = M.Functions[F].Blocks.size();
    MF.BlockFreq[F].assign(NB, 0.0);
    for (unsigned B = 0; B != NB; ++B)
      MF.BlockFreq[F][B] = MF.CallCount[F] * Local[F].BlockFreq[B];
    MF.TakenProb[F] = Local[F].TakenProb;
  }
  return MF;
}

ModuleFrequency ramloc::moduleFrequencyFromProfile(
    const Module &M, const std::map<std::string, uint64_t> &Counts,
    const FrequencyOptions &Opts) {
  // Start from the static estimate to inherit the taken probabilities,
  // then overwrite block frequencies with measured counts.
  ModuleFrequency MF = estimateModuleFrequency(M, Opts);
  for (unsigned F = 0, NF = M.Functions.size(); F != NF; ++F) {
    const Function &Fn = M.Functions[F];
    for (unsigned B = 0, NB = Fn.Blocks.size(); B != NB; ++B) {
      auto It = Counts.find(Fn.Name + ":" + Fn.Blocks[B].Label);
      MF.BlockFreq[F][B] =
          It == Counts.end() ? 0.0 : static_cast<double>(It->second);
    }
    MF.CallCount[F] = Fn.Blocks.empty() ? 0.0 : MF.BlockFreq[F][0];
  }
  return MF;
}
