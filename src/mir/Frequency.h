//===- mir/Frequency.h - static execution frequency -------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model parameter Fb (Figure 3): how often each block executes.
/// Section 4.1 allows either profiling or a static estimate from the loop
/// depth; Section 6 shows the estimate is usually good enough. We provide
/// both: the static estimator here and profiled counts from sim/Trace.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_MIR_FREQUENCY_H
#define RAMLOC_MIR_FREQUENCY_H

#include "mir/CFG.h"
#include "mir/Loops.h"

#include <map>
#include <string>
#include <vector>

namespace ramloc {

/// Frequencies for one function, relative to a single invocation.
struct FunctionFrequency {
  /// Estimated executions of each block per function call.
  std::vector<double> BlockFreq;
  /// Estimated taken probability of each block's conditional terminator
  /// (1.0 for unconditional branches; unused otherwise).
  std::vector<double> TakenProb;
};

/// Whole-program frequencies: per (function, block) absolute counts.
struct ModuleFrequency {
  /// Outer index = function index in the module, inner = block index.
  std::vector<std::vector<double>> BlockFreq;
  /// Taken probability per (function, block).
  std::vector<std::vector<double>> TakenProb;
  /// Estimated invocations of each function.
  std::vector<double> CallCount;
};

/// Tunables for the static estimator.
struct FrequencyOptions {
  /// Assumed iteration count per loop level (Fb ~ Iter^depth).
  double LoopIterations = 10.0;
  /// Taken probability assigned to loop back edges.
  double BackEdgeProb = 0.9;
  /// Taken probability assigned to non-loop conditional branches.
  double NeutralProb = 0.5;
};

/// Loop-depth-based estimate of per-call block frequencies for \p F.
FunctionFrequency estimateFunctionFrequency(const Function &F, const CFG &G,
                                            const LoopInfo &LI,
                                            const FrequencyOptions &Opts = {});

/// Whole-module estimate: combines per-function estimates through the call
/// graph (entry function called once). Recursion is handled by a damped
/// fixed-point iteration.
ModuleFrequency estimateModuleFrequency(const Module &M,
                                        const FrequencyOptions &Opts = {});

/// Builds a ModuleFrequency from measured per-block execution counts (the
/// "w/Frequency" variant in Figure 5). \p Counts maps "func:label" to the
/// observed execution count. Taken probabilities are estimated statically.
ModuleFrequency
moduleFrequencyFromProfile(const Module &M,
                           const std::map<std::string, uint64_t> &Counts,
                           const FrequencyOptions &Opts = {});

} // namespace ramloc

#endif // RAMLOC_MIR_FREQUENCY_H
