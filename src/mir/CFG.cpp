//===- mir/CFG.cpp - control flow graph -------------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "mir/CFG.h"

#include <algorithm>
#include <cassert>

using namespace ramloc;

CFG CFG::build(const Function &F) {
  CFG G;
  unsigned N = F.Blocks.size();
  G.Edges.resize(N);
  G.Reachable.assign(N, false);

  auto addEdge = [&G](unsigned From, unsigned To) {
    G.Edges[From].Succs.push_back(To);
    G.Edges[To].Preds.push_back(From);
  };

  for (unsigned B = 0; B != N; ++B) {
    const BasicBlock &BB = F.Blocks[B];
    BlockEdges &E = G.Edges[B];
    const Instr *Term = BB.terminator();

    if (!Term) {
      E.Term = TermKind::Fallthrough;
      assert(B + 1 < N && "fallthrough off the end of the function");
      E.FallSucc = static_cast<int>(B + 1);
      addEdge(B, B + 1);
      continue;
    }

    switch (Term->Kind) {
    case OpKind::B: {
      E.Term = TermKind::Uncond;
      int T = F.blockIndex(Term->Sym);
      assert(T >= 0 && "branch target not found");
      E.TakenSucc = T;
      addEdge(B, static_cast<unsigned>(T));
      break;
    }
    case OpKind::BCond:
    case OpKind::Cbz:
    case OpKind::Cbnz: {
      E.Term = Term->Kind == OpKind::BCond ? TermKind::Cond
                                           : TermKind::CmpBranch;
      int T = F.blockIndex(Term->Sym);
      assert(T >= 0 && "branch target not found");
      assert(B + 1 < N && "conditional fallthrough off function end");
      E.TakenSucc = T;
      E.FallSucc = static_cast<int>(B + 1);
      addEdge(B, static_cast<unsigned>(T));
      // If taken target == fallthrough the dedup pass below keeps one edge.
      if (static_cast<unsigned>(T) != B + 1)
        addEdge(B, B + 1);
      break;
    }
    case OpKind::Bx:
      if (Term->Regs[0] == LR) {
        E.Term = TermKind::Return;
      } else {
        E.Term = TermKind::IndirectJump;
        // Successors unknown statically; instrumented code is not
        // re-analysed (the optimization runs on clean input).
      }
      break;
    case OpKind::Pop:
      assert(Term->isPopReturn() && "pop terminator must restore pc");
      E.Term = TermKind::Return;
      break;
    case OpKind::LdrLit: {
      assert(Term->isLongJump() && "ldr terminator must target pc");
      int T = Term->Sym.empty() ? -1 : F.blockIndex(Term->Sym);
      if (T >= 0) {
        E.Term = TermKind::IndirectJump;
        E.TakenSucc = T;
        addEdge(B, static_cast<unsigned>(T));
      } else {
        E.Term = TermKind::IndirectJump;
      }
      break;
    }
    case OpKind::Bkpt:
      E.Term = TermKind::Halt;
      break;
    default:
      assert(false && "unhandled terminator kind");
    }
  }

  // De-duplicate any double edges (cond branch to the next block).
  for (auto &E : G.Edges) {
    auto dedup = [](std::vector<unsigned> &V) {
      std::vector<unsigned> Out;
      for (unsigned X : V)
        if (std::find(Out.begin(), Out.end(), X) == Out.end())
          Out.push_back(X);
      V = std::move(Out);
    };
    dedup(E.Succs);
    dedup(E.Preds);
  }

  // Reverse postorder DFS from the entry.
  if (N != 0) {
    std::vector<unsigned> PostOrder;
    PostOrder.reserve(N);
    std::vector<int> State(N, 0); // 0 = unvisited, 1 = on stack, 2 = done
    std::vector<std::pair<unsigned, unsigned>> Stack;
    Stack.push_back({0, 0});
    State[0] = 1;
    while (!Stack.empty()) {
      auto &[Node, NextSucc] = Stack.back();
      if (NextSucc < G.Edges[Node].Succs.size()) {
        unsigned S = G.Edges[Node].Succs[NextSucc++];
        if (State[S] == 0) {
          State[S] = 1;
          Stack.push_back({S, 0});
        }
      } else {
        State[Node] = 2;
        G.Reachable[Node] = true;
        PostOrder.push_back(Node);
        Stack.pop_back();
      }
    }
    G.RPO.assign(PostOrder.rbegin(), PostOrder.rend());
    for (unsigned B = 0; B != N; ++B)
      if (!G.Reachable[B])
        G.RPO.push_back(B);
  }

  return G;
}
