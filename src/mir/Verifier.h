//===- mir/Verifier.h - module well-formedness checks -----------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural validation run before linking and before/after the code
/// transformation: label resolution, terminator placement, IT-block
/// consistency, reserved-scratch-register discipline.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_MIR_VERIFIER_H
#define RAMLOC_MIR_VERIFIER_H

#include "mir/Module.h"

#include <string>
#include <vector>

namespace ramloc {

/// Verifier knobs.
struct VerifierOptions {
  /// When set, optimizable functions must not use the reserved scratch
  /// register (ScratchReg = r7) so the instrumenter can always clobber it.
  bool EnforceScratchDiscipline = true;
};

/// Verifies \p M; returns diagnostic strings, empty when well-formed.
std::vector<std::string> verifyModule(const Module &M,
                                      const VerifierOptions &Opts = {});

/// Convenience: true when verifyModule reports no errors.
bool moduleIsValid(const Module &M, const VerifierOptions &Opts = {});

} // namespace ramloc

#endif // RAMLOC_MIR_VERIFIER_H
