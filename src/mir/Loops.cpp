//===- mir/Loops.cpp - natural loop detection --------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "mir/Loops.h"

#include <algorithm>

using namespace ramloc;

LoopInfo LoopInfo::build(const CFG &G, const DominatorTree &DT) {
  LoopInfo LI;
  unsigned N = G.size();
  LI.Depth.assign(N, 0);
  LI.ContainingLoops.resize(N);

  // Collect back edges and group them by header.
  std::vector<std::pair<unsigned, unsigned>> BackEdges; // (latch, header)
  for (unsigned B = 0; B != N; ++B) {
    if (!G.isReachable(B))
      continue;
    for (unsigned S : G.edges(B).Succs)
      if (DT.dominates(S, B))
        BackEdges.push_back({B, S});
  }

  // Build one natural loop per header, merging latches.
  std::vector<int> HeaderLoop(N, -1);
  for (auto [Latch, Header] : BackEdges) {
    int LoopIdx = HeaderLoop[Header];
    if (LoopIdx < 0) {
      LoopIdx = static_cast<int>(LI.Loops.size());
      HeaderLoop[Header] = LoopIdx;
      Loop L;
      L.Header = Header;
      L.Blocks.push_back(Header);
      LI.Loops.push_back(std::move(L));
    }
    Loop &L = LI.Loops[static_cast<unsigned>(LoopIdx)];
    L.Latches.push_back(Latch);

    // Natural loop body: reverse reachability from the latch without
    // passing through the header.
    std::vector<unsigned> Work;
    auto addBlock = [&](unsigned B) {
      if (std::find(L.Blocks.begin(), L.Blocks.end(), B) == L.Blocks.end()) {
        L.Blocks.push_back(B);
        Work.push_back(B);
      }
    };
    addBlock(Latch);
    while (!Work.empty()) {
      unsigned B = Work.back();
      Work.pop_back();
      for (unsigned P : G.edges(B).Preds)
        if (G.isReachable(P))
          addBlock(P);
    }
  }

  for (unsigned LIdx = 0, E = LI.Loops.size(); LIdx != E; ++LIdx) {
    Loop &L = LI.Loops[LIdx];
    std::sort(L.Blocks.begin(), L.Blocks.end());
    std::sort(L.Latches.begin(), L.Latches.end());
    L.Latches.erase(std::unique(L.Latches.begin(), L.Latches.end()),
                    L.Latches.end());
    for (unsigned B : L.Blocks) {
      ++LI.Depth[B];
      LI.ContainingLoops[B].push_back(LIdx);
    }
  }
  return LI;
}

bool LoopInfo::isBackEdge(unsigned From, unsigned To) const {
  for (unsigned LIdx : ContainingLoops[From]) {
    const Loop &L = Loops[LIdx];
    if (L.Header == To &&
        std::binary_search(L.Latches.begin(), L.Latches.end(), From))
      return true;
  }
  return false;
}

bool LoopInfo::isExitEdge(unsigned From, unsigned To) const {
  for (unsigned LIdx : ContainingLoops[From]) {
    const Loop &L = Loops[LIdx];
    if (!std::binary_search(L.Blocks.begin(), L.Blocks.end(), To))
      return true;
  }
  return false;
}
