//===- mir/Module.h - machine IR containers ---------------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine IR the optimization operates on: a Module of Functions made
/// of BasicBlocks of Instrs, plus data objects assigned to flash (.rodata)
/// or RAM (.data/.bss). Each basic block records its "home" memory, which
/// the optimization rewrites from flash to RAM for the selected set R.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_MIR_MODULE_H
#define RAMLOC_MIR_MODULE_H

#include "isa/Instr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ramloc {

/// Which physical memory something lives in.
enum class MemKind : uint8_t {
  Flash,
  Ram,
};

inline const char *memKindName(MemKind M) {
  return M == MemKind::Flash ? "flash" : "ram";
}

/// A maximal straight-line code sequence; control enters at the top and
/// leaves via the terminator (or falls through to the next block).
struct BasicBlock {
  /// Label, unique within the enclosing function.
  std::string Label;
  std::vector<Instr> Instrs;
  /// The memory this block is placed in. The optimization flips selected
  /// blocks to MemKind::Ram; the linker then moves them to .ramcode.
  MemKind Home = MemKind::Flash;

  BasicBlock() = default;
  explicit BasicBlock(std::string Label) : Label(std::move(Label)) {}

  bool empty() const { return Instrs.empty(); }

  /// The terminator, or nullptr if the block falls through.
  const Instr *terminator() const {
    if (Instrs.empty() || !Instrs.back().isTerminator())
      return nullptr;
    return &Instrs.back();
  }
};

/// A function: an ordered list of basic blocks; entry is Blocks[0].
struct Function {
  std::string Name;
  std::vector<BasicBlock> Blocks;
  /// False for "library" code the optimization must not touch. The paper's
  /// prototype cannot see statically linked library code (Section 6); we
  /// reproduce that limitation by marking soft-float helpers and similar
  /// routines non-optimizable.
  bool Optimizable = true;

  Function() = default;
  explicit Function(std::string Name) : Name(std::move(Name)) {}

  /// Index of the block labelled \p Label, or -1.
  int blockIndex(const std::string &Label) const;

  BasicBlock *findBlock(const std::string &Label);
  const BasicBlock *findBlock(const std::string &Label) const;

  /// Total code bytes of all blocks (excludes literal pools).
  unsigned codeSizeBytes() const;
};

/// A statically allocated data object.
struct DataObject {
  enum class Section : uint8_t {
    Rodata, ///< constants, stay in flash
    Data,   ///< initialised variables, copied to RAM at startup
    Bss,    ///< zero-initialised RAM
  };

  std::string Name;
  Section Sect = Section::Data;
  /// Initial contents; for Bss this is empty and Size is used instead.
  std::vector<uint8_t> Bytes;
  uint32_t Size = 0;
  uint32_t Align = 4;

  uint32_t sizeBytes() const {
    return Sect == Section::Bss ? Size
                                : static_cast<uint32_t>(Bytes.size());
  }
};

/// A whole program: functions plus data, with a designated entry function.
struct Module {
  std::string Name = "module";
  std::vector<Function> Functions;
  std::vector<DataObject> Data;
  std::string EntryFunction = "main";

  Function *findFunction(const std::string &Name);
  const Function *findFunction(const std::string &Name) const;
  int functionIndex(const std::string &Name) const;

  DataObject *findData(const std::string &Name);
  const DataObject *findData(const std::string &Name) const;

  /// Appends a word-aligned .rodata object built from 32-bit words.
  DataObject &addRodataWords(const std::string &Name,
                             const std::vector<uint32_t> &Words);
  /// Appends a .data object built from 32-bit words.
  DataObject &addDataWords(const std::string &Name,
                           const std::vector<uint32_t> &Words);
  /// Appends an uninitialised .bss object of \p Bytes bytes.
  DataObject &addBss(const std::string &Name, uint32_t Bytes,
                     uint32_t Align = 4);

  /// Count of blocks across all functions.
  unsigned numBlocks() const;
};

} // namespace ramloc

#endif // RAMLOC_MIR_MODULE_H
