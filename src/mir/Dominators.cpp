//===- mir/Dominators.cpp - dominator tree -----------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "mir/Dominators.h"

using namespace ramloc;

DominatorTree DominatorTree::build(const CFG &G) {
  DominatorTree DT;
  unsigned N = G.size();
  DT.Idom.assign(N, -1);
  if (N == 0)
    return DT;

  // Map block -> RPO position; unreachable blocks keep -1 and are skipped.
  std::vector<int> RpoPos(N, -1);
  const auto &RPO = G.reversePostOrder();
  for (unsigned I = 0, E = RPO.size(); I != E; ++I)
    if (G.isReachable(RPO[I]))
      RpoPos[RPO[I]] = static_cast<int>(I);

  auto intersect = [&](int A, int B) {
    while (A != B) {
      while (RpoPos[A] > RpoPos[B])
        A = DT.Idom[static_cast<unsigned>(A)];
      while (RpoPos[B] > RpoPos[A])
        B = DT.Idom[static_cast<unsigned>(B)];
    }
    return A;
  };

  DT.Idom[0] = 0; // sentinel: entry's idom is itself during iteration
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Block : RPO) {
      if (Block == 0 || !G.isReachable(Block))
        continue;
      int NewIdom = -1;
      for (unsigned P : G.edges(Block).Preds) {
        if (!G.isReachable(P) || DT.Idom[P] == -1)
          continue;
        NewIdom = NewIdom == -1 ? static_cast<int>(P)
                                : intersect(NewIdom, static_cast<int>(P));
      }
      if (NewIdom != -1 && DT.Idom[Block] != NewIdom) {
        DT.Idom[Block] = NewIdom;
        Changed = true;
      }
    }
  }
  DT.Idom[0] = -1; // restore the convention: the entry has no idom
  return DT;
}

bool DominatorTree::dominates(unsigned A, unsigned B) const {
  assert(A < Idom.size() && B < Idom.size() && "block index out of range");
  if (A == B)
    return true;
  int Cur = Idom[B];
  while (Cur != -1) {
    if (static_cast<unsigned>(Cur) == A)
      return true;
    if (Cur == 0)
      break;
    Cur = Idom[static_cast<unsigned>(Cur)];
  }
  return false;
}
