//===- mir/Module.cpp - machine IR containers -------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "mir/Module.h"

#include "isa/Encoding.h"

using namespace ramloc;

int Function::blockIndex(const std::string &Label) const {
  for (unsigned I = 0, E = Blocks.size(); I != E; ++I)
    if (Blocks[I].Label == Label)
      return static_cast<int>(I);
  return -1;
}

BasicBlock *Function::findBlock(const std::string &Label) {
  int Idx = blockIndex(Label);
  return Idx < 0 ? nullptr : &Blocks[static_cast<unsigned>(Idx)];
}

const BasicBlock *Function::findBlock(const std::string &Label) const {
  int Idx = blockIndex(Label);
  return Idx < 0 ? nullptr : &Blocks[static_cast<unsigned>(Idx)];
}

unsigned Function::codeSizeBytes() const {
  unsigned Size = 0;
  for (const auto &BB : Blocks)
    for (const auto &I : BB.Instrs)
      Size += encodingSizeBytes(I);
  return Size;
}

Function *Module::findFunction(const std::string &Name) {
  int Idx = functionIndex(Name);
  return Idx < 0 ? nullptr : &Functions[static_cast<unsigned>(Idx)];
}

const Function *Module::findFunction(const std::string &Name) const {
  int Idx = functionIndex(Name);
  return Idx < 0 ? nullptr : &Functions[static_cast<unsigned>(Idx)];
}

int Module::functionIndex(const std::string &Name) const {
  for (unsigned I = 0, E = Functions.size(); I != E; ++I)
    if (Functions[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

DataObject *Module::findData(const std::string &Name) {
  for (auto &D : Data)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

const DataObject *Module::findData(const std::string &Name) const {
  for (const auto &D : Data)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

static std::vector<uint8_t> wordsToBytes(const std::vector<uint32_t> &Words) {
  std::vector<uint8_t> Bytes;
  Bytes.reserve(Words.size() * 4);
  for (uint32_t W : Words) {
    Bytes.push_back(static_cast<uint8_t>(W));
    Bytes.push_back(static_cast<uint8_t>(W >> 8));
    Bytes.push_back(static_cast<uint8_t>(W >> 16));
    Bytes.push_back(static_cast<uint8_t>(W >> 24));
  }
  return Bytes;
}

DataObject &Module::addRodataWords(const std::string &Name,
                                   const std::vector<uint32_t> &Words) {
  DataObject D;
  D.Name = Name;
  D.Sect = DataObject::Section::Rodata;
  D.Bytes = wordsToBytes(Words);
  Data.push_back(std::move(D));
  return Data.back();
}

DataObject &Module::addDataWords(const std::string &Name,
                                 const std::vector<uint32_t> &Words) {
  DataObject D;
  D.Name = Name;
  D.Sect = DataObject::Section::Data;
  D.Bytes = wordsToBytes(Words);
  Data.push_back(std::move(D));
  return Data.back();
}

DataObject &Module::addBss(const std::string &Name, uint32_t Bytes,
                           uint32_t Align) {
  DataObject D;
  D.Name = Name;
  D.Sect = DataObject::Section::Bss;
  D.Size = Bytes;
  D.Align = Align;
  Data.push_back(std::move(D));
  return Data.back();
}

unsigned Module::numBlocks() const {
  unsigned N = 0;
  for (const auto &F : Functions)
    N += F.Blocks.size();
  return N;
}
