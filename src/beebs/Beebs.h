//===- beebs/Beebs.h - BEEBS-style workload suite ---------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ten-benchmark suite mirroring BEEBS [Pallister et al., 2013], the
/// embedded energy benchmark suite the paper evaluates on: 2dfir,
/// blowfish, crc32, cubic, dijkstra, fdct, float_matmult, int_matmult,
/// rijndael, sha. Each is generated as machine IR at all five optimisation
/// levels; kernels return a checksum in r0 so every configuration can be
/// validated. cubic and float_matmult depend on non-optimizable soft-float
/// library routines, reproducing the paper's "library calls limit the
/// optimization" observation (Section 6).
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_BEEBS_BEEBS_H
#define RAMLOC_BEEBS_BEEBS_H

#include "beebs/Codegen.h"
#include "mir/Module.h"

#include <string>
#include <vector>

namespace ramloc {

/// One suite entry.
struct BeebsInfo {
  const char *Name;
  Module (*Build)(OptLevel Level, unsigned Repeat);
  /// Kernel iterations giving a run of roughly a million cycles.
  unsigned DefaultRepeat;
};

/// The ten benchmarks, in the paper's Figure 5 order.
const std::vector<BeebsInfo> &beebsSuite();

/// The suite's benchmark names, in suite order.
std::vector<std::string> beebsNames();

/// True when \p Name is a registered benchmark.
bool isKnownBeebs(const std::string &Name);

/// Builds a benchmark by name; Repeat == 0 uses the default. Asserts on
/// unknown names.
Module buildBeebs(const std::string &Name, OptLevel Level,
                  unsigned Repeat = 0);

// Individual builders (exposed for focused tests and benches).
Module buildIntMatmult(OptLevel L, unsigned Repeat);
Module buildFloatMatmult(OptLevel L, unsigned Repeat);
Module buildTwoDFir(OptLevel L, unsigned Repeat);
Module buildBlowfish(OptLevel L, unsigned Repeat);
Module buildCrc32(OptLevel L, unsigned Repeat);
Module buildCubic(OptLevel L, unsigned Repeat);
Module buildDijkstra(OptLevel L, unsigned Repeat);
Module buildFdct(OptLevel L, unsigned Repeat);
Module buildRijndael(OptLevel L, unsigned Repeat);
Module buildSha(OptLevel L, unsigned Repeat);

namespace beebs_detail {

/// Emits the standard main: `sum = 0; for (r = Repeat; r != 0; --r) sum ^=
/// kernel(r); halt(sum)`.
void buildMainLoop(Module &M, OptLevel L, unsigned Repeat,
                   const std::string &KernelFn);

/// Adds the soft-float library (fp_add32 / fp_mul32 / fp_div32) as
/// non-optimizable functions: deterministic truncating binary32
/// arithmetic (no NaN/denormal handling — the workloads keep values
/// well-conditioned).
void addSoftFloatLibrary(Module &M);

} // namespace beebs_detail

} // namespace ramloc

#endif // RAMLOC_BEEBS_BEEBS_H
