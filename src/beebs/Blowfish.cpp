//===- beebs/Blowfish.cpp - Blowfish-style Feistel rounds -----------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// BEEBS blowfish: a 16-round Feistel network whose F function does four
// S-box lookups per round. The 4 KB of S-boxes stay in flash (they would
// not fit in the 8 KB RAM next to data and stack), so RAM-resident code
// keeps paying the flash-load power of Figure 1's last bar.
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"

using namespace ramloc;
using namespace ramloc::beebs_detail;

namespace {

std::vector<uint32_t> sbox(unsigned Which) {
  std::vector<uint32_t> S(256);
  uint32_t X = 0x243F6A88u + Which * 0x85A308D3u;
  for (unsigned I = 0; I != 256; ++I) {
    // xorshift-style fill: deterministic stand-in for the pi digits.
    X ^= X << 13;
    X ^= X >> 17;
    X ^= X << 5;
    S[I] = X;
  }
  return S;
}

} // namespace

Module ramloc::buildBlowfish(OptLevel L, unsigned Repeat) {
  Module M;
  M.Name = "blowfish";
  M.addRodataWords("bf_s0", sbox(0));
  M.addRodataWords("bf_s1", sbox(1));
  M.addRodataWords("bf_s2", sbox(2));
  M.addRodataWords("bf_s3", sbox(3));
  std::vector<uint32_t> P(18);
  for (unsigned I = 0; I != 18; ++I)
    P[I] = 0xB7E15163u + I * 0x9E3779B9u;
  M.addDataWords("bf_p", P);

  FuncBuilder B(M, "bf_encrypt", L);
  Var Seed = B.param("seed");
  Var Lv = B.local("l");
  Var Rv = B.local("r");
  Var F = B.local("f");
  Var T1 = B.local("t1");
  Var T2 = B.local("t2");
  Var Round = B.local("round");
  Var Pb = B.local("pBase");
  Var S0 = B.local("s0");
  Var S1 = B.local("s1");
  Var S2 = B.local("s2");
  Var S3 = B.local("s3");
  B.prologue();

  B.addrOf(Pb, "bf_p");
  B.addrOf(S0, "bf_s0");
  B.addrOf(S1, "bf_s1");
  B.addrOf(S2, "bf_s2");
  B.addrOf(S3, "bf_s3");

  B.setVar(Lv, Seed);
  B.setImm(T1, 0x01234567u);
  B.op(BinOp::Eor, Rv, Seed, T1);
  B.setImm(Round, 0);

  // --- 16 Feistel rounds ----------------------------------------------------
  B.block("round");
  B.loadWIdx(T1, Pb, Round);
  B.op(BinOp::Eor, Lv, Lv, T1);

  // F(l) = ((s0[a] + s1[b]) ^ s2[c]) + s3[d]
  B.opImm(BinOp::Lsr, T1, Lv, 24);
  B.loadWIdx(F, S0, T1);
  B.opImm(BinOp::Lsr, T1, Lv, 16);
  B.opImm(BinOp::And, T1, T1, 0xFF);
  B.loadWIdx(T2, S1, T1);
  B.op(BinOp::Add, F, F, T2);
  B.opImm(BinOp::Lsr, T1, Lv, 8);
  B.opImm(BinOp::And, T1, T1, 0xFF);
  B.loadWIdx(T2, S2, T1);
  B.op(BinOp::Eor, F, F, T2);
  B.opImm(BinOp::And, T1, Lv, 0xFF);
  B.loadWIdx(T2, S3, T1);
  B.op(BinOp::Add, F, F, T2);

  B.op(BinOp::Eor, Rv, Rv, F);
  // swap l <-> r
  B.setVar(T1, Lv);
  B.setVar(Lv, Rv);
  B.setVar(Rv, T1);
  B.opImm(BinOp::Add, Round, Round, 1);
  B.brCmpImm(CmpOp::SLt, Round, 16, "round");

  // --- final whitening --------------------------------------------------------
  B.block("final");
  B.loadW(T1, Pb, 16 * 4);
  B.op(BinOp::Eor, Rv, Rv, T1);
  B.loadW(T1, Pb, 17 * 4);
  B.op(BinOp::Eor, Lv, Lv, T1);
  B.op(BinOp::Eor, Lv, Lv, Rv);
  B.retVar(Lv);
  B.finish();

  buildMainLoop(M, L, Repeat, "bf_encrypt");
  return M;
}
