//===- beebs/TwoDFir.cpp - 2D FIR filter ----------------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// BEEBS 2dfir: 3x3 integer convolution over a small image. In the paper's
// Figure 5 this benchmark gains little energy but slows down, which still
// pays off in the Figure 9 periodic-sensing scenario.
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"

using namespace ramloc;
using namespace ramloc::beebs_detail;

namespace {

constexpr unsigned W = 24, H = 24;

} // namespace

Module ramloc::buildTwoDFir(OptLevel L, unsigned Repeat) {
  Module M;
  M.Name = "2dfir";

  std::vector<uint8_t> Image(W * H);
  for (unsigned I = 0; I != W * H; ++I)
    Image[I] = static_cast<uint8_t>((I * 31 + 7) & 0xFF);
  DataObject Img;
  Img.Name = "fir_img";
  Img.Sect = DataObject::Section::Data;
  Img.Bytes = std::move(Image);
  M.Data.push_back(std::move(Img));

  // 3x3 kernel, word-sized coefficients in flash.
  M.addRodataWords("fir_coef", {1, 2, 1, 2, 4, 2, 1, 2, 1});
  M.addBss("fir_out", W * H);

  FuncBuilder B(M, "fir2d", L);
  Var Seed = B.param("seed");
  Var Acc = B.local("acc");
  Var X = B.local("x");
  Var T1 = B.local("t1");
  Var T2 = B.local("t2");
  Var Prow = B.local("prow");
  Var Y = B.local("y");
  Var ImgB = B.local("imgBase");
  Var CoefB = B.local("coefBase");
  Var OutB = B.local("outBase");
  Var Sum = B.local("sum");
  B.prologue();

  B.addrOf(ImgB, "fir_img");
  B.addrOf(CoefB, "fir_coef");
  B.addrOf(OutB, "fir_out");
  B.setImm(Sum, 0);
  B.setImm(Y, 1);

  B.block("yloop");
  B.setImm(X, 1);

  B.block("xloop");
  // prow = &img[(y-1)*W + (x-1)]
  B.opImm(BinOp::Sub, T1, Y, 1);
  B.setImm(T2, W);
  B.op(BinOp::Mul, T1, T1, T2);
  B.op(BinOp::Add, T1, T1, X);
  B.opImm(BinOp::Sub, T1, T1, 1);
  B.op(BinOp::Add, Prow, ImgB, T1);
  B.setImm(Acc, 0);
  // Unrolled 3x3 inner accumulation: one large hot block.
  for (unsigned Ky = 0; Ky != 3; ++Ky) {
    for (unsigned Kx = 0; Kx != 3; ++Kx) {
      B.loadB(T1, Prow, static_cast<int32_t>(Kx));
      B.loadW(T2, CoefB, static_cast<int32_t>((Ky * 3 + Kx) * 4));
      B.op(BinOp::Mul, T1, T1, T2);
      B.op(BinOp::Add, Acc, Acc, T1);
    }
    if (Ky != 2)
      B.opImm(BinOp::Add, Prow, Prow, W);
  }
  B.opImm(BinOp::Asr, Acc, Acc, 4);
  B.op(BinOp::Add, Acc, Acc, Seed);
  // out[y*W + x] = acc
  B.setImm(T2, W);
  B.op(BinOp::Mul, T1, Y, T2);
  B.op(BinOp::Add, T1, T1, X);
  B.op(BinOp::Add, T1, T1, OutB);
  B.storeB(Acc, T1, 0);
  B.op(BinOp::Add, Sum, Sum, Acc);
  B.opImm(BinOp::Add, X, X, 1);
  B.brCmpImm(CmpOp::SLt, X, W - 1, "xloop");

  B.block("ynext");
  B.opImm(BinOp::Add, Y, Y, 1);
  B.brCmpImm(CmpOp::SLt, Y, H - 1, "yloop");

  B.block("ret");
  B.retVar(Sum);
  B.finish();

  buildMainLoop(M, L, Repeat, "fir2d");
  return M;
}
