//===- beebs/MicroBench.cpp - Figure 1 micro programs ---------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "beebs/MicroBench.h"

#include "support/Format.h"

using namespace ramloc;
using namespace ramloc::build;

const char *ramloc::microKindName(MicroKind K) {
  switch (K) {
  case MicroKind::StoreRam:
    return "store";
  case MicroKind::LoadRam:
    return "load";
  case MicroKind::Add:
    return "add";
  case MicroKind::Nop:
    return "nop";
  case MicroKind::Branch:
    return "branch";
  case MicroKind::LoadFlash:
    return "flash-load";
  }
  return "?";
}

Module ramloc::buildMicroLoop(MicroKind Kind, bool CodeInRam,
                              unsigned Iters) {
  Module M;
  M.Name = formatString("micro_%s_%s", microKindName(Kind),
                        CodeInRam ? "ram" : "flash");
  M.addBss("micro_buf", 64);
  M.addRodataWords("micro_tab", {1, 2, 3, 4, 5, 6, 7, 8});

  Function F("main");
  MemKind Home = CodeInRam ? MemKind::Ram : MemKind::Flash;

  // entry (always flash): set up counter/base registers, then enter the
  // measured loop with a long jump when the loop lives in RAM.
  BasicBlock Entry("entry");
  Entry.Instrs.push_back(ldrLitConst(R0, static_cast<int32_t>(Iters)));
  Entry.Instrs.push_back(movImm(R1, 42));
  Entry.Instrs.push_back(movImm(R3, 1));
  Entry.Instrs.push_back(ldrLitSym(
      R2, Kind == MicroKind::LoadFlash ? "micro_tab" : "micro_buf"));
  if (CodeInRam)
    Entry.Instrs.push_back(ldrLitSym(PC, "loop"));
  F.Blocks.push_back(std::move(Entry));

  // The measured loop: 16 identical instructions + the loop controls.
  if (Kind == MicroKind::Branch) {
    // Sixteen unconditional branches chained through sixteen blocks.
    for (unsigned I = 0; I != 16; ++I) {
      BasicBlock BB(I == 0 ? "loop" : formatString("loop%u", I));
      BB.Home = Home;
      BB.Instrs.push_back(
          b(I + 1 < 16 ? formatString("loop%u", I + 1) : "latch"));
      F.Blocks.push_back(std::move(BB));
    }
    BasicBlock Latch("latch");
    Latch.Home = Home;
    Latch.Instrs.push_back(setS(subImm(R0, R0, 1)));
    Latch.Instrs.push_back(bCond(Cond::NE, "loop"));
    F.Blocks.push_back(std::move(Latch));
    if (CodeInRam) {
      // The conditional fall-through must leave RAM via a long jump in
      // its own block (a terminator cannot sit mid-block).
      BasicBlock Exit("exit");
      Exit.Home = Home;
      Exit.Instrs.push_back(ldrLitSym(PC, "done"));
      F.Blocks.push_back(std::move(Exit));
    }
  } else {
    BasicBlock Loop("loop");
    Loop.Home = Home;
    for (unsigned I = 0; I != 16; ++I) {
      switch (Kind) {
      case MicroKind::StoreRam:
        Loop.Instrs.push_back(strImm(R1, R2, (I % 8) * 4));
        break;
      case MicroKind::LoadRam:
      case MicroKind::LoadFlash:
        Loop.Instrs.push_back(ldrImm(R1, R2, (I % 8) * 4));
        break;
      case MicroKind::Add:
        Loop.Instrs.push_back(addReg(R1, R1, R3));
        break;
      case MicroKind::Nop:
        Loop.Instrs.push_back(nop());
        break;
      case MicroKind::Branch:
        break; // handled above
      }
    }
    Loop.Instrs.push_back(setS(subImm(R0, R0, 1)));
    Loop.Instrs.push_back(bCond(Cond::NE, "loop"));
    F.Blocks.push_back(std::move(Loop));
    if (CodeInRam) {
      BasicBlock Exit("exit");
      Exit.Home = Home;
      Exit.Instrs.push_back(ldrLitSym(PC, "done"));
      F.Blocks.push_back(std::move(Exit));
    }
  }

  BasicBlock Done("done");
  Done.Instrs.push_back(movReg(R0, R1));
  Done.Instrs.push_back(bkpt());
  F.Blocks.push_back(std::move(Done));

  M.Functions.push_back(std::move(F));
  M.EntryFunction = "main";
  return M;
}
