//===- beebs/Codegen.h - benchmark code generator ---------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small code generator used to express the BEEBS-style workloads once
/// and emit them at five fidelity levels standing in for GCC -O0/-O1/-O2/
/// -O3/-Os (the paper compiles BEEBS with GCC 4.8.2 at all five):
///
///   O0  every local lives in a stack slot; each statement loads its
///       operands and stores its result (GCC -O0 shape)
///   O1  locals in callee-saved registers
///   O2  O1 + benchmarks unroll marked inner loops 2x
///   O3  O1 + unroll 4x
///   Os  O1 (compact; no unrolling)
///
/// The generator reserves r7 (the instrumentation scratch) and r12, and
/// never allocates locals in r0-r3, so calls need no caller-save logic.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_BEEBS_CODEGEN_H
#define RAMLOC_BEEBS_CODEGEN_H

#include "mir/Module.h"

#include <initializer_list>
#include <string>
#include <vector>

namespace ramloc {

/// The five GCC-style optimisation levels of the paper's evaluation.
enum class OptLevel : uint8_t { O0, O1, O2, O3, Os };

const char *optLevelName(OptLevel L);
/// Inverse of optLevelName; false when \p Name is not a level.
bool optLevelFromName(const std::string &Name, OptLevel &Out);
inline constexpr OptLevel AllOptLevels[] = {
    OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Os};

/// A virtual local variable handle.
struct Var {
  int Id = -1;
};

/// Binary operations the generator knows how to emit.
enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  And,
  Orr,
  Eor,
  Lsl,
  Lsr,
  Asr,
  Udiv,
  Sdiv,
};

/// Comparison conditions for conditional branches; S* are signed.
enum class CmpOp : uint8_t {
  Eq,
  Ne,
  SLt,
  SLe,
  SGt,
  SGe,
  ULo,
  ULs,
  UHi,
  UHs,
};

/// Builds one function. Declare all params/locals, call prologue(), then
/// emit blocks and statements, then finish().
class FuncBuilder {
public:
  FuncBuilder(Module &M, std::string Name, OptLevel Level,
              bool Optimizable = true);

  /// Declares the next incoming parameter (r0, r1, ...; max 4).
  Var param(const std::string &Name);
  /// Declares a local variable.
  Var local(const std::string &Name);

  /// Emits push/stack-frame setup. Call after all declarations.
  void prologue();

  /// Starts a new basic block.
  void block(const std::string &Label);

  /// Unroll factor benchmarks should apply to marked inner loops.
  unsigned unroll() const;
  OptLevel level() const { return Level; }

  // --- statements ---------------------------------------------------------
  void setImm(Var D, uint32_t Imm);
  void setVar(Var D, Var S);
  /// D = address of module symbol (data object or function).
  void addrOf(Var D, const std::string &Sym);

  void op(BinOp O, Var D, Var A, Var B);
  void opImm(BinOp O, Var D, Var A, int32_t Imm);

  /// Word/byte loads and stores, immediate offset.
  void loadW(Var D, Var Base, int32_t Off = 0);
  void storeW(Var S, Var Base, int32_t Off = 0);
  void loadB(Var D, Var Base, int32_t Off = 0);
  void storeB(Var S, Var Base, int32_t Off = 0);
  /// Indexed forms: address = Base + (Idx << ScaleShift).
  void loadWIdx(Var D, Var Base, Var Idx, unsigned ScaleShift = 2);
  void storeWIdx(Var S, Var Base, Var Idx, unsigned ScaleShift = 2);
  void loadBIdx(Var D, Var Base, Var Idx);
  void storeBIdx(Var S, Var Base, Var Idx);

  // --- control flow --------------------------------------------------------
  void br(const std::string &Target);
  void brCmpImm(CmpOp O, Var A, int32_t Imm, const std::string &Target);
  void brCmp(CmpOp O, Var A, Var B, const std::string &Target);

  /// Calls \p Callee with up to 4 arguments; result (r0) is discarded.
  void call(const std::string &Callee, std::initializer_list<Var> Args);
  /// Calls and assigns r0 to \p D.
  void callInto(Var D, const std::string &Callee,
                std::initializer_list<Var> Args);

  void retVar(Var V);
  void retVoid();
  /// mov r0, V; bkpt — halts the simulation with V as the exit checksum.
  void haltWith(Var V);

  /// Escape hatch for special sequences; must respect the r7 discipline.
  void emit(Instr I);

  /// Appends the finished function to the module.
  void finish();

private:
  struct VarInfo {
    std::string Name;
    bool InReg = false;
    Reg R = R0;
    int Slot = -1; ///< stack word index when spilled
  };

  Reg use(Var V, Reg Scratch);
  void def(Var V, Reg Computed);
  /// Register a result should be computed into.
  Reg target(Var V, Reg Scratch);
  BasicBlock &cur();
  Cond condFor(CmpOp O) const;

  Module &M;
  Function F;
  OptLevel Level;
  std::vector<VarInfo> Vars;
  unsigned NumParams = 0;
  unsigned NumSlots = 0;
  uint32_t SaveMask = 0;
  bool DidPrologue = false;
  bool Finished = false;
};

} // namespace ramloc

#endif // RAMLOC_BEEBS_CODEGEN_H
