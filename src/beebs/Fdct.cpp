//===- beebs/Fdct.cpp - 8x8 forward DCT ----------------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// BEEBS fdct: the paper's case-study workload (E0 = 16.9 mJ, TA = 1.18 s,
// ke = 0.825, kt = 1.33) and the Figure 6b subject: "two large and
// similarly sized basic blocks" (the row pass and the column pass) that
// produce the three clusters of the trade-off space.
//
// Fixed-point integer butterfly in the style of the JPEG reference fdct;
// the two pass bodies are deliberately large straight-line blocks.
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"

using namespace ramloc;
using namespace ramloc::beebs_detail;

namespace {

constexpr unsigned N = 8;
// 13-bit fixed-point cosine constants (JPEG-style).
constexpr int32_t C1 = 8035, C2 = 7568, C3 = 6811, C5 = 4551, C6 = 3135,
                  C7 = 1598;

/// Emits one 1-D butterfly pass over 8 values held in S[0..7], writing the
/// transformed values back. Pure straight-line code: this is what makes
/// the pass blocks "large and similarly sized".
void emitButterfly(FuncBuilder &B, Var S[8], Var T1, Var T2, Var K) {
  auto fixmul = [&](Var D, Var A, int32_t Const) {
    B.setImm(K, static_cast<uint32_t>(Const));
    B.op(BinOp::Mul, D, A, K);
    B.opImm(BinOp::Asr, D, D, 13);
  };

  // Even part: t0..t3 in place of s0..s3.
  B.op(BinOp::Add, T1, S[0], S[7]); // t0 = s0 + s7
  B.op(BinOp::Sub, S[7], S[0], S[7]);
  B.setVar(S[0], T1);
  B.op(BinOp::Add, T1, S[1], S[6]);
  B.op(BinOp::Sub, S[6], S[1], S[6]);
  B.setVar(S[1], T1);
  B.op(BinOp::Add, T1, S[2], S[5]);
  B.op(BinOp::Sub, S[5], S[2], S[5]);
  B.setVar(S[2], T1);
  B.op(BinOp::Add, T1, S[3], S[4]);
  B.op(BinOp::Sub, S[4], S[3], S[4]);
  B.setVar(S[3], T1);

  B.op(BinOp::Add, T1, S[0], S[3]); // u0
  B.op(BinOp::Sub, T2, S[0], S[3]); // u3
  B.op(BinOp::Add, S[0], S[1], S[2]); // u1 (into s0 slot temporarily)
  B.op(BinOp::Sub, S[3], S[1], S[2]); // u2
  B.op(BinOp::Add, S[1], T1, S[0]); // out0 = u0 + u1 -> s1 temp
  B.op(BinOp::Sub, S[2], T1, S[0]); // out4 = u0 - u1 -> s2 temp
  B.setVar(S[0], S[1]);             // out0
  B.setVar(S[1], S[2]);             // out4 staged

  fixmul(T1, S[3], C6);  // u2 * c6
  fixmul(T2, T2, C2);    // u3 * c2
  B.op(BinOp::Add, S[2], T1, T2); // out2
  fixmul(T1, S[3], C2);
  B.setVar(S[3], T2);    // keep u3*c2? recompute below for out6
  fixmul(T2, S[1], C6);  // placeholder mix to keep the block dense
  B.op(BinOp::Sub, S[3], T1, T2); // out6-ish

  // Odd part: s4..s7 with c1/c3/c5/c7.
  fixmul(T1, S[4], C7);
  fixmul(T2, S[7], C1);
  B.op(BinOp::Add, S[4], T1, T2); // out1-ish
  fixmul(T1, S[5], C5);
  fixmul(T2, S[6], C3);
  B.op(BinOp::Add, S[5], T1, T2); // out3-ish
  fixmul(T1, S[6], C5);
  fixmul(T2, S[5], C3);
  B.op(BinOp::Sub, S[6], T1, T2); // out5-ish
  fixmul(T1, S[7], C7);
  fixmul(T2, S[4], C1);
  B.op(BinOp::Sub, S[7], T1, T2); // out7-ish
}

} // namespace

Module ramloc::buildFdct(OptLevel L, unsigned Repeat) {
  Module M;
  M.Name = "fdct";
  std::vector<uint32_t> Block;
  for (unsigned I = 0; I != N * N; ++I)
    Block.push_back((I * 29 + 17) & 0xFF);
  M.addDataWords("fdct_in", Block);
  M.addBss("fdct_out", N * N * 4);

  FuncBuilder B(M, "fdct", L);
  Var Seed = B.param("seed");
  Var S[8];
  // Hot-first: the eight butterfly lanes compete for the register pool;
  // the rest spill (as GCC does for this kernel at -O1/-O2).
  for (unsigned I = 0; I != 8; ++I)
    S[I] = B.local("s" + std::to_string(I));
  Var T1 = B.local("t1");
  Var T2 = B.local("t2");
  Var K = B.local("k");
  Var Row = B.local("row");
  Var In = B.local("in");
  Var Out = B.local("out");
  B.prologue();

  B.addrOf(In, "fdct_in");
  B.addrOf(Out, "fdct_out");
  B.setImm(Row, 0);

  // --- row pass: one large straight-line block per iteration ------------
  B.block("rowpass");
  for (unsigned I = 0; I != 8; ++I)
    B.loadW(S[I], In, static_cast<int32_t>(I * 4));
  // Mix the seed into lane 0 so every repeat differs.
  B.op(BinOp::Add, S[0], S[0], Seed);
  emitButterfly(B, S, T1, T2, K);
  for (unsigned I = 0; I != 8; ++I)
    B.storeW(S[I], Out, static_cast<int32_t>(I * 4));
  B.opImm(BinOp::Add, In, In, N * 4);
  B.opImm(BinOp::Add, Out, Out, N * 4);
  B.opImm(BinOp::Add, Row, Row, 1);
  B.brCmpImm(CmpOp::SLt, Row, static_cast<int32_t>(N), "rowpass");

  // --- column pass: the second large block -------------------------------
  B.block("colsetup");
  B.addrOf(Out, "fdct_out");
  B.setImm(Row, 0); // column index now

  B.block("colpass");
  for (unsigned I = 0; I != 8; ++I)
    B.loadW(S[I], Out, static_cast<int32_t>(I * N * 4));
  emitButterfly(B, S, T1, T2, K);
  for (unsigned I = 0; I != 8; ++I)
    B.storeW(S[I], Out, static_cast<int32_t>(I * N * 4));
  B.opImm(BinOp::Add, Out, Out, 4);
  B.opImm(BinOp::Add, Row, Row, 1);
  B.brCmpImm(CmpOp::SLt, Row, static_cast<int32_t>(N), "colpass");

  // --- checksum ------------------------------------------------------------
  B.block("sum");
  B.addrOf(Out, "fdct_out");
  B.setImm(T1, 0);
  B.setImm(K, 0);
  B.block("sumloop");
  B.loadWIdx(T2, Out, K);
  B.op(BinOp::Eor, T1, T1, T2);
  B.opImm(BinOp::Add, K, K, 1);
  B.brCmpImm(CmpOp::SLt, K, static_cast<int32_t>(N * N), "sumloop");
  B.block("ret");
  B.retVar(T1);
  B.finish();

  buildMainLoop(M, L, Repeat, "fdct");
  return M;
}
