//===- beebs/SoftFloat.cpp - binary32 library routines --------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// The Cortex-M3 has no FPU: float arithmetic is emulated by statically
// linked library calls. The paper's prototype cannot relocate library
// code ("the optimization pass does not see these functions", Section 6),
// which is why cubic and float_matmult barely improve. These routines are
// therefore built with Optimizable = false.
//
// Semantics: truncating binary32 arithmetic without NaN/denormal support;
// workloads keep their values well-conditioned. Determinism is what the
// checksums need, not IEEE-754 compliance.
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"

using namespace ramloc;

namespace {

/// The library is "precompiled": always O1 shape, never optimizable.
constexpr OptLevel LibLevel = OptLevel::O1;

void addFpMul(Module &M) {
  FuncBuilder B(M, "fp_mul32", LibLevel, /*Optimizable=*/false);
  Var A = B.param("a");
  Var Bp = B.param("b");
  Var Sign = B.local("sign");
  Var Ea = B.local("ea");
  Var Eb = B.local("eb");
  Var Ma = B.local("ma");
  Var Mb = B.local("mb");
  Var Lo = B.local("lo");
  Var Mid = B.local("mid");
  Var Hi = B.local("hi");
  Var T1 = B.local("t1");
  Var T2 = B.local("t2");
  B.prologue();

  B.op(BinOp::Eor, Sign, A, Bp);
  B.opImm(BinOp::And, Sign, Sign, static_cast<int32_t>(0x80000000u));
  B.opImm(BinOp::Lsr, Ea, A, 23);
  B.opImm(BinOp::And, Ea, Ea, 0xFF);
  B.opImm(BinOp::Lsr, Eb, Bp, 23);
  B.opImm(BinOp::And, Eb, Eb, 0xFF);
  B.brCmpImm(CmpOp::Eq, Ea, 0, "retzero");
  B.block("chkb");
  B.brCmpImm(CmpOp::Eq, Eb, 0, "retzero");

  B.block("mants");
  B.setImm(T1, 0x7FFFFF);
  B.op(BinOp::And, Ma, A, T1);
  B.setImm(T2, 0x800000);
  B.op(BinOp::Orr, Ma, Ma, T2);
  B.op(BinOp::And, Mb, Bp, T1);
  B.op(BinOp::Orr, Mb, Mb, T2);

  // 24x24 -> 48-bit product via 16-bit limbs.
  B.setImm(T1, 0xFFFF);
  B.op(BinOp::And, Lo, Ma, T1);  // al
  B.op(BinOp::And, Mid, Mb, T1); // bl
  B.op(BinOp::Mul, T2, Lo, Mid); // t2 = al*bl  (lo)
  B.opImm(BinOp::Lsr, Hi, Ma, 16);   // ah
  B.op(BinOp::Mul, Mid, Hi, Mid);    // mid = ah*bl
  B.opImm(BinOp::Lsr, T1, Mb, 16);   // bh
  B.op(BinOp::Mul, Lo, Lo, T1);      // lo(var) = al*bh
  B.op(BinOp::Add, Mid, Mid, Lo);    // mid += al*bh
  B.op(BinOp::Mul, Hi, Hi, T1);      // hi = ah*bh
  B.opImm(BinOp::Lsr, T1, T2, 16);
  B.op(BinOp::Add, Mid, Mid, T1);    // mid += lo >> 16
  B.opImm(BinOp::Lsr, T1, Mid, 16);
  B.op(BinOp::Add, Hi, Hi, T1);      // hi += mid >> 16

  // plo = (mid << 16) | (lo16); mant = (hi << 9) | (plo >> 23)
  B.opImm(BinOp::Lsl, Mid, Mid, 16);
  B.setImm(T1, 0xFFFF);
  B.op(BinOp::And, T2, T2, T1);
  B.op(BinOp::Orr, Mid, Mid, T2); // plo
  B.opImm(BinOp::Lsl, Hi, Hi, 9);
  B.opImm(BinOp::Lsr, Mid, Mid, 23);
  B.op(BinOp::Orr, Hi, Hi, Mid); // mant in [2^23, 2^25)

  B.op(BinOp::Add, Ea, Ea, Eb);
  B.opImm(BinOp::Sub, Ea, Ea, 127);
  B.setImm(T1, 0x1000000);
  B.brCmp(CmpOp::ULo, Hi, T1, "nonorm");
  B.block("norm");
  B.opImm(BinOp::Lsr, Hi, Hi, 1);
  B.opImm(BinOp::Add, Ea, Ea, 1);
  B.block("nonorm");
  B.brCmpImm(CmpOp::SLe, Ea, 0, "retzero");
  B.block("chkover");
  B.brCmpImm(CmpOp::SGe, Ea, 255, "retinf");

  B.block("pack");
  B.setImm(T1, 0x7FFFFF);
  B.op(BinOp::And, Hi, Hi, T1);
  B.opImm(BinOp::Lsl, Ea, Ea, 23);
  B.op(BinOp::Orr, Hi, Hi, Ea);
  B.op(BinOp::Orr, Hi, Hi, Sign);
  B.retVar(Hi);

  B.block("retzero");
  B.retVar(Sign);
  B.block("retinf");
  B.setImm(T1, 0x7F800000);
  B.op(BinOp::Orr, T1, T1, Sign);
  B.retVar(T1);
  B.finish();
}

void addFpAdd(Module &M) {
  FuncBuilder B(M, "fp_add32", LibLevel, /*Optimizable=*/false);
  Var A = B.param("a");
  Var Bp = B.param("b");
  Var Ma = B.local("ma");
  Var Mb = B.local("mb");
  Var Ea = B.local("ea");
  Var Eb = B.local("eb");
  Var Sa = B.local("sa");
  Var Sb = B.local("sb");
  Var T1 = B.local("t1");
  Var T2 = B.local("t2");
  Var Sign = B.local("sign");
  B.prologue();

  B.opImm(BinOp::Lsl, T1, A, 1);
  B.brCmpImm(CmpOp::Eq, T1, 0, "retb");
  B.block("chkb");
  B.opImm(BinOp::Lsl, T1, Bp, 1);
  B.brCmpImm(CmpOp::Eq, T1, 0, "reta");

  B.block("unpack");
  B.opImm(BinOp::Lsr, Sa, A, 31);
  B.opImm(BinOp::Lsr, Sb, Bp, 31);
  B.opImm(BinOp::Lsr, Ea, A, 23);
  B.opImm(BinOp::And, Ea, Ea, 0xFF);
  B.opImm(BinOp::Lsr, Eb, Bp, 23);
  B.opImm(BinOp::And, Eb, Eb, 0xFF);
  B.setImm(T1, 0x7FFFFF);
  B.op(BinOp::And, Ma, A, T1);
  B.setImm(T2, 0x800000);
  B.op(BinOp::Orr, Ma, Ma, T2);
  B.op(BinOp::And, Mb, Bp, T1);
  B.op(BinOp::Orr, Mb, Mb, T2);
  B.opImm(BinOp::Lsl, Ma, Ma, 3); // three guard bits
  B.opImm(BinOp::Lsl, Mb, Mb, 3);
  B.brCmp(CmpOp::SGe, Ea, Eb, "aligned");

  B.block("swap"); // ensure the a-side is the larger exponent
  B.setVar(T1, Ea);
  B.setVar(Ea, Eb);
  B.setVar(Eb, T1);
  B.setVar(T1, Ma);
  B.setVar(Ma, Mb);
  B.setVar(Mb, T1);
  B.setVar(T1, Sa);
  B.setVar(Sa, Sb);
  B.setVar(Sb, T1);
  B.setVar(T1, A);
  B.setVar(A, Bp);
  B.setVar(Bp, T1);

  B.block("aligned");
  B.op(BinOp::Sub, T1, Ea, Eb); // d
  B.brCmpImm(CmpOp::SGt, T1, 26, "reta");
  B.block("shift");
  B.op(BinOp::Lsr, Mb, Mb, T1);
  B.brCmp(CmpOp::Ne, Sa, Sb, "subtract");

  B.block("addmag");
  B.op(BinOp::Add, Ma, Ma, Mb);
  B.setImm(T1, 0x8000000); // 2^27
  B.brCmp(CmpOp::ULo, Ma, T1, "roundpack");
  B.block("carrynorm");
  B.opImm(BinOp::Lsr, Ma, Ma, 1);
  B.opImm(BinOp::Add, Ea, Ea, 1);
  B.br("roundpack");

  B.block("subtract");
  B.brCmp(CmpOp::UHs, Ma, Mb, "subab");
  B.block("subba");
  B.op(BinOp::Sub, Ma, Mb, Ma);
  B.setVar(Sa, Sb);
  B.br("subzero");
  B.block("subab");
  B.op(BinOp::Sub, Ma, Ma, Mb);
  B.block("subzero");
  B.brCmpImm(CmpOp::Eq, Ma, 0, "retzero");
  B.block("normloop");
  B.setImm(T1, 0x4000000); // 2^26
  B.brCmp(CmpOp::UHs, Ma, T1, "roundpack");
  B.block("normstep");
  B.opImm(BinOp::Lsl, Ma, Ma, 1);
  B.opImm(BinOp::Sub, Ea, Ea, 1);
  B.brCmpImm(CmpOp::SGt, Ea, 0, "normloop");
  B.block("under");
  B.br("retzero");

  B.block("roundpack");
  B.brCmpImm(CmpOp::SLe, Ea, 0, "retzero");
  B.block("chkover");
  B.brCmpImm(CmpOp::SGe, Ea, 255, "retinf");
  B.block("pack");
  B.opImm(BinOp::Lsr, Ma, Ma, 3);
  B.setImm(T1, 0x7FFFFF);
  B.op(BinOp::And, Ma, Ma, T1);
  B.opImm(BinOp::Lsl, Ea, Ea, 23);
  B.op(BinOp::Orr, Ma, Ma, Ea);
  B.opImm(BinOp::Lsl, Sign, Sa, 31);
  B.op(BinOp::Orr, Ma, Ma, Sign);
  B.retVar(Ma);

  B.block("reta");
  B.retVar(A);
  B.block("retb");
  B.retVar(Bp);
  B.block("retzero");
  B.setImm(T1, 0);
  B.retVar(T1);
  B.block("retinf");
  B.opImm(BinOp::Lsl, Sign, Sa, 31);
  B.setImm(T1, 0x7F800000);
  B.op(BinOp::Orr, T1, T1, Sign);
  B.retVar(T1);
  B.finish();
}

void addFpDiv(Module &M) {
  FuncBuilder B(M, "fp_div32", LibLevel, /*Optimizable=*/false);
  Var A = B.param("a");
  Var Bp = B.param("b");
  Var Sign = B.local("sign");
  Var Ea = B.local("ea");
  Var Eb = B.local("eb");
  Var Ma = B.local("ma");
  Var Mb = B.local("mb");
  Var Q = B.local("q");
  Var I = B.local("i");
  Var T1 = B.local("t1");
  B.prologue();

  B.op(BinOp::Eor, Sign, A, Bp);
  B.opImm(BinOp::And, Sign, Sign, static_cast<int32_t>(0x80000000u));
  B.opImm(BinOp::Lsr, Ea, A, 23);
  B.opImm(BinOp::And, Ea, Ea, 0xFF);
  B.opImm(BinOp::Lsr, Eb, Bp, 23);
  B.opImm(BinOp::And, Eb, Eb, 0xFF);
  B.brCmpImm(CmpOp::Eq, Ea, 0, "retzero");
  B.block("chkb");
  B.brCmpImm(CmpOp::Eq, Eb, 0, "retinf"); // x/0 -> clamp to inf

  B.block("mants");
  B.setImm(T1, 0x7FFFFF);
  B.op(BinOp::And, Ma, A, T1);
  B.setImm(Q, 0x800000);
  B.op(BinOp::Orr, Ma, Ma, Q);
  B.op(BinOp::And, Mb, Bp, T1);
  B.op(BinOp::Orr, Mb, Mb, Q);

  B.op(BinOp::Sub, Ea, Ea, Eb);
  B.opImm(BinOp::Add, Ea, Ea, 127);
  B.setImm(Q, 0);
  B.setImm(I, 25);

  B.block("divloop"); // restoring long division, one bit per pass
  B.opImm(BinOp::Lsl, Q, Q, 1);
  B.brCmp(CmpOp::ULo, Ma, Mb, "skipsub");
  B.block("dosub");
  B.op(BinOp::Sub, Ma, Ma, Mb);
  B.opImm(BinOp::Orr, Q, Q, 1);
  B.block("skipsub");
  B.opImm(BinOp::Lsl, Ma, Ma, 1);
  B.opImm(BinOp::Sub, I, I, 1);
  B.brCmpImm(CmpOp::Ne, I, 0, "divloop");

  B.block("postnorm"); // q in (2^23, 2^25)
  B.setImm(T1, 0x1000000);
  B.brCmp(CmpOp::ULo, Q, T1, "packchk");
  B.block("shift1");
  B.opImm(BinOp::Lsr, Q, Q, 1);
  B.opImm(BinOp::Add, Ea, Ea, 1);
  B.block("packchk");
  B.brCmpImm(CmpOp::SLe, Ea, 0, "retzero");
  B.block("chkover");
  B.brCmpImm(CmpOp::SGe, Ea, 255, "retinf");
  B.block("pack");
  B.setImm(T1, 0x7FFFFF);
  B.op(BinOp::And, Q, Q, T1);
  B.opImm(BinOp::Lsl, Ea, Ea, 23);
  B.op(BinOp::Orr, Q, Q, Ea);
  B.op(BinOp::Orr, Q, Q, Sign);
  B.retVar(Q);

  B.block("retzero");
  B.retVar(Sign);
  B.block("retinf");
  B.setImm(T1, 0x7F800000);
  B.op(BinOp::Orr, T1, T1, Sign);
  B.retVar(T1);
  B.finish();
}

} // namespace

void ramloc::beebs_detail::addSoftFloatLibrary(Module &M) {
  addFpAdd(M);
  addFpMul(M);
  addFpDiv(M);
}
