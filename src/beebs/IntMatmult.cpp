//===- beebs/IntMatmult.cpp - 16x16 integer matrix multiply --------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// BEEBS int_matmult: the paper's best case (-22% energy at O2) and the
// Figure 6a subject ("3 basic blocks with a large size and iteration
// count" forming 2^3 clusters).
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"

using namespace ramloc;
using namespace ramloc::beebs_detail;

namespace {

constexpr unsigned N = 16;

std::vector<uint32_t> matrixWords(uint32_t SeedMul) {
  std::vector<uint32_t> W;
  W.reserve(N * N);
  for (unsigned I = 0; I != N; ++I)
    for (unsigned J = 0; J != N; ++J)
      W.push_back((I * SeedMul + J * 3 + 1) & 0xFF);
  return W;
}

} // namespace

Module ramloc::buildIntMatmult(OptLevel L, unsigned Repeat) {
  Module M;
  M.Name = "int_matmult";
  M.addDataWords("mat_a", matrixWords(7));
  M.addDataWords("mat_b", matrixWords(13));
  M.addBss("mat_c", N * N * 4);

  FuncBuilder B(M, "matmult", L);
  // Hot-first declaration order: the inner-loop working set gets the
  // register pool.
  Var K = B.param("seed");   // reused as k after seeding
  Var S = B.local("s");
  Var T1 = B.local("t1");
  Var T2 = B.local("t2");
  Var Pb = B.local("pb");
  Var RowA = B.local("rowA");
  Var J = B.local("j");
  Var I = B.local("i");
  Var Seed = B.local("seed2");
  Var Ab = B.local("aBase");
  Var Bb = B.local("bBase");
  Var Cb = B.local("cBase");
  B.prologue();

  B.setVar(Seed, K);
  B.addrOf(Ab, "mat_a");
  B.addrOf(Bb, "mat_b");
  B.addrOf(Cb, "mat_c");
  B.setImm(I, 0);

  B.block("iloop");
  // rowA = aBase + i*N*4
  B.opImm(BinOp::Lsl, RowA, I, 6); // i * 64
  B.op(BinOp::Add, RowA, RowA, Ab);
  B.setImm(J, 0);

  B.block("jloop");
  // pb = bBase + j*4
  B.opImm(BinOp::Lsl, Pb, J, 2);
  B.op(BinOp::Add, Pb, Pb, Bb);
  B.setImm(S, 0);
  B.setImm(K, 0);

  B.block("kloop");
  for (unsigned U = 0; U != B.unroll(); ++U) {
    B.loadWIdx(T1, RowA, K);        // t1 = a[i][k]
    B.loadW(T2, Pb, 0);             // t2 = b[k][j]
    B.op(BinOp::Mul, T1, T1, T2);
    B.op(BinOp::Add, S, S, T1);
    B.opImm(BinOp::Add, Pb, Pb, N * 4);
    B.opImm(BinOp::Add, K, K, 1);
  }
  B.brCmpImm(CmpOp::SLt, K, N, "kloop");

  B.block("jstore");
  // c[i][j] = s; checksum accumulation folded into s later.
  B.opImm(BinOp::Lsl, T1, I, 6);
  B.opImm(BinOp::Lsl, T2, J, 2);
  B.op(BinOp::Add, T1, T1, T2);
  B.op(BinOp::Add, T1, T1, Cb);
  B.storeW(S, T1, 0);
  B.opImm(BinOp::Add, J, J, 1);
  B.brCmpImm(CmpOp::SLt, J, N, "jloop");

  B.block("inext");
  B.opImm(BinOp::Add, I, I, 1);
  B.brCmpImm(CmpOp::SLt, I, N, "iloop");

  B.block("sum");
  // Fold every result word, then mix the seed multiplicatively so
  // repeats cannot cancel under the caller's XOR accumulation.
  B.setImm(S, 0);
  B.setImm(K, 0);
  B.block("sumloop");
  B.loadWIdx(T2, Cb, K);
  B.op(BinOp::Eor, S, S, T2);
  B.opImm(BinOp::Add, K, K, 1);
  B.brCmpImm(CmpOp::SLt, K, static_cast<int32_t>(N * N), "sumloop");
  B.block("mix");
  B.setImm(T1, 0x9E3779B9u);
  B.op(BinOp::Mul, T1, T1, Seed);
  B.op(BinOp::Add, S, S, T1);
  B.retVar(S);
  B.finish();

  buildMainLoop(M, L, Repeat, "matmult");
  return M;
}
