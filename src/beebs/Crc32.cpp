//===- beebs/Crc32.cpp - table-driven CRC-32 ------------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// BEEBS crc32: the lookup table stays in flash (.rodata), so the hot loop
// moved to RAM keeps loading from flash — the elevated-power case of
// Figure 1's last bar, which bounds this benchmark's saving.
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"

using namespace ramloc;
using namespace ramloc::beebs_detail;

namespace {

constexpr unsigned MsgBytes = 256;

std::vector<uint32_t> crcTable() {
  std::vector<uint32_t> Table(256);
  for (uint32_t I = 0; I != 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K != 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    Table[I] = C;
  }
  return Table;
}

} // namespace

Module ramloc::buildCrc32(OptLevel L, unsigned Repeat) {
  Module M;
  M.Name = "crc32";
  M.addRodataWords("crc_table", crcTable());

  std::vector<uint8_t> Msg(MsgBytes);
  for (unsigned I = 0; I != MsgBytes; ++I)
    Msg[I] = static_cast<uint8_t>((I * 11 + 3) & 0xFF);
  DataObject D;
  D.Name = "crc_msg";
  D.Sect = DataObject::Section::Data;
  D.Bytes = std::move(Msg);
  M.Data.push_back(std::move(D));

  FuncBuilder B(M, "crc32", L);
  Var Seed = B.param("seed");
  Var Crc = B.local("crc");
  Var I = B.local("i");
  Var T1 = B.local("t1");
  Var T2 = B.local("t2");
  Var MsgB = B.local("msgBase");
  Var TabB = B.local("tabBase");
  B.prologue();

  B.addrOf(MsgB, "crc_msg");
  B.addrOf(TabB, "crc_table");
  B.setImm(T1, 0xFFFFFFFFu);
  B.op(BinOp::Eor, Crc, Seed, T1);
  B.setImm(I, 0);

  B.block("byteloop");
  for (unsigned U = 0; U != B.unroll(); ++U) {
    B.loadBIdx(T1, MsgB, I);          // t1 = msg[i]
    B.op(BinOp::Eor, T1, T1, Crc);
    B.opImm(BinOp::And, T1, T1, 0xFF);
    B.loadWIdx(T2, TabB, T1);         // t2 = table[t1]
    B.opImm(BinOp::Lsr, Crc, Crc, 8);
    B.op(BinOp::Eor, Crc, Crc, T2);
    B.opImm(BinOp::Add, I, I, 1);
  }
  B.brCmpImm(CmpOp::SLt, I, MsgBytes, "byteloop");

  B.block("ret");
  B.setImm(T1, 0xFFFFFFFFu);
  B.op(BinOp::Eor, Crc, Crc, T1);
  B.retVar(Crc);
  B.finish();

  buildMainLoop(M, L, Repeat, "crc32");
  return M;
}
