//===- beebs/Common.cpp - shared benchmark scaffolding -------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"

#include <cassert>

using namespace ramloc;

void ramloc::beebs_detail::buildMainLoop(Module &M, OptLevel L,
                                         unsigned Repeat,
                                         const std::string &KernelFn) {
  assert(Repeat > 0 && "repeat count must be positive");
  FuncBuilder B(M, "main", L);
  Var Cnt = B.local("cnt");
  Var Sum = B.local("sum");
  Var Tmp = B.local("tmp");
  B.prologue();
  B.setImm(Sum, 0);
  B.setImm(Cnt, Repeat);
  B.block("repeat");
  B.callInto(Tmp, KernelFn, {Cnt});
  B.op(BinOp::Eor, Sum, Sum, Tmp);
  B.opImm(BinOp::Sub, Cnt, Cnt, 1);
  B.brCmpImm(CmpOp::Ne, Cnt, 0, "repeat");
  B.block("done");
  B.haltWith(Sum);
  B.finish();
  M.EntryFunction = "main";
}
