//===- beebs/Codegen.cpp - benchmark code generator ----------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "beebs/Codegen.h"

#include <cassert>

using namespace ramloc;
using namespace ramloc::build;

const char *ramloc::optLevelName(OptLevel L) {
  switch (L) {
  case OptLevel::O0:
    return "O0";
  case OptLevel::O1:
    return "O1";
  case OptLevel::O2:
    return "O2";
  case OptLevel::O3:
    return "O3";
  case OptLevel::Os:
    return "Os";
  }
  return "?";
}

bool ramloc::optLevelFromName(const std::string &Name, OptLevel &Out) {
  for (OptLevel L : AllOptLevels)
    if (Name == optLevelName(L)) {
      Out = L;
      return true;
    }
  return false;
}

namespace {

/// Callee-saved registers available for locals (r7 is the reserved
/// instrumentation scratch and is deliberately absent).
constexpr Reg RegPool[] = {R4, R5, R6, R8, R9, R10, R11};
constexpr unsigned RegPoolSize = sizeof(RegPool) / sizeof(RegPool[0]);

} // namespace

FuncBuilder::FuncBuilder(Module &M, std::string Name, OptLevel Level,
                         bool Optimizable)
    : M(M), F(std::move(Name)), Level(Level) {
  F.Optimizable = Optimizable;
}

unsigned FuncBuilder::unroll() const {
  switch (Level) {
  case OptLevel::O2:
    return 2;
  case OptLevel::O3:
    return 4;
  default:
    return 1;
  }
}

Var FuncBuilder::param(const std::string &Name) {
  assert(!DidPrologue && "declare params before prologue()");
  assert(NumParams < 4 && "at most four register parameters");
  ++NumParams;
  return local(Name);
}

Var FuncBuilder::local(const std::string &Name) {
  assert(!DidPrologue && "declare locals before prologue()");
  VarInfo VI;
  VI.Name = Name;
  unsigned Idx = static_cast<unsigned>(Vars.size());
  if (Level != OptLevel::O0 && Idx < RegPoolSize) {
    VI.InReg = true;
    VI.R = RegPool[Idx];
  } else {
    VI.Slot = static_cast<int>(NumSlots++);
  }
  Vars.push_back(std::move(VI));
  return {static_cast<int>(Idx)};
}

void FuncBuilder::prologue() {
  assert(!DidPrologue && "prologue emitted twice");
  DidPrologue = true;
  F.Blocks.emplace_back("entry");

  SaveMask = 1u << LR;
  for (const VarInfo &VI : Vars)
    if (VI.InReg)
      SaveMask |= 1u << VI.R;

  cur().Instrs.push_back(push(SaveMask));
  if (NumSlots > 0)
    cur().Instrs.push_back(subImm(SP, SP, static_cast<int32_t>(
                                              4 * NumSlots)));
  // Home the incoming arguments.
  for (unsigned PI = 0; PI != NumParams; ++PI) {
    const VarInfo &VI = Vars[PI];
    Reg In = static_cast<Reg>(PI);
    if (VI.InReg)
      cur().Instrs.push_back(movReg(VI.R, In));
    else
      cur().Instrs.push_back(strImm(In, SP, 4 * VI.Slot));
  }
}

void FuncBuilder::block(const std::string &Label) {
  assert(DidPrologue && "open blocks after prologue()");
  F.Blocks.emplace_back(Label);
}

BasicBlock &FuncBuilder::cur() {
  assert(!F.Blocks.empty() && "no open block");
  return F.Blocks.back();
}

Reg FuncBuilder::use(Var V, Reg Scratch) {
  assert(V.Id >= 0 && static_cast<unsigned>(V.Id) < Vars.size());
  const VarInfo &VI = Vars[static_cast<unsigned>(V.Id)];
  if (VI.InReg)
    return VI.R;
  cur().Instrs.push_back(ldrImm(Scratch, SP, 4 * VI.Slot));
  return Scratch;
}

Reg FuncBuilder::target(Var V, Reg Scratch) {
  const VarInfo &VI = Vars[static_cast<unsigned>(V.Id)];
  return VI.InReg ? VI.R : Scratch;
}

void FuncBuilder::def(Var V, Reg Computed) {
  const VarInfo &VI = Vars[static_cast<unsigned>(V.Id)];
  if (VI.InReg) {
    if (VI.R != Computed)
      cur().Instrs.push_back(movReg(VI.R, Computed));
    return;
  }
  cur().Instrs.push_back(strImm(Computed, SP, 4 * VI.Slot));
}

void FuncBuilder::setImm(Var D, uint32_t Imm) {
  Reg Rd = target(D, R2);
  if (Imm <= 0xFFFF)
    cur().Instrs.push_back(movImm(Rd, static_cast<int32_t>(Imm)));
  else
    cur().Instrs.push_back(ldrLitConst(Rd, static_cast<int32_t>(Imm)));
  def(D, Rd);
}

void FuncBuilder::setVar(Var D, Var S) {
  Reg Rs = use(S, R0);
  def(D, Rs);
}

void FuncBuilder::addrOf(Var D, const std::string &Sym) {
  Reg Rd = target(D, R2);
  cur().Instrs.push_back(ldrLitSym(Rd, Sym));
  def(D, Rd);
}

void FuncBuilder::op(BinOp O, Var D, Var A, Var B) {
  Reg Ra = use(A, R0);
  Reg Rb = use(B, R1);
  Reg Rd = target(D, R2);
  switch (O) {
  case BinOp::Add:
    cur().Instrs.push_back(addReg(Rd, Ra, Rb));
    break;
  case BinOp::Sub:
    cur().Instrs.push_back(subReg(Rd, Ra, Rb));
    break;
  case BinOp::Mul:
    cur().Instrs.push_back(mul(Rd, Ra, Rb));
    break;
  case BinOp::And:
    cur().Instrs.push_back(andReg(Rd, Ra, Rb));
    break;
  case BinOp::Orr:
    cur().Instrs.push_back(orrReg(Rd, Ra, Rb));
    break;
  case BinOp::Eor:
    cur().Instrs.push_back(eorReg(Rd, Ra, Rb));
    break;
  case BinOp::Lsl:
    cur().Instrs.push_back(lslReg(Rd, Ra, Rb));
    break;
  case BinOp::Lsr:
    cur().Instrs.push_back(lsrReg(Rd, Ra, Rb));
    break;
  case BinOp::Asr:
    cur().Instrs.push_back(asrReg(Rd, Ra, Rb));
    break;
  case BinOp::Udiv:
    cur().Instrs.push_back(udiv(Rd, Ra, Rb));
    break;
  case BinOp::Sdiv:
    cur().Instrs.push_back(sdiv(Rd, Ra, Rb));
    break;
  }
  def(D, Rd);
}

void FuncBuilder::opImm(BinOp O, Var D, Var A, int32_t Imm) {
  Reg Ra = use(A, R0);
  Reg Rd = target(D, R2);
  switch (O) {
  case BinOp::Add:
    cur().Instrs.push_back(addImm(Rd, Ra, Imm));
    break;
  case BinOp::Sub:
    cur().Instrs.push_back(subImm(Rd, Ra, Imm));
    break;
  case BinOp::And:
    cur().Instrs.push_back(andImm(Rd, Ra, Imm));
    break;
  case BinOp::Orr:
    cur().Instrs.push_back(orrImm(Rd, Ra, Imm));
    break;
  case BinOp::Eor:
    cur().Instrs.push_back(eorImm(Rd, Ra, Imm));
    break;
  case BinOp::Lsl:
    cur().Instrs.push_back(lslImm(Rd, Ra, Imm));
    break;
  case BinOp::Lsr:
    cur().Instrs.push_back(lsrImm(Rd, Ra, Imm));
    break;
  case BinOp::Asr:
    cur().Instrs.push_back(asrImm(Rd, Ra, Imm));
    break;
  case BinOp::Mul:
  case BinOp::Udiv:
  case BinOp::Sdiv:
    assert(false && "no immediate form for mul/div");
    break;
  }
  def(D, Rd);
}

void FuncBuilder::loadW(Var D, Var Base, int32_t Off) {
  Reg Rb = use(Base, R0);
  Reg Rd = target(D, R2);
  cur().Instrs.push_back(ldrImm(Rd, Rb, Off));
  def(D, Rd);
}

void FuncBuilder::storeW(Var S, Var Base, int32_t Off) {
  Reg Rs = use(S, R0);
  Reg Rb = use(Base, R1);
  cur().Instrs.push_back(strImm(Rs, Rb, Off));
}

void FuncBuilder::loadB(Var D, Var Base, int32_t Off) {
  Reg Rb = use(Base, R0);
  Reg Rd = target(D, R2);
  cur().Instrs.push_back(ldrbImm(Rd, Rb, Off));
  def(D, Rd);
}

void FuncBuilder::storeB(Var S, Var Base, int32_t Off) {
  Reg Rs = use(S, R0);
  Reg Rb = use(Base, R1);
  cur().Instrs.push_back(strbImm(Rs, Rb, Off));
}

void FuncBuilder::loadWIdx(Var D, Var Base, Var Idx, unsigned ScaleShift) {
  Reg Rb = use(Base, R0);
  Reg Ri = use(Idx, R1);
  Reg Rd = target(D, R2);
  if (ScaleShift != 0) {
    cur().Instrs.push_back(
        lslImm(R3, Ri, static_cast<int32_t>(ScaleShift)));
    Ri = R3;
  }
  cur().Instrs.push_back(ldrReg(Rd, Rb, Ri));
  def(D, Rd);
}

void FuncBuilder::storeWIdx(Var S, Var Base, Var Idx, unsigned ScaleShift) {
  Reg Rs = use(S, R0);
  Reg Rb = use(Base, R1);
  Reg Ri = use(Idx, R2);
  if (ScaleShift != 0) {
    cur().Instrs.push_back(
        lslImm(R3, Ri, static_cast<int32_t>(ScaleShift)));
    Ri = R3;
  }
  cur().Instrs.push_back(strReg(Rs, Rb, Ri));
}

void FuncBuilder::loadBIdx(Var D, Var Base, Var Idx) {
  Reg Rb = use(Base, R0);
  Reg Ri = use(Idx, R1);
  Reg Rd = target(D, R2);
  cur().Instrs.push_back(ldrbReg(Rd, Rb, Ri));
  def(D, Rd);
}

void FuncBuilder::storeBIdx(Var S, Var Base, Var Idx) {
  Reg Rs = use(S, R0);
  Reg Rb = use(Base, R1);
  Reg Ri = use(Idx, R2);
  cur().Instrs.push_back(strbReg(Rs, Rb, Ri));
}

Cond FuncBuilder::condFor(CmpOp O) const {
  switch (O) {
  case CmpOp::Eq:
    return Cond::EQ;
  case CmpOp::Ne:
    return Cond::NE;
  case CmpOp::SLt:
    return Cond::LT;
  case CmpOp::SLe:
    return Cond::LE;
  case CmpOp::SGt:
    return Cond::GT;
  case CmpOp::SGe:
    return Cond::GE;
  case CmpOp::ULo:
    return Cond::CC;
  case CmpOp::ULs:
    return Cond::LS;
  case CmpOp::UHi:
    return Cond::HI;
  case CmpOp::UHs:
    return Cond::CS;
  }
  assert(false && "invalid comparison");
  return Cond::EQ;
}

void FuncBuilder::br(const std::string &Target) {
  cur().Instrs.push_back(b(Target));
}

void FuncBuilder::brCmpImm(CmpOp O, Var A, int32_t Imm,
                           const std::string &Target) {
  Reg Ra = use(A, R0);
  cur().Instrs.push_back(cmpImm(Ra, Imm));
  cur().Instrs.push_back(bCond(condFor(O), Target));
}

void FuncBuilder::brCmp(CmpOp O, Var A, Var B, const std::string &Target) {
  Reg Ra = use(A, R0);
  Reg Rb = use(B, R1);
  cur().Instrs.push_back(cmpReg(Ra, Rb));
  cur().Instrs.push_back(bCond(condFor(O), Target));
}

void FuncBuilder::call(const std::string &Callee,
                       std::initializer_list<Var> Args) {
  assert(Args.size() <= 4 && "at most four register arguments");
  unsigned AI = 0;
  for (Var A : Args) {
    Reg Dest = static_cast<Reg>(AI++);
    const VarInfo &VI = Vars[static_cast<unsigned>(A.Id)];
    if (VI.InReg)
      cur().Instrs.push_back(movReg(Dest, VI.R));
    else
      cur().Instrs.push_back(ldrImm(Dest, SP, 4 * VI.Slot));
  }
  cur().Instrs.push_back(bl(Callee));
}

void FuncBuilder::callInto(Var D, const std::string &Callee,
                           std::initializer_list<Var> Args) {
  call(Callee, Args);
  def(D, R0);
}

void FuncBuilder::retVar(Var V) {
  Reg Rv = use(V, R0);
  if (Rv != R0)
    cur().Instrs.push_back(movReg(R0, Rv));
  retVoid();
}

void FuncBuilder::retVoid() {
  if (NumSlots > 0)
    cur().Instrs.push_back(addImm(SP, SP, static_cast<int32_t>(
                                              4 * NumSlots)));
  uint32_t PopMask = (SaveMask & ~(1u << LR)) | (1u << PC);
  cur().Instrs.push_back(pop(PopMask));
}

void FuncBuilder::haltWith(Var V) {
  Reg Rv = use(V, R0);
  if (Rv != R0)
    cur().Instrs.push_back(movReg(R0, Rv));
  cur().Instrs.push_back(bkpt());
}

void FuncBuilder::emit(Instr I) { cur().Instrs.push_back(std::move(I)); }

void FuncBuilder::finish() {
  assert(!Finished && "finish() called twice");
  Finished = true;
  M.Functions.push_back(std::move(F));
}
