//===- beebs/Cubic.cpp - cubic root finding with soft floats --------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// BEEBS cubic: Newton iteration on x^3 + b x^2 + c x + d using the
// non-optimizable soft-float library — like float_matmult, the paper's
// "library calls and emulated floating point" limitation applies.
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"

#include <bit>

using namespace ramloc;
using namespace ramloc::beebs_detail;

namespace {

uint32_t f2b(float F) { return std::bit_cast<uint32_t>(F); }

} // namespace

Module ramloc::buildCubic(OptLevel L, unsigned Repeat) {
  Module M;
  M.Name = "cubic";
  // Newton starting points x0 in [1.0, 2.75], chosen by seed & 7.
  std::vector<uint32_t> Starts;
  for (unsigned I = 0; I != 8; ++I)
    Starts.push_back(f2b(1.0f + 0.25f * static_cast<float>(I)));
  M.addRodataWords("cubic_x0", Starts);
  beebs_detail::addSoftFloatLibrary(M);

  FuncBuilder B(M, "cubic", L);
  Var Seed = B.param("seed");
  Var X = B.local("x");
  Var F = B.local("f");
  Var Fp = B.local("fp");
  Var T1 = B.local("t1");
  Var T2 = B.local("t2");
  Var Iter = B.local("iter");
  Var CoefB = B.local("coefB");
  Var CoefC = B.local("coefC");
  Var CoefD = B.local("coefD");
  B.prologue();

  // Coefficients of x^3 - 1.5 x^2 - 2.25 x + 0.5.
  B.setImm(CoefB, f2b(-1.5f));
  B.setImm(CoefC, f2b(-2.25f));
  B.setImm(CoefD, f2b(0.5f));

  B.addrOf(T1, "cubic_x0");
  B.opImm(BinOp::And, T2, Seed, 7);
  B.loadWIdx(X, T1, T2);
  B.setImm(Iter, 0);

  B.block("newton");
  // f = ((x + b) * x + c) * x + d
  B.callInto(F, "fp_add32", {X, CoefB});
  B.callInto(F, "fp_mul32", {F, X});
  B.callInto(F, "fp_add32", {F, CoefC});
  B.callInto(F, "fp_mul32", {F, X});
  B.callInto(F, "fp_add32", {F, CoefD});
  // f' = (3x + 2b) * x + c
  B.setImm(T1, f2b(3.0f));
  B.callInto(Fp, "fp_mul32", {X, T1});
  B.setImm(T1, f2b(-3.0f)); // 2b with b = -1.5
  B.callInto(Fp, "fp_add32", {Fp, T1});
  B.callInto(Fp, "fp_mul32", {Fp, X});
  B.callInto(Fp, "fp_add32", {Fp, CoefC});
  // x = x - f/f'  (subtract via sign flip)
  B.callInto(T1, "fp_div32", {F, Fp});
  B.setImm(T2, 0x80000000u);
  B.op(BinOp::Eor, T1, T1, T2);
  B.callInto(X, "fp_add32", {X, T1});
  B.opImm(BinOp::Add, Iter, Iter, 1);
  B.brCmpImm(CmpOp::SLt, Iter, 12, "newton");

  B.block("ret");
  B.op(BinOp::Eor, X, X, Seed);
  B.retVar(X);
  B.finish();

  buildMainLoop(M, L, Repeat, "cubic");
  return M;
}
