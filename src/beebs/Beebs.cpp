//===- beebs/Beebs.cpp - suite registry -----------------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"

#include <cassert>

using namespace ramloc;

const std::vector<BeebsInfo> &ramloc::beebsSuite() {
  // Default repeats give runs on the order of a million cycles: long
  // enough to dominate startup, short enough for quick sweeps. The
  // benches scale them up for the case-study experiments.
  static const std::vector<BeebsInfo> Suite = {
      {"2dfir", &buildTwoDFir, 12},
      {"blowfish", &buildBlowfish, 1200},
      {"crc32", &buildCrc32, 250},
      {"cubic", &buildCubic, 200},
      {"dijkstra", &buildDijkstra, 90},
      {"fdct", &buildFdct, 250},
      {"float_matmult", &buildFloatMatmult, 10},
      {"int_matmult", &buildIntMatmult, 10},
      {"rijndael", &buildRijndael, 180},
      {"sha", &buildSha, 140},
  };
  return Suite;
}

std::vector<std::string> ramloc::beebsNames() {
  std::vector<std::string> Names;
  for (const BeebsInfo &Info : beebsSuite())
    Names.push_back(Info.Name);
  return Names;
}

bool ramloc::isKnownBeebs(const std::string &Name) {
  for (const BeebsInfo &Info : beebsSuite())
    if (Name == Info.Name)
      return true;
  return false;
}

Module ramloc::buildBeebs(const std::string &Name, OptLevel Level,
                          unsigned Repeat) {
  for (const BeebsInfo &Info : beebsSuite())
    if (Name == Info.Name)
      return Info.Build(Level, Repeat == 0 ? Info.DefaultRepeat : Repeat);
  assert(false && "unknown benchmark name");
  return Module();
}
