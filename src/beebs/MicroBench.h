//===- beebs/MicroBench.h - Figure 1 micro programs -------------*- C++ -*-===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 1 characterization programs: "16 identical instructions in a
/// loop", placed in flash and then in RAM, showing RAM's lower power for
/// every instruction type except a load that fetches its data from flash.
///
//===----------------------------------------------------------------------===//

#ifndef RAMLOC_BEEBS_MICROBENCH_H
#define RAMLOC_BEEBS_MICROBENCH_H

#include "mir/Module.h"

#include <vector>

namespace ramloc {

/// The instruction type under measurement.
enum class MicroKind : uint8_t {
  StoreRam,  ///< str to a RAM buffer
  LoadRam,   ///< ldr from a RAM buffer
  Add,       ///< register add
  Nop,       ///< nop
  Branch,    ///< unconditional branch chain
  LoadFlash, ///< ldr from a flash .rodata table
};

const char *microKindName(MicroKind K);

inline constexpr MicroKind AllMicroKinds[] = {
    MicroKind::StoreRam, MicroKind::LoadRam,   MicroKind::Add,
    MicroKind::Nop,      MicroKind::Branch,    MicroKind::LoadFlash};

/// Builds the 16-instruction loop. \p CodeInRam places the loop block in
/// RAM directly (hand-placed, no optimizer involved, like the paper's
/// characterization); \p Iters is the loop trip count.
Module buildMicroLoop(MicroKind Kind, bool CodeInRam, unsigned Iters);

} // namespace ramloc

#endif // RAMLOC_BEEBS_MICROBENCH_H
