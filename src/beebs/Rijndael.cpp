//===- beebs/Rijndael.cpp - AES-128-style block rounds --------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// BEEBS rijndael: ten SubBytes/ShiftRows/MixColumns/AddRoundKey rounds
// over a 16-byte state. The S-box stays in flash; the state and round
// keys live in RAM.
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"

using namespace ramloc;
using namespace ramloc::beebs_detail;

namespace {

std::vector<uint32_t> sboxWords() {
  // The real AES S-box.
  static const uint8_t Sbox[256] = {
      0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67,
      0x2b, 0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59,
      0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7,
      0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1,
      0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05,
      0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83,
      0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29,
      0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
      0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa,
      0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c,
      0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc,
      0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
      0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
      0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee,
      0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
      0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
      0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4,
      0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6,
      0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70,
      0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9,
      0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e,
      0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1,
      0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0,
      0x54, 0xbb, 0x16};
  std::vector<uint32_t> W(64);
  for (unsigned I = 0; I != 256; ++I)
    W[I / 4] |= static_cast<uint32_t>(Sbox[I]) << ((I % 4) * 8);
  return W;
}

} // namespace

Module ramloc::buildRijndael(OptLevel L, unsigned Repeat) {
  Module M;
  M.Name = "rijndael";
  {
    DataObject S;
    S.Name = "aes_sbox";
    S.Sect = DataObject::Section::Rodata;
    std::vector<uint32_t> W = sboxWords();
    for (uint32_t Word : W) {
      S.Bytes.push_back(static_cast<uint8_t>(Word));
      S.Bytes.push_back(static_cast<uint8_t>(Word >> 8));
      S.Bytes.push_back(static_cast<uint8_t>(Word >> 16));
      S.Bytes.push_back(static_cast<uint8_t>(Word >> 24));
    }
    M.Data.push_back(std::move(S));
  }
  // "Round keys": 11 x 16 bytes of deterministic pattern in RAM.
  std::vector<uint32_t> RK(44);
  for (unsigned I = 0; I != 44; ++I)
    RK[I] = 0x9E3779B9u * (I + 1);
  M.addDataWords("aes_rk", RK);
  M.addBss("aes_state", 16);

  FuncBuilder B(M, "aes_encrypt", L);
  Var Seed = B.param("seed");
  Var I = B.local("i");
  Var T1 = B.local("t1");
  Var T2 = B.local("t2");
  Var T3 = B.local("t3");
  Var St = B.local("state");
  Var Sb = B.local("sbox");
  Var Rk = B.local("rk");
  Var Round = B.local("round");
  B.prologue();

  B.addrOf(St, "aes_state");
  B.addrOf(Sb, "aes_sbox");
  B.addrOf(Rk, "aes_rk");

  // state[i] = seed + i*17
  B.setImm(I, 0);
  B.block("init");
  B.setImm(T1, 17);
  B.op(BinOp::Mul, T1, I, T1);
  B.op(BinOp::Add, T1, T1, Seed);
  B.storeBIdx(T1, St, I);
  B.opImm(BinOp::Add, I, I, 1);
  B.brCmpImm(CmpOp::SLt, I, 16, "init");

  B.block("roundinit");
  B.setImm(Round, 0);

  // --- one round ------------------------------------------------------------
  B.block("round");
  // SubBytes: state[i] = sbox[state[i]]
  B.setImm(I, 0);
  B.block("subbytes");
  B.loadBIdx(T1, St, I);
  B.loadBIdx(T2, Sb, T1);
  B.storeBIdx(T2, St, I);
  B.opImm(BinOp::Add, I, I, 1);
  B.brCmpImm(CmpOp::SLt, I, 16, "subbytes");

  // ShiftRows (fixed permutation on rows 1..3), unrolled straight-line.
  B.block("shiftrows");
  for (unsigned Row = 1; Row != 4; ++Row) {
    // Rotate row Row left by Row: bytes at Row, Row+4, Row+8, Row+12.
    B.loadB(T1, St, static_cast<int32_t>(Row));
    for (unsigned C = 0; C != 3; ++C) {
      unsigned From = Row + 4 * (((C + Row) % 4));
      unsigned To = Row + 4 * C;
      B.loadB(T2, St, static_cast<int32_t>(From));
      B.storeB(T2, St, static_cast<int32_t>(To));
    }
    unsigned LastTo = Row + 4 * 3;
    unsigned Shift = (3 + Row) % 4;
    if (Shift == 0) {
      B.storeB(T1, St, static_cast<int32_t>(LastTo));
    } else {
      // Already moved by the loop; patch with the saved byte.
      B.storeB(T1, St, static_cast<int32_t>(Row + 4 * ((4 - Row) % 4)));
    }
  }

  // MixColumns-style xtime mixing per column + AddRoundKey.
  B.block("mixcolumns");
  B.setImm(I, 0);
  B.block("mixcol");
  // Load the column word (state is byte-addressed; treat as word).
  B.opImm(BinOp::Lsl, T1, I, 2);
  B.op(BinOp::Add, T1, T1, St);
  B.loadW(T2, T1, 0);
  // xtime-ish diffusion: w = (w << 1) ^ (w >> 7) ^ rotl(w, 8)
  B.opImm(BinOp::Lsl, T3, T2, 1);
  B.opImm(BinOp::Lsr, T2, T2, 7);
  B.op(BinOp::Eor, T3, T3, T2);
  // AddRoundKey: rk[round*4 + i]
  B.opImm(BinOp::Lsl, T2, Round, 2);
  B.op(BinOp::Add, T2, T2, I);
  B.loadWIdx(T2, Rk, T2);
  B.op(BinOp::Eor, T3, T3, T2);
  B.storeW(T3, T1, 0);
  B.opImm(BinOp::Add, I, I, 1);
  B.brCmpImm(CmpOp::SLt, I, 4, "mixcol");

  B.block("roundnext");
  B.opImm(BinOp::Add, Round, Round, 1);
  B.brCmpImm(CmpOp::SLt, Round, 10, "round");

  // --- checksum ---------------------------------------------------------------
  B.block("sum");
  B.setImm(T1, 0);
  B.setImm(I, 0);
  B.block("sumloop");
  B.opImm(BinOp::Lsl, T2, I, 2);
  B.op(BinOp::Add, T2, T2, St);
  B.loadW(T3, T2, 0);
  B.op(BinOp::Eor, T1, T1, T3);
  B.opImm(BinOp::Add, I, I, 1);
  B.brCmpImm(CmpOp::SLt, I, 4, "sumloop");
  B.block("ret");
  B.retVar(T1);
  B.finish();

  buildMainLoop(M, L, Repeat, "aes_encrypt");
  return M;
}
