//===- beebs/FloatMatmult.cpp - 8x8 float matrix multiply -----------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// BEEBS float_matmult: every multiply-accumulate calls the soft-float
// library, which the optimization cannot touch (Optimizable = false), so
// the benchmark shows little improvement — exactly the paper's Section 6
// explanation for this benchmark.
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"

#include <bit>

using namespace ramloc;
using namespace ramloc::beebs_detail;

namespace {

constexpr unsigned N = 8;

std::vector<uint32_t> floatMatrix(float Scale) {
  std::vector<uint32_t> W;
  W.reserve(N * N);
  for (unsigned I = 0; I != N; ++I)
    for (unsigned J = 0; J != N; ++J) {
      float V = (static_cast<float>((I * 3 + J) % 7) + 1.0f) * Scale;
      W.push_back(std::bit_cast<uint32_t>(V));
    }
  return W;
}

} // namespace

Module ramloc::buildFloatMatmult(OptLevel L, unsigned Repeat) {
  Module M;
  M.Name = "float_matmult";
  M.addDataWords("fmat_a", floatMatrix(0.25f));
  M.addDataWords("fmat_b", floatMatrix(0.5f));
  M.addBss("fmat_c", N * N * 4);
  beebs_detail::addSoftFloatLibrary(M);

  FuncBuilder B(M, "fmatmult", L);
  Var K = B.param("seed"); // reused as the k counter
  Var S = B.local("s");
  Var T1 = B.local("t1");
  Var T2 = B.local("t2");
  Var Pb = B.local("pb");
  Var RowA = B.local("rowA");
  Var J = B.local("j");
  Var I = B.local("i");
  Var Seed = B.local("seed2");
  Var Ab = B.local("aBase");
  Var Bb = B.local("bBase");
  Var Cb = B.local("cBase");
  B.prologue();

  B.setVar(Seed, K);
  B.addrOf(Ab, "fmat_a");
  B.addrOf(Bb, "fmat_b");
  B.addrOf(Cb, "fmat_c");
  B.setImm(I, 0);

  B.block("iloop");
  B.opImm(BinOp::Lsl, RowA, I, 5); // i * N * 4
  B.op(BinOp::Add, RowA, RowA, Ab);
  B.setImm(J, 0);

  B.block("jloop");
  B.opImm(BinOp::Lsl, Pb, J, 2);
  B.op(BinOp::Add, Pb, Pb, Bb);
  B.setImm(S, 0); // +0.0f
  B.setImm(K, 0);

  B.block("kloop");
  B.loadWIdx(T1, RowA, K);              // a[i][k]
  B.loadW(T2, Pb, 0);                   // b[k][j]
  B.callInto(T1, "fp_mul32", {T1, T2}); // t1 = a*b
  B.callInto(S, "fp_add32", {S, T1});   // s += t1
  B.opImm(BinOp::Add, Pb, Pb, N * 4);
  B.opImm(BinOp::Add, K, K, 1);
  B.brCmpImm(CmpOp::SLt, K, static_cast<int32_t>(N), "kloop");

  B.block("jstore");
  B.opImm(BinOp::Lsl, T1, I, 5);
  B.opImm(BinOp::Lsl, T2, J, 2);
  B.op(BinOp::Add, T1, T1, T2);
  B.op(BinOp::Add, T1, T1, Cb);
  B.storeW(S, T1, 0);
  B.opImm(BinOp::Add, J, J, 1);
  B.brCmpImm(CmpOp::SLt, J, static_cast<int32_t>(N), "jloop");

  B.block("inext");
  B.opImm(BinOp::Add, I, I, 1);
  B.brCmpImm(CmpOp::SLt, I, static_cast<int32_t>(N), "iloop");

  B.block("sum");
  // Fold every result word so distinct products cannot cancel, then mix
  // the seed multiplicatively (XOR of consecutive additive seeds is
  // degenerate: (v+1)^(v+2)^(v+3) can collapse to zero).
  B.setImm(S, 0);
  B.setImm(K, 0);
  B.block("sumloop");
  B.loadWIdx(T2, Cb, K);
  B.op(BinOp::Eor, S, S, T2);
  B.opImm(BinOp::Add, K, K, 1);
  B.brCmpImm(CmpOp::SLt, K, static_cast<int32_t>(N * N), "sumloop");
  B.block("mix");
  B.setImm(T1, 0x9E3779B9u);
  B.op(BinOp::Mul, T1, T1, Seed);
  B.op(BinOp::Add, S, S, T1);
  B.retVar(S);
  B.finish();

  buildMainLoop(M, L, Repeat, "fmatmult");
  return M;
}
