//===- beebs/Dijkstra.cpp - single-source shortest paths -----------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// BEEBS dijkstra: O(V^2) selection over a dense adjacency matrix kept in
// flash, distance/visited arrays in RAM. Branchy inner loops stress the
// conditional-branch instrumentation cases of Figure 4.
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"

using namespace ramloc;
using namespace ramloc::beebs_detail;

namespace {

constexpr unsigned V = 16;
constexpr uint32_t Inf = 0x3FFFFFFF;

std::vector<uint32_t> adjacency() {
  std::vector<uint32_t> Adj(V * V);
  for (unsigned I = 0; I != V; ++I) {
    for (unsigned J = 0; J != V; ++J) {
      if (I == J) {
        Adj[I * V + J] = 0;
        continue;
      }
      uint32_t W = (I * 7 + J * 13 + 1) % 23;
      Adj[I * V + J] = W == 0 ? Inf : W; // some edges missing
    }
  }
  return Adj;
}

} // namespace

Module ramloc::buildDijkstra(OptLevel L, unsigned Repeat) {
  Module M;
  M.Name = "dijkstra";
  M.addRodataWords("dij_adj", adjacency());
  M.addBss("dij_dist", V * 4);
  M.addBss("dij_seen", V * 4);

  FuncBuilder B(M, "dijkstra", L);
  Var Seed = B.param("seed");
  Var U = B.local("u");
  Var Best = B.local("best");
  Var J = B.local("j");
  Var T1 = B.local("t1");
  Var T2 = B.local("t2");
  Var Dist = B.local("dist");
  Var Seen = B.local("seen");
  Var Adj = B.local("adj");
  Var Iter = B.local("iter");
  Var Row = B.local("row");
  B.prologue();

  B.addrOf(Dist, "dij_dist");
  B.addrOf(Seen, "dij_seen");
  B.addrOf(Adj, "dij_adj");

  // init: dist[j] = Inf, seen[j] = 0; dist[src] = 0 with src = seed % V.
  B.setImm(J, 0);
  B.block("init");
  B.setImm(T1, Inf);
  B.storeWIdx(T1, Dist, J);
  B.setImm(T1, 0);
  B.storeWIdx(T1, Seen, J);
  B.opImm(BinOp::Add, J, J, 1);
  B.brCmpImm(CmpOp::SLt, J, static_cast<int32_t>(V), "init");

  B.block("seedsrc");
  B.opImm(BinOp::And, T1, Seed, V - 1);
  B.setImm(T2, 0);
  B.storeWIdx(T2, Dist, T1);
  B.setImm(Iter, 0);

  // --- outer: pick the unseen vertex with minimal distance ---------------
  B.block("outer");
  B.setImm(Best, Inf);
  B.setImm(U, 0xFF); // sentinel "none"
  B.setImm(J, 0);

  B.block("select");
  B.loadWIdx(T1, Seen, J);
  B.brCmpImm(CmpOp::Ne, T1, 0, "selnext");
  B.block("selcheck");
  B.loadWIdx(T1, Dist, J);
  B.brCmp(CmpOp::UHs, T1, Best, "selnext");
  B.block("seltake");
  B.setVar(Best, T1);
  B.setVar(U, J);
  B.block("selnext");
  B.opImm(BinOp::Add, J, J, 1);
  B.brCmpImm(CmpOp::SLt, J, static_cast<int32_t>(V), "select");

  B.block("checkdone");
  B.brCmpImm(CmpOp::Eq, U, 0xFF, "finish");

  // --- relax all edges out of u -------------------------------------------
  B.block("markseen");
  B.setImm(T1, 1);
  B.storeWIdx(T1, Seen, U);
  // row = &adj[u * V]
  B.opImm(BinOp::Lsl, Row, U, 6); // u * V * 4 with V = 16
  B.op(BinOp::Add, Row, Row, Adj);
  B.setImm(J, 0);

  B.block("relax");
  B.loadWIdx(T1, Row, J); // w = adj[u][j]
  B.setImm(T2, Inf);
  B.brCmp(CmpOp::UHs, T1, T2, "relnext"); // no edge
  B.block("relsum");
  B.op(BinOp::Add, T1, T1, Best); // cand = dist[u] + w
  B.loadWIdx(T2, Dist, J);
  B.brCmp(CmpOp::UHs, T1, T2, "relnext"); // not an improvement
  B.block("relstore");
  B.storeWIdx(T1, Dist, J);
  B.block("relnext");
  B.opImm(BinOp::Add, J, J, 1);
  B.brCmpImm(CmpOp::SLt, J, static_cast<int32_t>(V), "relax");

  B.block("outernext");
  B.opImm(BinOp::Add, Iter, Iter, 1);
  B.brCmpImm(CmpOp::SLt, Iter, static_cast<int32_t>(V), "outer");

  // --- checksum -------------------------------------------------------------
  B.block("finish");
  B.setImm(T1, 0);
  B.setImm(J, 0);
  B.block("sumloop");
  B.loadWIdx(T2, Dist, J);
  B.op(BinOp::Add, T1, T1, T2);
  B.opImm(BinOp::Add, J, J, 1);
  B.brCmpImm(CmpOp::SLt, J, static_cast<int32_t>(V), "sumloop");
  B.block("ret");
  B.retVar(T1);
  B.finish();

  buildMainLoop(M, L, Repeat, "dijkstra");
  return M;
}
