//===- beebs/Sha.cpp - SHA-1 compression ----------------------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
// BEEBS sha: the 80-round SHA-1 compression over one 16-word block. The
// round loop branches between four f-functions, giving a richer CFG than
// the array kernels.
//
//===----------------------------------------------------------------------===//

#include "beebs/Beebs.h"

using namespace ramloc;
using namespace ramloc::beebs_detail;

namespace {

/// rotl(d, a, n) via two shifts and an orr (no ror-immediate in Thumb1).
void emitRotl(FuncBuilder &B, Var D, Var A, unsigned N, Var Tmp) {
  B.opImm(BinOp::Lsl, Tmp, A, static_cast<int32_t>(N));
  B.opImm(BinOp::Lsr, D, A, static_cast<int32_t>(32 - N));
  B.op(BinOp::Orr, D, D, Tmp);
}

} // namespace

Module ramloc::buildSha(OptLevel L, unsigned Repeat) {
  Module M;
  M.Name = "sha";
  std::vector<uint32_t> Msg(16);
  for (unsigned I = 0; I != 16; ++I)
    Msg[I] = 0x01234567u * (I + 1) + 0x89ABCDEFu;
  M.addDataWords("sha_msg", Msg);
  M.addBss("sha_w", 80 * 4);

  FuncBuilder B(M, "sha1block", L);
  Var Seed = B.param("seed");
  Var A = B.local("a");
  Var Bv = B.local("b");
  Var C = B.local("c");
  Var D = B.local("d");
  Var E = B.local("e");
  Var T = B.local("t");
  Var F = B.local("f");
  Var I = B.local("i");
  Var Wb = B.local("wBase");
  Var T2 = B.local("t2");
  B.prologue();

  B.addrOf(Wb, "sha_w");

  // --- message schedule: W[0..15] copied, W[16..79] expanded -------------
  B.setImm(I, 0);
  B.addrOf(T, "sha_msg");
  B.block("wcopy");
  B.loadWIdx(T2, T, I);
  B.storeWIdx(T2, Wb, I);
  B.opImm(BinOp::Add, I, I, 1);
  B.brCmpImm(CmpOp::SLt, I, 16, "wcopy");

  B.block("wexpand");
  // t = W[i-3] ^ W[i-8] ^ W[i-14] ^ W[i-16]; W[i] = rotl(t, 1)
  B.opImm(BinOp::Sub, T, I, 3);
  B.loadWIdx(F, Wb, T);
  B.opImm(BinOp::Sub, T, I, 8);
  B.loadWIdx(T2, Wb, T);
  B.op(BinOp::Eor, F, F, T2);
  B.opImm(BinOp::Sub, T, I, 14);
  B.loadWIdx(T2, Wb, T);
  B.op(BinOp::Eor, F, F, T2);
  B.opImm(BinOp::Sub, T, I, 16);
  B.loadWIdx(T2, Wb, T);
  B.op(BinOp::Eor, F, F, T2);
  emitRotl(B, F, F, 1, T2);
  B.storeWIdx(F, Wb, I);
  B.opImm(BinOp::Add, I, I, 1);
  B.brCmpImm(CmpOp::SLt, I, 80, "wexpand");

  // --- initialise the working state ---------------------------------------
  B.block("init");
  B.setImm(A, 0x67452301u);
  B.op(BinOp::Add, A, A, Seed); // perturb per repeat
  B.setImm(Bv, 0xEFCDAB89u);
  B.setImm(C, 0x98BADCFEu);
  B.setImm(D, 0x10325476u);
  B.setImm(E, 0xC3D2E1F0u);
  B.setImm(I, 0);

  // --- 80 rounds with four f/k phases --------------------------------------
  B.block("round");
  B.brCmpImm(CmpOp::SGe, I, 20, "phase1");

  B.block("phase0"); // f = (b & c) | (~b & d), k = 0x5A827999
  B.op(BinOp::And, F, Bv, C);
  B.setVar(T2, Bv);
  B.setImm(T, 0xFFFFFFFFu);
  B.op(BinOp::Eor, T2, T2, T);
  B.op(BinOp::And, T2, T2, D);
  B.op(BinOp::Orr, F, F, T2);
  B.setImm(T, 0x5A827999u);
  B.br("apply");

  B.block("phase1");
  B.brCmpImm(CmpOp::SGe, I, 40, "phase2");
  B.block("phase1b"); // f = b ^ c ^ d, k = 0x6ED9EBA1
  B.op(BinOp::Eor, F, Bv, C);
  B.op(BinOp::Eor, F, F, D);
  B.setImm(T, 0x6ED9EBA1u);
  B.br("apply");

  B.block("phase2");
  B.brCmpImm(CmpOp::SGe, I, 60, "phase3");
  B.block("phase2b"); // f = (b&c) | (b&d) | (c&d), k = 0x8F1BBCDC
  B.op(BinOp::And, F, Bv, C);
  B.op(BinOp::And, T2, Bv, D);
  B.op(BinOp::Orr, F, F, T2);
  B.op(BinOp::And, T2, C, D);
  B.op(BinOp::Orr, F, F, T2);
  B.setImm(T, 0x8F1BBCDCu);
  B.br("apply");

  B.block("phase3"); // f = b ^ c ^ d, k = 0xCA62C1D6
  B.op(BinOp::Eor, F, Bv, C);
  B.op(BinOp::Eor, F, F, D);
  B.setImm(T, 0xCA62C1D6u);

  B.block("apply");
  // t2 = rotl(a,5) + f + e + k + W[i]
  B.op(BinOp::Add, F, F, T); // f += k
  emitRotl(B, T2, A, 5, T);
  B.op(BinOp::Add, T2, T2, F);
  B.op(BinOp::Add, T2, T2, E);
  B.loadWIdx(T, Wb, I);
  B.op(BinOp::Add, T2, T2, T);
  // e = d; d = c; c = rotl(b, 30); b = a; a = t2
  B.setVar(E, D);
  B.setVar(D, C);
  emitRotl(B, C, Bv, 30, T);
  B.setVar(Bv, A);
  B.setVar(A, T2);
  B.opImm(BinOp::Add, I, I, 1);
  B.brCmpImm(CmpOp::SLt, I, 80, "round");

  B.block("ret");
  B.op(BinOp::Eor, A, A, Bv);
  B.op(BinOp::Eor, A, A, C);
  B.op(BinOp::Eor, A, A, D);
  B.op(BinOp::Eor, A, A, E);
  B.retVar(A);
  B.finish();

  buildMainLoop(M, L, Repeat, "sha1block");
  return M;
}
