//===- core/Enumerator.cpp - exhaustive solution space -------------------------===//
//
// Part of ramloc, a reproduction of "Optimizing the flash-RAM energy
// trade-off in deeply embedded systems" (Pallister et al., CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "core/Enumerator.h"

#include <algorithm>
#include <cassert>

using namespace ramloc;

std::vector<unsigned> ramloc::selectHotBlocks(const ModelParams &MP,
                                              unsigned K) {
  std::vector<unsigned> Blocks;
  for (unsigned B = 0, E = MP.numBlocks(); B != E; ++B)
    if (MP.Blocks[B].Movable && MP.Blocks[B].Sb > 0)
      Blocks.push_back(B);
  std::sort(Blocks.begin(), Blocks.end(), [&MP](unsigned A, unsigned B) {
    double WA = MP.Blocks[A].Fb * MP.Blocks[A].Cb;
    double WB = MP.Blocks[B].Fb * MP.Blocks[B].Cb;
    if (WA != WB)
      return WA > WB;
    return A < B; // deterministic tie-break
  });
  if (Blocks.size() > K)
    Blocks.resize(K);
  std::sort(Blocks.begin(), Blocks.end());
  return Blocks;
}

std::vector<EnumPoint> ramloc::enumerateSolutions(
    const ModelParams &MP, const std::vector<unsigned> &Candidates) {
  assert(Candidates.size() <= 24 && "2^k space too large to enumerate");
  std::vector<EnumPoint> Points;
  uint64_t Count = 1ULL << Candidates.size();
  Points.reserve(Count);

  Assignment InRam(MP.numBlocks(), false);
  for (uint64_t Mask = 0; Mask != Count; ++Mask) {
    for (unsigned I = 0, E = Candidates.size(); I != E; ++I)
      InRam[Candidates[I]] = (Mask >> I) & 1;
    Points.push_back({Mask, evaluateAssignment(MP, InRam)});
  }
  return Points;
}

int ramloc::bestFeasiblePoint(const std::vector<EnumPoint> &Points,
                              double BaseCycles, const ModelKnobs &Knobs) {
  int Best = -1;
  for (unsigned I = 0, E = Points.size(); I != E; ++I) {
    const EnumPoint &P = Points[I];
    if (P.Estimate.RamBytes > Knobs.RspareBytes)
      continue;
    if (P.Estimate.Cycles > Knobs.Xlimit * BaseCycles + 1e-6)
      continue;
    if (Best < 0 || P.Estimate.EnergyMilliJoules <
                        Points[static_cast<unsigned>(Best)]
                            .Estimate.EnergyMilliJoules)
      Best = static_cast<int>(I);
  }
  return Best;
}
